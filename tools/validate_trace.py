#!/usr/bin/env python3
"""Validate nbclos trace output (Chrome trace_event JSON or JSONL).

Schema (see EXPERIMENTS.md §"trace JSONL schema"): every event object has
  name  non-empty string
  cat   non-empty string
  ph    one of "X" (complete span), "i" (instant), "C" (counter)
  pid   positive integer
  tid   non-negative integer
  ts    number >= 0 (microseconds since session start)
  dur   number >= 0, required iff ph == "X"
  args  optional object of finite numbers (or null for non-finite)

Chrome format wraps the events in {"traceEvents": [...], ...}; JSONL puts
one event object per line.  The format is picked by file extension
(.jsonl => JSONL), overridable with --format.

Usage: validate_trace.py [--format chrome|jsonl] [--min-events N] FILE
Exit status 0 when the file validates, 1 with a message otherwise.
"""

import argparse
import json
import sys

VALID_PHASES = {"X", "i", "C"}


def fail(message):
    print(f"validate_trace: {message}", file=sys.stderr)
    sys.exit(1)


def check_event(event, where):
    if not isinstance(event, dict):
        fail(f"{where}: event is not an object")
    for field in ("name", "cat", "ph", "pid", "tid", "ts"):
        if field not in event:
            fail(f"{where}: missing field '{field}'")
    if not isinstance(event["name"], str) or not event["name"]:
        fail(f"{where}: 'name' must be a non-empty string")
    if not isinstance(event["cat"], str) or not event["cat"]:
        fail(f"{where}: 'cat' must be a non-empty string")
    if event["ph"] not in VALID_PHASES:
        fail(f"{where}: 'ph' is {event['ph']!r}, expected one of "
             f"{sorted(VALID_PHASES)}")
    if not isinstance(event["pid"], int) or event["pid"] <= 0:
        fail(f"{where}: 'pid' must be a positive integer")
    if not isinstance(event["tid"], int) or event["tid"] < 0:
        fail(f"{where}: 'tid' must be a non-negative integer")
    if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
        fail(f"{where}: 'ts' must be a non-negative number")
    if event["ph"] == "X":
        if "dur" not in event:
            fail(f"{where}: complete event missing 'dur'")
        if not isinstance(event["dur"], (int, float)) or event["dur"] < 0:
            fail(f"{where}: 'dur' must be a non-negative number")
    elif "dur" in event:
        fail(f"{where}: 'dur' only belongs on ph == \"X\" events")
    if "args" in event:
        if not isinstance(event["args"], dict):
            fail(f"{where}: 'args' must be an object")
        for key, value in event["args"].items():
            # JSON has no NaN/Inf; the writer maps non-finite to null.
            if value is not None and not isinstance(value, (int, float)):
                fail(f"{where}: arg {key!r} must be numeric or null")


def load_events(path, fmt):
    with open(path, "r", encoding="utf-8") as handle:
        if fmt == "jsonl":
            events = []
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append((f"line {lineno}", json.loads(line)))
                except json.JSONDecodeError as err:
                    fail(f"line {lineno}: not valid JSON ({err})")
            return events
        try:
            document = json.load(handle)
        except json.JSONDecodeError as err:
            fail(f"not valid JSON ({err})")
    if not isinstance(document, dict) or "traceEvents" not in document:
        fail("Chrome trace must be an object with a 'traceEvents' array")
    if not isinstance(document["traceEvents"], list):
        fail("'traceEvents' must be an array")
    return [(f"traceEvents[{i}]", event)
            for i, event in enumerate(document["traceEvents"])]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("file")
    parser.add_argument("--format", choices=("chrome", "jsonl"),
                        help="default: jsonl iff FILE ends in .jsonl")
    parser.add_argument("--min-events", type=int, default=1,
                        help="require at least this many events (default 1)")
    args = parser.parse_args()

    fmt = args.format or ("jsonl" if args.file.endswith(".jsonl")
                          else "chrome")
    events = load_events(args.file, fmt)
    if len(events) < args.min_events:
        fail(f"expected at least {args.min_events} events, found "
             f"{len(events)}")
    last_ts = -1.0
    for where, event in events:
        check_event(event, where)
        if event["ts"] < last_ts:
            fail(f"{where}: events are not sorted by 'ts'")
        last_ts = event["ts"]
    print(f"validate_trace: OK — {len(events)} events ({fmt})")


if __name__ == "__main__":
    main()
