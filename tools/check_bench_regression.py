#!/usr/bin/env python3
"""Validate a bench JSON document and flag throughput regressions.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [--tolerance 0.25]
    check_bench_regression.py CURRENT.json --schema-only

Five bench schemas are understood (dispatched on the "experiment"
field):

  * "scale"         (bench_scale)  — per-radix cases; the compared
    metrics are route_cache.routes_per_sec, verify_random.perms_per_sec,
    and load_probe.perms_per_sec, matched by radix;
  * "scale_mt"      (bench_scale_mt) — per-topology cases, each run at
    several shard counts; the compared metrics are terminals_per_sec,
    matched by (topology, shards).  Every shard count must report
    identical_to_single_shard == true — a bit-exact divergence from the
    1-shard run is a correctness regression, not noise;
  * "verify_engine" (bench_verify) — the compared metrics are
    adversarial.full.perms_per_sec and adversarial.delta.perms_per_sec;
  * "flow"          (bench_flow)   — per-radix cases; the compared
    metrics are engine.wormhole.cycles_per_sec and
    engine.vct.cycles_per_sec, matched by radix.  The buffer-margin
    verdicts double as correctness gates: the guaranteed routings
    (Theorem 3 and the adaptive schedule) must report a nonzero
    min_flits_nonblocking and no deadlock;
  * "flow_mt"       (bench_flow_mt) — per-topology cases, each run
    serially and at several shard counts; the compared metrics are the
    serial and per-shard-count cycles_per_sec, matched by (topology,
    shards).  Every shard count must report identical_to_serial == true
    — a bit-exact divergence from serial FlowSim is a correctness
    regression, not noise — and the bisection margins on the Theorem 3
    routing must stay nonzero and deadlock-free.  speedup_vs_serial is
    reported but never gated: single-hardware-thread CI runners make
    any speedup floor meaningless.  When the document carries a
    recorder_overhead section (newer benches), its results_identical
    and per-shard-count series identity verdicts are fatal gates and
    the live-vs-paused overhead must stay under a generous cap; older
    baselines without the section still validate.  The scale section
    (sparse lazy arenas on 10-ary trees) is mandatory: every point must
    stay within the committed arena bytes/terminal budget, must not
    deadlock, and identity-checked points must match the serial run;
    scale cycles_per_sec joins the throughput comparison.

The gate is two-level, tuned so scheduler noise on a shared runner
cannot flap it while a real code regression (which slows *every* case)
still trips it:

  * the GEOMETRIC MEAN of the current/baseline ratios over all metrics
    must be >= 1 - tolerance (default 25%) — a genuine slowdown moves
    every ratio, so the mean is far less noisy than any single timing;
  * each INDIVIDUAL metric must stay >= 1 - 2*tolerance — a backstop
    against one case cratering while the others mask it.

Comparisons across *different* hardware are only meaningful for
order-of-magnitude sanity, which is exactly what the CI smoke job uses
them for.  Exit status: 0 = ok, 1 = regression or schema error.
"""

import argparse
import json
import math
import sys


def fail(msg):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(doc, path, typ):
    """Fetch a dotted path from nested dicts, checking its type."""
    node = doc
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            fail(f"missing field '{path}'")
        node = node[part]
    if not isinstance(node, typ):
        fail(f"field '{path}' has type {type(node).__name__}, "
             f"expected {typ.__name__}")
    return node


def validate_scale(doc):
    cases = require(doc, "cases", list)
    if not cases:
        fail("scale document has no cases")
    for case in cases:
        require(case, "radix", int)
        require(case, "leafs", int)
        require(case, "links", int)
        require(case, "route_cache.routes_per_sec", (int, float))
        require(case, "route_cache.cache_bytes", int)
        require(case, "verify_random.perms_per_sec", (int, float))
        require(case, "verify_random.nonblocking", bool)
        require(case, "load_probe.perms_per_sec", (int, float))
        require(case, "cache_hit_rate", (int, float))
        require(case, "peak_rss_kb", int)
        if not case["verify_random"]["nonblocking"]:
            fail(f"radix {case['radix']}: verification verdict regressed "
                 "(expected nonblocking)")
    require(doc, "manifest.build_type", str)


def validate_scale_mt(doc):
    cases = require(doc, "cases", list)
    if not cases:
        fail("scale_mt document has no cases")
    for case in cases:
        topo = require(case, "topology", str)
        require(case, "terminals", int)
        require(case, "channels", int)
        require(case, "peak_rss_kb", int)
        points = require(case, "shard_counts", list)
        if not points:
            fail(f"{topo}: no shard-count points")
        for point in points:
            shards = require(point, "shards", int)
            require(point, "seconds", (int, float))
            require(point, "terminals_per_sec", (int, float))
            require(point, "bytes_per_terminal", (int, float))
            require(point, "cross_shard_flits", int)
            require(point, "accepted_throughput", (int, float))
            if not require(point, "identical_to_single_shard", bool):
                fail(f"{topo} at {shards} shards: results diverged from "
                     "the single-shard run (determinism regression)")
    require(doc, "manifest.build_type", str)


def validate_verify(doc):
    require(doc, "adversarial.full.perms_per_sec", (int, float))
    require(doc, "adversarial.delta.perms_per_sec", (int, float))
    require(doc, "adversarial.worst_collisions", int)
    require(doc, "manifest.build_type", str)


FLOW_MARGIN_KEYS = ("thm3_wormhole", "thm3_vct", "dmodk_wormhole",
                    "dmodk_vct", "adaptive_wormhole", "adaptive_vct")


def validate_flow(doc):
    cases = require(doc, "cases", list)
    if not cases:
        fail("flow document has no cases")
    for case in cases:
        require(case, "radix", int)
        require(case, "leafs", int)
        for mode in ("wormhole", "vct"):
            require(case, f"engine.{mode}.cycles_per_sec", (int, float))
            require(case, f"engine.{mode}.accepted_throughput", (int, float))
            if require(case, f"engine.{mode}.deadlocked", bool):
                fail(f"radix {case['radix']}: {mode} engine run deadlocked "
                     "on the Theorem 3 routing")
        for key in FLOW_MARGIN_KEYS:
            require(case, f"margin.{key}.min_flits_nonblocking", int)
            points = require(case, f"margin.{key}.points", list)
            if not points:
                fail(f"radix {case['radix']}: margin {key} has no points")
            for point in points:
                require(point, "buffer_flits", int)
                require(point, "sustained", bool)
                if require(point, "deadlocked", bool):
                    fail(f"radix {case['radix']}: margin {key} deadlocked "
                         f"at depth {point['buffer_flits']}")
        # The guaranteed routings must keep sustaining the probe at some
        # probed depth — a 0 here is a correctness regression, not noise.
        for key in ("thm3_wormhole", "thm3_vct",
                    "adaptive_wormhole", "adaptive_vct"):
            if case["margin"][key]["min_flits_nonblocking"] == 0:
                fail(f"radix {case['radix']}: {key} margin verdict "
                     "regressed (guaranteed routing no longer sustains "
                     "the probe at any depth)")
    require(doc, "manifest.build_type", str)


# The acceptance budget for the flight recorder is < 5% on a quiet
# machine; the hard gate is looser because CI runners time noisily.  The
# identity verdicts, in contrast, are exact and always fatal.
RECORDER_OVERHEAD_CAP_PCT = 25.0


def check_recorder_overhead(doc, where):
    """Validate an optional recorder_overhead section (newer benches
    emit it; older baseline documents without one must keep passing)."""
    if "recorder_overhead" not in doc:
        return
    section = require(doc, "recorder_overhead", dict)
    require(doc, "recorder_overhead.compiled_in", bool)
    require(doc, "recorder_overhead.enabled_seconds", (int, float))
    require(doc, "recorder_overhead.paused_seconds", (int, float))
    overhead = require(doc, "recorder_overhead.overhead_pct", (int, float))
    if not require(doc, "recorder_overhead.results_identical", bool):
        fail(f"{where}: recording changed the engine result "
             "(instrumentation fed back into the simulation)")
    if section["compiled_in"] and overhead > RECORDER_OVERHEAD_CAP_PCT:
        fail(f"{where}: recorder overhead {overhead:.1f}% exceeds the "
             f"{RECORDER_OVERHEAD_CAP_PCT:.0f}% gate")
    for point in section.get("series_identity", []):
        shards = require(point, "shards", int)
        if not require(point, "identical_to_serial", bool):
            fail(f"{where}: merged time-series at {shards} shards "
                 "diverged from the serial run (determinism regression)")


def validate_flow_mt(doc):
    cases = require(doc, "cases", list)
    if not cases:
        fail("flow_mt document has no cases")
    for case in cases:
        topo = require(case, "topology", str)
        require(case, "terminals", int)
        require(case, "channels", int)
        require(case, "peak_rss_kb", int)
        require(case, "serial.cycles_per_sec", (int, float))
        if require(case, "serial.deadlocked", bool):
            fail(f"{topo}: serial reference run deadlocked")
        points = require(case, "shard_counts", list)
        if not points:
            fail(f"{topo}: no shard-count points")
        for point in points:
            shards = require(point, "shards", int)
            require(point, "seconds", (int, float))
            require(point, "cycles_per_sec", (int, float))
            require(point, "speedup_vs_serial", (int, float))
            require(point, "cross_shard_flits", int)
            require(point, "cross_shard_credits", int)
            require(point, "accepted_throughput", (int, float))
            if not require(point, "identical_to_serial", bool):
                fail(f"{topo} at {shards} shards: results diverged from "
                     "the serial FlowSim run (determinism regression)")
        for mode in ("wormhole", "vct"):
            min_flits = require(case, f"margin.{mode}.min_flits_nonblocking",
                                int)
            points = require(case, f"margin.{mode}.points", list)
            if not points:
                fail(f"{topo}: margin {mode} probed no depths")
            for point in points:
                require(point, "buffer_flits", int)
                require(point, "sustained", bool)
                if require(point, "deadlocked", bool):
                    fail(f"{topo}: margin {mode} deadlocked at depth "
                         f"{point['buffer_flits']}")
            if min_flits == 0:
                fail(f"{topo}: {mode} margin verdict regressed (the "
                     "nonblocking routing no longer sustains the probe "
                     "at any depth)")
    budget = require(doc, "scale.budget_bytes_per_terminal", (int, float))
    points = require(doc, "scale.points", list)
    if not points:
        fail("scale section probed no trees")
    for point in points:
        topo = require(point, "topology", str)
        require(point, "terminals", int)
        require(point, "cycles_per_sec", (int, float))
        require(point, "flit_arena_bytes", int)
        require(point, "packet_arena_bytes", int)
        bpt = require(point, "bytes_per_terminal", (int, float))
        require(point, "resident_slots", int)
        require(point, "peak_slots", int)
        require(point, "spill_bytes", int)
        if require(point, "deadlocked", bool):
            fail(f"scale {topo}: run deadlocked")
        if not require(point, "within_budget", bool) or bpt > budget:
            fail(f"scale {topo}: {bpt:.1f} arena bytes/terminal exceed "
                 f"the committed {budget:.0f}-byte budget "
                 "(lazy arenas densified)")
        if require(point, "identity_checked", bool) and \
                not require(point, "identical_to_serial", bool):
            fail(f"scale {topo}: sharded run diverged from serial "
                 "(determinism regression)")
    check_recorder_overhead(doc, "flow_mt")
    require(doc, "manifest.build_type", str)


def scale_metrics(doc):
    out = {}
    for case in doc["cases"]:
        r = case["radix"]
        out[f"radix{r}.route_cache.routes_per_sec"] = \
            case["route_cache"]["routes_per_sec"]
        out[f"radix{r}.verify_random.perms_per_sec"] = \
            case["verify_random"]["perms_per_sec"]
        out[f"radix{r}.load_probe.perms_per_sec"] = \
            case["load_probe"]["perms_per_sec"]
    return out


def scale_mt_metrics(doc):
    out = {}
    for case in doc["cases"]:
        topo = case["topology"]
        for point in case["shard_counts"]:
            out[f"{topo}.shards{point['shards']}.terminals_per_sec"] = \
                point["terminals_per_sec"]
    return out


def verify_metrics(doc):
    return {
        "adversarial.full.perms_per_sec":
            doc["adversarial"]["full"]["perms_per_sec"],
        "adversarial.delta.perms_per_sec":
            doc["adversarial"]["delta"]["perms_per_sec"],
    }


def flow_metrics(doc):
    out = {}
    for case in doc["cases"]:
        r = case["radix"]
        for mode in ("wormhole", "vct"):
            out[f"radix{r}.engine.{mode}.cycles_per_sec"] = \
                case["engine"][mode]["cycles_per_sec"]
    return out


def flow_mt_metrics(doc):
    out = {}
    for case in doc["cases"]:
        topo = case["topology"]
        out[f"{topo}.serial.cycles_per_sec"] = \
            case["serial"]["cycles_per_sec"]
        for point in case["shard_counts"]:
            out[f"{topo}.shards{point['shards']}.cycles_per_sec"] = \
                point["cycles_per_sec"]
    for point in doc["scale"]["points"]:
        out[f"scale.{point['topology']}.cycles_per_sec"] = \
            point["cycles_per_sec"]
    return out


SCHEMAS = {
    "scale": (validate_scale, scale_metrics),
    "scale_mt": (validate_scale_mt, scale_mt_metrics),
    "verify_engine": (validate_verify, verify_metrics),
    "flow": (validate_flow, flow_metrics),
    "flow_mt": (validate_flow_mt, flow_mt_metrics),
}


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    kind = require(doc, "experiment", str)
    if kind not in SCHEMAS:
        fail(f"{path}: unknown experiment '{kind}'")
    SCHEMAS[kind][0](doc)
    return kind, doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional slowdown (default 0.25)")
    parser.add_argument("--schema-only", action="store_true",
                        help="validate the document, skip the comparison")
    args = parser.parse_args()

    kind, current = load(args.current)
    print(f"{args.current}: valid '{kind}' document")
    if args.schema_only or args.baseline is None:
        return

    base_kind, baseline = load(args.baseline)
    if base_kind != kind:
        fail(f"experiment mismatch: {kind} vs {base_kind}")

    extract = SCHEMAS[kind][1]
    cur, base = extract(current), extract(baseline)
    hard_floor = 1.0 - 2.0 * args.tolerance
    regressed = False
    log_ratio_sum = 0.0
    for name, base_value in base.items():
        if name not in cur:
            fail(f"current document is missing metric '{name}'")
        if base_value <= 0:
            fail(f"baseline metric '{name}' is not positive")
        ratio = cur[name] / base_value
        log_ratio_sum += math.log(max(ratio, 1e-12))
        verdict = "ok"
        if ratio < hard_floor:
            verdict = f"REGRESSED (below hard floor {hard_floor:.0%})"
            regressed = True
        print(f"  {name}: {cur[name]:.3e} vs baseline {base_value:.3e} "
              f"(ratio {ratio:.2f}) {verdict}")
    geomean = math.exp(log_ratio_sum / len(base))
    print(f"  geometric-mean ratio over {len(base)} metrics: {geomean:.3f}")
    if geomean < 1.0 - args.tolerance:
        fail(f"aggregate throughput regressed beyond {args.tolerance:.0%} "
             f"tolerance (geomean ratio {geomean:.3f})")
    if regressed:
        fail("an individual metric regressed beyond the "
             f"{2 * args.tolerance:.0%} hard floor")
    print(f"no regression beyond {args.tolerance:.0%} tolerance")


if __name__ == "__main__":
    main()
