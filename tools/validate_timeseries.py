#!/usr/bin/env python3
"""Validate nbclos flight-recorder time-series output (JSON or CSV).

Schema "nbclos-timeseries-v1" (see EXPERIMENTS.md §"time-series schema"):

  JSON: { "schema": "nbclos-timeseries-v1", "cadence_cycles": C >= 1,
          "ring_capacity": R >= 2, "shards": S >= 1,
          "series": [ { "name": str, "agg": "sum"|"max",
                        "scope": "invariant"|"shard_topology",
                        "stride_cycles": int, "points": [[t, v], ...] } ] }

  CSV:  leading comment `# nbclos-timeseries-v1 cadence=C ring=R shards=S`,
        header `series,agg,scope,stride_cycles,t,v`, one row per point.

Invariants checked per series:
  * stride_cycles is cadence_cycles * 2^k for some k >= 0 (the ring
    halves its resolution by doubling the stride);
  * timestamps are strictly increasing, each a multiple of stride_cycles,
    and consecutive points are exactly stride_cycles apart (the retained
    samples form a uniform grid — downsampling never leaves gaps);
  * point count never exceeds ring_capacity;
  * values are integers (the recorder stores exact int64 counts).

Usage: validate_timeseries.py [--format json|csv] [--min-series N]
                              [--min-points N] FILE
Exit status 0 when the file validates, 1 with a message otherwise.
"""

import argparse
import json
import sys

VALID_AGG = {"sum", "max"}
VALID_SCOPE = {"invariant", "shard_topology"}
SCHEMA = "nbclos-timeseries-v1"


def fail(message):
    print(f"validate_timeseries: {message}", file=sys.stderr)
    sys.exit(1)


def check_geometry(cadence, ring, shards, where):
    if not isinstance(cadence, int) or cadence < 1:
        fail(f"{where}: cadence_cycles must be a positive integer")
    if not isinstance(ring, int) or ring < 2:
        fail(f"{where}: ring_capacity must be an integer >= 2")
    if not isinstance(shards, int) or shards < 1:
        fail(f"{where}: shards must be a positive integer")


def check_series(name, agg, scope, stride, points, cadence, ring):
    where = f"series '{name}'"
    if not isinstance(name, str) or not name:
        fail("series name must be a non-empty string")
    if agg not in VALID_AGG:
        fail(f"{where}: agg is {agg!r}, expected one of {sorted(VALID_AGG)}")
    if scope not in VALID_SCOPE:
        fail(f"{where}: scope is {scope!r}, expected one of "
             f"{sorted(VALID_SCOPE)}")
    if not isinstance(stride, int) or stride < cadence:
        fail(f"{where}: stride_cycles {stride!r} below cadence {cadence}")
    ratio = stride // cadence
    if stride != cadence * ratio or ratio & (ratio - 1):
        fail(f"{where}: stride_cycles {stride} is not cadence * power of two")
    if len(points) > ring:
        fail(f"{where}: {len(points)} points exceed ring capacity {ring}")
    prev_t = None
    for t, v in points:
        if not isinstance(t, int) or t < 0:
            fail(f"{where}: timestamp {t!r} is not a non-negative integer")
        if not isinstance(v, int):
            fail(f"{where}: value {v!r} at t={t} is not an integer")
        if t % stride != 0:
            fail(f"{where}: timestamp {t} is not a multiple of stride "
                 f"{stride}")
        if prev_t is not None and t - prev_t != stride:
            fail(f"{where}: gap {t - prev_t} between t={prev_t} and t={t}, "
                 f"expected uniform stride {stride}")
        prev_t = t


def load_json(path):
    with open(path, encoding="utf-8") as handle:
        try:
            doc = json.load(handle)
        except json.JSONDecodeError as error:
            fail(f"{path}: invalid JSON: {error}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not an object")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected "
             f"'{SCHEMA}'")
    for field in ("cadence_cycles", "ring_capacity", "shards", "series"):
        if field not in doc:
            fail(f"{path}: missing field '{field}'")
    cadence = doc["cadence_cycles"]
    ring = doc["ring_capacity"]
    check_geometry(cadence, ring, doc["shards"], path)
    if not isinstance(doc["series"], list):
        fail(f"{path}: 'series' must be an array")
    series = []
    for entry in doc["series"]:
        if not isinstance(entry, dict):
            fail(f"{path}: series entry is not an object")
        for field in ("name", "agg", "scope", "stride_cycles", "points"):
            if field not in entry:
                fail(f"{path}: series entry missing '{field}'")
        points = entry["points"]
        if not isinstance(points, list) or any(
                not isinstance(p, list) or len(p) != 2 for p in points):
            fail(f"series '{entry['name']}': points must be [t, v] pairs")
        series.append((entry["name"], entry["agg"], entry["scope"],
                       entry["stride_cycles"], [tuple(p) for p in points]))
    return cadence, ring, series


def load_csv(path):
    with open(path, encoding="utf-8") as handle:
        lines = [line.rstrip("\n") for line in handle]
    if not lines or not lines[0].startswith(f"# {SCHEMA} "):
        fail(f"{path}: missing '# {SCHEMA} ...' geometry comment")
    geometry = {}
    for token in lines[0].split()[2:]:
        key, _, value = token.partition("=")
        if not value.isdigit():
            fail(f"{path}: bad geometry token {token!r}")
        geometry[key] = int(value)
    for key in ("cadence", "ring", "shards"):
        if key not in geometry:
            fail(f"{path}: geometry comment missing '{key}='")
    cadence, ring = geometry["cadence"], geometry["ring"]
    check_geometry(cadence, ring, geometry["shards"], path)
    if len(lines) < 2 or lines[1] != "series,agg,scope,stride_cycles,t,v":
        fail(f"{path}: missing CSV header "
             f"'series,agg,scope,stride_cycles,t,v'")
    series = {}
    order = []
    for number, line in enumerate(lines[2:], start=3):
        if not line:
            continue
        cells = line.split(",")
        if len(cells) != 6:
            fail(f"{path}:{number}: expected 6 cells, got {len(cells)}")
        name, agg, scope, stride_text, t_text, v_text = cells
        try:
            stride, t, v = int(stride_text), int(t_text), int(v_text)
        except ValueError:
            fail(f"{path}:{number}: non-integer stride/t/v")
        key = (name, agg, scope, stride)
        if key not in series:
            if any(existing[0] == name for existing in series):
                fail(f"{path}:{number}: series '{name}' rows are not "
                     f"contiguous or change agg/scope/stride")
            series[key] = []
            order.append(key)
        if order[-1] != key:
            fail(f"{path}:{number}: series '{name}' rows are interleaved")
        series[key].append((t, v))
    return cadence, ring, [key + (series[key],) for key in order]


def main():
    parser = argparse.ArgumentParser(
        description="Validate nbclos flight-recorder time-series output.")
    parser.add_argument("file")
    parser.add_argument("--format", choices=("json", "csv"),
                        help="override the extension-based format pick")
    parser.add_argument("--min-series", type=int, default=0,
                        help="require at least N series")
    parser.add_argument("--min-points", type=int, default=0,
                        help="require at least N points in some series")
    options = parser.parse_args()

    form = options.format or (
        "csv" if options.file.endswith(".csv") else "json")
    cadence, ring, series = (
        load_csv(options.file) if form == "csv" else load_json(options.file))

    names = set()
    for name, agg, scope, stride, points in series:
        if name in names:
            fail(f"duplicate series '{name}'")
        names.add(name)
        check_series(name, agg, scope, stride, points, cadence, ring)

    if len(series) < options.min_series:
        fail(f"{len(series)} series, expected at least {options.min_series}")
    most = max((len(points) for *_, points in series), default=0)
    if most < options.min_points:
        fail(f"longest series has {most} points, expected at least "
             f"{options.min_points}")

    total = sum(len(points) for *_, points in series)
    print(f"validate_timeseries: OK ({len(series)} series, {total} points, "
          f"cadence {cadence}, ring {ring})")


if __name__ == "__main__":
    main()
