/// \file nbclos_cli.cpp
/// \brief Command-line front end for the library: design, certify,
///        schedule, simulate, and circuit-switch — the operations a
///        cluster architect actually runs.
///
/// Usage:
///   nbclos design <radix> [target_ports]
///   nbclos certify <n> [r]
///   nbclos schedule <n> <r>
///   nbclos simulate <topo> <load> <routing: thm3|dmodk|random|adaptive>
///                   [--shards N]
///   nbclos flow-sim <n> <r> <load> [thm3|dmodk] [--packet F] [--buffers F]
///                   [--vcs V] [--switching wormhole|vct] [--credit|--onoff]
///                   [--credit-delay D] [--seed S] [--json]
///   nbclos load-sweep <topo> <routing> [rates_csv] [threads] [--shards N]
///
/// `<topo>` is either `<n> <r>` (two tokens, the ftree(n + n^2, r)
/// fabric) or `kary:K,H` (one token, the K-ary H-tree from
/// build_kary_ntree).  `--shards N` routes the run through the
/// switch-partitioned `ShardedSim` engine — results are bit-identical at
/// any shard count, and only pure routings (thm3, dmodk) qualify;
/// `random` and `adaptive` consult global queue state and are rejected.
///   nbclos saturation <n> <r> <routing> [iterations] [threads]
///   nbclos circuit <n> <m> <r> [steps]
///   nbclos fault-sweep <n> <r> <max_failures> [perms] [seed]
///   nbclos verify <n> <r> <exhaustive|random|adversarial> [thm3|dmodk]
///                 [--m M] [--threads T] [--trials N] [--restarts R]
///                 [--steps S] [--seed S] [--json]
///   nbclos --version
///
/// Global options (any subcommand):
///   --metrics FILE    dump the merged metrics snapshot as JSON after the
///                     command finishes ("-" = stdout)
///   --trace-out FILE  collect a span/event trace during the command and
///                     write it on exit — Chrome trace_event JSON, or
///                     JSONL when FILE ends in ".jsonl"
///   --prom-out FILE   write the metrics snapshot in Prometheus text
///                     exposition format on exit ("-" = stdout)
///   --timeseries-out FILE
///                     arm the flight recorder for the command's engine
///                     run and write the merged time series on exit —
///                     CSV when FILE ends in ".csv", else JSON
///                     ("-" = JSON to stdout)
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

#include "nbclos/obs/flight_recorder.hpp"
#include "nbclos/obs/metrics.hpp"
#include "nbclos/obs/prom_export.hpp"
#include "nbclos/obs/run_info.hpp"
#include "nbclos/obs/series_export.hpp"
#include "nbclos/obs/trace.hpp"
#include "nbclos/util/json.hpp"

#include "nbclos/adaptive/router.hpp"
#include "nbclos/analysis/parallel.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/circuit/clos_switch.hpp"
#include "nbclos/core/designer.hpp"
#include "nbclos/core/fabric.hpp"
#include "nbclos/fault/sweep.hpp"
#include "nbclos/flow/engine.hpp"
#include "nbclos/flow/sharded.hpp"
#include "nbclos/routing/kary_updown.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"
#include "nbclos/sim/shard_router.hpp"
#include "nbclos/sim/sharded.hpp"
#include "nbclos/topology/dot.hpp"
#include "nbclos/util/table.hpp"
#include "nbclos/util/thread_pool.hpp"

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  nbclos design <radix> [target_ports]\n"
            << "  nbclos certify <n> [r]\n"
            << "  nbclos schedule <n> <r>\n"
            << "  nbclos sim|simulate <topo> <load> "
               "<thm3|dmodk|random|adaptive> [--shards N]\n"
            << "  nbclos flow-sim <topo> <load> [thm3|dmodk] [--shards N]\n"
               "                  [--packet F] [--buffers F] [--vcs V] "
               "[--switching wormhole|vct]\n"
               "                  [--credit|--onoff] [--credit-delay D] "
               "[--seed S] [--json]\n"
            << "  nbclos load-sweep <topo> <routing> [rates_csv] [threads] "
               "[--shards N]\n"
            << "  (<topo> = <n> <r> for ftree(n+n^2, r), or kary:K,H)\n"
            << "  nbclos saturation <n> <r> <routing> [iterations] [threads]\n"
            << "  nbclos circuit <n> <m> <r> [steps]\n"
            << "  nbclos dot <n> [r]           (Graphviz to stdout)\n"
            << "  nbclos fault-sweep <n> <r> <max_failures> [perms] [seed]\n"
            << "  nbclos verify <n> <r> <exhaustive|random|adversarial> "
               "[thm3|dmodk]\n"
            << "                [--m M] [--threads T] [--trials N] "
               "[--restarts R] [--steps S]\n"
            << "                [--seed S] [--json]\n"
            << "  nbclos metrics-serve [--port P] [--max-requests N]\n"
            << "  nbclos --version\n"
            << "global options: --metrics FILE|-   --trace-out FILE[.jsonl]\n"
            << "                --prom-out FILE|-  --timeseries-out "
               "FILE[.csv]|-\n";
  return 2;
}

/// Shard count of the command that ran (0 = not a sharded run) —
/// recorded in the manifest of the --metrics dump.
std::uint32_t g_manifest_shards = 0;

/// --timeseries-out destination; non-empty arms the flight recorder in
/// the single-run engine commands (simulate, flow-sim).
std::string g_timeseries_out;

/// Recorder output stashed by the command that ran, written by main()
/// on exit (empty when the command has no recorder or recording was
/// not armed — still a valid, empty document).
std::vector<nbclos::obs::MergedSeries> g_series;
nbclos::obs::FlightRecorder::Config g_series_config;

void stash_recorder(const nbclos::obs::FlightRecorder& recorder) {
  g_series = recorder.merged();
  g_series_config = recorder.config();
}

/// Merged metrics snapshot as a JSON document (empty array in an
/// NBCLOS_OBS=OFF build) with the build manifest attached.
void write_metrics_json(std::ostream& out) {
  const auto samples = nbclos::obs::metrics().snapshot();
  nbclos::JsonWriter json(out);
  json.begin_object();
  json.key("metrics").begin_array();
  for (const auto& sample : samples) {
    json.begin_object();
    json.member("name", sample.name);
    switch (sample.kind) {
      case nbclos::obs::MetricSample::Kind::kCounter:
        json.member("kind", "counter");
        json.member("count", sample.count);
        break;
      case nbclos::obs::MetricSample::Kind::kGauge:
        json.member("kind", "gauge");
        json.member("value", sample.gauge);
        break;
      case nbclos::obs::MetricSample::Kind::kHistogram:
        json.member("kind", "histogram");
        json.member("count", sample.count);
        json.member("p50", sample.p50);
        json.member("p99", sample.p99);
        json.member("p999", sample.p999);
        json.member("bucket_width", sample.hist_bucket_width);
        break;
    }
    json.end_object();
  }
  json.end_array();
  auto manifest = nbclos::obs::RunInfo::current();
  manifest.shards = g_manifest_shards;
  manifest.peak_rss_kb = nbclos::obs::peak_rss_kb();  // after the command ran
  json.key("manifest");
  manifest.write_json(json);
  json.end_object();
  out << "\n";
}

bool ends_with(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::uint32_t arg_u32(const std::vector<std::string>& args, std::size_t i) {
  return static_cast<std::uint32_t>(std::stoul(args.at(i)));
}

/// Remove `name <value>` from `args` wherever it appears; returns the
/// parsed value, or nullopt when the flag is absent.
std::optional<std::uint32_t> take_u32_flag(std::vector<std::string>& args,
                                           const std::string& name) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] != name) continue;
    if (i + 1 >= args.size()) {
      throw std::invalid_argument(name + " needs a value");
    }
    const auto value = static_cast<std::uint32_t>(std::stoul(args[i + 1]));
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    return value;
  }
  return std::nullopt;
}

/// A simulated fabric: ftree(n + n^2, r) from two positional tokens, or
/// a K-ary H-tree from one "kary:K,H" token.  Advances `i` past what it
/// consumed.
struct TopoSpec {
  bool kary = false;
  std::uint32_t n = 0, r = 0;  // ftree, when !kary
  std::uint32_t k = 0, h = 0;  // k-ary h-tree, when kary
  std::string name;
};

TopoSpec parse_topo(const std::vector<std::string>& args, std::size_t& i) {
  TopoSpec topo;
  const std::string& first = args.at(i);
  if (first.rfind("kary:", 0) == 0) {
    const auto comma = first.find(',');
    if (comma == std::string::npos) {
      throw std::invalid_argument("k-ary spec is kary:K,H");
    }
    topo.kary = true;
    topo.k = static_cast<std::uint32_t>(std::stoul(first.substr(5, comma - 5)));
    topo.h = static_cast<std::uint32_t>(std::stoul(first.substr(comma + 1)));
    topo.name = "kary(" + std::to_string(topo.k) + "," +
                std::to_string(topo.h) + ")";
    i += 1;
  } else {
    topo.n = arg_u32(args, i);
    topo.r = arg_u32(args, i + 1);
    topo.name = "ftree(" + std::to_string(topo.n) + "+" +
                std::to_string(topo.n * topo.n) + ", " +
                std::to_string(topo.r) + ")";
    i += 2;
  }
  return topo;
}

/// Pure ShardRouter for a ShardedSim run.  `cache` receives the route
/// cache a thm3 router replays (the caller keeps it alive); `views_plan`
/// is the partition its per-shard CSR views are carved on.
std::unique_ptr<nbclos::sim::ShardRouter> make_shard_router(
    const TopoSpec& topo, const nbclos::FoldedClos* ft,
    const nbclos::Network& net, const std::string& routing,
    std::uint32_t shards,
    std::shared_ptr<const nbclos::routing::ChannelRouteCache>& cache) {
  if (topo.kary) {
    if (routing != "dmodk") {
      throw std::invalid_argument(
          "k-ary fabrics support only the dmodk routing");
    }
    return std::make_unique<nbclos::sim::KaryDmodkRouter>(net, topo.k, topo.h);
  }
  if (routing == "dmodk") {
    return std::make_unique<nbclos::sim::FtreeDmodkRouter>(*ft);
  }
  if (routing == "thm3") {
    const nbclos::YuanNonblockingRouting yuan(*ft);
    cache = std::make_shared<const nbclos::routing::ChannelRouteCache>(
        net, [&](nbclos::SDPair sd) {
          nbclos::LinkId run[nbclos::FoldedClos::kMaxPathLinks];
          const auto count = ft->links_into(yuan.route(sd), run);
          std::vector<std::uint32_t> channels;
          for (std::uint32_t j = 0; j < count; ++j) {
            channels.push_back(run[j].value);
          }
          return channels;
        });
    auto router = std::make_unique<nbclos::sim::CachedShardRouter>(*cache);
    const auto plan = nbclos::sim::ShardPlan::build(net, shards);
    router->attach_views(plan.vertex_begin);
    return router;
  }
  throw std::invalid_argument(
      "routing '" + routing +
      "' consults global queue state and cannot run sharded");
}

int cmd_design(const std::vector<std::string>& args) {
  const auto radix = arg_u32(args, 0);
  const auto design = nbclos::design_for_radix(radix);
  if (!design) {
    std::cout << "no nonblocking design fits radix " << radix
              << " (need >= 6)\n";
    return 1;
  }
  std::cout << "Best two-level design for radix-" << radix << " switches: "
            << "ftree(" << design->n << "+" << design->n * design->n << ", "
            << design->switch_radix << ")\n"
            << "  ports:    " << design->ports << "\n"
            << "  switches: " << design->switches << " (radix "
            << design->switch_radix << ")\n"
            << "  links:    " << design->links << " (bidirectional)\n";
  if (args.size() >= 2) {
    const auto target = std::stoull(args[1]);
    for (std::uint32_t levels = 2; levels <= 6; ++levels) {
      const auto rec = nbclos::recursive_design(design->n, levels);
      if (rec.ports >= target) {
        std::cout << "To reach " << target << " ports: " << levels
                  << " levels, " << rec.ports << " ports, " << rec.switches
                  << " switches\n";
        return 0;
      }
    }
    std::cout << "target not reachable within 6 levels\n";
  }
  return 0;
}

int cmd_certify(const std::vector<std::string>& args) {
  const auto n = arg_u32(args, 0);
  const std::optional<std::uint32_t> r =
      args.size() >= 2 ? std::optional(arg_u32(args, 1)) : std::nullopt;
  const nbclos::NonblockingFabric fabric(n, r);
  std::cout << "ftree(" << n << "+" << n * n << ", " << fabric.topology().r()
            << "): " << fabric.port_count() << " ports\n"
            << "Lemma 1 audit over "
            << fabric.topology().cross_pair_count() << " SD pairs: ";
  const bool ok = fabric.certify();
  std::cout << (ok ? "NONBLOCKING (proof for this instance)" : "FAILED")
            << "\n";
  return ok ? 0 : 1;
}

int cmd_schedule(const std::vector<std::string>& args) {
  const auto n = arg_u32(args, 0);
  const auto r = arg_u32(args, 1);
  const nbclos::adaptive::AdaptiveParams params{
      n, r, nbclos::min_digit_width(r, n)};
  const nbclos::adaptive::NonblockingAdaptiveRouter router(params);
  nbclos::Xoshiro256 rng(1);
  std::uint32_t worst = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto pattern = nbclos::random_permutation(n * r, rng);
    worst = std::max(worst, router.route(pattern).top_switches_used);
  }
  std::cout << "NONBLOCKINGADAPTIVE on ftree(" << n << "+m, " << r
            << "), c = " << params.c << ":\n"
            << "  worst top switches over 50 random permutations: " << worst
            << "\n  deterministic requirement: n^2 = " << n * n << "\n";
  return 0;
}

int cmd_simulate(std::vector<std::string> args) {
  const auto shards = take_u32_flag(args, "--shards");
  std::size_t i = 0;
  const auto topo = parse_topo(args, i);
  const double load = std::stod(args.at(i++));
  const std::string routing = args.at(i++);
  g_manifest_shards = shards.value_or(0);

  std::unique_ptr<nbclos::FoldedClos> ft;
  nbclos::Network net = [&] {
    if (topo.kary) return nbclos::build_kary_ntree(topo.k, topo.h);
    ft = std::make_unique<nbclos::FoldedClos>(
        nbclos::FtreeParams{topo.n, topo.n * topo.n, topo.r});
    return nbclos::build_network(*ft);
  }();
  const auto terminals = static_cast<std::uint32_t>(net.terminals().size());
  const auto shift = topo.kary ? topo.k + 1 : topo.n + 1;
  const auto traffic = nbclos::sim::TrafficPattern::permutation(
      nbclos::shift_permutation(terminals, shift), terminals);

  nbclos::sim::SimConfig config;
  config.injection_rate = load;
  config.warmup_cycles = 2000;
  config.measure_cycles = 8000;
  config.record_timeseries = !g_timeseries_out.empty();

  // Sharded engine (or any k-ary run — its routing is already a pure
  // ShardRouter, so one shard is the natural engine for it too).
  if (shards.has_value() || topo.kary) {
    std::shared_ptr<const nbclos::routing::ChannelRouteCache> cache;
    const auto router = make_shard_router(topo, ft.get(), net, routing,
                                          shards.value_or(1), cache);
    nbclos::sim::ShardedSim sim(net, *router, traffic, config,
                                shards.value_or(1));
    const auto result = sim.run();
    stash_recorder(sim.recorder());
    std::cout << topo.name << ", " << router->name()
              << ", shift permutation, offered " << load << ", "
              << sim.shard_count()
              << " shard(s) [results are shard-count independent]:\n"
              << "  accepted throughput: "
              << nbclos::format_double(result.accepted_throughput)
              << " flits/cycle/terminal\n  mean latency:        "
              << nbclos::format_double(result.mean_latency, 1) << " cycles\n"
              << "  cross-shard flits:   "
              << sim.telemetry().cross_shard_flits << "\n"
              << "  saturated:           "
              << (result.saturated() ? "yes" : "no") << "\n";
    return 0;
  }

  std::unique_ptr<nbclos::sim::RoutingOracle> oracle;
  std::unique_ptr<nbclos::RoutingTable> table;
  std::unique_ptr<nbclos::YuanNonblockingRouting> yuan;
  if (routing == "thm3") {
    yuan = std::make_unique<nbclos::YuanNonblockingRouting>(*ft);
    table = std::make_unique<nbclos::RoutingTable>(
        nbclos::RoutingTable::materialize(*yuan));
    oracle = std::make_unique<nbclos::sim::FtreeOracle>(
        *ft, nbclos::sim::UplinkPolicy::kTable, table.get());
  } else if (routing == "dmodk") {
    oracle = std::make_unique<nbclos::sim::FtreeOracle>(
        *ft, nbclos::sim::UplinkPolicy::kDModK);
  } else if (routing == "random") {
    oracle = std::make_unique<nbclos::sim::FtreeOracle>(
        *ft, nbclos::sim::UplinkPolicy::kRandom);
  } else if (routing == "adaptive") {
    oracle = std::make_unique<nbclos::sim::FtreeOracle>(
        *ft, nbclos::sim::UplinkPolicy::kLeastQueue);
  } else {
    return usage();
  }

  nbclos::sim::PacketSim sim(net, *oracle, traffic, config);
  const auto result = sim.run();
  stash_recorder(sim.recorder());
  std::cout << topo.name << ", " << oracle->name()
            << ", shift permutation, offered " << load
            << ":\n  accepted throughput: "
            << nbclos::format_double(result.accepted_throughput)
            << " flits/cycle/terminal\n  mean latency:        "
            << nbclos::format_double(result.mean_latency, 1) << " cycles\n"
            << "  saturated:           "
            << (result.saturated() ? "yes" : "no") << "\n";
  return 0;
}

/// Cycle-level flow-control run: finite buffers, credits/on-off, wormhole
/// or virtual cut-through — the effects `simulate` (ideal switches)
/// abstracts away.  Only deterministic single-path routings make sense
/// here, because the flit engine consumes a materialized channel cache.
/// `--shards N` routes the run through flow::ShardedFlowSim (counter
/// injection; results are shard-count independent); `kary:K,H` fabrics
/// route destination-based up/down (the d-mod-k analogue).
int cmd_flow_sim(std::vector<std::string> args) {
  const auto shards = take_u32_flag(args, "--shards");
  g_manifest_shards = shards.value_or(0);
  std::size_t i = 0;
  const auto topo = parse_topo(args, i);
  const double load = std::stod(args.at(i++));
  std::string routing_name = topo.kary ? "dmodk" : "thm3";
  if (i < args.size() && args[i].rfind("--", 0) != 0) routing_name = args[i++];

  nbclos::flow::FlowConfig config;
  config.injection_rate = load;
  bool json = false;
  for (; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto next = [&] { return args.at(++i); };
    if (flag == "--packet") {
      config.packet_flits = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--buffers") {
      config.buffer_flits = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--vcs") {
      config.vcs = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--switching") {
      const std::string mode = next();
      if (mode == "wormhole") {
        config.switching = nbclos::flow::Switching::kWormhole;
      } else if (mode == "vct") {
        config.switching = nbclos::flow::Switching::kVirtualCutThrough;
      } else {
        throw std::invalid_argument("unknown switching mode: " + mode);
      }
    } else if (flag == "--credit") {
      config.backpressure = nbclos::flow::Backpressure::kCredit;
    } else if (flag == "--onoff") {
      config.backpressure = nbclos::flow::Backpressure::kOnOff;
    } else if (flag == "--credit-delay") {
      config.credit_delay = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--seed") {
      config.seed = std::stoull(next());
    } else if (flag == "--json") {
      json = true;
    } else {
      throw std::invalid_argument("unknown flag: " + flag);
    }
  }

  std::unique_ptr<nbclos::FoldedClos> ft;
  const nbclos::Network net = [&] {
    if (topo.kary) return nbclos::build_kary_ntree(topo.k, topo.h);
    ft = std::make_unique<nbclos::FoldedClos>(
        nbclos::FtreeParams{topo.n, topo.n * topo.n, topo.r});
    return nbclos::build_network(*ft);
  }();
  std::shared_ptr<const nbclos::flow::RouteSource> routes;
  std::string routing_label;
  if (topo.kary) {
    if (routing_name != "dmodk") {
      throw std::invalid_argument(
          "k-ary fabrics support only the dmodk routing");
    }
    // Pure O(1) dmodk arithmetic — no per-pair table, so k-ary fabrics
    // scale to 10^6 terminals where the O(T^2) cache cannot exist.
    routes = std::make_shared<const nbclos::flow::PureRouteSource>(
        net, std::make_shared<const nbclos::sim::KaryDmodkRouter>(
                 net, topo.k, topo.h));
    routing_label = "kary-dmodk";
  } else {
    std::unique_ptr<nbclos::SinglePathRouting> routing;
    if (routing_name == "thm3") {
      routing = std::make_unique<nbclos::YuanNonblockingRouting>(*ft);
    } else if (routing_name == "dmodk") {
      routing = std::make_unique<nbclos::DModKRouting>(*ft);
    } else {
      throw std::invalid_argument("unknown routing: " + routing_name);
    }
    routes = std::make_shared<const nbclos::flow::CacheRouteSource>(
        std::make_shared<const nbclos::routing::ChannelRouteCache>(
            net, [&](nbclos::SDPair sd) {
              nbclos::LinkId run[nbclos::FoldedClos::kMaxPathLinks];
              const auto count = ft->links_into(routing->route(sd), run);
              std::vector<std::uint32_t> channels;
              for (std::uint32_t k = 0; k < count; ++k) {
                channels.push_back(run[k].value);
              }
              return channels;
            }));
    routing_label = routing->name();
  }
  const auto terminals = static_cast<std::uint32_t>(net.terminals().size());
  const auto shift = topo.kary ? topo.k + 1 : topo.n + 1;
  const auto traffic = nbclos::sim::TrafficPattern::permutation(
      nbclos::shift_permutation(terminals, shift), terminals);

  config.record_timeseries = !g_timeseries_out.empty();
  nbclos::flow::FlowResult result;
  nbclos::flow::DeadlockForensics forensics;
  nbclos::flow::ArenaStats arena{};
  if (shards.has_value()) {
    config.counter_injection = true;  // the sharded engine's only mode
    nbclos::flow::ShardedFlowSim sim(routes, traffic, config, *shards);
    result = sim.run();
    stash_recorder(sim.recorder());
    forensics = sim.forensics();
    arena = sim.arena_stats();
  } else {
    nbclos::flow::FlowSim sim(routes, traffic, config);
    result = sim.run();
    stash_recorder(sim.recorder());
    forensics = sim.forensics();
    arena = sim.arena_stats();
  }

  const bool vct =
      config.switching == nbclos::flow::Switching::kVirtualCutThrough;
  const bool onoff =
      config.backpressure == nbclos::flow::Backpressure::kOnOff;

  if (json) {
    nbclos::JsonWriter jw(std::cout);
    jw.begin_object();
    jw.member("topology", topo.name);
    jw.member("routing", routing_label);
    jw.member("traffic", "shift_permutation");
    jw.key("config").begin_object();
    jw.member("shards", static_cast<std::uint64_t>(shards.value_or(0)));
    jw.member("injection_rate", config.injection_rate);
    jw.member("packet_flits", config.packet_flits);
    jw.member("buffer_flits", config.buffer_flits);
    jw.member("vcs", config.vcs);
    jw.member("switching", vct ? "vct" : "wormhole");
    jw.member("backpressure", onoff ? "onoff" : "credit");
    jw.member("credit_delay", config.credit_delay);
    jw.member("warmup_cycles", config.warmup_cycles);
    jw.member("measure_cycles", config.measure_cycles);
    jw.member("seed", config.seed);
    jw.end_object();
    jw.key("result").begin_object();
    jw.member("offered_load", result.offered_load);
    jw.member("accepted_throughput", result.accepted_throughput);
    jw.member("mean_latency", result.mean_latency);
    jw.member("p50_latency", result.p50_latency);
    jw.member("p99_latency", result.p99_latency);
    jw.member("p999_latency", result.p999_latency);
    jw.member("injected_packets", result.injected_packets);
    jw.member("delivered_packets", result.delivered_packets);
    jw.member("mean_switch_queue_depth", result.mean_switch_queue_depth);
    jw.member("credit_stall_cycles", result.credit_stall_cycles);
    jw.member("vc_stall_cycles", result.vc_stall_cycles);
    jw.member("mean_stall_cycles", result.mean_stall_cycles);
    jw.member("p99_stall_cycles", result.p99_stall_cycles);
    jw.member("peak_buffer_flits", result.peak_buffer_flits);
    jw.member("peak_live_packets", result.peak_live_packets);
    jw.member("saturated", result.saturated());
    jw.member("deadlocked", result.deadlocked);
    if (result.deadlocked) {
      jw.member("deadlock_cycle", result.deadlock_cycle);
      jw.member("stuck_flits", result.stuck_flits);
    }
    jw.end_object();
    if (forensics.valid) {
      jw.key("forensics").begin_object();
      jw.member("trip_cycle", forensics.trip_cycle);
      jw.member("stuck_flits", forensics.stuck_flits);
      jw.key("blocked").begin_array();
      for (const auto& report : forensics.blocked) {
        jw.begin_object();
        jw.member("buffer", report.buffer);
        jw.member("channel", report.channel);
        jw.member("occupancy", report.occupancy);
        if (report.waiting_for !=
            nbclos::flow::BlockedBufferReport::kWaitsOnNone) {
          jw.member("waiting_for", report.waiting_for);
        }
        jw.member("blocked_since", report.blocked_since);
        jw.member("on_cycle", report.on_cycle);
        jw.end_object();
      }
      jw.end_array();
      jw.key("wait_cycle").begin_array();
      for (const auto buffer : forensics.wait_cycle) jw.value(buffer);
      jw.end_array();
      jw.end_object();
    }
    jw.key("arena").begin_object();
    jw.member("route_source", routes->label());
    jw.member("route_bytes", static_cast<std::uint64_t>(routes->bytes()));
    jw.member("flit_arena_bytes",
              static_cast<std::uint64_t>(arena.flit_arena_bytes));
    jw.member("packet_arena_bytes",
              static_cast<std::uint64_t>(arena.packet_arena_bytes));
    jw.member("resident_slab_slots", arena.resident_slots);
    jw.member("peak_slab_slots", arena.peak_slots);
    jw.member("spill_bytes", static_cast<std::uint64_t>(arena.spill_bytes));
    jw.end_object();
    jw.key("manifest");
    auto manifest = nbclos::obs::RunInfo::current();
    manifest.shards = shards.value_or(0);
    manifest.write_json(jw);
    jw.end_object();
    std::cout << "\n";
    return result.deadlocked ? 1 : 0;
  }

  std::cout << topo.name << ", " << routing_label
            << ", shift permutation, offered " << load;
  if (shards.has_value()) {
    std::cout << ", " << *shards
              << " shard(s) [results are shard-count independent]";
  }
  std::cout << ":\n"
            << "  flow control:        " << (vct ? "vct" : "wormhole") << " + "
            << (onoff ? "on/off" : "credit") << ", " << config.buffer_flits
            << " flits/buffer, " << config.vcs << " VC(s), "
            << config.packet_flits << "-flit packets\n"
            << "  accepted throughput: "
            << nbclos::format_double(result.accepted_throughput)
            << " flits/cycle/terminal\n  mean latency:        "
            << nbclos::format_double(result.mean_latency, 1)
            << " cycles (p99 "
            << nbclos::format_double(result.p99_latency, 1) << ")\n"
            << "  backpressure stalls: " << result.credit_stall_cycles
            << " credit + " << result.vc_stall_cycles << " vc cycles\n"
            << "  peak buffer flits:   " << result.peak_buffer_flits << " of "
            << config.buffer_flits << "\n"
            << "  saturated:           "
            << (result.saturated() ? "yes" : "no") << "\n";
  if (result.deadlocked) {
    std::cout << "  DEADLOCK at cycle " << result.deadlock_cycle << " ("
              << result.stuck_flits << " flits wedged)\n";
    if (forensics.valid) {
      std::cout << "  blocked FIFOs (" << forensics.blocked.size() << "):\n";
      for (const auto& report : forensics.blocked) {
        std::cout << "    buffer " << report.buffer << " (channel "
                  << report.channel << ", " << report.occupancy
                  << " flits, blocked since cycle " << report.blocked_since
                  << ")";
        if (report.waiting_for !=
            nbclos::flow::BlockedBufferReport::kWaitsOnNone) {
          std::cout << " -> waits on buffer " << report.waiting_for;
        }
        if (report.on_cycle) std::cout << "  [circular wait]";
        std::cout << "\n";
      }
      if (!forensics.wait_cycle.empty()) {
        std::cout << "  circular wait chain:";
        for (const auto buffer : forensics.wait_cycle) {
          std::cout << " " << buffer;
        }
        std::cout << " -> " << forensics.wait_cycle.front() << "\n";
      }
    }
  }
  return result.deadlocked ? 1 : 0;
}

/// Routing-policy name -> oracle factory for the parallel sweep drivers.
/// `table` (when non-null) must outlive every run the factory seeds.
nbclos::sim::OracleFactory make_oracle_factory(
    const nbclos::FoldedClos& ft, const nbclos::RoutingTable* table,
    const std::string& routing) {
  using nbclos::sim::UplinkPolicy;
  UplinkPolicy policy;
  if (routing == "thm3") {
    policy = UplinkPolicy::kTable;
  } else if (routing == "dmodk") {
    policy = UplinkPolicy::kDModK;
  } else if (routing == "random") {
    policy = UplinkPolicy::kRandom;
  } else if (routing == "adaptive") {
    policy = UplinkPolicy::kLeastQueue;
  } else {
    throw std::invalid_argument("unknown routing: " + routing);
  }
  return [&ft, table, policy](std::uint64_t run_seed,
                              nbclos::fault::DegradedView*) {
    return std::make_unique<nbclos::sim::FtreeOracle>(ft, policy, table,
                                                      run_seed);
  };
}

std::vector<double> parse_rates_csv(const std::string& csv) {
  std::vector<double> rates;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) rates.push_back(std::stod(item));
  return rates;
}

int cmd_load_sweep(std::vector<std::string> args) {
  const auto shards = take_u32_flag(args, "--shards");
  std::size_t i = 0;
  const auto topo = parse_topo(args, i);
  const std::string routing = args.at(i++);
  const std::vector<double> rates =
      i < args.size() ? parse_rates_csv(args[i++])
                      : std::vector<double>{0.1, 0.3, 0.5, 0.7, 0.9, 1.0};
  const std::size_t threads = i < args.size() ? std::stoull(args[i++]) : 0;
  g_manifest_shards = shards.value_or(0);

  std::unique_ptr<nbclos::FoldedClos> ft;
  nbclos::Network net = [&] {
    if (topo.kary) return nbclos::build_kary_ntree(topo.k, topo.h);
    ft = std::make_unique<nbclos::FoldedClos>(
        nbclos::FtreeParams{topo.n, topo.n * topo.n, topo.r});
    return nbclos::build_network(*ft);
  }();
  const auto terminals = static_cast<std::uint32_t>(net.terminals().size());
  const auto shift = topo.kary ? topo.k + 1 : topo.n + 1;
  const auto traffic = nbclos::sim::TrafficPattern::permutation(
      nbclos::shift_permutation(terminals, shift), terminals);

  nbclos::sim::SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 8000;

  std::vector<nbclos::sim::SimResult> results;
  std::string engine_note;
  if (shards.has_value() || topo.kary) {
    std::shared_ptr<const nbclos::routing::ChannelRouteCache> cache;
    const auto router = make_shard_router(topo, ft.get(), net, routing,
                                          shards.value_or(1), cache);
    results = nbclos::sim::load_sweep_sharded(net, *router, traffic, config,
                                              rates, shards.value_or(1));
    engine_note = std::to_string(shards.value_or(1)) +
                  " shard(s); results are shard-count independent";
  } else {
    std::unique_ptr<nbclos::RoutingTable> table;
    if (routing == "thm3") {
      const nbclos::YuanNonblockingRouting yuan(*ft);
      table = std::make_unique<nbclos::RoutingTable>(
          nbclos::RoutingTable::materialize(yuan));
    }
    const auto factory = make_oracle_factory(*ft, table.get(), routing);
    nbclos::ThreadPool pool(threads);
    results = nbclos::sim::load_sweep(net, factory, traffic, config, rates,
                                      &pool);
    engine_note = std::to_string(pool.thread_count()) +
                  " threads; results are thread-count independent";
  }

  std::cout << "Load sweep on " << topo.name << ", " << routing
            << ", shift permutation (" << engine_note << "):\n";
  nbclos::TextTable out({"offered", "accepted", "mean lat", "p50", "p99",
                         "p99.9", "queue depth", "saturated"});
  for (const auto& result : results) {
    out.add_row({nbclos::format_double(result.offered_load),
                 nbclos::format_double(result.accepted_throughput),
                 nbclos::format_double(result.mean_latency, 1),
                 nbclos::format_double(result.p50_latency, 1),
                 nbclos::format_double(result.p99_latency, 1),
                 nbclos::format_double(result.p999_latency, 1),
                 nbclos::format_double(result.mean_switch_queue_depth),
                 result.saturated() ? "yes" : "no"});
  }
  out.print(std::cout);
  return 0;
}

int cmd_saturation(const std::vector<std::string>& args) {
  const auto n = arg_u32(args, 0);
  const auto r = arg_u32(args, 1);
  const std::string routing = args.at(2);
  const std::uint32_t iterations = args.size() >= 4 ? arg_u32(args, 3) : 6;
  const std::size_t threads = args.size() >= 5 ? std::stoull(args[4]) : 0;

  const nbclos::FoldedClos ft(nbclos::FtreeParams{n, n * n, r});
  const auto net = nbclos::build_network(ft);
  const auto pattern = nbclos::shift_permutation(ft.leaf_count(), n + 1);
  const auto traffic =
      nbclos::sim::TrafficPattern::permutation(pattern, ft.leaf_count());
  std::unique_ptr<nbclos::RoutingTable> table;
  if (routing == "thm3") {
    const nbclos::YuanNonblockingRouting yuan(ft);
    table = std::make_unique<nbclos::RoutingTable>(
        nbclos::RoutingTable::materialize(yuan));
  }
  const auto factory = make_oracle_factory(ft, table.get(), routing);

  nbclos::sim::SimConfig config;
  config.warmup_cycles = 2000;
  config.measure_cycles = 8000;
  nbclos::ThreadPool pool(threads);
  const double sat = nbclos::sim::find_saturation_load(
      net, factory, traffic, config, iterations, &pool);
  std::cout << "ftree(" << n << "+" << n * n << ", " << r << "), " << routing
            << ", shift permutation:\n  saturation load: "
            << nbclos::format_double(sat)
            << " flits/cycle/terminal (bracketing grid + " << iterations
            << " bisection steps, " << pool.thread_count() << " threads)\n";
  return 0;
}

int cmd_circuit(const std::vector<std::string>& args) {
  const auto n = arg_u32(args, 0);
  const auto m = arg_u32(args, 1);
  const auto r = arg_u32(args, 2);
  const std::uint64_t steps = args.size() >= 4 ? std::stoull(args[3]) : 20000;
  nbclos::circuit::ClosCircuitSwitch clos(n, m, r);
  nbclos::Xoshiro256 rng(5);
  const auto result = nbclos::circuit::run_churn(
      clos, nbclos::circuit::FitStrategy::kPacking, steps, 1.0, false, rng);
  clos.validate();
  std::cout << "Clos(" << n << ", " << m << ", " << r
            << ") circuit churn, packing strategy, " << steps << " steps:\n"
            << "  attempts: " << result.attempts << "\n  blocked:  "
            << result.blocked << " (P = "
            << nbclos::format_double(result.blocking_probability(), 4)
            << ")\n  strictly nonblocking bound 2n-1 = " << 2 * n - 1 << "\n";
  return 0;
}

int cmd_fault_sweep(const std::vector<std::string>& args) {
  nbclos::analysis::FaultSweepConfig config;
  config.n = arg_u32(args, 0);
  config.r = arg_u32(args, 1);
  config.max_failures = arg_u32(args, 2);
  if (args.size() >= 4) config.permutations_per_level = arg_u32(args, 3);
  if (args.size() >= 5) config.seed = std::stoull(args[4]);

  nbclos::ThreadPool pool;
  const auto result = nbclos::analysis::run_fault_sweep(config, pool);

  std::cout << "Fault sweep on ftree(" << config.n << "+"
            << config.n * config.n << ", " << config.r << "), seed "
            << config.seed << ", " << config.permutations_per_level
            << " random permutations per level (degraded Theorem 3 "
               "routing):\n";
  nbclos::TextTable table(
      {"failed links", "blocked", "unroutable", "worst collisions",
       "fallback pairs"});
  for (const auto& level : result.levels) {
    table.add_row({std::to_string(level.failures),
                   std::to_string(level.blocked_permutations),
                   std::to_string(level.unroutable_permutations),
                   std::to_string(level.worst_collisions),
                   std::to_string(level.fallback_pairs)});
  }
  table.print(std::cout);
  if (result.first_blocking_failures.has_value()) {
    std::cout << "nonblocking margin: first permutation blocks at "
              << *result.first_blocking_failures << " failed uplink pairs\n";
  } else {
    std::cout << "nonblocking margin: no permutation blocked within "
              << config.max_failures << " failed uplink pairs\n";
  }
  return 0;
}

/// Empirical nonblocking verification from the command line.  Always
/// drives the parallel engines (a 1-thread pool when --threads is not
/// given), whose results are thread-count independent, so --threads only
/// changes wall-clock time, never the verdict.
int cmd_verify(const std::vector<std::string>& args) {
  const auto n = arg_u32(args, 0);
  const auto r = arg_u32(args, 1);
  const std::string mode = args.at(2);
  std::string routing_name = "thm3";
  std::size_t i = 3;
  if (i < args.size() && args[i].rfind("--", 0) != 0) routing_name = args[i++];

  std::uint32_t m = n * n;
  std::size_t threads = 1;
  std::uint64_t trials = 10000;
  nbclos::AdversarialOptions options;
  std::uint64_t seed = 1;
  bool json = false;
  for (; i < args.size(); ++i) {
    const std::string& flag = args[i];
    const auto next = [&] { return args.at(++i); };
    if (flag == "--m") {
      m = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--threads") {
      threads = std::stoull(next());
    } else if (flag == "--trials") {
      trials = std::stoull(next());
    } else if (flag == "--restarts") {
      options.restarts = static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--steps") {
      options.steps_per_restart =
          static_cast<std::uint32_t>(std::stoul(next()));
    } else if (flag == "--seed") {
      seed = std::stoull(next());
    } else if (flag == "--json") {
      json = true;
    } else {
      throw std::invalid_argument("unknown flag: " + flag);
    }
  }

  const nbclos::FoldedClos ftree(nbclos::FtreeParams{n, m, r});
  std::unique_ptr<nbclos::SinglePathRouting> routing;
  if (routing_name == "thm3") {
    routing = std::make_unique<nbclos::YuanNonblockingRouting>(ftree);
  } else if (routing_name == "dmodk") {
    routing = std::make_unique<nbclos::DModKRouting>(ftree);
  } else {
    throw std::invalid_argument("unknown routing: " + routing_name);
  }

  nbclos::ThreadPool pool(threads);
  const auto factory = [&routing](std::uint64_t) {
    return nbclos::as_pattern_router(*routing);
  };
  nbclos::VerifyResult result;
  std::uint64_t space = 0;  // 0 = unbounded / not applicable
  if (mode == "exhaustive") {
    space = nbclos::factorial(ftree.leaf_count());
    result = nbclos::verify_exhaustive_parallel(ftree, factory, pool);
  } else if (mode == "random") {
    result = nbclos::verify_random_parallel(ftree, factory, trials, seed,
                                            pool);
  } else if (mode == "adversarial") {
    result = nbclos::verify_adversarial_parallel(ftree, *routing, options,
                                                 seed, pool);
  } else {
    throw std::invalid_argument("unknown verify mode: " + mode);
  }

  if (json) {
    std::cout << "{\"mode\": \"" << mode << "\", \"topology\": \"ftree(" << n
              << "+" << m << ", " << r << ")\", \"routing\": \""
              << routing->name() << "\", \"threads\": " << pool.thread_count()
              << ",\n \"nonblocking\": " << (result.nonblocking ? "true"
                                                                : "false")
              << ", \"permutations_checked\": " << result.permutations_checked;
    if (space > 0) std::cout << ", \"permutation_space\": " << space;
    if (result.counterexample.has_value()) {
      std::cout << ",\n \"counterexample_collisions\": "
                << result.counterexample_collisions
                << ", \"counterexample\": [";
      bool first = true;
      for (const auto sd : *result.counterexample) {
        if (!first) std::cout << ", ";
        first = false;
        std::cout << "[" << sd.src.value << ", " << sd.dst.value << "]";
      }
      std::cout << "]";
    }
    std::cout << "}\n";
    return result.nonblocking ? 0 : 1;
  }

  std::cout << "ftree(" << n << "+" << m << ", " << r << "), "
            << routing->name() << ", " << mode << " verification ("
            << pool.thread_count() << " threads):\n  permutations checked: "
            << result.permutations_checked;
  if (space > 0) std::cout << " of " << space;
  std::cout << "\n  verdict: ";
  if (result.nonblocking) {
    std::cout << (mode == "exhaustive"
                      ? "NONBLOCKING (proof for this instance)"
                      : "no counterexample found within budget");
  } else {
    std::cout << "BLOCKING (" << result.counterexample_collisions
              << " colliding path pairs)";
  }
  std::cout << "\n";
  if (result.counterexample.has_value()) {
    std::cout << "  counterexample:";
    for (const auto sd : *result.counterexample) {
      std::cout << " " << sd.src.value << "->" << sd.dst.value;
    }
    std::cout << "\n";
  }
  return result.nonblocking ? 0 : 1;
}

/// Minimal Prometheus scrape endpoint: warm the registry with one small
/// deterministic flow run (so a standalone scrape sees real content),
/// then serve the text exposition on 127.0.0.1.  `--max-requests N`
/// exits cleanly after N responses — what the CI smoke uses; the
/// default serves until killed.
int cmd_metrics_serve(std::vector<std::string> args) {
  std::uint32_t port = 9464;  // the Prometheus-convention exporter range
  std::uint64_t max_requests = 0;
  if (const auto p = take_u32_flag(args, "--port")) port = *p;
  if (const auto n = take_u32_flag(args, "--max-requests")) max_requests = *n;
  if (!args.empty()) {
    throw std::invalid_argument("unknown flag: " + args.front());
  }
#if !(defined(__unix__) || defined(__APPLE__))
  std::cerr << "metrics-serve needs POSIX sockets on this platform\n";
  return 1;
#else
  {
    nbclos::FoldedClos ft(nbclos::FtreeParams{4, 16, 8});
    const auto net = nbclos::build_network(ft);
    const nbclos::YuanNonblockingRouting routing(ft);
    const auto cache =
        std::make_shared<const nbclos::routing::ChannelRouteCache>(
            net, [&](nbclos::SDPair sd) {
              nbclos::LinkId run[nbclos::FoldedClos::kMaxPathLinks];
              const auto count = ft.links_into(routing.route(sd), run);
              std::vector<std::uint32_t> channels;
              for (std::uint32_t j = 0; j < count; ++j) {
                channels.push_back(run[j].value);
              }
              return channels;
            });
    const auto terminals = static_cast<std::uint32_t>(net.terminals().size());
    const auto traffic = nbclos::sim::TrafficPattern::permutation(
        nbclos::shift_permutation(terminals, 5), terminals);
    nbclos::flow::FlowConfig config;
    config.injection_rate = 0.2;
    config.warmup_cycles = 256;
    config.measure_cycles = 1024;
    config.record_timeseries = true;
    nbclos::flow::FlowSim sim(cache, traffic, config);
    (void)sim.run();
    stash_recorder(sim.recorder());
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::cerr << "metrics-serve: socket() failed\n";
    return 1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 16) != 0) {
    std::cerr << "metrics-serve: cannot listen on 127.0.0.1:" << port << "\n";
    ::close(fd);
    return 1;
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  std::cout << "serving metrics on http://127.0.0.1:" << ntohs(addr.sin_port)
            << "/metrics" << std::endl;

#ifdef MSG_NOSIGNAL
  constexpr int kSendFlags = MSG_NOSIGNAL;  // no SIGPIPE on a closed peer
#else
  constexpr int kSendFlags = 0;
#endif
  std::uint64_t served = 0;
  while (max_requests == 0 || served < max_requests) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) continue;
    char buf[2048];
    const auto got = ::recv(client, buf, sizeof(buf) - 1, 0);
    const std::string request(buf, got > 0 ? static_cast<std::size_t>(got)
                                           : 0);
    const bool want_metrics = request.rfind("GET /metrics", 0) == 0 ||
                              request.rfind("GET / ", 0) == 0;
    std::string body;
    std::string head;
    if (want_metrics) {
      body = nbclos::obs::prom_export_global();
      head =
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n";
    } else {
      body = "not found\n";
      head =
          "HTTP/1.1 404 Not Found\r\n"
          "Content-Type: text/plain; charset=utf-8\r\n";
    }
    const std::string response = head + "Content-Length: " +
                                 std::to_string(body.size()) +
                                 "\r\nConnection: close\r\n\r\n" + body;
    std::size_t off = 0;
    while (off < response.size()) {
      const auto sent = ::send(client, response.data() + off,
                               response.size() - off, kSendFlags);
      if (sent <= 0) break;
      off += static_cast<std::size_t>(sent);
    }
    ::close(client);
    ++served;
  }
  ::close(fd);
  return 0;
#endif
}

int cmd_dot(const std::vector<std::string>& args) {
  const auto n = arg_u32(args, 0);
  const std::optional<std::uint32_t> r =
      args.size() >= 2 ? std::optional(arg_u32(args, 1)) : std::nullopt;
  const nbclos::NonblockingFabric fabric(n, r);
  nbclos::DotOptions options;
  options.graph_name = "ftree";
  nbclos::write_dot(std::cout, fabric.to_network(), options);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Global observability flags may appear anywhere on the line; strip
  // them before dispatch so every subcommand supports them uniformly.
  std::string metrics_out;
  std::string trace_out;
  std::string prom_out;
  std::vector<std::string> words;
  for (int i = 1; i < argc; ++i) {
    const std::string word = argv[i];
    if (word == "--metrics" && i + 1 < argc) {
      metrics_out = argv[++i];
      continue;
    }
    if (word == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
      continue;
    }
    if (word == "--prom-out" && i + 1 < argc) {
      prom_out = argv[++i];
      continue;
    }
    if (word == "--timeseries-out" && i + 1 < argc) {
      g_timeseries_out = argv[++i];
      continue;
    }
    words.push_back(word);
  }
  if (words.empty()) return usage();
  const std::string command = words.front();
  if (command == "--version" || command == "version") {
    std::cout << nbclos::obs::RunInfo::current().summary() << "\n";
    return 0;
  }
  const std::vector<std::string> args(words.begin() + 1, words.end());

  if (!trace_out.empty()) {
    if (!nbclos::obs::kEnabled) {
      std::cerr << "nbclos: built with NBCLOS_OBS=OFF; trace output will be "
                   "empty\n";
    }
    nbclos::obs::TraceSession::start();
  }
  int rc;
  try {
    if (command == "design" && args.size() >= 1) {
      rc = cmd_design(args);
    } else if (command == "certify" && args.size() >= 1) {
      rc = cmd_certify(args);
    } else if (command == "schedule" && args.size() >= 2) {
      rc = cmd_schedule(args);
    } else if ((command == "simulate" || command == "sim") &&
               args.size() >= 3) {
      rc = cmd_simulate(args);
    } else if (command == "flow-sim" && args.size() >= 3) {
      rc = cmd_flow_sim(args);
    } else if (command == "load-sweep" && args.size() >= 2) {
      rc = cmd_load_sweep(args);
    } else if (command == "saturation" && args.size() >= 3) {
      rc = cmd_saturation(args);
    } else if (command == "circuit" && args.size() >= 3) {
      rc = cmd_circuit(args);
    } else if (command == "fault-sweep" && args.size() >= 3) {
      rc = cmd_fault_sweep(args);
    } else if (command == "verify" && args.size() >= 3) {
      rc = cmd_verify(args);
    } else if (command == "dot" && args.size() >= 1) {
      rc = cmd_dot(args);
    } else if (command == "metrics-serve") {
      rc = cmd_metrics_serve(args);
    } else {
      const bool known =
          command == "design" || command == "certify" ||
          command == "schedule" || command == "simulate" || command == "sim" ||
          command == "flow-sim" || command == "load-sweep" ||
          command == "saturation" ||
          command == "circuit" || command == "fault-sweep" ||
          command == "verify" || command == "dot";
      if (!known) std::cerr << "nbclos: unknown command '" << command << "'\n";
      return usage();
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    rc = 1;
  }

  if (!trace_out.empty()) {
    nbclos::obs::TraceSession::stop();
    std::ofstream out(trace_out);
    if (!out) {
      std::cerr << "error: cannot write trace to '" << trace_out << "'\n";
      return rc != 0 ? rc : 1;
    }
    if (ends_with(trace_out, ".jsonl")) {
      nbclos::obs::TraceSession::write_jsonl(out);
    } else {
      nbclos::obs::TraceSession::write_chrome(out);
    }
  }
  if (!metrics_out.empty()) {
    if (metrics_out == "-") {
      write_metrics_json(std::cout);
    } else {
      std::ofstream out(metrics_out);
      if (!out) {
        std::cerr << "error: cannot write metrics to '" << metrics_out
                  << "'\n";
        return rc != 0 ? rc : 1;
      }
      write_metrics_json(out);
    }
  }
  if (!prom_out.empty()) {
    const auto body = nbclos::obs::prom_export_global();
    if (prom_out == "-") {
      std::cout << body;
    } else {
      std::ofstream out(prom_out);
      if (!out) {
        std::cerr << "error: cannot write metrics to '" << prom_out << "'\n";
        return rc != 0 ? rc : 1;
      }
      out << body;
    }
  }
  if (!g_timeseries_out.empty()) {
    if (g_timeseries_out == "-") {
      nbclos::obs::write_timeseries_json(std::cout, g_series, g_series_config);
    } else if (!nbclos::obs::write_timeseries_file(g_timeseries_out, g_series,
                                                   g_series_config)) {
      std::cerr << "error: cannot write timeseries to '" << g_timeseries_out
                << "'\n";
      return rc != 0 ? rc : 1;
    }
  }
  return rc;
}
