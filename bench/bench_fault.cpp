/// \file bench_fault.cpp
/// \brief Degraded-operation experiment: accepted throughput of the
///        Theorem 3 fabric as uplink failures accumulate.
///
/// ftree(4+16, 8) under a shift permutation at high offered load, routed
/// by the fault-tolerant table oracle (Theorem 3 primary assignment,
/// least-loaded live fallback).  Each failure level fails a seed-fixed,
/// nested set of bottom<->top link pairs; the pristine run is the
/// baseline.  Levels run concurrently over a ThreadPool via
/// analysis::run_fault_throughput_sweep — each level is independently
/// seeded, so output is byte-identical at any thread count.  Emits a
/// single JSON document on stdout so downstream tooling can diff
/// degraded-vs-pristine throughput across levels.
#include <iostream>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/fault/sweep.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

int main() {
  constexpr std::uint32_t kN = 4;
  constexpr std::uint32_t kR = 8;
  constexpr double kLoad = 0.9;
  constexpr std::uint64_t kFaultSeed = 97;

  const nbclos::FoldedClos ftree(nbclos::FtreeParams{kN, kN * kN, kR});
  const auto net = nbclos::build_network(ftree);
  const auto pattern =
      nbclos::shift_permutation(ftree.leaf_count(), kN + 1);
  const auto traffic =
      nbclos::sim::TrafficPattern::permutation(pattern, ftree.leaf_count());
  const nbclos::YuanNonblockingRouting yuan(ftree);
  const auto table = nbclos::RoutingTable::materialize(yuan);

  nbclos::sim::SimConfig config;
  config.injection_rate = kLoad;
  config.warmup_cycles = 1500;
  config.measure_cycles = 6000;
  config.seed = 11;

  // 0..64 of the 128 bottom<->top pairs; the heavy levels push past what
  // least-loaded fallback can absorb so the degradation becomes visible.
  const std::vector<std::uint32_t> levels{0, 4, 8, 16, 32, 64};
  nbclos::ThreadPool pool;
  const auto results = nbclos::analysis::run_fault_throughput_sweep(
      ftree, net, table, traffic, config, levels, kFaultSeed, &pool);

  const double pristine = results.front().sim.accepted_throughput;
  std::cout << "{\n"
            << "  \"experiment\": \"fault_degradation\",\n"
            << "  \"topology\": \"ftree(" << kN << "+" << kN * kN << ", "
            << kR << ")\",\n"
            << "  \"routing\": \"ftree-fault-table (Theorem 3 primary)\",\n"
            << "  \"traffic\": \"shift permutation\",\n"
            << "  \"offered_load\": " << kLoad << ",\n"
            << "  \"fault_seed\": " << kFaultSeed << ",\n"
            << "  \"pristine_accepted_throughput\": " << pristine << ",\n"
            << "  \"levels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& level = results[i];
    std::cout << "    {\"failed_uplink_pairs\": " << level.failures
              << ", \"accepted_throughput\": "
              << level.sim.accepted_throughput
              << ", \"throughput_vs_pristine\": "
              << (pristine > 0.0 ? level.sim.accepted_throughput / pristine
                                 : 0.0)
              << ", \"mean_latency\": " << level.sim.mean_latency
              << ", \"dropped_packets\": " << level.sim.dropped_packets
              << ", \"reroutes\": " << level.reroutes << "}"
              << (i + 1 < results.size() ? "," : "") << "\n";
  }
  std::cout << "  ]\n}\n";
  return 0;
}
