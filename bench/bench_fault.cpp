/// \file bench_fault.cpp
/// \brief Degraded-operation experiment: accepted throughput of the
///        Theorem 3 fabric as uplink failures accumulate.
///
/// ftree(4+16, 8) under a shift permutation at high offered load, routed
/// by the fault-tolerant table oracle (Theorem 3 primary assignment,
/// least-loaded live fallback).  Each failure level fails a seed-fixed,
/// nested set of bottom<->top link pairs; the pristine run is the
/// baseline.  Levels run concurrently over a ThreadPool via
/// analysis::run_fault_throughput_sweep — each level is independently
/// seeded, so output is byte-identical at any thread count.  Emits a
/// single JSON document on stdout so downstream tooling can diff
/// degraded-vs-pristine throughput across levels.
#include <chrono>
#include <iostream>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/fault/sweep.hpp"
#include "nbclos/obs/run_info.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/util/json.hpp"

int main() {
  constexpr std::uint32_t kN = 4;
  constexpr std::uint32_t kR = 8;
  constexpr double kLoad = 0.9;
  constexpr std::uint64_t kFaultSeed = 97;

  const nbclos::FoldedClos ftree(nbclos::FtreeParams{kN, kN * kN, kR});
  const auto net = nbclos::build_network(ftree);
  const auto pattern =
      nbclos::shift_permutation(ftree.leaf_count(), kN + 1);
  const auto traffic =
      nbclos::sim::TrafficPattern::permutation(pattern, ftree.leaf_count());
  const nbclos::YuanNonblockingRouting yuan(ftree);
  const auto table = nbclos::RoutingTable::materialize(yuan);

  nbclos::sim::SimConfig config;
  config.injection_rate = kLoad;
  config.warmup_cycles = 1500;
  config.measure_cycles = 6000;
  config.seed = 11;

  // 0..64 of the 128 bottom<->top pairs; the heavy levels push past what
  // least-loaded fallback can absorb so the degradation becomes visible.
  const std::vector<std::uint32_t> levels{0, 4, 8, 16, 32, 64};
  const auto wall_start = std::chrono::steady_clock::now();
  nbclos::ThreadPool pool;
  const auto results = nbclos::analysis::run_fault_throughput_sweep(
      ftree, net, table, traffic, config, levels, kFaultSeed, &pool);

  auto manifest = nbclos::obs::RunInfo::current();
  manifest.seed = kFaultSeed;
  manifest.threads = static_cast<std::uint32_t>(pool.thread_count());
  manifest.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  const double pristine = results.front().sim.accepted_throughput;
  nbclos::JsonWriter json(std::cout);
  json.begin_object();
  json.member("experiment", "fault_degradation");
  const std::string topology = "ftree(" + std::to_string(kN) + "+" +
                               std::to_string(kN * kN) + ", " +
                               std::to_string(kR) + ")";
  json.member("topology", topology);
  json.member("routing", "ftree-fault-table (Theorem 3 primary)");
  json.member("traffic", "shift permutation");
  json.member("offered_load", kLoad);
  json.member("fault_seed", kFaultSeed);
  json.member("pristine_accepted_throughput", pristine);
  json.key("levels").begin_array();
  for (const auto& level : results) {
    json.begin_object();
    json.member("failed_uplink_pairs", level.failures);
    json.member("accepted_throughput", level.sim.accepted_throughput);
    json.member("throughput_vs_pristine",
                pristine > 0.0 ? level.sim.accepted_throughput / pristine
                               : 0.0);
    json.member("mean_latency", level.sim.mean_latency);
    json.member("dropped_packets", level.sim.dropped_packets);
    json.member("reroutes", level.reroutes);
    json.end_object();
  }
  json.end_array();
  json.key("manifest");
  manifest.write_json(json);
  json.end_object();
  std::cout << "\n";
  return 0;
}
