/// \file bench_throughput.cpp
/// \brief Figure-style experiment A (the paper's motivation, refs [5][7]):
///        delivered throughput under permutation traffic, across routings,
///        in the packet-level simulator.
///
/// Series:
///   * crossbar          — the ideal the paper wants to emulate;
///   * nonblocking ftree — ftree(n+n^2, r) + Theorem 3 table routing;
///   * d-mod-k ftree     — same topology, deployed-style static routing;
///   * d-mod-k (m = n)   — the "rearrangeably nonblocking" budget fabric;
///   * random per packet — oblivious spreading;
///   * least-queue       — local adaptive packet steering.
/// Expected shape: crossbar == nonblocking ftree (flat at offered load);
/// static/oblivious schemes saturate well below 1.0 on adversarial
/// permutations.
///
/// All (series x load) runs of a pattern execute concurrently over a
/// ThreadPool through the OracleFactory load_sweep, with per-run seeds —
/// output is identical at any thread count.  Flags: --csv appends CSV
/// blocks, --json emits a single JSON document instead of tables,
/// --quick shrinks the simulated window (CI smoke runs).
#include <chrono>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/obs/run_info.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"
#include "nbclos/util/json.hpp"
#include "nbclos/util/table.hpp"

namespace {

using nbclos::sim::SimConfig;

bool quick = false;

SimConfig base_config() {
  SimConfig config;
  config.warmup_cycles = quick ? 300 : 1500;
  config.measure_cycles = quick ? 1200 : 6000;
  config.queue_capacity = 8;
  config.seed = 11;
  return config;
}

/// Adversarial permutation for D-mod-K with m = n: all n destinations of
/// switch v share local number v mod n, so static destination-keyed
/// routing funnels the whole switch through one uplink.
nbclos::Permutation funnel_small_m(std::uint32_t n, std::uint32_t r) {
  nbclos::Permutation pattern;
  for (std::uint32_t v = 0; v < r; ++v) {
    for (std::uint32_t k = 0; k < n; ++k) {
      pattern.push_back({nbclos::LeafId{v * n + k},
                         nbclos::LeafId{((v + 1 + k) % r) * n + (v % n)}});
    }
  }
  return pattern;
}

/// Adversarial permutation for D-mod-K with m = n^2 = 16 on 32 leaves:
/// each source switch v sends to both members of two mod-16 residue
/// classes ({2v+4, 2v+20} and {2v+5, 2v+21} mod 32), so its four flows
/// collapse onto two uplinks whenever the routing keys on dst mod m for
/// m in {4, 16}.  The classes partition the leaves, so this is a full
/// permutation, and every pair is cross-switch.
nbclos::Permutation funnel_mod16() {
  nbclos::Permutation pattern;
  for (std::uint32_t v = 0; v < 8; ++v) {
    const std::uint32_t base = 2 * v;
    // k ordering chosen so no source maps to itself.
    pattern.push_back({nbclos::LeafId{v * 4 + 0},
                       nbclos::LeafId{(base + 20) % 32}});
    pattern.push_back({nbclos::LeafId{v * 4 + 1},
                       nbclos::LeafId{(base + 4) % 32}});
    pattern.push_back({nbclos::LeafId{v * 4 + 2},
                       nbclos::LeafId{(base + 5) % 32}});
    pattern.push_back({nbclos::LeafId{v * 4 + 3},
                       nbclos::LeafId{(base + 21) % 32}});
  }
  return pattern;
}

}  // namespace

int main(int argc, char** argv) {
  bool csv = false;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--csv") csv = true;
    if (flag == "--json") json = true;
    if (flag == "--quick") quick = true;
  }

  constexpr std::uint32_t kN = 4;
  constexpr std::uint32_t kR = 8;  // 32 terminals
  const nbclos::FoldedClos nb_ft(nbclos::FtreeParams{kN, kN * kN, kR});
  const nbclos::FoldedClos budget_ft(nbclos::FtreeParams{kN, kN, kR});
  const auto nb_net = nbclos::build_network(nb_ft);
  const auto budget_net = nbclos::build_network(budget_ft);
  const auto xbar_net = nbclos::build_crossbar(kN * kR);

  const nbclos::YuanNonblockingRouting yuan(nb_ft);
  const auto yuan_table = nbclos::RoutingTable::materialize(yuan);

  const std::vector<double> loads{0.1, 0.3, 0.5, 0.7, 0.9, 1.0};

  using nbclos::sim::UplinkPolicy;
  const auto ftree_factory = [&](const nbclos::FoldedClos& ft,
                                 UplinkPolicy policy,
                                 const nbclos::RoutingTable* table) {
    return nbclos::sim::OracleFactory(
        [&ft, policy, table](std::uint64_t run_seed,
                             nbclos::fault::DegradedView*) {
          return std::make_unique<nbclos::sim::FtreeOracle>(ft, policy, table,
                                                            run_seed);
        });
  };

  struct SeriesSpec {
    std::string name;
    const nbclos::Network* net;
    nbclos::sim::OracleFactory factory;
  };
  const std::vector<SeriesSpec> specs{
      {"crossbar", &xbar_net,
       [&](std::uint64_t, nbclos::fault::DegradedView*)
           -> std::unique_ptr<nbclos::sim::RoutingOracle> {
         return std::make_unique<nbclos::sim::CrossbarOracle>(kN * kR);
       }},
      {"nonblocking ftree (m=n^2, Thm 3)", &nb_net,
       ftree_factory(nb_ft, UplinkPolicy::kTable, &yuan_table)},
      {"d-mod-k ftree (m=n^2)", &nb_net,
       ftree_factory(nb_ft, UplinkPolicy::kDModK, nullptr)},
      {"d-mod-k ftree (m=n)", &budget_net,
       ftree_factory(budget_ft, UplinkPolicy::kDModK, nullptr)},
      {"random-per-packet (m=n^2)", &nb_net,
       ftree_factory(nb_ft, UplinkPolicy::kRandom, nullptr)},
      {"least-queue adaptive (m=n^2)", &nb_net,
       ftree_factory(nb_ft, UplinkPolicy::kLeastQueue, nullptr)},
  };

  const auto wall_start = std::chrono::steady_clock::now();
  nbclos::ThreadPool pool;
  std::optional<nbclos::JsonWriter> writer;
  if (json) {
    writer.emplace(std::cout);
    writer->begin_object();
    writer->member("experiment", "throughput_vs_load");
    writer->key("patterns").begin_array();
  }

  const auto run_pattern = [&](const std::string& title, const std::string& key,
                               const nbclos::Permutation& pattern) {
    nbclos::validate_permutation(pattern, kN * kR);
    const auto traffic =
        nbclos::sim::TrafficPattern::permutation(pattern, kN * kR);

    // Every (series, load) pair is an independent simulation with a
    // per-run seed, so the whole pattern fans out over the pool.
    std::vector<std::vector<nbclos::sim::SimResult>> series(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
      auto config = base_config();
      config.seed = base_config().seed + i;  // distinct streams per series
      series[i] = nbclos::sim::load_sweep(*specs[i].net, specs[i].factory,
                                          traffic, config, loads, &pool);
    }

    if (json) {
      writer->begin_object();
      writer->member("pattern", key);
      writer->key("loads").begin_array();
      for (const double load : loads) writer->value(load);
      writer->end_array();
      writer->key("series").begin_array();
      for (std::size_t i = 0; i < specs.size(); ++i) {
        writer->begin_object();
        writer->member("name", specs[i].name);
        writer->key("accepted_throughput").begin_array();
        for (const auto& result : series[i]) {
          writer->value(result.accepted_throughput);
        }
        writer->end_array();
        writer->key("mean_latency").begin_array();
        for (const auto& result : series[i]) writer->value(result.mean_latency);
        writer->end_array();
        writer->key("p99_latency").begin_array();
        for (const auto& result : series[i]) writer->value(result.p99_latency);
        writer->end_array();
        writer->end_object();
      }
      writer->end_array();
      writer->end_object();
      return;
    }

    std::cout << title << "\n\n";
    std::vector<std::string> headers{"routing \\ load"};
    for (const double load : loads) {
      headers.push_back(nbclos::format_double(load));
    }
    nbclos::TextTable table(headers);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      std::vector<std::string> row{specs[i].name};
      for (const auto& result : series[i]) {
        row.push_back(nbclos::format_double(result.accepted_throughput));
      }
      table.add_row(std::move(row));
    }
    table.print(std::cout);
    if (csv) table.print_csv(std::cout);

    std::cout << "\nMean packet latency [cycles] at the same loads:\n";
    nbclos::TextTable lat(headers);
    for (std::size_t i = 0; i < specs.size(); ++i) {
      std::vector<std::string> row{specs[i].name};
      for (const auto& result : series[i]) {
        row.push_back(nbclos::format_double(result.mean_latency, 1));
      }
      lat.add_row(std::move(row));
    }
    lat.print(std::cout);
    if (csv) lat.print_csv(std::cout);
    std::cout << "\n";
  };

  run_pattern(
      "Fig-A1 — accepted throughput [flits/cycle/terminal] vs offered "
      "load,\nuplink-funnel permutation (adversarial for m = n static "
      "routing), 32 terminals",
      "uplink_funnel", funnel_small_m(kN, kR));
  run_pattern(
      "Fig-A2 — same series on the mod-16 residue-funnel permutation "
      "(adversarial\nfor m = n^2 static routing)",
      "mod16_residue_funnel", funnel_mod16());

  if (json) {
    writer->end_array();
    auto manifest = nbclos::obs::RunInfo::current();
    manifest.seed = base_config().seed;
    manifest.threads = static_cast<std::uint32_t>(pool.thread_count());
    manifest.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    writer->key("manifest");
    manifest.write_json(*writer);
    writer->end_object();
    std::cout << "\n";
    return 0;
  }
  std::cout << "Expected shape (paper + refs [5][7]): the Theorem 3 fabric "
               "tracks the crossbar\non BOTH patterns; every static "
               "destination-keyed configuration has a permutation\nthat "
               "collapses it (A1 kills m = n, A2 kills m = n^2); oblivious "
               "spreading and\nlocal packet adaptivity recover part — but "
               "not all — of the gap.  No static\nscheme below m = n^2 with "
               "the (i,j) structure can escape this — that is\nTheorem 2.\n";
  return 0;
}
