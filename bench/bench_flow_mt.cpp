/// \file bench_flow_mt.cpp
/// \brief Sharded flow-control engine scaling and buffer-margin studies
///        past radix 16: cycles/sec at 1/2/4/8 shards, bit-identity
///        verdict per shard count, and the early-exit bisection margins
///        (wormhole + VCT) on radix-32/48 fabrics and a 10-ary 4-tree.
///
/// One JSON document on stdout (schema "flow_mt" in EXPERIMENTS.md).
/// For each topology case the harness:
///   * times serial `FlowSim` (counter injection) as the reference and
///     reports simulated cycles/sec;
///   * times `ShardedFlowSim` at 1, 2, 4, and 8 shards and compares
///     every FlowResult field against the serial run (bit-exact,
///     doubles included) — `identical_to_serial: false` is a
///     correctness regression and the bench exits nonzero on it, even
///     without the baseline gate.  `speedup_vs_serial` is reported for
///     measurement, never gated: CI runners may expose a single
///     hardware thread, where the epoch barriers can only cost;
///   * finds the buffer margin (min flits/port sustaining the 0.9
///     probe) with `analysis::buffer_margin_bisect` — O(log N) sharded
///     probes instead of the full sweep, which is what keeps radix 32
///     inside the quick budget.
/// A scale section then probes 10-ary trees with pure O(1) dmodk
/// routing and the lazy slab arenas — bytes/terminal, slab residency,
/// spill bytes, and cycles/sec per tree, gated against a committed
/// budget — quick stops at 10^4 terminals, full climbs to the
/// 10^6-terminal 10-ary 6-tree (serial only) and reruns the margin
/// bisection on the 10-ary 5-tree.  A final recorder_overhead section
/// times the flight recorder live vs paused on a serial run (< 5%
/// budget) and checks that the merged invariant time-series is
/// bit-identical at every shard count.
///
/// --quick runs the radix-32 ftree only; the full run adds radix 48 and
/// the 10-ary 4-tree (10,000 terminals — its O(T^2) route cache honors
/// NBCLOS_MMAP_CACHE for RAM-constrained hosts).  Traffic is a seeded
/// random derangement on ftree fabrics (the pattern that separates
/// guaranteed routings from colliding ones) and a shift permutation on
/// the k-ary tree.  Results are seeded and bit-reproducible.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/flow/buffer_margin.hpp"
#include "nbclos/flow/engine.hpp"
#include "nbclos/flow/sharded.hpp"
#include "nbclos/obs/flight_recorder.hpp"
#include "nbclos/obs/run_info.hpp"
#include "nbclos/routing/kary_updown.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/shard_router.hpp"
#include "nbclos/topology/fat_tree.hpp"
#include "nbclos/topology/network.hpp"
#include "nbclos/util/json.hpp"

namespace {

using namespace nbclos;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One untimed warm-up call, then the minimum wall time over `reps`
/// timed calls (deterministic work; only the timing varies).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double secs = seconds_since(t0);
    if (secs < best) best = secs;
  }
  return best;
}

constexpr int kTimingReps = 3;

std::shared_ptr<const routing::ChannelRouteCache> make_ftree_cache(
    const FoldedClos& ft, const Network& net,
    const SinglePathRouting& routing) {
  return std::make_shared<const routing::ChannelRouteCache>(
      net, [&](SDPair sd) {
        LinkId run[FoldedClos::kMaxPathLinks];
        const auto count = ft.links_into(routing.route(sd), run);
        std::vector<std::uint32_t> channels;
        for (std::uint32_t i = 0; i < count; ++i) {
          channels.push_back(run[i].value);
        }
        return channels;
      });
}

/// Every FlowResult field — the same contract the golden tests assert
/// with EXPECT_EQ, restated as one predicate for the bench verdict.
bool identical(const flow::FlowResult& a, const flow::FlowResult& b) {
  return a.offered_load == b.offered_load &&
         a.accepted_throughput == b.accepted_throughput &&
         a.mean_latency == b.mean_latency && a.p50_latency == b.p50_latency &&
         a.p99_latency == b.p99_latency && a.p999_latency == b.p999_latency &&
         a.latency_bucket_width == b.latency_bucket_width &&
         a.injected_packets == b.injected_packets &&
         a.delivered_packets == b.delivered_packets &&
         a.dropped_packets == b.dropped_packets &&
         a.mean_switch_queue_depth == b.mean_switch_queue_depth &&
         a.min_flow_throughput == b.min_flow_throughput &&
         a.max_flow_throughput == b.max_flow_throughput &&
         a.credit_stall_cycles == b.credit_stall_cycles &&
         a.vc_stall_cycles == b.vc_stall_cycles &&
         a.mean_stall_cycles == b.mean_stall_cycles &&
         a.p99_stall_cycles == b.p99_stall_cycles &&
         a.peak_buffer_flits == b.peak_buffer_flits &&
         a.peak_live_packets == b.peak_live_packets &&
         a.deadlocked == b.deadlocked &&
         a.deadlock_cycle == b.deadlock_cycle &&
         a.stuck_flits == b.stuck_flits;
}

struct Case {
  std::string name;
  std::uint32_t ftree_r = 0;           ///< ftree(4+16, r) when nonzero
  std::uint32_t kary_k = 0, kary_h = 0;  ///< k-ary h-tree otherwise
  std::uint64_t warmup = 0, measure = 0;
  double rate = 0.9;
  std::vector<std::uint32_t> depths;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  const auto wall_start = std::chrono::steady_clock::now();
  auto manifest = obs::RunInfo::current();
  manifest.seed = 20260809;
  manifest.threads = 8;  // widest shard fan-out benched
  manifest.shards = 8;

  std::vector<Case> cases;
  cases.push_back({"ftree(4+16,32)", 32, 0, 0, 200, 800, 0.9,
                   {1, 2, 4, 8, 16}});
  if (!quick) {
    cases.push_back({"ftree(4+16,48)", 48, 0, 0, 300, 1200, 0.9,
                     {1, 2, 4, 8, 16}});
    // 10-ary 4-tree: 10,000 terminals at low load — the point is shard
    // scaling of the flit arenas, not saturation throughput.
    cases.push_back({"kary(10,4)", 0, 10, 4, 50, 200, 0.1, {2, 4, 8}});
  }
  const std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};

  JsonWriter json(std::cout);
  json.begin_object();
  json.member("experiment", "flow_mt");
  json.member("quick", quick);
  json.member("hardware_concurrency",
              static_cast<std::uint64_t>(std::thread::hardware_concurrency()));

  bool all_identical = true;
  json.key("cases").begin_array();
  for (const auto& c : cases) {
    const bool is_ftree = c.ftree_r > 0;
    std::unique_ptr<FoldedClos> ftree;
    std::unique_ptr<YuanNonblockingRouting> yuan;
    Network net = [&] {
      if (is_ftree) {
        ftree = std::make_unique<FoldedClos>(FtreeParams{4, 16, c.ftree_r});
        return build_network(*ftree);
      }
      return build_kary_ntree(c.kary_k, c.kary_h);
    }();
    std::shared_ptr<const routing::ChannelRouteCache> cache;
    std::uint32_t terminals = 0;
    if (is_ftree) {
      yuan = std::make_unique<YuanNonblockingRouting>(*ftree);
      cache = make_ftree_cache(*ftree, net, *yuan);
      terminals = ftree->leaf_count();
    } else {
      const KaryTreeRouter router(net, c.kary_k, c.kary_h);
      cache = std::make_shared<const routing::ChannelRouteCache>(
          net, [&](SDPair sd) { return router.route(sd); });
      terminals = static_cast<std::uint32_t>(net.terminals().size());
    }
    const auto traffic = [&] {
      if (is_ftree) {
        // Fixed-point-free random permutation (see bench_flow.cpp: a
        // fixed point would leave its terminal silent and dilute the
        // sustain fraction).
        Xoshiro256 pattern_rng(7);
        auto pattern = random_permutation(terminals, pattern_rng);
        while (pattern.size() < terminals) {
          pattern = random_permutation(terminals, pattern_rng);
        }
        return sim::TrafficPattern::permutation(pattern, terminals);
      }
      return sim::TrafficPattern::permutation(
          shift_permutation(terminals, 5), terminals);
    }();

    flow::FlowConfig config;
    config.injection_rate = c.rate;
    config.packet_flits = 4;
    config.buffer_flits = 8;
    config.warmup_cycles = c.warmup;
    config.measure_cycles = c.measure;
    config.seed = manifest.seed;
    config.counter_injection = true;
    const double total_cycles = static_cast<double>(c.warmup + c.measure);

    json.begin_object();
    json.member("topology", c.name);
    json.member("radix", c.ftree_r);
    json.member("terminals", terminals);
    json.member("channels", static_cast<std::uint64_t>(net.channel_count()));
    json.member("injection_rate", c.rate);
    json.member("warmup_cycles", c.warmup);
    json.member("measure_cycles", c.measure);
    json.member("route_cache_bytes",
                static_cast<std::uint64_t>(cache->bytes()));

    // --- serial reference: the identity baseline and the speedup denom.
    flow::FlowResult serial{};
    const double serial_secs = best_seconds(kTimingReps, [&] {
      flow::FlowSim sim(cache, traffic, config);
      serial = sim.run();
    });
    json.key("serial").begin_object();
    json.member("seconds", serial_secs);
    json.member("cycles_per_sec", total_cycles / serial_secs);
    json.member("accepted_throughput", serial.accepted_throughput);
    json.member("delivered_packets", serial.delivered_packets);
    json.member("deadlocked", serial.deadlocked);
    json.end_object();

    json.key("shard_counts").begin_array();
    for (const auto shards : shard_counts) {
      flow::FlowResult result{};
      flow::ShardedFlowSim::Telemetry telemetry{};
      std::size_t arena_bytes = 0;
      const double secs = best_seconds(kTimingReps, [&] {
        flow::ShardedFlowSim sim(cache, traffic, config, shards);
        result = sim.run();
        telemetry = sim.telemetry();
        arena_bytes = sim.arena_bytes();
      });
      const bool same = identical(result, serial);
      if (!same) {
        std::cerr << c.name << " at " << shards
                  << " shards diverged from the serial FlowSim run\n";
        all_identical = false;
      }
      json.begin_object();
      json.member("shards", static_cast<std::uint64_t>(shards));
      json.member("seconds", secs);
      json.member("cycles_per_sec", total_cycles / secs);
      json.member("speedup_vs_serial", serial_secs / secs);
      json.member("arena_bytes", static_cast<std::uint64_t>(arena_bytes));
      json.member("cross_shard_flits", telemetry.cross_shard_flits);
      json.member("cross_shard_credits", telemetry.cross_shard_credits);
      json.member("mailbox_peak", telemetry.mailbox_peak);
      json.member("accepted_throughput", result.accepted_throughput);
      json.member("delivered_packets", result.delivered_packets);
      json.member("peak_buffer_flits", result.peak_buffer_flits);
      json.member("identical_to_serial", same);
      json.end_object();
    }
    json.end_array();

    // --- buffer margin past radix 16: O(log N) sharded bisection ------
    json.key("margin").begin_object();
    for (const bool vct : {false, true}) {
      analysis::BufferMarginConfig margin;
      margin.buffer_sizes = c.depths;
      margin.probe_load = c.rate;
      margin.base = config;
      margin.base.switching = vct ? flow::Switching::kVirtualCutThrough
                                  : flow::Switching::kWormhole;
      const auto bisect =
          analysis::buffer_margin_bisect(cache, traffic, margin, 8);
      json.key(vct ? "vct" : "wormhole").begin_object();
      json.member("min_flits_nonblocking", bisect.min_flits_nonblocking);
      json.member("probes",
                  static_cast<std::uint64_t>(bisect.points.size()));
      json.key("points").begin_array();
      for (const auto& point : bisect.points) {
        json.begin_object();
        json.member("buffer_flits", point.buffer_flits);
        json.member("feasible", point.feasible);
        json.member("sustained", point.sustained);
        json.member("accepted_throughput", point.accepted_throughput);
        json.member("deadlocked", point.deadlocked);
        json.member("peak_buffer_flits", point.peak_buffer_flits);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }
    json.member("shards", std::uint64_t{8});
    json.end_object();

    json.member("peak_rss_kb", obs::peak_rss_kb());
    json.end_object();
  }
  json.end_array();

  // --- flow-level scale-out: sparse arenas on 10-ary trees -------------
  // Pure O(1) dmodk routing (no per-pair table) plus the lazy slab
  // arenas are what let a 10^6-terminal fabric run at all; this section
  // records bytes/terminal, slab residency, and cycles/sec so the gate
  // catches a densification regression.  Short low-load windows — the
  // point is memory shape, not saturation behavior.
  {
    // Committed ceiling for (flit + packet arena bytes) / terminal at
    // the largest tree; see EXPERIMENTS.md for the derivation.
    constexpr double kScaleBudgetBytesPerTerminal = 256.0;
    struct ScalePoint {
      std::uint32_t k, h;
      bool identity;  ///< also run ShardedFlowSim(4) and compare
    };
    std::vector<ScalePoint> points = {{10, 3, true}, {10, 4, true}};
    if (!quick) {
      points.push_back({10, 5, true});
      points.push_back({10, 6, false});  // serial only: memory headroom
    }
    json.key("scale").begin_object();
    json.member("budget_bytes_per_terminal", kScaleBudgetBytesPerTerminal);
    json.key("points").begin_array();
    for (const auto& p : points) {
      const Network net = build_kary_ntree(p.k, p.h);
      const auto terminals =
          static_cast<std::uint32_t>(net.terminals().size());
      const auto routes =
          std::make_shared<const flow::PureRouteSource>(
              net, std::make_shared<const sim::KaryDmodkRouter>(net, p.k,
                                                                p.h));
      const auto traffic = sim::TrafficPattern::permutation(
          shift_permutation(terminals, 7), terminals);
      flow::FlowConfig config;
      config.injection_rate = 0.05;
      config.packet_flits = 4;
      config.buffer_flits = 8;
      config.warmup_cycles = 20;
      config.measure_cycles = 80;
      config.seed = manifest.seed;
      config.counter_injection = true;
      const double total_cycles =
          static_cast<double>(config.warmup_cycles + config.measure_cycles);

      // One timed run per point: a 10^6-terminal probe is too large for
      // best-of-3, and the memory numbers are deterministic anyway.
      flow::FlowResult serial{};
      flow::ArenaStats stats{};
      const auto t0 = std::chrono::steady_clock::now();
      {
        flow::FlowSim sim(routes, traffic, config);
        serial = sim.run();
        stats = sim.arena_stats();
      }
      const double secs = seconds_since(t0);
      const double bytes_per_terminal =
          static_cast<double>(stats.flit_arena_bytes +
                              stats.packet_arena_bytes) /
          static_cast<double>(terminals);
      const bool within =
          bytes_per_terminal <= kScaleBudgetBytesPerTerminal;
      if (!within) {
        std::cerr << "kary(" << p.k << "," << p.h << ") arenas at "
                  << bytes_per_terminal
                  << " bytes/terminal exceed the committed budget\n";
        all_identical = false;
      }
      bool same = true;
      if (p.identity) {
        flow::ShardedFlowSim sharded(routes, traffic, config, 4);
        same = identical(sharded.run(), serial);
        if (!same) {
          std::cerr << "kary(" << p.k << "," << p.h
                    << ") sharded run diverged from serial at scale\n";
          all_identical = false;
        }
      }
      json.begin_object();
      json.member("topology", "kary(" + std::to_string(p.k) + "," +
                                  std::to_string(p.h) + ")");
      json.member("terminals", terminals);
      json.member("channels",
                  static_cast<std::uint64_t>(net.channel_count()));
      json.member("route_source", routes->label());
      json.member("route_bytes", static_cast<std::uint64_t>(routes->bytes()));
      json.member("seconds", secs);
      json.member("cycles_per_sec", total_cycles / secs);
      json.member("delivered_packets", serial.delivered_packets);
      json.member("deadlocked", serial.deadlocked);
      json.member("flit_arena_bytes",
                  static_cast<std::uint64_t>(stats.flit_arena_bytes));
      json.member("packet_arena_bytes",
                  static_cast<std::uint64_t>(stats.packet_arena_bytes));
      json.member("bytes_per_terminal", bytes_per_terminal);
      json.member("resident_slots", stats.resident_slots);
      json.member("peak_slots", stats.peak_slots);
      json.member("spill_bytes",
                  static_cast<std::uint64_t>(stats.spill_bytes));
      json.member("within_budget", within);
      json.member("identity_checked", p.identity);
      json.member("identical_to_serial", same);
      json.member("peak_rss_kb", obs::peak_rss_kb());
      json.end_object();
    }
    json.end_array();

    // Margin bisection rerun at the new scale: the 10-ary 5-tree margin
    // via sharded probes over the pure route source (full mode only —
    // each probe is a 10^5-terminal run).
    if (!quick) {
      const std::uint32_t k = 10, h = 5;
      const Network net = build_kary_ntree(k, h);
      const auto terminals =
          static_cast<std::uint32_t>(net.terminals().size());
      const auto routes = std::make_shared<const flow::PureRouteSource>(
          net, std::make_shared<const sim::KaryDmodkRouter>(net, k, h));
      const auto traffic = sim::TrafficPattern::permutation(
          shift_permutation(terminals, 7), terminals);
      analysis::BufferMarginConfig margin;
      margin.buffer_sizes = {2, 4, 8};
      margin.probe_load = 0.1;
      margin.base.packet_flits = 4;
      margin.base.warmup_cycles = 20;
      margin.base.measure_cycles = 80;
      margin.base.seed = manifest.seed;
      const auto bisect =
          analysis::buffer_margin_bisect(routes, traffic, margin, 4);
      json.key("margin_kary_10_5").begin_object();
      json.member("min_flits_nonblocking", bisect.min_flits_nonblocking);
      json.member("probes", static_cast<std::uint64_t>(bisect.points.size()));
      json.end_object();
    }
    json.end_object();
  }

  // --- flight-recorder overhead and shard-count series identity --------
  // Serial FlowSim with the recorder armed, sampling live vs paused via
  // the runtime switch (budget < 5%), then the sharded engine at every
  // shard count checking the merged invariant series against serial bit
  // for bit — the time-series analogue of identical_to_serial above.
  {
    const FoldedClos ftree(FtreeParams{4, 16, 16});
    const Network net = build_network(ftree);
    const YuanNonblockingRouting yuan(ftree);
    const auto cache = make_ftree_cache(ftree, net, yuan);
    const auto terminals = ftree.leaf_count();
    const auto traffic = sim::TrafficPattern::permutation(
        shift_permutation(terminals, 5), terminals);
    flow::FlowConfig config;
    config.injection_rate = 0.8;
    config.packet_flits = 4;
    config.buffer_flits = 8;
    config.warmup_cycles = 200;
    config.measure_cycles = quick ? 800 : 4000;
    config.seed = manifest.seed;
    config.counter_injection = true;
    config.record_timeseries = true;
    config.record_cadence = 32;

    flow::FlowResult serial{};
    std::vector<obs::MergedSeries> serial_series;
    const auto run_serial = [&] {
      flow::FlowSim sim(cache, traffic, config);
      serial = sim.run();
      serial_series.clear();
      for (auto& series : sim.recorder().merged()) {
        if (series.scope == obs::SeriesScope::kInvariant) {
          serial_series.push_back(std::move(series));
        }
      }
    };
    obs::set_enabled(true);
    const double on_secs = best_seconds(kTimingReps, run_serial);
    const auto on_result = serial;
    std::size_t points = 0;
    for (const auto& series : serial_series) points += series.points.size();
    const auto golden = serial_series;
    obs::set_enabled(false);  // want() goes false: sampling pauses
    const double off_secs = best_seconds(kTimingReps, run_serial);
    obs::set_enabled(true);
    const bool same_result = identical(on_result, serial);
    if (!same_result) {
      std::cerr << "recorder on/off changed the flow engine result\n";
      all_identical = false;
    }

    json.key("recorder_overhead").begin_object();
    json.member("compiled_in", obs::kEnabled);
    json.member("cycles", config.warmup_cycles + config.measure_cycles);
    json.member("enabled_seconds", on_secs);
    json.member("paused_seconds", off_secs);
    json.member("overhead_pct", (on_secs / off_secs - 1.0) * 100.0);
    json.member("points_recorded", static_cast<std::uint64_t>(points));
    json.member("results_identical", same_result);
    json.key("series_identity").begin_array();
    for (const auto shards : shard_counts) {
      flow::ShardedFlowSim sim(cache, traffic, config, shards);
      const auto result = sim.run();
      std::vector<obs::MergedSeries> got;
      for (auto& series : sim.recorder().merged()) {
        if (series.scope == obs::SeriesScope::kInvariant) {
          got.push_back(std::move(series));
        }
      }
      bool same_series = identical(result, on_result) &&
                         got.size() == golden.size();
      for (std::size_t i = 0; same_series && i < golden.size(); ++i) {
        same_series = got[i].name == golden[i].name &&
                      got[i].stride_cycles == golden[i].stride_cycles &&
                      got[i].points == golden[i].points;
      }
      if (!same_series) {
        std::cerr << "merged time-series diverged at " << shards
                  << " shards\n";
        all_identical = false;
      }
      json.begin_object();
      json.member("shards", static_cast<std::uint64_t>(shards));
      json.member("identical_to_serial", same_series);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

  manifest.wall_seconds = seconds_since(wall_start);
  manifest.peak_rss_kb = obs::peak_rss_kb();
  json.key("manifest");
  manifest.write_json(json);
  json.end_object();
  std::cout << "\n";
  return all_identical ? 0 : 1;
}
