/// \file bench_scale_mt.cpp
/// \brief Million-terminal sharded-simulation scaling: terminals/sec and
///        bytes/terminal at 1 / 2 / 4 / 8 shards on ftree and k-ary
///        n-tree fabrics.
///
/// One JSON document on stdout (schema in EXPERIMENTS.md, experiment
/// "scale_mt").  For each topology case the harness runs the identical
/// workload — shift-permutation traffic, counter-injection RNG — through
/// `ShardedSim` at every shard count and reports:
///   * seconds           — best wall time over the reps (arena build +
///     full warmup/measure run; construction is part of the cost at
///     10^6 terminals and is deliberately inside the clock);
///   * terminals_per_sec — terminal-cycles simulated per second,
///     terminals x total_cycles / seconds;
///   * bytes_per_terminal — per-shard arena footprint over terminals;
///   * cross_shard_flits / accepted_throughput — engine telemetry;
///   * identical_to_single_shard — every SimResult field of the k-shard
///     run compared (bit-exact, doubles included) against the 1-shard
///     run.  A `false` here is a correctness regression, and the bench
///     itself exits nonzero so CI fails even without the baseline gate.
/// The per-case and manifest peak_rss_kb are sampled *after* the arenas
/// ran (the high-water mark is monotone; early sampling under-reports).
///
/// --quick keeps CI to small fabrics; the full run ends on the
/// kary(10, 6) fabric — one million terminals — at low offered load.
#include <chrono>
#include <cstdint>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/obs/run_info.hpp"
#include "nbclos/sim/engine.hpp"
#include "nbclos/sim/shard_router.hpp"
#include "nbclos/sim/sharded.hpp"
#include "nbclos/topology/fat_tree.hpp"
#include "nbclos/topology/network.hpp"
#include "nbclos/util/json.hpp"

namespace {

using namespace nbclos;
using namespace nbclos::sim;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// A topology case: either ftree(n + m, r) or a k-ary h-tree, with the
/// sim budget scaled to its size.
struct Case {
  std::string name;
  std::uint32_t ftree_n = 0, ftree_m = 0, ftree_r = 0;  // ftree when r > 0
  std::uint32_t kary_k = 0, kary_h = 0;                 // k-ary otherwise
  std::uint64_t warmup = 0, measure = 0;
  double rate = 0.0;
  std::uint32_t queue_capacity = 8;
  int reps = 3;
};

bool identical(const SimResult& a, const SimResult& b) {
  return a.offered_load == b.offered_load &&
         a.accepted_throughput == b.accepted_throughput &&
         a.mean_latency == b.mean_latency && a.p50_latency == b.p50_latency &&
         a.p99_latency == b.p99_latency && a.p999_latency == b.p999_latency &&
         a.latency_bucket_width == b.latency_bucket_width &&
         a.injected_packets == b.injected_packets &&
         a.delivered_packets == b.delivered_packets &&
         a.dropped_packets == b.dropped_packets &&
         a.mean_switch_queue_depth == b.mean_switch_queue_depth &&
         a.min_flow_throughput == b.min_flow_throughput &&
         a.max_flow_throughput == b.max_flow_throughput;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick") quick = true;
  }

  const auto wall_start = std::chrono::steady_clock::now();
  auto manifest = obs::RunInfo::current();
  manifest.seed = 20260809;
  manifest.threads = 8;  // widest shard fan-out benched
  manifest.shards = 8;

  std::vector<Case> cases;
  cases.push_back({"ftree(4+16,8)", 4, 16, 8, 0, 0, 400, 1600, 0.6, 8, 3});
  cases.push_back({"kary(4,5)", 0, 0, 0, 4, 5, 200, 800, 0.4, 8, 3});
  if (!quick) {
    cases.push_back({"kary(16,4)", 0, 0, 0, 16, 4, 100, 400, 0.2, 8, 2});
    // One million terminals: low load, short window, shallow queues —
    // the point is arena scale and epoch overhead, not saturation.
    cases.push_back({"kary(10,6)", 0, 0, 0, 10, 6, 50, 200, 0.1, 4, 1});
  }
  const std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};

  JsonWriter json(std::cout);
  json.begin_object();
  json.member("experiment", "scale_mt");
  json.member("quick", quick);
  json.member("hardware_concurrency",
              static_cast<std::uint64_t>(std::thread::hardware_concurrency()));

  bool all_identical = true;
  json.key("cases").begin_array();
  for (const auto& c : cases) {
    const bool is_ftree = c.ftree_r > 0;
    std::unique_ptr<FoldedClos> ftree;
    Network net = [&] {
      if (is_ftree) {
        ftree = std::make_unique<FoldedClos>(
            FtreeParams{c.ftree_n, c.ftree_m, c.ftree_r});
        return build_network(*ftree);
      }
      return build_kary_ntree(c.kary_k, c.kary_h);
    }();
    std::unique_ptr<ShardRouter> router;
    if (is_ftree) {
      router = std::make_unique<FtreeDmodkRouter>(*ftree);
    } else {
      router = std::make_unique<KaryDmodkRouter>(net, c.kary_k, c.kary_h);
    }
    const auto terminals = static_cast<std::uint32_t>(net.terminals().size());
    const auto traffic =
        TrafficPattern::permutation(shift_permutation(terminals, 5), terminals);

    SimConfig config;
    config.injection_rate = c.rate;
    config.warmup_cycles = c.warmup;
    config.measure_cycles = c.measure;
    config.queue_capacity = c.queue_capacity;
    config.seed = manifest.seed;
    config.counter_injection = true;
    const std::uint64_t total_cycles = c.warmup + c.measure;

    json.begin_object();
    json.member("topology", c.name);
    json.member("terminals", terminals);
    json.member("channels", static_cast<std::uint64_t>(net.channel_count()));
    json.member("injection_rate", c.rate);
    json.member("warmup_cycles", c.warmup);
    json.member("measure_cycles", c.measure);
    json.member("queue_capacity", static_cast<std::uint64_t>(c.queue_capacity));

    SimResult single{};
    json.key("shard_counts").begin_array();
    for (const auto shards : shard_counts) {
      double best = std::numeric_limits<double>::infinity();
      SimResult result{};
      ShardedSim::Telemetry telemetry{};
      std::size_t arena_bytes = 0;
      for (int rep = 0; rep < c.reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        ShardedSim sim(net, *router, traffic, config, shards);
        result = sim.run();
        const double secs = seconds_since(t0);
        if (secs < best) best = secs;
        telemetry = sim.telemetry();
        arena_bytes = sim.arena_bytes();
      }
      if (shards == 1) single = result;
      const bool same = identical(result, single);
      if (!same) {
        std::cerr << c.name << " at " << shards
                  << " shards diverged from the single-shard run\n";
        all_identical = false;
      }
      json.begin_object();
      json.member("shards", static_cast<std::uint64_t>(shards));
      json.member("seconds", best);
      json.member("terminals_per_sec",
                  static_cast<double>(terminals) *
                      static_cast<double>(total_cycles) / best);
      json.member("bytes_per_terminal",
                  static_cast<double>(arena_bytes) /
                      static_cast<double>(terminals));
      json.member("cross_shard_flits", telemetry.cross_shard_flits);
      json.member("mailbox_peak", telemetry.mailbox_peak);
      json.member("accepted_throughput", result.accepted_throughput);
      json.member("delivered_packets", result.delivered_packets);
      json.member("identical_to_single_shard", same);
      json.end_object();
    }
    json.end_array();
    json.member("peak_rss_kb", obs::peak_rss_kb());
    json.end_object();
  }
  json.end_array();

  manifest.wall_seconds = seconds_since(wall_start);
  manifest.peak_rss_kb = obs::peak_rss_kb();  // after every arena existed
  json.key("manifest");
  manifest.write_json(json);
  json.end_object();
  std::cout << "\n";
  return all_identical ? 0 : 1;
}
