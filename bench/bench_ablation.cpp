/// \file bench_ablation.cpp
/// \brief Ablation of the Fig. 4 design choice the paper's Theorem 5
///        analysis leans on: line (7) scans all unused partitions for the
///        *largest* routable subset.  We replace it with
///        first-available-partition and measure the cost in
///        configurations and top switches — quantifying how much of the
///        adaptive saving comes from the greedy subset selection itself.
#include <algorithm>
#include <iostream>
#include <string>

#include "nbclos/adaptive/distributed.hpp"
#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/util/stats.hpp"
#include "nbclos/util/table.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  using nbclos::adaptive::PartitionPolicy;

  std::cout << "Ablation — Fig. 4 line (7): largest-subset scan vs "
               "first-available partition\n\n";
  nbclos::TextTable table({"n", "r", "policy", "mean switches",
                           "worst switches", "n^2"});
  nbclos::Xoshiro256 rng(1234);
  for (const auto& [n, r] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {4, 16}, {6, 36}, {8, 64}, {12, 144}}) {
    const nbclos::adaptive::AdaptiveParams params{
        n, r, nbclos::min_digit_width(r, n)};
    // Same permutations for both policies.
    std::vector<nbclos::Permutation> patterns;
    for (int t = 0; t < 25; ++t) {
      patterns.push_back(nbclos::random_permutation(n * r, rng));
    }
    patterns.push_back(nbclos::neighbor_funnel_permutation(n, r));
    patterns.push_back(nbclos::shift_permutation(n * r, n));

    for (const auto policy :
         {PartitionPolicy::kLargestSubset, PartitionPolicy::kFirstAvailable}) {
      nbclos::RunningStats stats;
      std::uint32_t worst = 0;
      for (const auto& pattern : patterns) {
        const auto schedule =
            nbclos::adaptive::distributed_route(params, pattern, policy);
        stats.add(static_cast<double>(schedule.top_switches_used));
        worst = std::max(worst, schedule.top_switches_used);
      }
      table.add(n, r,
                std::string(policy == PartitionPolicy::kLargestSubset
                                ? "largest-subset (paper)"
                                : "first-available"),
                nbclos::format_double(stats.mean(), 1), worst, n * n);
    }
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);

  // Both policies must stay correct (the nonblocking guarantee comes
  // from Lemma 5, not from the subset-size heuristic).
  const nbclos::adaptive::AdaptiveParams params{4, 16, 2};
  const nbclos::FoldedClos ft(
      nbclos::FtreeParams{4, params.worst_case_top_switches(), 16});
  bool correct = true;
  for (int t = 0; t < 10; ++t) {
    const auto pattern = nbclos::random_permutation(64, rng);
    const auto schedule = nbclos::adaptive::distributed_route(
        params, pattern, PartitionPolicy::kFirstAvailable);
    correct = correct && !nbclos::has_contention(ft, schedule.to_paths(ft));
  }
  std::cout << "\nFirst-available schedules remain contention-free: "
            << (correct ? "yes (correctness is Lemma 5's, not the "
                          "heuristic's)"
                        : "NO — bug!")
            << "\nReading: the largest-subset scan is what converts "
               "Lemma 6 into Theorem 5's\nswitch bound; dropping it "
               "costs extra configurations on adversarial patterns\n"
               "while staying correct.\n";
  return correct ? 0 : 1;
}
