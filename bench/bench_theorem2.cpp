/// \file bench_theorem2.cpp
/// \brief Theorem 2 (+3): the nonblocking condition m >= n^2 for
///        single-path deterministic routing when r >= 2n+1, and its
///        tightness.
///
/// Three empirical pillars per (n, r):
///   1. the counting lower bound: ceil(r(r-1)n^2 / exact-root-capacity)
///      — computed from the *measured* Lemma 2 optimum, not the formula;
///   2. sufficiency at m = n^2: the Theorem 3 routing passes the Lemma 1
///      audit (a machine proof of nonblocking-ness for the instance);
///   3. failure of common routings below n^2: with m = n^2 - 1, D-mod-K
///      and random tables violate Lemma 1 and the verifier exhibits a
///      blocked permutation.
#include <iostream>
#include <string>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/root_capacity.hpp"
#include "nbclos/analysis/verifier.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/util/table.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  std::cout << "Theorem 2 — nonblocking needs m >= n^2 (r >= 2n+1); "
               "Theorem 3 — m = n^2 suffices\n\n";
  nbclos::TextTable table({"n", "r", "cross pairs", "root capacity (exact)",
                           "implied min m", "n^2", "Yuan@m=n^2 certified",
                           "dmodk@m=n^2-1 blocked"});
  bool all_good = true;
  for (std::uint32_t n = 2; n <= 3; ++n) {
    for (std::uint32_t r = 2 * n + 1; r <= 7; ++r) {
      const std::uint64_t pairs = std::uint64_t{r} * (r - 1) * n * n;
      const auto capacity = nbclos::root_capacity_exact(n, r);
      const std::uint64_t implied_m = (pairs + capacity - 1) / capacity;

      const nbclos::FoldedClos exact_ft(nbclos::FtreeParams{n, n * n, r});
      const nbclos::YuanNonblockingRouting yuan(exact_ft);
      const bool certified = nbclos::is_nonblocking_single_path(yuan);

      bool below_blocks = true;
      if (n * n >= 2) {
        const nbclos::FoldedClos small_ft(
            nbclos::FtreeParams{n, n * n - 1, r});
        const nbclos::DModKRouting dmodk(small_ft);
        below_blocks = !nbclos::is_nonblocking_single_path(dmodk);
      }
      all_good = all_good && certified && below_blocks &&
                 implied_m == std::uint64_t{n} * n;
      table.add_row({std::to_string(n), std::to_string(r),
                     std::to_string(pairs), std::to_string(capacity),
                     std::to_string(implied_m), std::to_string(n * n),
                     certified ? "yes" : "NO",
                     below_blocks ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);

  // Scale demonstration: certify large instances where exhaustive search
  // is impossible but the Lemma 1 audit still constitutes a proof.
  std::cout << "\nLarge-instance certification (Lemma 1 audit over all "
               "r(r-1)n^2 cross pairs):\n";
  nbclos::TextTable large({"n", "r", "ports", "cross pairs", "certified"});
  for (const auto& [n, r] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {4, 20}, {5, 30}, {6, 42}, {8, 72}}) {
    const nbclos::FoldedClos ft(nbclos::FtreeParams{n, n * n, r});
    const nbclos::YuanNonblockingRouting yuan(ft);
    const bool ok = nbclos::is_nonblocking_single_path(yuan);
    all_good = all_good && ok;
    large.add(n, r, ft.leaf_count(), ft.cross_pair_count(),
              std::string(ok ? "yes" : "NO"));
  }
  large.print(std::cout);
  if (csv) large.print_csv(std::cout);

  std::cout << "\nResult matches the paper: implied minimum m equals n^2 "
               "in every large-top\nrow, the Theorem 3 routing certifies "
               "at m = n^2, and standard routings block\nbelow it.\n";
  return all_good ? 0 : 1;
}
