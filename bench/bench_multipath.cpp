/// \file bench_multipath.cpp
/// \brief §IV-B: traffic-oblivious multi-path routing does not improve
///        the nonblocking condition.  We audit Lemma 1 over the link
///        *footprint* (union of candidate paths) for spread widths from 1
///        to m, and measure how often random permutations actually
///        collide when packets spread — better load balance, same
///        worst-case blocking.
#include <iostream>
#include <string>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/routing/multipath.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/util/table.hpp"

namespace {

/// Fraction of random permutations in which some pair of SD pairs has
/// intersecting footprints (a collision the spreading cannot rule out:
/// with oblivious spreading the colliding paths can be live at the same
/// instant, so this is the blocking-relevant event).
double footprint_collision_rate(const nbclos::FoldedClos& ft,
                                nbclos::MultipathObliviousRouting& routing,
                                int trials, nbclos::Xoshiro256& rng) {
  int collided = 0;
  for (int t = 0; t < trials; ++t) {
    const auto pattern = nbclos::random_permutation(ft.leaf_count(), rng);
    std::vector<std::uint32_t> load(ft.link_count(), 0);
    bool hit = false;
    for (const auto sd : pattern) {
      for (const auto link : routing.link_footprint(sd)) {
        if (++load[link.value] >= 2 &&
            ft.kind_of(link) != nbclos::LinkKind::kLeafUp &&
            ft.kind_of(link) != nbclos::LinkKind::kLeafDown) {
          hit = true;
        }
      }
    }
    if (hit) ++collided;
  }
  return static_cast<double>(collided) / trials;
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  std::cout << "§IV-B — oblivious multi-path routing vs the nonblocking "
               "condition\n\n";

  const nbclos::FoldedClos ft(nbclos::FtreeParams{3, 9, 12});
  nbclos::Xoshiro256 rng(303);

  nbclos::TextTable table({"spread width", "Lemma 1 violations (footprint)",
                           "perm footprint-collision rate"});
  for (const std::uint32_t width : {1U, 2U, 3U, 6U, 9U}) {
    nbclos::MultipathObliviousRouting routing(
        ft, width, nbclos::SpreadPolicy::kRoundRobin);
    const auto violations = nbclos::lemma1_audit_footprints(
        ft, [&](nbclos::SDPair sd) { return routing.link_footprint(sd); });
    const double rate = footprint_collision_rate(ft, routing, 200, rng);
    table.add(width, violations.size(), rate);
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);

  // The sharpest form of §IV-B: start from the *nonblocking* Theorem 3
  // assignment and widen it.  Width 1 is exactly the (i,j) routing —
  // zero violations; any width >= 2 re-introduces Lemma 1 violations.
  std::cout << "\nWidening the Theorem 3 assignment itself:\n";
  nbclos::TextTable widen({"spread width", "Lemma 1 violations (footprint)",
                           "nonblocking"});
  for (const std::uint32_t width : {1U, 2U, 3U, 9U}) {
    nbclos::MultipathObliviousRouting routing(
        ft, width, nbclos::SpreadPolicy::kRoundRobin, 1,
        nbclos::CandidateBase::kYuan);
    const auto violations = nbclos::lemma1_audit_footprints(
        ft, [&](nbclos::SDPair sd) { return routing.link_footprint(sd); });
    widen.add(width, violations.size(),
              std::string(violations.empty() ? "yes" : "no"));
  }
  widen.print(std::cout);
  if (csv) widen.print_csv(std::cout);

  const nbclos::YuanNonblockingRouting yuan(ft);
  std::cout << "\nTheorem 3 single-path routing on the same ftree(3+9, 12): "
            << (nbclos::is_nonblocking_single_path(yuan)
                    ? "0 Lemma 1 violations (nonblocking)"
                    : "violations found (bug!)")
            << "\nConclusion (paper): oblivious spreading cannot beat the "
               "m >= n^2 condition;\nonly *adaptive* (pattern-aware) "
               "routing can (Section V).\n";
  return 0;
}
