/// \file bench_micro.cpp
/// \brief google-benchmark micro timings for the hot paths: per-SD route
///        computation, full-pattern adaptive scheduling, centralized edge
///        coloring, the Lemma 1 audit, and simulator cycle throughput.
#include <benchmark/benchmark.h>

#include "nbclos/adaptive/router.hpp"
#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/analysis/verifier.hpp"
#include "nbclos/routing/edge_coloring.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"

namespace {

void BM_YuanRouteSingle(benchmark::State& state) {
  const nbclos::FoldedClos ft(
      nbclos::FtreeParams{8, 64, static_cast<std::uint32_t>(state.range(0))});
  const nbclos::YuanNonblockingRouting routing(ft);
  nbclos::Xoshiro256 rng(1);
  std::uint32_t s = 0;
  std::uint32_t d = ft.n();
  for (auto _ : state) {
    const nbclos::SDPair sd{nbclos::LeafId{s}, nbclos::LeafId{d}};
    benchmark::DoNotOptimize(routing.route(sd));
    s = (s + 1) % ft.leaf_count();
    d = (d + ft.n() + 1) % ft.leaf_count();
    if (s / ft.n() == d / ft.n()) d = (d + ft.n()) % ft.leaf_count();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_YuanRouteSingle)->Arg(20)->Arg(72);

void BM_AdaptiveSchedulePermutation(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t r = n * n;
  const nbclos::adaptive::AdaptiveParams params{
      n, r, nbclos::min_digit_width(r, n)};
  const nbclos::adaptive::NonblockingAdaptiveRouter router(params);
  nbclos::Xoshiro256 rng(7);
  const auto pattern = nbclos::random_permutation(n * r, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(pattern));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pattern.size()));
}
BENCHMARK(BM_AdaptiveSchedulePermutation)->Arg(4)->Arg(8)->Arg(16);

void BM_CentralizedEdgeColoring(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const nbclos::FoldedClos ft(nbclos::FtreeParams{n, n, 4 * n});
  const nbclos::CentralizedRearrangeableRouter router(ft);
  nbclos::Xoshiro256 rng(11);
  const auto pattern = nbclos::random_permutation(ft.leaf_count(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.route(pattern));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(pattern.size()));
}
BENCHMARK(BM_CentralizedEdgeColoring)->Arg(4)->Arg(8)->Arg(16);

void BM_Lemma1Audit(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const nbclos::FoldedClos ft(nbclos::FtreeParams{n, n * n, n + n * n});
  const nbclos::YuanNonblockingRouting routing(ft);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbclos::lemma1_audit(routing));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(ft.cross_pair_count()));
}
BENCHMARK(BM_Lemma1Audit)->Arg(3)->Arg(4)->Arg(5);

void BM_VerifyRandomPermutations(benchmark::State& state) {
  const nbclos::FoldedClos ft(nbclos::FtreeParams{4, 16, 20});
  const nbclos::YuanNonblockingRouting routing(ft);
  nbclos::Xoshiro256 rng(13);
  const auto router = nbclos::as_pattern_router(routing);
  for (auto _ : state) {
    benchmark::DoNotOptimize(nbclos::verify_random(ft, router, 10, rng));
  }
  state.SetItemsProcessed(state.iterations() * 10);
}
BENCHMARK(BM_VerifyRandomPermutations);

void BM_RoutingTableLookup(benchmark::State& state) {
  const nbclos::FoldedClos ft(nbclos::FtreeParams{4, 16, 8});
  const nbclos::YuanNonblockingRouting routing(ft);
  const auto table = nbclos::RoutingTable::materialize(routing);
  std::uint32_t s = 0;
  std::uint32_t d = ft.n();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        table.lookup({nbclos::LeafId{s}, nbclos::LeafId{d}}));
    s = (s + 1) % ft.leaf_count();
    d = (d + ft.n() + 1) % ft.leaf_count();
    if (s / ft.n() == d / ft.n()) d = (d + ft.n()) % ft.leaf_count();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingTableLookup);

void BM_QuantileHistogramAdd(benchmark::State& state) {
  nbclos::QuantileHistogram hist(100000);
  nbclos::Xoshiro256 rng(3);
  for (auto _ : state) {
    hist.add(rng.below(100000));
  }
  benchmark::DoNotOptimize(hist.quantile(0.99));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QuantileHistogramAdd);

void BM_SimulatorCycles(benchmark::State& state) {
  const nbclos::FoldedClos ft(nbclos::FtreeParams{4, 16, 8});
  const auto net = nbclos::build_network(ft);
  const nbclos::YuanNonblockingRouting routing(ft);
  const auto table = nbclos::RoutingTable::materialize(routing);
  const auto pattern = nbclos::shift_permutation(ft.leaf_count(), 5);
  const auto traffic =
      nbclos::sim::TrafficPattern::permutation(pattern, ft.leaf_count());
  for (auto _ : state) {
    nbclos::sim::FtreeOracle oracle(ft, nbclos::sim::UplinkPolicy::kTable,
                                    &table);
    nbclos::sim::SimConfig config;
    config.injection_rate = 0.8;
    config.warmup_cycles = 100;
    config.measure_cycles = 900;
    nbclos::sim::PacketSim sim(net, oracle, traffic, config);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // cycles
}
BENCHMARK(BM_SimulatorCycles);

/// Low-load regime: per-cycle cost is bounded by resident packets, not
/// fabric size, thanks to the active-channel lists.
void BM_SimulatorCyclesLowLoad(benchmark::State& state) {
  const nbclos::FoldedClos ft(nbclos::FtreeParams{4, 16, 8});
  const auto net = nbclos::build_network(ft);
  const nbclos::YuanNonblockingRouting routing(ft);
  const auto table = nbclos::RoutingTable::materialize(routing);
  const auto pattern = nbclos::shift_permutation(ft.leaf_count(), 5);
  const auto traffic =
      nbclos::sim::TrafficPattern::permutation(pattern, ft.leaf_count());
  for (auto _ : state) {
    nbclos::sim::FtreeOracle oracle(ft, nbclos::sim::UplinkPolicy::kTable,
                                    &table);
    nbclos::sim::SimConfig config;
    config.injection_rate = 0.1;
    config.warmup_cycles = 100;
    config.measure_cycles = 900;
    nbclos::sim::PacketSim sim(net, oracle, traffic, config);
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 1000);  // cycles
}
BENCHMARK(BM_SimulatorCyclesLowLoad);

}  // namespace
