/// \file bench_scale.cpp
/// \brief Large-radix scaling: route-cache build rate, batched
///        verification throughput, and memory footprint across radix
///        8 / 16 / 32 / 48 fabrics.
///
/// One JSON document on stdout (schema in EXPERIMENTS.md).  For each
/// radix the harness measures, on the nonblocking ftree(n + n^2, r)
/// instance:
///   * route_cache — RouteCache::materialize wall time, routes/sec, and
///     the flat-arena byte footprint;
///   * verify_random — batched verify_random_parallel (BatchLoadKernel)
///     permutations/sec, with the nonblocking verdict asserted;
///   * load_probe — batched estimate_blocking_parallel under d-mod-k
///     (the blocking baseline), permutations/sec;
///   * cache_hit_rate — obs route_cache.lookups /
///     (lookups + routes_materialized) over the case's work, i.e. the
///     fraction of path requests served from the cache instead of a
///     route() call;
///   * peak_rss_kb — getrusage high-water mark after the case ran.
/// Results are seeded and bit-reproducible at any thread count (the
/// drivers chunk deterministically); timings warm up once and report the
/// best of three repetitions.  Pass --quick for CI smoke budgets,
/// --threads <T> to cap the worker pool.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "nbclos/analysis/batch.hpp"
#include "nbclos/analysis/parallel.hpp"
#include "nbclos/obs/metrics.hpp"
#include "nbclos/obs/run_info.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/util/json.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One untimed warm-up call, then the minimum wall time over `reps`
/// timed calls (deterministic work; only the timing varies).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double secs = seconds_since(t0);
    if (secs < best) best = secs;
  }
  return best;
}

// Best-of-5: the scale cases are short (milliseconds), so extra
// repetitions are cheap and squeeze out scheduler noise that best-of-3
// lets through on busy machines.
constexpr int kTimingReps = 5;

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t max_threads = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--threads" && i + 1 < argc) {
      max_threads = std::stoull(argv[i + 1]);
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  auto manifest = nbclos::obs::RunInfo::current();
  manifest.seed = 42;
  manifest.threads = static_cast<std::uint32_t>(max_threads);
  nbclos::ThreadPool pool(max_threads);

  // Quick budgets stay large enough that the smallest case's timed
  // sections run for milliseconds — sub-millisecond sections make the
  // regression comparison scheduler-noise-bound.
  const std::uint64_t verify_trials = quick ? 4000 : 20000;
  const std::uint64_t probe_trials = quick ? 4000 : 20000;

  nbclos::JsonWriter json(std::cout);
  json.begin_object();
  json.member("experiment", "scale");
  json.member("quick", quick);
  json.member("hardware_concurrency",
              static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.member("verify_trials", verify_trials);
  json.member("probe_trials", probe_trials);

  struct Case {
    std::uint32_t n, r;
  };
  const std::vector<Case> cases = {{4, 8}, {4, 16}, {8, 32}, {8, 48}};

  json.key("cases").begin_array();
  for (const auto c : cases) {
    const nbclos::FoldedClos ftree(nbclos::FtreeParams{c.n, c.n * c.n, c.r});
    const nbclos::YuanNonblockingRouting yuan(ftree);
    const nbclos::DModKRouting dmodk(ftree);

    auto& metrics = nbclos::obs::metrics();
    const auto lookups_before = metrics.counter("route_cache.lookups").value();
    const auto routed_before =
        metrics.counter("route_cache.routes_materialized").value();

    json.begin_object();
    json.member("radix", c.r);
    json.member("topology", "ftree(" + std::to_string(c.n) + "+" +
                                std::to_string(c.n * c.n) + ", " +
                                std::to_string(c.r) + ")");
    json.member("leafs", ftree.leaf_count());
    json.member("links", ftree.link_count());

    // --- route-cache build rate and footprint -------------------------
    {
      const double secs = best_seconds(kTimingReps, [&] {
        const auto cache = nbclos::routing::RouteCache::materialize(yuan);
        if (cache.any_unroutable()) std::abort();  // impossible: healthy
      });
      const auto cache = nbclos::routing::RouteCache::materialize(yuan);
      const auto routes =
          cache.pair_count() - ftree.leaf_count();  // diagonal is empty
      const nbclos::analysis::BatchLoadKernel kernel(cache);
      json.key("route_cache").begin_object();
      json.member("build_seconds", secs);
      json.member("routes_materialized", routes);
      json.member("routes_per_sec", static_cast<double>(routes) / secs);
      json.member("cache_bytes", static_cast<std::uint64_t>(cache.bytes()));
      json.member("kernel_arena_bytes",
                  static_cast<std::uint64_t>(kernel.bytes()));
      json.end_object();
    }

    // --- batched randomized verification (nonblocking instance) -------
    {
      nbclos::VerifyResult result;
      const double secs = best_seconds(kTimingReps, [&] {
        result = nbclos::verify_random_parallel(ftree, yuan, verify_trials,
                                                42, pool);
      });
      if (!result.nonblocking) {
        std::cerr << "Yuan routing must verify nonblocking at radix " << c.r
                  << "\n";
        return 1;
      }
      json.key("verify_random").begin_object();
      json.member("routing", yuan.name());
      json.member("nonblocking", result.nonblocking);
      json.member("seconds", secs);
      json.member("perms_per_sec",
                  static_cast<double>(result.permutations_checked) / secs);
      json.end_object();
    }

    // --- batched load-sweep probe (blocking baseline) ------------------
    {
      nbclos::BlockingEstimate estimate;
      const double secs = best_seconds(kTimingReps, [&] {
        estimate = nbclos::estimate_blocking_parallel(ftree, dmodk,
                                                      probe_trials, 42, pool);
      });
      json.key("load_probe").begin_object();
      json.member("routing", "d-mod-k");
      json.member("blocking_probability", estimate.blocking_probability);
      json.member("mean_colliding_pairs", estimate.mean_colliding_pairs);
      json.member("seconds", secs);
      json.member("perms_per_sec",
                  static_cast<double>(estimate.trials) / secs);
      json.end_object();
    }

    // --- cache effectiveness over this case's work ---------------------
    const auto lookups =
        metrics.counter("route_cache.lookups").value() - lookups_before;
    const auto routed =
        metrics.counter("route_cache.routes_materialized").value() -
        routed_before;
    json.member("cache_lookups", lookups);
    json.member("cache_hit_rate",
                lookups + routed > 0
                    ? static_cast<double>(lookups) /
                          static_cast<double>(lookups + routed)
                    : 0.0);
    json.member("peak_rss_kb", nbclos::obs::peak_rss_kb());
    json.end_object();
  }
  json.end_array();

  manifest.wall_seconds = seconds_since(wall_start);
  // Sample the manifest's RSS high-water mark *after* every case's
  // caches and kernel arenas have been built — sampling at startup
  // under-reported by the size of everything the bench allocated.
  manifest.peak_rss_kb = nbclos::obs::peak_rss_kb();
  json.key("manifest");
  manifest.write_json(json);
  json.end_object();
  std::cout << "\n";
  return 0;
}
