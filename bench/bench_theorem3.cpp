/// \file bench_theorem3.cpp
/// \brief Theorem 3: the explicit (i, j) routing makes ftree(n+n^2, r)
///        nonblocking.  This bench attacks the claim as hard as a tester
///        can: exhaustive enumeration on tiny instances, heavy random
///        sampling, adversarial hill-climbing, and the Lemma 1 audit at
///        Table I scale — then reports verification throughput.
#include <chrono>
#include <iostream>
#include <string>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/verifier.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/util/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  std::cout << "Theorem 3 — ftree(n+n^2, r) with (i,j) routing supports "
               "every permutation with zero contention\n\n";
  nbclos::TextTable table({"n", "r", "ports", "mode", "permutations",
                           "contention found", "time [s]"});
  bool all_clean = true;

  // Exhaustive proof on tiny instances.
  for (const auto& [n, r] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{{2, 3}, {2, 4}}) {
    const nbclos::FoldedClos ft(nbclos::FtreeParams{n, n * n, r});
    const nbclos::YuanNonblockingRouting routing(ft);
    const auto start = std::chrono::steady_clock::now();
    const auto result =
        nbclos::verify_exhaustive(ft, nbclos::as_pattern_router(routing));
    all_clean = all_clean && result.nonblocking;
    table.add(n, r, ft.leaf_count(), std::string("exhaustive"),
              result.permutations_checked,
              std::string(result.nonblocking ? "none" : "YES"),
              seconds_since(start));
  }

  // Random + adversarial at growing scale.
  for (const auto& [n, r] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {3, 12}, {4, 20}, {5, 30}, {6, 42}}) {
    const nbclos::FoldedClos ft(nbclos::FtreeParams{n, n * n, r});
    const nbclos::YuanNonblockingRouting routing(ft);
    {
      nbclos::Xoshiro256 rng(2026);
      const auto start = std::chrono::steady_clock::now();
      const auto result = nbclos::verify_random(
          ft, nbclos::as_pattern_router(routing), 2000, rng);
      all_clean = all_clean && result.nonblocking;
      table.add(n, r, ft.leaf_count(), std::string("random"),
                result.permutations_checked,
                std::string(result.nonblocking ? "none" : "YES"),
                seconds_since(start));
    }
    {
      nbclos::Xoshiro256 rng(9);
      const auto start = std::chrono::steady_clock::now();
      const auto result = nbclos::verify_adversarial(
          ft, nbclos::as_pattern_router(routing),
          nbclos::AdversarialOptions{4, 500}, rng);
      all_clean = all_clean && result.nonblocking;
      table.add(n, r, ft.leaf_count(), std::string("adversarial"),
                result.permutations_checked,
                std::string(result.nonblocking ? "none" : "YES"),
                seconds_since(start));
    }
  }

  // Lemma 1 audit — instance proofs at Table I scale.
  for (const std::uint32_t n : {4U, 5U, 6U}) {
    const std::uint32_t r = n + n * n;
    const nbclos::FoldedClos ft(nbclos::FtreeParams{n, n * n, r});
    const nbclos::YuanNonblockingRouting routing(ft);
    const auto start = std::chrono::steady_clock::now();
    const bool ok = nbclos::is_nonblocking_single_path(routing);
    all_clean = all_clean && ok;
    table.add(n, r, ft.leaf_count(), std::string("lemma-1 audit"),
              ft.cross_pair_count(), std::string(ok ? "none" : "YES"),
              seconds_since(start));
  }

  table.print(std::cout);
  if (csv) table.print_csv(std::cout);
  std::cout << "\nVerdict: " << (all_clean ? "zero contention everywhere — "
                                             "matches Theorem 3."
                                           : "CONTENTION FOUND — bug!")
            << "\n";
  return all_clean ? 0 : 1;
}
