/// \file bench_simcore.cpp
/// \brief Simulator hot-path throughput: wall-clock cycles/sec and
///        packets/sec of the cycle kernel on ftree(4+16, 8).
///
/// Measures the engine itself, not the fabric: one PacketSim per load
/// level, Theorem 3 table routing under a shift permutation.  The low
/// load (0.1) exercises the active-channel lists where per-cycle cost is
/// proportional to resident packets; the high load (0.9) approaches the
/// dense regime where most channels stay busy.  Emits one JSON document
/// on stdout (with a build/run manifest; schema in EXPERIMENTS.md); pass
/// --cycles <N> to shrink the measured window (CI smoke runs).
///
/// The obs_overhead section reruns the middle load with metric recording
/// enabled vs paused (obs::set_enabled) and reports the relative cost of
/// live instrumentation — the acceptance budget is < 2%.  Both runs must
/// produce field-identical SimResults (instrumentation never feeds back
/// into the engine); a mismatch fails the bench.  The compiled-off cost
/// is measured separately by building with -DNBCLOS_OBS=OFF.
///
/// The recorder_overhead section does the same comparison with the
/// flight recorder armed (record_timeseries) — sampling live vs paused
/// via the runtime switch — with an acceptance budget of < 5%.
///
/// Simulation results are seeded and bit-reproducible; the timings, of
/// course, are not.
#include <chrono>
#include <cstddef>
#include <iostream>
#include <limits>
#include <string>
#include <tuple>
#include <utility>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/obs/metrics.hpp"
#include "nbclos/obs/run_info.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"
#include "nbclos/util/json.hpp"

namespace {

bool same_result(const nbclos::sim::SimResult& a,
                 const nbclos::sim::SimResult& b) {
  return a.offered_load == b.offered_load &&
         a.accepted_throughput == b.accepted_throughput &&
         a.mean_latency == b.mean_latency && a.p50_latency == b.p50_latency &&
         a.p99_latency == b.p99_latency && a.p999_latency == b.p999_latency &&
         a.injected_packets == b.injected_packets &&
         a.delivered_packets == b.delivered_packets &&
         a.dropped_packets == b.dropped_packets &&
         a.mean_switch_queue_depth == b.mean_switch_queue_depth &&
         a.min_flow_throughput == b.min_flow_throughput &&
         a.max_flow_throughput == b.max_flow_throughput;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t measure_cycles = 498000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--cycles") {
      measure_cycles = std::stoull(argv[i + 1]);
    }
  }

  constexpr std::uint32_t kN = 4;
  constexpr std::uint32_t kR = 8;
  constexpr std::uint64_t kSeed = 11;
  const nbclos::FoldedClos ftree(nbclos::FtreeParams{kN, kN * kN, kR});
  const auto net = nbclos::build_network(ftree);
  const nbclos::YuanNonblockingRouting yuan(ftree);
  const auto table = nbclos::RoutingTable::materialize(yuan);
  const auto pattern = nbclos::shift_permutation(ftree.leaf_count(), 5);
  const auto traffic =
      nbclos::sim::TrafficPattern::permutation(pattern, ftree.leaf_count());

  const auto run_once = [&](double load, std::uint64_t cycles) {
    nbclos::sim::SimConfig config;
    config.injection_rate = load;
    config.warmup_cycles = 2000;
    config.measure_cycles = cycles;
    config.seed = kSeed;
    nbclos::sim::FtreeOracle oracle(ftree, nbclos::sim::UplinkPolicy::kTable,
                                    &table);
    nbclos::sim::PacketSim sim(net, oracle, traffic, config);
    return sim.run();
  };

  const auto wall_start = std::chrono::steady_clock::now();
  auto manifest = nbclos::obs::RunInfo::current();
  manifest.seed = kSeed;
  manifest.threads = 1;

  nbclos::JsonWriter json(std::cout);
  json.begin_object();
  json.member("experiment", "simcore_throughput");
  const std::string topology = "ftree(" + std::to_string(kN) + "+" +
                               std::to_string(kN * kN) + ", " +
                               std::to_string(kR) + ")";
  json.member("topology", topology);
  json.member("routing", "ftree-table (Theorem 3)");
  json.member("traffic", "shift permutation");
  json.key("levels").begin_array();
  const double loads[] = {0.1, 0.5, 0.9};
  for (const double load : loads) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto result = run_once(load, measure_cycles);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double cycles = static_cast<double>(2000 + measure_cycles);
    json.begin_object();
    json.member("injection_rate", load);
    json.member("cycles", static_cast<std::uint64_t>(cycles));
    json.member("seconds", secs);
    json.member("cycles_per_sec", cycles / secs);
    json.member("packets_per_sec",
                static_cast<double>(result.delivered_packets) / secs);
    json.member("delivered_packets", result.delivered_packets);
    json.member("accepted_throughput", result.accepted_throughput);
    json.end_object();
  }
  json.end_array();

  // --- instrumentation overhead: metrics live vs paused ----------------
  {
    // Shorter window than the throughput levels (two extra runs each way)
    // but long enough that the per-cycle cost dominates setup.
    const std::uint64_t cycles = std::min<std::uint64_t>(measure_cycles,
                                                         100000);
    const double load = 0.5;
    const auto best_of = [&](int reps) {
      double best = std::numeric_limits<double>::infinity();
      nbclos::sim::SimResult result;
      result = run_once(load, cycles);  // warm-up, untimed
      for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = run_once(load, cycles);
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        if (!same_result(r, result)) {
          std::cerr << "nondeterministic engine result\n";
          std::exit(1);
        }
        if (secs < best) best = secs;
      }
      return std::make_pair(best, result);
    };
    nbclos::obs::set_enabled(true);
    const auto [on_secs, on_result] = best_of(3);
    nbclos::obs::set_enabled(false);
    const auto [off_secs, off_result] = best_of(3);
    nbclos::obs::set_enabled(true);
    if (!same_result(on_result, off_result)) {
      std::cerr << "obs on/off changed the engine result\n";
      return 1;
    }
    json.key("obs_overhead").begin_object();
    json.member("compiled_in", nbclos::obs::kEnabled);
    json.member("cycles", cycles);
    json.member("enabled_seconds", on_secs);
    json.member("paused_seconds", off_secs);
    json.member("overhead_pct", (on_secs / off_secs - 1.0) * 100.0);
    json.member("results_identical", true);
    json.end_object();
  }

  // --- flight-recorder overhead: sampling live vs paused ---------------
  {
    const std::uint64_t cycles = std::min<std::uint64_t>(measure_cycles,
                                                         100000);
    const double load = 0.5;
    const auto run_recording = [&](double rate, std::uint64_t window) {
      nbclos::sim::SimConfig config;
      config.injection_rate = rate;
      config.warmup_cycles = 2000;
      config.measure_cycles = window;
      config.seed = kSeed;
      config.record_timeseries = true;
      nbclos::sim::FtreeOracle oracle(ftree, nbclos::sim::UplinkPolicy::kTable,
                                      &table);
      nbclos::sim::PacketSim sim(net, oracle, traffic, config);
      const auto result = sim.run();
      std::size_t points = 0;
      for (const auto& series : sim.recorder().merged()) {
        points += series.points.size();
      }
      return std::make_pair(result, points);
    };
    const auto best_of = [&](int reps) {
      double best = std::numeric_limits<double>::infinity();
      auto [result, points] = run_recording(load, cycles);  // warm-up
      for (int rep = 0; rep < reps; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        const auto [r, p] = run_recording(load, cycles);
        const double secs = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
        if (!same_result(r, result) || p != points) {
          std::cerr << "nondeterministic recorder result\n";
          std::exit(1);
        }
        if (secs < best) best = secs;
      }
      return std::make_tuple(best, result, points);
    };
    nbclos::obs::set_enabled(true);
    const auto [on_secs, on_result, on_points] = best_of(3);
    nbclos::obs::set_enabled(false);  // want() goes false: sampling pauses
    const auto [off_secs, off_result, off_points] = best_of(3);
    nbclos::obs::set_enabled(true);
    if (!same_result(on_result, off_result)) {
      std::cerr << "recorder on/off changed the engine result\n";
      return 1;
    }
    json.key("recorder_overhead").begin_object();
    json.member("compiled_in", nbclos::obs::kEnabled);
    json.member("cycles", cycles);
    json.member("enabled_seconds", on_secs);
    json.member("paused_seconds", off_secs);
    json.member("overhead_pct", (on_secs / off_secs - 1.0) * 100.0);
    json.member("points_recorded", static_cast<std::uint64_t>(on_points));
    json.member("points_paused", static_cast<std::uint64_t>(off_points));
    json.member("results_identical", true);
    json.end_object();
  }

  manifest.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  json.key("manifest");
  manifest.write_json(json);
  json.end_object();
  std::cout << "\n";
  return 0;
}
