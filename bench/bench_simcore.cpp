/// \file bench_simcore.cpp
/// \brief Simulator hot-path throughput: wall-clock cycles/sec and
///        packets/sec of the cycle kernel on ftree(4+16, 8).
///
/// Measures the engine itself, not the fabric: one PacketSim per load
/// level, Theorem 3 table routing under a shift permutation.  The low
/// load (0.1) exercises the active-channel lists where per-cycle cost is
/// proportional to resident packets; the high load (0.9) approaches the
/// dense regime where most channels stay busy.  Emits one JSON document
/// on stdout; pass --cycles <N> to shrink the measured window (CI smoke
/// runs).  Simulation results are seeded and bit-reproducible; the
/// timings, of course, are not.
#include <chrono>
#include <iostream>
#include <string>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"

int main(int argc, char** argv) {
  std::uint64_t measure_cycles = 498000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--cycles") {
      measure_cycles = std::stoull(argv[i + 1]);
    }
  }

  constexpr std::uint32_t kN = 4;
  constexpr std::uint32_t kR = 8;
  const nbclos::FoldedClos ftree(nbclos::FtreeParams{kN, kN * kN, kR});
  const auto net = nbclos::build_network(ftree);
  const nbclos::YuanNonblockingRouting yuan(ftree);
  const auto table = nbclos::RoutingTable::materialize(yuan);
  const auto pattern = nbclos::shift_permutation(ftree.leaf_count(), 5);
  const auto traffic =
      nbclos::sim::TrafficPattern::permutation(pattern, ftree.leaf_count());

  std::cout << "{\n"
            << "  \"experiment\": \"simcore_throughput\",\n"
            << "  \"topology\": \"ftree(" << kN << "+" << kN * kN << ", "
            << kR << ")\",\n"
            << "  \"routing\": \"ftree-table (Theorem 3)\",\n"
            << "  \"traffic\": \"shift permutation\",\n"
            << "  \"levels\": [\n";
  const double loads[] = {0.1, 0.5, 0.9};
  bool first = true;
  for (const double load : loads) {
    nbclos::sim::SimConfig config;
    config.injection_rate = load;
    config.warmup_cycles = 2000;
    config.measure_cycles = measure_cycles;
    config.seed = 11;
    nbclos::sim::FtreeOracle oracle(ftree, nbclos::sim::UplinkPolicy::kTable,
                                    &table);
    const auto t0 = std::chrono::steady_clock::now();
    nbclos::sim::PacketSim sim(net, oracle, traffic, config);
    const auto result = sim.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();
    const auto cycles =
        static_cast<double>(config.warmup_cycles + config.measure_cycles);
    if (!first) std::cout << ",\n";
    first = false;
    std::cout << "    {\"injection_rate\": " << load
              << ", \"cycles\": " << static_cast<std::uint64_t>(cycles)
              << ", \"seconds\": " << secs
              << ", \"cycles_per_sec\": " << cycles / secs
              << ", \"packets_per_sec\": "
              << static_cast<double>(result.delivered_packets) / secs
              << ", \"delivered_packets\": " << result.delivered_packets
              << ", \"accepted_throughput\": " << result.accepted_throughput
              << "}";
  }
  std::cout << "\n  ]\n}\n";
  return 0;
}
