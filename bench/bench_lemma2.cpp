/// \file bench_lemma2.cpp
/// \brief Empirical study of Lemma 2: the maximum number of SD pairs one
///        top-level switch can carry under the "one source or one
///        destination per link" constraint.
///
/// For each (n, r) we report the analytic bound (r(r-1) when r >= 2n+1,
/// else 2nr), the exact optimum from the mode-decomposition search, the
/// always-feasible witness r(r-1), and — where small enough — the raw
/// subset brute force as a cross-check.  The interesting empirical fact:
/// the r <= 2n+1 branch of the bound (2nr) is not tight; the exact
/// optimum stays r(r-1) + smaller-order terms, which is why Theorem 1's
/// port bound is conservative.
#include <iostream>
#include <string>

#include "nbclos/analysis/root_capacity.hpp"
#include "nbclos/util/table.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  std::cout << "Lemma 2 — SD pairs routable through one top switch\n\n";
  nbclos::TextTable table({"n", "r", "regime", "Lemma 2 bound",
                           "exact optimum", "witness r(r-1)", "brute force"});
  for (std::uint32_t n = 1; n <= 4; ++n) {
    for (std::uint32_t r = 2; r <= 7; ++r) {
      const auto bound = nbclos::root_capacity_bound(n, r);
      const auto exact = nbclos::root_capacity_exact(n, r);
      const std::uint64_t witness = std::uint64_t{r} * (r - 1);
      const std::uint64_t pair_count = std::uint64_t{r} * (r - 1) * n * n;
      const std::string brute =
          pair_count <= 30
              ? std::to_string(nbclos::root_capacity_bruteforce(n, r))
              : std::string("-");
      table.add_row({std::to_string(n), std::to_string(r),
                     r >= 2 * n + 1 ? "r>=2n+1" : "r<2n+1",
                     std::to_string(bound), std::to_string(exact),
                     std::to_string(witness), brute});
    }
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);

  std::cout << "\nReading: exact <= bound always (Lemma 2 is sound); in the "
               "r >= 2n+1 regime\nexact == r(r-1) (the bound is tight, "
               "witnessed by one designated source and\ndestination per "
               "switch), which is what forces m >= n^2 in Theorem 2.\n";
  return 0;
}
