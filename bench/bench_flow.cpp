/// \file bench_flow.cpp
/// \brief Flow-control engine throughput and buffer-margin sweeps: how
///        fast the cycle-level simulator runs, and how many buffer flits
///        per port each routing needs before it sustains nonblocking
///        throughput, on radix-8 and radix-16 fabrics.
///
/// One JSON document on stdout (schema in EXPERIMENTS.md).  For each
/// radix the harness measures, on ftree(4 + 16, r):
///   * engine.{wormhole,vct} — FlowSim wall time at offered load 0.9
///     with 4-flit packets and 8-flit buffers, reported as simulated
///     cycles/sec (best of repetitions, deterministic work);
///   * margin.{thm3,dmodk,adaptive}_{wormhole,vct} — the
///     analysis::buffer_margin_sweep minimum buffer depth at which the
///     routing sustains the 0.9 probe (min_flits_nonblocking; 0 = no
///     probed depth sustains it).  The Theorem 3 routing is
///     contention-free, so its margin doubles as a verdict gate: the
///     regression checker fails the document if it reports 0.
/// Traffic is a seeded random permutation — shift permutations are
/// contention-free even under d-mod-k, so a random one is what
/// separates the guaranteed routings (Theorem 3 and the adaptive
/// schedule handle *any* permutation) from the d-mod-k baseline, which
/// collides and cannot sustain the probe.  The adaptive rows route the
/// permutation through the NONBLOCKINGADAPTIVE schedule (Fig. 4)
/// flattened to channel paths; pairs outside the permutation fall back
/// to Theorem 3 routes and never carry traffic.  Results are seeded and
/// bit-reproducible at any thread count.  Pass --quick for CI smoke
/// budgets, --threads <T> to cap the sweep worker pool.
#include <chrono>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "nbclos/adaptive/router.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/flow/buffer_margin.hpp"
#include "nbclos/flow/engine.hpp"
#include "nbclos/obs/run_info.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/util/json.hpp"
#include "nbclos/util/thread_pool.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One untimed warm-up call, then the minimum wall time over `reps`
/// timed calls (deterministic work; only the timing varies).
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double secs = seconds_since(t0);
    if (secs < best) best = secs;
  }
  return best;
}

constexpr int kTimingReps = 3;

/// Flatten a single-path routing into the channel cache FlowSim drives.
std::shared_ptr<const nbclos::routing::ChannelRouteCache> make_cache(
    const nbclos::FoldedClos& ft, const nbclos::Network& net,
    const nbclos::SinglePathRouting& routing) {
  return std::make_shared<const nbclos::routing::ChannelRouteCache>(
      net, [&](nbclos::SDPair sd) {
        nbclos::LinkId run[nbclos::FoldedClos::kMaxPathLinks];
        const auto count = ft.links_into(routing.route(sd), run);
        std::vector<std::uint32_t> channels;
        for (std::uint32_t i = 0; i < count; ++i) {
          channels.push_back(run[i].value);
        }
        return channels;
      });
}

/// Flatten the NONBLOCKINGADAPTIVE schedule for `pattern` into a channel
/// cache: scheduled pairs take their adaptive path, everything else (no
/// traffic under this pattern) falls back to the Theorem 3 route.
std::shared_ptr<const nbclos::routing::ChannelRouteCache> make_adaptive_cache(
    const nbclos::FoldedClos& ft, const nbclos::Network& net,
    const nbclos::YuanNonblockingRouting& fallback,
    const std::vector<nbclos::SDPair>& pattern) {
  const nbclos::adaptive::AdaptiveParams params =
      nbclos::adaptive::AdaptiveParams::from(ft);
  const nbclos::adaptive::NonblockingAdaptiveRouter router(params);
  const auto schedule = router.route(pattern);
  if (schedule.top_switches_used > ft.m()) {
    std::cerr << "adaptive schedule needs " << schedule.top_switches_used
              << " top switches but ftree has " << ft.m() << "\n";
    std::exit(1);
  }
  const auto paths = schedule.to_paths(ft);
  std::unordered_map<std::uint64_t, nbclos::FtreePath> scheduled;
  const std::uint64_t leafs = ft.leaf_count();
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    scheduled.emplace(pattern[i].src.value * leafs + pattern[i].dst.value,
                      paths[i]);
  }
  return std::make_shared<const nbclos::routing::ChannelRouteCache>(
      net, [&, scheduled = std::move(scheduled)](nbclos::SDPair sd) {
        const auto hit = scheduled.find(sd.src.value * leafs + sd.dst.value);
        const nbclos::FtreePath path =
            hit != scheduled.end() ? hit->second : fallback.route(sd);
        nbclos::LinkId run[nbclos::FoldedClos::kMaxPathLinks];
        const auto count = ft.links_into(path, run);
        std::vector<std::uint32_t> channels;
        for (std::uint32_t i = 0; i < count; ++i) {
          channels.push_back(run[i].value);
        }
        return channels;
      });
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t max_threads = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--threads" && i + 1 < argc) {
      max_threads = std::stoull(argv[i + 1]);
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  auto manifest = nbclos::obs::RunInfo::current();
  manifest.seed = 42;
  manifest.threads = static_cast<std::uint32_t>(max_threads);
  nbclos::ThreadPool pool(max_threads);

  // The quick budgets keep every timed engine section in the
  // milliseconds range so the regression ratios stay timer-noise-free.
  const std::uint64_t warmup = quick ? 300 : 1000;
  const std::uint64_t measure = quick ? 1500 : 6000;
  const std::vector<std::uint32_t> depths =
      quick ? std::vector<std::uint32_t>{1, 2, 4, 8}
            : std::vector<std::uint32_t>{1, 2, 4, 8, 16};

  nbclos::JsonWriter json(std::cout);
  json.begin_object();
  json.member("experiment", "flow");
  json.member("quick", quick);
  json.member("hardware_concurrency",
              static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.member("warmup_cycles", warmup);
  json.member("measure_cycles", measure);

  const std::vector<std::uint32_t> radices = {8, 16};
  json.key("cases").begin_array();
  for (const auto r : radices) {
    const std::uint32_t n = 4;
    const nbclos::FoldedClos ft(nbclos::FtreeParams{n, n * n, r});
    const auto net = nbclos::build_network(ft);
    const nbclos::YuanNonblockingRouting yuan(ft);
    const nbclos::DModKRouting dmodk(ft);
    // Fixed-point-free (seeded) random permutation.  random_permutation
    // drops self-pairs, so a fixed point leaves its terminal with no
    // destination at all — it never injects, diluting accepted
    // throughput below the sustain fraction on every routing and
    // masking the margin.  A full-size pattern is a derangement.
    nbclos::Xoshiro256 pattern_rng(7);
    auto pattern = nbclos::random_permutation(ft.leaf_count(), pattern_rng);
    while (pattern.size() < ft.leaf_count()) {
      pattern = nbclos::random_permutation(ft.leaf_count(), pattern_rng);
    }
    const auto traffic =
        nbclos::sim::TrafficPattern::permutation(pattern, ft.leaf_count());

    struct RoutingCase {
      const char* key;
      std::shared_ptr<const nbclos::routing::ChannelRouteCache> cache;
    };
    const std::vector<RoutingCase> routings = {
        {"thm3", make_cache(ft, net, yuan)},
        {"dmodk", make_cache(ft, net, dmodk)},
        {"adaptive", make_adaptive_cache(ft, net, yuan, pattern)},
    };

    json.begin_object();
    json.member("radix", r);
    json.member("topology", "ftree(" + std::to_string(n) + "+" +
                                std::to_string(n * n) + ", " +
                                std::to_string(r) + ")");
    json.member("leafs", ft.leaf_count());
    json.member("links", ft.link_count());

    // --- engine throughput: simulated cycles per wall second ----------
    json.key("engine").begin_object();
    for (const bool vct : {false, true}) {
      nbclos::flow::FlowConfig config;
      config.injection_rate = 0.9;
      config.packet_flits = 4;
      config.buffer_flits = 8;
      config.switching = vct ? nbclos::flow::Switching::kVirtualCutThrough
                             : nbclos::flow::Switching::kWormhole;
      config.warmup_cycles = warmup;
      config.measure_cycles = measure;
      nbclos::flow::FlowResult result;
      const double secs = best_seconds(kTimingReps, [&] {
        nbclos::flow::FlowSim sim(routings[0].cache, traffic, config);
        result = sim.run();
      });
      if (result.deadlocked) {
        std::cerr << "unexpected deadlock on the Theorem 3 routing\n";
        return 1;
      }
      const double cycles = static_cast<double>(warmup + measure);
      json.key(vct ? "vct" : "wormhole").begin_object();
      json.member("seconds", secs);
      json.member("cycles_per_sec", cycles / secs);
      json.member("accepted_throughput", result.accepted_throughput);
      json.member("min_flow_throughput", result.min_flow_throughput);
      json.member("max_flow_throughput", result.max_flow_throughput);
      json.member("injected_packets", result.injected_packets);
      json.member("delivered_packets", result.delivered_packets);
      json.member("mean_latency", result.mean_latency);
      json.member("peak_buffer_flits", result.peak_buffer_flits);
      json.member("deadlocked", result.deadlocked);
      json.end_object();
    }
    json.end_object();

    // --- buffer margin: min flits/port for nonblocking throughput -----
    json.key("margin").begin_object();
    for (const auto& routing : routings) {
      for (const bool vct : {false, true}) {
        nbclos::analysis::BufferMarginConfig config;
        config.buffer_sizes = depths;
        config.probe_load = 0.9;
        config.base.packet_flits = 4;
        config.base.switching =
            vct ? nbclos::flow::Switching::kVirtualCutThrough
                : nbclos::flow::Switching::kWormhole;
        config.base.warmup_cycles = warmup;
        config.base.measure_cycles = measure;
        config.base.seed = 42;
        const auto sweep = nbclos::analysis::buffer_margin_sweep(
            routing.cache, traffic, config, &pool);
        json.key(std::string(routing.key) + (vct ? "_vct" : "_wormhole"))
            .begin_object();
        json.member("min_flits_nonblocking", sweep.min_flits_nonblocking);
        json.key("points").begin_array();
        for (const auto& point : sweep.points) {
          json.begin_object();
          json.member("buffer_flits", point.buffer_flits);
          json.member("feasible", point.feasible);
          json.member("sustained", point.sustained);
          json.member("accepted_throughput", point.accepted_throughput);
          json.member("deadlocked", point.deadlocked);
          json.member("credit_stall_cycles", point.credit_stall_cycles);
          json.member("peak_buffer_flits", point.peak_buffer_flits);
          json.end_object();
        }
        json.end_array();
        json.end_object();
      }
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();

  manifest.wall_seconds = seconds_since(wall_start);
  json.key("manifest");
  manifest.write_json(json);
  json.end_object();
  std::cout << "\n";
  return 0;
}
