/// \file bench_blocking.cpp
/// \brief Figure-style experiment B: blocking probability of
///        "rearrangeably nonblocking" fat-trees under distributed
///        routing, versus the number of top-level switches m.
///
/// The paper's premise: networks that are nonblocking in the telephone
/// sense (m >= n, centralized control) still block under distributed
/// routing.  We quantify that: for random permutations, the probability
/// that at least one link is shared, as m grows from n to n^2, for
/// static and random routings — hitting exactly zero only at the
/// Theorem 3 operating point.
#include <iostream>
#include <string>

#include "nbclos/analysis/blocking.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/util/table.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  constexpr std::uint32_t kN = 3;
  constexpr std::uint32_t kR = 12;
  constexpr std::uint64_t kTrials = 400;

  std::cout << "Fig-B — blocking probability vs top-level switches m "
               "(ftree(" << kN << "+m, " << kR << "), " << kTrials
            << " random permutations per point)\n\n";

  nbclos::TextTable table({"m", "routing", "P(block)", "+-95%",
                           "mean colliding pairs", "mean max link load"});
  for (const std::uint32_t m : {3U, 4U, 5U, 6U, 7U, 8U, 9U}) {
    const nbclos::FoldedClos ft(nbclos::FtreeParams{kN, m, kR});
    nbclos::Xoshiro256 rng(1000 + m);

    const nbclos::DModKRouting dmodk(ft);
    const auto est_d = nbclos::estimate_blocking(
        ft, nbclos::as_pattern_router(dmodk), kTrials, rng);
    table.add(m, dmodk.name(), est_d.blocking_probability,
              est_d.ci95_half_width, est_d.mean_colliding_pairs,
              est_d.mean_max_link_load);

    const nbclos::RandomFixedRouting random_fixed(ft, 42 + m);
    const auto est_r = nbclos::estimate_blocking(
        ft, nbclos::as_pattern_router(random_fixed), kTrials, rng);
    table.add(m, random_fixed.name(), est_r.blocking_probability,
              est_r.ci95_half_width, est_r.mean_colliding_pairs,
              est_r.mean_max_link_load);

    if (m >= kN * kN) {
      const nbclos::YuanNonblockingRouting yuan(ft);
      const auto est_y = nbclos::estimate_blocking(
          ft, nbclos::as_pattern_router(yuan), kTrials, rng);
      table.add(m, yuan.name(), est_y.blocking_probability,
                est_y.ci95_half_width, est_y.mean_colliding_pairs,
                est_y.mean_max_link_load);
    }
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);

  std::cout << "\nReading: even at m = n^2 = 9 (full rearrangeable slack "
               "plus more), static and\nrandom routings block most random "
               "permutations; the Theorem 3 scheme at the\nsame m blocks "
               "none.  Distributed control, not switch count, is the "
               "binding\nconstraint — the paper's core observation.\n";
  return 0;
}
