/// \file bench_verify.cpp
/// \brief Verification-engine throughput: permutations/sec and hill-climb
///        steps/sec of the adversarial and exhaustive verifiers.
///
/// Three sections, one JSON document on stdout (schema in EXPERIMENTS.md):
///   * adversarial — worst_case_search with a fixed budget on
///     ftree(4+16, 8) under d-mod-k, full re-evaluation vs. the
///     delta-evaluated overload (same seeds, so both walk the identical
///     trajectory and must agree on the collision count — asserted);
///   * exhaustive — verify_exhaustive over all leaf_count! permutations of
///     a nonblocking instance (no early exit), serial and sharded over
///     1/2/8 pool threads;
///   * lemma2 — root_capacity_exact / root_capacity_bruteforce timings at
///     the caps the branch-and-bound search lifted them to.
/// The obs_overhead section reruns the delta adversarial search with
/// metric recording enabled vs paused (obs::set_enabled); the live cost
/// must stay under 2% and the results field-identical.  Pass --quick for
/// CI smoke budgets, --threads <T> to cap the scaling sweep.  Results are
/// seeded and bit-reproducible; timings are not, so every timed section
/// runs once untimed (warm-up) and then reports the best of three timed
/// repetitions — the repeatable cost of the work, not whatever the
/// scheduler did to one run.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "nbclos/analysis/parallel.hpp"
#include "nbclos/analysis/root_capacity.hpp"
#include "nbclos/analysis/verifier.hpp"
#include "nbclos/obs/metrics.hpp"
#include "nbclos/obs/run_info.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/util/json.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One untimed warm-up call, then the minimum wall time over `reps`
/// timed calls.  The searches are deterministic, so every call computes
/// the same result and only the timing varies.
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double secs = seconds_since(t0);
    if (secs < best) best = secs;
  }
  return best;
}

constexpr int kTimingReps = 3;

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t max_threads = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--threads" && i + 1 < argc) {
      max_threads = std::stoull(argv[i + 1]);
    }
  }

  const auto wall_start = std::chrono::steady_clock::now();
  auto manifest = nbclos::obs::RunInfo::current();
  manifest.seed = 7;
  manifest.threads = static_cast<std::uint32_t>(max_threads);

  nbclos::JsonWriter json(std::cout);
  json.begin_object();
  json.member("experiment", "verify_engine");
  json.member("hardware_concurrency",
              static_cast<std::uint64_t>(std::thread::hardware_concurrency()));

  // --- Adversarial: full re-evaluation vs delta evaluation. ------------
  nbclos::AdversarialOptions adv_options;
  adv_options.restarts = quick ? 2 : 8;
  adv_options.steps_per_restart = quick ? 200 : 2000;
  {
    constexpr std::uint32_t kN = 4;
    constexpr std::uint32_t kR = 8;
    const nbclos::FoldedClos ftree(nbclos::FtreeParams{kN, kN * kN, kR});
    const nbclos::DModKRouting dmodk(ftree);

    nbclos::WorstCaseResult full;
    const double full_secs = best_seconds(kTimingReps, [&] {
      nbclos::Xoshiro256 rng(7);
      full = nbclos::worst_case_search(ftree, nbclos::as_pattern_router(dmodk),
                                       adv_options, rng);
    });

    nbclos::WorstCaseResult delta;
    const double delta_secs = best_seconds(kTimingReps, [&] {
      nbclos::Xoshiro256 rng(7);
      delta = nbclos::worst_case_search(ftree, dmodk, adv_options, rng);
    });

    if (full.collisions != delta.collisions ||
        full.evaluations != delta.evaluations) {
      std::cerr << "delta/full mismatch: " << delta.collisions << " vs "
                << full.collisions << "\n";
      return 1;
    }
    const double full_rate = static_cast<double>(full.evaluations) / full_secs;
    const double delta_rate =
        static_cast<double>(delta.evaluations) / delta_secs;
    const std::string topology = "ftree(" + std::to_string(kN) + "+" +
                                 std::to_string(kN * kN) + ", " +
                                 std::to_string(kR) + ")";
    json.key("adversarial").begin_object();
    json.member("topology", topology);
    json.member("routing", "d-mod-k");
    json.member("restarts", adv_options.restarts);
    json.member("steps_per_restart", adv_options.steps_per_restart);
    json.member("worst_collisions", full.collisions);
    json.member("evaluations", full.evaluations);
    json.key("full").begin_object();
    json.member("seconds", full_secs);
    json.member("perms_per_sec", full_rate);
    json.end_object();
    json.key("delta").begin_object();
    json.member("seconds", delta_secs);
    json.member("perms_per_sec", delta_rate);
    json.end_object();
    json.member("speedup", delta_rate / full_rate);
    json.end_object();

    // --- instrumentation overhead: metrics live vs paused --------------
    const auto search = [&] {
      nbclos::Xoshiro256 rng(7);
      return nbclos::worst_case_search(ftree, dmodk, adv_options, rng);
    };
    nbclos::obs::set_enabled(true);
    nbclos::WorstCaseResult on_result;
    const double on_secs =
        best_seconds(kTimingReps, [&] { on_result = search(); });
    nbclos::obs::set_enabled(false);
    nbclos::WorstCaseResult off_result;
    const double off_secs =
        best_seconds(kTimingReps, [&] { off_result = search(); });
    nbclos::obs::set_enabled(true);
    if (on_result.collisions != off_result.collisions ||
        on_result.evaluations != off_result.evaluations ||
        on_result.permutation != off_result.permutation) {
      std::cerr << "obs on/off changed the search result\n";
      return 1;
    }
    json.key("obs_overhead").begin_object();
    json.member("compiled_in", nbclos::obs::kEnabled);
    json.member("enabled_seconds", on_secs);
    json.member("paused_seconds", off_secs);
    json.member("overhead_pct", (on_secs / off_secs - 1.0) * 100.0);
    json.member("results_identical", true);
    json.end_object();
  }

  // --- Exhaustive: serial vs sharded thread scaling. -------------------
  {
    // 9! = 362880 permutations in the full run — big enough to amortize
    // shard startup; --quick drops to 7! = 5040.
    const std::uint32_t n = quick ? 1 : 3;
    const std::uint32_t r = quick ? 7 : 3;
    const nbclos::FoldedClos ftree(nbclos::FtreeParams{n, n * n, r});
    const nbclos::YuanNonblockingRouting yuan(ftree);
    const auto factory = [&yuan](std::uint64_t) {
      return nbclos::as_pattern_router(yuan);
    };

    nbclos::VerifyResult serial;
    const double serial_secs = best_seconds(kTimingReps, [&] {
      serial = nbclos::verify_exhaustive(ftree, nbclos::as_pattern_router(yuan));
    });
    if (!serial.nonblocking) {
      std::cerr << "expected a nonblocking instance\n";
      return 1;
    }
    const double serial_rate =
        static_cast<double>(serial.permutations_checked) / serial_secs;
    const std::string topology = "ftree(" + std::to_string(n) + "+" +
                                 std::to_string(n * n) + ", " +
                                 std::to_string(r) + ")";
    json.key("exhaustive").begin_object();
    json.member("topology", topology);
    json.member("routing", yuan.name());
    json.member("permutations", serial.permutations_checked);
    json.key("serial").begin_object();
    json.member("seconds", serial_secs);
    json.member("perms_per_sec", serial_rate);
    json.end_object();
    json.key("sharded").begin_array();
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      if (threads > max_threads) continue;
      nbclos::ThreadPool pool(threads);
      nbclos::VerifyResult sharded;
      const double secs = best_seconds(kTimingReps, [&] {
        sharded = nbclos::verify_exhaustive_parallel(ftree, factory, pool);
      });
      if (sharded.nonblocking != serial.nonblocking ||
          sharded.permutations_checked != serial.permutations_checked) {
        std::cerr << "sharded exhaustive diverged from serial\n";
        return 1;
      }
      json.begin_object();
      json.member("threads", static_cast<std::uint64_t>(threads));
      json.member("seconds", secs);
      json.member("perms_per_sec",
                  static_cast<double>(sharded.permutations_checked) / secs);
      json.member("speedup_vs_serial", serial_secs / secs);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }

  // --- Lemma 2 searches at the lifted caps. ----------------------------
  {
    struct Case {
      std::uint32_t n, r;
      bool bruteforce;
    };
    const std::vector<Case> cases =
        quick ? std::vector<Case>{{2, 8, false}, {2, 3, true}}
              : std::vector<Case>{{2, 9, false},
                                  {2, 10, false},
                                  {3, 10, false},
                                  {2, 3, true},
                                  {3, 2, true}};
    json.key("lemma2").begin_array();
    for (const auto c : cases) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::uint64_t value = c.bruteforce
                                      ? nbclos::root_capacity_bruteforce(c.n,
                                                                         c.r)
                                      : nbclos::root_capacity_exact(c.n, c.r);
      const double secs = seconds_since(t0);
      json.begin_object();
      json.member("n", c.n);
      json.member("r", c.r);
      json.member("search", c.bruteforce ? "bruteforce" : "exact");
      json.member("value", value);
      json.member("bound", nbclos::root_capacity_bound(c.n, c.r));
      json.member("seconds", secs);
      json.end_object();
    }
    json.end_array();
  }

  manifest.wall_seconds = seconds_since(wall_start);
  json.key("manifest");
  manifest.write_json(json);
  json.end_object();
  std::cout << "\n";
  return 0;
}
