/// \file bench_verify.cpp
/// \brief Verification-engine throughput: permutations/sec and hill-climb
///        steps/sec of the adversarial and exhaustive verifiers.
///
/// Three sections, one JSON document on stdout (schema in EXPERIMENTS.md):
///   * adversarial — worst_case_search with a fixed budget on
///     ftree(4+16, 8) under d-mod-k, full re-evaluation vs. the
///     delta-evaluated overload (same seeds, so both walk the identical
///     trajectory and must agree on the collision count — asserted);
///   * exhaustive — verify_exhaustive over all leaf_count! permutations of
///     a nonblocking instance (no early exit), serial and sharded over
///     1/2/8 pool threads;
///   * lemma2 — root_capacity_exact / root_capacity_bruteforce timings at
///     the caps the branch-and-bound search lifted them to.
/// Pass --quick for CI smoke budgets, --threads <T> to cap the scaling
/// sweep.  Results are seeded and bit-reproducible; timings are not, so
/// every timed section runs once untimed (warm-up) and then reports the
/// best of three timed repetitions — the repeatable cost of the work,
/// not whatever the scheduler did to one run.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "nbclos/analysis/parallel.hpp"
#include "nbclos/analysis/root_capacity.hpp"
#include "nbclos/analysis/verifier.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One untimed warm-up call, then the minimum wall time over `reps`
/// timed calls.  The searches are deterministic, so every call computes
/// the same result and only the timing varies.
template <typename Fn>
double best_seconds(int reps, Fn&& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double secs = seconds_since(t0);
    if (secs < best) best = secs;
  }
  return best;
}

constexpr int kTimingReps = 3;

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::size_t max_threads = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg == "--threads" && i + 1 < argc) {
      max_threads = std::stoull(argv[i + 1]);
    }
  }

  std::cout << "{\n  \"experiment\": \"verify_engine\",\n"
            << "  \"hardware_concurrency\": "
            << std::thread::hardware_concurrency() << ",\n";

  // --- Adversarial: full re-evaluation vs delta evaluation. ------------
  {
    constexpr std::uint32_t kN = 4;
    constexpr std::uint32_t kR = 8;
    const nbclos::FoldedClos ftree(nbclos::FtreeParams{kN, kN * kN, kR});
    const nbclos::DModKRouting dmodk(ftree);
    nbclos::AdversarialOptions options;
    options.restarts = quick ? 2 : 8;
    options.steps_per_restart = quick ? 200 : 2000;

    nbclos::WorstCaseResult full;
    const double full_secs = best_seconds(kTimingReps, [&] {
      nbclos::Xoshiro256 rng(7);
      full = nbclos::worst_case_search(ftree, nbclos::as_pattern_router(dmodk),
                                       options, rng);
    });

    nbclos::WorstCaseResult delta;
    const double delta_secs = best_seconds(kTimingReps, [&] {
      nbclos::Xoshiro256 rng(7);
      delta = nbclos::worst_case_search(ftree, dmodk, options, rng);
    });

    if (full.collisions != delta.collisions ||
        full.evaluations != delta.evaluations) {
      std::cerr << "delta/full mismatch: " << delta.collisions << " vs "
                << full.collisions << "\n";
      return 1;
    }
    const double full_rate = static_cast<double>(full.evaluations) / full_secs;
    const double delta_rate =
        static_cast<double>(delta.evaluations) / delta_secs;
    std::cout << "  \"adversarial\": {\n"
              << "    \"topology\": \"ftree(" << kN << "+" << kN * kN << ", "
              << kR << ")\",\n    \"routing\": \"d-mod-k\",\n"
              << "    \"restarts\": " << options.restarts
              << ", \"steps_per_restart\": " << options.steps_per_restart
              << ",\n    \"worst_collisions\": " << full.collisions
              << ", \"evaluations\": " << full.evaluations << ",\n"
              << "    \"full\": {\"seconds\": " << full_secs
              << ", \"perms_per_sec\": " << full_rate << "},\n"
              << "    \"delta\": {\"seconds\": " << delta_secs
              << ", \"perms_per_sec\": " << delta_rate << "},\n"
              << "    \"speedup\": " << delta_rate / full_rate << "\n  },\n";
  }

  // --- Exhaustive: serial vs sharded thread scaling. -------------------
  {
    // 9! = 362880 permutations in the full run — big enough to amortize
    // shard startup; --quick drops to 7! = 5040.
    const std::uint32_t n = quick ? 1 : 3;
    const std::uint32_t r = quick ? 7 : 3;
    const nbclos::FoldedClos ftree(nbclos::FtreeParams{n, n * n, r});
    const nbclos::YuanNonblockingRouting yuan(ftree);
    const auto factory = [&yuan](std::uint64_t) {
      return nbclos::as_pattern_router(yuan);
    };

    nbclos::VerifyResult serial;
    const double serial_secs = best_seconds(kTimingReps, [&] {
      serial = nbclos::verify_exhaustive(ftree, nbclos::as_pattern_router(yuan));
    });
    if (!serial.nonblocking) {
      std::cerr << "expected a nonblocking instance\n";
      return 1;
    }
    const double serial_rate =
        static_cast<double>(serial.permutations_checked) / serial_secs;
    std::cout << "  \"exhaustive\": {\n    \"topology\": \"ftree(" << n << "+"
              << n * n << ", " << r << ")\",\n"
              << "    \"routing\": \"" << yuan.name() << "\",\n"
              << "    \"permutations\": " << serial.permutations_checked
              << ",\n    \"serial\": {\"seconds\": " << serial_secs
              << ", \"perms_per_sec\": " << serial_rate << "},\n"
              << "    \"sharded\": [\n";
    bool first = true;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      if (threads > max_threads) continue;
      nbclos::ThreadPool pool(threads);
      nbclos::VerifyResult sharded;
      const double secs = best_seconds(kTimingReps, [&] {
        sharded = nbclos::verify_exhaustive_parallel(ftree, factory, pool);
      });
      if (sharded.nonblocking != serial.nonblocking ||
          sharded.permutations_checked != serial.permutations_checked) {
        std::cerr << "sharded exhaustive diverged from serial\n";
        return 1;
      }
      if (!first) std::cout << ",\n";
      first = false;
      std::cout << "      {\"threads\": " << threads
                << ", \"seconds\": " << secs << ", \"perms_per_sec\": "
                << static_cast<double>(sharded.permutations_checked) / secs
                << ", \"speedup_vs_serial\": " << serial_secs / secs << "}";
    }
    std::cout << "\n    ]\n  },\n";
  }

  // --- Lemma 2 searches at the lifted caps. ----------------------------
  {
    struct Case {
      std::uint32_t n, r;
      bool bruteforce;
    };
    const std::vector<Case> cases =
        quick ? std::vector<Case>{{2, 8, false}, {2, 3, true}}
              : std::vector<Case>{{2, 9, false},
                                  {2, 10, false},
                                  {3, 10, false},
                                  {2, 3, true},
                                  {3, 2, true}};
    std::cout << "  \"lemma2\": [\n";
    bool first = true;
    for (const auto c : cases) {
      const auto t0 = std::chrono::steady_clock::now();
      const std::uint64_t value = c.bruteforce
                                      ? nbclos::root_capacity_bruteforce(c.n,
                                                                         c.r)
                                      : nbclos::root_capacity_exact(c.n, c.r);
      const double secs = seconds_since(t0);
      if (!first) std::cout << ",\n";
      first = false;
      std::cout << "    {\"n\": " << c.n << ", \"r\": " << c.r
                << ", \"search\": \""
                << (c.bruteforce ? "bruteforce" : "exact")
                << "\", \"value\": " << value << ", \"bound\": "
                << nbclos::root_capacity_bound(c.n, c.r)
                << ", \"seconds\": " << secs << "}";
    }
    std::cout << "\n  ]\n}\n";
  }
  return 0;
}
