/// \file bench_theorem1.cpp
/// \brief Theorem 1: with r <= 2n+1 (small top switches), a nonblocking
///        ftree(n+m, r) supports at most 2(n+m) ports — i.e. at most
///        twice the radix of its own bottom switches, so the construction
///        is not cost-effective.
///
/// For each (n, r) in the small-top regime we compute the minimum m
/// implied by the Lemma 2 capacity count, the resulting port count r*n,
/// and the Theorem 1 ceiling 2(n+m); the table shows ports never exceed
/// the ceiling and that the "ports per switch" ratio stays below 2.
#include <iostream>
#include <string>

#include "nbclos/core/conditions.hpp"
#include "nbclos/util/table.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  std::cout << "Theorem 1 — port ceiling for small top switches "
               "(r <= 2n+1)\n\n";
  nbclos::TextTable table({"n", "r", "min m (count)", "ports r*n",
                           "ceiling 2(n+m)", "ports/ceiling", "holds"});
  bool all_hold = true;
  for (std::uint32_t n = 1; n <= 8; ++n) {
    for (std::uint32_t r = 2; r <= 2 * n + 1; r += (n >= 4 ? 2 : 1)) {
      const auto min_m = nbclos::min_top_switches_deterministic(n, r);
      const std::uint64_t ports = std::uint64_t{r} * n;
      const auto ceiling = nbclos::port_upper_bound_small_r(
          n, static_cast<std::uint32_t>(min_m));
      const bool holds = ports <= ceiling;
      all_hold = all_hold && holds;
      table.add_row({std::to_string(n), std::to_string(r),
                     std::to_string(min_m), std::to_string(ports),
                     std::to_string(ceiling),
                     nbclos::format_double(static_cast<double>(ports) /
                                           static_cast<double>(ceiling)),
                     holds ? "yes" : "NO"});
    }
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);

  std::cout << "\nAll rows satisfy ports <= 2(n+m): "
            << (all_hold ? "YES" : "NO — Theorem 1 violated!")
            << "\nConclusion (paper): use large top switches (r >= 2n+1) "
               "when building\nnonblocking folded-Clos networks.\n";
  return all_hold ? 0 : 1;
}
