/// \file bench_circuit.cpp
/// \brief Background experiment (§II): the classical telephone-world
///        nonblocking conditions on Clos(n, m, r), measured under
///        connect/disconnect churn with a centralized controller.
///
/// Sweeps m from n to 2n-1 for every strategy and reports call-blocking
/// probability; the rows confirm
///   * m = 2n-1: zero blocking, any strategy (strictly nonblocking,
///     Clos 1953);
///   * n <= m < 2n-1: strategies block at high occupancy — but
///     rearrangement (Slepian–Duguid) rescues every call at m = n
///     (rearrangeably nonblocking, Benes 1962);
///   * packing blocks less than spreading (the wide-sense effect).
/// This is the regime whose guarantees the paper shows do NOT transfer
/// to distributed packet routing.
#include <iostream>
#include <string>

#include "nbclos/circuit/clos_switch.hpp"
#include "nbclos/util/table.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";
  constexpr std::uint32_t kN = 4;
  constexpr std::uint32_t kR = 6;
  constexpr std::uint64_t kSteps = 40000;

  std::cout << "Telephone-world conditions on Clos(" << kN << ", m, " << kR
            << ") — churn at ~full occupancy, " << kSteps << " steps\n\n";

  nbclos::TextTable table({"m", "regime", "strategy", "attempts", "blocked",
                           "P(block)"});
  using nbclos::circuit::FitStrategy;
  for (std::uint32_t m = kN; m <= 2 * kN - 1; ++m) {
    const std::string regime = m == 2 * kN - 1 ? "m=2n-1 strict"
                               : m == kN       ? "m=n rearrangeable"
                                               : "between";
    for (const auto strategy :
         {FitStrategy::kFirstFit, FitStrategy::kPacking, FitStrategy::kRandom,
          FitStrategy::kLeastUsed}) {
      nbclos::circuit::ClosCircuitSwitch clos(kN, m, kR);
      nbclos::Xoshiro256 rng(99 + m);
      const auto result = nbclos::circuit::run_churn(
          clos, strategy, kSteps, 1.0, /*rearrange=*/false, rng);
      clos.validate();
      table.add(m, regime, to_string(strategy), result.attempts,
                result.blocked,
                nbclos::format_double(result.blocking_probability(), 4));
    }
  }
  // Rearrangement row: m = n, every blocked call re-routed by recoloring.
  {
    nbclos::circuit::ClosCircuitSwitch clos(kN, kN, kR);
    nbclos::Xoshiro256 rng(7);
    const auto result = nbclos::circuit::run_churn(
        clos, FitStrategy::kFirstFit, kSteps, 1.0, /*rearrange=*/true, rng);
    clos.validate();
    table.add(kN, std::string("m=n + rearrange"), std::string("slepian-duguid"),
              result.attempts, result.blocked,
              nbclos::format_double(result.blocking_probability(), 4));
    std::cout << "(rearrangement invoked "
              << result.rearrangements_needed << " times)\n\n";
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);

  // Wide-sense probe: adversarial call sequences below the strict bound.
  std::cout << "\nAdversarial call-sequence search (blocked state found "
               "within 40 restarts x 500 steps?):\n";
  nbclos::TextTable adversary({"m", "strategy", "blocked state found"});
  nbclos::Xoshiro256 rng(2027);
  for (const std::uint32_t m : {kN, 2 * kN - 2, 2 * kN - 1}) {
    for (const auto strategy :
         {FitStrategy::kPacking, FitStrategy::kLeastUsed}) {
      const auto result = nbclos::circuit::adversary_search(
          kN, m, kR, strategy, 40, 500, rng);
      adversary.add(m, to_string(strategy),
                    std::string(result.blocked_found ? "yes" : "no"));
    }
  }
  adversary.print(std::cout);
  if (csv) adversary.print_csv(std::cout);

  std::cout << "\nReading: the classical conditions hold exactly — zero "
               "blocking at m = 2n-1 and\nat m = n with rearrangement.  "
               "The paper's point: these guarantees presuppose a\n"
               "centralized controller; none of them survive distributed "
               "packet routing\n(see bench_blocking / bench_throughput), "
               "where the bar is m >= n^2 instead.\n";
  return 0;
}
