/// \file bench_multilevel.cpp
/// \brief §IV discussion: the recursive multi-level nonblocking
///        construction, built as a real graph and certified.
///
/// For each (n, levels) we build the fabric, cross-check the realized
/// switch/port counts against the closed-form recurrences, run the
/// generalized Lemma 1 audit (a proof of nonblocking-ness for the
/// instance — the paper's induction claim, machine-checked), and sample
/// random permutations.  A final packet-simulation row shows the 3-level
/// fabric sustaining a full permutation at load 1.0.
#include <chrono>
#include <iostream>
#include <string>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/core/multilevel.hpp"
#include "nbclos/sim/engine.hpp"
#include "nbclos/sim/path_oracle.hpp"
#include "nbclos/util/table.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  std::cout << "Recursive multi-level nonblocking fabrics (§IV): build, "
               "count, certify\n\n";
  nbclos::TextTable table({"n", "levels", "ports", "switches",
                           "formula switches", "lemma-1 certified",
                           "random perms clean", "audit time [s]"});
  bool all_ok = true;
  for (const auto& [n, levels] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {2, 2}, {3, 2}, {4, 2}, {2, 3}, {3, 3}, {2, 4}}) {
    const nbclos::MultiLevelFabric fabric(n, levels);
    const auto design = fabric.design();
    const auto start = std::chrono::steady_clock::now();
    const bool certified = fabric.certify();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const bool random_ok = fabric.verify_random(20, 1234);
    all_ok = all_ok && certified && random_ok &&
             fabric.switch_count() == design.switches;
    table.add(n, levels, fabric.port_count(), fabric.switch_count(),
              design.switches, std::string(certified ? "yes" : "NO"),
              std::string(random_ok ? "yes" : "NO"),
              nbclos::format_double(secs, 3));
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);

  // Dynamic check: full-load permutation through the 3-level fabric.
  {
    const nbclos::MultiLevelFabric fabric(2, 3);
    const auto& net = fabric.network();
    nbclos::sim::ExplicitPathOracle oracle(
        net, [&fabric](nbclos::SDPair sd) { return fabric.route(sd); },
        "multilevel");
    const auto pattern =
        nbclos::shift_permutation(fabric.port_count(), 7);
    const auto traffic = nbclos::sim::TrafficPattern::permutation(
        pattern, fabric.port_count());
    nbclos::sim::SimConfig config;
    config.injection_rate = 1.0;
    config.warmup_cycles = 1000;
    config.measure_cycles = 5000;
    nbclos::sim::PacketSim sim(net, oracle, traffic, config);
    const auto result = sim.run();
    std::cout << "\nPacket simulation, 3-level fabric (n=2, 24 ports), "
                 "full permutation at load 1.0:\n  accepted throughput = "
              << nbclos::format_double(result.accepted_throughput)
              << " flits/cycle/terminal, mean latency = "
              << nbclos::format_double(result.mean_latency, 1)
              << " cycles\n";
    all_ok = all_ok && result.accepted_throughput > 0.97;
  }

  std::cout << "\nVerdict: "
            << (all_ok ? "the recursive construction is nonblocking at "
                         "every depth tested, and its\ncosts match the "
                         "closed-form recurrences — as the paper's "
                         "induction argument claims."
                       : "MISMATCH — bug!")
            << "\n";
  return all_ok ? 0 : 1;
}
