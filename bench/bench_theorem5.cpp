/// \file bench_theorem5.cpp
/// \brief Theorem 5: NONBLOCKINGADAPTIVE needs O(n^(2 - 1/(2(c+1))))
///        top-level switches.  We measure the switches actually used by
///        the greedy on worst-observed permutations across n, fit the
///        empirical growth exponent, and compare against both the
///        deterministic requirement n^2 and the paper's asymptotic
///        exponent 2 - 1/(2(c+1)).
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "nbclos/adaptive/router.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/core/conditions.hpp"
#include "nbclos/util/stats.hpp"
#include "nbclos/util/table.hpp"

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  std::cout << "Theorem 5 — top switches used by NONBLOCKINGADAPTIVE "
               "(local adaptive routing)\n\n";

  // Keep c fixed by choosing r = n^2 (then c = 2, adaptive exponent
  // 2 - 1/6 ~ 1.833), so the fit isolates growth in n.
  nbclos::TextTable table({"n", "r=n^2", "c", "worst switches", "mean",
                           "n^2 (deterministic)", "simple bound", "ratio to n^2"});
  std::vector<double> xs;
  std::vector<double> ys;
  nbclos::Xoshiro256 rng(505);
  for (const std::uint32_t n : {4U, 6U, 8U, 10U, 12U, 16U, 20U, 24U}) {
    const std::uint32_t r = n * n;
    const nbclos::adaptive::AdaptiveParams params{
        n, r, nbclos::min_digit_width(r, n)};
    const nbclos::adaptive::NonblockingAdaptiveRouter router(params);
    std::uint32_t worst = 0;
    nbclos::RunningStats stats;
    const int trials = n <= 12 ? 40 : 12;
    for (int trial = 0; trial < trials; ++trial) {
      const auto pattern = nbclos::random_permutation(n * r, rng);
      const auto schedule = router.route(pattern);
      worst = std::max(worst, schedule.top_switches_used);
      stats.add(static_cast<double>(schedule.top_switches_used));
    }
    // Structured worst-case candidates.
    for (const auto& pattern :
         {nbclos::shift_permutation(n * r, n),
          nbclos::neighbor_funnel_permutation(n, r),
          nbclos::reverse_permutation(n * r)}) {
      worst = std::max(worst, router.route(pattern).top_switches_used);
    }
    xs.push_back(n);
    ys.push_back(worst);
    table.add(n, r, params.c, worst, stats.mean(), n * n,
              nbclos::adaptive_simple_bound(n, params.c),
              nbclos::format_double(static_cast<double>(worst) /
                                    static_cast<double>(n * n)));
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);

  const auto fit = nbclos::fit_power_law(xs, ys);
  const double paper_exponent = nbclos::adaptive_exponent(2);
  std::cout << "\nEmpirical growth: switches ~ "
            << nbclos::format_double(fit.coefficient, 2) << " * n^"
            << nbclos::format_double(fit.exponent, 3)
            << "  (R^2 = " << nbclos::format_double(fit.r_squared, 4) << ")\n"
            << "Paper's bound exponent for c = 2: 2 - 1/(2(c+1)) = "
            << nbclos::format_double(paper_exponent, 3)
            << "; deterministic routing needs exponent 2.\n";
  const bool sub_quadratic = fit.exponent < 2.0;
  std::cout << "Measured exponent "
            << (sub_quadratic ? "is sub-quadratic — adaptive beats "
                                "deterministic asymptotically, as Theorem 5 "
                                "claims."
                              : "is NOT sub-quadratic — unexpected!")
            << "\n";
  return sub_quadratic ? 0 : 1;
}
