/// \file bench_table1.cpp
/// \brief Reproduces the paper's Table I: sizes of nonblocking
///        ftree(n+n^2, n+n^2) vs rearrangeable FT(m, 2) for practical
///        switch radixes.  Cells where the paper's printed number differs
///        from its own formulas are annotated.
#include <iostream>
#include <string>

#include "nbclos/core/table_one.hpp"
#include "nbclos/util/table.hpp"

namespace {

std::string cell(std::uint64_t ours, std::optional<std::uint64_t> paper) {
  if (!paper.has_value()) return std::to_string(ours);
  if (*paper == ours) return std::to_string(ours) + "  [= paper]";
  return std::to_string(ours) + "  [paper prints " + std::to_string(*paper) +
         "]";
}

}  // namespace

int main(int argc, char** argv) {
  const bool csv = argc > 1 && std::string(argv[1]) == "--csv";

  std::cout << "Table I — size of nonblocking ftree(n+n^2, n+n^2) and "
               "FT(m, 2)\n"
            << "(nonblocking network: 2n^2+n switches, n^3+n^2 ports; "
               "FT(m,2): 3m/2 switches, m^2/2 ports)\n\n";

  nbclos::TextTable table({"switch radix", "NB switches", "NB ports",
                           "FT(m,2) switches", "FT(m,2) ports"});
  for (const auto& row : nbclos::table_one_published()) {
    table.add_row({std::to_string(row.switch_radix),
                   cell(row.nb_switches, row.paper_nb_switches),
                   cell(row.nb_ports, row.paper_nb_ports),
                   cell(row.ft_switches, row.paper_ft_switches),
                   cell(row.ft_ports, row.paper_ft_ports)});
  }
  table.print(std::cout);
  if (csv) table.print_csv(std::cout);

  std::cout << "\nExtended rows (not in the paper):\n";
  nbclos::TextTable extended({"switch radix", "n", "NB switches", "NB ports",
                              "FT(m,2) switches", "FT(m,2) ports"});
  for (const std::uint32_t radix : {56U, 72U, 90U, 110U}) {
    const auto row = nbclos::table_one_row(radix);
    extended.add(radix, (radix == 56U   ? 7U
                         : radix == 72U ? 8U
                         : radix == 90U ? 9U
                                        : 10U),
                 row.nb_switches, row.nb_ports, row.ft_switches, row.ft_ports);
  }
  extended.print(std::cout);
  if (csv) extended.print_csv(std::cout);

  std::cout << "\nNote: the 42-port row's published \"88\" switches and "
               "\"884\" FT ports disagree\nwith the paper's own formulas "
               "(2*6^2+6 = 78, 42^2/2 = 882); we reproduce the\nformulas "
               "and flag the printed values.\n";
  return 0;
}
