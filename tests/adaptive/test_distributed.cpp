#include "nbclos/adaptive/distributed.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"

namespace nbclos::adaptive {
namespace {

AdaptiveParams make_params(std::uint32_t n, std::uint32_t r) {
  return AdaptiveParams{n, r, min_digit_width(r, n)};
}

TEST(Distributed, LocalSchedulerRejectsForeignTraffic) {
  const auto params = make_params(3, 9);
  const SwitchLocalScheduler scheduler(params, 2);
  // Source leaf 0 lives in switch 0, not 2.
  const std::vector<SDPair> foreign{{LeafId{0}, LeafId{10}}};
  EXPECT_THROW((void)scheduler.schedule(foreign), precondition_error);
}

TEST(Distributed, LocalSchedulerHandlesItsOwnTraffic) {
  const auto params = make_params(3, 9);
  const SwitchLocalScheduler scheduler(params, 2);
  const std::vector<SDPair> local{
      {LeafId{6}, LeafId{10}}, {LeafId{7}, LeafId{14}},
      {LeafId{8}, LeafId{7}},  // same-switch: direct
  };
  const auto assignments = scheduler.schedule(local);
  ASSERT_EQ(assignments.size(), 3U);
  EXPECT_FALSE(assignments[0].direct);
  EXPECT_FALSE(assignments[1].direct);
  EXPECT_TRUE(assignments[2].direct);
}

TEST(Distributed, MergeEqualsMonolithicRouter) {
  // The §V claim: per-switch independent scheduling + merge == global
  // algorithm.  Exact equality of every assignment field.
  Xoshiro256 rng(88);
  for (const auto& [n, r] :
       std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {2, 4}, {3, 9}, {4, 16}, {3, 20}}) {
    const auto params = make_params(n, r);
    const NonblockingAdaptiveRouter router(params);
    for (int trial = 0; trial < 10; ++trial) {
      const auto pattern = random_permutation(n * r, rng);
      const auto global = router.route(pattern);
      const auto merged = distributed_route(params, pattern);
      ASSERT_EQ(global.assignments.size(), merged.assignments.size());
      EXPECT_EQ(global.configurations_used, merged.configurations_used);
      EXPECT_EQ(global.top_switches_used, merged.top_switches_used);
      for (std::size_t i = 0; i < global.assignments.size(); ++i) {
        const auto& a = global.assignments[i];
        const auto& b = merged.assignments[i];
        EXPECT_EQ(a.sd, b.sd);
        EXPECT_EQ(a.direct, b.direct);
        EXPECT_EQ(a.configuration, b.configuration);
        EXPECT_EQ(a.partition, b.partition);
        EXPECT_EQ(a.key, b.key);
        EXPECT_EQ(a.top_switch, b.top_switch);
      }
    }
  }
}

TEST(Distributed, SchedulersDoNotNeedEachOther) {
  // Stronger independence property: scheduling switch A's pairs gives
  // the same result whether or not switch B has traffic at all.
  const auto params = make_params(3, 9);
  const SwitchLocalScheduler scheduler(params, 0);
  const std::vector<SDPair> pairs{{LeafId{0}, LeafId{5}},
                                  {LeafId{1}, LeafId{8}}};
  const auto alone = scheduler.schedule(pairs);

  // Embed the same pairs in a big permutation and route globally.
  Permutation pattern = pairs;
  pattern.push_back({LeafId{3}, LeafId{12}});
  pattern.push_back({LeafId{9}, LeafId{22}});
  pattern.push_back({LeafId{14}, LeafId{2}});
  const auto merged = distributed_route(params, pattern);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(merged.assignments[i].top_switch, alone[i].top_switch);
    EXPECT_EQ(merged.assignments[i].partition, alone[i].partition);
  }
}

TEST(Distributed, MergedScheduleIsContentionFree) {
  const auto params = make_params(4, 16);
  const FoldedClos ft(
      FtreeParams{params.n, params.worst_case_top_switches(), params.r});
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    const auto pattern = random_permutation(ft.leaf_count(), rng);
    const auto schedule = distributed_route(params, pattern);
    EXPECT_FALSE(has_contention(ft, schedule.to_paths(ft)));
  }
}

TEST(Distributed, FirstAvailablePolicyStaysContentionFree) {
  // Correctness comes from Lemma 5, not the subset-size heuristic: the
  // ablated policy must still produce contention-free schedules.
  const auto params = make_params(3, 9);
  const FoldedClos ft(
      FtreeParams{params.n, params.worst_case_top_switches(), params.r});
  Xoshiro256 rng(21);
  for (int trial = 0; trial < 15; ++trial) {
    const auto pattern = random_permutation(ft.leaf_count(), rng);
    const auto schedule = distributed_route(
        params, pattern, PartitionPolicy::kFirstAvailable);
    EXPECT_FALSE(has_contention(ft, schedule.to_paths(ft)));
  }
}

TEST(Distributed, FirstAvailableNeverBeatsLargestSubset) {
  // The paper's greedy dominates the ablated policy in switch usage on
  // every pattern (it peels at least as many pairs per partition).
  const auto params = make_params(4, 16);
  Xoshiro256 rng(22);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pattern = random_permutation(params.n * params.r, rng);
    const auto paper =
        distributed_route(params, pattern, PartitionPolicy::kLargestSubset);
    const auto ablated =
        distributed_route(params, pattern, PartitionPolicy::kFirstAvailable);
    EXPECT_LE(paper.configurations_used, ablated.configurations_used);
  }
}

TEST(Distributed, DetectsSourceReuse) {
  const auto params = make_params(2, 4);
  EXPECT_THROW((void)distributed_route(
                   params, {{LeafId{0}, LeafId{4}}, {LeafId{0}, LeafId{6}}}),
               precondition_error);
}

TEST(Distributed, LocalSchedulerDetectsDestinationReuseWithinSwitch) {
  const auto params = make_params(2, 4);
  const SwitchLocalScheduler scheduler(params, 0);
  const std::vector<SDPair> bad{{LeafId{0}, LeafId{4}},
                                {LeafId{1}, LeafId{4}}};
  EXPECT_THROW((void)scheduler.schedule(bad), precondition_error);
}

}  // namespace
}  // namespace nbclos::adaptive
