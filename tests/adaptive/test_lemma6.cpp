#include "nbclos/adaptive/lemma6.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "nbclos/util/prng.hpp"

namespace nbclos::adaptive {
namespace {

TEST(Lemma6Key, MatchesDefinition) {
  const DigitCodec codec(5, 3);  // digits d_2 d_1 d_0, base 5
  const std::uint64_t value = 3 + 1 * 5 + 4 * 25;  // d_0=3 d_1=1 d_2=4
  EXPECT_EQ(lemma6_key(codec, value, 0), 3U);
  EXPECT_EQ(lemma6_key(codec, value, 1), (1 + 5 - 3) % 5);
  EXPECT_EQ(lemma6_key(codec, value, 2), (4 + 5 - 3) % 5);
  EXPECT_THROW((void)lemma6_key(codec, value, 3), precondition_error);
}

TEST(Lemma6Bound, Formula) {
  EXPECT_DOUBLE_EQ(lemma6_bound(16, 1), 2.0);     // 16^(1/4)
  EXPECT_DOUBLE_EQ(lemma6_bound(64, 2), 2.0);     // 64^(1/6)
  EXPECT_DOUBLE_EQ(lemma6_bound(1, 5), 1.0);
}

TEST(Lemma6Select, SelectedKeysAreDistinct) {
  const DigitCodec codec(4, 3);
  const std::vector<std::uint64_t> values{0, 5, 21, 42, 63, 17, 33};
  const auto sel = lemma6_select(codec, values);
  std::set<std::uint32_t> keys;
  for (const auto idx : sel.indices) {
    keys.insert(lemma6_key(codec, values[idx], sel.partition));
  }
  EXPECT_EQ(keys.size(), sel.indices.size());
}

TEST(Lemma6Select, MeetsTheBoundOnRandomSets) {
  // Lemma 6: for any k distinct numbers there is a criterion selecting
  // at least k^(1/(2(c+1))) of them.  Randomized adversary over many
  // draws.
  Xoshiro256 rng(8);
  for (const std::uint32_t n : {2U, 3U, 4U, 5U}) {
    for (const std::uint32_t width : {2U, 3U, 4U}) {
      const DigitCodec codec(n, width);
      for (int trial = 0; trial < 40; ++trial) {
        // Sample distinct values.
        std::set<std::uint64_t> sampled;
        const auto want = 1 + rng.below(codec.capacity());
        while (sampled.size() < want &&
               sampled.size() < codec.capacity()) {
          sampled.insert(rng.below(codec.capacity()));
        }
        const std::vector<std::uint64_t> values(sampled.begin(),
                                                sampled.end());
        const auto sel = lemma6_select(codec, values);
        const double bound = lemma6_bound(values.size(), width - 1);
        EXPECT_GE(static_cast<double>(sel.indices.size()) + 1e-9, bound)
            << "n=" << n << " width=" << width << " k=" << values.size();
      }
    }
  }
}

TEST(Lemma6Select, MeetsBoundOnWorstCaseConstantD0) {
  // All numbers share d_0 = 0 so partition 0 selects only one; some
  // higher digit must then discriminate.
  const DigitCodec codec(4, 3);
  std::vector<std::uint64_t> values;
  for (std::uint64_t hi = 0; hi < 16; ++hi) values.push_back(hi * 4);
  const auto sel = lemma6_select(codec, values);
  EXPECT_GT(sel.partition, 0U);
  EXPECT_GE(static_cast<double>(sel.indices.size()),
            lemma6_bound(values.size(), 2));
  EXPECT_EQ(sel.indices.size(), 4U);  // best criterion saturates radix
}

TEST(Lemma6Select, FullDigitSpaceSaturatesRadix) {
  const DigitCodec codec(3, 2);
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 0; v < codec.capacity(); ++v) values.push_back(v);
  const auto sel = lemma6_select(codec, values);
  EXPECT_EQ(sel.indices.size(), 3U);  // a criterion can select at most n
}

TEST(Lemma6Select, SingleValue) {
  const DigitCodec codec(2, 2);
  const std::vector<std::uint64_t> values{3};
  const auto sel = lemma6_select(codec, values);
  ASSERT_EQ(sel.indices.size(), 1U);
  EXPECT_EQ(sel.indices[0], 0U);
}

}  // namespace
}  // namespace nbclos::adaptive
