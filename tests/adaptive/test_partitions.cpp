#include "nbclos/adaptive/partitions.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nbclos::adaptive {
namespace {

TEST(AdaptiveParams, DerivesSmallestC) {
  const FoldedClos ft1(FtreeParams{3, 9, 9});   // r = n^2
  EXPECT_EQ(AdaptiveParams::from(ft1).c, 2U);
  const FoldedClos ft2(FtreeParams{3, 9, 12});  // n^2 < r <= n^3
  EXPECT_EQ(AdaptiveParams::from(ft2).c, 3U);
  const FoldedClos ft3(FtreeParams{4, 16, 4});  // r = n
  EXPECT_EQ(AdaptiveParams::from(ft3).c, 1U);
}

TEST(AdaptiveParams, RejectsNBelowTwo) {
  const FoldedClos ft(FtreeParams{1, 1, 2});
  EXPECT_THROW((void)AdaptiveParams::from(ft), precondition_error);
}

TEST(AdaptiveParams, ConfigurationArithmetic) {
  const AdaptiveParams params{4, 16, 2};
  EXPECT_EQ(params.partitions_per_config(), 3U);
  EXPECT_EQ(params.switches_per_config(), 12U);
  EXPECT_EQ(params.worst_case_top_switches(), 48U);
}

TEST(PartitionKey, FirstPartitionKeysOnLocalNumber) {
  // Partition 0: destination (v, p) -> switch p.
  const AdaptiveParams params{3, 9, 2};
  for (std::uint32_t v = 0; v < params.r; ++v) {
    for (std::uint32_t p = 0; p < params.n; ++p) {
      EXPECT_EQ(partition_key(params, 0, LeafId{v * params.n + p}), p);
    }
  }
}

TEST(PartitionKey, SecondPartitionMatchesPaperFormula) {
  // Partition 1 (the paper's second partition): switch i carries
  // destinations with s_0 = (i + p) mod n, i.e. key = (s_0 - p) mod n.
  const AdaptiveParams params{3, 9, 2};
  for (std::uint32_t s0 = 0; s0 < 3; ++s0) {
    for (std::uint32_t p = 0; p < 3; ++p) {
      const LeafId dst{s0 * params.n + p};  // switch s0 (single digit s_0)
      EXPECT_EQ(partition_key(params, 1, dst), (s0 + 3 - p) % 3);
    }
  }
}

TEST(PartitionKey, HigherPartitionsUseHigherDigits) {
  // n = 2, c = 3 (r = 8): switch digits s_2 s_1 s_0.
  const AdaptiveParams params{2, 8, 3};
  const std::uint32_t sw = 0b101;  // s_2=1, s_1=0, s_0=1
  const LeafId dst{sw * 2 + 1};    // p = 1
  EXPECT_EQ(partition_key(params, 1, dst), (1 + 2 - 1) % 2);  // s_0 - p
  EXPECT_EQ(partition_key(params, 2, dst), (0 + 2 - 1) % 2);  // s_1 - p
  EXPECT_EQ(partition_key(params, 3, dst), (1 + 2 - 1) % 2);  // s_2 - p
}

TEST(PartitionKey, RejectsOutOfRange) {
  const AdaptiveParams params{2, 4, 2};
  EXPECT_THROW((void)partition_key(params, 3, LeafId{0}), precondition_error);
  EXPECT_THROW((void)partition_key(params, 0, LeafId{8}), precondition_error);
}

TEST(ClassDiff, EveryPartitionIsClassDiff) {
  // Lemma 4: in every partition, different destinations in one switch map
  // to different top switches.
  for (const auto& [n, r] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {2, 4}, {2, 8}, {3, 9}, {3, 27}, {4, 16}, {5, 30}, {3, 12}}) {
    const AdaptiveParams params{n, r, min_digit_width(r, n)};
    for (std::uint32_t k = 0; k <= params.c; ++k) {
      EXPECT_TRUE(is_class_diff_partition(params, k))
          << "n=" << n << " r=" << r << " k=" << k;
    }
  }
}

TEST(ClassDiff, KeysWithinSwitchAreAPermutationOfZeroToN) {
  // Stronger form of Lemma 4: within one bottom switch, the n keys of a
  // partition are exactly {0, ..., n-1}.
  const AdaptiveParams params{4, 20, 3};
  for (std::uint32_t k = 0; k <= params.c; ++k) {
    for (std::uint32_t sw = 0; sw < params.r; ++sw) {
      std::set<std::uint32_t> keys;
      for (std::uint32_t p = 0; p < params.n; ++p) {
        keys.insert(partition_key(params, k, LeafId{sw * params.n + p}));
      }
      EXPECT_EQ(keys.size(), params.n);
      EXPECT_EQ(*keys.rbegin(), params.n - 1);
    }
  }
}

TEST(LargestRoutableSubset, PicksOnePairPerDistinctKey) {
  const AdaptiveParams params{3, 9, 2};
  // Destinations with local numbers 0, 0, 1 -> partition 0 keys 0, 0, 1:
  // subset keeps first of each key.
  const std::vector<SDPair> pairs{
      {LeafId{0}, LeafId{3}},   // dst (1,0) key 0
      {LeafId{1}, LeafId{6}},   // dst (2,0) key 0
      {LeafId{2}, LeafId{7}},   // dst (2,1) key 1
  };
  const auto subset = largest_routable_subset(params, 0, pairs);
  ASSERT_EQ(subset.size(), 2U);
  EXPECT_EQ(subset[0], 0U);
  EXPECT_EQ(subset[1], 2U);
}

TEST(LargestRoutableSubset, FullSwitchAlwaysFitsSomePartitionEntirely) {
  // Lemma 5 + Lemma 4 corollary: the n destinations of one target switch
  // have n distinct partition-0 keys, so they fit one partition.
  const AdaptiveParams params{4, 16, 2};
  std::vector<SDPair> pairs;
  for (std::uint32_t p = 0; p < params.n; ++p) {
    pairs.push_back({LeafId{p}, LeafId{2 * params.n + p}});
  }
  EXPECT_EQ(largest_routable_subset(params, 0, pairs).size(), params.n);
}

TEST(LargestRoutableSubset, EmptyInputGivesEmptySubset) {
  const AdaptiveParams params{2, 4, 2};
  EXPECT_TRUE(
      largest_routable_subset(params, 0, std::vector<SDPair>{}).empty());
}

}  // namespace
}  // namespace nbclos::adaptive
