#include "nbclos/adaptive/router.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/core/conditions.hpp"

namespace nbclos::adaptive {
namespace {

/// Topology with enough top switches for any schedule of these params.
FoldedClos roomy_ftree(const AdaptiveParams& params) {
  return FoldedClos(
      FtreeParams{params.n, params.worst_case_top_switches(), params.r});
}

AdaptiveParams make_params(std::uint32_t n, std::uint32_t r) {
  return AdaptiveParams{n, r, min_digit_width(r, n)};
}

TEST(AdaptiveRouter, EveryPermutationIsContentionFree) {
  // Theorem 4 on random permutations over several shapes.
  Xoshiro256 rng(404);
  for (const auto& [n, r] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {2, 4}, {2, 7}, {3, 9}, {3, 12}, {4, 16}, {5, 26}}) {
    const auto params = make_params(n, r);
    const auto ft = roomy_ftree(params);
    const NonblockingAdaptiveRouter router(params);
    for (int trial = 0; trial < 30; ++trial) {
      const auto pattern = random_permutation(ft.leaf_count(), rng);
      const auto schedule = router.route(pattern);
      const auto paths = schedule.to_paths(ft);
      EXPECT_FALSE(has_contention(ft, paths))
          << "n=" << n << " r=" << r << " trial=" << trial;
    }
  }
}

TEST(AdaptiveRouter, ExhaustivelyNonblockingOnTinyInstance) {
  // All 720 permutations of 6 leaves (n=2, r=3).
  const auto params = make_params(2, 3);
  const auto ft = roomy_ftree(params);
  const NonblockingAdaptiveRouter router(params);
  std::uint64_t checked = for_each_permutation(
      ft.leaf_count(), [&](const Permutation& pattern) {
        const auto schedule = router.route(pattern);
        ASSERT_FALSE(has_contention(ft, schedule.to_paths(ft)));
      });
  EXPECT_EQ(checked, 720U);
}

TEST(AdaptiveRouter, WorstCasePatternsAreContentionFree) {
  const auto params = make_params(4, 16);
  const auto ft = roomy_ftree(params);
  const NonblockingAdaptiveRouter router(params);
  for (const auto& pattern :
       {shift_permutation(ft.leaf_count(), 1),
        shift_permutation(ft.leaf_count(), ft.n()),
        reverse_permutation(ft.leaf_count()),
        bit_reversal_permutation(ft.leaf_count()),
        tornado_permutation(ft.n(), ft.r()),
        neighbor_funnel_permutation(ft.n(), ft.r())}) {
    const auto schedule = router.route(pattern);
    EXPECT_FALSE(has_contention(ft, schedule.to_paths(ft)));
  }
}

TEST(AdaptiveRouter, StaysWithinTheConfigurationBound) {
  // §V accounting: every configuration absorbs at least c+2 SD pairs per
  // source switch, so the greedy needs at most ceil(n/(c+2))
  // configurations — adaptive_simple_bound() switches.
  Xoshiro256 rng(99);
  for (const auto& [n, r] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {4, 16}, {5, 25}, {6, 36}, {8, 64}}) {
    const auto params = make_params(n, r);
    const NonblockingAdaptiveRouter router(params);
    std::uint32_t worst = 0;
    for (int trial = 0; trial < 20; ++trial) {
      const auto pattern = random_permutation(n * r, rng);
      worst = std::max(worst, router.route(pattern).top_switches_used);
    }
    EXPECT_LE(worst, adaptive_simple_bound(n, params.c))
        << "n=" << n << " r=" << r;
  }
}

TEST(AdaptiveRouter, BeatsDeterministicWhenCeilingsAlign) {
  // The paper's "< n^2 switches" headline, on shapes where n is a
  // multiple of c+2 so the ceiling in the bound does not bite.
  Xoshiro256 rng(7);
  for (const auto& [n, r] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {4, 16}, {8, 64}}) {
    const auto params = make_params(n, r);
    ASSERT_EQ(n % (params.c + 2), 0U);
    const NonblockingAdaptiveRouter router(params);
    std::uint32_t worst = 0;
    for (int trial = 0; trial < 20; ++trial) {
      const auto pattern = random_permutation(n * r, rng);
      worst = std::max(worst, router.route(pattern).top_switches_used);
    }
    EXPECT_LT(worst, n * n) << "n=" << n << " r=" << r;
  }
}

TEST(AdaptiveRouter, AssignmentsRespectPartitionKeyFormula) {
  const auto params = make_params(3, 9);
  const NonblockingAdaptiveRouter router(params);
  const auto pattern = shift_permutation(params.n * params.r, 5);
  const auto schedule = router.route(pattern);
  for (const auto& a : schedule.assignments) {
    if (a.direct) continue;
    EXPECT_EQ(a.key, partition_key(params, a.partition, a.sd.dst));
    EXPECT_EQ(a.top_switch,
              top_switch_index(params, a.configuration, a.partition, a.key));
    EXPECT_LE(a.partition, params.c);
    EXPECT_LT(a.configuration, schedule.configurations_used);
  }
}

TEST(AdaptiveRouter, SameSwitchPairsAreDirect) {
  const auto params = make_params(3, 9);
  const NonblockingAdaptiveRouter router(params);
  const Permutation pattern{{LeafId{0}, LeafId{1}}, {LeafId{1}, LeafId{2}},
                            {LeafId{2}, LeafId{0}}};
  const auto schedule = router.route(pattern);
  for (const auto& a : schedule.assignments) EXPECT_TRUE(a.direct);
  EXPECT_EQ(schedule.configurations_used, 0U);
  EXPECT_EQ(schedule.top_switches_used, 0U);
}

TEST(AdaptiveRouter, PartitionsNeverReusedWithinConfiguration) {
  // Fig. 4 marks a partition used after routing LSET on it; two LSETs of
  // one source switch must never share (configuration, partition).
  const auto params = make_params(2, 8);  // c = 3, few keys per partition
  const NonblockingAdaptiveRouter router(params);
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pattern = random_permutation(params.n * params.r, rng);
    const auto schedule = router.route(pattern);
    // Map (source switch, config, partition) -> used keys; keys must be
    // unique per slot (contention-free inside the partition).
    std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
             std::set<std::uint32_t>>
        used;
    for (const auto& a : schedule.assignments) {
      if (a.direct) continue;
      const auto sw = a.sd.src.value / params.n;
      auto& keys = used[{sw, a.configuration, a.partition}];
      EXPECT_TRUE(keys.insert(a.key).second)
          << "duplicate key in one partition slot";
    }
  }
}

TEST(AdaptiveRouter, ValidatesPermutationProperty) {
  const auto params = make_params(2, 4);
  const NonblockingAdaptiveRouter router(params);
  EXPECT_THROW(
      (void)router.route({{LeafId{0}, LeafId{4}}, {LeafId{0}, LeafId{6}}}),
      precondition_error);
  EXPECT_THROW(
      (void)router.route({{LeafId{0}, LeafId{4}}, {LeafId{1}, LeafId{4}}}),
      precondition_error);
  EXPECT_THROW((void)router.route({{LeafId{0}, LeafId{0}}}),
               precondition_error);
  EXPECT_THROW((void)router.route({{LeafId{0}, LeafId{99}}}),
               precondition_error);
}

TEST(AdaptiveRouter, EmptyPatternIsTrivial) {
  const auto params = make_params(2, 4);
  const NonblockingAdaptiveRouter router(params);
  const auto schedule = router.route({});
  EXPECT_EQ(schedule.configurations_used, 0U);
  EXPECT_TRUE(schedule.assignments.empty());
}

TEST(AdaptiveRouter, ToPathsRejectsUndersizedTopology) {
  const auto params = make_params(2, 8);
  const NonblockingAdaptiveRouter router(params);
  const auto pattern = shift_permutation(params.n * params.r, 2);
  const auto schedule = router.route(pattern);
  ASSERT_GT(schedule.top_switches_used, 1U);
  const FoldedClos tiny(FtreeParams{params.n, 1, params.r});
  EXPECT_THROW((void)schedule.to_paths(tiny), precondition_error);
}

TEST(AdaptiveRouter, AdaptivityChangesRoutesAcrossPatterns) {
  // The same SD pair may take different paths in different patterns —
  // the definition of adaptive routing (§III).
  const auto params = make_params(3, 9);
  const NonblockingAdaptiveRouter router(params);
  const SDPair probe{LeafId{0}, LeafId{5}};  // dst (switch 1, p = 2)
  // Pattern A: probe alone — greedy lands it on partition 0 (key = p).
  const auto a = router.route({probe});
  // Pattern B: siblings whose destinations all share p = 2, so partition
  // 0 can absorb only one pair while partition 1's keys (s_0 - p) mod n
  // are all distinct — the greedy therefore routes the trio, probe
  // included, on partition 1.
  const auto b = router.route({{LeafId{1}, LeafId{8}},   // dst (2, 2)
                               {LeafId{2}, LeafId{11}},  // dst (3, 2)
                               probe});
  std::uint32_t top_a = 0;
  std::uint32_t top_b = 0;
  for (const auto& asg : a.assignments) {
    if (asg.sd == probe) top_a = asg.top_switch;
  }
  for (const auto& asg : b.assignments) {
    if (asg.sd == probe) top_b = asg.top_switch;
  }
  // Not guaranteed different for every instance, but for this concrete
  // one the greedy puts the probe in a different partition slot.
  EXPECT_NE(top_a, top_b);
}

class AdaptiveShapeTest
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(AdaptiveShapeTest, ScheduleIsCompleteAndContentionFree) {
  const auto [n, r] = GetParam();
  const auto params = make_params(n, r);
  const auto ft = roomy_ftree(params);
  const NonblockingAdaptiveRouter router(params);
  Xoshiro256 rng(n * 31 + r);
  const auto pattern = random_permutation(ft.leaf_count(), rng);
  const auto schedule = router.route(pattern);
  ASSERT_EQ(schedule.assignments.size(), pattern.size());
  EXPECT_FALSE(has_contention(ft, schedule.to_paths(ft)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AdaptiveShapeTest,
    ::testing::Values(std::pair{2U, 3U}, std::pair{2U, 16U},
                      std::pair{3U, 27U}, std::pair{4U, 20U},
                      std::pair{5U, 25U}, std::pair{6U, 40U},
                      std::pair{7U, 50U}));

}  // namespace
}  // namespace nbclos::adaptive
