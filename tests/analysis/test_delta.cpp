/// Property tests for the delta-evaluation invariant (analysis/delta.hpp):
/// after any sequence of target swaps, SwapDeltaState::collisions() must
/// equal a from-scratch evaluation of the current pattern.
#include "nbclos/analysis/delta.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

/// From-scratch reference: route the whole pattern into a fresh map.
std::uint64_t full_collisions(const FoldedClos& ft,
                              const SinglePathRouting& routing,
                              const std::vector<std::uint32_t>& target) {
  LinkLoadMap map(ft);
  map.add_paths(routing.route_all(permutation_from_targets(target)));
  return map.colliding_pairs();
}

std::vector<std::uint32_t> random_targets(std::uint32_t leafs,
                                          Xoshiro256& rng) {
  std::vector<std::uint32_t> target(leafs);
  std::iota(target.begin(), target.end(), 0U);
  shuffle(target.begin(), target.end(), rng);
  return target;
}

/// Thousands of random swaps; after every one, delta must equal full.
void check_delta_matches_full(const FoldedClos& ft,
                              const SinglePathRouting& routing,
                              std::uint64_t seed, std::uint32_t swaps) {
  Xoshiro256 rng(seed);
  const std::uint32_t leafs = ft.leaf_count();
  SwapDeltaState state(ft, routing);
  state.reset(random_targets(leafs, rng));
  ASSERT_EQ(state.collisions(), full_collisions(ft, routing, state.targets()));
  for (std::uint32_t step = 0; step < swaps; ++step) {
    const auto i = static_cast<std::uint32_t>(rng.below(leafs));
    auto j = static_cast<std::uint32_t>(rng.below(leafs));
    if (i == j) j = (j + 1) % leafs;
    state.apply_swap(i, j);
    ASSERT_EQ(state.collisions(),
              full_collisions(ft, routing, state.targets()))
        << "after swap " << step << " (" << i << ", " << j << ")";
  }
}

TEST(SwapDelta, MatchesFullEvaluationDModK) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const DModKRouting routing(ft);
  check_delta_matches_full(ft, routing, 101, 2000);
}

TEST(SwapDelta, MatchesFullEvaluationDModKWider) {
  const FoldedClos ft(FtreeParams{3, 4, 5});
  const DModKRouting routing(ft);
  check_delta_matches_full(ft, routing, 102, 1500);
}

TEST(SwapDelta, MatchesFullEvaluationYuanNonblocking) {
  // Nonblocking scheme: collisions should stay 0 on full permutations,
  // but the invariant must hold regardless.
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const YuanNonblockingRouting routing(ft);
  check_delta_matches_full(ft, routing, 103, 1500);
}

TEST(SwapDelta, MatchesFullEvaluationRandomFixed) {
  const FoldedClos ft(FtreeParams{2, 3, 4});
  const RandomFixedRouting routing(ft, 77);
  check_delta_matches_full(ft, routing, 104, 1500);
}

TEST(SwapDelta, MatchesFullEvaluationPaperScale) {
  // The bench topology: ftree(4+16, 8), 32 leaves.
  const FoldedClos ft(FtreeParams{4, 16, 8});
  const DModKRouting routing(ft);
  check_delta_matches_full(ft, routing, 105, 400);
}

TEST(SwapDelta, SwapIsSelfInverse) {
  const FoldedClos ft(FtreeParams{2, 2, 4});
  const DModKRouting routing(ft);
  Xoshiro256 rng(7);
  SwapDeltaState state(ft, routing);
  state.reset(random_targets(ft.leaf_count(), rng));
  const auto targets_before = state.targets();
  const auto collisions_before = state.collisions();
  state.apply_swap(1, 5);
  state.apply_swap(1, 5);
  EXPECT_EQ(state.targets(), targets_before);
  EXPECT_EQ(state.collisions(), collisions_before);
}

TEST(SwapDelta, PatternDropsFixedPoints) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const DModKRouting routing(ft);
  SwapDeltaState state(ft, routing);
  std::vector<std::uint32_t> identity(ft.leaf_count());
  std::iota(identity.begin(), identity.end(), 0U);
  state.reset(identity);
  EXPECT_TRUE(state.pattern().empty());
  EXPECT_EQ(state.collisions(), 0U);
  state.apply_swap(0, 1);  // only leafs 0 and 1 now cross
  EXPECT_EQ(state.pattern().size(), 2U);
}

TEST(SwapDelta, RejectsBadSwaps) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const DModKRouting routing(ft);
  SwapDeltaState state(ft, routing);
  std::vector<std::uint32_t> identity(ft.leaf_count());
  std::iota(identity.begin(), identity.end(), 0U);
  state.reset(identity);
  if (kDebugChecksEnabled) {
    EXPECT_THROW(state.apply_swap(0, 0), precondition_error);
    EXPECT_THROW(state.apply_swap(0, ft.leaf_count()), precondition_error);
  }
  EXPECT_THROW(state.reset({0, 1, 2}), precondition_error);
}

TEST(LinkLoadMapIncremental, RemovePathInvertsAddPath) {
  const FoldedClos ft(FtreeParams{3, 2, 6});
  const DModKRouting routing(ft);
  Xoshiro256 rng(9);
  LinkLoadMap map(ft);
  const auto paths =
      routing.route_all(random_permutation(ft.leaf_count(), rng));
  map.add_paths(paths);
  // Running sums agree with a freshly built map.
  LinkLoadMap fresh(ft);
  fresh.add_paths(paths);
  EXPECT_EQ(map.colliding_pairs(), fresh.colliding_pairs());
  EXPECT_EQ(map.contended_links(), fresh.contended_links());
  // Removing every path returns the map to empty.
  for (const auto& path : paths) map.remove_path(path);
  EXPECT_EQ(map.colliding_pairs(), 0U);
  EXPECT_EQ(map.contended_links(), 0U);
  EXPECT_EQ(map.max_load(), 0U);
  // Underflow is a precondition error (checked in Debug builds only).
  if (kDebugChecksEnabled) {
    EXPECT_THROW(map.remove_path(paths.front()), precondition_error);
  }
}

TEST(LinkLoadMapIncremental, RunningSumsMatchDirectRecount) {
  // Add and remove random subsets of paths; colliding_pairs (sum over
  // links of C(load, 2)) and contended_links (#links with load >= 2) must
  // always match a direct recount over link loads.
  const FoldedClos ft(FtreeParams{2, 2, 5});
  const DModKRouting routing(ft);
  Xoshiro256 rng(10);
  LinkLoadMap map(ft);
  std::vector<FtreePath> resident;
  for (int step = 0; step < 400; ++step) {
    if (resident.empty() || rng.below(2) == 0) {
      const auto src = static_cast<std::uint32_t>(rng.below(ft.leaf_count()));
      auto dst = static_cast<std::uint32_t>(rng.below(ft.leaf_count()));
      if (dst == src) dst = (dst + 1) % ft.leaf_count();
      resident.push_back(routing.route({LeafId{src}, LeafId{dst}}));
      map.add_path(resident.back());
    } else {
      const auto pick = rng.below(resident.size());
      map.remove_path(resident[pick]);
      resident[pick] = resident.back();
      resident.pop_back();
    }
    std::uint64_t pairs = 0;
    std::uint64_t contended = 0;
    for (std::uint32_t link = 0; link < ft.link_count(); ++link) {
      const std::uint64_t load = map.load(LinkId{link});
      pairs += load * (load - 1) / 2;
      if (load >= 2) ++contended;
    }
    ASSERT_EQ(map.colliding_pairs(), pairs) << "step " << step;
    ASSERT_EQ(map.contended_links(), contended) << "step " << step;
  }
}

}  // namespace
}  // namespace nbclos
