#include "nbclos/analysis/contention.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/multipath.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

TEST(LinkLoadMap, CountsPathsPerLink) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  LinkLoadMap map(ft);
  const SDPair a{LeafId{0}, LeafId{2}};
  const SDPair b{LeafId{1}, LeafId{3}};
  map.add_path(ft.cross_path(a, TopId{0}));
  map.add_path(ft.cross_path(b, TopId{0}));  // shares uplink 0->top0
  EXPECT_EQ(map.load(ft.up_link(BottomId{0}, TopId{0})), 2U);
  EXPECT_EQ(map.load(ft.up_link(BottomId{0}, TopId{1})), 0U);
  EXPECT_EQ(map.max_load(), 2U);
  EXPECT_EQ(map.contended_links(), 2U);  // shared uplink and downlink
  EXPECT_EQ(map.colliding_pairs(), 2U);
  EXPECT_FALSE(map.contention_free());
}

TEST(LinkLoadMap, DisjointPathsAreContentionFree) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  LinkLoadMap map(ft);
  map.add_path(ft.cross_path({LeafId{0}, LeafId{2}}, TopId{0}));
  map.add_path(ft.cross_path({LeafId{1}, LeafId{4}}, TopId{1}));
  EXPECT_TRUE(map.contention_free());
  EXPECT_EQ(map.colliding_pairs(), 0U);
  EXPECT_EQ(map.max_load(), 1U);
}

TEST(LinkLoadMap, SharedDownlinkDetected) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  // Different source switches, same destination switch, same top.
  std::vector<FtreePath> paths{
      ft.cross_path({LeafId{0}, LeafId{4}}, TopId{1}),
      ft.cross_path({LeafId{2}, LeafId{5}}, TopId{1}),
  };
  EXPECT_TRUE(has_contention(ft, paths));
  LinkLoadMap map(ft);
  map.add_paths(paths);
  EXPECT_EQ(map.load(ft.down_link(TopId{1}, BottomId{2})), 2U);
  EXPECT_EQ(map.contended_links(), 1U);  // only the downlink is shared
}

TEST(LinkLoadMap, DirectPathsOnlyTouchLeafLinks) {
  const FoldedClos ft(FtreeParams{3, 2, 2});
  LinkLoadMap map(ft);
  map.add_path(ft.direct_path({LeafId{0}, LeafId{1}}));
  EXPECT_EQ(map.load(ft.leaf_up_link(LeafId{0})), 1U);
  EXPECT_EQ(map.load(ft.leaf_down_link(LeafId{1})), 1U);
  for (std::uint32_t t = 0; t < ft.m(); ++t) {
    for (std::uint32_t b = 0; b < ft.r(); ++b) {
      EXPECT_EQ(map.load(ft.up_link(BottomId{b}, TopId{t})), 0U);
      EXPECT_EQ(map.load(ft.down_link(TopId{t}, BottomId{b})), 0U);
    }
  }
}

TEST(Lemma1Audit, PassesForTheoremThreeRouting) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const YuanNonblockingRouting routing(ft);
  EXPECT_TRUE(lemma1_audit(routing).empty());
}

TEST(Lemma1Audit, FlagsDModK) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const DModKRouting routing(ft);
  const auto violations = lemma1_audit(routing);
  EXPECT_FALSE(violations.empty());
  // Every reported link genuinely carries >= 2 sources and >= 2 dests.
  for (const auto& v : violations) {
    EXPECT_GE(v.distinct_sources, 2U);
    EXPECT_GE(v.distinct_destinations, 2U);
    // D-mod-K violations are on uplinks (downlinks converge on one dest
    // per top switch... but dswitch-aggregation means several dests share
    // a downlink too, so just check the link id is internal).
    const auto kind = ft.kind_of(v.link);
    EXPECT_TRUE(kind == LinkKind::kUp || kind == LinkKind::kDown);
  }
}

TEST(Lemma1Audit, FootprintVariantMatchesSinglePathOnWidthOne) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  MultipathObliviousRouting multipath(ft, 1, SpreadPolicy::kRoundRobin);
  const auto violations = lemma1_audit_footprints(
      ft, [&](SDPair sd) { return multipath.link_footprint(sd); });
  // Width-1 spread with base (s+d) mod m is neither source- nor
  // destination-keyed, so it violates Lemma 1 somewhere.
  EXPECT_FALSE(violations.empty());
}

TEST(Lemma1Audit, FullWidthMultipathViolatesEverywhere) {
  // Spreading every pair over all m uplinks makes every uplink carry
  // many sources and many destinations.
  const FoldedClos ft(FtreeParams{2, 4, 5});
  MultipathObliviousRouting multipath(ft, ft.m(), SpreadPolicy::kRandom);
  const auto violations = lemma1_audit_footprints(
      ft, [&](SDPair sd) { return multipath.link_footprint(sd); });
  EXPECT_EQ(violations.size(), 2U * ft.r() * ft.m());
}

/// Worst-possible single-path routing: every cross pair through top 0.
class AllThroughTopZeroRouting final : public SinglePathRouting {
 public:
  using SinglePathRouting::SinglePathRouting;
  [[nodiscard]] std::string name() const override { return "all-top-0"; }

 protected:
  [[nodiscard]] TopId top_for(SDPair) const override { return TopId{0}; }
};

TEST(Lemma1Audit, ReportsTrueDistinctCounts) {
  // Forcing every cross pair through top switch 0 gives exactly known
  // counts: uplink (v -> top 0) carries the n sources of switch v toward
  // the (r-1)n leaves of the other switches; downlink (top 0 -> w) is the
  // mirror image.  The audit must report those true distinct counts, not
  // just the >= 2 threshold that flags the violation.
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const AllThroughTopZeroRouting routing(ft);
  const auto violations = lemma1_audit(routing);
  // Every top-0 uplink and downlink violates; top 1 is never used.
  ASSERT_EQ(violations.size(), 2U * ft.r());
  const std::uint32_t n = ft.n();
  const std::uint32_t other_leafs = (ft.r() - 1) * n;
  for (const auto& v : violations) {
    const auto kind = ft.kind_of(v.link);
    if (kind == LinkKind::kUp) {
      EXPECT_EQ(v.distinct_sources, n) << "uplink " << v.link.value;
      EXPECT_EQ(v.distinct_destinations, other_leafs)
          << "uplink " << v.link.value;
    } else {
      ASSERT_EQ(kind, LinkKind::kDown);
      EXPECT_EQ(v.distinct_sources, other_leafs)
          << "downlink " << v.link.value;
      EXPECT_EQ(v.distinct_destinations, n) << "downlink " << v.link.value;
    }
  }
}

TEST(Lemma1Audit, FootprintVariantReportsTrueDistinctCounts) {
  // Same construction through the footprint API.
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const AllThroughTopZeroRouting routing(ft);
  const auto violations = lemma1_audit_footprints(ft, [&](SDPair sd) {
    const auto path = routing.route(sd);
    LinkId links[FoldedClos::kMaxPathLinks];
    const auto count = ft.links_into(path, links);
    return std::vector<LinkId>(links, links + count);
  });
  ASSERT_EQ(violations.size(), 2U * ft.r());
  for (const auto& v : violations) {
    EXPECT_GE(v.distinct_sources, 2U);
    EXPECT_GE(v.distinct_destinations, 2U);
    EXPECT_EQ(v.distinct_sources * v.distinct_destinations,
              ft.n() * (ft.r() - 1) * ft.n());
  }
}

TEST(Lemma1Audit, IffDirectionBlockingImpliesViolation) {
  // Lemma 1 is an iff: a routing with no violations is nonblocking, and
  // a violation yields a 2-pair permutation with contention.  Construct
  // that permutation from a violating link for D-mod-K.
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const DModKRouting routing(ft);
  ASSERT_FALSE(is_nonblocking_single_path(routing));
  // Find two SD pairs with distinct sources and dests sharing a link.
  bool found = false;
  for (std::uint32_t s1 = 0; s1 < ft.leaf_count() && !found; ++s1) {
    for (std::uint32_t d1 = 0; d1 < ft.leaf_count() && !found; ++d1) {
      if (s1 == d1) continue;
      for (std::uint32_t s2 = 0; s2 < ft.leaf_count() && !found; ++s2) {
        for (std::uint32_t d2 = 0; d2 < ft.leaf_count() && !found; ++d2) {
          if (s2 == d2 || s1 == s2 || d1 == d2) continue;
          const Permutation p{{LeafId{s1}, LeafId{d1}},
                              {LeafId{s2}, LeafId{d2}}};
          if (has_contention(ft, routing.route_all(p))) found = true;
        }
      }
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace nbclos
