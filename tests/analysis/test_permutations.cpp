#include "nbclos/analysis/permutations.hpp"

#include <gtest/gtest.h>

#include <set>

#include "nbclos/util/check.hpp"

namespace nbclos {
namespace {

TEST(Permutations, ValidateAcceptsLegalPatterns) {
  EXPECT_NO_THROW(validate_permutation({{LeafId{0}, LeafId{1}}}, 4));
  EXPECT_NO_THROW(validate_permutation({}, 4));
  EXPECT_NO_THROW(validate_permutation(
      {{LeafId{0}, LeafId{1}}, {LeafId{1}, LeafId{0}}}, 2));
}

TEST(Permutations, ValidateRejectsIllegalPatterns) {
  EXPECT_THROW(validate_permutation({{LeafId{0}, LeafId{0}}}, 4),
               precondition_error);
  EXPECT_THROW(validate_permutation({{LeafId{0}, LeafId{4}}}, 4),
               precondition_error);
  EXPECT_THROW(validate_permutation(
                   {{LeafId{0}, LeafId{1}}, {LeafId{0}, LeafId{2}}}, 4),
               precondition_error);
  EXPECT_THROW(validate_permutation(
                   {{LeafId{0}, LeafId{2}}, {LeafId{1}, LeafId{2}}}, 4),
               precondition_error);
}

TEST(Permutations, RandomPermutationIsValidAndNearFull) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto p = random_permutation(20, rng);
    validate_permutation(p, 20);
    EXPECT_GE(p.size(), 15U);  // at most a few fixed points dropped
  }
}

TEST(Permutations, RandomPermutationCoversAllTargetsOverTrials) {
  Xoshiro256 rng(2);
  std::set<std::uint32_t> seen_dsts;
  for (int trial = 0; trial < 50; ++trial) {
    for (const auto sd : random_permutation(6, rng)) {
      seen_dsts.insert(sd.dst.value);
    }
  }
  EXPECT_EQ(seen_dsts.size(), 6U);
}

TEST(Permutations, PartialPermutationRespectsCount) {
  Xoshiro256 rng(3);
  const auto p = random_partial_permutation(30, 10, rng);
  validate_permutation(p, 30);
  EXPECT_LE(p.size(), 10U);
  EXPECT_GE(p.size(), 8U);
  EXPECT_THROW((void)random_partial_permutation(5, 6, rng),
               precondition_error);
}

TEST(Permutations, ShiftHasFullSizeAndCorrectTargets) {
  const auto p = shift_permutation(8, 3);
  validate_permutation(p, 8);
  ASSERT_EQ(p.size(), 8U);
  for (const auto sd : p) {
    EXPECT_EQ(sd.dst.value, (sd.src.value + 3) % 8);
  }
  EXPECT_THROW((void)shift_permutation(8, 0), precondition_error);
  EXPECT_THROW((void)shift_permutation(8, 8), precondition_error);
}

TEST(Permutations, ReverseDropsMiddleFixedPoint) {
  const auto odd = reverse_permutation(7);
  validate_permutation(odd, 7);
  EXPECT_EQ(odd.size(), 6U);  // leaf 3 maps to itself
  const auto even = reverse_permutation(8);
  EXPECT_EQ(even.size(), 8U);
}

TEST(Permutations, BitReversalInvolution) {
  const auto p = bit_reversal_permutation(16);
  validate_permutation(p, 16);
  // Bit reversal is an involution: src->dst implies dst->src.
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (const auto sd : p) pairs.insert({sd.src.value, sd.dst.value});
  for (const auto& [s, d] : pairs) {
    EXPECT_TRUE(pairs.contains({d, s}));
  }
  EXPECT_THROW((void)bit_reversal_permutation(12), precondition_error);
}

TEST(Permutations, ButterflyFlipsOneBit) {
  const auto p = butterfly_permutation(8, 1);
  validate_permutation(p, 8);
  ASSERT_EQ(p.size(), 8U);
  for (const auto sd : p) {
    EXPECT_EQ(sd.src.value ^ sd.dst.value, 2U);
  }
  EXPECT_THROW((void)butterfly_permutation(8, 3), precondition_error);
}

TEST(Permutations, TornadoCrossesSwitches) {
  const auto p = tornado_permutation(3, 6);
  validate_permutation(p, 18);
  EXPECT_EQ(p.size(), 18U);
  for (const auto sd : p) {
    EXPECT_NE(sd.src.value / 3, sd.dst.value / 3);
    EXPECT_EQ(sd.dst.value / 3, (sd.src.value / 3 + 3) % 6);
  }
}

TEST(Permutations, TornadoDegeneratesGracefully) {
  // r = 2: half = 1, neighbor switch.
  const auto p = tornado_permutation(2, 2);
  validate_permutation(p, 4);
  EXPECT_EQ(p.size(), 4U);
}

TEST(Permutations, NeighborFunnelPairsWholeSwitches) {
  const auto p = neighbor_funnel_permutation(2, 4);
  validate_permutation(p, 8);
  EXPECT_EQ(p.size(), 8U);
  for (const auto sd : p) {
    EXPECT_EQ(sd.dst.value / 2, (sd.src.value / 2 + 1) % 4);
    EXPECT_EQ(sd.dst.value % 2, 1 - sd.src.value % 2);
  }
}

TEST(Permutations, ExhaustiveEnumerationCount) {
  std::uint64_t seen = 0;
  const auto visited = for_each_permutation(4, [&](const Permutation& p) {
    validate_permutation(p, 4);
    ++seen;
  });
  EXPECT_EQ(visited, 24U);
  EXPECT_EQ(seen, 24U);
  EXPECT_THROW(for_each_permutation(11, [](const Permutation&) {}),
               precondition_error);
}

TEST(Permutations, ExhaustiveEnumerationIncludesIdentityAsEmpty) {
  bool saw_empty = false;
  for_each_permutation(3, [&](const Permutation& p) {
    if (p.empty()) saw_empty = true;
  });
  EXPECT_TRUE(saw_empty);  // the identity drops all fixed points
}

}  // namespace
}  // namespace nbclos
