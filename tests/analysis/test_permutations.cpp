#include "nbclos/analysis/permutations.hpp"

#include <gtest/gtest.h>

#include <set>

#include "nbclos/util/check.hpp"

namespace nbclos {
namespace {

TEST(Permutations, ValidateAcceptsLegalPatterns) {
  EXPECT_NO_THROW(validate_permutation({{LeafId{0}, LeafId{1}}}, 4));
  EXPECT_NO_THROW(validate_permutation({}, 4));
  EXPECT_NO_THROW(validate_permutation(
      {{LeafId{0}, LeafId{1}}, {LeafId{1}, LeafId{0}}}, 2));
}

TEST(Permutations, ValidateRejectsIllegalPatterns) {
  EXPECT_THROW(validate_permutation({{LeafId{0}, LeafId{0}}}, 4),
               precondition_error);
  EXPECT_THROW(validate_permutation({{LeafId{0}, LeafId{4}}}, 4),
               precondition_error);
  EXPECT_THROW(validate_permutation(
                   {{LeafId{0}, LeafId{1}}, {LeafId{0}, LeafId{2}}}, 4),
               precondition_error);
  EXPECT_THROW(validate_permutation(
                   {{LeafId{0}, LeafId{2}}, {LeafId{1}, LeafId{2}}}, 4),
               precondition_error);
}

TEST(Permutations, RandomPermutationIsValidAndNearFull) {
  Xoshiro256 rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto p = random_permutation(20, rng);
    validate_permutation(p, 20);
    EXPECT_GE(p.size(), 15U);  // at most a few fixed points dropped
  }
}

TEST(Permutations, RandomPermutationCoversAllTargetsOverTrials) {
  Xoshiro256 rng(2);
  std::set<std::uint32_t> seen_dsts;
  for (int trial = 0; trial < 50; ++trial) {
    for (const auto sd : random_permutation(6, rng)) {
      seen_dsts.insert(sd.dst.value);
    }
  }
  EXPECT_EQ(seen_dsts.size(), 6U);
}

TEST(Permutations, PartialPermutationRespectsCount) {
  Xoshiro256 rng(3);
  const auto p = random_partial_permutation(30, 10, rng);
  validate_permutation(p, 30);
  EXPECT_LE(p.size(), 10U);
  EXPECT_GE(p.size(), 8U);
  EXPECT_THROW((void)random_partial_permutation(5, 6, rng),
               precondition_error);
}

TEST(Permutations, ShiftHasFullSizeAndCorrectTargets) {
  const auto p = shift_permutation(8, 3);
  validate_permutation(p, 8);
  ASSERT_EQ(p.size(), 8U);
  for (const auto sd : p) {
    EXPECT_EQ(sd.dst.value, (sd.src.value + 3) % 8);
  }
  EXPECT_THROW((void)shift_permutation(8, 0), precondition_error);
  EXPECT_THROW((void)shift_permutation(8, 8), precondition_error);
}

TEST(Permutations, ReverseDropsMiddleFixedPoint) {
  const auto odd = reverse_permutation(7);
  validate_permutation(odd, 7);
  EXPECT_EQ(odd.size(), 6U);  // leaf 3 maps to itself
  const auto even = reverse_permutation(8);
  EXPECT_EQ(even.size(), 8U);
}

TEST(Permutations, BitReversalInvolution) {
  const auto p = bit_reversal_permutation(16);
  validate_permutation(p, 16);
  // Bit reversal is an involution: src->dst implies dst->src.
  std::set<std::pair<std::uint32_t, std::uint32_t>> pairs;
  for (const auto sd : p) pairs.insert({sd.src.value, sd.dst.value});
  for (const auto& [s, d] : pairs) {
    EXPECT_TRUE(pairs.contains({d, s}));
  }
  EXPECT_THROW((void)bit_reversal_permutation(12), precondition_error);
}

TEST(Permutations, ButterflyFlipsOneBit) {
  const auto p = butterfly_permutation(8, 1);
  validate_permutation(p, 8);
  ASSERT_EQ(p.size(), 8U);
  for (const auto sd : p) {
    EXPECT_EQ(sd.src.value ^ sd.dst.value, 2U);
  }
  EXPECT_THROW((void)butterfly_permutation(8, 3), precondition_error);
}

TEST(Permutations, TornadoCrossesSwitches) {
  const auto p = tornado_permutation(3, 6);
  validate_permutation(p, 18);
  EXPECT_EQ(p.size(), 18U);
  for (const auto sd : p) {
    EXPECT_NE(sd.src.value / 3, sd.dst.value / 3);
    EXPECT_EQ(sd.dst.value / 3, (sd.src.value / 3 + 3) % 6);
  }
}

TEST(Permutations, TornadoDegeneratesGracefully) {
  // r = 2: half = 1, neighbor switch.
  const auto p = tornado_permutation(2, 2);
  validate_permutation(p, 4);
  EXPECT_EQ(p.size(), 4U);
}

TEST(Permutations, NeighborFunnelPairsWholeSwitches) {
  const auto p = neighbor_funnel_permutation(2, 4);
  validate_permutation(p, 8);
  EXPECT_EQ(p.size(), 8U);
  for (const auto sd : p) {
    EXPECT_EQ(sd.dst.value / 2, (sd.src.value / 2 + 1) % 4);
    EXPECT_EQ(sd.dst.value % 2, 1 - sd.src.value % 2);
  }
}

TEST(Permutations, ExhaustiveEnumerationCount) {
  std::uint64_t seen = 0;
  const auto visited = for_each_permutation(4, [&](const Permutation& p) {
    validate_permutation(p, 4);
    ++seen;
  });
  EXPECT_EQ(visited, 24U);
  EXPECT_EQ(seen, 24U);
  EXPECT_THROW(for_each_permutation(11, [](const Permutation&) {}),
               precondition_error);
}

TEST(Permutations, FactorialValues) {
  EXPECT_EQ(factorial(0), 1U);
  EXPECT_EQ(factorial(1), 1U);
  EXPECT_EQ(factorial(5), 120U);
  EXPECT_EQ(factorial(10), 3628800U);
  EXPECT_EQ(factorial(20), 2432902008176640000ULL);
  EXPECT_THROW((void)factorial(21), precondition_error);
}

TEST(Permutations, UnrankRankRoundTrip) {
  for (const std::uint32_t leafs : {1U, 2U, 5U, 7U}) {
    for (std::uint64_t rank = 0; rank < factorial(leafs); ++rank) {
      const auto target = unrank_targets(leafs, rank);
      EXPECT_EQ(rank_of_targets(target), rank) << "leafs=" << leafs;
    }
  }
}

TEST(Permutations, UnrankMatchesLexicographicOrder) {
  // Rank order == std::next_permutation order over target vectors.
  std::vector<std::uint32_t> target{0, 1, 2, 3, 4};
  std::uint64_t rank = 0;
  do {
    EXPECT_EQ(unrank_targets(5, rank), target);
    ++rank;
  } while (std::next_permutation(target.begin(), target.end()));
  EXPECT_EQ(rank, 120U);
  EXPECT_THROW((void)unrank_targets(5, 120), precondition_error);
}

TEST(Permutations, RangeEnumerationCoversShardsExactly) {
  // Splitting [0, 6!) into uneven shards visits each permutation once, in
  // the same order as the full walk.
  std::vector<std::uint64_t> full_ranks;
  for_each_permutation_in_range(6, 0, factorial(6),
                                [&](const Permutation& p) {
                                  full_ranks.push_back(p.size());
                                  return true;
                                });
  ASSERT_EQ(full_ranks.size(), 720U);
  std::vector<std::uint64_t> sharded;
  for (const auto [begin, end] :
       std::vector<std::pair<std::uint64_t, std::uint64_t>>{
           {0, 1}, {1, 100}, {100, 477}, {477, 720}}) {
    const auto visited = for_each_permutation_in_range(
        6, begin, end, [&](const Permutation& p) {
          sharded.push_back(p.size());
          return true;
        });
    EXPECT_EQ(visited, end - begin);
  }
  EXPECT_EQ(sharded, full_ranks);
}

TEST(Permutations, RangeEnumerationStopsEarlyAndCountsInclusively) {
  std::uint64_t seen = 0;
  const auto visited = for_each_permutation_in_range(
      5, 10, 120, [&](const Permutation&) { return ++seen < 7; });
  EXPECT_EQ(seen, 7U);
  EXPECT_EQ(visited, 7U);  // includes the permutation that said stop
}

TEST(Permutations, RangeEnumerationValidatesArguments) {
  EXPECT_THROW(for_each_permutation_in_range(
                   5, 10, 121, [](const Permutation&) { return true; }),
               precondition_error);
  EXPECT_THROW(for_each_permutation_in_range(
                   5, 8, 7, [](const Permutation&) { return true; }),
               precondition_error);
}

TEST(Permutations, ExhaustiveEnumerationIncludesIdentityAsEmpty) {
  bool saw_empty = false;
  for_each_permutation(3, [&](const Permutation& p) {
    if (p.empty()) saw_empty = true;
  });
  EXPECT_TRUE(saw_empty);  // the identity drops all fixed points
}

}  // namespace
}  // namespace nbclos
