#include "nbclos/analysis/collectives.hpp"

#include <gtest/gtest.h>

#include <set>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

TEST(Collectives, AllToAllHasNMinusOnePhases) {
  const auto phases = all_to_all_phases(12);
  EXPECT_EQ(phases.size(), 11U);
  for (const auto& phase : phases) {
    validate_permutation(phase, 12);
    EXPECT_EQ(phase.size(), 12U);  // shifts have no fixed points
  }
}

TEST(Collectives, AllToAllCoversEveryOrderedPairOnce) {
  const std::uint32_t leafs = 8;
  std::set<std::pair<std::uint32_t, std::uint32_t>> covered;
  for (const auto& phase : all_to_all_phases(leafs)) {
    for (const auto sd : phase) {
      EXPECT_TRUE(covered.insert({sd.src.value, sd.dst.value}).second)
          << "pair delivered twice";
    }
  }
  EXPECT_EQ(covered.size(), std::size_t{leafs} * (leafs - 1));
}

TEST(Collectives, EveryPhaseIsContentionFreeOnTheoremThreeFabric) {
  // The headline application: all-to-all at full bandwidth, phase by
  // phase, with zero contention — crossbar behaviour from small switches.
  const FoldedClos ft(FtreeParams{3, 9, 8});
  const YuanNonblockingRouting routing(ft);
  for (const auto& phase : all_to_all_phases(ft.leaf_count())) {
    EXPECT_FALSE(has_contention(ft, routing.route_all(phase)));
  }
}

TEST(Collectives, RingExchangePhases) {
  const auto phases = ring_exchange_phases(10);
  ASSERT_EQ(phases.size(), 2U);
  for (const auto sd : phases[0]) {
    EXPECT_EQ(sd.dst.value, (sd.src.value + 1) % 10);
  }
  for (const auto sd : phases[1]) {
    EXPECT_EQ(sd.dst.value, (sd.src.value + 9) % 10);
  }
}

TEST(Collectives, RejectsDegenerateSizes) {
  EXPECT_THROW((void)all_to_all_phases(1), precondition_error);
  EXPECT_THROW((void)ring_exchange_phases(2), precondition_error);
}

}  // namespace
}  // namespace nbclos
