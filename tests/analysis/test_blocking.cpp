#include "nbclos/analysis/blocking.hpp"

#include <gtest/gtest.h>

#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

TEST(Blocking, NonblockingSchemeHasZeroProbability) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const YuanNonblockingRouting routing(ft);
  Xoshiro256 rng(21);
  const auto est = estimate_blocking(ft, as_pattern_router(routing), 200, rng);
  EXPECT_EQ(est.blocked, 0U);
  EXPECT_EQ(est.blocking_probability, 0.0);
  EXPECT_EQ(est.mean_colliding_pairs, 0.0);
  EXPECT_LE(est.mean_max_link_load, 1.0);
  EXPECT_EQ(est.trials, 200U);
}

TEST(Blocking, UndersizedNetworkBlocksAlmostAlways) {
  // m = 1: every cross pair shares the single top switch.
  const FoldedClos ft(FtreeParams{3, 1, 6});
  const DModKRouting routing(ft);
  Xoshiro256 rng(22);
  const auto est = estimate_blocking(ft, as_pattern_router(routing), 100, rng);
  EXPECT_GT(est.blocking_probability, 0.9);
  EXPECT_GT(est.mean_colliding_pairs, 1.0);
  EXPECT_GT(est.mean_max_link_load, 1.5);
}

TEST(Blocking, ProbabilityDecreasesWithMoreTopSwitches) {
  Xoshiro256 rng(23);
  double last = 1.1;
  for (const std::uint32_t m : {1U, 2U, 4U, 8U}) {
    const FoldedClos ft(FtreeParams{2, m, 5});
    const DModKRouting routing(ft);
    const auto est =
        estimate_blocking(ft, as_pattern_router(routing), 300, rng);
    EXPECT_LE(est.blocking_probability, last + 0.05)
        << "m=" << m;  // monotone modulo noise
    last = est.blocking_probability;
  }
}

TEST(Blocking, ConfidenceIntervalShrinksWithTrials) {
  const FoldedClos ft(FtreeParams{2, 2, 5});
  const DModKRouting routing(ft);
  Xoshiro256 rng(24);
  const auto small =
      estimate_blocking(ft, as_pattern_router(routing), 50, rng);
  const auto large =
      estimate_blocking(ft, as_pattern_router(routing), 2000, rng);
  // Zero-width intervals happen when p hits 0 or 1 exactly; this
  // instance blocks often but not always at 50 trials.
  if (small.blocking_probability > 0.0 && small.blocking_probability < 1.0 &&
      large.blocking_probability > 0.0 && large.blocking_probability < 1.0) {
    EXPECT_GT(small.ci95_half_width, large.ci95_half_width);
  }
}

TEST(Blocking, RejectsZeroTrials) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const DModKRouting routing(ft);
  Xoshiro256 rng(25);
  EXPECT_THROW(
      (void)estimate_blocking(ft, as_pattern_router(routing), 0, rng),
      precondition_error);
}

}  // namespace
}  // namespace nbclos
