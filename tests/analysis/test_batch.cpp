/// Golden bit-identity tests for the batched evaluation stack: the
/// BatchLoadKernel, the cached delta restarts, and the batched parallel
/// drivers must reproduce the live-routing engines exactly, at every
/// thread count.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "nbclos/analysis/batch.hpp"
#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/parallel.hpp"
#include "nbclos/analysis/verifier.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/util/thread_pool.hpp"

namespace nbclos {
namespace {

using analysis::BatchLoadKernel;

/// Lane-major random target batch: `lanes` independent full permutations.
std::vector<std::uint32_t> random_target_batch(std::uint32_t leafs,
                                               std::uint32_t lanes,
                                               Xoshiro256& rng) {
  std::vector<std::uint32_t> targets(std::size_t{lanes} * leafs);
  for (std::uint32_t lane = 0; lane < lanes; ++lane) {
    const auto base = targets.begin() + std::ptrdiff_t{lane} * leafs;
    std::iota(base, base + leafs, 0U);
    for (std::uint32_t i = leafs - 1; i > 0; --i) {
      const auto j = static_cast<std::uint32_t>(rng.below(i + 1));
      std::swap(base[i], base[j]);
    }
  }
  return targets;
}

/// From-scratch LinkLoadMap evaluation of one lane via live routing.
BatchLoadKernel::LaneStats reference_stats(const SinglePathRouting& routing,
                                           std::span<const std::uint32_t> lane) {
  LinkLoadMap map(routing.ftree());
  for (std::uint32_t s = 0; s < lane.size(); ++s) {
    if (lane[s] == s) continue;
    map.add_path(routing.route(SDPair{LeafId{s}, LeafId{lane[s]}}));
  }
  return {map.colliding_pairs(), map.contended_links(), map.max_load()};
}

TEST(BatchLoadKernel, MatchesLinkLoadMapLaneByLane) {
  const FoldedClos ft(FtreeParams{3, 4, 6});  // m < n^2: plenty of collisions
  const DModKRouting dmodk(ft);
  const auto cache = routing::RouteCache::materialize(dmodk);
  BatchLoadKernel kernel(cache);
  Xoshiro256 rng(11);
  // Back-to-back passes with varying lane counts exercise the
  // touched-slot clearing: stale loads from pass k would corrupt pass
  // k+1's statistics.
  for (const std::uint32_t lanes :
       {1U, BatchLoadKernel::kMaxBatch, 7U, BatchLoadKernel::kMaxBatch, 3U}) {
    const auto targets = random_target_batch(ft.leaf_count(), lanes, rng);
    const auto stats = kernel.score_targets(targets, lanes);
    ASSERT_EQ(stats.size(), lanes);
    for (std::uint32_t lane = 0; lane < lanes; ++lane) {
      const auto expect = reference_stats(
          dmodk, std::span<const std::uint32_t>(
                     targets.data() + std::size_t{lane} * ft.leaf_count(),
                     ft.leaf_count()));
      EXPECT_EQ(stats[lane].colliding_pairs, expect.colliding_pairs);
      EXPECT_EQ(stats[lane].contended_links, expect.contended_links);
      EXPECT_EQ(stats[lane].max_load, expect.max_load);
    }
  }
}

TEST(BatchLoadKernel, NonblockingRoutingScoresZeroEverywhere) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const YuanNonblockingRouting yuan(ft);
  const auto cache = routing::RouteCache::materialize(yuan);
  BatchLoadKernel kernel(cache);
  Xoshiro256 rng(3);
  const auto lanes = BatchLoadKernel::kMaxBatch;
  const auto targets = random_target_batch(ft.leaf_count(), lanes, rng);
  for (const auto& st : kernel.score_targets(targets, lanes)) {
    EXPECT_EQ(st.colliding_pairs, 0U);
    EXPECT_EQ(st.contended_links, 0U);
    EXPECT_LE(st.max_load, 1U);
  }
}

TEST(BatchLoadKernel, SkipsUnroutablePairs) {
  const FoldedClos ft(FtreeParams{2, 4, 3});
  const DModKRouting dmodk(ft);
  // Pairs out of leaf 0 are unroutable: their links must not load.
  const routing::RouteCache cache(
      ft, [&](SDPair sd, FtreePath& path) -> std::uint8_t {
        if (sd.src.value == 0) return routing::RouteCache::kUnroutable;
        dmodk.route_into(sd, path);
        return 0;
      });
  BatchLoadKernel kernel(cache);
  std::vector<std::uint32_t> targets(ft.leaf_count());
  std::iota(targets.begin(), targets.end(), 0U);
  std::rotate(targets.begin(), targets.begin() + 1, targets.end());
  const auto stats = kernel.score_targets(targets, 1);

  LinkLoadMap map(ft);
  for (std::uint32_t s = 1; s < ft.leaf_count(); ++s) {
    map.add_path(dmodk.route(SDPair{LeafId{s}, LeafId{targets[s]}}));
  }
  EXPECT_EQ(stats[0].colliding_pairs, map.colliding_pairs());
  EXPECT_EQ(stats[0].contended_links, map.contended_links());
  EXPECT_EQ(stats[0].max_load, map.max_load());
}

// --- cached delta restarts ----------------------------------------------

void expect_same_restart(const RestartResult& a, const RestartResult& b) {
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.pattern, b.pattern);
}

TEST(CachedRestart, MatchesFullAndDeltaEvaluationTrajectories) {
  const FoldedClos ft(FtreeParams{3, 4, 5});
  const DModKRouting dmodk(ft);
  const auto cache = routing::RouteCache::materialize(dmodk);
  const auto full_router = as_pattern_router(dmodk);
  for (const bool stop_on_positive : {false, true}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto full =
          adversarial_restart(ft, full_router, 300, seed, stop_on_positive);
      const auto delta =
          adversarial_restart(ft, dmodk, 300, seed, stop_on_positive);
      const auto cached =
          adversarial_restart(ft, cache, 300, seed, stop_on_positive);
      expect_same_restart(full, delta);
      expect_same_restart(full, cached);
    }
  }
}

TEST(CachedRestart, NonblockingRoutingNeverFindsCollisions) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const YuanNonblockingRouting yuan(ft);
  const auto cache = routing::RouteCache::materialize(yuan);
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto cached = adversarial_restart(ft, cache, 200, seed, true);
    const auto live = adversarial_restart(ft, yuan, 200, seed, true);
    EXPECT_EQ(cached.collisions, 0U);
    expect_same_restart(cached, live);
  }
}

// --- batched parallel drivers vs factory overloads ----------------------

void expect_same_verify(const VerifyResult& a, const VerifyResult& b) {
  EXPECT_EQ(a.nonblocking, b.nonblocking);
  EXPECT_EQ(a.permutations_checked, b.permutations_checked);
  EXPECT_EQ(a.counterexample.has_value(), b.counterexample.has_value());
  if (a.counterexample && b.counterexample) {
    EXPECT_EQ(*a.counterexample, *b.counterexample);
  }
  EXPECT_EQ(a.counterexample_collisions, b.counterexample_collisions);
}

PatternRouterFactory factory_for(const SinglePathRouting& routing) {
  return [&routing](std::uint64_t) { return as_pattern_router(routing); };
}

TEST(BatchedParallel, EstimateBlockingBitIdenticalToFactoryOverload) {
  const FoldedClos ft(FtreeParams{3, 4, 5});
  const DModKRouting dmodk(ft);
  ThreadPool baseline_pool(1);
  const auto expect = estimate_blocking_parallel(ft, factory_for(dmodk), 500,
                                                 99, baseline_pool, 8);
  for (const std::size_t threads : {1U, 2U, 4U}) {
    ThreadPool pool(threads);
    const auto got = estimate_blocking_parallel(ft, dmodk, 500, 99, pool, 8);
    EXPECT_EQ(got.trials, expect.trials);
    EXPECT_EQ(got.blocked, expect.blocked);
    EXPECT_EQ(got.blocking_probability, expect.blocking_probability);
    EXPECT_EQ(got.mean_colliding_pairs, expect.mean_colliding_pairs);
    EXPECT_EQ(got.mean_max_link_load, expect.mean_max_link_load);
    EXPECT_EQ(got.ci95_half_width, expect.ci95_half_width);
  }
}

TEST(BatchedParallel, VerifyRandomBitIdenticalToFactoryOverload) {
  const FoldedClos ft(FtreeParams{3, 4, 5});
  const DModKRouting dmodk(ft);
  ThreadPool baseline_pool(1);
  const auto expect = verify_random_parallel(ft, factory_for(dmodk), 400, 21,
                                             baseline_pool, 8);
  ASSERT_FALSE(expect.nonblocking);  // m < n^2 blocks under sampling
  for (const std::size_t threads : {1U, 2U, 4U}) {
    ThreadPool pool(threads);
    expect_same_verify(verify_random_parallel(ft, dmodk, 400, 21, pool, 8),
                       expect);
  }
}

TEST(BatchedParallel, VerifyRandomCertifiesNonblockingRouting) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const YuanNonblockingRouting yuan(ft);
  ThreadPool pool(2);
  const auto got = verify_random_parallel(ft, yuan, 300, 5, pool, 8);
  EXPECT_TRUE(got.nonblocking);
  EXPECT_EQ(got.permutations_checked, 300U);
  expect_same_verify(got, verify_random_parallel(ft, factory_for(yuan), 300, 5,
                                                 pool, 8));
}

TEST(BatchedParallel, AdversarialThreadCountInvariant) {
  const FoldedClos ft(FtreeParams{3, 4, 5});
  const DModKRouting dmodk(ft);
  const AdversarialOptions options{.restarts = 12, .steps_per_restart = 250};
  ThreadPool baseline_pool(1);
  const auto expect =
      verify_adversarial_parallel(ft, dmodk, options, 17, baseline_pool);
  ASSERT_FALSE(expect.nonblocking);
  for (const std::size_t threads : {2U, 4U}) {
    ThreadPool pool(threads);
    expect_same_verify(
        verify_adversarial_parallel(ft, dmodk, options, 17, pool), expect);
  }
  // And the serial delta engine agrees on the verdict.
  Xoshiro256 rng(17);
  EXPECT_FALSE(verify_adversarial(ft, dmodk, options, rng).nonblocking);
}

TEST(BatchedParallel, WorstCaseThreadCountInvariant) {
  const FoldedClos ft(FtreeParams{3, 4, 5});
  const DModKRouting dmodk(ft);
  const AdversarialOptions options{.restarts = 8, .steps_per_restart = 200};
  ThreadPool baseline_pool(1);
  const auto expect =
      worst_case_search_parallel(ft, dmodk, options, 23, baseline_pool);
  EXPECT_GT(expect.collisions, 0U);
  for (const std::size_t threads : {2U, 4U}) {
    ThreadPool pool(threads);
    const auto got = worst_case_search_parallel(ft, dmodk, options, 23, pool);
    EXPECT_EQ(got.collisions, expect.collisions);
    EXPECT_EQ(got.evaluations, expect.evaluations);
    EXPECT_EQ(got.permutation, expect.permutation);
  }
}

}  // namespace
}  // namespace nbclos
