#include "nbclos/analysis/parallel.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <set>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

PatternRouterFactory dmodk_factory(const FoldedClos& ft) {
  return [&ft](std::uint64_t) -> PatternRouter {
    // D-mod-K is stateless; a shared-const router per worker is fine.
    return [&ft](const Permutation& pattern) {
      const DModKRouting routing(ft);
      return routing.route_all(pattern);
    };
  };
}

TEST(ParallelAnalysis, MatchesSerialBlockedCountsDeterministically) {
  const FoldedClos ft(FtreeParams{2, 2, 5});
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  const auto a = estimate_blocking_parallel(ft, dmodk_factory(ft), 400, 99,
                                            pool2, 8);
  const auto b = estimate_blocking_parallel(ft, dmodk_factory(ft), 400, 99,
                                            pool4, 8);
  // Identical regardless of pool size: same chunk seeds, same merge order.
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_DOUBLE_EQ(a.mean_colliding_pairs, b.mean_colliding_pairs);
  EXPECT_DOUBLE_EQ(a.mean_max_link_load, b.mean_max_link_load);
  EXPECT_EQ(a.trials, 400U);
}

TEST(ParallelAnalysis, DifferentSeedsDiffer) {
  const FoldedClos ft(FtreeParams{2, 2, 5});
  ThreadPool pool(2);
  const auto a =
      estimate_blocking_parallel(ft, dmodk_factory(ft), 300, 1, pool, 8);
  const auto b =
      estimate_blocking_parallel(ft, dmodk_factory(ft), 300, 2, pool, 8);
  EXPECT_NE(a.mean_colliding_pairs, b.mean_colliding_pairs);
}

TEST(ParallelAnalysis, BlockingSchemeShowsHighProbability) {
  const FoldedClos ft(FtreeParams{3, 2, 6});
  ThreadPool pool(3);
  const auto est =
      estimate_blocking_parallel(ft, dmodk_factory(ft), 200, 7, pool);
  EXPECT_GT(est.blocking_probability, 0.9);
}

TEST(ParallelAnalysis, VerifyRandomParallelPassesNonblockingScheme) {
  const FoldedClos ft(FtreeParams{3, 9, 8});
  const YuanNonblockingRouting routing(ft);
  ThreadPool pool(4);
  const auto factory = [&routing](std::uint64_t) -> PatternRouter {
    return [&routing](const Permutation& pattern) {
      return routing.route_all(pattern);
    };
  };
  const auto result = verify_random_parallel(ft, factory, 200, 5, pool, 8);
  EXPECT_TRUE(result.nonblocking);
  EXPECT_EQ(result.permutations_checked, 200U);
}

TEST(ParallelAnalysis, VerifyRandomParallelFindsCounterexample) {
  const FoldedClos ft(FtreeParams{3, 2, 6});
  ThreadPool pool(4);
  const auto result =
      verify_random_parallel(ft, dmodk_factory(ft), 100, 5, pool, 4);
  EXPECT_FALSE(result.nonblocking);
  ASSERT_TRUE(result.counterexample.has_value());
  const DModKRouting routing(ft);
  LinkLoadMap map(ft);
  map.add_paths(routing.route_all(*result.counterexample));
  EXPECT_FALSE(map.contention_free());
}

TEST(ParallelAnalysis, CounterexampleIsDeterministicAcrossPoolSizes) {
  const FoldedClos ft(FtreeParams{3, 2, 6});
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const auto a =
      verify_random_parallel(ft, dmodk_factory(ft), 100, 5, pool1, 4);
  const auto b =
      verify_random_parallel(ft, dmodk_factory(ft), 100, 5, pool4, 4);
  ASSERT_TRUE(a.counterexample.has_value());
  ASSERT_TRUE(b.counterexample.has_value());
  EXPECT_EQ(*a.counterexample, *b.counterexample);
}

TEST(ParallelExhaustive, MatchesSerialOnNonblockingInstance) {
  const FoldedClos ft(FtreeParams{2, 4, 3});  // 6 leaves, 720 permutations
  const YuanNonblockingRouting routing(ft);
  const auto factory = [&routing](std::uint64_t) {
    return as_pattern_router(routing);
  };
  const auto serial = verify_exhaustive(ft, as_pattern_router(routing));
  ASSERT_TRUE(serial.nonblocking);
  EXPECT_EQ(serial.permutations_checked, 720U);
  for (const std::size_t threads : {1U, 2U, 8U}) {
    ThreadPool pool(threads);
    const auto sharded = verify_exhaustive_parallel(ft, factory, pool);
    EXPECT_TRUE(sharded.nonblocking) << threads << " threads";
    EXPECT_EQ(sharded.permutations_checked, 720U) << threads << " threads";
    EXPECT_FALSE(sharded.counterexample.has_value());
  }
}

TEST(ParallelExhaustive, LowestRankCounterexampleIsBitIdenticalToSerial) {
  // Broken router: d-mod-k on an undersized fabric blocks, and the
  // sharded sweep must stop at exactly the counterexample the serial
  // enumeration stops at — same pattern, same collision count, same
  // permutations_checked — at any thread count.
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const DModKRouting routing(ft);
  const auto factory = [&routing](std::uint64_t) {
    return as_pattern_router(routing);
  };
  const auto serial = verify_exhaustive(ft, as_pattern_router(routing));
  ASSERT_FALSE(serial.nonblocking);
  ASSERT_TRUE(serial.counterexample.has_value());
  for (const std::size_t threads : {1U, 2U, 8U}) {
    ThreadPool pool(threads);
    const auto sharded = verify_exhaustive_parallel(ft, factory, pool);
    ASSERT_FALSE(sharded.nonblocking) << threads << " threads";
    ASSERT_TRUE(sharded.counterexample.has_value());
    EXPECT_EQ(*sharded.counterexample, *serial.counterexample)
        << threads << " threads";
    EXPECT_EQ(sharded.counterexample_collisions,
              serial.counterexample_collisions);
    EXPECT_EQ(sharded.permutations_checked, serial.permutations_checked)
        << threads << " threads";
  }
}

TEST(ParallelExhaustive, ShardCountDoesNotChangeResult) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const DModKRouting routing(ft);
  const auto factory = [&routing](std::uint64_t) {
    return as_pattern_router(routing);
  };
  ThreadPool pool(4);
  const auto a = verify_exhaustive_parallel(ft, factory, pool, 3);
  const auto b = verify_exhaustive_parallel(ft, factory, pool, 64);
  ASSERT_TRUE(a.counterexample.has_value());
  ASSERT_TRUE(b.counterexample.has_value());
  EXPECT_EQ(*a.counterexample, *b.counterexample);
  EXPECT_EQ(a.permutations_checked, b.permutations_checked);
}

TEST(ParallelAdversarial, ThreadCountIndependentResults) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const DModKRouting routing(ft);
  const AdversarialOptions options{6, 400};
  std::optional<VerifyResult> reference;
  for (const std::size_t threads : {1U, 2U, 8U}) {
    ThreadPool pool(threads);
    const auto result =
        verify_adversarial_parallel(ft, routing, options, 42, pool);
    if (!reference) {
      reference = result;
      continue;
    }
    EXPECT_EQ(result.nonblocking, reference->nonblocking);
    EXPECT_EQ(result.permutations_checked, reference->permutations_checked)
        << threads << " threads";
    EXPECT_EQ(result.counterexample.has_value(),
              reference->counterexample.has_value());
    if (result.counterexample && reference->counterexample) {
      EXPECT_EQ(*result.counterexample, *reference->counterexample)
          << threads << " threads";
    }
  }
}

TEST(ParallelAdversarial, FindsRareBlockingAndVerifiesCounterexample) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const DModKRouting routing(ft);
  ThreadPool pool(4);
  const auto result = verify_adversarial_parallel(
      ft, routing, AdversarialOptions{10, 1000}, 7, pool);
  ASSERT_FALSE(result.nonblocking);
  ASSERT_TRUE(result.counterexample.has_value());
  LinkLoadMap map(ft);
  map.add_paths(routing.route_all(*result.counterexample));
  EXPECT_EQ(map.colliding_pairs(), result.counterexample_collisions);
}

TEST(ParallelAdversarial, StaysCleanOnNonblockingScheme) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const YuanNonblockingRouting routing(ft);
  ThreadPool pool(4);
  const auto result = verify_adversarial_parallel(
      ft, routing, AdversarialOptions{3, 200}, 11, pool);
  EXPECT_TRUE(result.nonblocking);
  EXPECT_GE(result.permutations_checked, 3U);
}

TEST(ParallelWorstCase, ThreadCountIndependentAndVerified) {
  const FoldedClos ft(FtreeParams{3, 2, 6});
  const DModKRouting routing(ft);
  const AdversarialOptions options{4, 300};
  ThreadPool pool1(1);
  ThreadPool pool8(8);
  const auto a = worst_case_search_parallel(ft, routing, options, 21, pool1);
  const auto b = worst_case_search_parallel(ft, routing, options, 21, pool8);
  EXPECT_EQ(a.collisions, b.collisions);
  EXPECT_EQ(a.permutation, b.permutation);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_GT(a.collisions, 0U);
  LinkLoadMap map(ft);
  map.add_paths(routing.route_all(a.permutation));
  EXPECT_EQ(map.colliding_pairs(), a.collisions);
}

TEST(ParallelAdversarial, RestartSeedsAreDistinct) {
  // SplitMix64 scrambling: consecutive restart indices and nearby master
  // seeds must not collide.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t master : {0ULL, 1ULL, 42ULL}) {
    for (std::uint32_t restart = 0; restart < 64; ++restart) {
      seeds.insert(adversarial_restart_seed(master, restart));
    }
  }
  EXPECT_EQ(seeds.size(), 3U * 64U);
}

TEST(ParallelAnalysis, RejectsZeroTrials) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  ThreadPool pool(2);
  EXPECT_THROW((void)estimate_blocking_parallel(ft, dmodk_factory(ft), 0, 1,
                                                pool),
               precondition_error);
}

}  // namespace
}  // namespace nbclos
