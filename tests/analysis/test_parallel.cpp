#include "nbclos/analysis/parallel.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

PatternRouterFactory dmodk_factory(const FoldedClos& ft) {
  return [&ft](std::uint64_t) -> PatternRouter {
    // D-mod-K is stateless; a shared-const router per worker is fine.
    return [&ft](const Permutation& pattern) {
      const DModKRouting routing(ft);
      return routing.route_all(pattern);
    };
  };
}

TEST(ParallelAnalysis, MatchesSerialBlockedCountsDeterministically) {
  const FoldedClos ft(FtreeParams{2, 2, 5});
  ThreadPool pool2(2);
  ThreadPool pool4(4);
  const auto a = estimate_blocking_parallel(ft, dmodk_factory(ft), 400, 99,
                                            pool2, 8);
  const auto b = estimate_blocking_parallel(ft, dmodk_factory(ft), 400, 99,
                                            pool4, 8);
  // Identical regardless of pool size: same chunk seeds, same merge order.
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_DOUBLE_EQ(a.mean_colliding_pairs, b.mean_colliding_pairs);
  EXPECT_DOUBLE_EQ(a.mean_max_link_load, b.mean_max_link_load);
  EXPECT_EQ(a.trials, 400U);
}

TEST(ParallelAnalysis, DifferentSeedsDiffer) {
  const FoldedClos ft(FtreeParams{2, 2, 5});
  ThreadPool pool(2);
  const auto a =
      estimate_blocking_parallel(ft, dmodk_factory(ft), 300, 1, pool, 8);
  const auto b =
      estimate_blocking_parallel(ft, dmodk_factory(ft), 300, 2, pool, 8);
  EXPECT_NE(a.mean_colliding_pairs, b.mean_colliding_pairs);
}

TEST(ParallelAnalysis, BlockingSchemeShowsHighProbability) {
  const FoldedClos ft(FtreeParams{3, 2, 6});
  ThreadPool pool(3);
  const auto est =
      estimate_blocking_parallel(ft, dmodk_factory(ft), 200, 7, pool);
  EXPECT_GT(est.blocking_probability, 0.9);
}

TEST(ParallelAnalysis, VerifyRandomParallelPassesNonblockingScheme) {
  const FoldedClos ft(FtreeParams{3, 9, 8});
  const YuanNonblockingRouting routing(ft);
  ThreadPool pool(4);
  const auto factory = [&routing](std::uint64_t) -> PatternRouter {
    return [&routing](const Permutation& pattern) {
      return routing.route_all(pattern);
    };
  };
  const auto result = verify_random_parallel(ft, factory, 200, 5, pool, 8);
  EXPECT_TRUE(result.nonblocking);
  EXPECT_EQ(result.permutations_checked, 200U);
}

TEST(ParallelAnalysis, VerifyRandomParallelFindsCounterexample) {
  const FoldedClos ft(FtreeParams{3, 2, 6});
  ThreadPool pool(4);
  const auto result =
      verify_random_parallel(ft, dmodk_factory(ft), 100, 5, pool, 4);
  EXPECT_FALSE(result.nonblocking);
  ASSERT_TRUE(result.counterexample.has_value());
  const DModKRouting routing(ft);
  LinkLoadMap map(ft);
  map.add_paths(routing.route_all(*result.counterexample));
  EXPECT_FALSE(map.contention_free());
}

TEST(ParallelAnalysis, CounterexampleIsDeterministicAcrossPoolSizes) {
  const FoldedClos ft(FtreeParams{3, 2, 6});
  ThreadPool pool1(1);
  ThreadPool pool4(4);
  const auto a =
      verify_random_parallel(ft, dmodk_factory(ft), 100, 5, pool1, 4);
  const auto b =
      verify_random_parallel(ft, dmodk_factory(ft), 100, 5, pool4, 4);
  ASSERT_TRUE(a.counterexample.has_value());
  ASSERT_TRUE(b.counterexample.has_value());
  EXPECT_EQ(*a.counterexample, *b.counterexample);
}

TEST(ParallelAnalysis, RejectsZeroTrials) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  ThreadPool pool(2);
  EXPECT_THROW((void)estimate_blocking_parallel(ft, dmodk_factory(ft), 0, 1,
                                                pool),
               precondition_error);
}

}  // namespace
}  // namespace nbclos
