#include "nbclos/analysis/network_audit.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

/// Route function over a build_network() ftree using a SinglePathRouting.
NetworkRouteFn ftree_route_fn(const FoldedClos& ft,
                              const SinglePathRouting& routing) {
  return [&ft, &routing](SDPair sd) {
    ChannelPath path;
    for (const auto link : ft.links_of(routing.route(sd))) {
      path.push_back(link.value);  // channel id == LinkId by construction
    }
    return path;
  };
}

TEST(ChannelLoad, CountsAndCollisions) {
  const auto net = build_crossbar(4);
  ChannelLoadMap map(net);
  map.add_path({0, 4 + 1});
  map.add_path({2, 4 + 1});  // shares the downlink to terminal 1
  EXPECT_EQ(map.load(0), 1U);
  EXPECT_EQ(map.load(5), 2U);
  EXPECT_EQ(map.contended_channels(), 1U);
  EXPECT_EQ(map.colliding_pairs(), 1U);
  EXPECT_FALSE(map.contention_free());
}

TEST(ChannelLoad, NetworkHasContentionHelper) {
  const auto net = build_crossbar(4);
  EXPECT_FALSE(network_has_contention(net, {{0, 5}, {1, 6}}));
  EXPECT_TRUE(network_has_contention(net, {{0, 5}, {1, 5}}));
}

TEST(NetworkAudit, AgreesWithFtreeAuditOnNonblockingRouting) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const auto net = build_network(ft);
  const YuanNonblockingRouting routing(ft);
  EXPECT_TRUE(network_lemma1_audit(net, ftree_route_fn(ft, routing)).empty());
}

TEST(NetworkAudit, AgreesWithFtreeAuditOnBlockingRouting) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const auto net = build_network(ft);
  const DModKRouting routing(ft);
  const auto generic = network_lemma1_audit(net, ftree_route_fn(ft, routing));
  EXPECT_FALSE(generic.empty());
  // Same violating links as the ftree-specific audit.
  const auto specific = lemma1_audit(routing);
  ASSERT_EQ(generic.size(), specific.size());
  for (std::size_t i = 0; i < generic.size(); ++i) {
    EXPECT_EQ(generic[i], specific[i].link.value);
  }
}

TEST(NetworkAudit, CrossbarIsAlwaysNonblocking) {
  const auto net = build_crossbar(6);
  const auto route = [](SDPair sd) {
    return ChannelPath{sd.src.value, 6 + sd.dst.value};
  };
  EXPECT_TRUE(network_lemma1_audit(net, route).empty());
}

TEST(ValidatePath, AcceptsChainedPath) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const auto net = build_network(ft);
  const SDPair sd{LeafId{0}, LeafId{4}};
  ChannelPath path;
  for (const auto link : ft.links_of(ft.cross_path(sd, TopId{1}))) {
    path.push_back(link.value);
  }
  EXPECT_NO_THROW(validate_channel_path(net, 0, 4, path));
}

TEST(ValidatePath, RejectsBrokenPaths) {
  const auto net = build_crossbar(4);
  EXPECT_THROW(validate_channel_path(net, 0, 1, {}), precondition_error);
  // Starts at wrong terminal.
  EXPECT_THROW(validate_channel_path(net, 1, 1, {0, 5}), precondition_error);
  // Ends at wrong terminal.
  EXPECT_THROW(validate_channel_path(net, 0, 2, {0, 5}), precondition_error);
  // Channels do not chain (two uplinks in a row).
  EXPECT_THROW(validate_channel_path(net, 0, 1, {0, 1}), precondition_error);
}

}  // namespace
}  // namespace nbclos
