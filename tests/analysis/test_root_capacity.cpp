#include "nbclos/analysis/root_capacity.hpp"

#include <gtest/gtest.h>

#include "nbclos/util/check.hpp"

namespace nbclos {
namespace {

TEST(RootCapacityBound, PiecewiseFormula) {
  // r >= 2n+1: r(r-1).
  EXPECT_EQ(root_capacity_bound(1, 3), 6U);
  EXPECT_EQ(root_capacity_bound(2, 5), 20U);
  EXPECT_EQ(root_capacity_bound(2, 8), 56U);
  // r <= 2n+1: 2nr.
  EXPECT_EQ(root_capacity_bound(2, 4), 16U);
  EXPECT_EQ(root_capacity_bound(3, 4), 24U);
  // At r = 2n+1 both formulas agree: r(r-1) = (2n+1)2n = 2nr.
  for (std::uint32_t n = 1; n <= 6; ++n) {
    const std::uint32_t r = 2 * n + 1;
    EXPECT_EQ(std::uint64_t{r} * (r - 1), std::uint64_t{2} * n * r);
    EXPECT_EQ(root_capacity_bound(n, r), std::uint64_t{2} * n * r);
  }
}

TEST(RootSetFeasible, AcceptsSingleSourcePerUplink) {
  // Witness: designated source/dest per switch.
  for (std::uint32_t n : {1U, 2U, 3U}) {
    for (std::uint32_t r : {2U, 3U, 5U}) {
      EXPECT_TRUE(root_set_feasible(n, r, root_capacity_witness(n, r)))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(RootSetFeasible, RejectsMixedLink) {
  // Two pairs from switch 0 with different sources and different dests:
  // the uplink carries neither one source nor one destination.
  const std::vector<SDPair> bad{{LeafId{0}, LeafId{4}},
                                {LeafId{1}, LeafId{7}}};
  EXPECT_FALSE(root_set_feasible(2, 4, bad));
  // Same two sources to one destination: fine (uplink single-dest).
  const std::vector<SDPair> ok{{LeafId{0}, LeafId{4}},
                               {LeafId{1}, LeafId{4}}};
  EXPECT_TRUE(root_set_feasible(2, 4, ok));
}

TEST(RootSetFeasible, RejectsSameSwitchPairs) {
  EXPECT_THROW(
      (void)root_set_feasible(2, 3, {{LeafId{0}, LeafId{1}}}),
      precondition_error);
}

TEST(RootCapacityWitness, SizeIsRTimesRMinusOne) {
  const auto witness = root_capacity_witness(3, 5);
  EXPECT_EQ(witness.size(), 20U);
}

TEST(RootCapacityExact, MatchesBruteForceOnEveryInstanceWithinCap) {
  // The mode-decomposition search must agree with raw subset search (and
  // respect the analytic bound) on every (n, r) the 60-pair brute-force
  // cap admits: r(r-1)n^2 <= 60.
  for (const auto& [n, r] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {1, 2}, {1, 3}, {1, 4}, {1, 5}, {1, 6}, {1, 7}, {1, 8},
           {2, 2}, {2, 3}, {2, 4},
           {3, 2}, {3, 3},
           {4, 2}, {5, 2}}) {
    const auto exact = root_capacity_exact(n, r);
    EXPECT_EQ(exact, root_capacity_bruteforce(n, r)) << "n=" << n
                                                     << " r=" << r;
    EXPECT_LE(exact, root_capacity_bound(n, r)) << "n=" << n << " r=" << r;
    // In the large-r regime the bound r(r-1) is tight.
    if (r >= 2 * n + 1) {
      EXPECT_EQ(exact, root_capacity_bound(n, r)) << "n=" << n << " r=" << r;
    }
  }
}

TEST(RootCapacityExact, NeverExceedsLemma2Bound) {
  for (std::uint32_t n = 1; n <= 4; ++n) {
    for (std::uint32_t r = 2; r <= 7; ++r) {
      EXPECT_LE(root_capacity_exact(n, r), root_capacity_bound(n, r))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(RootCapacityExact, AtLeastTheWitness) {
  for (std::uint32_t n = 1; n <= 4; ++n) {
    for (std::uint32_t r = 2; r <= 7; ++r) {
      EXPECT_GE(root_capacity_exact(n, r), std::uint64_t{r} * (r - 1))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(RootCapacityExact, LargeRRegimeIsExactlyRRm1) {
  // When r >= 2n+1 the Lemma 2 bound r(r-1) is tight (witness meets it).
  EXPECT_EQ(root_capacity_exact(1, 4), 12U);
  EXPECT_EQ(root_capacity_exact(2, 6), 30U);
  EXPECT_EQ(root_capacity_exact(3, 7), 42U);
}

TEST(RootCapacityExact, N1EveryPairFits) {
  // With one leaf per switch every uplink trivially has one source and
  // every downlink one destination: all r(r-1) pairs fit.
  for (std::uint32_t r = 2; r <= 6; ++r) {
    EXPECT_EQ(root_capacity_exact(1, r), std::uint64_t{r} * (r - 1));
  }
}

TEST(RootCapacityExact, LiftedCapReachesRTen) {
  // Branch-and-bound handles r = 9, 10 (the old full enumeration stopped
  // at r = 8); in this regime r >= 2n+1, so the bound is tight.
  EXPECT_EQ(root_capacity_exact(2, 9), 72U);
  EXPECT_EQ(root_capacity_exact(2, 10), 90U);
  EXPECT_EQ(root_capacity_exact(3, 10), 90U);
  // Boundary r = 2n+1 exactly: both formulas give 72.
  EXPECT_EQ(root_capacity_exact(4, 9), 72U);
}

TEST(RootCapacityExact, GuardsAgainstHugeSearch) {
  EXPECT_THROW((void)root_capacity_exact(2, 11), precondition_error);
  // n = 2, r = 5: r(r-1)n^2 = 80 > 60.
  EXPECT_THROW((void)root_capacity_bruteforce(2, 5), precondition_error);
}

}  // namespace
}  // namespace nbclos
