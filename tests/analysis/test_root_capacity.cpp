#include "nbclos/analysis/root_capacity.hpp"

#include <gtest/gtest.h>

#include "nbclos/util/check.hpp"

namespace nbclos {
namespace {

TEST(RootCapacityBound, PiecewiseFormula) {
  // r >= 2n+1: r(r-1).
  EXPECT_EQ(root_capacity_bound(1, 3), 6U);
  EXPECT_EQ(root_capacity_bound(2, 5), 20U);
  EXPECT_EQ(root_capacity_bound(2, 8), 56U);
  // r <= 2n+1: 2nr.
  EXPECT_EQ(root_capacity_bound(2, 4), 16U);
  EXPECT_EQ(root_capacity_bound(3, 4), 24U);
  // At r = 2n+1 both formulas agree: r(r-1) = (2n+1)2n = 2nr.
  for (std::uint32_t n = 1; n <= 6; ++n) {
    const std::uint32_t r = 2 * n + 1;
    EXPECT_EQ(std::uint64_t{r} * (r - 1), std::uint64_t{2} * n * r);
    EXPECT_EQ(root_capacity_bound(n, r), std::uint64_t{2} * n * r);
  }
}

TEST(RootSetFeasible, AcceptsSingleSourcePerUplink) {
  // Witness: designated source/dest per switch.
  for (std::uint32_t n : {1U, 2U, 3U}) {
    for (std::uint32_t r : {2U, 3U, 5U}) {
      EXPECT_TRUE(root_set_feasible(n, r, root_capacity_witness(n, r)))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(RootSetFeasible, RejectsMixedLink) {
  // Two pairs from switch 0 with different sources and different dests:
  // the uplink carries neither one source nor one destination.
  const std::vector<SDPair> bad{{LeafId{0}, LeafId{4}},
                                {LeafId{1}, LeafId{7}}};
  EXPECT_FALSE(root_set_feasible(2, 4, bad));
  // Same two sources to one destination: fine (uplink single-dest).
  const std::vector<SDPair> ok{{LeafId{0}, LeafId{4}},
                               {LeafId{1}, LeafId{4}}};
  EXPECT_TRUE(root_set_feasible(2, 4, ok));
}

TEST(RootSetFeasible, RejectsSameSwitchPairs) {
  EXPECT_THROW(
      (void)root_set_feasible(2, 3, {{LeafId{0}, LeafId{1}}}),
      precondition_error);
}

TEST(RootCapacityWitness, SizeIsRTimesRMinusOne) {
  const auto witness = root_capacity_witness(3, 5);
  EXPECT_EQ(witness.size(), 20U);
}

TEST(RootCapacityExact, MatchesBruteForceOnTinyInstances) {
  // The mode-decomposition search must agree with raw subset search.
  for (const auto& [n, r] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {1, 2}, {1, 3}, {1, 4}, {2, 2}, {2, 3}, {1, 5}}) {
    EXPECT_EQ(root_capacity_exact(n, r), root_capacity_bruteforce(n, r))
        << "n=" << n << " r=" << r;
  }
}

TEST(RootCapacityExact, NeverExceedsLemma2Bound) {
  for (std::uint32_t n = 1; n <= 4; ++n) {
    for (std::uint32_t r = 2; r <= 7; ++r) {
      EXPECT_LE(root_capacity_exact(n, r), root_capacity_bound(n, r))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(RootCapacityExact, AtLeastTheWitness) {
  for (std::uint32_t n = 1; n <= 4; ++n) {
    for (std::uint32_t r = 2; r <= 7; ++r) {
      EXPECT_GE(root_capacity_exact(n, r), std::uint64_t{r} * (r - 1))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(RootCapacityExact, LargeRRegimeIsExactlyRRm1) {
  // When r >= 2n+1 the Lemma 2 bound r(r-1) is tight (witness meets it).
  EXPECT_EQ(root_capacity_exact(1, 4), 12U);
  EXPECT_EQ(root_capacity_exact(2, 6), 30U);
  EXPECT_EQ(root_capacity_exact(3, 7), 42U);
}

TEST(RootCapacityExact, N1EveryPairFits) {
  // With one leaf per switch every uplink trivially has one source and
  // every downlink one destination: all r(r-1) pairs fit.
  for (std::uint32_t r = 2; r <= 6; ++r) {
    EXPECT_EQ(root_capacity_exact(1, r), std::uint64_t{r} * (r - 1));
  }
}

TEST(RootCapacityExact, GuardsAgainstHugeSearch) {
  EXPECT_THROW((void)root_capacity_exact(2, 9), precondition_error);
  EXPECT_THROW((void)root_capacity_bruteforce(2, 5), precondition_error);
}

}  // namespace
}  // namespace nbclos
