#include "nbclos/analysis/verifier.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/edge_coloring.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

TEST(Verifier, ExhaustiveProvesNonblockingInstance) {
  const FoldedClos ft(FtreeParams{2, 4, 3});
  const YuanNonblockingRouting routing(ft);
  const auto result = verify_exhaustive(ft, as_pattern_router(routing));
  EXPECT_TRUE(result.nonblocking);
  EXPECT_FALSE(result.counterexample.has_value());
  EXPECT_EQ(result.permutations_checked, 720U);
}

TEST(Verifier, ExhaustiveFindsCounterexampleForBlockingRouting) {
  const FoldedClos ft(FtreeParams{2, 2, 3});  // m < n^2: must block
  const DModKRouting routing(ft);
  const auto result = verify_exhaustive(ft, as_pattern_router(routing));
  EXPECT_FALSE(result.nonblocking);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_GT(result.counterexample_collisions, 0U);
  // The counterexample actually blocks.
  EXPECT_TRUE(has_contention(ft, routing.route_all(*result.counterexample)));
}

TEST(Verifier, RandomAcceptsNonblockingScheme) {
  const FoldedClos ft(FtreeParams{3, 9, 7});
  const YuanNonblockingRouting routing(ft);
  Xoshiro256 rng(10);
  const auto result = verify_random(ft, as_pattern_router(routing), 100, rng);
  EXPECT_TRUE(result.nonblocking);
  EXPECT_EQ(result.permutations_checked, 100U);
}

TEST(Verifier, RandomCatchesHeavilyBlockingScheme) {
  const FoldedClos ft(FtreeParams{3, 2, 6});
  const DModKRouting routing(ft);
  Xoshiro256 rng(11);
  const auto result = verify_random(ft, as_pattern_router(routing), 100, rng);
  EXPECT_FALSE(result.nonblocking);
  ASSERT_TRUE(result.counterexample.has_value());
  validate_permutation(*result.counterexample, ft.leaf_count());
}

TEST(Verifier, AdversarialBeatsRandomOnRareBlocking) {
  // ftree(2+4, 4), d-mod-k: blocking exists (Lemma 1 fails) but is rare
  // under uniform sampling on this small instance; the hill climber must
  // find it within a modest budget.
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const DModKRouting routing(ft);
  ASSERT_FALSE(is_nonblocking_single_path(routing));
  Xoshiro256 rng(12);
  const auto result = verify_adversarial(
      ft, as_pattern_router(routing), AdversarialOptions{10, 1000}, rng);
  EXPECT_FALSE(result.nonblocking);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_TRUE(has_contention(ft, routing.route_all(*result.counterexample)));
}

TEST(Verifier, AdversarialStaysCleanOnNonblockingScheme) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const YuanNonblockingRouting routing(ft);
  Xoshiro256 rng(13);
  const auto result = verify_adversarial(
      ft, as_pattern_router(routing), AdversarialOptions{3, 200}, rng);
  EXPECT_TRUE(result.nonblocking);
}

TEST(Verifier, WorksWithPatternLevelRouters) {
  // The PatternRouter abstraction also fits the centralized scheme,
  // which has no per-SD fixed path.
  const FoldedClos ft(FtreeParams{2, 2, 4});  // m = n: rearrangeable
  const CentralizedRearrangeableRouter router(ft);
  const auto route_fn = [&router](const Permutation& p) {
    return router.route(p);
  };
  const auto result = verify_exhaustive(ft, route_fn);
  EXPECT_TRUE(result.nonblocking);
  EXPECT_EQ(result.permutations_checked, 40320U);  // 8!
}

TEST(Verifier, WorstCaseSearchEscalatesCollisions) {
  // The maximizer should find patterns substantially worse than a random
  // draw for an undersized network.
  const FoldedClos ft(FtreeParams{3, 2, 6});
  const DModKRouting routing(ft);
  Xoshiro256 rng(33);
  // Baseline: average collisions of random permutations.
  double random_mean = 0.0;
  for (int i = 0; i < 30; ++i) {
    LinkLoadMap map(ft);
    map.add_paths(routing.route_all(random_permutation(ft.leaf_count(), rng)));
    random_mean += static_cast<double>(map.colliding_pairs());
  }
  random_mean /= 30.0;
  const auto worst = worst_case_search(ft, as_pattern_router(routing),
                                       AdversarialOptions{4, 800}, rng);
  EXPECT_GT(static_cast<double>(worst.collisions), random_mean);
  // The reported permutation really produces the reported collisions.
  LinkLoadMap map(ft);
  map.add_paths(routing.route_all(worst.permutation));
  EXPECT_EQ(map.colliding_pairs(), worst.collisions);
  validate_permutation(worst.permutation, ft.leaf_count());
}

TEST(Verifier, WorstCaseSearchFindsZeroForNonblockingScheme) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const YuanNonblockingRouting routing(ft);
  Xoshiro256 rng(34);
  const auto worst = worst_case_search(ft, as_pattern_router(routing),
                                       AdversarialOptions{3, 300}, rng);
  EXPECT_EQ(worst.collisions, 0U);
  EXPECT_GT(worst.evaluations, 0U);
}

TEST(Verifier, DeltaRestartMatchesFullRestartExactly) {
  // Same seed -> same start pattern and same swap proposals; since delta
  // and full evaluation must agree on every collision count, the entire
  // trajectory (accepts, reverts, final pattern) is identical.
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const DModKRouting routing(ft);
  for (const std::uint64_t seed : {3ULL, 17ULL, 99ULL}) {
    for (const bool stop_on_positive : {false, true}) {
      const auto full = adversarial_restart(ft, as_pattern_router(routing),
                                            300, seed, stop_on_positive);
      const auto delta =
          adversarial_restart(ft, routing, 300, seed, stop_on_positive);
      EXPECT_EQ(delta.collisions, full.collisions) << "seed " << seed;
      EXPECT_EQ(delta.evaluations, full.evaluations) << "seed " << seed;
      EXPECT_EQ(delta.pattern, full.pattern) << "seed " << seed;
    }
  }
}

TEST(Verifier, DeltaAdversarialOverloadMatchesPatternRouterOverload) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const DModKRouting routing(ft);
  const AdversarialOptions options{6, 500};
  Xoshiro256 rng_full(12);
  const auto full =
      verify_adversarial(ft, as_pattern_router(routing), options, rng_full);
  Xoshiro256 rng_delta(12);
  const auto delta = verify_adversarial(ft, routing, options, rng_delta);
  EXPECT_EQ(delta.nonblocking, full.nonblocking);
  EXPECT_EQ(delta.permutations_checked, full.permutations_checked);
  EXPECT_EQ(delta.counterexample.has_value(), full.counterexample.has_value());
  if (delta.counterexample && full.counterexample) {
    EXPECT_EQ(*delta.counterexample, *full.counterexample);
    EXPECT_EQ(delta.counterexample_collisions, full.counterexample_collisions);
  }
}

TEST(Verifier, DeltaWorstCaseOverloadMatchesPatternRouterOverload) {
  const FoldedClos ft(FtreeParams{3, 2, 6});
  const DModKRouting routing(ft);
  const AdversarialOptions options{4, 400};
  Xoshiro256 rng_full(33);
  const auto full =
      worst_case_search(ft, as_pattern_router(routing), options, rng_full);
  Xoshiro256 rng_delta(33);
  const auto delta = worst_case_search(ft, routing, options, rng_delta);
  EXPECT_EQ(delta.collisions, full.collisions);
  EXPECT_EQ(delta.evaluations, full.evaluations);
  EXPECT_EQ(delta.permutation, full.permutation);
  // And the reported pattern really produces the reported collisions.
  LinkLoadMap map(ft);
  map.add_paths(routing.route_all(delta.permutation));
  EXPECT_EQ(map.colliding_pairs(), delta.collisions);
}

TEST(Verifier, DeltaAdversarialFindsRareBlocking) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const DModKRouting routing(ft);
  ASSERT_FALSE(is_nonblocking_single_path(routing));
  Xoshiro256 rng(12);
  const auto result =
      verify_adversarial(ft, routing, AdversarialOptions{10, 1000}, rng);
  EXPECT_FALSE(result.nonblocking);
  ASSERT_TRUE(result.counterexample.has_value());
  EXPECT_TRUE(has_contention(ft, routing.route_all(*result.counterexample)));
}

TEST(Verifier, ExhaustiveStopsAtLowestRankCounterexample) {
  // permutations_checked is now the counterexample's lexicographic rank
  // + 1 — the serial sweep stops there, and the parallel sweep returns
  // the same number.
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const DModKRouting routing(ft);
  const auto result = verify_exhaustive(ft, as_pattern_router(routing));
  ASSERT_FALSE(result.nonblocking);
  EXPECT_LT(result.permutations_checked, 720U);
  EXPECT_GT(result.permutations_checked, 0U);
}

TEST(Verifier, CountsPermutationsInAdversarialMode) {
  const FoldedClos ft(FtreeParams{2, 4, 3});
  const YuanNonblockingRouting routing(ft);
  Xoshiro256 rng(14);
  const AdversarialOptions options{2, 50};
  const auto result =
      verify_adversarial(ft, as_pattern_router(routing), options, rng);
  // 2 restarts x (1 initial + <= 50 steps); i == j steps don't evaluate.
  EXPECT_GE(result.permutations_checked, 2U);
  EXPECT_LE(result.permutations_checked, 102U);
}

}  // namespace
}  // namespace nbclos
