#include "nbclos/circuit/clos_switch.hpp"

#include <gtest/gtest.h>

#include "nbclos/util/check.hpp"

using nbclos::precondition_error;

namespace nbclos::circuit {
namespace {

TEST(ClosCircuit, ConnectDisconnectBookkeeping) {
  ClosCircuitSwitch clos(2, 3, 3);
  EXPECT_EQ(clos.active_circuits(), 0U);
  const auto id = clos.connect(0, 4, FitStrategy::kFirstFit);
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(clos.input_port_busy(0));
  EXPECT_TRUE(clos.output_port_busy(4));
  EXPECT_FALSE(clos.input_port_busy(1));
  EXPECT_EQ(clos.active_circuits(), 1U);
  clos.validate();

  const auto circuit = clos.circuit(*id);
  ASSERT_TRUE(circuit.has_value());
  EXPECT_EQ(circuit->input_port, 0U);
  EXPECT_EQ(circuit->output_port, 4U);

  clos.disconnect(*id);
  EXPECT_FALSE(clos.input_port_busy(0));
  EXPECT_FALSE(clos.output_port_busy(4));
  EXPECT_EQ(clos.active_circuits(), 0U);
  clos.validate();
}

TEST(ClosCircuit, RejectsBusyPorts) {
  ClosCircuitSwitch clos(2, 3, 3);
  ASSERT_TRUE(clos.connect(0, 4, FitStrategy::kFirstFit).has_value());
  EXPECT_THROW((void)clos.connect(0, 5, FitStrategy::kFirstFit),
               precondition_error);
  EXPECT_THROW((void)clos.connect(1, 4, FitStrategy::kFirstFit),
               precondition_error);
}

TEST(ClosCircuit, FirstFitPicksLowestFreeMiddle) {
  ClosCircuitSwitch clos(2, 3, 3);
  const auto a = clos.connect(0, 2, FitStrategy::kFirstFit);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(clos.circuit(*a)->middle, 0U);
  // Same input switch: middle 0's first-stage link busy -> next middle.
  const auto b = clos.connect(1, 4, FitStrategy::kFirstFit);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(clos.circuit(*b)->middle, 1U);
}

TEST(ClosCircuit, BlocksWhenNoMiddleFree) {
  // Clos(2, 2, 3): m = 2 < 2n-1 = 3.  Occupy both middles from input
  // switch 0 and toward output switch 2, then a third call from/to those
  // switches cannot be placed.
  ClosCircuitSwitch clos(2, 2, 3);
  ASSERT_TRUE(clos.connect(0, 2, FitStrategy::kFirstFit).has_value());
  ASSERT_TRUE(clos.connect(1, 3, FitStrategy::kFirstFit).has_value());
  // Input switch 0 has no free first-stage links left... it also has no
  // free ports; use input switch 1 toward output switch 1 (ports 2,3 are
  // outputs of switch 1): occupy second stage instead.
  clos.validate();
  // Output switch 1 (ports 2..3) now has both second-stage links busy.
  const auto blocked = clos.connect(2, 0, FitStrategy::kFirstFit);
  EXPECT_TRUE(blocked.has_value());  // uses middle free for (in=1, out=0)
  clos.validate();
}

TEST(ClosCircuit, StrictlyNonblockingAtClosBound) {
  // m = 2n-1: no churn sequence may ever block, any strategy (Clos 1953).
  for (const auto strategy :
       {FitStrategy::kFirstFit, FitStrategy::kRandom, FitStrategy::kPacking,
        FitStrategy::kLeastUsed}) {
    ClosCircuitSwitch clos(3, 5, 4);
    Xoshiro256 rng(42);
    const auto result =
        run_churn(clos, strategy, 4000, 1.0, /*rearrange=*/false, rng);
    EXPECT_EQ(result.blocked, 0U) << to_string(strategy);
    EXPECT_GT(result.attempts, 100U);
    clos.validate();
  }
}

TEST(ClosCircuit, BlocksBelowClosBoundUnderChurn) {
  // m = n: rearrangeable but not strictly/wide-sense nonblocking; heavy
  // churn at full occupancy finds blocked calls quickly.
  ClosCircuitSwitch clos(3, 3, 4);
  Xoshiro256 rng(7);
  const auto result = run_churn(clos, FitStrategy::kFirstFit, 4000, 1.0,
                                /*rearrange=*/false, rng);
  EXPECT_GT(result.blocked, 0U);
  clos.validate();
}

TEST(ClosCircuit, RearrangementNeverBlocksAtBenesBound) {
  // m = n with rearrangement: Slepian–Duguid says every call placeable.
  ClosCircuitSwitch clos(3, 3, 4);
  Xoshiro256 rng(11);
  const auto result = run_churn(clos, FitStrategy::kFirstFit, 4000, 1.0,
                                /*rearrange=*/true, rng);
  EXPECT_EQ(result.blocked, 0U);
  EXPECT_GT(result.rearrangements_needed, 0U);  // it was actually exercised
  clos.validate();
}

TEST(ClosCircuit, RearrangementKeepsExistingCircuits) {
  ClosCircuitSwitch clos(2, 2, 3);
  // Fill until first-fit would block, then rearrange-connect.
  std::vector<std::uint32_t> ids;
  Xoshiro256 rng(3);
  for (int i = 0; i < 100 && clos.active_circuits() < 6; ++i) {
    const auto in = static_cast<std::uint32_t>(rng.below(6));
    const auto out = static_cast<std::uint32_t>(rng.below(6));
    if (clos.input_port_busy(in) || clos.output_port_busy(out)) continue;
    const auto before = clos.circuits();
    const auto id = clos.connect_with_rearrangement(in, out);
    ASSERT_TRUE(id.has_value());
    // All previously-active circuits still active, same endpoints.
    for (const auto& old : before) {
      const auto now = clos.circuit(old.id);
      ASSERT_TRUE(now.has_value());
      EXPECT_EQ(now->input_port, old.input_port);
      EXPECT_EQ(now->output_port, old.output_port);
    }
    clos.validate();
  }
  EXPECT_EQ(clos.active_circuits(), 6U);  // full permutation realized
}

TEST(ClosCircuit, PackingStrategyConcentratesLoad) {
  ClosCircuitSwitch clos(4, 7, 6);
  // Connections from distinct input/output switches: packing keeps
  // filling middle 0 as long as its links are free.
  const auto a = clos.connect(0, 4, FitStrategy::kPacking);   // sw 0 -> 1
  const auto b = clos.connect(8, 12, FitStrategy::kPacking);  // sw 2 -> 3
  const auto c = clos.connect(16, 20, FitStrategy::kPacking); // sw 4 -> 5
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(clos.circuit(*b)->middle, clos.circuit(*a)->middle);
  EXPECT_EQ(clos.circuit(*c)->middle, clos.circuit(*a)->middle);
}

TEST(ClosCircuit, LeastUsedStrategySpreadsLoad) {
  ClosCircuitSwitch clos(4, 7, 6);
  const auto a = clos.connect(0, 4, FitStrategy::kLeastUsed);
  const auto b = clos.connect(8, 12, FitStrategy::kLeastUsed);
  ASSERT_TRUE(a && b);
  EXPECT_NE(clos.circuit(*b)->middle, clos.circuit(*a)->middle);
}

TEST(ClosCircuit, AdversaryNeverBlocksAtStrictBound) {
  // m = 2n-1: no call sequence whatsoever can block (Clos 1953); the
  // adversary must come home empty-handed for every strategy.
  Xoshiro256 rng(60);
  for (const auto strategy :
       {FitStrategy::kFirstFit, FitStrategy::kRandom, FitStrategy::kPacking,
        FitStrategy::kLeastUsed}) {
    const auto result =
        adversary_search(3, 5, 4, strategy, 20, 400, rng);
    EXPECT_FALSE(result.blocked_found) << to_string(strategy);
    EXPECT_GT(result.calls_placed, 1000U);
  }
}

TEST(ClosCircuit, AdversaryBlocksSpreadingBelowStrictBound) {
  // m = 2n-2 with the least-used (spreading) strategy: the adversary
  // fragments the middles and finds a blocking state.
  Xoshiro256 rng(61);
  const auto result = adversary_search(3, 4, 4, FitStrategy::kLeastUsed,
                                       60, 600, rng);
  EXPECT_TRUE(result.blocked_found);
}

TEST(ClosCircuit, AdversaryBlocksEveryStrategyAtBenesBound) {
  // m = n is only rearrangeably nonblocking: without rearrangement even
  // packing can be driven into a blocking state.
  Xoshiro256 rng(62);
  for (const auto strategy :
       {FitStrategy::kFirstFit, FitStrategy::kPacking}) {
    const auto result =
        adversary_search(3, 3, 4, strategy, 60, 600, rng);
    EXPECT_TRUE(result.blocked_found) << to_string(strategy);
  }
}

TEST(ClosCircuit, ValidateCatchesNothingOnFreshSwitch) {
  ClosCircuitSwitch clos(2, 3, 3);
  EXPECT_NO_THROW(clos.validate());
}

TEST(ClosCircuit, DisconnectRejectsBadIds) {
  ClosCircuitSwitch clos(2, 3, 3);
  EXPECT_THROW(clos.disconnect(0), precondition_error);
  const auto id = clos.connect(0, 4, FitStrategy::kFirstFit);
  clos.disconnect(*id);
  EXPECT_THROW(clos.disconnect(*id), precondition_error);  // double free
}

TEST(ClosCircuit, ChurnRespectsOccupancyValidation) {
  ClosCircuitSwitch clos(2, 3, 3);
  Xoshiro256 rng(1);
  EXPECT_THROW((void)run_churn(clos, FitStrategy::kFirstFit, 10, 0.0, false,
                               rng),
               precondition_error);
  EXPECT_THROW((void)run_churn(clos, FitStrategy::kFirstFit, 10, 1.5, false,
                               rng),
               precondition_error);
}

}  // namespace
}  // namespace nbclos::circuit
