#include "nbclos/fault/degraded_view.hpp"

#include <gtest/gtest.h>

#include "nbclos/topology/fat_tree.hpp"

namespace nbclos::fault {
namespace {

FoldedClos small_ftree() { return FoldedClos(FtreeParams{2, 4, 4}); }

TEST(DegradedView, StartsPristine) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  const DegradedView view(net);
  EXPECT_TRUE(view.pristine());
  EXPECT_EQ(view.failed_channel_count(), 0U);
  EXPECT_EQ(view.failed_vertex_count(), 0U);
  for (std::uint32_t c = 0; c < net.channel_count(); ++c) {
    EXPECT_TRUE(view.channel_alive(c));
  }
  for (std::uint32_t v = 0; v < net.vertex_count(); ++v) {
    EXPECT_TRUE(view.vertex_alive(v));
  }
}

TEST(DegradedView, ChannelFailureAndRecovery) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  DegradedView view(net);
  const auto link = ft.up_link(BottomId{1}, TopId{2}).value;
  view.fail_channel(link);
  EXPECT_FALSE(view.channel_alive(link));
  EXPECT_TRUE(view.channel_failed(link));
  EXPECT_EQ(view.failed_channel_count(), 1U);
  // Failing an already-failed channel is idempotent.
  view.fail_channel(link);
  EXPECT_EQ(view.failed_channel_count(), 1U);
  view.recover_channel(link);
  EXPECT_TRUE(view.channel_alive(link));
  EXPECT_EQ(view.failed_channel_count(), 0U);
  EXPECT_TRUE(view.pristine());
}

TEST(DegradedView, VertexFailureKillsIncidentChannels) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  const FtreeNetworkMap map{ft.params()};
  DegradedView view(net);
  const TopId dead{1};
  view.fail_vertex(map.top(dead));
  EXPECT_FALSE(view.vertex_alive(map.top(dead)));
  for (std::uint32_t b = 0; b < ft.r(); ++b) {
    // Channels touching the dead top are unusable but not themselves
    // marked failed — recovery of the vertex restores them wholesale.
    EXPECT_FALSE(view.channel_alive(ft.up_link(BottomId{b}, dead).value));
    EXPECT_FALSE(view.channel_alive(ft.down_link(dead, BottomId{b}).value));
    EXPECT_FALSE(view.channel_failed(ft.up_link(BottomId{b}, dead).value));
  }
  // Other tops untouched.
  EXPECT_TRUE(view.channel_alive(ft.up_link(BottomId{0}, TopId{0}).value));
  view.recover_vertex(map.top(dead));
  EXPECT_TRUE(view.channel_alive(ft.up_link(BottomId{0}, dead).value));
  EXPECT_TRUE(view.pristine());
}

TEST(DegradedView, ApplyEventsAndReset) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  DegradedView view(net);
  view.apply({0, FaultAction::kFailChannel, 3});
  view.apply({0, FaultAction::kFailVertex, ft.leaf_count() + 1});
  EXPECT_EQ(view.failed_channel_count(), 1U);
  EXPECT_EQ(view.failed_vertex_count(), 1U);
  view.apply({0, FaultAction::kRecoverChannel, 3});
  EXPECT_EQ(view.failed_channel_count(), 0U);
  view.reset();
  EXPECT_TRUE(view.pristine());
  EXPECT_TRUE(view.vertex_alive(ft.leaf_count() + 1));
}

TEST(DegradedView, AliveOutChannelsFiltersDead) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  const FtreeNetworkMap map{ft.params()};
  DegradedView view(net);
  const auto bottom = map.bottom(BottomId{0});
  const auto all = net.out_channels(bottom).size();
  view.fail_channel(ft.up_link(BottomId{0}, TopId{0}).value);
  EXPECT_EQ(view.alive_out_channels(bottom).size(), all - 1);
}

TEST(DegradedView, RejectsOutOfRangeIds) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  DegradedView view(net);
  EXPECT_THROW(view.fail_channel(net.channel_count()), precondition_error);
  EXPECT_THROW(view.fail_vertex(net.vertex_count()), precondition_error);
  EXPECT_THROW((void)view.channel_alive(net.channel_count()),
               precondition_error);
}

}  // namespace
}  // namespace nbclos::fault
