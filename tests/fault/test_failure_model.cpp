#include "nbclos/fault/failure_model.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nbclos::fault {
namespace {

FoldedClos small_ftree() { return FoldedClos(FtreeParams{2, 4, 4}); }

TEST(FailureModel, SeededInjectionIsReproducible) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  FailureModel a(net);
  FailureModel b(net);
  a.inject_random_uplink_failures(ft, 5, 123);
  b.inject_random_uplink_failures(ft, 5, 123);
  EXPECT_EQ(a.events(), b.events());

  FailureModel c(net);
  c.inject_random_uplink_failures(ft, 5, 124);
  EXPECT_NE(a.events(), c.events());
}

TEST(FailureModel, RandomUplinkFailureSetsAreNested) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  FailureModel small(net);
  FailureModel large(net);
  small.inject_random_uplink_failures(ft, 3, 7);
  large.inject_random_uplink_failures(ft, 6, 7);
  // The first 3 pairs (6 events) of the larger plan equal the smaller plan.
  ASSERT_EQ(small.events().size(), 6U);
  ASSERT_EQ(large.events().size(), 12U);
  for (std::size_t i = 0; i < small.events().size(); ++i) {
    EXPECT_EQ(small.events()[i], large.events()[i]);
  }
}

TEST(FailureModel, InjectedPairsAreDistinct) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  FailureModel model(net);
  model.inject_random_uplink_failures(ft, ft.r() * ft.m(), 9);
  std::set<std::uint32_t> channels;
  for (const auto& event : model.events()) {
    EXPECT_TRUE(channels.insert(event.target).second)
        << "channel failed twice: " << event.target;
  }
  EXPECT_EQ(channels.size(), std::size_t{2} * ft.r() * ft.m());
}

TEST(FailureModel, UplinkPairFailsBothDirections) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  FailureModel model(net);
  model.fail_uplink_pair(ft, BottomId{2}, TopId{3});
  DegradedView view(net);
  model.apply_static(view);
  EXPECT_FALSE(view.channel_alive(ft.up_link(BottomId{2}, TopId{3}).value));
  EXPECT_FALSE(view.channel_alive(ft.down_link(TopId{3}, BottomId{2}).value));
  EXPECT_EQ(view.failed_channel_count(), 2U);
}

TEST(FailureModel, TopSwitchFailureTargetsTheRightVertex) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  const FtreeNetworkMap map{ft.params()};
  FailureModel model(net);
  model.fail_top_switch(ft, TopId{2});
  DegradedView view(net);
  model.apply_static(view);
  EXPECT_FALSE(view.vertex_alive(map.top(TopId{2})));
  EXPECT_TRUE(view.vertex_alive(map.top(TopId{1})));
  EXPECT_EQ(view.failed_vertex_count(), 1U);
}

TEST(FailureModel, ScheduleSortsByCycleStably) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  FailureModel model(net);
  model.fail_channel(5, 300);
  model.fail_channel(1, 100);
  model.recover_channel(1, 200);
  model.fail_channel(2, 100);
  const auto schedule = model.schedule();
  ASSERT_EQ(schedule.size(), 4U);
  EXPECT_EQ(schedule[0].cycle, 100U);
  EXPECT_EQ(schedule[0].target, 1U);  // insertion order kept within a cycle
  EXPECT_EQ(schedule[1].cycle, 100U);
  EXPECT_EQ(schedule[1].target, 2U);
  EXPECT_EQ(schedule[2].cycle, 200U);
  EXPECT_EQ(schedule[3].cycle, 300U);
}

TEST(FailureModel, ApplyUpToHonorsCycleAndOrder) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  FailureModel model(net);
  model.fail_channel(1, 100);
  model.recover_channel(1, 200);
  model.fail_channel(2, 500);
  DegradedView view(net);
  model.apply_up_to(view, 250);
  EXPECT_TRUE(view.channel_alive(1));   // failed then recovered
  EXPECT_TRUE(view.channel_alive(2));   // not yet due
  view.reset();
  model.apply_up_to(view, 150);
  EXPECT_FALSE(view.channel_alive(1));  // recovery not yet due
}

TEST(FailureModel, RejectsMismatchedFtree) {
  const auto ft = small_ftree();
  const auto net = build_network(ft);
  const FoldedClos other(FtreeParams{2, 4, 5});
  FailureModel model(net);
  EXPECT_THROW(model.fail_uplink_pair(other, BottomId{0}, TopId{0}),
               precondition_error);
  EXPECT_THROW(
      model.inject_random_uplink_failures(ft, ft.r() * ft.m() + 1, 1),
      precondition_error);
}

}  // namespace
}  // namespace nbclos::fault
