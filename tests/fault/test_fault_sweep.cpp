#include "nbclos/fault/sweep.hpp"

#include <gtest/gtest.h>

#include "nbclos/util/check.hpp"

namespace nbclos::analysis {
namespace {

FaultSweepConfig small_config() {
  FaultSweepConfig config;
  config.n = 2;
  config.r = 4;
  config.max_failures = 8;
  config.failure_step = 2;
  config.permutations_per_level = 16;
  config.seed = 77;
  config.chunks = 4;
  return config;
}

TEST(FaultSweep, PristineLevelNeverBlocks) {
  ThreadPool pool(2);
  const auto result = run_fault_sweep(small_config(), pool);
  ASSERT_FALSE(result.levels.empty());
  // Level 0 is Theorem 3 on an intact fabric: nonblocking by proof.
  EXPECT_EQ(result.levels.front().failures, 0U);
  EXPECT_EQ(result.levels.front().blocked_permutations, 0U);
  EXPECT_EQ(result.levels.front().unroutable_permutations, 0U);
  EXPECT_EQ(result.levels.front().worst_collisions, 0U);
  EXPECT_EQ(result.levels.front().fallback_pairs, 0U);
}

TEST(FaultSweep, LevelsCoverTheConfiguredRange) {
  ThreadPool pool(2);
  const auto config = small_config();
  const auto result = run_fault_sweep(config, pool);
  ASSERT_EQ(result.levels.size(), 5U);  // 0, 2, 4, 6, 8
  for (std::size_t i = 0; i < result.levels.size(); ++i) {
    EXPECT_EQ(result.levels[i].failures, i * config.failure_step);
  }
  EXPECT_EQ(result.permutations_per_level, config.permutations_per_level);
}

TEST(FaultSweep, ReproducibleAcrossRunsAndThreadCounts) {
  const auto config = small_config();
  ThreadPool one(1);
  ThreadPool four(4);
  const auto a = run_fault_sweep(config, one);
  const auto b = run_fault_sweep(config, four);
  ASSERT_EQ(a.levels.size(), b.levels.size());
  for (std::size_t i = 0; i < a.levels.size(); ++i) {
    EXPECT_EQ(a.levels[i].blocked_permutations,
              b.levels[i].blocked_permutations);
    EXPECT_EQ(a.levels[i].unroutable_permutations,
              b.levels[i].unroutable_permutations);
    EXPECT_EQ(a.levels[i].worst_collisions, b.levels[i].worst_collisions);
    EXPECT_EQ(a.levels[i].fallback_pairs, b.levels[i].fallback_pairs);
  }
  EXPECT_EQ(a.first_blocking_failures, b.first_blocking_failures);
}

TEST(FaultSweep, MarginMatchesFirstDirtyLevel) {
  ThreadPool pool(2);
  auto config = small_config();
  config.max_failures = 16;  // all 16 uplink pairs of ftree(2+4, 4)
  config.failure_step = 4;
  const auto result = run_fault_sweep(config, pool);
  std::optional<std::uint32_t> expected;
  for (const auto& level : result.levels) {
    if (level.blocked_permutations + level.unroutable_permutations > 0) {
      expected = level.failures;
      break;
    }
  }
  EXPECT_EQ(result.first_blocking_failures, expected);
  // With every uplink pair dead the fabric cannot route any cross pair.
  EXPECT_EQ(result.levels.back().unroutable_permutations,
            config.permutations_per_level);
}

TEST(FaultSweep, StopAtFirstBlockingTruncates) {
  ThreadPool pool(2);
  auto config = small_config();
  config.max_failures = 16;
  config.failure_step = 2;
  config.stop_at_first_blocking = true;
  const auto result = run_fault_sweep(config, pool);
  ASSERT_TRUE(result.first_blocking_failures.has_value());
  EXPECT_EQ(result.levels.back().failures, *result.first_blocking_failures);
}

TEST(FaultSweep, RejectsBadConfig) {
  ThreadPool pool(1);
  auto config = small_config();
  config.failure_step = 0;
  EXPECT_THROW((void)run_fault_sweep(config, pool), precondition_error);
  config = small_config();
  config.max_failures = 1000;  // > r * n^2 = 16
  EXPECT_THROW((void)run_fault_sweep(config, pool), precondition_error);
}

}  // namespace
}  // namespace nbclos::analysis
