#include <gtest/gtest.h>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/fault/failure_model.hpp"
#include "nbclos/fault/fault_oracle.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"

namespace nbclos::fault {
namespace {

struct Harness {
  FoldedClos ftree{FtreeParams{2, 4, 4}};
  Network net = build_network(ftree);
  Permutation pattern = shift_permutation(ftree.leaf_count(), 3);
  sim::TrafficPattern traffic =
      sim::TrafficPattern::permutation(pattern, ftree.leaf_count());
  YuanNonblockingRouting yuan{ftree};
  RoutingTable table = RoutingTable::materialize(yuan);
};

sim::SimConfig quick_config() {
  sim::SimConfig config;
  config.injection_rate = 0.5;
  config.warmup_cycles = 300;
  config.measure_cycles = 1500;
  config.seed = 17;
  return config;
}

TEST(SimFaults, PristineRunDropsNothing) {
  Harness s;
  DegradedView view(s.net);
  FaultTolerantOracle oracle(s.ftree, view, sim::UplinkPolicy::kTable,
                             &s.table);
  sim::PacketSim sim(s.net, oracle, s.traffic, quick_config(), &view);
  const auto result = sim.run();
  EXPECT_EQ(result.dropped_packets, 0U);
  EXPECT_EQ(oracle.reroute_count(), 0U);
  EXPECT_GT(result.delivered_packets, 0U);
}

TEST(SimFaults, MidMeasurementFailureDegradesButCompletes) {
  Harness s;
  const auto config = quick_config();

  DegradedView pristine_view(s.net);
  FaultTolerantOracle pristine_oracle(s.ftree, pristine_view,
                                      sim::UplinkPolicy::kTable, &s.table);
  sim::PacketSim pristine_sim(s.net, pristine_oracle, s.traffic, config,
                              &pristine_view);
  const auto pristine = pristine_sim.run();

  DegradedView view(s.net);
  FailureModel model(s.net);
  // A top switch dies in the middle of the measurement window.  Shift-by-3
  // traffic on ftree(2+4, 4) routes through tops (0,1) = 1 and (1,0) = 2
  // under Theorem 3, so kill top 1 to force actual reroutes.
  model.fail_top_switch(s.ftree, TopId{1},
                        config.warmup_cycles + config.measure_cycles / 2);
  FaultTolerantOracle oracle(s.ftree, view, sim::UplinkPolicy::kTable,
                             &s.table);
  sim::PacketSim sim(s.net, oracle, s.traffic, config, &view,
                     model.schedule());
  const auto degraded = sim.run();

  // The fabric kept running: traffic still flows after the event because
  // the oracle reroutes around the dead top switch.
  EXPECT_GT(degraded.delivered_packets, 0U);
  EXPECT_GT(oracle.reroute_count(), 0U);
  // Rerouted flows share uplinks and the purge drops packets, so degraded
  // throughput does not meaningfully exceed pristine (small slack for
  // window-edge timing differences).
  EXPECT_LE(degraded.accepted_throughput,
            pristine.accepted_throughput + 0.01);
  EXPECT_GT(degraded.dropped_packets, 0U);
  // The view reflects the applied event after the run.
  EXPECT_EQ(view.failed_vertex_count(), 1U);
}

TEST(SimFaults, RunsAreBitReproducible) {
  Harness s;
  const auto config = quick_config();
  const auto run_once = [&]() {
    DegradedView view(s.net);
    FailureModel model(s.net);
    model.inject_random_uplink_failures(s.ftree, 2, 5, 0);
    model.fail_top_switch(s.ftree, TopId{2}, 800);
    FaultTolerantOracle oracle(s.ftree, view, sim::UplinkPolicy::kTable,
                               &s.table);
    sim::PacketSim sim(s.net, oracle, s.traffic, config, &view,
                       model.schedule());
    return sim.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.accepted_throughput, b.accepted_throughput);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.injected_packets, b.injected_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
}

TEST(SimFaults, DeadLeafUplinkDropsAtInjection) {
  Harness s;
  DegradedView view(s.net);
  view.fail_channel(s.ftree.leaf_up_link(LeafId{0}).value);
  FaultTolerantOracle oracle(s.ftree, view, sim::UplinkPolicy::kTable,
                             &s.table);
  sim::PacketSim sim(s.net, oracle, s.traffic, quick_config(), &view);
  const auto result = sim.run();
  // Leaf 0's offered packets are all lost; everyone else still delivers.
  // (Packets still queued or in flight at run end are neither delivered
  // nor dropped, so the three counters need not sum exactly.)
  EXPECT_GT(result.dropped_packets, 0U);
  EXPECT_GT(result.delivered_packets, 0U);
  EXPECT_GE(result.injected_packets,
            result.delivered_packets + result.dropped_packets);
}

TEST(SimFaults, FaultEventsRequireDegradedView) {
  Harness s;
  sim::FtreeOracle oracle(s.ftree, sim::UplinkPolicy::kTable, &s.table);
  EXPECT_THROW(sim::PacketSim(s.net, oracle, s.traffic, quick_config(),
                              nullptr, {{0, FaultAction::kFailChannel, 0}}),
               precondition_error);
}

}  // namespace
}  // namespace nbclos::fault
