#include "nbclos/fault/fault_oracle.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/fault/degraded_routing.hpp"
#include "nbclos/fault/failure_model.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos::fault {
namespace {

// ftree(2+4, 4): n = 2, m = n^2 = 4 tops, r = 4, 8 leaves — the smallest
// fabric where Theorem 3 routing is exercised nontrivially.
FoldedClos nonblocking_ftree() { return FoldedClos(FtreeParams{2, 4, 4}); }

TEST(DegradedYuanRouting, MatchesYuanWhenPristine) {
  const auto ft = nonblocking_ftree();
  const auto net = build_network(ft);
  const DegradedView view(net);
  const DegradedYuanRouting degraded(ft, view);
  const YuanNonblockingRouting yuan(ft);
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      if (s == d) continue;
      const SDPair sd{LeafId{s}, LeafId{d}};
      EXPECT_EQ(degraded.route(sd), yuan.route(sd));
      if (ft.needs_top(sd)) {
        EXPECT_FALSE(degraded.uses_fallback(sd));
      }
    }
  }
}

TEST(DegradedYuanRouting, ReroutesAroundDeadTopSwitch) {
  const auto ft = nonblocking_ftree();
  const auto net = build_network(ft);
  DegradedView view(net);
  FailureModel model(net);
  // Kill top switch (i, j) = (0, 1), i.e. flat index 1.
  const TopId dead = YuanNonblockingRouting::top_index(ft.n(), 0, 1);
  model.fail_top_switch(ft, dead);
  model.apply_static(view);
  const DegradedYuanRouting routing(ft, view);

  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      if (s == d) continue;
      const SDPair sd{LeafId{s}, LeafId{d}};
      if (!ft.needs_top(sd)) continue;
      const auto path = routing.try_route(sd);
      ASSERT_TRUE(path.has_value());
      EXPECT_NE(path->top, dead);  // never routes through the dead top
      const bool was_primary =
          YuanNonblockingRouting::top_index(ft.n(), ft.local_of(sd.src),
                                            ft.local_of(sd.dst)) == dead;
      EXPECT_EQ(routing.uses_fallback(sd), was_primary);
    }
  }
}

TEST(DegradedYuanRouting, DegradedPathsAvoidAllDeadLinks) {
  const auto ft = nonblocking_ftree();
  const auto net = build_network(ft);
  DegradedView view(net);
  FailureModel model(net);
  model.inject_random_uplink_failures(ft, 4, 42);
  model.apply_static(view);
  const DegradedYuanRouting routing(ft, view);
  Xoshiro256 rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pattern = random_permutation(ft.leaf_count(), rng);
    for (const auto sd : pattern) {
      const auto path = routing.try_route(sd);
      ASSERT_TRUE(path.has_value());
      for (const auto link : ft.links_of(*path)) {
        EXPECT_TRUE(view.channel_alive(link.value));
      }
    }
  }
}

TEST(DegradedYuanRouting, ReportsUnroutablePairs) {
  const auto ft = nonblocking_ftree();
  const auto net = build_network(ft);
  DegradedView view(net);
  // Cut every uplink of bottom switch 0: its leaves cannot cross.
  for (std::uint32_t t = 0; t < ft.m(); ++t) {
    view.fail_channel(ft.up_link(BottomId{0}, TopId{t}).value);
  }
  const DegradedYuanRouting routing(ft, view);
  const SDPair cross{LeafId{0}, LeafId{ft.n() * 2}};  // switch 0 -> switch 2
  EXPECT_EQ(routing.try_route(cross), std::nullopt);
  EXPECT_THROW((void)routing.route(cross), precondition_error);
  // Same-switch delivery still works (no top switch involved).
  const SDPair local{LeafId{0}, LeafId{1}};
  EXPECT_TRUE(routing.try_route(local).has_value());
}

TEST(FaultTolerantOracle, AvoidsDeadUplinkAtBottomSwitch) {
  const auto ft = nonblocking_ftree();
  const auto net = build_network(ft);
  DegradedView view(net);
  const YuanNonblockingRouting yuan(ft);
  const auto table = RoutingTable::materialize(yuan);
  FaultTolerantOracle oracle(ft, view, sim::UplinkPolicy::kTable, &table);

  const std::vector<std::uint32_t> depths(net.channel_count(), 0);
  const sim::SimView sim_view(net, depths);
  const FtreeNetworkMap map{ft.params()};

  // Cross packet leaf 0 (switch 0, local 0) -> leaf 6 (switch 3, local 0):
  // Theorem 3 sends it through top (0, 0).
  sim::Packet packet;
  packet.src_terminal = 0;
  packet.dst_terminal = ft.n() * 3;
  const auto bottom = map.bottom(BottomId{0});
  const auto primary = ft.up_link(BottomId{0}, TopId{0}).value;
  EXPECT_EQ(oracle.next_channel(sim_view, bottom, packet), primary);
  EXPECT_EQ(oracle.reroute_count(), 0U);

  // Kill the primary uplink: the oracle must steer to a live top that can
  // still reach bottom switch 3.
  view.fail_channel(primary);
  const auto rerouted = oracle.next_channel(sim_view, bottom, packet);
  EXPECT_NE(rerouted, primary);
  EXPECT_TRUE(view.channel_alive(rerouted));
  const auto& chosen = net.channel(rerouted);
  EXPECT_EQ(chosen.src, bottom);
  EXPECT_TRUE(map.is_top(chosen.dst));
  EXPECT_TRUE(view.channel_alive(
      ft.down_link(map.top_of(chosen.dst), BottomId{3}).value));
  EXPECT_EQ(oracle.reroute_count(), 1U);
}

TEST(FaultTolerantOracle, ReturnsNoRouteWhenIsolated) {
  const auto ft = nonblocking_ftree();
  const auto net = build_network(ft);
  DegradedView view(net);
  for (std::uint32_t t = 0; t < ft.m(); ++t) {
    view.fail_channel(ft.up_link(BottomId{0}, TopId{t}).value);
  }
  FaultTolerantOracle oracle(ft, view, sim::UplinkPolicy::kLeastQueue);
  const std::vector<std::uint32_t> depths(net.channel_count(), 0);
  const sim::SimView sim_view(net, depths);
  const FtreeNetworkMap map{ft.params()};
  sim::Packet packet;
  packet.src_terminal = 0;
  packet.dst_terminal = ft.n() * 2;
  EXPECT_EQ(oracle.next_channel(sim_view, map.bottom(BottomId{0}), packet),
            kNoRoute);
  EXPECT_EQ(oracle.no_route_count(), 1U);
}

TEST(FaultTolerantOracle, PristineTablePolicyMatchesPlainOracle) {
  const auto ft = nonblocking_ftree();
  const auto net = build_network(ft);
  const DegradedView view(net);
  const YuanNonblockingRouting yuan(ft);
  const auto table = RoutingTable::materialize(yuan);
  FaultTolerantOracle fault_oracle(ft, view, sim::UplinkPolicy::kTable,
                                   &table);
  sim::FtreeOracle plain(ft, sim::UplinkPolicy::kTable, &table);
  const std::vector<std::uint32_t> depths(net.channel_count(), 0);
  const sim::SimView sim_view(net, depths);
  for (std::uint32_t v = 0; v < net.vertex_count(); ++v) {
    sim::Packet packet;
    packet.src_terminal = 0;
    packet.dst_terminal = ft.n() * 3 + 1;
    if (net.vertex(v).kind == VertexKind::kTerminal &&
        v != packet.src_terminal) {
      continue;
    }
    EXPECT_EQ(fault_oracle.next_channel(sim_view, v, packet),
              plain.next_channel(sim_view, v, packet))
        << "vertex " << v;
  }
}

}  // namespace
}  // namespace nbclos::fault
