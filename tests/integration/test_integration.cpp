/// Cross-module scenarios: each test strings several subsystems together
/// the way a user of the library would, checking the paper's story end
/// to end rather than module by module.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "nbclos/adaptive/router.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/analysis/collectives.hpp"
#include "nbclos/analysis/contention.hpp"
#include "nbclos/circuit/clos_switch.hpp"
#include "nbclos/core/fabric.hpp"
#include "nbclos/core/multilevel.hpp"
#include "nbclos/routing/edge_coloring.hpp"
#include "nbclos/routing/infiniband.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"
#include "nbclos/sim/path_oracle.hpp"
#include "nbclos/topology/dot.hpp"

namespace nbclos {
namespace {

TEST(Integration, CentralizedUsesFewerTopsThanDistributedNeedsButOnlyWithGlobalKnowledge) {
  // The paper's central trade-off in one test: on the same topology and
  // permutation, the centralized router realizes the pattern with tops
  // < n^2 (indeed <= n distinct tops), while the Theorem 3 scheme uses
  // its fixed source/destination-indexed spread — both contention-free.
  const FoldedClos ft(FtreeParams{3, 9, 7});
  const CentralizedRearrangeableRouter central(ft);
  const YuanNonblockingRouting yuan(ft);
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pattern = random_permutation(ft.leaf_count(), rng);
    const auto central_paths = central.route(pattern);
    const auto yuan_paths = yuan.route_all(pattern);
    EXPECT_FALSE(has_contention(ft, central_paths));
    EXPECT_FALSE(has_contention(ft, yuan_paths));
    std::set<std::uint32_t> central_tops;
    for (const auto& p : central_paths) {
      if (!p.direct) central_tops.insert(p.top.value);
    }
    EXPECT_LE(central_tops.size(), ft.n());  // Benes: m = n suffices
  }
}

TEST(Integration, AdaptiveScheduleDrivesTheSimulatorAtFullLoad) {
  // NONBLOCKINGADAPTIVE output -> routing table -> packet simulator:
  // the scheduled permutation sustains load 1.0.
  const adaptive::AdaptiveParams params{3, 9, 2};
  const FoldedClos ft(
      FtreeParams{3, params.worst_case_top_switches(), 9});
  const adaptive::NonblockingAdaptiveRouter router(params);
  const auto pattern = shift_permutation(ft.leaf_count(), 4);
  const auto schedule = router.route(pattern);
  const auto table =
      RoutingTable::from_paths(ft, schedule.to_paths(ft));

  const auto net = build_network(ft);
  sim::FtreeOracle oracle(ft, sim::UplinkPolicy::kTable, &table);
  const auto traffic =
      sim::TrafficPattern::permutation(pattern, ft.leaf_count());
  sim::SimConfig config;
  config.injection_rate = 1.0;
  config.warmup_cycles = 800;
  config.measure_cycles = 4000;
  sim::PacketSim simulator(net, oracle, traffic, config);
  const auto result = simulator.run();
  EXPECT_GT(result.accepted_throughput, 0.97);
  EXPECT_GT(result.min_flow_throughput, 0.9);
}

TEST(Integration, InfinibandForwardingSustainsAllToAllPhases) {
  // LFT-based forwarding (pure destination routing with multiple LIDs)
  // runs every all-to-all phase at full load in the simulator.
  const FoldedClos ft(FtreeParams{2, 4, 6});
  const InfinibandFabric ib(ft);
  const auto net = build_network(ft);
  sim::ExplicitPathOracle oracle(
      net, [&ib](SDPair sd) { return ib.forward_path(sd); }, "ib-lft");
  for (const auto& phase : ring_exchange_phases(ft.leaf_count())) {
    const auto traffic =
        sim::TrafficPattern::permutation(phase, ft.leaf_count());
    sim::SimConfig config;
    config.injection_rate = 1.0;
    config.warmup_cycles = 500;
    config.measure_cycles = 2500;
    sim::PacketSim simulator(net, oracle, traffic, config);
    EXPECT_GT(simulator.run().accepted_throughput, 0.97);
  }
}

TEST(Integration, CircuitAndPacketWorldsDisagreeAtMEqualsN) {
  // Same Clos(n, n, r) budget: with a centralized circuit controller and
  // rearrangement it is nonblocking; as a packet fabric with distributed
  // static routing it is provably blocking (Lemma 1 audit).
  constexpr std::uint32_t kN = 3;
  constexpr std::uint32_t kR = 6;
  circuit::ClosCircuitSwitch clos(kN, kN, kR);
  Xoshiro256 rng(4);
  const auto churn = circuit::run_churn(
      clos, circuit::FitStrategy::kFirstFit, 8000, 1.0, true, rng);
  EXPECT_EQ(churn.blocked, 0U);

  const FoldedClos packet_world(FtreeParams{kN, kN, kR});
  const DModKRouting dmodk(packet_world);
  EXPECT_FALSE(is_nonblocking_single_path(dmodk));
}

TEST(Integration, FabricFacadeEndToEnd) {
  // The one-object workflow of README's quickstart.
  const NonblockingFabric fabric(3);
  EXPECT_TRUE(fabric.certify());
  const auto verdict = fabric.verify_random(50, 7);
  EXPECT_TRUE(verdict.nonblocking);
  // All-to-all at full bandwidth, phase by phase.
  for (const auto& phase : all_to_all_phases(fabric.port_count())) {
    EXPECT_FALSE(
        has_contention(fabric.topology(), fabric.route_pattern(phase)));
  }
}

TEST(Integration, MultiLevelFabricExportsValidDot) {
  const MultiLevelFabric fabric(2, 3);
  std::ostringstream os;
  write_dot(os, fabric.network());
  const auto out = os.str();
  EXPECT_NE(out.find("graph"), std::string::npos);
  // All 52 switches and 24 terminals present.
  std::size_t boxes = 0;
  std::size_t circles = 0;
  for (std::size_t pos = out.find("shape=box"); pos != std::string::npos;
       pos = out.find("shape=box", pos + 1)) {
    ++boxes;
  }
  for (std::size_t pos = out.find("shape=circle"); pos != std::string::npos;
       pos = out.find("shape=circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(boxes, 24U);
  EXPECT_EQ(circles, 52U);
}

TEST(Integration, DesignNumbersAreInternallyConsistentAcrossModules) {
  // designer formulas == fabric facade == multilevel construction.
  for (std::uint32_t n = 2; n <= 4; ++n) {
    const auto design = two_level_design(n);
    const NonblockingFabric fabric(n);
    const MultiLevelFabric built(n, 2);
    EXPECT_EQ(design.ports, fabric.port_count());
    EXPECT_EQ(design.ports, built.port_count());
    EXPECT_EQ(design.switches, fabric.topology().switch_count());
    EXPECT_EQ(design.switches, built.switch_count());
  }
}

/// Whole-pipeline property sweep: for each (n, r) shape, the Theorem 3
/// routing certifies, the adaptive router schedules contention-free, and
/// the centralized router realizes the same pattern — three independent
/// implementations agreeing that the permutation is realizable.
class PipelineSweep
    : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {
};

TEST_P(PipelineSweep, AllThreeRoutingWorldsAgree) {
  const auto [n, r] = GetParam();
  const FoldedClos yuan_ft(FtreeParams{n, n * n, r});
  const YuanNonblockingRouting yuan(yuan_ft);
  EXPECT_TRUE(is_nonblocking_single_path(yuan));

  const adaptive::AdaptiveParams params{n, r, min_digit_width(r, n)};
  const adaptive::NonblockingAdaptiveRouter adaptive_router(params);
  const FoldedClos adaptive_ft(
      FtreeParams{n, params.worst_case_top_switches(), r});

  const FoldedClos central_ft(FtreeParams{n, n, r});
  const CentralizedRearrangeableRouter central(central_ft);

  Xoshiro256 rng(n * 131 + r);
  for (int trial = 0; trial < 5; ++trial) {
    const auto pattern = random_permutation(n * r, rng);
    EXPECT_FALSE(has_contention(yuan_ft, yuan.route_all(pattern)));
    const auto schedule = adaptive_router.route(pattern);
    EXPECT_FALSE(
        has_contention(adaptive_ft, schedule.to_paths(adaptive_ft)));
    EXPECT_FALSE(has_contention(central_ft, central.route(pattern)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineSweep,
    ::testing::Values(std::pair{2U, 5U}, std::pair{2U, 12U},
                      std::pair{3U, 7U}, std::pair{3U, 12U},
                      std::pair{4U, 9U}, std::pair{4U, 20U},
                      std::pair{5U, 11U}, std::pair{5U, 30U},
                      std::pair{6U, 13U}, std::pair{6U, 42U}));

}  // namespace
}  // namespace nbclos
