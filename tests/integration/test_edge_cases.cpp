/// Edge-case hardening across modules: boundary parameters, degenerate
/// patterns, and overflow guards that the main suites don't reach.
#include <gtest/gtest.h>

#include "nbclos/adaptive/router.hpp"
#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/core/multilevel.hpp"
#include "nbclos/routing/multipath.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"

namespace nbclos {
namespace {

TEST(EdgeCases, FoldedClosRejectsIdSpaceOverflow) {
  // 2*r*n + 2*r*m must fit 32 bits; 70000 * 70000 links overflow.
  EXPECT_THROW(FoldedClos(FtreeParams{1, 70000, 70000}), precondition_error);
}

TEST(EdgeCases, SmallestLegalFtree) {
  const FoldedClos ft(FtreeParams{1, 1, 2});
  ft.validate();
  EXPECT_EQ(ft.leaf_count(), 2U);
  EXPECT_EQ(ft.cross_pair_count(), 2U);
  // With n = 1 the single routing choice is trivially nonblocking.
  const YuanNonblockingRouting routing(ft);
  EXPECT_TRUE(is_nonblocking_single_path(routing));
}

TEST(EdgeCases, PartialPermutationsScheduleCorrectly) {
  // Only two of sixteen switches have traffic; everything else idle.
  const adaptive::AdaptiveParams params{4, 16, 2};
  const adaptive::NonblockingAdaptiveRouter router(params);
  const Permutation sparse{{LeafId{0}, LeafId{9}}, {LeafId{40}, LeafId{2}}};
  const auto schedule = router.route(sparse);
  EXPECT_EQ(schedule.configurations_used, 1U);
  const FoldedClos ft(FtreeParams{4, params.switches_per_config(), 16});
  EXPECT_FALSE(has_contention(ft, schedule.to_paths(ft)));
}

TEST(EdgeCases, EmptyPermutationEverywhere) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const YuanNonblockingRouting routing(ft);
  EXPECT_TRUE(routing.route_all({}).empty());
  LinkLoadMap map(ft);
  EXPECT_TRUE(map.contention_free());
  EXPECT_EQ(map.max_load(), 0U);
}

TEST(EdgeCases, MultipathRandomIsSeedReproducible) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  MultipathObliviousRouting a(ft, 3, SpreadPolicy::kRandom, 99);
  MultipathObliviousRouting b(ft, 3, SpreadPolicy::kRandom, 99);
  const SDPair sd{LeafId{0}, LeafId{5}};
  for (std::uint64_t p = 0; p < 50; ++p) {
    EXPECT_EQ(a.path_for_packet(sd, p).top, b.path_for_packet(sd, p).top);
  }
}

TEST(EdgeCases, SimulatorQueueCapacityOneStillDelivers) {
  // The tightest possible buffering: backpressure everywhere, but no
  // deadlock and no loss (store-and-forward on a tree is cycle-free).
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const auto net = build_network(ft);
  const YuanNonblockingRouting routing(ft);
  const auto table = RoutingTable::materialize(routing);
  sim::FtreeOracle oracle(ft, sim::UplinkPolicy::kTable, &table);
  const auto pattern = shift_permutation(ft.leaf_count(), 3);
  const auto traffic =
      sim::TrafficPattern::permutation(pattern, ft.leaf_count());
  sim::SimConfig config;
  config.injection_rate = 0.5;
  config.queue_capacity = 1;
  config.warmup_cycles = 500;
  config.measure_cycles = 3000;
  sim::PacketSim simulator(net, oracle, traffic, config);
  const auto result = simulator.run();
  EXPECT_GT(result.accepted_throughput, 0.45);
}

TEST(EdgeCases, SimulatorMultiFlitPacketsOnContendedLink) {
  // Packet size 4 with two flows on one uplink: throughput halves and
  // serialization shows up in latency, but nothing is lost or stuck.
  const FoldedClos ft(FtreeParams{2, 1, 2});  // single top switch
  const auto net = build_network(ft);
  sim::FtreeOracle oracle(ft, sim::UplinkPolicy::kDModK);
  const Permutation pattern{{LeafId{0}, LeafId{2}}, {LeafId{1}, LeafId{3}}};
  const auto traffic = sim::TrafficPattern::permutation(pattern, 4);
  sim::SimConfig config;
  config.injection_rate = 1.0;
  config.packet_size = 4;
  config.warmup_cycles = 500;
  config.measure_cycles = 4000;
  sim::PacketSim simulator(net, oracle, traffic, config);
  const auto result = simulator.run();
  // Two flows share the single uplink: ~0.5 each; normalized over the 4
  // terminals (two silent) that is ~0.25.
  EXPECT_NEAR(result.accepted_throughput, 0.25, 0.04);
  EXPECT_GE(result.mean_latency, 12.0);  // >= 3 hops * 4 flits
}

TEST(EdgeCases, MultiLevelSmallestInstanceIsTheTwoLevelFabric) {
  const MultiLevelFabric fabric(2, 2);
  EXPECT_EQ(fabric.port_count(), 12U);
  EXPECT_EQ(fabric.switch_count(), 10U);
  // Route through a level-1 block is at most 4 channels at depth 2.
  for (std::uint32_t d = 1; d < fabric.port_count(); ++d) {
    EXPECT_LE(fabric.route({LeafId{0}, LeafId{d}}).size(), 4U);
  }
}

TEST(EdgeCases, ReverseOfTwoLeavesIsASwap) {
  const auto p = reverse_permutation(2);
  ASSERT_EQ(p.size(), 2U);
  EXPECT_EQ(p[0].dst.value, 1U);
  EXPECT_EQ(p[1].dst.value, 0U);
}

TEST(EdgeCases, AdaptiveRouterWithRLessThanN) {
  // r < n: c = 1, single digit; still schedules correctly.
  const adaptive::AdaptiveParams params{5, 3, 1};
  const adaptive::NonblockingAdaptiveRouter router(params);
  Xoshiro256 rng(9);
  const auto pattern = random_permutation(15, rng);
  const auto schedule = router.route(pattern);
  const FoldedClos ft(
      FtreeParams{5, params.worst_case_top_switches(), 3});
  EXPECT_FALSE(has_contention(ft, schedule.to_paths(ft)));
}

}  // namespace
}  // namespace nbclos
