#include "nbclos/util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "nbclos/util/check.hpp"
#include "nbclos/util/prng.hpp"

namespace nbclos {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0U);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1U);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeMatchesSequential) {
  Xoshiro256 rng(17);
  RunningStats whole;
  RunningStats a;
  RunningStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10 - 5;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2U);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2U);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, Ci95ShrinksWithSamples) {
  Xoshiro256 rng(3);
  RunningStats small;
  RunningStats large;
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform01();
    if (i < 100) small.add(x);
    large.add(x);
  }
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Histogram, CountsFallInCorrectBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  h.add(9.99);
  EXPECT_EQ(h.bin(0), 1U);
  EXPECT_EQ(h.bin(1), 2U);
  EXPECT_EQ(h.bin(9), 1U);
  EXPECT_EQ(h.total(), 4U);
}

TEST(Histogram, EdgeSamplesSaturate) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(15.0);
  h.add(10.0);  // == hi goes to last bin
  EXPECT_EQ(h.bin(0), 1U);
  EXPECT_EQ(h.bin(9), 2U);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), precondition_error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), precondition_error);
}

TEST(QuantileHistogram, EmptyIsZero) {
  QuantileHistogram h(1000);
  EXPECT_EQ(h.count(), 0U);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(QuantileHistogram, UnitBucketsWhenRangeFitsBinBudget) {
  // max_value < max_bins => one integer per bucket, quantiles exact.
  QuantileHistogram h(100);
  EXPECT_EQ(h.bucket_width(), 1U);
  for (std::uint64_t v = 0; v <= 100; ++v) h.add(v);
  // Rank convention sorted[floor(q * (n - 1))] over n = 101 samples.
  EXPECT_EQ(h.quantile(0.0), 0.0);
  EXPECT_EQ(h.quantile(0.5), 50.0);
  EXPECT_EQ(h.quantile(0.99), 99.0);
  EXPECT_EQ(h.quantile(1.0), 100.0);
}

TEST(QuantileHistogram, MatchesSortBasedQuantileWithinOneBucket) {
  // Wide value range forces multi-integer buckets; the streaming p99 must
  // land within one bucket width of the exact sort-based p99.
  constexpr std::uint64_t kMax = 1000000;
  QuantileHistogram h(kMax, 4096);
  Xoshiro256 rng(42);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    // Skewed distribution, as latencies are.
    const auto v = rng.below(1000) * rng.below(1000);
    samples.push_back(v);
    h.add(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto exact = static_cast<double>(samples[static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1))]);
    const auto approx = h.quantile(q);
    EXPECT_LE(approx, exact);
    EXPECT_GT(approx + static_cast<double>(h.bucket_width()), exact)
        << "q=" << q;
  }
}

TEST(QuantileHistogram, SaturatesIntoTopBucket) {
  QuantileHistogram h(10);
  h.add(10000);  // beyond max_value: clamps, never out of range
  EXPECT_EQ(h.count(), 1U);
  EXPECT_EQ(h.quantile(1.0), 10.0);
}

TEST(QuantileHistogram, MergeMatchesSequentialFill) {
  QuantileHistogram a(500);
  QuantileHistogram b(500);
  QuantileHistogram all(500);
  for (std::uint64_t v = 0; v < 300; ++v) {
    (v % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q));
  }
}

TEST(QuantileHistogram, MergeRejectsMismatchedGeometry) {
  QuantileHistogram a(500);
  QuantileHistogram b(50000);
  EXPECT_THROW(a.merge(b), precondition_error);
}

TEST(QuantileHistogram, EmptyQuantilesAreZeroAtEveryQ) {
  QuantileHistogram h(1000);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.quantile(q), 0.0) << "q=" << q;
  }
  EXPECT_THROW((void)h.quantile(-0.01), precondition_error);
  EXPECT_THROW((void)h.quantile(1.01), precondition_error);
}

TEST(QuantileHistogram, SingleSampleIsEveryQuantile) {
  QuantileHistogram h(1000, 1000);  // width > 1: answer is the bucket edge
  h.add(700);
  EXPECT_EQ(h.count(), 1U);
  const double expect =
      static_cast<double>(700 / h.bucket_width() * h.bucket_width());
  for (const double q : {0.0, 0.5, 1.0}) {
    EXPECT_EQ(h.quantile(q), expect) << "q=" << q;
  }
}

TEST(QuantileHistogram, WeightedAddMatchesRepeatedAdd) {
  QuantileHistogram weighted(500);
  QuantileHistogram repeated(500);
  weighted.add(10, 3);
  weighted.add(400, 7);
  for (int i = 0; i < 3; ++i) repeated.add(10);
  for (int i = 0; i < 7; ++i) repeated.add(400);
  EXPECT_EQ(weighted.count(), repeated.count());
  for (const double q : {0.0, 0.2, 0.5, 0.9, 1.0}) {
    EXPECT_EQ(weighted.quantile(q), repeated.quantile(q));
  }
}

TEST(QuantileHistogram, MergeIsAssociativeAcrossShards) {
  // The obs registry merges per-thread shards in whatever order the
  // snapshot walks them; (a + b) + c must equal a + (b + c).
  const auto fill = [](QuantileHistogram& h, std::uint64_t seed) {
    Xoshiro256 rng(seed);
    for (int i = 0; i < 500; ++i) h.add(rng.below(1000));
  };
  QuantileHistogram a1(1000), b1(1000), c1(1000);
  QuantileHistogram a2(1000), b2(1000), c2(1000);
  fill(a1, 1), fill(b1, 2), fill(c1, 3);
  fill(a2, 1), fill(b2, 2), fill(c2, 3);
  a1.merge(b1);
  a1.merge(c1);  // (a + b) + c
  b2.merge(c2);
  a2.merge(b2);  // a + (b + c)
  EXPECT_EQ(a1.count(), a2.count());
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.999, 1.0}) {
    EXPECT_EQ(a1.quantile(q), a2.quantile(q)) << "q=" << q;
  }
}

TEST(QuantileHistogram, RunningSumSaturatesInsteadOfWrapping) {
  // Two near-UINT64_MAX flushes would wrap a naive counter back to ~0 and
  // poison every quantile; the histogram pins at UINT64_MAX instead.
  constexpr std::uint64_t kHuge = UINT64_MAX / 2 + 1;
  QuantileHistogram h(100);
  h.add(10, kHuge);
  h.add(90, kHuge);  // total would be 2^64 exactly — must not wrap to 0
  EXPECT_EQ(h.count(), UINT64_MAX);
  EXPECT_EQ(h.quantile(0.0), 10.0);
  EXPECT_EQ(h.quantile(1.0), 90.0);
  EXPECT_EQ(h.quantile(0.25), 10.0);

  // Merging two saturated histograms stays saturated and well-formed.
  QuantileHistogram other(100);
  other.add(50, UINT64_MAX);
  h.merge(other);
  EXPECT_EQ(h.count(), UINT64_MAX);
  EXPECT_GE(h.quantile(0.5), 10.0);
  EXPECT_LE(h.quantile(0.5), 90.0);
}

TEST(PowerFit, RecoversExactPowerLaw) {
  // y = 3 x^1.7
  std::vector<double> x;
  std::vector<double> y;
  for (double v = 2.0; v <= 64.0; v *= 2.0) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 1.7));
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-9);
  EXPECT_NEAR(fit.exponent, 1.7, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(PowerFit, RejectsDegenerateInput) {
  EXPECT_THROW((void)fit_power_law({1.0}, {1.0}), precondition_error);
  EXPECT_THROW((void)fit_power_law({1.0, 2.0}, {1.0}), precondition_error);
  EXPECT_THROW((void)fit_power_law({1.0, 2.0}, {0.0, 1.0}), precondition_error);
  EXPECT_THROW((void)fit_power_law({2.0, 2.0}, {1.0, 2.0}), precondition_error);
}

}  // namespace
}  // namespace nbclos
