#include "nbclos/util/check.hpp"

#include <gtest/gtest.h>

namespace nbclos {
namespace {

TEST(Check, RequirePassesOnTrue) {
  EXPECT_NO_THROW(NBCLOS_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Check, RequireThrowsPreconditionError) {
  EXPECT_THROW(NBCLOS_REQUIRE(false, "always fails"), precondition_error);
}

TEST(Check, RequireMessageNamesExpressionAndDetail) {
  try {
    NBCLOS_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
  }
}

TEST(Check, AssertThrowsInvariantError) {
  EXPECT_THROW(NBCLOS_ASSERT(false), invariant_error);
  EXPECT_NO_THROW(NBCLOS_ASSERT(true));
}

TEST(Check, PreconditionErrorIsInvalidArgument) {
  EXPECT_THROW(NBCLOS_REQUIRE(false, ""), std::invalid_argument);
}

TEST(Check, NarrowRoundTripsExactValues) {
  EXPECT_EQ(narrow<std::uint8_t>(255), 255);
  EXPECT_EQ(narrow<std::int16_t>(-32768), -32768);
  EXPECT_EQ(narrow<std::uint32_t>(std::uint64_t{7}), 7U);
}

TEST(Check, NarrowThrowsOnOverflow) {
  EXPECT_THROW((void)narrow<std::uint8_t>(256), precondition_error);
  EXPECT_THROW((void)narrow<std::uint32_t>(std::uint64_t{1} << 40),
               precondition_error);
}

TEST(Check, NarrowThrowsOnSignChange) {
  EXPECT_THROW((void)narrow<std::uint32_t>(-1), precondition_error);
}

}  // namespace
}  // namespace nbclos
