#include "nbclos/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "nbclos/util/check.hpp"

namespace nbclos {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  std::ostringstream os;
  table.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 22222 |"), std::string::npos);
}

TEST(TextTable, AddFormatsMixedTypes) {
  TextTable table({"a", "b", "c"});
  table.add(std::string("x"), 42, 2.5);
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "a,b,c\nx,42,2.5\n");
}

TEST(TextTable, CsvEscapesSpecials) {
  TextTable table({"field"});
  table.add_row({"has,comma"});
  table.add_row({"has\"quote"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "field\n\"has,comma\"\n\"has\"\"quote\"\n");
}

TEST(TextTable, RejectsMismatchedRow) {
  TextTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only one"}), precondition_error);
  EXPECT_THROW(TextTable({}), precondition_error);
}

TEST(TextTable, RowCount) {
  TextTable table({"x"});
  EXPECT_EQ(table.row_count(), 0U);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.row_count(), 2U);
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(2.5), "2.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(1.0 / 3.0, 2), "0.33");
}

TEST(Versus, ShowsBothValues) {
  EXPECT_EQ(versus(78, 88, 0), "78 (paper: 88)");
}

}  // namespace
}  // namespace nbclos
