#include "nbclos/util/prng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace nbclos {
namespace {

TEST(Prng, SameSeedSameSequence) {
  Xoshiro256 a(123);
  Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, BelowStaysInRange) {
  Xoshiro256 rng(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 100ULL, 1'000'003ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Prng, BelowOneAlwaysZero) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0U);
}

TEST(Prng, BelowIsRoughlyUniform) {
  Xoshiro256 rng(2024);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
  // Each bucket expects 10000; allow 5 sigma (~sqrt(10000*0.9) ~ 95).
  for (const int c : counts) EXPECT_NEAR(c, kDraws / kBound, 500);
}

TEST(Prng, Uniform01InHalfOpenInterval) {
  Xoshiro256 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Prng, BernoulliExtremes) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Prng, SplitProducesDecorrelatedStream) {
  Xoshiro256 parent(42);
  Xoshiro256 child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, ShuffleIsAPermutation) {
  Xoshiro256 rng(314);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  shuffle(v.begin(), v.end(), rng);
  std::set<int> unique(v.begin(), v.end());
  EXPECT_EQ(unique.size(), 100U);
  EXPECT_EQ(*unique.begin(), 0);
  EXPECT_EQ(*unique.rbegin(), 99);
}

TEST(Prng, ShuffleActuallyPermutes) {
  Xoshiro256 rng(314);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  const auto original = v;
  shuffle(v.begin(), v.end(), rng);
  EXPECT_NE(v, original);  // probability 1/100! of flaking
}

TEST(Prng, SplitMixIsDeterministic) {
  SplitMix64 a(9);
  SplitMix64 b(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), b.next());
}

}  // namespace
}  // namespace nbclos
