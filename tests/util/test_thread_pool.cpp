#include "nbclos/util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

namespace nbclos {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4U);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.parallel_for(5, 5, [&counter](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPool, ParallelChunksPartitionIsContiguousAndComplete) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  pool.parallel_chunks(10, 110,
                       [&](std::size_t, std::size_t lo, std::size_t hi) {
                         const std::scoped_lock lock(mu);
                         chunks.emplace_back(lo, hi);
                       });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_FALSE(chunks.empty());
  EXPECT_EQ(chunks.front().first, 10U);
  EXPECT_EQ(chunks.back().second, 110U);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
  }
}

TEST(ThreadPool, ChunkCountNeverExceedsWorkOrThreads) {
  ThreadPool pool(8);
  std::atomic<int> chunk_count{0};
  pool.parallel_chunks(0, 3, [&](std::size_t, std::size_t, std::size_t) {
    chunk_count.fetch_add(1);
  });
  EXPECT_EQ(chunk_count.load(), 3);
}

TEST(ThreadPool, WaitIdleWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100'000;
  std::vector<std::uint64_t> partial(pool.thread_count(), 0);
  pool.parallel_chunks(1, kN + 1,
                       [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
                         std::uint64_t sum = 0;
                         for (std::size_t i = lo; i < hi; ++i) sum += i;
                         partial[chunk] = sum;
                       });
  const auto total =
      std::accumulate(partial.begin(), partial.end(), std::uint64_t{0});
  EXPECT_EQ(total, std::uint64_t{kN} * (kN + 1) / 2);
}

}  // namespace
}  // namespace nbclos
