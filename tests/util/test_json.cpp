#include "nbclos/util/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "nbclos/util/check.hpp"

namespace nbclos {
namespace {

std::string render(void (*build)(JsonWriter&), int indent = 0) {
  std::ostringstream out;
  JsonWriter writer(out, indent);
  build(writer);
  return out.str();
}

TEST(JsonWriter, ScalarsAtTopLevel) {
  EXPECT_EQ(render([](JsonWriter& w) { w.value("hi"); }), "\"hi\"");
  EXPECT_EQ(render([](JsonWriter& w) { w.value(true); }), "true");
  EXPECT_EQ(render([](JsonWriter& w) { w.value(false); }), "false");
  EXPECT_EQ(render([](JsonWriter& w) { w.value(std::uint64_t{42}); }), "42");
  EXPECT_EQ(render([](JsonWriter& w) { w.value(std::int64_t{-7}); }), "-7");
}

TEST(JsonWriter, EscapesSpecialAndControlCharacters) {
  EXPECT_EQ(render([](JsonWriter& w) {
              w.value("a\"b\\c\nd\te\rf");
            }),
            "\"a\\\"b\\\\c\\nd\\te\\rf\"");
  // Control characters below 0x20 must be \u-escaped.
  EXPECT_EQ(render([](JsonWriter& w) { w.value(std::string_view("\x01", 1)); }),
            "\"\\u0001\"");
  EXPECT_EQ(render([](JsonWriter& w) { w.value(std::string_view("\x1f", 1)); }),
            "\"\\u001f\"");
}

TEST(JsonWriter, DoublesRoundTripShortest) {
  EXPECT_EQ(render([](JsonWriter& w) { w.value(0.1); }), "0.1");
  EXPECT_EQ(render([](JsonWriter& w) { w.value(1.0 / 3.0); }),
            "0.3333333333333333");
  EXPECT_EQ(render([](JsonWriter& w) { w.value(1e300); }), "1e+300");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(render([](JsonWriter& w) {
              w.value(std::numeric_limits<double>::quiet_NaN());
            }),
            "null");
  EXPECT_EQ(render([](JsonWriter& w) {
              w.value(std::numeric_limits<double>::infinity());
            }),
            "null");
}

TEST(JsonWriter, CompactNesting) {
  const auto text = render([](JsonWriter& w) {
    w.begin_object();
    w.member("name", "x");
    w.key("values").begin_array();
    w.value(std::uint64_t{1});
    w.value(std::uint64_t{2});
    w.end_array();
    w.key("inner").begin_object();
    w.member("deep", true);
    w.end_object();
    w.end_object();
  });
  EXPECT_EQ(text, "{\"name\":\"x\",\"values\":[1,2],\"inner\":{\"deep\":true}}");
}

TEST(JsonWriter, PrettyPrintingIndents) {
  const auto text = render(
      [](JsonWriter& w) {
        w.begin_object();
        w.member("a", std::uint64_t{1});
        w.end_object();
      },
      2);
  EXPECT_EQ(text, "{\n  \"a\": 1\n}\n");
}

TEST(JsonWriter, CompleteTracksBalance) {
  std::ostringstream out;
  JsonWriter writer(out);
  EXPECT_FALSE(writer.complete());
  writer.begin_object();
  EXPECT_FALSE(writer.complete());
  writer.end_object();
  EXPECT_TRUE(writer.complete());
}

TEST(JsonWriter, MisuseFailsFast) {
  {
    std::ostringstream out;
    JsonWriter writer(out);
    writer.begin_object();
    // Value without a key inside an object.
    EXPECT_THROW(writer.value(std::uint64_t{1}), precondition_error);
  }
  {
    std::ostringstream out;
    JsonWriter writer(out);
    writer.begin_object();
    writer.key("k");
    EXPECT_THROW(writer.key("again"), precondition_error);
  }
  {
    std::ostringstream out;
    JsonWriter writer(out);
    writer.begin_array();
    EXPECT_THROW(writer.end_object(), precondition_error);
  }
  {
    std::ostringstream out;
    JsonWriter writer(out);
    writer.value(std::uint64_t{1});
    EXPECT_THROW(writer.value(std::uint64_t{2}), precondition_error);
  }
  {
    std::ostringstream out;
    JsonWriter writer(out);
    // key() outside any object.
    EXPECT_THROW(writer.key("k"), precondition_error);
  }
}

}  // namespace
}  // namespace nbclos
