#include "nbclos/util/digits.hpp"

#include <gtest/gtest.h>

namespace nbclos {
namespace {

TEST(DigitCodec, Base10RoundTrip) {
  const DigitCodec codec(10, 3);
  EXPECT_EQ(codec.capacity(), 1000U);
  EXPECT_EQ(codec.digit(427, 0), 7U);
  EXPECT_EQ(codec.digit(427, 1), 2U);
  EXPECT_EQ(codec.digit(427, 2), 4U);
  EXPECT_EQ(codec.compose({7, 2, 4}), 427U);
}

TEST(DigitCodec, DigitsLeastSignificantFirst) {
  const DigitCodec codec(3, 4);
  const auto d = codec.digits(2 + 1 * 3 + 0 * 9 + 2 * 27);
  ASSERT_EQ(d.size(), 4U);
  EXPECT_EQ(d[0], 2U);
  EXPECT_EQ(d[1], 1U);
  EXPECT_EQ(d[2], 0U);
  EXPECT_EQ(d[3], 2U);
}

TEST(DigitCodec, ComposeInvertsDigitsExhaustively) {
  const DigitCodec codec(4, 3);
  for (std::uint64_t v = 0; v < codec.capacity(); ++v) {
    EXPECT_EQ(codec.compose(codec.digits(v)), v);
  }
}

TEST(DigitCodec, RejectsOutOfRange) {
  const DigitCodec codec(2, 3);
  EXPECT_THROW((void)codec.digit(8, 0), precondition_error);
  EXPECT_THROW((void)codec.digit(0, 3), precondition_error);
  EXPECT_THROW((void)codec.compose({0, 1}), precondition_error);
  EXPECT_THROW((void)codec.compose({2, 0, 0}), precondition_error);
}

TEST(DigitCodec, RejectsBadParameters) {
  EXPECT_THROW(DigitCodec(1, 3), precondition_error);
  EXPECT_THROW(DigitCodec(10, 0), precondition_error);
}

TEST(MinDigitWidth, MatchesDefinition) {
  // Smallest c with r <= n^c.
  EXPECT_EQ(min_digit_width(4, 2), 2U);    // 2^2 = 4 >= 4
  EXPECT_EQ(min_digit_width(5, 2), 3U);    // 2^3 = 8 >= 5
  EXPECT_EQ(min_digit_width(2, 2), 1U);
  EXPECT_EQ(min_digit_width(1, 5), 1U);
  EXPECT_EQ(min_digit_width(25, 5), 2U);
  EXPECT_EQ(min_digit_width(26, 5), 3U);
  EXPECT_EQ(min_digit_width(30, 5), 3U);   // ftree(n+m, n^2+n): c = 3
}

TEST(MinDigitWidth, PaperExamples) {
  // "In ftree(n+m, n^2), c = 2.  In ftree(n+m, n^2+n), c = 3."
  for (std::uint32_t n = 2; n <= 8; ++n) {
    EXPECT_EQ(min_digit_width(n * n, n), 2U) << "n=" << n;
    EXPECT_EQ(min_digit_width(n * n + n, n), 3U) << "n=" << n;
  }
}

}  // namespace
}  // namespace nbclos
