/// \file test_trace.cpp
/// \brief TraceSession: span/instant/counter collection, Chrome and JSONL
///        export, and the inactive-session fast path.  Compiles against
///        the NBCLOS_OBS=OFF stubs; value assertions skip there.
#include "nbclos/obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "nbclos/util/thread_pool.hpp"

namespace nbclos::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(ObsTrace, InactiveSessionRecordsNothing) {
  TraceSession::stop();
  EXPECT_FALSE(TraceSession::active());
  {
    ScopedSpan span("test.span.inactive", "test");
    span.arg("x", 1.0);
  }
  trace_instant("test.instant.inactive", "test");
  trace_counter("test.counter.inactive", 3.0);
  EXPECT_EQ(TraceSession::event_count(), 0U);
}

TEST(ObsTrace, CollectsSpansInstantsAndCounters) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  TraceSession::start();
  EXPECT_TRUE(TraceSession::active());
  {
    ScopedSpan span("test.span", "test");
    span.arg("load", 0.9);
    span.arg("cycles", 100.0);
  }
  trace_instant("test.instant", "test", "lo", 1.0, "hi", 2.0);
  trace_counter("test.series", 42.0, "depth");
  TraceSession::stop();
  EXPECT_EQ(TraceSession::event_count(), 3U);

  std::ostringstream chrome;
  TraceSession::write_chrome(chrome);
  const std::string text = chrome.str();
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"test.span\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(text.find("\"dur\""), std::string::npos);
  EXPECT_NE(text.find("\"load\":0.9"), std::string::npos);
  EXPECT_NE(text.find("\"depth\":42"), std::string::npos);
}

TEST(ObsTrace, JsonlEmitsOneObjectPerLineSortedByTimestamp) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  TraceSession::start();
  trace_instant("test.first", "test");
  trace_instant("test.second", "test");
  TraceSession::stop();

  std::ostringstream out;
  TraceSession::write_jsonl(out);
  const auto lines = lines_of(out.str());
  ASSERT_EQ(lines.size(), 2U);
  double last_ts = -1.0;
  for (const auto& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"name\""), std::string::npos);
    EXPECT_NE(line.find("\"ph\":\"i\""), std::string::npos);
    const auto ts_pos = line.find("\"ts\":");
    ASSERT_NE(ts_pos, std::string::npos);
    const double ts = std::stod(line.substr(ts_pos + 5));
    EXPECT_GE(ts, last_ts);
    last_ts = ts;
  }
}

TEST(ObsTrace, StartClearsThePreviousSession) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  TraceSession::start();
  trace_instant("test.stale", "test");
  TraceSession::stop();
  EXPECT_EQ(TraceSession::event_count(), 1U);
  TraceSession::start();
  TraceSession::stop();
  EXPECT_EQ(TraceSession::event_count(), 0U);
}

TEST(ObsTrace, WorkerThreadsGetDistinctTids) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  TraceSession::start();
  ThreadPool pool(4);
  // Rendezvous so all four chunks are in flight at once — four distinct
  // workers must record, no matter how fast any one of them is.
  std::atomic<int> arrived{0};
  pool.parallel_chunks(0, 4, [&arrived](std::size_t, std::size_t,
                                        std::size_t) {
    arrived.fetch_add(1);
    while (arrived.load() < 4) std::this_thread::yield();
    ScopedSpan span("test.worker", "test");
  });
  pool.wait_idle();
  TraceSession::stop();
  EXPECT_EQ(TraceSession::event_count(), 4U);

  std::ostringstream out;
  TraceSession::write_jsonl(out);
  std::vector<std::string> tids;
  for (const auto& line : lines_of(out.str())) {
    const auto pos = line.find("\"tid\":");
    ASSERT_NE(pos, std::string::npos);
    const auto end = line.find_first_of(",}", pos);
    const auto tid = line.substr(pos, end - pos);
    if (std::find(tids.begin(), tids.end(), tid) == tids.end()) {
      tids.push_back(tid);
    }
  }
  EXPECT_GE(tids.size(), 2U) << "worker spans collapsed onto one tid";
}

}  // namespace
}  // namespace nbclos::obs
