/// \file test_flight_recorder.cpp
/// \brief FlightRecorder: ring-downsampling invariants, shard-count
///        merge determinism, forensics tails, and the Prometheus and
///        time-series exporters.  Everything here drives the recorder
///        synthetically; the engine-level identity checks live in
///        tests/sim/test_sharded.cpp and tests/flow/test_flow_sharded.cpp.
#include "nbclos/obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "nbclos/obs/prom_export.hpp"
#include "nbclos/obs/series_export.hpp"

namespace nbclos::obs {
namespace {

/// Drive one series through `cycles` cycles at the recorder's cadence,
/// writing `value_of(cycle)` into every shard slot.
template <typename ValueOf>
void drive(FlightRecorder& rec, FlightRecorder::SeriesId id,
           std::uint64_t cycles, ValueOf value_of) {
  const auto shards = rec.config().shards;
  for (std::uint64_t cycle = 0; cycle <= cycles; ++cycle) {
    if (!rec.want(cycle)) continue;
    for (std::uint32_t s = 0; s < shards; ++s) {
      rec.record(id, s, cycle, value_of(cycle, s));
    }
  }
}

TEST(FlightRecorder, InactiveUntilConfigured) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.active());
  EXPECT_FALSE(rec.want(0));
  EXPECT_TRUE(rec.merged().empty());
}

TEST(FlightRecorder, WantFiresOnCadenceMultiplesOnly) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  FlightRecorder rec({/*cadence=*/8, /*ring_capacity=*/16, /*shards=*/1});
  EXPECT_TRUE(rec.want(0));
  EXPECT_FALSE(rec.want(1));
  EXPECT_FALSE(rec.want(7));
  EXPECT_TRUE(rec.want(8));
  EXPECT_TRUE(rec.want(800));
}

TEST(FlightRecorder, RingKeepsEverySampleUntilFull) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  FlightRecorder rec({/*cadence=*/4, /*ring_capacity=*/64, /*shards=*/1});
  const auto id = rec.series("test.ring.underfull", SeriesAgg::kSum);
  drive(rec, id, 100, [](std::uint64_t t, std::uint32_t) {
    return static_cast<std::int64_t>(t * 2);
  });
  const auto merged = rec.merged();
  ASSERT_EQ(merged.size(), 1U);
  EXPECT_EQ(merged[0].stride_cycles, 4U);  // no downsampling happened
  ASSERT_EQ(merged[0].points.size(), 26U);  // cycles 0, 4, ..., 100
  for (std::size_t i = 0; i < merged[0].points.size(); ++i) {
    EXPECT_EQ(merged[0].points[i].t, 4 * i);
    EXPECT_EQ(merged[0].points[i].v, static_cast<std::int64_t>(8 * i));
  }
}

TEST(FlightRecorder, DownsamplingHalvesResolutionAndKeepsBudget) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  const std::uint32_t ring = 8;
  FlightRecorder rec({/*cadence=*/1, ring, /*shards=*/1});
  const auto id = rec.series("test.ring.downsample", SeriesAgg::kSum);
  // 1000 samples through an 8-slot ring: stride must reach the smallest
  // power of two that fits, and the survivors are exactly the multiples
  // of the final stride — a uniform grid over the whole run.
  drive(rec, id, 999, [](std::uint64_t t, std::uint32_t) {
    return static_cast<std::int64_t>(t);
  });
  const auto merged = rec.merged();
  ASSERT_EQ(merged.size(), 1U);
  const auto& series = merged[0];
  EXPECT_LE(series.points.size(), ring);
  EXPECT_GE(series.points.size(), ring / 2U);  // never below half budget
  const auto stride = series.stride_cycles;
  EXPECT_EQ(stride & (stride - 1), 0U);  // cadence 1 => power of two
  for (std::size_t i = 0; i < series.points.size(); ++i) {
    EXPECT_EQ(series.points[i].t, stride * i);
    EXPECT_EQ(series.points[i].v, static_cast<std::int64_t>(stride * i));
  }
}

TEST(FlightRecorder, RetainedTimestampsAreAPureFunctionOfTheInput) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  // Two independent recorders fed the same cycles retain the same
  // samples — the downsampling decision depends only on the data.
  FlightRecorder a({/*cadence=*/2, /*ring_capacity=*/16, /*shards=*/1});
  FlightRecorder b({/*cadence=*/2, /*ring_capacity=*/16, /*shards=*/1});
  const auto ia = a.series("test.pure", SeriesAgg::kSum);
  const auto ib = b.series("test.pure", SeriesAgg::kSum);
  const auto value = [](std::uint64_t t, std::uint32_t) {
    return static_cast<std::int64_t>(t % 7);
  };
  drive(a, ia, 500, value);
  drive(b, ib, 500, value);
  EXPECT_EQ(a.merged()[0].points, b.merged()[0].points);
}

TEST(FlightRecorder, MergeSumsAdditiveShardsBitIdentically) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  // An additively partitioned signal merges to the same series at any
  // shard count: shard s holds value(t)/shards plus the remainder on
  // shard 0, so the per-cycle sum is exactly value(t) everywhere.
  const auto value = [](std::uint64_t t) {
    return static_cast<std::int64_t>(3 * t + 17);
  };
  std::vector<MergedSeries> reference;
  for (const std::uint32_t shards : {1U, 2U, 4U, 8U}) {
    FlightRecorder rec({/*cadence=*/16, /*ring_capacity=*/32, shards});
    const auto id = rec.series("test.merge.sum", SeriesAgg::kSum);
    drive(rec, id, 2000, [&](std::uint64_t t, std::uint32_t s) {
      const auto each = value(t) / shards;
      const auto rest = value(t) - each * shards;
      return each + (s == 0 ? rest : 0);
    });
    const auto merged = rec.merged();
    ASSERT_EQ(merged.size(), 1U);
    if (shards == 1) {
      reference = merged;
      for (const auto& point : merged[0].points) {
        EXPECT_EQ(point.v, value(point.t));
      }
    } else {
      EXPECT_EQ(merged[0].points, reference[0].points)
          << "merged series diverged at " << shards << " shards";
      EXPECT_EQ(merged[0].stride_cycles, reference[0].stride_cycles);
    }
  }
}

TEST(FlightRecorder, MergeSumHandlesNegativePerShardValues) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  // Per-shard flow in-system counts go negative when a shard ejects
  // flits injected elsewhere; only the sum is meaningful.
  FlightRecorder rec({/*cadence=*/1, /*ring_capacity=*/8, /*shards=*/2});
  const auto id = rec.series("test.merge.negative", SeriesAgg::kSum);
  rec.record(id, 0, 0, -5);
  rec.record(id, 1, 0, 9);
  const auto merged = rec.merged();
  ASSERT_EQ(merged.size(), 1U);
  ASSERT_EQ(merged[0].points.size(), 1U);
  EXPECT_EQ(merged[0].points[0].v, 4);
}

TEST(FlightRecorder, MergeMaxTakesPerShardPeak) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  FlightRecorder rec({/*cadence=*/1, /*ring_capacity=*/8, /*shards=*/3});
  const auto id = rec.series("test.merge.max", SeriesAgg::kMax,
                             SeriesScope::kShardTopology);
  for (std::uint32_t s = 0; s < 3; ++s) rec.record(id, s, 0, 10 + s);
  const auto merged = rec.merged();
  ASSERT_EQ(merged.size(), 1U);
  EXPECT_EQ(merged[0].scope, SeriesScope::kShardTopology);
  EXPECT_EQ(merged[0].points[0].v, 12);
}

TEST(FlightRecorder, TailReturnsLastKPoints) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  FlightRecorder rec({/*cadence=*/10, /*ring_capacity=*/64, /*shards=*/1});
  const auto id = rec.series("test.tail", SeriesAgg::kSum);
  drive(rec, id, 400, [](std::uint64_t t, std::uint32_t) {
    return static_cast<std::int64_t>(t);
  });
  const auto tail = rec.tail(4);
  ASSERT_EQ(tail.size(), 1U);
  ASSERT_EQ(tail[0].points.size(), 4U);
  EXPECT_EQ(tail[0].points.back().t, 400U);
  EXPECT_EQ(tail[0].points.front().t, 370U);
  // A tail longer than the series returns the whole series.
  EXPECT_EQ(rec.tail(10'000)[0].points.size(),
            rec.merged()[0].points.size());
}

TEST(FlightRecorder, ReregisteringANameReturnsTheSameId) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  FlightRecorder rec({/*cadence=*/1, /*ring_capacity=*/4, /*shards=*/1});
  const auto a = rec.series("test.same", SeriesAgg::kSum);
  const auto b = rec.series("test.same", SeriesAgg::kSum);
  EXPECT_EQ(a, b);
  EXPECT_EQ(rec.merged().size(), 1U);
}

TEST(FlightRecorder, SampleBytesStayWithinTheConfiguredBudget) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  FlightRecorder rec({/*cadence=*/1, /*ring_capacity=*/32, /*shards=*/4});
  const auto id = rec.series("test.budget", SeriesAgg::kSum);
  const auto budget = rec.sample_bytes();
  EXPECT_EQ(budget, 4U * 32U * sizeof(SeriesPoint));
  drive(rec, id, 100'000, [](std::uint64_t, std::uint32_t) {
    return std::int64_t{1};
  });
  EXPECT_EQ(rec.sample_bytes(), budget);  // rings never grow past capacity
}

TEST(FlightRecorder, RuntimePauseSuppressesSampling) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  FlightRecorder rec({/*cadence=*/1, /*ring_capacity=*/8, /*shards=*/1});
  const auto id = rec.series("test.pause", SeriesAgg::kSum);
  set_enabled(false);
  EXPECT_FALSE(rec.want(0));
  set_enabled(true);
  EXPECT_TRUE(rec.want(0));
  rec.record(id, 0, 0, 1);
  EXPECT_EQ(rec.merged()[0].points.size(), 1U);
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(PromExport, SanitizesNamesIntoThePrometheusGrammar) {
  EXPECT_EQ(prom_name("sim.link.busy_flits"), "nbclos_sim_link_busy_flits");
  EXPECT_EQ(prom_name("flow/odd-name"), "nbclos_flow_odd_name");
}

TEST(PromExport, RoundTripsCounterAndGaugeSamples) {
  std::vector<MetricSample> snapshot(2);
  snapshot[0].name = "test.counter";
  snapshot[0].kind = MetricSample::Kind::kCounter;
  snapshot[0].count = 42;
  snapshot[1].name = "test.gauge";
  snapshot[1].kind = MetricSample::Kind::kGauge;
  snapshot[1].gauge = -7;
  std::ostringstream out;
  prom_export(out, snapshot);
  const auto text = out.str();
  EXPECT_NE(text.find("# TYPE nbclos_test_counter counter\n"
                      "nbclos_test_counter 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE nbclos_test_gauge gauge\n"
                      "nbclos_test_gauge -7\n"),
            std::string::npos);
}

TEST(PromExport, GlobalExportIsValidInBothBuildConfigurations) {
  // Under NBCLOS_OBS=OFF the registry snapshot is empty and the export
  // is the empty string — still a valid exposition document.
  const auto text = prom_export_global();
  if constexpr (!kEnabled) {
    EXPECT_TRUE(text.empty());
  } else if (!text.empty()) {
    EXPECT_EQ(text.back(), '\n');
  }
}

TEST(SeriesExport, JsonCarriesSchemaGeometryAndPoints) {
  FlightRecorder::Config config;
  config.cadence = 32;
  config.ring_capacity = 128;
  config.shards = 2;
  std::vector<MergedSeries> series(1);
  series[0].name = "test.export";
  series[0].agg = SeriesAgg::kSum;
  series[0].scope = SeriesScope::kInvariant;
  series[0].stride_cycles = 32;
  series[0].points = {{0, 1}, {32, -2}};
  std::ostringstream out;
  write_timeseries_json(out, series, config);
  const auto text = out.str();
  EXPECT_NE(text.find("\"schema\": \"nbclos-timeseries-v1\""),
            std::string::npos);
  EXPECT_NE(text.find("\"cadence_cycles\": 32"), std::string::npos);
  EXPECT_NE(text.find("\"test.export\""), std::string::npos);
  EXPECT_NE(text.find("-2"), std::string::npos);
}

TEST(SeriesExport, CsvHeaderAndRowsMatchTheDocumentedSchema) {
  FlightRecorder::Config config;
  config.cadence = 8;
  config.ring_capacity = 16;
  config.shards = 1;
  std::vector<MergedSeries> series(1);
  series[0].name = "test.csv";
  series[0].agg = SeriesAgg::kMax;
  series[0].scope = SeriesScope::kShardTopology;
  series[0].stride_cycles = 8;
  series[0].points = {{8, 5}};
  std::ostringstream out;
  write_timeseries_csv(out, series, config);
  const auto text = out.str();
  EXPECT_NE(text.find("# nbclos-timeseries-v1 cadence=8 ring=16 shards=1\n"),
            std::string::npos);
  EXPECT_NE(text.find("series,agg,scope,stride_cycles,t,v\n"),
            std::string::npos);
  EXPECT_NE(text.find("test.csv,max,shard_topology,8,8,5\n"),
            std::string::npos);
}

}  // namespace
}  // namespace nbclos::obs
