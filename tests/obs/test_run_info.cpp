/// \file test_run_info.cpp
/// \brief RunInfo build manifest: populated fields, JSON embedding, and
///        the --version summary line.  RunInfo is NOT gated by
///        NBCLOS_OBS, so these assertions hold in both configurations.
#include "nbclos/obs/run_info.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "nbclos/obs/metrics.hpp"
#include "nbclos/util/json.hpp"

namespace nbclos::obs {
namespace {

TEST(ObsRunInfo, BuildIdentityIsPopulated) {
  const auto info = RunInfo::current();
  EXPECT_FALSE(info.version.empty());
  EXPECT_FALSE(info.git_sha.empty());
  EXPECT_FALSE(info.compiler.empty());
  EXPECT_EQ(info.obs_enabled, kEnabled);
  EXPECT_GE(info.hardware_concurrency, 1U);
  // Run facts start zeroed; the harness fills them per run.
  EXPECT_EQ(info.seed, 0U);
  EXPECT_EQ(info.threads, 0U);
  EXPECT_EQ(info.wall_seconds, 0.0);
}

TEST(ObsRunInfo, WritesManifestJson) {
  auto info = RunInfo::current();
  info.seed = 42;
  info.threads = 8;
  info.wall_seconds = 1.5;
  std::ostringstream out;
  JsonWriter json(out, 0);
  json.begin_object();
  json.key("manifest");
  info.write_json(json);
  json.end_object();
  EXPECT_TRUE(json.complete());
  const std::string text = out.str();
  EXPECT_NE(text.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(text.find("\"compiler\""), std::string::npos);
  EXPECT_NE(text.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(text.find("\"threads\":8"), std::string::npos);
  EXPECT_NE(text.find("\"wall_seconds\":1.5"), std::string::npos);
}

TEST(ObsRunInfo, SummaryMentionsVersionAndSha) {
  const auto info = RunInfo::current();
  const auto line = info.summary();
  EXPECT_NE(line.find(info.version), std::string::npos);
  EXPECT_NE(line.find(info.git_sha), std::string::npos);
  EXPECT_NE(line.find(info.compiler), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos) << "summary must be one line";
}

}  // namespace
}  // namespace nbclos::obs
