/// \file test_sim_invariance.cpp
/// \brief The observability contract that matters most: instrumentation
///        reads engine state but never feeds back, so simulation results
///        are bit-identical whether obs is recording, paused, tracing,
///        or compiled out entirely (this file passes in all builds).
#include <gtest/gtest.h>

#include <algorithm>

#include "nbclos/obs/metrics.hpp"
#include "nbclos/obs/trace.hpp"
#include "nbclos/sim/engine.hpp"

namespace nbclos::sim {
namespace {

SimResult run_once() {
  constexpr std::uint32_t kN = 2;
  constexpr std::uint32_t kR = 4;
  const FoldedClos ftree(FtreeParams{kN, kN * kN, kR});
  const auto net = build_network(ftree);
  const auto traffic = TrafficPattern::uniform(ftree.leaf_count());
  FtreeOracle oracle(ftree, UplinkPolicy::kDModK);
  SimConfig config;
  config.injection_rate = 0.7;
  config.warmup_cycles = 200;
  config.measure_cycles = 2000;
  config.seed = 13;
  PacketSim sim(net, oracle, traffic, config);
  return sim.run();
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.offered_load, b.offered_load);
  EXPECT_EQ(a.accepted_throughput, b.accepted_throughput);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.p999_latency, b.p999_latency);
  EXPECT_EQ(a.injected_packets, b.injected_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.mean_switch_queue_depth, b.mean_switch_queue_depth);
  EXPECT_EQ(a.min_flow_throughput, b.min_flow_throughput);
  EXPECT_EQ(a.max_flow_throughput, b.max_flow_throughput);
}

TEST(ObsSimInvariance, RecordingVsPausedIsBitIdentical) {
  obs::set_enabled(true);
  const auto recording = run_once();
  obs::set_enabled(false);
  const auto paused = run_once();
  obs::set_enabled(true);
  expect_identical(recording, paused);
}

TEST(ObsSimInvariance, ActiveTraceSessionIsBitIdentical) {
  const auto baseline = run_once();
  obs::TraceSession::start();
  const auto traced = run_once();
  obs::TraceSession::stop();
  expect_identical(baseline, traced);
  if constexpr (obs::kEnabled) {
    EXPECT_GT(obs::TraceSession::event_count(), 0U)
        << "sim.run span should have been recorded";
  }
}

TEST(ObsSimInvariance, LinkUtilizationReportIsConsistent) {
  constexpr std::uint32_t kN = 2;
  constexpr std::uint32_t kR = 4;
  const FoldedClos ftree(FtreeParams{kN, kN * kN, kR});
  const auto net = build_network(ftree);
  const auto traffic = TrafficPattern::uniform(ftree.leaf_count());
  FtreeOracle oracle(ftree, UplinkPolicy::kDModK);
  SimConfig config;
  config.injection_rate = 0.5;
  config.warmup_cycles = 100;
  config.measure_cycles = 1000;
  config.seed = 5;
  PacketSim sim(net, oracle, traffic, config);
  const auto result = sim.run();
  ASSERT_GT(result.delivered_packets, 0U);

  const auto util = sim.link_utilization();
  ASSERT_EQ(util.busy_fraction.size(), net.channel_count());
  ASSERT_EQ(sim.link_busy_flits().size(), net.channel_count());
  double max_seen = 0.0;
  double sum = 0.0;
  for (const double frac : util.busy_fraction) {
    EXPECT_GE(frac, 0.0);
    EXPECT_LE(frac, 1.0);
    max_seen = std::max(max_seen, frac);
    sum += frac;
  }
  EXPECT_DOUBLE_EQ(util.max, max_seen);
  EXPECT_NEAR(util.mean, sum / static_cast<double>(util.busy_fraction.size()),
              1e-12);
  EXPECT_EQ(util.busy_fraction[util.max_channel], util.max);
  EXPECT_GT(util.max, 0.0) << "traffic flowed, some link must have been busy";
}

}  // namespace
}  // namespace nbclos::sim
