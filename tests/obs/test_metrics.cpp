/// \file test_metrics.cpp
/// \brief MetricsRegistry: counters, gauges, histograms, snapshots, and
///        cross-thread recording.  Every test also compiles (and passes)
///        against the NBCLOS_OBS=OFF stubs; tests that assert recorded
///        values skip themselves in that configuration.
#include "nbclos/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "nbclos/util/thread_pool.hpp"

namespace nbclos::obs {
namespace {

TEST(ObsMetrics, RuntimeSwitchDefaultsToCompiledState) {
  if constexpr (kEnabled) {
    EXPECT_TRUE(enabled());
  } else {
    EXPECT_FALSE(enabled());
    set_enabled(true);  // stub: must stay off and stay a no-op
    EXPECT_FALSE(enabled());
  }
}

TEST(ObsMetrics, CounterAccumulatesAcrossPoolThreads) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  auto& counter = metrics().counter("test.counter.pool");
  counter.reset();
  ThreadPool pool(8);
  for (int task = 0; task < 64; ++task) {
    pool.submit([&counter] {
      for (int i = 0; i < 100; ++i) counter.add(1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.value(), 6400U);
  counter.reset();
  EXPECT_EQ(counter.value(), 0U);
}

TEST(ObsMetrics, GaugeTracksValueAndHighWaterMark) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  auto& gauge = metrics().gauge("test.gauge.basic");
  gauge.reset();
  gauge.set(5);
  gauge.add(3);
  EXPECT_EQ(gauge.value(), 8);
  EXPECT_EQ(gauge.max(), 8);
  gauge.add(-6);
  EXPECT_EQ(gauge.value(), 2);
  EXPECT_EQ(gauge.max(), 8);  // high-water mark survives the drop
}

TEST(ObsMetrics, GaugeOccupancyAcrossPoolThreads) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  auto& gauge = metrics().gauge("test.gauge.occupancy");
  gauge.reset();
  ThreadPool pool(4);
  for (int task = 0; task < 200; ++task) {
    pool.submit([&gauge] {
      gauge.add(1);
      gauge.add(-1);
    });
  }
  pool.wait_idle();
  EXPECT_EQ(gauge.value(), 0);  // every add is balanced by a sub
  EXPECT_GE(gauge.max(), 1);
  EXPECT_LE(gauge.max(), 4);  // never more than the worker count
}

TEST(ObsMetrics, HistogramMergesShardsOnSnapshot) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  auto& hist = metrics().histogram("test.hist.sharded", 1000);
  hist.reset();
  ThreadPool pool(8);
  // 8 x 125 = 1000 samples of 0..999 spread over worker threads.
  pool.parallel_for(0, 1000, [&hist](std::size_t i) {
    hist.record(static_cast<std::uint64_t>(i));
  });
  pool.wait_idle();
  const auto merged = hist.merged();
  EXPECT_EQ(merged.count(), 1000U);
  EXPECT_NEAR(merged.quantile(0.5), 500.0,
              static_cast<double>(merged.bucket_width()));
}

TEST(ObsMetrics, SnapshotReportsEveryKindSortedByName) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  metrics().counter("test.snap.counter").reset();
  metrics().counter("test.snap.counter").add(7);
  metrics().gauge("test.snap.gauge").reset();
  metrics().gauge("test.snap.gauge").set(-3);
  auto& hist = metrics().histogram("test.snap.hist", 100);
  hist.reset();
  for (std::uint64_t v = 0; v <= 100; ++v) hist.record(v);

  const auto samples = metrics().snapshot();
  EXPECT_TRUE(std::is_sorted(
      samples.begin(), samples.end(),
      [](const MetricSample& a, const MetricSample& b) {
        return a.name < b.name;
      }));
  const auto find = [&samples](const std::string& name) {
    const auto it =
        std::find_if(samples.begin(), samples.end(),
                     [&name](const MetricSample& s) { return s.name == name; });
    EXPECT_NE(it, samples.end()) << name;
    return *it;
  };
  const auto counter = find("test.snap.counter");
  EXPECT_EQ(counter.kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(counter.count, 7U);
  const auto gauge = find("test.snap.gauge");
  EXPECT_EQ(gauge.kind, MetricSample::Kind::kGauge);
  EXPECT_EQ(gauge.gauge, -3);
  const auto histogram = find("test.snap.hist");
  EXPECT_EQ(histogram.kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(histogram.count, 101U);
  EXPECT_EQ(histogram.p50, 50.0);
}

TEST(ObsMetrics, HandlesStayValidAndStableAcrossLookups) {
  auto& first = metrics().counter("test.handle.stable");
  auto& second = metrics().counter("test.handle.stable");
  EXPECT_EQ(&first, &second);
  auto& h1 = metrics().histogram("test.handle.hist", 100);
  auto& h2 = metrics().histogram("test.handle.hist", 100);
  EXPECT_EQ(&h1, &h2);
}

TEST(ObsMetrics, PausedRecordingIsDropped) {
  if constexpr (!kEnabled) GTEST_SKIP() << "obs compiled out";
  auto& counter = metrics().counter("test.paused.counter");
  counter.reset();
  set_enabled(false);
  counter.add(100);
  EXPECT_EQ(counter.value(), 0U);
  set_enabled(true);
  counter.add(1);
  EXPECT_EQ(counter.value(), 1U);
}

TEST(ObsMetrics, OffBuildStubsReturnEmpty) {
  if constexpr (kEnabled) GTEST_SKIP() << "obs compiled in";
  auto& counter = metrics().counter("test.off.counter");
  counter.add(5);
  EXPECT_EQ(counter.value(), 0U);
  EXPECT_TRUE(metrics().snapshot().empty());
}

}  // namespace
}  // namespace nbclos::obs
