/// Golden bit-identity contract of the sharded engine.
///
/// ShardedSim's determinism claim is cross-engine and cross-shard-count:
/// for any pure ShardRouter, PacketSim (counter injection, same router
/// via ShardRouterOracle) and ShardedSim at 1, 2, 4, and 8 shards must
/// produce the *same SimResult in every field* — integers equal, doubles
/// bit-identical — including under a mid-run fault schedule.  These
/// tests are what licenses the million-terminal benches to validate a
/// multi-shard run against a single shard instead of a serial rerun.
#include <gtest/gtest.h>

#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/core/multilevel.hpp"
#include "nbclos/obs/flight_recorder.hpp"
#include "nbclos/sim/engine.hpp"
#include "nbclos/sim/shard_router.hpp"
#include "nbclos/sim/sharded.hpp"
#include "nbclos/topology/network.hpp"

namespace nbclos {
namespace {

using namespace nbclos::sim;

void expect_identical(const SimResult& a, const SimResult& b,
                      const char* label) {
  EXPECT_EQ(a.offered_load, b.offered_load) << label;
  EXPECT_EQ(a.accepted_throughput, b.accepted_throughput) << label;
  EXPECT_EQ(a.mean_latency, b.mean_latency) << label;
  EXPECT_EQ(a.p50_latency, b.p50_latency) << label;
  EXPECT_EQ(a.p99_latency, b.p99_latency) << label;
  EXPECT_EQ(a.p999_latency, b.p999_latency) << label;
  EXPECT_EQ(a.latency_bucket_width, b.latency_bucket_width) << label;
  EXPECT_EQ(a.injected_packets, b.injected_packets) << label;
  EXPECT_EQ(a.delivered_packets, b.delivered_packets) << label;
  EXPECT_EQ(a.dropped_packets, b.dropped_packets) << label;
  EXPECT_EQ(a.mean_switch_queue_depth, b.mean_switch_queue_depth) << label;
  EXPECT_EQ(a.min_flow_throughput, b.min_flow_throughput) << label;
  EXPECT_EQ(a.max_flow_throughput, b.max_flow_throughput) << label;
}

SimConfig sharded_config(double rate) {
  SimConfig config;
  config.injection_rate = rate;
  config.warmup_cycles = 400;
  config.measure_cycles = 1600;
  config.queue_capacity = 8;
  config.seed = 20260809;
  config.counter_injection = true;
  return config;
}

/// PacketSim reference run with the identical pure router.
SimResult reference_run(const Network& net, const ShardRouter& router,
                        const TrafficPattern& traffic, const SimConfig& config,
                        fault::DegradedView* degraded = nullptr,
                        std::vector<fault::FaultEvent> events = {}) {
  ShardRouterOracle oracle(router);
  PacketSim sim(net, oracle, traffic, config, degraded, std::move(events));
  return sim.run();
}

TEST(ShardedSim, BitIdenticalToPacketSimOnFtreeAtEveryShardCount) {
  const FoldedClos ft(FtreeParams{4, 16, 8});
  const Network net = build_network(ft);
  const FtreeDmodkRouter router(ft);
  const auto traffic = TrafficPattern::permutation(
      shift_permutation(ft.leaf_count(), 5), ft.leaf_count());
  for (const double rate : {0.2, 0.8}) {
    const auto config = sharded_config(rate);
    const auto expect = reference_run(net, router, traffic, config);
    for (const std::uint32_t shards : {1U, 2U, 4U, 8U}) {
      ShardedSim sim(net, router, traffic, config, shards);
      ASSERT_EQ(sim.shard_count(), shards);
      const auto got = sim.run();
      expect_identical(got, expect,
                       (std::string("ftree shards=") + std::to_string(shards) +
                        " rate=" + std::to_string(rate))
                           .c_str());
    }
  }
}

TEST(ShardedSim, BitIdenticalToPacketSimOnKaryTrees) {
  for (const auto& [k, h] : {std::pair<std::uint32_t, std::uint32_t>{3, 3},
                             std::pair<std::uint32_t, std::uint32_t>{4, 3}}) {
    const Network net = build_kary_ntree(k, h);
    const KaryDmodkRouter router(net, k, h);
    const auto terminals = static_cast<std::uint32_t>(net.terminals().size());
    const auto traffic = TrafficPattern::permutation(
        shift_permutation(terminals, 7), terminals);
    const auto config = sharded_config(0.5);
    const auto expect = reference_run(net, router, traffic, config);
    for (const std::uint32_t shards : {1U, 2U, 4U, 8U}) {
      ShardedSim sim(net, router, traffic, config, shards);
      const auto got = sim.run();
      expect_identical(got, expect,
                       (std::to_string(k) + "-ary shards=" +
                        std::to_string(shards))
                           .c_str());
    }
  }
}

TEST(ShardedSim, BitIdenticalUnderAFaultSchedule) {
  const FoldedClos ft(FtreeParams{4, 16, 8});
  const Network net = build_network(ft);
  const FtreeDmodkRouter router(ft);
  const auto traffic = TrafficPattern::permutation(
      shift_permutation(ft.leaf_count(), 5), ft.leaf_count());
  const auto config = sharded_config(0.6);
  // Kill one top switch mid-warmup and one up-link mid-measurement, then
  // recover the switch: exercises purges in both flying and queued state.
  const std::vector<fault::FaultEvent> events = {
      {200, fault::FaultAction::kFailVertex,
       FtreeNetworkMap{ft.params()}.top(TopId{1})},
      {900, fault::FaultAction::kFailChannel,
       ft.up_link(BottomId{3}, TopId{0}).value},
      {1300, fault::FaultAction::kRecoverVertex,
       FtreeNetworkMap{ft.params()}.top(TopId{1})},
  };
  fault::DegradedView reference_view(net);
  const auto expect = reference_run(net, router, traffic, config,
                                    &reference_view, events);
  EXPECT_GT(expect.dropped_packets, 0U);  // the schedule must actually bite
  const fault::DegradedView pristine(net);
  for (const std::uint32_t shards : {1U, 2U, 4U, 8U}) {
    ShardedSim sim(net, router, traffic, config, shards, &pristine, events);
    const auto got = sim.run();
    expect_identical(got, expect,
                     ("faulted shards=" + std::to_string(shards)).c_str());
  }
}

TEST(ShardedSim, BitIdenticalToPacketSimOnMultiLevelFabric) {
  // The recursive Theorem 3 fabric through the pure RecursiveShardRouter:
  // the golden contract extends beyond the formulaic tree builders to
  // the paper's §IV construction.
  const MultiLevelFabric fabric(2, 3);  // 24 ports
  const auto& net = fabric.network();
  const RecursiveShardRouter router(fabric);
  const auto traffic = TrafficPattern::permutation(
      shift_permutation(fabric.port_count(), 5), fabric.port_count());
  const auto config = sharded_config(0.6);
  const auto expect = reference_run(net, router, traffic, config);
  EXPECT_GT(expect.delivered_packets, 0U);
  for (const std::uint32_t shards : {1U, 2U, 4U, 8U}) {
    ShardedSim sim(net, router, traffic, config, shards);
    const auto got = sim.run();
    expect_identical(got, expect,
                     ("multilevel shards=" + std::to_string(shards)).c_str());
  }
}

TEST(ShardedSim, UniformTrafficIsShardCountInvariant) {
  const Network net = build_kary_ntree(3, 3);
  const KaryDmodkRouter router(net, 3, 3);
  const auto traffic = TrafficPattern::uniform(27);
  const auto config = sharded_config(0.7);
  // Uniform destinations draw from the per-(cycle, terminal) counter
  // stream, so the pattern itself must be shard-count invariant too.
  const auto expect = reference_run(net, router, traffic, config);
  for (const std::uint32_t shards : {1U, 3U, 8U}) {
    ShardedSim sim(net, router, traffic, config, shards);
    expect_identical(sim.run(), expect,
                     ("uniform shards=" + std::to_string(shards)).c_str());
  }
}

TEST(ShardedSim, ConservesPacketsAndCountsCrossShardTraffic) {
  const FoldedClos ft(FtreeParams{4, 16, 8});
  const Network net = build_network(ft);
  const FtreeDmodkRouter router(ft);
  const auto traffic = TrafficPattern::permutation(
      shift_permutation(ft.leaf_count(), 5), ft.leaf_count());
  const auto config = sharded_config(0.8);

  ShardedSim single(net, router, traffic, config, 1);
  const auto single_result = single.run();
  // One shard has no mailboxes to cross.
  EXPECT_EQ(single.telemetry().cross_shard_flits, 0U);
  EXPECT_EQ(single_result.injected_packets,
            single_result.delivered_packets + single_result.dropped_packets +
                single.telemetry().remaining_packets);

  ShardedSim quad(net, router, traffic, config, 4);
  const auto quad_result = quad.run();
  // A 4-shard cut of a folded-Clos necessarily routes traffic across
  // shard boundaries, and conservation must close exactly.
  EXPECT_GT(quad.telemetry().cross_shard_flits, 0U);
  EXPECT_EQ(quad_result.injected_packets,
            quad_result.delivered_packets + quad_result.dropped_packets +
                quad.telemetry().remaining_packets);
  // Remaining in-system packets are part of the bit-identity contract
  // too (same end state, only partitioned differently).
  EXPECT_EQ(single.telemetry().remaining_packets,
            quad.telemetry().remaining_packets);
  EXPECT_GT(quad.arena_bytes(), 0U);
}

TEST(ShardedSim, LoadSweepShardedMatchesSingleShardSweep) {
  const Network net = build_kary_ntree(3, 3);
  const KaryDmodkRouter router(net, 3, 3);
  const auto traffic = TrafficPattern::permutation(shift_permutation(27, 4), 27);
  SimConfig base = sharded_config(0.1);
  const std::vector<double> rates = {0.2, 0.6, 1.0};
  const auto one = load_sweep_sharded(net, router, traffic, base, rates, 1);
  const auto four = load_sweep_sharded(net, router, traffic, base, rates, 4);
  ASSERT_EQ(one.size(), rates.size());
  ASSERT_EQ(four.size(), rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    expect_identical(four[i], one[i],
                     ("sweep rate=" + std::to_string(rates[i])).c_str());
  }
}

TEST(ShardedSim, MergedTimeseriesBitIdenticalAcrossShardCounts) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  const FoldedClos ft(FtreeParams{4, 16, 8});
  const Network net = build_network(ft);
  const FtreeDmodkRouter router(ft);
  const auto traffic = TrafficPattern::permutation(
      shift_permutation(ft.leaf_count(), 5), ft.leaf_count());
  auto config = sharded_config(0.8);
  config.record_timeseries = true;
  config.record_cadence = 32;
  config.record_ring_capacity = 16;  // small ring: downsampling engages
  // The invariant subset of merged(), as comparable values.
  const auto invariant = [](const obs::FlightRecorder& recorder) {
    std::vector<obs::MergedSeries> out;
    for (auto& series : recorder.merged()) {
      if (series.scope == obs::SeriesScope::kInvariant) {
        out.push_back(std::move(series));
      }
    }
    return out;
  };
  ShardRouterOracle oracle(router);
  PacketSim serial(net, oracle, traffic, config);
  const auto golden_result = serial.run();
  const auto golden = invariant(serial.recorder());
  ASSERT_GE(golden.size(), 6U);
  ASSERT_FALSE(golden[0].points.empty());
  for (const std::uint32_t shards : {1U, 2U, 4U, 8U}) {
    ShardedSim sim(net, router, traffic, config, shards);
    const auto got_result = sim.run();
    expect_identical(got_result, golden_result,
                     ("timeseries shards=" + std::to_string(shards)).c_str());
    const auto got = invariant(sim.recorder());
    ASSERT_EQ(got.size(), golden.size());
    for (std::size_t i = 0; i < golden.size(); ++i) {
      SCOPED_TRACE("series=" + golden[i].name +
                   " shards=" + std::to_string(shards));
      EXPECT_EQ(got[i].name, golden[i].name);
      EXPECT_EQ(got[i].stride_cycles, golden[i].stride_cycles);
      EXPECT_EQ(got[i].points, golden[i].points);
    }
  }
}

TEST(ShardedSim, RunIsSingleShot) {
  const Network net = build_kary_ntree(2, 2);
  const KaryDmodkRouter router(net, 2, 2);
  const auto traffic = TrafficPattern::uniform(4);
  SimConfig config = sharded_config(0.5);
  config.warmup_cycles = 10;
  config.measure_cycles = 20;
  ShardedSim sim(net, router, traffic, config, 2);
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), precondition_error);
}

TEST(ShardedSim, RejectsMismatchedInputs) {
  const Network net = build_kary_ntree(2, 2);
  const KaryDmodkRouter router(net, 2, 2);
  const auto traffic = TrafficPattern::uniform(4);
  SimConfig config = sharded_config(0.5);
  // Fault events without a degraded view are rejected as in PacketSim.
  EXPECT_THROW(ShardedSim(net, router, traffic, config, 2, nullptr,
                          {{0, fault::FaultAction::kFailChannel, 0}}),
               precondition_error);
  const auto wrong_traffic = TrafficPattern::uniform(5);
  EXPECT_THROW(ShardedSim(net, router, wrong_traffic, config, 2),
               precondition_error);
}

}  // namespace
}  // namespace nbclos
