/// \file test_sweep_parallel.cpp
/// \brief Thread-count independence of the parallel sweep drivers.
///
/// The OracleFactory overloads of load_sweep / find_saturation_load give
/// every run a private oracle seeded by (base seed, phase tag, run
/// index), so the only thing a bigger pool changes is wall clock.  These
/// tests pin that: serial, 1, 2, and 8 threads must agree field for
/// field, with and without a degraded view.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/fault/failure_model.hpp"
#include "nbclos/fault/fault_oracle.hpp"
#include "nbclos/fault/sweep.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"

namespace {

using namespace nbclos;
using namespace nbclos::sim;

void expect_identical(const std::vector<SimResult>& a,
                      const std::vector<SimResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].offered_load, b[i].offered_load);
    EXPECT_EQ(a[i].accepted_throughput, b[i].accepted_throughput);
    EXPECT_EQ(a[i].mean_latency, b[i].mean_latency);
    EXPECT_EQ(a[i].p50_latency, b[i].p50_latency);
    EXPECT_EQ(a[i].p99_latency, b[i].p99_latency);
    EXPECT_EQ(a[i].p999_latency, b[i].p999_latency);
    EXPECT_EQ(a[i].injected_packets, b[i].injected_packets);
    EXPECT_EQ(a[i].delivered_packets, b[i].delivered_packets);
    EXPECT_EQ(a[i].dropped_packets, b[i].dropped_packets);
    EXPECT_EQ(a[i].mean_switch_queue_depth, b[i].mean_switch_queue_depth);
    EXPECT_EQ(a[i].min_flow_throughput, b[i].min_flow_throughput);
    EXPECT_EQ(a[i].max_flow_throughput, b[i].max_flow_throughput);
  }
}

class ParallelSweep : public ::testing::Test {
 protected:
  ParallelSweep()
      : ft(FtreeParams{4, 16, 8}), net(build_network(ft)), yuan(ft),
        table(RoutingTable::materialize(yuan)),
        traffic(TrafficPattern::permutation(
            shift_permutation(ft.leaf_count(), 5), ft.leaf_count())) {
    config.warmup_cycles = 200;
    config.measure_cycles = 800;
    config.seed = 321;
  }

  [[nodiscard]] OracleFactory random_factory() const {
    return [this](std::uint64_t run_seed, fault::DegradedView*) {
      return std::make_unique<FtreeOracle>(ft, UplinkPolicy::kRandom, nullptr,
                                           run_seed);
    };
  }

  FoldedClos ft;
  Network net;
  YuanNonblockingRouting yuan;
  RoutingTable table;
  TrafficPattern traffic;
  SimConfig config;
  std::vector<double> rates{0.2, 0.4, 0.6, 0.8, 1.0};
};

TEST_F(ParallelSweep, LoadSweepMatchesSerialAtAnyThreadCount) {
  const auto factory = random_factory();
  const auto serial =
      load_sweep(net, factory, traffic, config, rates, nullptr);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    const auto parallel =
        load_sweep(net, factory, traffic, config, rates, &pool);
    expect_identical(serial, parallel);
  }
}

TEST_F(ParallelSweep, LoadSweepWithFaultsMatchesSerial) {
  fault::DegradedView view(net);
  fault::FailureModel model(net);
  model.inject_random_uplink_failures(ft, 6, 55);
  model.apply_static(view);
  const std::vector<fault::FaultEvent> events{
      {400, fault::FaultAction::kFailChannel,
       ft.up_link(BottomId{1}, TopId{2}).value},
  };
  // A fault-aware factory: each run captures its run-private view copy.
  const OracleFactory factory = [this](std::uint64_t,
                                       fault::DegradedView* degraded) {
    return std::make_unique<fault::FaultTolerantOracle>(
        ft, *degraded, UplinkPolicy::kTable, &table);
  };
  const auto serial =
      load_sweep(net, factory, traffic, config, rates, nullptr, &view, events);
  ThreadPool pool(4);
  const auto parallel =
      load_sweep(net, factory, traffic, config, rates, &pool, &view, events);
  expect_identical(serial, parallel);
}

TEST_F(ParallelSweep, SaturationSearchMatchesSerialAtAnyThreadCount) {
  const auto factory = random_factory();
  const double serial =
      find_saturation_load(net, factory, traffic, config, 5, nullptr);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(serial,
              find_saturation_load(net, factory, traffic, config, 5, &pool));
  }
}

TEST_F(ParallelSweep, LegacySerialOverloadRestoresDegradedView) {
  fault::DegradedView view(net);
  // d-mod-k keys on dst mod m: terminal 0 -> 5 crosses bottom 0 via top 5,
  // so this uplink carries traffic and its death must drop packets.
  const auto dead = ft.up_link(BottomId{0}, TopId{5}).value;
  const std::vector<fault::FaultEvent> events{
      {300, fault::FaultAction::kFailChannel, dead},
  };
  FtreeOracle oracle(ft, UplinkPolicy::kDModK);
  const auto results =
      load_sweep(net, oracle, traffic, config, {0.5, 0.5}, &view, events);
  // The event killed `dead` mid-run, but the caller's view must come back
  // in its entry state, and both runs must have seen identical faults.
  EXPECT_TRUE(view.channel_alive(dead));
  EXPECT_EQ(results[0].dropped_packets, results[1].dropped_packets);
  EXPECT_GT(results[0].dropped_packets, 0u);
}

TEST_F(ParallelSweep, FaultThroughputSweepIsThreadCountIndependent) {
  SimConfig sim_config = config;
  sim_config.injection_rate = 0.9;
  const std::vector<std::uint32_t> levels{0, 8, 32};
  const auto serial = analysis::run_fault_throughput_sweep(
      ft, net, table, traffic, sim_config, levels, 97, nullptr);
  ThreadPool pool(4);
  const auto parallel = analysis::run_fault_throughput_sweep(
      ft, net, table, traffic, sim_config, levels, 97, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].failures, parallel[i].failures);
    EXPECT_EQ(serial[i].reroutes, parallel[i].reroutes);
    EXPECT_EQ(serial[i].sim.accepted_throughput,
              parallel[i].sim.accepted_throughput);
    EXPECT_EQ(serial[i].sim.mean_latency, parallel[i].sim.mean_latency);
    EXPECT_EQ(serial[i].sim.delivered_packets,
              parallel[i].sim.delivered_packets);
  }
  // Pristine level delivers at full offered load; heavy damage degrades.
  EXPECT_GT(serial[0].sim.accepted_throughput, 0.85);
}

}  // namespace
