#include "nbclos/sim/oracle.hpp"

#include <gtest/gtest.h>

#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos::sim {
namespace {

struct OracleFixture : ::testing::Test {
  FoldedClos ft{FtreeParams{2, 4, 5}};
  Network net = build_network(ft);
  FtreeNetworkMap map{ft.params()};
  std::vector<std::uint32_t> depths =
      std::vector<std::uint32_t>(net.channel_count(), 0);

  Packet make_packet(std::uint32_t src, std::uint32_t dst) {
    Packet p;
    p.src_terminal = src;
    p.dst_terminal = dst;
    return p;
  }
};

TEST_F(OracleFixture, TerminalAlwaysInjectsUp) {
  FtreeOracle oracle(ft, UplinkPolicy::kRandom);
  const SimView view(net, depths);
  const auto ch = oracle.next_channel(view, 3, make_packet(3, 9));
  EXPECT_EQ(ch, ft.leaf_up_link(LeafId{3}).value);
}

TEST_F(OracleFixture, BottomSwitchDeliversLocalTraffic) {
  FtreeOracle oracle(ft, UplinkPolicy::kRandom);
  const SimView view(net, depths);
  // Packet for leaf 1 sitting at bottom switch 0 (leaf 1's switch).
  const auto ch =
      oracle.next_channel(view, map.bottom(BottomId{0}), make_packet(5, 1));
  EXPECT_EQ(ch, ft.leaf_down_link(LeafId{1}).value);
}

TEST_F(OracleFixture, TopSwitchDescendsTowardDestination) {
  FtreeOracle oracle(ft, UplinkPolicy::kRandom);
  const SimView view(net, depths);
  const auto ch =
      oracle.next_channel(view, map.top(TopId{2}), make_packet(0, 9));
  EXPECT_EQ(ch, ft.down_link(TopId{2}, ft.switch_of(LeafId{9})).value);
}

TEST_F(OracleFixture, TablePolicyFollowsRoutingTable) {
  const YuanNonblockingRouting routing(ft);
  const auto table = RoutingTable::materialize(routing);
  FtreeOracle oracle(ft, UplinkPolicy::kTable, &table);
  const SimView view(net, depths);
  const SDPair sd{LeafId{1}, LeafId{8}};
  const auto expected_top = routing.route(sd).top;
  const auto ch = oracle.next_channel(view, map.bottom(BottomId{0}),
                                      make_packet(1, 8));
  EXPECT_EQ(ch, ft.up_link(BottomId{0}, expected_top).value);
}

TEST_F(OracleFixture, TablePolicyRequiresTable) {
  EXPECT_THROW(FtreeOracle(ft, UplinkPolicy::kTable, nullptr),
               precondition_error);
}

TEST_F(OracleFixture, DModKPolicyComputesOnTheFly) {
  FtreeOracle oracle(ft, UplinkPolicy::kDModK);
  const SimView view(net, depths);
  const auto ch = oracle.next_channel(view, map.bottom(BottomId{0}),
                                      make_packet(0, 7));
  EXPECT_EQ(ch, ft.up_link(BottomId{0}, TopId{7 % 4}).value);
}

TEST_F(OracleFixture, RandomPolicyStaysAmongUplinks) {
  FtreeOracle oracle(ft, UplinkPolicy::kRandom, nullptr, 5);
  const SimView view(net, depths);
  for (int i = 0; i < 100; ++i) {
    const auto ch = oracle.next_channel(view, map.bottom(BottomId{1}),
                                        make_packet(2, 8));
    const auto& channel = net.channel(ch);
    EXPECT_EQ(channel.src, map.bottom(BottomId{1}));
    EXPECT_TRUE(map.is_top(channel.dst));
  }
}

TEST_F(OracleFixture, LeastQueuePolicyAvoidsBusyUplinks) {
  FtreeOracle oracle(ft, UplinkPolicy::kLeastQueue);
  // Load every uplink of switch 0 except top 3.
  for (std::uint32_t t = 0; t < ft.m(); ++t) {
    depths[ft.up_link(BottomId{0}, TopId{t}).value] = (t == 3) ? 0U : 5U;
  }
  const SimView view(net, depths);
  const auto ch = oracle.next_channel(view, map.bottom(BottomId{0}),
                                      make_packet(0, 9));
  EXPECT_EQ(ch, ft.up_link(BottomId{0}, TopId{3}).value);
}

TEST_F(OracleFixture, LeastQueueBreaksTiesTowardLowestIndex) {
  FtreeOracle oracle(ft, UplinkPolicy::kLeastQueue);
  const SimView view(net, depths);  // all zero
  const auto ch = oracle.next_channel(view, map.bottom(BottomId{2}),
                                      make_packet(4, 0));
  EXPECT_EQ(ch, ft.up_link(BottomId{2}, TopId{0}).value);
}

TEST_F(OracleFixture, NamesReflectPolicy) {
  EXPECT_EQ(FtreeOracle(ft, UplinkPolicy::kRandom).name(), "ftree-random");
  EXPECT_EQ(FtreeOracle(ft, UplinkPolicy::kLeastQueue).name(),
            "ftree-least-queue");
  EXPECT_EQ(FtreeOracle(ft, UplinkPolicy::kDModK).name(), "ftree-dmodk");
}

TEST(CrossbarOracleTest, RoutesThroughTheSingleSwitch) {
  const auto net = build_crossbar(4);
  std::vector<std::uint32_t> depths(net.channel_count(), 0);
  const SimView view(net, depths);
  CrossbarOracle oracle(4);
  Packet p;
  p.src_terminal = 1;
  p.dst_terminal = 3;
  EXPECT_EQ(oracle.next_channel(view, 1, p), 1U);       // up
  EXPECT_EQ(oracle.next_channel(view, 4, p), 4U + 3U);  // down to 3
}

}  // namespace
}  // namespace nbclos::sim
