#include "nbclos/sim/traffic.hpp"

#include <gtest/gtest.h>

#include <map>

#include "nbclos/util/check.hpp"

namespace nbclos::sim {
namespace {

TEST(Traffic, PermutationFixesDestinations) {
  const Permutation pattern{{LeafId{0}, LeafId{3}}, {LeafId{2}, LeafId{1}}};
  const auto traffic = TrafficPattern::permutation(pattern, 4);
  Xoshiro256 rng(1);
  EXPECT_EQ(traffic.destination(0, rng), 3U);
  EXPECT_EQ(traffic.destination(2, rng), 1U);
  EXPECT_EQ(traffic.destination(1, rng), std::nullopt);  // silent source
  EXPECT_EQ(traffic.destination(3, rng), std::nullopt);
  EXPECT_EQ(traffic.name(), "permutation");
}

TEST(Traffic, PermutationValidatesPattern) {
  EXPECT_THROW((void)TrafficPattern::permutation({{LeafId{0}, LeafId{9}}}, 4),
               precondition_error);
}

TEST(Traffic, UniformNeverTargetsSelf) {
  const auto traffic = TrafficPattern::uniform(5);
  Xoshiro256 rng(2);
  for (std::uint32_t src = 0; src < 5; ++src) {
    for (int i = 0; i < 200; ++i) {
      const auto dst = traffic.destination(src, rng);
      ASSERT_TRUE(dst.has_value());
      EXPECT_NE(*dst, src);
      EXPECT_LT(*dst, 5U);
    }
  }
}

TEST(Traffic, UniformIsRoughlyBalanced) {
  const auto traffic = TrafficPattern::uniform(4);
  Xoshiro256 rng(3);
  std::map<std::uint32_t, int> counts;
  for (int i = 0; i < 30'000; ++i) {
    ++counts[*traffic.destination(0, rng)];
  }
  for (const auto& [dst, count] : counts) {
    EXPECT_NEAR(count, 10'000, 500) << "dst " << dst;
  }
}

TEST(Traffic, HotspotBiasesTowardTarget) {
  const auto traffic = TrafficPattern::hotspot(10, 7, 0.5);
  Xoshiro256 rng(4);
  int hot = 0;
  constexpr int kDraws = 10'000;
  for (int i = 0; i < kDraws; ++i) {
    if (*traffic.destination(0, rng) == 7U) ++hot;
  }
  // P(hot) = 0.5 + 0.5 * (1/9) ~ 0.5556.
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, 0.5556, 0.03);
}

TEST(Traffic, HotspotTerminalItselfDrawsUniform) {
  const auto traffic = TrafficPattern::hotspot(4, 2, 1.0);
  Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto dst = *traffic.destination(2, rng);
    EXPECT_NE(dst, 2U);
  }
}

TEST(Traffic, RejectsBadParameters) {
  EXPECT_THROW((void)TrafficPattern::uniform(1), precondition_error);
  EXPECT_THROW((void)TrafficPattern::hotspot(4, 5, 0.1), precondition_error);
  EXPECT_THROW((void)TrafficPattern::hotspot(4, 1, 1.5), precondition_error);
  const auto traffic = TrafficPattern::uniform(4);
  Xoshiro256 rng(6);
  EXPECT_THROW((void)traffic.destination(4, rng), precondition_error);
}

}  // namespace
}  // namespace nbclos::sim
