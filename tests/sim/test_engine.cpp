#include "nbclos/sim/engine.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos::sim {
namespace {

SimConfig quick_config(double rate) {
  SimConfig config;
  config.injection_rate = rate;
  config.warmup_cycles = 500;
  config.measure_cycles = 3000;
  config.seed = 99;
  return config;
}

TEST(Engine, CrossbarDeliversFullLoadOnPermutation) {
  // An ideal crossbar sustains 1.0 flits/cycle/terminal on any
  // permutation — the reference the paper compares fat-trees against.
  const auto net = build_crossbar(8);
  CrossbarOracle oracle(8);
  const auto pattern = shift_permutation(8, 3);
  const auto traffic = TrafficPattern::permutation(pattern, 8);
  PacketSim sim(net, oracle, traffic, quick_config(1.0));
  const auto result = sim.run();
  EXPECT_GT(result.accepted_throughput, 0.97);
  EXPECT_FALSE(result.saturated());
  EXPECT_GT(result.delivered_packets, 0U);
}

TEST(Engine, NonblockingFtreeSustainsFullPermutationLoad) {
  // ftree(2+4, 5) with the Theorem 3 table routing: permutations are
  // contention-free, so throughput tracks offered load up to 1.0.
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const auto net = build_network(ft);
  const YuanNonblockingRouting routing(ft);
  const auto table = RoutingTable::materialize(routing);
  FtreeOracle oracle(ft, UplinkPolicy::kTable, &table);
  const auto pattern = shift_permutation(ft.leaf_count(), 3);
  const auto traffic = TrafficPattern::permutation(pattern, ft.leaf_count());
  PacketSim sim(net, oracle, traffic, quick_config(1.0));
  const auto result = sim.run();
  EXPECT_GT(result.accepted_throughput, 0.97);
  EXPECT_FALSE(result.saturated());
}

/// Adversarial full permutation for D-mod-K on ftree(4+4, 8): source
/// (v, k) targets destination ((v+1+k) mod 8, v mod 4).  All four
/// destinations of switch v share local number v mod 4, so D-mod-K routes
/// the whole switch through the single uplink v -> top (v mod 4); the
/// per-destination-switch fan-in, by contrast, arrives on four distinct
/// tops, so only uplinks serialize.  Every source and destination is used
/// exactly once (switches v and v+4 share the local number but hit
/// disjoint destination-switch windows).
Permutation dmodk_uplink_funnel() {
  Permutation pattern;
  for (std::uint32_t v = 0; v < 8; ++v) {
    for (std::uint32_t k = 0; k < 4; ++k) {
      pattern.push_back(
          {LeafId{v * 4 + k}, LeafId{((v + 1 + k) % 8) * 4 + (v % 4)}});
    }
  }
  validate_permutation(pattern, 32);
  return pattern;
}

TEST(Engine, DModKSaturatesBelowFullLoadOnAdversarialPermutation) {
  // The motivation result (refs [5][7]): a "nonblocking-in-theory"
  // fat-tree with static D-mod-K routing cannot sustain permutation
  // traffic that collides on uplinks.  Four flows share each uplink, so
  // accepted throughput caps near 1/4 flit/cycle/terminal.
  const FoldedClos ft(FtreeParams{4, 4, 8});
  const auto net = build_network(ft);
  FtreeOracle oracle(ft, UplinkPolicy::kDModK);
  const auto traffic = TrafficPattern::permutation(dmodk_uplink_funnel(), 32);
  PacketSim sim(net, oracle, traffic, quick_config(0.9));
  const auto result = sim.run();
  EXPECT_TRUE(result.saturated());
  EXPECT_LT(result.accepted_throughput, 0.4);
  EXPECT_GT(result.accepted_throughput, 0.15);
}

TEST(Engine, ThroughputScalesWithOfferedLoadBelowSaturation) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const auto net = build_network(ft);
  const YuanNonblockingRouting routing(ft);
  const auto table = RoutingTable::materialize(routing);
  FtreeOracle oracle(ft, UplinkPolicy::kTable, &table);
  const auto pattern = shift_permutation(ft.leaf_count(), 2);
  const auto traffic = TrafficPattern::permutation(pattern, ft.leaf_count());
  const auto results =
      load_sweep(net, oracle, traffic, quick_config(0.0), {0.2, 0.5, 0.8});
  ASSERT_EQ(results.size(), 3U);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_NEAR(results[i].accepted_throughput, results[i].offered_load,
                0.05);
  }
  EXPECT_LT(results[0].mean_latency, results[2].mean_latency + 10.0);
}

TEST(Engine, LatencyIsAtLeastTheHopSerializationFloor) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const auto net = build_network(ft);
  const YuanNonblockingRouting routing(ft);
  const auto table = RoutingTable::materialize(routing);
  FtreeOracle oracle(ft, UplinkPolicy::kTable, &table);
  const auto pattern = shift_permutation(ft.leaf_count(), ft.n());
  const auto traffic = TrafficPattern::permutation(pattern, ft.leaf_count());
  PacketSim sim(net, oracle, traffic, quick_config(0.05));
  const auto result = sim.run();
  // Cross paths take 4 hops of 1 flit each; cheapest possible is 4.
  EXPECT_GE(result.mean_latency, 4.0);
  EXPECT_GE(result.p99_latency, result.mean_latency);
}

TEST(Engine, PacketSizeMultipliesSerializationDelay) {
  const auto net = build_crossbar(4);
  CrossbarOracle oracle(4);
  const auto traffic =
      TrafficPattern::permutation(shift_permutation(4, 1), 4);
  auto config = quick_config(0.1);
  PacketSim sim1(net, oracle, traffic, config);
  const auto small = sim1.run();
  config.packet_size = 4;
  PacketSim sim4(net, oracle, traffic, config);
  const auto large = sim4.run();
  EXPECT_GT(large.mean_latency, small.mean_latency + 3.0);
}

TEST(Engine, ZeroLoadDeliversNothing) {
  const auto net = build_crossbar(4);
  CrossbarOracle oracle(4);
  const auto traffic = TrafficPattern::uniform(4);
  PacketSim sim(net, oracle, traffic, quick_config(0.0));
  const auto result = sim.run();
  EXPECT_EQ(result.injected_packets, 0U);
  EXPECT_EQ(result.delivered_packets, 0U);
  EXPECT_EQ(result.accepted_throughput, 0.0);
}

TEST(Engine, SilentSourcesInjectNothing) {
  const auto net = build_crossbar(4);
  CrossbarOracle oracle(4);
  // Only terminal 0 sends.
  const auto traffic =
      TrafficPattern::permutation({{LeafId{0}, LeafId{2}}}, 4);
  PacketSim sim(net, oracle, traffic, quick_config(1.0));
  const auto result = sim.run();
  // Throughput normalizes by all 4 terminals: ~0.25.
  EXPECT_NEAR(result.accepted_throughput, 0.25, 0.02);
}

TEST(Engine, DeterministicAcrossRuns) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const auto net = build_network(ft);
  FtreeOracle oracle_a(ft, UplinkPolicy::kRandom, nullptr, 7);
  FtreeOracle oracle_b(ft, UplinkPolicy::kRandom, nullptr, 7);
  const auto traffic = TrafficPattern::uniform(ft.leaf_count());
  PacketSim sim_a(net, oracle_a, traffic, quick_config(0.4));
  PacketSim sim_b(net, oracle_b, traffic, quick_config(0.4));
  const auto a = sim_a.run();
  const auto b = sim_b.run();
  EXPECT_EQ(a.injected_packets, b.injected_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_DOUBLE_EQ(a.mean_latency, b.mean_latency);
}

TEST(Engine, AdaptiveOracleBeatsDModKOnFunnel) {
  // Local adaptivity steers around the single-uplink funnel that kills
  // D-mod-K — the qualitative claim of §V realized at packet level.
  const FoldedClos ft(FtreeParams{4, 4, 8});
  const auto net = build_network(ft);
  const auto traffic = TrafficPattern::permutation(dmodk_uplink_funnel(), 32);
  FtreeOracle dmodk(ft, UplinkPolicy::kDModK);
  FtreeOracle adaptive(ft, UplinkPolicy::kLeastQueue);
  PacketSim sim_d(net, dmodk, traffic, quick_config(0.8));
  PacketSim sim_a(net, adaptive, traffic, quick_config(0.8));
  const auto d = sim_d.run();
  const auto a = sim_a.run();
  EXPECT_GT(a.accepted_throughput, d.accepted_throughput + 0.1);
}

TEST(Engine, FairnessExtremesAreTightWhenContentionFree) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const auto net = build_network(ft);
  const YuanNonblockingRouting routing(ft);
  const auto table = RoutingTable::materialize(routing);
  FtreeOracle oracle(ft, UplinkPolicy::kTable, &table);
  const auto pattern = shift_permutation(ft.leaf_count(), 3);
  const auto traffic = TrafficPattern::permutation(pattern, ft.leaf_count());
  PacketSim sim(net, oracle, traffic, quick_config(0.8));
  const auto result = sim.run();
  // Every flow gets its fair share; min and max stay close to offered.
  EXPECT_GT(result.min_flow_throughput, 0.7);
  EXPECT_LT(result.max_flow_throughput - result.min_flow_throughput, 0.12);
}

TEST(Engine, FairnessGapWidensUnderDModKFunnel) {
  const FoldedClos ft(FtreeParams{4, 4, 8});
  const auto net = build_network(ft);
  FtreeOracle oracle(ft, UplinkPolicy::kDModK);
  const auto traffic = TrafficPattern::permutation(dmodk_uplink_funnel(), 32);
  PacketSim sim(net, oracle, traffic, quick_config(0.9));
  const auto result = sim.run();
  // Four flows share each uplink: everyone is throttled to ~1/4.
  EXPECT_LT(result.max_flow_throughput, 0.5);
  EXPECT_GT(result.max_flow_throughput, result.min_flow_throughput - 1e-9);
}

TEST(Engine, SaturationFinderReportsFullLoadForCrossbar) {
  const auto net = build_crossbar(8);
  CrossbarOracle oracle(8);
  const auto traffic =
      TrafficPattern::permutation(shift_permutation(8, 3), 8);
  SimConfig config = quick_config(0.0);
  config.measure_cycles = 2000;
  EXPECT_DOUBLE_EQ(find_saturation_load(net, oracle, traffic, config), 1.0);
}

TEST(Engine, SaturationFinderLocatesDModKCollapse) {
  // On the uplink funnel, D-mod-K (m = n) caps near 0.25; the bisection
  // must land in that neighbourhood.
  const FoldedClos ft(FtreeParams{4, 4, 8});
  const auto net = build_network(ft);
  FtreeOracle oracle(ft, UplinkPolicy::kDModK);
  const auto traffic = TrafficPattern::permutation(dmodk_uplink_funnel(), 32);
  SimConfig config = quick_config(0.0);
  config.measure_cycles = 2000;
  const double sat = find_saturation_load(net, oracle, traffic, config, 6);
  EXPECT_GT(sat, 0.10);
  EXPECT_LT(sat, 0.40);
}

TEST(Engine, RejectsBadConfig) {
  const auto net = build_crossbar(4);
  CrossbarOracle oracle(4);
  const auto traffic = TrafficPattern::uniform(4);
  SimConfig config;
  config.injection_rate = 1.5;
  EXPECT_THROW(PacketSim(net, oracle, traffic, config), precondition_error);
  config.injection_rate = 0.5;
  config.packet_size = 0;
  EXPECT_THROW(PacketSim(net, oracle, traffic, config), precondition_error);
  config.packet_size = 1;
  config.queue_capacity = 0;
  EXPECT_THROW(PacketSim(net, oracle, traffic, config), precondition_error);
}

TEST(Engine, TrafficSizeMustMatchNetwork) {
  const auto net = build_crossbar(4);
  CrossbarOracle oracle(4);
  const auto traffic = TrafficPattern::uniform(5);
  EXPECT_THROW(PacketSim(net, oracle, traffic, SimConfig{}),
               precondition_error);
}

}  // namespace
}  // namespace nbclos::sim
