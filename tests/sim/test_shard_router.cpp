/// Path-equivalence tests for the pure shard routers: the O(1)
/// arithmetic routers must walk exactly the paths of the table/index
/// routers they replace, and the per-shard CSR route views must
/// partition the full cache without losing a hop.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "nbclos/core/multilevel.hpp"
#include "nbclos/fault/degraded_view.hpp"
#include "nbclos/routing/kary_updown.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/shard_router.hpp"
#include "nbclos/sim/sharded.hpp"
#include "nbclos/topology/network.hpp"

namespace nbclos {
namespace {

using sim::FtreeDmodkRouter;
using sim::KaryDmodkRouter;
using sim::ShardPlan;

/// Walk `router` hop by hop from terminal `src` until the packet reaches
/// terminal `dst`; returns the channel ids in path order.
std::vector<std::uint32_t> walk(const Network& net,
                                const sim::ShardRouter& router,
                                std::uint32_t src, std::uint32_t dst,
                                std::uint32_t max_hops) {
  sim::Packet packet;
  packet.src_terminal = src;
  packet.dst_terminal = dst;
  std::vector<std::uint32_t> path;
  std::uint32_t at = src;
  while (at != dst) {
    if (path.size() >= max_hops) {
      ADD_FAILURE() << "no convergence " << src << "->" << dst;
      return path;
    }
    const auto c = router.next_channel(at, packet);
    EXPECT_LT(c, net.channel_count());
    EXPECT_EQ(net.channel_src(c), at) << src << "->" << dst;
    path.push_back(c);
    at = net.channel_dst(c);
  }
  return path;
}

void expect_kary_paths_match(std::uint32_t k, std::uint32_t h) {
  const Network net = build_kary_ntree(k, h);
  const KaryTreeRouter table(net, k, h);
  const KaryDmodkRouter arith(net, k, h);
  const auto terminals = static_cast<std::uint32_t>(net.terminals().size());
  for (std::uint32_t s = 0; s < terminals; ++s) {
    for (std::uint32_t d = 0; d < terminals; ++d) {
      if (s == d) continue;
      const auto expect = table.route(SDPair{LeafId{s}, LeafId{d}});
      const auto got = walk(net, arith, s, d, 2 * h + 2);
      ASSERT_EQ(got.size(), expect.size()) << s << "->" << d;
      for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(got[i], expect[i]) << s << "->" << d << " hop " << i;
      }
    }
  }
}

TEST(KaryDmodkRouter, MatchesTableRouterOnEveryPair3ary3tree) {
  expect_kary_paths_match(3, 3);
}

TEST(KaryDmodkRouter, MatchesTableRouterOnEveryPair4ary2tree) {
  expect_kary_paths_match(4, 2);
}

TEST(KaryDmodkRouter, MatchesTableRouterOnEveryPair2ary4tree) {
  expect_kary_paths_match(2, 4);
}

TEST(KaryDmodkRouter, RejectsMismatchedNetwork) {
  const Network net = build_kary_ntree(3, 2);
  EXPECT_THROW(KaryDmodkRouter(net, 3, 3), precondition_error);
  EXPECT_THROW(KaryDmodkRouter(net, 2, 2), precondition_error);
}

TEST(FtreeDmodkRouter, WalksValidMinimalPaths) {
  const FoldedClos ft(FtreeParams{3, 9, 5});
  const Network net = build_network(ft);
  const FtreeDmodkRouter router(ft);
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      if (s == d) continue;
      const auto path = walk(net, router, s, d, FoldedClos::kMaxPathLinks);
      const bool direct =
          ft.switch_of(LeafId{s}) == ft.switch_of(LeafId{d});
      EXPECT_EQ(path.size(), direct ? 2U : 4U) << s << "->" << d;
      // d-mod-k: cross-pair uplink choice is keyed by the destination.
      if (!direct) {
        EXPECT_EQ(path[1],
                  ft.up_link(ft.switch_of(LeafId{s}), TopId{d % ft.m()}).value);
      }
    }
  }
}

TEST(RecursiveShardRouter, MatchesFabricRouteOnEveryPair) {
  for (const std::uint32_t levels : {2U, 3U}) {
    const MultiLevelFabric fabric(2, levels);
    const auto& net = fabric.network();
    const sim::RecursiveShardRouter router(fabric);
    EXPECT_EQ(router.name(), "multilevel-thm3");
    for (std::uint32_t s = 0; s < fabric.port_count(); ++s) {
      for (std::uint32_t d = 0; d < fabric.port_count(); ++d) {
        if (s == d) continue;
        const auto expect = fabric.route(SDPair{LeafId{s}, LeafId{d}});
        const auto got = walk(net, router, s, d, 32);
        ASSERT_EQ(got.size(), expect.size())
            << "levels=" << levels << " " << s << "->" << d;
        for (std::size_t i = 0; i < expect.size(); ++i) {
          EXPECT_EQ(got[i], expect[i])
              << "levels=" << levels << " " << s << "->" << d << " hop " << i;
        }
      }
    }
  }
}

TEST(RecursiveShardRouter, SelfPairHasNoRoute) {
  const MultiLevelFabric fabric(2, 2);
  const sim::RecursiveShardRouter router(fabric);
  sim::Packet p;
  p.src_terminal = 3;
  p.dst_terminal = 3;
  EXPECT_EQ(router.next_channel(3, p), fault::kNoRoute);
}

TEST(ShardRouteView, ViewsPartitionTheFullCache) {
  const FoldedClos ft(FtreeParams{2, 4, 3});
  const Network net = build_network(ft);
  const YuanNonblockingRouting yuan(ft);
  const routing::ChannelRouteCache cache(net, [&](SDPair sd) {
    LinkId run[FoldedClos::kMaxPathLinks];
    const auto count = ft.links_into(yuan.route(sd), run);
    std::vector<std::uint32_t> channels;
    for (std::uint32_t i = 0; i < count; ++i) channels.push_back(run[i].value);
    return channels;
  });

  for (const std::uint32_t shards : {1U, 2U, 3U, 4U}) {
    const auto plan = ShardPlan::build(net, shards);
    std::vector<routing::ShardRouteView> views;
    std::size_t entries = 0;
    for (std::uint32_t s = 0; s < plan.shard_count; ++s) {
      views.emplace_back(cache, plan.vertex_begin, s);
      entries += views.back().entry_count();
    }
    // Every (pair, hop) entry lands in exactly one shard's view...
    EXPECT_EQ(entries, cache.entry_count());
    // ...and concatenating the per-shard subruns in path order
    // reproduces the full run.
    const auto T = cache.terminal_count();
    for (std::uint32_t s = 0; s < T; ++s) {
      for (std::uint32_t d = 0; d < T; ++d) {
        for (const auto c : cache.channels(s, d)) {
          const auto owner = plan.shard_of_vertex(net.channel_src(c));
          const auto sub = views[owner].channels(s, d);
          EXPECT_NE(std::find(sub.begin(), sub.end(), c), sub.end());
          // The view answers the same next hop as the full cache.
          EXPECT_EQ(views[owner].next_channel_from(net.channel_src(c), s, d),
                    cache.next_channel_from(net.channel_src(c), s, d));
        }
      }
    }
  }
}

TEST(CachedShardRouter, MatchesCacheWithAndWithoutViews) {
  const FoldedClos ft(FtreeParams{2, 4, 3});
  const Network net = build_network(ft);
  const YuanNonblockingRouting yuan(ft);
  const routing::ChannelRouteCache cache(net, [&](SDPair sd) {
    LinkId run[FoldedClos::kMaxPathLinks];
    const auto count = ft.links_into(yuan.route(sd), run);
    std::vector<std::uint32_t> channels;
    for (std::uint32_t i = 0; i < count; ++i) channels.push_back(run[i].value);
    return channels;
  });
  sim::CachedShardRouter plain(cache);
  sim::CachedShardRouter viewed(cache);
  const auto plan = ShardPlan::build(net, 3);
  viewed.attach_views(plan.vertex_begin);
  ASSERT_EQ(viewed.views().size(), plan.shard_count);
  const auto T = cache.terminal_count();
  for (std::uint32_t s = 0; s < T; ++s) {
    for (std::uint32_t d = 0; d < T; ++d) {
      if (s == d) continue;
      std::uint32_t at = s;
      sim::Packet packet;
      packet.src_terminal = s;
      packet.dst_terminal = d;
      while (at != d) {
        const auto c = plain.next_channel(at, packet);
        EXPECT_EQ(viewed.next_channel(at, packet), c);
        at = net.channel_dst(c);
      }
    }
  }
}

TEST(ShardPlan, PartitionIsContiguousBalancedAndComplete) {
  const Network net = build_kary_ntree(3, 3);
  for (const std::uint32_t shards : {1U, 2U, 4U, 8U}) {
    const auto plan = ShardPlan::build(net, shards);
    ASSERT_EQ(plan.shard_count, shards);
    ASSERT_EQ(plan.vertex_begin.size(), shards + 1);
    EXPECT_EQ(plan.vertex_begin.front(), 0U);
    EXPECT_EQ(plan.vertex_begin.back(), net.vertex_count());
    for (std::uint32_t s = 0; s < shards; ++s) {
      EXPECT_LE(plan.vertex_begin[s], plan.vertex_begin[s + 1]);
    }
    // Every channel is owned by the shard of its source vertex, with
    // local ids ascending in global id order.
    std::size_t covered = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
      std::uint32_t prev_local = 0;
      for (std::size_t i = 0; i < plan.shard_channels[s].size(); ++i) {
        const auto c = plan.shard_channels[s][i];
        EXPECT_EQ(plan.channel_owner[c], s);
        EXPECT_EQ(plan.channel_local[c], i);
        const auto src = net.channel_src(c);
        EXPECT_GE(src, plan.vertex_begin[s]);
        EXPECT_LT(src, plan.vertex_begin[s + 1]);
        if (i > 0) {
          EXPECT_GT(plan.channel_local[c], prev_local);
        }
        prev_local = plan.channel_local[c];
      }
      covered += plan.shard_channels[s].size();
    }
    EXPECT_EQ(covered, net.channel_count());
  }
  // Requested counts beyond the vertex count are clamped, never fatal.
  const auto clamped = ShardPlan::build(build_crossbar(2), 64);
  EXPECT_LE(clamped.shard_count, build_crossbar(2).vertex_count());
}

TEST(ShardPlan, CutIsOutChannelBalancedOnTreeAndRecursiveFabrics) {
  // The plan cuts the contiguous vertex range at equal out-channel
  // prefix shares, so no shard's owned-channel count can drift from the
  // ideal C/S share by more than one vertex's out-degree — on the k-ary
  // tree AND on the recursive multi-level construction, whose out-degree
  // profile (leaves of degree 1 next to bottom switches of degree
  // n + n^2) is exactly the skew that a vertex-count cut gets wrong.
  const MultiLevelFabric fabric(2, 3);
  const Network kary = build_kary_ntree(3, 3);
  for (const Network* net : {&kary, &fabric.network()}) {
    std::uint64_t max_degree = 0;
    for (std::uint32_t v = 0; v < net->vertex_count(); ++v) {
      max_degree = std::max<std::uint64_t>(max_degree,
                                           net->out_channels(v).size());
    }
    for (const std::uint32_t shards : {2U, 4U, 8U}) {
      const auto plan = ShardPlan::build(*net, shards);
      ASSERT_EQ(plan.shard_count, shards);
      EXPECT_EQ(plan.vertex_begin.front(), 0U);
      EXPECT_EQ(plan.vertex_begin.back(), net->vertex_count());
      const double ideal =
          static_cast<double>(net->channel_count()) / shards;
      for (std::uint32_t s = 0; s < shards; ++s) {
        EXPECT_LE(plan.vertex_begin[s], plan.vertex_begin[s + 1]);
        const auto owned =
            static_cast<double>(plan.shard_channels[s].size());
        EXPECT_LE(std::abs(owned - ideal), static_cast<double>(max_degree))
            << "shards=" << shards << " s=" << s;
      }
    }
  }
}

}  // namespace
}  // namespace nbclos
