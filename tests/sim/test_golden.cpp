/// \file test_golden.cpp
/// \brief Bit-reproducibility contract of the overhauled cycle kernel.
///
/// The expected values were captured from the pre-overhaul engine (full
/// per-cycle channel scans, per-channel deques, end-of-run latency sort)
/// on fixed seeds, printed as hexfloats.  The incremental engine —
/// active-channel lists, flat ring queues, streaming histogram, running
/// queue-depth sum — must reproduce every field exactly: integer fields
/// equal, doubles bit-identical, and quantiles in the same histogram
/// bucket (bucket width is 1 cycle at these run lengths, so "same
/// bucket" means exactly equal too).
#include <gtest/gtest.h>

#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/fault/fault_oracle.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"

namespace {

using namespace nbclos;
using namespace nbclos::sim;

struct Golden {
  double offered_load;
  double accepted_throughput;
  double mean_latency;
  double p99_latency;
  std::uint64_t injected_packets;
  std::uint64_t delivered_packets;
  std::uint64_t dropped_packets;
  double mean_switch_queue_depth;
  double min_flow_throughput;
  double max_flow_throughput;
};

SimConfig golden_config(double rate) {
  SimConfig c;
  c.injection_rate = rate;
  c.warmup_cycles = 500;
  c.measure_cycles = 3000;
  c.queue_capacity = 8;
  c.seed = 12345;
  return c;
}

void expect_matches(const SimResult& r, const Golden& g) {
  EXPECT_EQ(r.offered_load, g.offered_load);
  EXPECT_EQ(r.accepted_throughput, g.accepted_throughput);
  EXPECT_EQ(r.mean_latency, g.mean_latency);
  // 3500 total cycles < 4096 histogram buckets, so the bucket width is
  // one cycle and the streaming p99 must equal the old sort-based p99.
  EXPECT_EQ(r.latency_bucket_width, 1.0);
  EXPECT_EQ(r.p99_latency, g.p99_latency);
  EXPECT_EQ(r.injected_packets, g.injected_packets);
  EXPECT_EQ(r.delivered_packets, g.delivered_packets);
  EXPECT_EQ(r.dropped_packets, g.dropped_packets);
  EXPECT_EQ(r.mean_switch_queue_depth, g.mean_switch_queue_depth);
  EXPECT_EQ(r.min_flow_throughput, g.min_flow_throughput);
  EXPECT_EQ(r.max_flow_throughput, g.max_flow_throughput);
}

class GoldenSim : public ::testing::Test {
 protected:
  GoldenSim()
      : ft(FtreeParams{4, 16, 8}), net(build_network(ft)), yuan(ft),
        table(RoutingTable::materialize(yuan)),
        traffic(TrafficPattern::permutation(
            shift_permutation(ft.leaf_count(), 5), ft.leaf_count())) {}

  FoldedClos ft;
  Network net;
  YuanNonblockingRouting yuan;
  RoutingTable table;
  TrafficPattern traffic;
};

TEST_F(GoldenSim, TableRoutingLowLoad) {
  FtreeOracle oracle(ft, UplinkPolicy::kTable, &table);
  PacketSim sim(net, oracle, traffic, golden_config(0.1));
  expect_matches(sim.run(),
                 {0x1.999999999999ap-4, 0x1.9c3ece2a53491p-4, 0x1.4p+2,
                  0x1.4p+2, 11182, 11167, 0, 0x0p+0, 0x1.6f46508dfea28p-4,
                  0x1.d194237fa89e6p-4});
}

TEST_F(GoldenSim, RandomSpreadingHighLoad) {
  FtreeOracle oracle(ft, UplinkPolicy::kRandom, nullptr, 77);
  PacketSim sim(net, oracle, traffic, golden_config(0.7));
  expect_matches(sim.run(),
                 {0x1.6666666666666p-1, 0x1.6713cc1e098ebp-1,
                  0x1.530ce191787fcp+2, 0x1.cp+2, 78424, 78307, 0,
                  0x1.7c39f36899873p-6, 0x1.6098ead65b7a3p-1,
                  0x1.738a94d242e6cp-1});
}

TEST_F(GoldenSim, DModKNearSaturation) {
  FtreeOracle oracle(ft, UplinkPolicy::kDModK);
  PacketSim sim(net, oracle, traffic, golden_config(0.9));
  expect_matches(sim.run(),
                 {0x1.ccccccccccccdp-1, 0x1.ccccccccccccdp-1, 0x1.4p+2,
                  0x1.4p+2, 100769, 100627, 0, 0x0p+0, 0x1.c5cd7b900aec3p-1,
                  0x1.d29a485cd7b9p-1});
}

TEST_F(GoldenSim, FaultTolerantOracleWithMidRunEvents) {
  fault::DegradedView view(net);
  fault::FaultTolerantOracle oracle(ft, view, UplinkPolicy::kTable, &table);
  std::vector<fault::FaultEvent> events{
      {600, fault::FaultAction::kFailChannel,
       ft.up_link(BottomId{0}, TopId{3}).value},
      {600, fault::FaultAction::kFailChannel,
       ft.down_link(TopId{3}, BottomId{0}).value},
      {1200, fault::FaultAction::kFailVertex, 32 + 8 + 5},  // a top switch
      {2000, fault::FaultAction::kRecoverChannel,
       ft.up_link(BottomId{0}, TopId{3}).value},
  };
  PacketSim sim(net, oracle, traffic, golden_config(0.5), &view, events);
  expect_matches(sim.run(),
                 {0x1p-1, 0x1.ffa06d3a06d3ap-2, 0x1.4p+2, 0x1.4p+2, 55805,
                  55727, 0, 0x0p+0, 0x1.ee402bb0cf87ep-2,
                  0x1.08b4395810625p-1});
}

TEST_F(GoldenSim, FaultObliviousOracleDropsAndPurges) {
  // Fault-oblivious routing + mid-run channel/switch death at high load:
  // exercises the drop-on-dead-pick and queue-purge paths.
  fault::DegradedView view(net);
  FtreeOracle oracle(ft, UplinkPolicy::kDModK);
  std::vector<fault::FaultEvent> events{
      {700, fault::FaultAction::kFailChannel,
       ft.up_link(BottomId{2}, TopId{1}).value},
      {900, fault::FaultAction::kFailVertex, 32 + 3},  // a bottom switch
      {1800, fault::FaultAction::kRecoverVertex, 32 + 3},
  };
  PacketSim sim(net, oracle, traffic, golden_config(0.9), &view, events);
  expect_matches(sim.run(),
                 {0x1.ccccccccccccdp-1, 0x1.aa1e098ead65bp-1, 0x1.4p+2,
                  0x1.4p+2, 100769, 94124, 6503, 0x0p+0,
                  0x1.3ced916872b02p-1, 0x1.d1eb851eb851fp-1});
}

TEST_F(GoldenSim, LeastQueueMultiFlitPackets) {
  auto c = golden_config(0.6);
  c.packet_size = 4;
  FtreeOracle oracle(ft, UplinkPolicy::kLeastQueue);
  PacketSim sim(net, oracle, traffic, c);
  expect_matches(sim.run(),
                 {0x1.3333333333333p-1, 0x1.370fb38a94d24p-1,
                  0x1.03ee30800244cp+5, 0x1.0cp+6, 16890, 16727, 0,
                  0x1.c0091a2b3c4cfp-3, 0x1.189374bc6a7fp-1,
                  0x1.5555555555555p-1});
}

TEST(GoldenCrossbar, UniformTraffic) {
  const auto net = build_crossbar(8);
  CrossbarOracle oracle(8);
  const auto traffic = TrafficPattern::uniform(8);
  PacketSim sim(net, oracle, traffic, golden_config(0.5));
  expect_matches(sim.run(),
                 {0x1p-1, 0x1.0057619f0fb39p-1, 0x1.b6e7847a7f722p+1,
                  0x1.8p+2, 13946, 13931, 0, 0x1.b83c131d5acb8p-3,
                  0x1.ef9db22d0e56p-2, 0x1.067c3ece2a535p-1});
}

/// Two runs of the same config must be identical — the simulator owns all
/// of its state, so nothing leaks between constructions.
TEST_F(GoldenSim, RepeatedRunsAreIdentical) {
  const auto run_once = [&] {
    FtreeOracle oracle(ft, UplinkPolicy::kRandom, nullptr, 9);
    PacketSim sim(net, oracle, traffic, golden_config(0.8));
    return sim.run();
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.accepted_throughput, b.accepted_throughput);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.p999_latency, b.p999_latency);
  EXPECT_EQ(a.injected_packets, b.injected_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.mean_switch_queue_depth, b.mean_switch_queue_depth);
}

}  // namespace
