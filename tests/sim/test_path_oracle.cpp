#include "nbclos/sim/path_oracle.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/core/multilevel.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"

namespace nbclos::sim {
namespace {

TEST(PathOracle, FollowsPrecomputedHops) {
  const FoldedClos ft(FtreeParams{2, 4, 3});
  const auto net = build_network(ft);
  const YuanNonblockingRouting routing(ft);
  const auto route = [&](SDPair sd) {
    ChannelPath path;
    for (const auto link : ft.links_of(routing.route(sd))) {
      path.push_back(link.value);
    }
    return path;
  };
  ExplicitPathOracle oracle(net, route, "yuan-paths");
  EXPECT_EQ(oracle.name(), "yuan-paths");
  std::vector<std::uint32_t> depths(net.channel_count(), 0);
  const SimView view(net, depths);

  Packet p;
  p.src_terminal = 0;
  p.dst_terminal = 5;
  // Walk the oracle hop by hop and compare with the direct route.
  const auto expected = route({LeafId{0}, LeafId{5}});
  std::uint32_t at = 0;
  for (const auto want : expected) {
    const auto got = oracle.next_channel(view, at, p);
    EXPECT_EQ(got, want);
    at = net.channel(got).dst;
  }
  EXPECT_EQ(at, 5U);
}

TEST(PathOracle, EntryCountMatchesPairsTimesHops) {
  const auto net = build_crossbar(4);
  const auto route = [](SDPair sd) {
    return ChannelPath{sd.src.value, 4 + sd.dst.value};
  };
  ExplicitPathOracle oracle(net, route);
  // 12 ordered pairs x 2 hops... entries keyed by (vertex, src, dst):
  // distinct per pair per hop = 24.
  EXPECT_EQ(oracle.entry_count(), 24U);
}

TEST(PathOracle, RejectsUnknownPacket) {
  const auto net = build_crossbar(3);
  const auto route = [](SDPair sd) {
    return ChannelPath{sd.src.value, 3 + sd.dst.value};
  };
  ExplicitPathOracle oracle(net, route);
  std::vector<std::uint32_t> depths(net.channel_count(), 0);
  const SimView view(net, depths);
  Packet p;
  p.src_terminal = 0;
  p.dst_terminal = 0;  // self pair never routed
  EXPECT_THROW((void)oracle.next_channel(view, 0, p), precondition_error);
}

TEST(PathOracle, SimulatesMultiLevelFabricAtFullLoad) {
  // End-to-end: the 3-level recursive nonblocking fabric sustains a full
  // permutation at load 1.0 in the packet simulator — the paper's
  // induction claim observed dynamically, not just by audit.
  const MultiLevelFabric fabric(2, 3);  // 24 ports
  const auto& net = fabric.network();
  ExplicitPathOracle oracle(
      net, [&fabric](SDPair sd) { return fabric.route(sd); },
      "multilevel-thm3");
  const auto pattern = shift_permutation(fabric.port_count(), 5);
  const auto traffic =
      TrafficPattern::permutation(pattern, fabric.port_count());
  SimConfig config;
  config.injection_rate = 1.0;
  config.warmup_cycles = 500;
  config.measure_cycles = 3000;
  PacketSim sim(net, oracle, traffic, config);
  const auto result = sim.run();
  EXPECT_GT(result.accepted_throughput, 0.97);
  EXPECT_FALSE(result.saturated());
}

}  // namespace
}  // namespace nbclos::sim
