#include "nbclos/topology/mport_ntree.hpp"

#include <gtest/gtest.h>

namespace nbclos {
namespace {

TEST(MportNtree, SizeFormulasMatchLinEtAl) {
  // FT(m, h): 2(m/2)^h nodes, (2h-1)(m/2)^(h-1) switches.
  const auto ft42 = mport_ntree_size(4, 2);
  EXPECT_EQ(ft42.node_count, 8U);
  EXPECT_EQ(ft42.switch_count, 6U);

  const auto ft20 = mport_ntree_size(20, 2);
  EXPECT_EQ(ft20.node_count, 200U);  // paper Table I: 200 ports
  EXPECT_EQ(ft20.switch_count, 30U);  // paper Table I: 30 switches

  const auto ft30 = mport_ntree_size(30, 2);
  EXPECT_EQ(ft30.node_count, 450U);
  EXPECT_EQ(ft30.switch_count, 45U);

  const auto ft42_2 = mport_ntree_size(42, 2);
  EXPECT_EQ(ft42_2.node_count, 882U);  // paper prints 884 — formula says 882
  EXPECT_EQ(ft42_2.switch_count, 63U);
}

TEST(MportNtree, ThreeLevelSizes) {
  // FT(N, 3) uses O(N^2) switches for O(N^3) ports (paper §IV).
  const auto ft = mport_ntree_size(8, 3);
  EXPECT_EQ(ft.node_count, 2 * 4 * 4 * 4U);
  EXPECT_EQ(ft.switch_count, 5 * 16U);
}

TEST(MportNtree, HeightOneIsASingleSwitch) {
  const auto ft = mport_ntree_size(16, 1);
  EXPECT_EQ(ft.node_count, 16U);
  EXPECT_EQ(ft.switch_count, 1U);
}

TEST(MportNtree, RejectsOddOrTinyRadix) {
  EXPECT_THROW((void)mport_ntree_size(5, 2), precondition_error);
  EXPECT_THROW((void)mport_ntree_size(2, 2), precondition_error);
  EXPECT_THROW((void)mport_ntree_size(8, 0), precondition_error);
}

TEST(Mport2Tree, IsTheExpectedFoldedClos) {
  const auto ft = mport_2tree(8);
  EXPECT_EQ(ft.n(), 4U);
  EXPECT_EQ(ft.m(), 4U);
  EXPECT_EQ(ft.r(), 8U);
  EXPECT_EQ(ft.bottom_radix(), 8U);  // every switch has radix m
  EXPECT_EQ(ft.top_radix(), 8U);
  // Consistency with the closed-form size.
  const auto size = mport_ntree_size(8, 2);
  EXPECT_EQ(ft.leaf_count(), size.node_count);
  EXPECT_EQ(ft.switch_count(), size.switch_count);
}

TEST(Mport2Tree, AgreesWithFormulaAcrossRadixes) {
  for (std::uint32_t m = 4; m <= 64; m += 2) {
    const auto ft = mport_2tree(m);
    const auto size = mport_ntree_size(m, 2);
    EXPECT_EQ(ft.leaf_count(), size.node_count) << "m=" << m;
    EXPECT_EQ(ft.switch_count(), size.switch_count) << "m=" << m;
    EXPECT_EQ(ft.bottom_radix(), m) << "m=" << m;
  }
}

}  // namespace
}  // namespace nbclos
