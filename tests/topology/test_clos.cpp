#include "nbclos/topology/clos.hpp"

#include <gtest/gtest.h>

namespace nbclos {
namespace {

TEST(ThreeStageClos, PortToSwitchMapping) {
  const ThreeStageClos clos(3, 4, 5);
  EXPECT_EQ(clos.port_count(), 15U);
  EXPECT_EQ(clos.input_switch_of(0), 0U);
  EXPECT_EQ(clos.input_switch_of(2), 0U);
  EXPECT_EQ(clos.input_switch_of(3), 1U);
  EXPECT_EQ(clos.output_switch_of(14), 4U);
  if (kDebugChecksEnabled) {
    EXPECT_THROW((void)clos.input_switch_of(15), precondition_error);
  }
}

TEST(ThreeStageClos, LinkIdsAreDistinct) {
  const ThreeStageClos clos(2, 3, 4);
  std::vector<bool> seen(clos.internal_link_count(), false);
  for (std::uint32_t i = 0; i < 4; ++i) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      const auto first = clos.first_stage_link(i, j);
      const auto second = clos.second_stage_link(j, i);
      ASSERT_LT(first, clos.internal_link_count());
      ASSERT_LT(second, clos.internal_link_count());
      EXPECT_FALSE(seen[first]);
      EXPECT_FALSE(seen[second]);
      seen[first] = true;
      seen[second] = true;
    }
  }
  for (const bool b : seen) EXPECT_TRUE(b);
}

TEST(ThreeStageClos, RouteUsesTwoLinks) {
  const ThreeStageClos clos(2, 3, 4);
  const ClosRoute route{{/*in=*/1, /*out=*/6}, /*middle=*/2};
  const auto links = clos.links_of(route);
  ASSERT_EQ(links.size(), 2U);
  EXPECT_EQ(links[0], clos.first_stage_link(0, 2));
  EXPECT_EQ(links[1], clos.second_stage_link(2, 3));
}

TEST(ThreeStageClos, ConflictCountingDetectsSharedLinks) {
  const ThreeStageClos clos(2, 2, 3);
  // Two connections from input switch 0 through middle 0: share the
  // first-stage link.
  const std::vector<ClosRoute> routes{
      {{0, 2}, 0},
      {{1, 4}, 0},
  };
  EXPECT_EQ(clos.conflict_count(routes), 1U);
  // Different middles: no conflicts.
  const std::vector<ClosRoute> disjoint{
      {{0, 2}, 0},
      {{1, 4}, 1},
  };
  EXPECT_EQ(clos.conflict_count(disjoint), 0U);
}

TEST(ThreeStageClos, FoldsOntoEquivalentFtree) {
  // The paper: Clos(n, m, r) is logically equivalent to ftree(n+m, r).
  const ThreeStageClos clos(2, 3, 4);
  const FoldedClos ftree(clos.folded_params());
  // A cross connection folds onto the cross path through the same index.
  const ClosRoute cross{{/*in=*/0, /*out=*/7}, /*middle=*/1};
  const auto path = clos.to_ftree_path(cross, ftree);
  EXPECT_FALSE(path.direct);
  EXPECT_EQ(path.top.value, 1U);
  EXPECT_EQ(path.sd.src.value, 0U);
  EXPECT_EQ(path.sd.dst.value, 7U);
  // A same-switch connection folds to a direct path.
  const ClosRoute local{{/*in=*/0, /*out=*/1}, /*middle=*/0};
  EXPECT_TRUE(clos.to_ftree_path(local, ftree).direct);
}

TEST(ThreeStageClos, FoldedContentionMatchesClosContention) {
  // Conflicting Clos connections map to contending ftree paths and
  // vice versa — the equivalence the paper asserts in §I.
  const ThreeStageClos clos(2, 2, 3);
  const FoldedClos ftree(clos.folded_params());
  const std::vector<ClosRoute> routes{
      {{0, 2}, 0},
      {{1, 4}, 0},  // shares first-stage link 0->middle0
  };
  EXPECT_GT(clos.conflict_count(routes), 0U);
  // Folded: both paths use uplink bottom0 -> top0.
  const auto p1 = clos.to_ftree_path(routes[0], ftree);
  const auto p2 = clos.to_ftree_path(routes[1], ftree);
  const auto links1 = ftree.links_of(p1);
  const auto links2 = ftree.links_of(p2);
  bool shared = false;
  for (const auto a : links1) {
    for (const auto b : links2) {
      if (a == b) shared = true;
    }
  }
  EXPECT_TRUE(shared);
}

TEST(ThreeStageClos, FoldRejectsMismatchedFtree) {
  const ThreeStageClos clos(2, 2, 3);
  const FoldedClos wrong(FtreeParams{2, 3, 3});
  EXPECT_THROW((void)clos.to_ftree_path({{0, 2}, 0}, wrong),
               precondition_error);
}

}  // namespace
}  // namespace nbclos
