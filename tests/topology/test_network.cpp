#include "nbclos/topology/network.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace nbclos {
namespace {

TEST(Network, BuildAndQuery) {
  Network net;
  const auto t0 = net.add_vertex(VertexKind::kTerminal, 0, 0);
  const auto t1 = net.add_vertex(VertexKind::kTerminal, 0, 1);
  const auto sw = net.add_vertex(VertexKind::kSwitch, 1, 0);
  const auto c0 = net.add_channel(t0, sw);
  const auto c1 = net.add_channel(sw, t1);
  net.finalize();
  EXPECT_EQ(net.vertex_count(), 3U);
  EXPECT_EQ(net.channel_count(), 2U);
  ASSERT_EQ(net.out_channels(t0).size(), 1U);
  EXPECT_EQ(net.out_channels(t0)[0], c0);
  ASSERT_EQ(net.in_channels(t1).size(), 1U);
  EXPECT_EQ(net.in_channels(t1)[0], c1);
  EXPECT_EQ(net.find_channel(t0, sw), c0);
  EXPECT_EQ(net.find_channel(t1, sw), std::nullopt);
}

TEST(Network, LifecycleEnforced) {
  Network net;
  const auto a = net.add_vertex(VertexKind::kTerminal, 0, 0);
  const auto b = net.add_vertex(VertexKind::kSwitch, 1, 0);
  EXPECT_THROW((void)net.out_channels(a), precondition_error);
  net.add_channel(a, b);
  net.finalize();
  EXPECT_THROW(net.add_channel(a, b), precondition_error);
  EXPECT_THROW(net.finalize(), precondition_error);
  EXPECT_THROW((void)net.add_vertex(VertexKind::kSwitch, 0, 0),
               precondition_error);
}

TEST(Network, RejectsBadChannels) {
  Network net;
  const auto a = net.add_vertex(VertexKind::kTerminal, 0, 0);
  EXPECT_THROW(net.add_channel(a, a), precondition_error);
  EXPECT_THROW(net.add_channel(a, 5), precondition_error);
  EXPECT_THROW(net.add_channel(7, a), precondition_error);
  // A rejected channel leaves no trace: the graph still finalizes clean.
  const auto b = net.add_vertex(VertexKind::kSwitch, 1, 0);
  net.add_channel(a, b);
  net.finalize();
  EXPECT_EQ(net.channel_count(), 1U);
}

TEST(Network, BadChannelErrorsNameTheEndpoint) {
  Network net;
  const auto a = net.add_vertex(VertexKind::kTerminal, 0, 0);
  try {
    net.add_channel(a, 5);
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("destination vertex 5"),
              std::string::npos)
        << e.what();
  }
  try {
    net.add_channel(9, a);
    FAIL() << "expected precondition_error";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("source vertex 9"),
              std::string::npos)
        << e.what();
  }
}

TEST(Network, FinalizeRejectsEmptyNetwork) {
  Network net;
  EXPECT_THROW(net.finalize(), precondition_error);
}

TEST(Network, FtreeBuilderPreservesLinkIds) {
  const FoldedClos ft(FtreeParams{2, 3, 4});
  const auto net = build_network(ft);
  const FtreeNetworkMap map{ft.params()};
  EXPECT_EQ(net.vertex_count(), ft.leaf_count() + ft.switch_count());
  EXPECT_EQ(net.channel_count(), ft.link_count());
  // Spot-check the contract channel id == LinkId on every family.
  const LeafId leaf{5};
  EXPECT_EQ(net.channel(ft.leaf_up_link(leaf).value).src, map.terminal(leaf));
  EXPECT_EQ(net.channel(ft.leaf_up_link(leaf).value).dst,
            map.bottom(ft.switch_of(leaf)));
  const auto up = ft.up_link(BottomId{1}, TopId{2});
  EXPECT_EQ(net.channel(up.value).src, map.bottom(BottomId{1}));
  EXPECT_EQ(net.channel(up.value).dst, map.top(TopId{2}));
  const auto down = ft.down_link(TopId{0}, BottomId{3});
  EXPECT_EQ(net.channel(down.value).src, map.top(TopId{0}));
  EXPECT_EQ(net.channel(down.value).dst, map.bottom(BottomId{3}));
  const auto leaf_down = ft.leaf_down_link(leaf);
  EXPECT_EQ(net.channel(leaf_down.value).src, map.bottom(ft.switch_of(leaf)));
  EXPECT_EQ(net.channel(leaf_down.value).dst, map.terminal(leaf));
}

TEST(Network, FtreeDegreesMatchRadix) {
  const FoldedClos ft(FtreeParams{3, 4, 5});
  const auto net = build_network(ft);
  const FtreeNetworkMap map{ft.params()};
  for (std::uint32_t b = 0; b < ft.bottom_count(); ++b) {
    // Bottom switch: out = n leaf-down + m up; in = n leaf-up + m down.
    EXPECT_EQ(net.out_channels(map.bottom(BottomId{b})).size(),
              ft.n() + ft.m());
    EXPECT_EQ(net.in_channels(map.bottom(BottomId{b})).size(),
              ft.n() + ft.m());
  }
  for (std::uint32_t t = 0; t < ft.top_count(); ++t) {
    EXPECT_EQ(net.out_channels(map.top(TopId{t})).size(), ft.r());
    EXPECT_EQ(net.in_channels(map.top(TopId{t})).size(), ft.r());
  }
  EXPECT_EQ(net.terminals().size(), ft.leaf_count());
}

TEST(Network, CrossbarShape) {
  const auto net = build_crossbar(6);
  EXPECT_EQ(net.vertex_count(), 7U);
  EXPECT_EQ(net.channel_count(), 12U);
  EXPECT_EQ(net.terminals().size(), 6U);
  // Channel layout contract: terminal t -> switch is channel t.
  for (std::uint32_t t = 0; t < 6; ++t) {
    EXPECT_EQ(net.channel(t).src, t);
    EXPECT_EQ(net.channel(6 + t).dst, t);
  }
}

TEST(Network, KaryNtreeCounts) {
  // k-ary h-tree: k^h terminals, h * k^(h-1) switches.
  const auto net = build_kary_ntree(2, 3);
  EXPECT_EQ(net.terminals().size(), 8U);
  EXPECT_EQ(net.vertex_count(), 8U + 3 * 4U);
  // Channels: 2*k^h terminal links + 2 * (h-1) * k^(h-1) * k inter-level.
  EXPECT_EQ(net.channel_count(), 2 * 8U + 2 * 2 * 4 * 2U);
}

TEST(Network, KaryNtreeAdjacencyIsSymmetricAndLayered) {
  const auto net = build_kary_ntree(3, 2);  // 9 terminals, 2 levels of 3
  for (std::uint32_t c = 0; c < net.channel_count(); ++c) {
    const auto& ch = net.channel(c);
    // Every channel has a reverse partner.
    EXPECT_TRUE(net.find_channel(ch.dst, ch.src).has_value());
    // Channels connect adjacent levels only.
    const auto lsrc = net.vertex(ch.src).level;
    const auto ldst = net.vertex(ch.dst).level;
    EXPECT_EQ(std::max(lsrc, ldst) - std::min(lsrc, ldst), 1U);
  }
}

TEST(Network, KaryNtreeSwitchDegrees) {
  const auto net = build_kary_ntree(2, 3);
  for (std::uint32_t v = 0; v < net.vertex_count(); ++v) {
    if (net.vertex(v).kind != VertexKind::kSwitch) continue;
    const auto level = net.vertex(v).level;  // 1-based for switches
    // level 1 (edge): k terminals + k up = 4; level 2 (middle): k + k = 4;
    // level 3 (top): k down = 2.
    EXPECT_EQ(net.out_channels(v).size(), level == 3U ? 2U : 4U) << v;
    EXPECT_EQ(net.in_channels(v).size(), level == 3U ? 2U : 4U) << v;
  }
}

}  // namespace
}  // namespace nbclos
