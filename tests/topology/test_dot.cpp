#include "nbclos/topology/dot.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "nbclos/util/check.hpp"

namespace nbclos {
namespace {

TEST(Dot, CrossbarExportsMergedGraph) {
  const auto net = build_crossbar(3);
  std::ostringstream os;
  write_dot(os, net);
  const std::string out = os.str();
  EXPECT_NE(out.find("graph \"nbclos\""), std::string::npos);
  // Terminals as boxes with labels, switch as circle.
  EXPECT_NE(out.find("shape=box,label=\"t0\""), std::string::npos);
  EXPECT_NE(out.find("shape=circle,label=\"s1.0\""), std::string::npos);
  // Merged: exactly 3 undirected edges for 6 channels.
  std::size_t edges = 0;
  for (std::size_t pos = out.find(" -- "); pos != std::string::npos;
       pos = out.find(" -- ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, 3U);
}

TEST(Dot, DirectedExportKeepsAllChannels) {
  const auto net = build_crossbar(3);
  std::ostringstream os;
  DotOptions options;
  options.merge_bidirectional = false;
  options.graph_name = "xbar";
  write_dot(os, net, options);
  const std::string out = os.str();
  EXPECT_NE(out.find("digraph \"xbar\""), std::string::npos);
  std::size_t edges = 0;
  for (std::size_t pos = out.find(" -> "); pos != std::string::npos;
       pos = out.find(" -> ", pos + 1)) {
    ++edges;
  }
  EXPECT_EQ(edges, 6U);
}

TEST(Dot, FtreeExportMentionsEveryVertex) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const auto net = build_network(ft);
  std::ostringstream os;
  write_dot(os, net);
  const std::string out = os.str();
  for (std::uint32_t v = 0; v < net.vertex_count(); ++v) {
    EXPECT_NE(out.find("v" + std::to_string(v) + " ["), std::string::npos)
        << "vertex " << v << " missing";
  }
}

TEST(Dot, RejectsUnfinalizedNetwork) {
  Network net;
  net.add_vertex(VertexKind::kTerminal, 0, 0);
  std::ostringstream os;
  EXPECT_THROW(write_dot(os, net), precondition_error);
}

}  // namespace
}  // namespace nbclos
