#include "nbclos/topology/fat_tree.hpp"

#include <gtest/gtest.h>

namespace nbclos {
namespace {

FoldedClos make(std::uint32_t n, std::uint32_t m, std::uint32_t r) {
  return FoldedClos(FtreeParams{n, m, r});
}

TEST(FoldedClos, CountsMatchParameters) {
  const auto ft = make(4, 16, 9);
  EXPECT_EQ(ft.leaf_count(), 36U);
  EXPECT_EQ(ft.bottom_count(), 9U);
  EXPECT_EQ(ft.top_count(), 16U);
  EXPECT_EQ(ft.switch_count(), 25U);
  EXPECT_EQ(ft.bottom_radix(), 20U);
  EXPECT_EQ(ft.top_radix(), 9U);
  EXPECT_EQ(ft.link_count(), 2 * 36U + 2 * 9U * 16U);
}

TEST(FoldedClos, LeafIndexRoundTrips) {
  const auto ft = make(3, 4, 5);
  for (std::uint32_t v = 0; v < 5; ++v) {
    for (std::uint32_t k = 0; k < 3; ++k) {
      const auto leaf = ft.leaf(BottomId{v}, k);
      EXPECT_EQ(ft.switch_of(leaf).value, v);
      EXPECT_EQ(ft.local_of(leaf), k);
    }
  }
}

TEST(FoldedClos, RejectsInvalidParameters) {
  EXPECT_THROW(make(0, 1, 2), precondition_error);
  EXPECT_THROW(make(1, 0, 2), precondition_error);
  EXPECT_THROW(make(1, 1, 1), precondition_error);
}

TEST(FoldedClos, RejectsOutOfRangeIds) {
  // Per-pair accessor bounds checks are NBCLOS_DEBUG_CHECK: present in
  // Debug builds, compiled out of Release hot paths.
  if (!kDebugChecksEnabled) {
    GTEST_SKIP() << "debug checks compiled out (NDEBUG build)";
  }
  const auto ft = make(2, 3, 4);
  EXPECT_THROW((void)ft.leaf(BottomId{4}, 0), precondition_error);
  EXPECT_THROW((void)ft.leaf(BottomId{0}, 2), precondition_error);
  EXPECT_THROW((void)ft.switch_of(LeafId{8}), precondition_error);
  EXPECT_THROW((void)ft.up_link(BottomId{0}, TopId{3}), precondition_error);
  EXPECT_THROW((void)ft.down_link(TopId{0}, BottomId{4}), precondition_error);
}

TEST(FoldedClos, StructuralValidation) {
  for (const auto& [n, m, r] :
       {std::tuple{1U, 1U, 2U}, {2U, 4U, 5U}, {3U, 9U, 12U}, {4U, 16U, 20U}}) {
    EXPECT_NO_THROW(make(n, m, r).validate()) << n << " " << m << " " << r;
  }
}

TEST(FoldedClos, LinkKindsPartitionIdSpace) {
  const auto ft = make(2, 3, 4);
  std::size_t counts[4] = {0, 0, 0, 0};
  for (std::uint32_t l = 0; l < ft.link_count(); ++l) {
    ++counts[static_cast<std::size_t>(ft.kind_of(LinkId{l}))];
  }
  EXPECT_EQ(counts[static_cast<std::size_t>(LinkKind::kLeafUp)], 8U);
  EXPECT_EQ(counts[static_cast<std::size_t>(LinkKind::kUp)], 12U);
  EXPECT_EQ(counts[static_cast<std::size_t>(LinkKind::kDown)], 12U);
  EXPECT_EQ(counts[static_cast<std::size_t>(LinkKind::kLeafDown)], 8U);
}

TEST(FoldedClos, CrossPathLinksAreOrdered) {
  const auto ft = make(2, 3, 4);
  const SDPair sd{ft.leaf(BottomId{0}, 1), ft.leaf(BottomId{2}, 0)};
  const auto path = ft.cross_path(sd, TopId{1});
  const auto links = ft.links_of(path);
  ASSERT_EQ(links.size(), 4U);
  EXPECT_EQ(links[0], ft.leaf_up_link(sd.src));
  EXPECT_EQ(links[1], ft.up_link(BottomId{0}, TopId{1}));
  EXPECT_EQ(links[2], ft.down_link(TopId{1}, BottomId{2}));
  EXPECT_EQ(links[3], ft.leaf_down_link(sd.dst));
}

TEST(FoldedClos, DirectPathSkipsTopLevel) {
  const auto ft = make(3, 2, 3);
  const SDPair sd{ft.leaf(BottomId{1}, 0), ft.leaf(BottomId{1}, 2)};
  EXPECT_FALSE(ft.needs_top(sd));
  const auto path = ft.direct_path(sd);
  const auto links = ft.links_of(path);
  ASSERT_EQ(links.size(), 2U);
  EXPECT_EQ(ft.kind_of(links[0]), LinkKind::kLeafUp);
  EXPECT_EQ(ft.kind_of(links[1]), LinkKind::kLeafDown);
}

TEST(FoldedClos, PathConstructorsEnforcePreconditions) {
  if (!kDebugChecksEnabled) {
    GTEST_SKIP() << "debug checks compiled out (NDEBUG build)";
  }
  const auto ft = make(2, 2, 3);
  const SDPair cross{ft.leaf(BottomId{0}, 0), ft.leaf(BottomId{1}, 0)};
  const SDPair local{ft.leaf(BottomId{0}, 0), ft.leaf(BottomId{0}, 1)};
  EXPECT_THROW((void)ft.direct_path(cross), precondition_error);
  EXPECT_THROW((void)ft.cross_path(local, TopId{0}), precondition_error);
  EXPECT_THROW((void)ft.cross_path(cross, TopId{2}), precondition_error);
  const SDPair self{ft.leaf(BottomId{0}, 0), ft.leaf(BottomId{0}, 0)};
  EXPECT_THROW((void)ft.direct_path(self), precondition_error);
}

TEST(FoldedClos, CrossPairCountFormula) {
  const auto ft = make(3, 9, 7);
  // r(r-1)n^2 = 7*6*9 = 378.
  EXPECT_EQ(ft.cross_pair_count(), 378U);
}

class FoldedClosParamTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(FoldedClosParamTest, ValidateAndCountInvariants) {
  const auto [n, m, r] = GetParam();
  const auto ft = make(n, m, r);
  ft.validate();
  EXPECT_EQ(ft.leaf_count(), n * r);
  EXPECT_EQ(ft.cross_pair_count(),
            std::uint64_t{r} * (r - 1) * n * n);
  // Every leaf's up and down links have the right endpoints implied by
  // kind classification.
  for (std::uint32_t leaf = 0; leaf < ft.leaf_count(); ++leaf) {
    EXPECT_EQ(ft.kind_of(ft.leaf_up_link(LeafId{leaf})), LinkKind::kLeafUp);
    EXPECT_EQ(ft.kind_of(ft.leaf_down_link(LeafId{leaf})),
              LinkKind::kLeafDown);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FoldedClosParamTest,
    ::testing::Values(std::tuple{1U, 1U, 2U}, std::tuple{2U, 4U, 6U},
                      std::tuple{3U, 9U, 12U}, std::tuple{4U, 16U, 20U},
                      std::tuple{2U, 7U, 3U}, std::tuple{5U, 25U, 30U}));

}  // namespace
}  // namespace nbclos
