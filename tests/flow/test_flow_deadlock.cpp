/// \file test_flow_deadlock.cpp
/// \brief The deadlock watchdog: a hand-built 4-switch directed ring
///        with clockwise routes is the canonical cyclic channel
///        dependency, and wormhole packets longer than the buffers must
///        wedge on it.  The watchdog has to detect the wedge, stop the
///        run cleanly (no hang), and emit a usable diagnostic.  A folded
///        Clos under the same aggressive configuration must stay
///        deadlock-free — up*/down* routes carry no cyclic dependency.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/flow/engine.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

using flow::Backpressure;
using flow::FlowConfig;
using flow::FlowSim;
using flow::Switching;

constexpr std::uint32_t kRing = 4;

/// Terminals 0..3 (vertices 0..3, as FlowSim requires), switches 4..7,
/// and three channel groups: NIC uplinks t_i -> s_i, ejection downlinks
/// s_i -> t_i, and the directed ring s_i -> s_(i+1 mod 4).
struct RingFabric {
  RingFabric() {
    for (std::uint32_t i = 0; i < kRing; ++i) {
      net.add_vertex(VertexKind::kTerminal, 0, i);
    }
    for (std::uint32_t i = 0; i < kRing; ++i) {
      net.add_vertex(VertexKind::kSwitch, 1, i);
    }
    for (std::uint32_t i = 0; i < kRing; ++i) {
      nic[i] = net.add_channel(i, kRing + i);
    }
    for (std::uint32_t i = 0; i < kRing; ++i) {
      eject[i] = net.add_channel(kRing + i, i);
    }
    for (std::uint32_t i = 0; i < kRing; ++i) {
      ring[i] = net.add_channel(kRing + i, kRing + (i + 1) % kRing);
    }
    net.finalize();
    // Every pair routes clockwise: up at the source, around the ring to
    // the destination switch, then down.  The ring channels therefore
    // depend on each other cyclically — by design.
    cache = std::make_shared<const routing::ChannelRouteCache>(
        net, [this](SDPair sd) {
          std::vector<std::uint32_t> path{nic[sd.src.value]};
          for (std::uint32_t at = sd.src.value; at != sd.dst.value;
               at = (at + 1) % kRing) {
            path.push_back(ring[at]);
          }
          path.push_back(eject[sd.dst.value]);
          return path;
        });
  }

  Network net;
  std::uint32_t nic[kRing];
  std::uint32_t eject[kRing];
  std::uint32_t ring[kRing];
  std::shared_ptr<const routing::ChannelRouteCache> cache;
};

/// Flatten a FoldedClos routing for the deadlock-freedom counterpart.
std::shared_ptr<const routing::ChannelRouteCache> ftree_cache(
    const FoldedClos& ft, const Network& net,
    const SinglePathRouting& routing) {
  return std::make_shared<const routing::ChannelRouteCache>(
      net, [&](SDPair sd) {
        LinkId run[FoldedClos::kMaxPathLinks];
        const auto count = ft.links_into(routing.route(sd), run);
        std::vector<std::uint32_t> channels;
        for (std::uint32_t i = 0; i < count; ++i) {
          channels.push_back(run[i].value);
        }
        return channels;
      });
}

/// All four terminals flood their antipode: every route crosses two ring
/// channels, so all four ring buffers acquire claims that wait on each
/// other in a cycle.
FlowConfig wedge_config() {
  FlowConfig config;
  config.injection_rate = 1.0;
  config.packet_flits = 6;   // worm longer than the buffer: spans routers
  config.buffer_flits = 2;
  config.vcs = 1;
  config.switching = Switching::kWormhole;
  config.backpressure = Backpressure::kCredit;
  config.warmup_cycles = 200;
  config.measure_cycles = 1800;
  config.watchdog_epoch = 128;
  config.seed = 99;
  return config;
}

TEST(FlowDeadlock, WatchdogDetectsCyclicWormholeWedge) {
  RingFabric fab;
  const auto traffic =
      sim::TrafficPattern::permutation(shift_permutation(kRing, 2), kRing);
  FlowSim sim(fab.cache, traffic, wedge_config());
  // run() must RETURN (the watchdog converts the hang into a result)...
  const auto result = sim.run();
  // ...and report the wedge with a usable diagnostic.
  ASSERT_TRUE(result.deadlocked);
  EXPECT_GT(result.deadlock_cycle, 0U);
  EXPECT_LT(result.deadlock_cycle, 2000U);
  EXPECT_GT(result.stuck_flits, 0U);
  ASSERT_FALSE(result.stuck_buffers.empty());
  for (const auto b : result.stuck_buffers) {
    EXPECT_LT(b, 12U);  // 8 switch buffers + 4 NIC buffers
  }
  // At least one *ring* buffer (a finite switch FIFO) is stuck — the
  // wedge lives in the cycle, not just in the NIC backlog.
  const bool switch_buffer_stuck =
      std::any_of(result.stuck_buffers.begin(), result.stuck_buffers.end(),
                  [](std::uint32_t b) { return b < 8; });
  EXPECT_TRUE(switch_buffer_stuck);
  // Delivery stops at the wedge; the run cannot have drained everything.
  EXPECT_LT(result.delivered_packets, result.injected_packets);
}

TEST(FlowDeadlock, DeadlockedRunStillSatisfiesCreditConservation) {
  // The watchdog stops the run with flits parked everywhere — wires,
  // FIFOs, the credit delay line.  The conservation identity must still
  // close exactly over that frozen state.
  RingFabric fab;
  const auto traffic =
      sim::TrafficPattern::permutation(shift_permutation(kRing, 2), kRing);
  FlowSim sim(fab.cache, traffic, wedge_config());
  const auto result = sim.run();
  ASSERT_TRUE(result.deadlocked);
  EXPECT_TRUE(sim.credit_conservation_holds());
}

TEST(FlowDeadlock, WatchdogAlsoDetectsVirtualCutThroughWedge) {
  // VCT keeps a packet whole inside one router, but the buffer-wait
  // cycle (each full ring FIFO waiting for the next to empty) closes all
  // the same — the dependency cycle, not the switching granularity, is
  // what deadlocks.  The watchdog must catch this variant too.
  RingFabric fab;
  const auto traffic =
      sim::TrafficPattern::permutation(shift_permutation(kRing, 2), kRing);
  FlowConfig config = wedge_config();
  config.switching = Switching::kVirtualCutThrough;
  config.buffer_flits = config.packet_flits;  // VCT floor
  FlowSim sim(fab.cache, traffic, config);
  const auto result = sim.run();
  ASSERT_TRUE(result.deadlocked);
  EXPECT_GT(result.stuck_flits, 0U);
  EXPECT_FALSE(result.stuck_buffers.empty());
}

TEST(FlowDeadlock, SingleFlowOnTheRingIsNotAFalsePositive) {
  // One sender cannot close the claim cycle: its worm snakes around the
  // ring unobstructed, so the watchdog must stay silent even though the
  // fabric is cyclic and the buffers are tight.
  RingFabric fab;
  Permutation lone{SDPair{LeafId{0}, LeafId{2}}};
  const auto traffic = sim::TrafficPattern::permutation(lone, kRing);
  FlowSim sim(fab.cache, traffic, wedge_config());
  const auto result = sim.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.delivered_packets, 0U);
}

TEST(FlowDeadlock, FoldedClosStaysDeadlockFreeUnderTightBuffers) {
  // The paper's fabric: up*/down* routes order the channels (up links
  // before down links), so no cyclic dependency exists and even the
  // wedge configuration must keep making progress.
  const FoldedClos ft(FtreeParams{2, 4, 3});
  const Network net = build_network(ft);
  const YuanNonblockingRouting yuan(ft);
  const auto cache = ftree_cache(ft, net, yuan);
  const auto traffic = sim::TrafficPattern::permutation(
      shift_permutation(ft.leaf_count(), 1), ft.leaf_count());
  FlowSim sim(cache, traffic, wedge_config());
  const auto result = sim.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.delivered_packets, 0U);
  EXPECT_TRUE(result.stuck_buffers.empty());
}

TEST(FlowDeadlock, WatchdogDisabledStillTerminatesWhenTrafficDrains) {
  // watchdog_epoch = 0 disables detection; on a deadlock-free fabric the
  // run must still complete normally.
  const FoldedClos ft(FtreeParams{2, 4, 3});
  const Network net = build_network(ft);
  const YuanNonblockingRouting yuan(ft);
  const auto cache = ftree_cache(ft, net, yuan);
  const auto traffic = sim::TrafficPattern::permutation(
      shift_permutation(ft.leaf_count(), 1), ft.leaf_count());
  FlowConfig config = wedge_config();
  config.watchdog_epoch = 0;
  FlowSim sim(cache, traffic, config);
  const auto result = sim.run();
  EXPECT_FALSE(result.deadlocked);
  EXPECT_GT(result.delivered_packets, 0U);
}

}  // namespace
}  // namespace nbclos
