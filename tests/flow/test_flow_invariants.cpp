/// \file test_flow_invariants.cpp
/// \brief Conservation and determinism invariants: the credit identity
///        (credits + occupancy + in-flight + pending returns == capacity
///        for every switch buffer) and thread-count independence of the
///        parallel sweep drivers at 1, 2, and 4 worker threads.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/flow/buffer_margin.hpp"
#include "nbclos/flow/engine.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/util/thread_pool.hpp"

namespace nbclos {
namespace {

using flow::Backpressure;
using flow::FlowConfig;
using flow::FlowResult;
using flow::FlowSim;
using flow::Switching;

std::shared_ptr<const routing::ChannelRouteCache> make_cache(
    const FoldedClos& ft, const Network& net,
    const SinglePathRouting& routing) {
  return std::make_shared<const routing::ChannelRouteCache>(
      net, [&](SDPair sd) {
        LinkId run[FoldedClos::kMaxPathLinks];
        const auto count = ft.links_into(routing.route(sd), run);
        std::vector<std::uint32_t> channels;
        for (std::uint32_t i = 0; i < count; ++i) {
          channels.push_back(run[i].value);
        }
        return channels;
      });
}

void expect_identical(const FlowResult& a, const FlowResult& b) {
  EXPECT_EQ(a.offered_load, b.offered_load);
  EXPECT_EQ(a.accepted_throughput, b.accepted_throughput);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.p999_latency, b.p999_latency);
  EXPECT_EQ(a.injected_packets, b.injected_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.mean_switch_queue_depth, b.mean_switch_queue_depth);
  EXPECT_EQ(a.min_flow_throughput, b.min_flow_throughput);
  EXPECT_EQ(a.max_flow_throughput, b.max_flow_throughput);
  EXPECT_EQ(a.credit_stall_cycles, b.credit_stall_cycles);
  EXPECT_EQ(a.vc_stall_cycles, b.vc_stall_cycles);
  EXPECT_EQ(a.mean_stall_cycles, b.mean_stall_cycles);
  EXPECT_EQ(a.p99_stall_cycles, b.p99_stall_cycles);
  EXPECT_EQ(a.peak_buffer_flits, b.peak_buffer_flits);
  EXPECT_EQ(a.peak_live_packets, b.peak_live_packets);
  EXPECT_EQ(a.deadlocked, b.deadlocked);
}

class FlowInvariants : public ::testing::Test {
 protected:
  FlowInvariants()
      : ft(FtreeParams{2, 4, 3}),
        net(build_network(ft)),
        yuan(ft),
        cache(make_cache(ft, net, yuan)),
        traffic(sim::TrafficPattern::permutation(
            shift_permutation(ft.leaf_count(), 1), ft.leaf_count())) {}

  /// Stress configuration: tight buffers at full load, so the credit
  /// machinery (delayed returns, stalls, episodes) is fully exercised.
  FlowConfig stressed_config() const {
    FlowConfig config;
    config.injection_rate = 1.0;
    config.packet_flits = 4;
    config.buffer_flits = 2;
    config.credit_delay = 3;
    config.warmup_cycles = 300;
    config.measure_cycles = 1700;
    config.seed = 77;
    return config;
  }

  FoldedClos ft;
  Network net;
  YuanNonblockingRouting yuan;
  std::shared_ptr<const routing::ChannelRouteCache> cache;
  sim::TrafficPattern traffic;
};

// --- credit conservation --------------------------------------------------

TEST_F(FlowInvariants, CreditConservationHoldsBeforeAndAfterTheRun) {
  FlowSim sim(cache, traffic, stressed_config());
  // Pristine state: every buffer empty, every counter at capacity.
  EXPECT_TRUE(sim.credit_conservation_holds());
  const auto result = sim.run();
  // The run also audits internally at every watchdog epoch; this is the
  // external end-state check over wires + FIFOs + the delay line.
  EXPECT_TRUE(sim.credit_conservation_holds());
  EXPECT_GT(result.delivered_packets, 0U);
  EXPECT_FALSE(result.deadlocked);
}

TEST_F(FlowInvariants, CreditConservationHoldsAcrossDelaysAndDepths) {
  for (const std::uint32_t delay : {1U, 2U, 5U}) {
    for (const std::uint32_t depth : {1U, 4U, 16U}) {
      FlowConfig config = stressed_config();
      config.credit_delay = delay;
      config.buffer_flits = depth;
      FlowSim sim(cache, traffic, config);
      (void)sim.run();
      EXPECT_TRUE(sim.credit_conservation_holds())
          << "delay " << delay << " depth " << depth;
    }
  }
}

TEST_F(FlowInvariants, CreditAuditRequiresCreditMode) {
  FlowConfig config = stressed_config();
  config.backpressure = Backpressure::kOnOff;
  FlowSim sim(cache, traffic, config);
  EXPECT_THROW((void)sim.credit_conservation_holds(), precondition_error);
}

// --- thread-count independence -------------------------------------------

TEST_F(FlowInvariants, LoadSweepIsThreadCountIndependent) {
  const std::vector<double> rates{0.2, 0.6, 1.0};
  const FlowConfig base = stressed_config();
  const auto serial = flow_load_sweep(cache, traffic, base, rates, nullptr);
  ASSERT_EQ(serial.size(), rates.size());
  for (const std::size_t threads : {1U, 2U, 4U}) {
    ThreadPool pool(threads);
    const auto parallel =
        flow_load_sweep(cache, traffic, base, rates, &pool);
    ASSERT_EQ(parallel.size(), rates.size());
    for (std::size_t i = 0; i < rates.size(); ++i) {
      SCOPED_TRACE(::testing::Message()
                   << "threads " << threads << " rate " << rates[i]);
      expect_identical(parallel[i], serial[i]);
    }
  }
}

TEST_F(FlowInvariants, BufferMarginSweepIsThreadCountIndependent) {
  analysis::BufferMarginConfig config;
  config.buffer_sizes = {1, 2, 4, 8};
  config.probe_load = 0.9;
  config.base = stressed_config();
  const auto serial =
      analysis::buffer_margin_sweep(cache, traffic, config, nullptr);
  for (const std::size_t threads : {1U, 2U, 4U}) {
    ThreadPool pool(threads);
    const auto parallel =
        analysis::buffer_margin_sweep(cache, traffic, config, &pool);
    ASSERT_EQ(parallel.points.size(), serial.points.size());
    EXPECT_EQ(parallel.min_flits_nonblocking, serial.min_flits_nonblocking);
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
      SCOPED_TRACE(::testing::Message() << "threads " << threads << " point "
                                        << i);
      EXPECT_EQ(parallel.points[i].buffer_flits, serial.points[i].buffer_flits);
      EXPECT_EQ(parallel.points[i].feasible, serial.points[i].feasible);
      EXPECT_EQ(parallel.points[i].sustained, serial.points[i].sustained);
      EXPECT_EQ(parallel.points[i].accepted_throughput,
                serial.points[i].accepted_throughput);
      EXPECT_EQ(parallel.points[i].deadlocked, serial.points[i].deadlocked);
      EXPECT_EQ(parallel.points[i].credit_stall_cycles,
                serial.points[i].credit_stall_cycles);
      EXPECT_EQ(parallel.points[i].peak_buffer_flits,
                serial.points[i].peak_buffer_flits);
    }
  }
}

TEST_F(FlowInvariants, SweepMatchesIndividuallyConstructedRuns) {
  // The sweep must be exactly "one fresh FlowSim per rate" — no hidden
  // state leaking across runs.
  const std::vector<double> rates{0.3, 0.8};
  const FlowConfig base = stressed_config();
  const auto swept = flow_load_sweep(cache, traffic, base, rates, nullptr);
  for (std::size_t i = 0; i < rates.size(); ++i) {
    FlowConfig config = base;
    config.injection_rate = rates[i];
    FlowSim sim(cache, traffic, config);
    const auto direct = sim.run();
    SCOPED_TRACE(::testing::Message() << "rate " << rates[i]);
    expect_identical(swept[i], direct);
  }
}

}  // namespace
}  // namespace nbclos
