/// \file test_flow_sharded.cpp
/// \brief ShardedFlowSim determinism: bit-identical FlowResults against
///        serial FlowSim (counter injection) at 1/2/4/8 shards — for
///        wormhole and virtual cut-through, credit and on/off
///        backpressure, under mid-run fault schedules, and through a
///        genuine cross-shard deadlock where the watchdog verdict must
///        come from epoch totals aggregated over ALL shards.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/fault/degraded_view.hpp"
#include "nbclos/flow/engine.hpp"
#include "nbclos/flow/sharded.hpp"
#include "nbclos/obs/flight_recorder.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

using flow::Backpressure;
using flow::FlowConfig;
using flow::FlowResult;
using flow::FlowSim;
using flow::ShardedFlowSim;
using flow::Switching;

std::shared_ptr<const routing::ChannelRouteCache> make_cache(
    const FoldedClos& ft, const Network& net,
    const SinglePathRouting& routing) {
  return std::make_shared<const routing::ChannelRouteCache>(
      net, [&](SDPair sd) {
        LinkId run[FoldedClos::kMaxPathLinks];
        const auto count = ft.links_into(routing.route(sd), run);
        std::vector<std::uint32_t> channels;
        for (std::uint32_t i = 0; i < count; ++i) {
          channels.push_back(run[i].value);
        }
        return channels;
      });
}

/// EXPECT_EQ on every FlowResult field.  Doubles compare exactly: the
/// sharded merges are defined to replay serial's arithmetic bit for bit.
void expect_identical(const FlowResult& a, const FlowResult& b,
                      std::uint32_t shards) {
  SCOPED_TRACE("shards=" + std::to_string(shards));
  EXPECT_EQ(a.offered_load, b.offered_load);
  EXPECT_EQ(a.accepted_throughput, b.accepted_throughput);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.p999_latency, b.p999_latency);
  EXPECT_EQ(a.latency_bucket_width, b.latency_bucket_width);
  EXPECT_EQ(a.injected_packets, b.injected_packets);
  EXPECT_EQ(a.delivered_packets, b.delivered_packets);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.mean_switch_queue_depth, b.mean_switch_queue_depth);
  EXPECT_EQ(a.min_flow_throughput, b.min_flow_throughput);
  EXPECT_EQ(a.max_flow_throughput, b.max_flow_throughput);
  EXPECT_EQ(a.credit_stall_cycles, b.credit_stall_cycles);
  EXPECT_EQ(a.vc_stall_cycles, b.vc_stall_cycles);
  EXPECT_EQ(a.mean_stall_cycles, b.mean_stall_cycles);
  EXPECT_EQ(a.p99_stall_cycles, b.p99_stall_cycles);
  EXPECT_EQ(a.peak_buffer_flits, b.peak_buffer_flits);
  EXPECT_EQ(a.peak_live_packets, b.peak_live_packets);
  EXPECT_EQ(a.deadlocked, b.deadlocked);
  EXPECT_EQ(a.deadlock_cycle, b.deadlock_cycle);
  EXPECT_EQ(a.stuck_flits, b.stuck_flits);
  EXPECT_EQ(a.stuck_buffers, b.stuck_buffers);
}

/// ftree(2+4, 3): 16 terminals, enough levels for multi-hop worms, small
/// enough that 4 engines x 4 shard counts stay fast.
class FlowSharded : public ::testing::Test {
 protected:
  FlowSharded()
      : ft(FtreeParams{2, 4, 3}),
        net(build_network(ft)),
        yuan(ft),
        cache(make_cache(ft, net, yuan)),
        traffic(sim::TrafficPattern::permutation(
            shift_permutation(ft.leaf_count(), 5), ft.leaf_count())) {}

  FlowConfig base_config() const {
    FlowConfig config;
    config.injection_rate = 0.6;  // deep enough to engage backpressure
    config.packet_flits = 3;
    config.buffer_flits = 4;
    config.vcs = 1;
    config.warmup_cycles = 300;
    config.measure_cycles = 1700;
    config.watchdog_epoch = 256;
    config.seed = 20260809;
    config.counter_injection = true;
    return config;
  }

  void check_all_shard_counts(const FlowConfig& config,
                              const fault::DegradedView* degraded = nullptr,
                              std::vector<fault::FaultEvent> events = {}) {
    FlowSim serial(cache, traffic, config, degraded, events);
    const FlowResult golden = serial.run();
    const auto serial_busy = serial.link_busy_flits();
    for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
      ShardedFlowSim sharded(cache, traffic, config, shards, degraded, events);
      const FlowResult got = sharded.run();
      expect_identical(golden, got, shards);
      EXPECT_EQ(serial_busy, sharded.link_busy_flits())
          << "link_busy diverged at " << shards << " shards";
    }
  }

  FoldedClos ft;
  Network net;
  YuanNonblockingRouting yuan;
  std::shared_ptr<const routing::ChannelRouteCache> cache;
  sim::TrafficPattern traffic;
};

TEST_F(FlowSharded, BitIdenticalWormholeCredit) {
  check_all_shard_counts(base_config());
}

TEST_F(FlowSharded, BitIdenticalWormholeOnOff) {
  FlowConfig config = base_config();
  config.backpressure = Backpressure::kOnOff;
  check_all_shard_counts(config);
}

TEST_F(FlowSharded, BitIdenticalVctCredit) {
  FlowConfig config = base_config();
  config.switching = Switching::kVirtualCutThrough;
  check_all_shard_counts(config);
}

TEST_F(FlowSharded, BitIdenticalVctOnOff) {
  FlowConfig config = base_config();
  config.switching = Switching::kVirtualCutThrough;
  config.backpressure = Backpressure::kOnOff;
  check_all_shard_counts(config);
}

TEST_F(FlowSharded, BitIdenticalMultiVcUniformTraffic) {
  traffic = sim::TrafficPattern::uniform(ft.leaf_count());
  FlowConfig config = base_config();
  config.vcs = 2;
  config.injection_rate = 0.8;
  check_all_shard_counts(config);
}

TEST_F(FlowSharded, BitIdenticalWithPinning) {
  FlowConfig config = base_config();
  config.pin_shards = true;
  check_all_shard_counts(config);
}

/// Mid-run fault schedule: a spine channel dies (worms block in place, a
/// stall signature), a NIC uplink dies (injection drops), and the spine
/// recovers — every shard replays the same schedule on its private copy.
TEST_F(FlowSharded, BitIdenticalUnderFaultSchedule) {
  fault::DegradedView view(net);
  std::uint32_t spine = UINT32_MAX;
  for (std::uint32_t c = 0; c < net.channel_count(); ++c) {
    const bool from_switch =
        net.vertex(net.channel_src(c)).kind != VertexKind::kTerminal;
    const bool to_switch =
        net.vertex(net.channel_dst(c)).kind != VertexKind::kTerminal;
    if (from_switch && to_switch) {
      spine = c;
      break;
    }
  }
  ASSERT_NE(spine, UINT32_MAX);
  std::uint32_t nic = UINT32_MAX;
  for (std::uint32_t c = 0; c < net.channel_count(); ++c) {
    if (net.vertex(net.channel_src(c)).kind == VertexKind::kTerminal) {
      nic = c;
      break;
    }
  }
  ASSERT_NE(nic, UINT32_MAX);
  const std::vector<fault::FaultEvent> events{
      {500, fault::FaultAction::kFailChannel, spine},
      {700, fault::FaultAction::kFailChannel, nic},
      {1100, fault::FaultAction::kRecoverChannel, spine},
  };
  FlowConfig config = base_config();
  config.watchdog_epoch = 0;  // blocked worms are expected mid-schedule
  check_all_shard_counts(config, &view, events);
  // The schedule must actually have bitten: rerun serially and check the
  // drop counter engaged (regression against a silently dead schedule).
  FlowSim probe(cache, traffic, config, &view, events);
  EXPECT_GT(probe.run().dropped_packets, 0U);
}

// ---------------------------------------------------------------------------
// Watchdog aggregation across shards: the canonical 4-switch directed
// ring wedge (see test_flow_deadlock.cpp).  The cycle spans every shard
// cut, so each shard alone sees partial (even negative) flit counts —
// only the aggregated epoch totals give the serial verdict.

constexpr std::uint32_t kRing = 4;

struct RingFabric {
  RingFabric() {
    for (std::uint32_t i = 0; i < kRing; ++i) {
      net.add_vertex(VertexKind::kTerminal, 0, i);
    }
    for (std::uint32_t i = 0; i < kRing; ++i) {
      net.add_vertex(VertexKind::kSwitch, 1, i);
    }
    for (std::uint32_t i = 0; i < kRing; ++i) {
      nic[i] = net.add_channel(i, kRing + i);
    }
    for (std::uint32_t i = 0; i < kRing; ++i) {
      eject[i] = net.add_channel(kRing + i, i);
    }
    for (std::uint32_t i = 0; i < kRing; ++i) {
      ring[i] = net.add_channel(kRing + i, kRing + (i + 1) % kRing);
    }
    net.finalize();
    cache = std::make_shared<const routing::ChannelRouteCache>(
        net, [this](SDPair sd) {
          std::vector<std::uint32_t> path{nic[sd.src.value]};
          for (std::uint32_t at = sd.src.value; at != sd.dst.value;
               at = (at + 1) % kRing) {
            path.push_back(ring[at]);
          }
          path.push_back(eject[sd.dst.value]);
          return path;
        });
  }

  Network net;
  std::uint32_t nic[kRing];
  std::uint32_t eject[kRing];
  std::uint32_t ring[kRing];
  std::shared_ptr<const routing::ChannelRouteCache> cache;
};

FlowConfig wedge_config() {
  FlowConfig config;
  config.injection_rate = 1.0;
  config.packet_flits = 6;  // worm longer than the buffer: spans routers
  config.buffer_flits = 2;
  config.vcs = 1;
  config.switching = Switching::kWormhole;
  config.backpressure = Backpressure::kCredit;
  config.warmup_cycles = 200;
  config.measure_cycles = 1800;
  config.watchdog_epoch = 128;
  config.seed = 99;
  config.counter_injection = true;
  return config;
}

TEST(FlowShardedWatchdog, VerdictMatchesSerialAcrossShardCuts) {
  RingFabric fab;
  const auto traffic =
      sim::TrafficPattern::permutation(shift_permutation(kRing, 2), kRing);
  FlowSim serial(fab.cache, traffic, wedge_config());
  const FlowResult golden = serial.run();
  ASSERT_TRUE(golden.deadlocked);
  ASSERT_GT(golden.stuck_flits, 0U);
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardedFlowSim sharded(fab.cache, traffic, wedge_config(), shards);
    const FlowResult got = sharded.run();
    expect_identical(golden, got, shards);
  }
}

/// A fault-induced global stall: at cycle 600 every channel dies, so
/// in-flight flits freeze while injection keeps dropping.  The watchdog
/// must still aggregate the (now static) flit counts across shards and
/// trip at the same epoch as serial.
TEST(FlowShardedWatchdog, FaultInducedTripMatchesSerial) {
  RingFabric fab;
  const auto traffic =
      sim::TrafficPattern::permutation(shift_permutation(kRing, 1), kRing);
  fault::DegradedView view(fab.net);
  std::vector<fault::FaultEvent> events;
  for (std::uint32_t c = 0; c < fab.net.channel_count(); ++c) {
    events.push_back({600, fault::FaultAction::kFailChannel, c});
  }
  FlowConfig config = wedge_config();
  config.packet_flits = 2;  // no intrinsic wedge: only the fault stalls it
  config.buffer_flits = 4;
  FlowSim serial(fab.cache, traffic, config, &view, events);
  const FlowResult golden = serial.run();
  ASSERT_TRUE(golden.deadlocked);
  EXPECT_GE(golden.deadlock_cycle, 600U);
  EXPECT_GT(golden.dropped_packets, 0U);
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardedFlowSim sharded(fab.cache, traffic, config, shards, &view, events);
    const FlowResult got = sharded.run();
    expect_identical(golden, got, shards);
  }
}

// ---------------------------------------------------------------------------
// Flight recorder: the merged invariant series must replay serial's
// samples bit for bit at every shard count, and a watchdog trip must
// produce the same forensics (blocked FIFOs + circular wait) everywhere.

/// The invariant subset of merged(), as comparable values.
std::vector<obs::MergedSeries> invariant_series(
    const obs::FlightRecorder& recorder) {
  std::vector<obs::MergedSeries> out;
  for (auto& series : recorder.merged()) {
    if (series.scope == obs::SeriesScope::kInvariant) {
      out.push_back(std::move(series));
    }
  }
  return out;
}

void expect_identical_series(const std::vector<obs::MergedSeries>& golden,
                             const std::vector<obs::MergedSeries>& got,
                             std::uint32_t shards) {
  SCOPED_TRACE("shards=" + std::to_string(shards));
  ASSERT_EQ(golden.size(), got.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    SCOPED_TRACE("series=" + golden[i].name);
    EXPECT_EQ(golden[i].name, got[i].name);
    EXPECT_EQ(golden[i].agg, got[i].agg);
    EXPECT_EQ(golden[i].stride_cycles, got[i].stride_cycles);
    EXPECT_EQ(golden[i].points, got[i].points);
  }
}

TEST_F(FlowSharded, MergedTimeseriesBitIdenticalAcrossShardCounts) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  FlowConfig config = base_config();
  config.record_timeseries = true;
  config.record_cadence = 32;
  config.record_ring_capacity = 24;  // small ring: downsampling engages
  FlowSim serial(cache, traffic, config);
  const FlowResult golden_result = serial.run();
  const auto golden = invariant_series(serial.recorder());
  ASSERT_GE(golden.size(), 7U);
  ASSERT_FALSE(golden[0].points.empty());
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardedFlowSim sharded(cache, traffic, config, shards);
    const FlowResult got = sharded.run();
    expect_identical(golden_result, got, shards);
    expect_identical_series(golden, invariant_series(sharded.recorder()),
                            shards);
  }
}

TEST(FlowShardedForensics, WatchdogTripNamesTheDeadlockedFifos) {
  if constexpr (!obs::kEnabled) GTEST_SKIP() << "obs compiled out";
  RingFabric fab;
  const auto traffic =
      sim::TrafficPattern::permutation(shift_permutation(kRing, 2), kRing);
  FlowConfig config = wedge_config();
  config.record_timeseries = true;
  config.record_cadence = 32;
  FlowSim serial(fab.cache, traffic, config);
  ASSERT_TRUE(serial.run().deadlocked);
  const auto& golden = serial.forensics();
  ASSERT_TRUE(golden.valid);
  ASSERT_FALSE(golden.blocked.empty());
  EXPECT_GT(golden.stuck_flits, 0U);
  // The wedge is a genuine circular wait around the 4 ring buffers: the
  // chain walk must find it, and every on-cycle report must both wait on
  // another buffer and hold flits.
  ASSERT_GE(golden.wait_cycle.size(), 2U);
  for (const auto& report : golden.blocked) {
    EXPECT_GT(report.occupancy, 0U);
    if (report.on_cycle) {
      EXPECT_NE(report.waiting_for, flow::BlockedBufferReport::kWaitsOnNone);
    }
  }
  // The cycle closes: each chain member's wait target is the next member.
  for (std::size_t i = 0; i < golden.wait_cycle.size(); ++i) {
    const auto next = golden.wait_cycle[(i + 1) % golden.wait_cycle.size()];
    const auto at = golden.wait_cycle[i];
    bool found = false;
    for (const auto& report : golden.blocked) {
      if (report.buffer == at) {
        EXPECT_EQ(report.waiting_for, next);
        found = true;
      }
    }
    EXPECT_TRUE(found) << "chain member " << at << " has no report";
  }
  // The recorder tail rode along with the trip.
  EXPECT_FALSE(golden.tail.empty());

  // Sharded runs reconstruct the same global-id forensics from per-shard
  // state, even when the wait cycle crosses every shard boundary.
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedFlowSim sharded(fab.cache, traffic, config, shards);
    ASSERT_TRUE(sharded.run().deadlocked);
    const auto& got = sharded.forensics();
    ASSERT_TRUE(got.valid);
    EXPECT_EQ(got.trip_cycle, golden.trip_cycle);
    EXPECT_EQ(got.stuck_flits, golden.stuck_flits);
    ASSERT_EQ(got.blocked.size(), golden.blocked.size());
    for (std::size_t i = 0; i < golden.blocked.size(); ++i) {
      EXPECT_EQ(got.blocked[i].buffer, golden.blocked[i].buffer);
      EXPECT_EQ(got.blocked[i].channel, golden.blocked[i].channel);
      EXPECT_EQ(got.blocked[i].occupancy, golden.blocked[i].occupancy);
      EXPECT_EQ(got.blocked[i].waiting_for, golden.blocked[i].waiting_for);
      EXPECT_EQ(got.blocked[i].blocked_since, golden.blocked[i].blocked_since);
      EXPECT_EQ(got.blocked[i].on_cycle, golden.blocked[i].on_cycle);
    }
    EXPECT_EQ(got.wait_cycle, golden.wait_cycle);
  }
}

}  // namespace
}  // namespace nbclos
