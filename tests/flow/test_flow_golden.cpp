/// \file test_flow_golden.cpp
/// \brief Cross-engine golden equivalence: in the ideal-switch regime
///        (single-flit packets, effectively-infinite buffers) FlowSim
///        must reproduce sim::PacketSim bit-identically.
///
/// Both engines drive the *same* shared routing::ChannelRouteCache and
/// consume identical RNG streams, so with 1-flit packets, 1024-flit
/// buffers, and a contention-free (Yuan nonblocking) routing every
/// mirrored result field — throughput, latency moments and quantiles,
/// packet counts, queue depth, fairness extremes — must be EXPECT_EQ
/// equal, doubles included.  Any divergence means the flit-level engine
/// has drifted from the validated packet-level baseline.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/flow/engine.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"
#include "nbclos/sim/path_oracle.hpp"

namespace nbclos {
namespace {

using flow::FlowConfig;
using flow::FlowResult;
using flow::FlowSim;
using sim::SimConfig;
using sim::SimResult;

/// Flatten a FoldedClos routing into the channel cache both engines
/// share (channel id == LinkId by the FtreeNetworkMap contract).
std::shared_ptr<const routing::ChannelRouteCache> make_cache(
    const FoldedClos& ft, const Network& net,
    const SinglePathRouting& routing) {
  return std::make_shared<const routing::ChannelRouteCache>(
      net, [&](SDPair sd) {
        LinkId run[FoldedClos::kMaxPathLinks];
        const auto count = ft.links_into(routing.route(sd), run);
        std::vector<std::uint32_t> channels;
        for (std::uint32_t i = 0; i < count; ++i) {
          channels.push_back(run[i].value);
        }
        return channels;
      });
}

void expect_equivalent(const FlowResult& f, const SimResult& s) {
  EXPECT_EQ(f.offered_load, s.offered_load);
  EXPECT_EQ(f.accepted_throughput, s.accepted_throughput);
  EXPECT_EQ(f.mean_latency, s.mean_latency);
  EXPECT_EQ(f.latency_bucket_width, s.latency_bucket_width);
  EXPECT_EQ(f.p50_latency, s.p50_latency);
  EXPECT_EQ(f.p99_latency, s.p99_latency);
  EXPECT_EQ(f.p999_latency, s.p999_latency);
  EXPECT_EQ(f.injected_packets, s.injected_packets);
  EXPECT_EQ(f.delivered_packets, s.delivered_packets);
  EXPECT_EQ(f.mean_switch_queue_depth, s.mean_switch_queue_depth);
  EXPECT_EQ(f.min_flow_throughput, s.min_flow_throughput);
  EXPECT_EQ(f.max_flow_throughput, s.max_flow_throughput);
}

class GoldenFlow : public ::testing::Test {
 protected:
  GoldenFlow()
      : ft(FtreeParams{4, 16, 8}),
        net(build_network(ft)),
        yuan(ft),
        cache(make_cache(ft, net, yuan)),
        traffic(sim::TrafficPattern::permutation(
            shift_permutation(ft.leaf_count(), 5), ft.leaf_count())) {}

  /// One PacketSim + one FlowSim at the same rate over the shared cache,
  /// both in their documented ideal-reference configurations.
  void run_pair(double rate, SimResult& packet_result,
                FlowResult& flow_result) {
    SimConfig sc = SimConfig::ideal_reference(rate, kSeed);
    sc.warmup_cycles = kWarmup;
    sc.measure_cycles = kMeasure;
    sim::ExplicitPathOracle oracle(cache);
    sim::PacketSim psim(net, oracle, traffic, sc);
    packet_result = psim.run();

    FlowConfig fc = FlowConfig::ideal_reference(rate, kSeed);
    fc.warmup_cycles = kWarmup;
    fc.measure_cycles = kMeasure;
    FlowSim fsim(cache, traffic, fc);
    flow_result = fsim.run();
  }

  static constexpr std::uint64_t kSeed = 12345;
  static constexpr std::uint64_t kWarmup = 500;
  static constexpr std::uint64_t kMeasure = 3000;

  FoldedClos ft;
  Network net;
  YuanNonblockingRouting yuan;
  std::shared_ptr<const routing::ChannelRouteCache> cache;
  sim::TrafficPattern traffic;
};

TEST_F(GoldenFlow, MatchesPacketSimAtLowLoad) {
  SimResult s;
  FlowResult f;
  run_pair(0.1, s, f);
  expect_equivalent(f, s);
  EXPECT_GT(f.delivered_packets, 0U);
}

TEST_F(GoldenFlow, MatchesPacketSimAtMidLoad) {
  SimResult s;
  FlowResult f;
  run_pair(0.5, s, f);
  expect_equivalent(f, s);
}

TEST_F(GoldenFlow, MatchesPacketSimAtHighLoad) {
  SimResult s;
  FlowResult f;
  run_pair(0.9, s, f);
  expect_equivalent(f, s);
}

TEST_F(GoldenFlow, MatchesPacketSimAtFullLoad) {
  // Load 1.0 on the nonblocking permutation: the regime Theorem 3
  // certifies.  Neither engine may saturate, and they must agree.
  SimResult s;
  FlowResult f;
  run_pair(1.0, s, f);
  expect_equivalent(f, s);
  EXPECT_FALSE(f.saturated());
  EXPECT_FALSE(s.saturated());
}

TEST_F(GoldenFlow, IdealRegimeNeverEngagesBackpressure) {
  SimResult s;
  FlowResult f;
  run_pair(1.0, s, f);
  // Contention-free routing + effectively infinite buffers: no stall of
  // either kind, and no switch FIFO ever comes near its 1024 capacity.
  EXPECT_EQ(f.credit_stall_cycles, 0U);
  EXPECT_EQ(f.vc_stall_cycles, 0U);
  EXPECT_LT(f.peak_buffer_flits,
            FlowConfig::kEffectivelyInfiniteBufferFlits / 2);
  EXPECT_FALSE(f.deadlocked);
}

TEST_F(GoldenFlow, RepeatedRunsAreBitIdentical) {
  FlowConfig fc = FlowConfig::ideal_reference(0.7, kSeed);
  fc.warmup_cycles = kWarmup;
  fc.measure_cycles = kMeasure;
  FlowSim a(cache, traffic, fc);
  FlowSim b(cache, traffic, fc);
  const FlowResult ra = a.run();
  const FlowResult rb = b.run();
  EXPECT_EQ(ra.accepted_throughput, rb.accepted_throughput);
  EXPECT_EQ(ra.mean_latency, rb.mean_latency);
  EXPECT_EQ(ra.p99_latency, rb.p99_latency);
  EXPECT_EQ(ra.injected_packets, rb.injected_packets);
  EXPECT_EQ(ra.delivered_packets, rb.delivered_packets);
  EXPECT_EQ(ra.mean_switch_queue_depth, rb.mean_switch_queue_depth);
  EXPECT_EQ(ra.credit_stall_cycles, rb.credit_stall_cycles);
  EXPECT_EQ(ra.peak_buffer_flits, rb.peak_buffer_flits);
  EXPECT_EQ(a.link_busy_flits(), b.link_busy_flits());
}

TEST_F(GoldenFlow, IdealReferenceFactoriesStayInSync) {
  // The golden contract depends on both factories describing the same
  // regime; pin the fields so a drive-by edit to one side fails loudly.
  const SimConfig sc = SimConfig::ideal_reference(0.3, 7);
  const FlowConfig fc = FlowConfig::ideal_reference(0.3, 7);
  EXPECT_TRUE(sc.ideal_switch_regime());
  EXPECT_TRUE(fc.ideal_switch_regime());
  EXPECT_EQ(sc.packet_size, 1U);
  EXPECT_EQ(fc.packet_flits, 1U);
  EXPECT_EQ(sc.queue_capacity, SimConfig::kEffectivelyInfiniteQueueCapacity);
  EXPECT_EQ(fc.buffer_flits, FlowConfig::kEffectivelyInfiniteBufferFlits);
  EXPECT_EQ(sc.injection_rate, fc.injection_rate);
  EXPECT_EQ(sc.seed, fc.seed);
}

}  // namespace
}  // namespace nbclos
