/// \file test_flow_engine.cpp
/// \brief FlowSim behavior under *finite* buffers: configuration
///        validation, wormhole vs virtual cut-through, credit vs on/off
///        backpressure, occupancy bounds, stall telemetry, and the
///        storage substrate (FlitBufferPool / CreditLedger / OnOffSignal).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/flow/engine.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

using flow::Backpressure;
using flow::CreditLedger;
using flow::FlitBufferPool;
using flow::FlitRef;
using flow::FlowConfig;
using flow::FlowSim;
using flow::OnOffSignal;
using flow::Switching;

std::shared_ptr<const routing::ChannelRouteCache> make_cache(
    const FoldedClos& ft, const Network& net,
    const SinglePathRouting& routing) {
  return std::make_shared<const routing::ChannelRouteCache>(
      net, [&](SDPair sd) {
        LinkId run[FoldedClos::kMaxPathLinks];
        const auto count = ft.links_into(routing.route(sd), run);
        std::vector<std::uint32_t> channels;
        for (std::uint32_t i = 0; i < count; ++i) {
          channels.push_back(run[i].value);
        }
        return channels;
      });
}

/// Small shared fabric: ftree(2+4, 3), Yuan routing, shift permutation.
class FlowEngine : public ::testing::Test {
 protected:
  FlowEngine()
      : ft(FtreeParams{2, 4, 3}),
        net(build_network(ft)),
        yuan(ft),
        cache(make_cache(ft, net, yuan)),
        traffic(sim::TrafficPattern::permutation(
            shift_permutation(ft.leaf_count(), 1), ft.leaf_count())) {}

  FlowConfig short_config() const {
    FlowConfig config;
    config.warmup_cycles = 300;
    config.measure_cycles = 1700;
    config.seed = 4242;
    return config;
  }

  FoldedClos ft;
  Network net;
  YuanNonblockingRouting yuan;
  std::shared_ptr<const routing::ChannelRouteCache> cache;
  sim::TrafficPattern traffic;
};

// --- configuration validation -------------------------------------------

TEST_F(FlowEngine, RejectsOutOfRangeInjectionRate) {
  FlowConfig config = short_config();
  config.injection_rate = 1.5;
  EXPECT_THROW(FlowSim(cache, traffic, config), precondition_error);
  config.injection_rate = -0.1;
  EXPECT_THROW(FlowSim(cache, traffic, config), precondition_error);
}

TEST_F(FlowEngine, RejectsZeroFlitPackets) {
  FlowConfig config = short_config();
  config.packet_flits = 0;
  EXPECT_THROW(FlowSim(cache, traffic, config), precondition_error);
}

TEST_F(FlowEngine, RejectsZeroVirtualChannels) {
  FlowConfig config = short_config();
  config.vcs = 0;
  EXPECT_THROW(FlowSim(cache, traffic, config), precondition_error);
}

TEST_F(FlowEngine, VirtualCutThroughNeedsWholePacketBuffers) {
  FlowConfig config = short_config();
  config.switching = Switching::kVirtualCutThrough;
  config.packet_flits = 8;
  config.buffer_flits = 4;
  EXPECT_THROW(FlowSim(cache, traffic, config), precondition_error);
  config.buffer_flits = 8;  // exactly one packet is the documented floor
  EXPECT_NO_THROW(FlowSim(cache, traffic, config));
}

TEST_F(FlowEngine, OnOffNeedsSlackBeyondTheHeadReservation) {
  FlowConfig config = short_config();
  config.backpressure = Backpressure::kOnOff;
  config.switching = Switching::kWormhole;
  config.buffer_flits = 1;  // reservation 1 + no slack -> rejected
  EXPECT_THROW(FlowSim(cache, traffic, config), precondition_error);
  config.buffer_flits = 2;
  EXPECT_NO_THROW(FlowSim(cache, traffic, config));
}

TEST_F(FlowEngine, RejectsMismatchedTrafficPattern) {
  const auto wrong = sim::TrafficPattern::uniform(ft.leaf_count() + 1);
  EXPECT_THROW(FlowSim(cache, wrong, short_config()), precondition_error);
}

TEST_F(FlowEngine, ConfigHelpersEncodeTheSwitchingMode) {
  FlowConfig config;
  config.packet_flits = 4;
  config.buffer_flits = 8;
  config.switching = Switching::kWormhole;
  EXPECT_EQ(config.head_reservation_flits(), 1U);
  EXPECT_EQ(config.onoff_off_threshold(), 7U);
  config.switching = Switching::kVirtualCutThrough;
  EXPECT_EQ(config.head_reservation_flits(), 4U);
  EXPECT_EQ(config.onoff_off_threshold(), 4U);
  EXPECT_FALSE(config.ideal_switch_regime());
}

// --- finite-buffer behavior ---------------------------------------------

TEST_F(FlowEngine, ZeroInjectionDeliversNothing) {
  FlowConfig config = short_config();
  config.injection_rate = 0.0;
  FlowSim sim(cache, traffic, config);
  const auto result = sim.run();
  EXPECT_EQ(result.injected_packets, 0U);
  EXPECT_EQ(result.delivered_packets, 0U);
  EXPECT_EQ(result.accepted_throughput, 0.0);
  EXPECT_EQ(result.peak_buffer_flits, 0U);
  EXPECT_FALSE(result.deadlocked);
}

TEST_F(FlowEngine, WormholePeakOccupancyNeverExceedsCapacity) {
  FlowConfig config = short_config();
  config.injection_rate = 1.0;
  config.packet_flits = 4;
  config.buffer_flits = 4;
  config.switching = Switching::kWormhole;
  FlowSim sim(cache, traffic, config);
  const auto result = sim.run();
  EXPECT_LE(result.peak_buffer_flits, config.buffer_flits);
  EXPECT_GT(result.delivered_packets, 0U);
  EXPECT_FALSE(result.deadlocked);
}

TEST_F(FlowEngine, OnOffOccupancyNeverExceedsCapacity) {
  // The on/off bound is the subtle one: a 1-cycle stale stop bit plus an
  // in-flight flit can overshoot a naive threshold.  The reservation-slack
  // threshold must keep the high-water mark at or under capacity for both
  // switching modes.
  for (const auto switching :
       {Switching::kWormhole, Switching::kVirtualCutThrough}) {
    FlowConfig config = short_config();
    config.injection_rate = 1.0;
    config.packet_flits = 4;
    config.buffer_flits = 8;
    config.switching = switching;
    config.backpressure = Backpressure::kOnOff;
    FlowSim sim(cache, traffic, config);
    const auto result = sim.run();
    EXPECT_LE(result.peak_buffer_flits, config.buffer_flits);
    EXPECT_GT(result.delivered_packets, 0U);
    EXPECT_FALSE(result.deadlocked);
  }
}

TEST_F(FlowEngine, TightBuffersProduceCreditStallsUnderContention) {
  // On the contention-free permutation even 2-flit buffers pipeline at
  // full rate (see the buffer-margin tests) — stalls need *contention*.
  // Uniform traffic collides flows on the leaf downlinks, so wormhole
  // bodies must wait for credits and the stall telemetry lights up.
  FlowConfig config = short_config();
  config.injection_rate = 0.9;
  config.packet_flits = 8;
  config.buffer_flits = 2;
  const auto uniform = sim::TrafficPattern::uniform(ft.leaf_count());
  FlowSim sim(cache, uniform, config);
  const auto result = sim.run();
  EXPECT_GT(result.credit_stall_cycles, 0U);
  EXPECT_GT(result.mean_stall_cycles, 0.0);
  EXPECT_GT(result.p99_stall_cycles, 0.0);
  EXPECT_GT(result.delivered_packets, 0U);
}

TEST_F(FlowEngine, DeepBuffersOutperformShallowOnes) {
  // The whole point of the margin analysis: more buffer -> no worse
  // accepted throughput at the same offered load.
  FlowConfig shallow = short_config();
  shallow.injection_rate = 1.0;
  shallow.packet_flits = 4;
  shallow.buffer_flits = 1;
  FlowSim a(cache, traffic, shallow);
  const auto shallow_result = a.run();

  FlowConfig deep = shallow;
  deep.buffer_flits = 32;
  FlowSim b(cache, traffic, deep);
  const auto deep_result = b.run();

  EXPECT_GE(deep_result.accepted_throughput,
            shallow_result.accepted_throughput);
  EXPECT_LE(deep_result.credit_stall_cycles,
            shallow_result.credit_stall_cycles);
}

TEST_F(FlowEngine, MultipleVirtualChannelsRelieveVcStalls) {
  FlowConfig config = short_config();
  config.injection_rate = 1.0;
  config.packet_flits = 4;
  config.buffer_flits = 4;
  config.vcs = 2;
  FlowSim sim(cache, traffic, config);
  const auto result = sim.run();
  EXPECT_GT(result.delivered_packets, 0U);
  EXPECT_LE(result.peak_buffer_flits, config.buffer_flits);
  EXPECT_FALSE(result.deadlocked);
}

TEST_F(FlowEngine, CreditDelayStretchesStalls) {
  // A longer credit return wire means each buffer slot is reusable less
  // often: delivered throughput must not improve as the delay grows.
  FlowConfig fast = short_config();
  fast.injection_rate = 1.0;
  fast.packet_flits = 4;
  fast.buffer_flits = 2;
  fast.credit_delay = 1;
  FlowSim a(cache, traffic, fast);
  const auto fast_result = a.run();

  FlowConfig slow = fast;
  slow.credit_delay = 8;
  FlowSim b(cache, traffic, slow);
  const auto slow_result = b.run();

  EXPECT_LE(slow_result.accepted_throughput, fast_result.accepted_throughput);
}

TEST_F(FlowEngine, LinkBusyFlitsAccountEveryDeliveredFlit) {
  FlowConfig config = short_config();
  config.injection_rate = 0.5;
  config.packet_flits = 2;
  config.buffer_flits = 8;
  FlowSim sim(cache, traffic, config);
  const auto result = sim.run();
  std::uint64_t total = 0;
  for (const auto flits : sim.link_busy_flits()) total += flits;
  // Every delivered packet crossed >= 2 channels (NIC uplink + ejection
  // downlink), flit by flit.
  EXPECT_GE(total, result.delivered_packets * 2 * config.packet_flits);
}

// --- storage substrate ---------------------------------------------------

TEST(FlitBufferPool, SwitchSlicesBoundAndNicRingsGrow) {
  FlitBufferPool pool(2, 1, 2);
  EXPECT_EQ(pool.switch_buffer_count(), 2U);
  EXPECT_EQ(pool.buffer_count(), 3U);
  EXPECT_EQ(pool.capacity(), 2U);

  pool.push(0, FlitRef{7, 0});
  pool.push(0, FlitRef{7, 1});
  EXPECT_EQ(pool.size(0), 2U);
  EXPECT_EQ(pool.switch_flits_total(), 2U);
  EXPECT_EQ(pool.peak_switch_flits(), 2U);
  EXPECT_EQ(pool.front(0).flit_index, 0U);
  EXPECT_EQ(pool.pop(0).flit_index, 0U);
  EXPECT_EQ(pool.pop(0).flit_index, 1U);
  EXPECT_EQ(pool.switch_flits_total(), 0U);

  // The NIC ring grows past the switch capacity and past its initial
  // allocation, preserving FIFO order across relinearization.
  for (std::uint32_t i = 0; i < 100; ++i) pool.push(2, FlitRef{i, 0});
  EXPECT_EQ(pool.size(2), 100U);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(pool.pop(2).packet_slot, i);
  }
  EXPECT_GT(pool.bytes(), 0U);
}

TEST(CreditLedgerUnit, ReturnsBecomeVisibleAfterTheDelay) {
  CreditLedger ledger(1, 4, 2);
  EXPECT_EQ(ledger.credits(0), 4U);
  ledger.consume(0);
  ledger.consume(0);
  EXPECT_EQ(ledger.credits(0), 2U);
  ledger.schedule_return(0, 10);
  EXPECT_EQ(ledger.pending_returns(0), 1U);
  ledger.advance(11);
  EXPECT_EQ(ledger.credits(0), 2U);  // not yet: due at 10 + 2
  ledger.advance(12);
  EXPECT_EQ(ledger.credits(0), 3U);
  EXPECT_EQ(ledger.pending_returns(0), 0U);
}

TEST(CreditLedgerUnit, RejectsSameCycleReturns) {
  EXPECT_THROW(CreditLedger(1, 4, 0), precondition_error);
}

TEST(OnOffSignalUnit, LatchesFromOccupancyWithThreshold) {
  FlitBufferPool pool(1, 0, 4);
  OnOffSignal signal(1, 3);
  EXPECT_FALSE(signal.off(0));
  pool.push(0, FlitRef{});
  pool.push(0, FlitRef{});
  pool.push(0, FlitRef{});
  signal.mark_dirty(0);
  EXPECT_FALSE(signal.off(0));  // not visible until the latch
  signal.latch(pool);
  EXPECT_TRUE(signal.off(0));
  (void)pool.pop(0);
  signal.mark_dirty(0);
  signal.latch(pool);
  EXPECT_FALSE(signal.off(0));
}

TEST(OnOffSignalUnit, RejectsZeroThreshold) {
  EXPECT_THROW(OnOffSignal(1, 0), precondition_error);
}

}  // namespace
}  // namespace nbclos
