/// \file test_flow_engine.cpp
/// \brief FlowSim behavior under *finite* buffers: configuration
///        validation, wormhole vs virtual cut-through, credit vs on/off
///        backpressure, occupancy bounds, stall telemetry, and the
///        storage substrate (FlitBufferPool / CreditLedger / OnOffSignal).
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/flow/engine.hpp"
#include "nbclos/flow/route_source.hpp"
#include "nbclos/routing/kary_updown.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/shard_router.hpp"

namespace nbclos {
namespace {

using flow::Backpressure;
using flow::CreditLedger;
using flow::FlitBufferPool;
using flow::FlitRef;
using flow::FlowConfig;
using flow::FlowSim;
using flow::kNeverBlocked;
using flow::kNoBuffer;
using flow::OnOffSignal;
using flow::PacketPool;
using flow::Switching;

std::shared_ptr<const routing::ChannelRouteCache> make_cache(
    const FoldedClos& ft, const Network& net,
    const SinglePathRouting& routing) {
  return std::make_shared<const routing::ChannelRouteCache>(
      net, [&](SDPair sd) {
        LinkId run[FoldedClos::kMaxPathLinks];
        const auto count = ft.links_into(routing.route(sd), run);
        std::vector<std::uint32_t> channels;
        for (std::uint32_t i = 0; i < count; ++i) {
          channels.push_back(run[i].value);
        }
        return channels;
      });
}

/// Small shared fabric: ftree(2+4, 3), Yuan routing, shift permutation.
class FlowEngine : public ::testing::Test {
 protected:
  FlowEngine()
      : ft(FtreeParams{2, 4, 3}),
        net(build_network(ft)),
        yuan(ft),
        cache(make_cache(ft, net, yuan)),
        traffic(sim::TrafficPattern::permutation(
            shift_permutation(ft.leaf_count(), 1), ft.leaf_count())) {}

  FlowConfig short_config() const {
    FlowConfig config;
    config.warmup_cycles = 300;
    config.measure_cycles = 1700;
    config.seed = 4242;
    return config;
  }

  FoldedClos ft;
  Network net;
  YuanNonblockingRouting yuan;
  std::shared_ptr<const routing::ChannelRouteCache> cache;
  sim::TrafficPattern traffic;
};

// --- configuration validation -------------------------------------------

TEST_F(FlowEngine, RejectsOutOfRangeInjectionRate) {
  FlowConfig config = short_config();
  config.injection_rate = 1.5;
  EXPECT_THROW(FlowSim(cache, traffic, config), precondition_error);
  config.injection_rate = -0.1;
  EXPECT_THROW(FlowSim(cache, traffic, config), precondition_error);
}

TEST_F(FlowEngine, RejectsZeroFlitPackets) {
  FlowConfig config = short_config();
  config.packet_flits = 0;
  EXPECT_THROW(FlowSim(cache, traffic, config), precondition_error);
}

TEST_F(FlowEngine, RejectsZeroVirtualChannels) {
  FlowConfig config = short_config();
  config.vcs = 0;
  EXPECT_THROW(FlowSim(cache, traffic, config), precondition_error);
}

TEST_F(FlowEngine, VirtualCutThroughNeedsWholePacketBuffers) {
  FlowConfig config = short_config();
  config.switching = Switching::kVirtualCutThrough;
  config.packet_flits = 8;
  config.buffer_flits = 4;
  EXPECT_THROW(FlowSim(cache, traffic, config), precondition_error);
  config.buffer_flits = 8;  // exactly one packet is the documented floor
  EXPECT_NO_THROW(FlowSim(cache, traffic, config));
}

TEST_F(FlowEngine, OnOffNeedsSlackBeyondTheHeadReservation) {
  FlowConfig config = short_config();
  config.backpressure = Backpressure::kOnOff;
  config.switching = Switching::kWormhole;
  config.buffer_flits = 1;  // reservation 1 + no slack -> rejected
  EXPECT_THROW(FlowSim(cache, traffic, config), precondition_error);
  config.buffer_flits = 2;
  EXPECT_NO_THROW(FlowSim(cache, traffic, config));
}

TEST_F(FlowEngine, RejectsMismatchedTrafficPattern) {
  const auto wrong = sim::TrafficPattern::uniform(ft.leaf_count() + 1);
  EXPECT_THROW(FlowSim(cache, wrong, short_config()), precondition_error);
}

TEST_F(FlowEngine, ConfigHelpersEncodeTheSwitchingMode) {
  FlowConfig config;
  config.packet_flits = 4;
  config.buffer_flits = 8;
  config.switching = Switching::kWormhole;
  EXPECT_EQ(config.head_reservation_flits(), 1U);
  EXPECT_EQ(config.onoff_off_threshold(), 7U);
  config.switching = Switching::kVirtualCutThrough;
  EXPECT_EQ(config.head_reservation_flits(), 4U);
  EXPECT_EQ(config.onoff_off_threshold(), 4U);
  EXPECT_FALSE(config.ideal_switch_regime());
}

// --- finite-buffer behavior ---------------------------------------------

TEST_F(FlowEngine, ZeroInjectionDeliversNothing) {
  FlowConfig config = short_config();
  config.injection_rate = 0.0;
  FlowSim sim(cache, traffic, config);
  const auto result = sim.run();
  EXPECT_EQ(result.injected_packets, 0U);
  EXPECT_EQ(result.delivered_packets, 0U);
  EXPECT_EQ(result.accepted_throughput, 0.0);
  EXPECT_EQ(result.peak_buffer_flits, 0U);
  EXPECT_FALSE(result.deadlocked);
}

TEST_F(FlowEngine, WormholePeakOccupancyNeverExceedsCapacity) {
  FlowConfig config = short_config();
  config.injection_rate = 1.0;
  config.packet_flits = 4;
  config.buffer_flits = 4;
  config.switching = Switching::kWormhole;
  FlowSim sim(cache, traffic, config);
  const auto result = sim.run();
  EXPECT_LE(result.peak_buffer_flits, config.buffer_flits);
  EXPECT_GT(result.delivered_packets, 0U);
  EXPECT_FALSE(result.deadlocked);
}

TEST_F(FlowEngine, OnOffOccupancyNeverExceedsCapacity) {
  // The on/off bound is the subtle one: a 1-cycle stale stop bit plus an
  // in-flight flit can overshoot a naive threshold.  The reservation-slack
  // threshold must keep the high-water mark at or under capacity for both
  // switching modes.
  for (const auto switching :
       {Switching::kWormhole, Switching::kVirtualCutThrough}) {
    FlowConfig config = short_config();
    config.injection_rate = 1.0;
    config.packet_flits = 4;
    config.buffer_flits = 8;
    config.switching = switching;
    config.backpressure = Backpressure::kOnOff;
    FlowSim sim(cache, traffic, config);
    const auto result = sim.run();
    EXPECT_LE(result.peak_buffer_flits, config.buffer_flits);
    EXPECT_GT(result.delivered_packets, 0U);
    EXPECT_FALSE(result.deadlocked);
  }
}

TEST_F(FlowEngine, TightBuffersProduceCreditStallsUnderContention) {
  // On the contention-free permutation even 2-flit buffers pipeline at
  // full rate (see the buffer-margin tests) — stalls need *contention*.
  // Uniform traffic collides flows on the leaf downlinks, so wormhole
  // bodies must wait for credits and the stall telemetry lights up.
  FlowConfig config = short_config();
  config.injection_rate = 0.9;
  config.packet_flits = 8;
  config.buffer_flits = 2;
  const auto uniform = sim::TrafficPattern::uniform(ft.leaf_count());
  FlowSim sim(cache, uniform, config);
  const auto result = sim.run();
  EXPECT_GT(result.credit_stall_cycles, 0U);
  EXPECT_GT(result.mean_stall_cycles, 0.0);
  EXPECT_GT(result.p99_stall_cycles, 0.0);
  EXPECT_GT(result.delivered_packets, 0U);
}

TEST_F(FlowEngine, DeepBuffersOutperformShallowOnes) {
  // The whole point of the margin analysis: more buffer -> no worse
  // accepted throughput at the same offered load.
  FlowConfig shallow = short_config();
  shallow.injection_rate = 1.0;
  shallow.packet_flits = 4;
  shallow.buffer_flits = 1;
  FlowSim a(cache, traffic, shallow);
  const auto shallow_result = a.run();

  FlowConfig deep = shallow;
  deep.buffer_flits = 32;
  FlowSim b(cache, traffic, deep);
  const auto deep_result = b.run();

  EXPECT_GE(deep_result.accepted_throughput,
            shallow_result.accepted_throughput);
  EXPECT_LE(deep_result.credit_stall_cycles,
            shallow_result.credit_stall_cycles);
}

TEST_F(FlowEngine, MultipleVirtualChannelsRelieveVcStalls) {
  FlowConfig config = short_config();
  config.injection_rate = 1.0;
  config.packet_flits = 4;
  config.buffer_flits = 4;
  config.vcs = 2;
  FlowSim sim(cache, traffic, config);
  const auto result = sim.run();
  EXPECT_GT(result.delivered_packets, 0U);
  EXPECT_LE(result.peak_buffer_flits, config.buffer_flits);
  EXPECT_FALSE(result.deadlocked);
}

TEST_F(FlowEngine, CreditDelayStretchesStalls) {
  // A longer credit return wire means each buffer slot is reusable less
  // often: delivered throughput must not improve as the delay grows.
  FlowConfig fast = short_config();
  fast.injection_rate = 1.0;
  fast.packet_flits = 4;
  fast.buffer_flits = 2;
  fast.credit_delay = 1;
  FlowSim a(cache, traffic, fast);
  const auto fast_result = a.run();

  FlowConfig slow = fast;
  slow.credit_delay = 8;
  FlowSim b(cache, traffic, slow);
  const auto slow_result = b.run();

  EXPECT_LE(slow_result.accepted_throughput, fast_result.accepted_throughput);
}

TEST_F(FlowEngine, LinkBusyFlitsAccountEveryDeliveredFlit) {
  FlowConfig config = short_config();
  config.injection_rate = 0.5;
  config.packet_flits = 2;
  config.buffer_flits = 8;
  FlowSim sim(cache, traffic, config);
  const auto result = sim.run();
  std::uint64_t total = 0;
  for (const auto flits : sim.link_busy_flits()) total += flits;
  // Every delivered packet crossed >= 2 channels (NIC uplink + ejection
  // downlink), flit by flit.
  EXPECT_GE(total, result.delivered_packets * 2 * config.packet_flits);
}

// --- storage substrate ---------------------------------------------------

TEST(FlitBufferPool, SwitchSlicesBoundAndNicRingsGrow) {
  FlitBufferPool pool(2, 1, 2);
  EXPECT_EQ(pool.switch_buffer_count(), 2U);
  EXPECT_EQ(pool.buffer_count(), 3U);
  EXPECT_EQ(pool.capacity(), 2U);
  EXPECT_EQ(pool.resident_slots(), 0U);  // no storage until first flit

  pool.push(0, FlitRef{7, 0});
  pool.push(0, FlitRef{7, 1});
  EXPECT_EQ(pool.resident_slots(), 1U);
  EXPECT_EQ(pool.size(0), 2U);
  EXPECT_EQ(pool.switch_flits_total(), 2U);
  EXPECT_EQ(pool.peak_switch_flits(), 2U);
  EXPECT_EQ(pool.front(0).flit_index, 0U);
  EXPECT_EQ(pool.pop(0).flit_index, 0U);
  EXPECT_EQ(pool.pop(0).flit_index, 1U);
  EXPECT_EQ(pool.switch_flits_total(), 0U);

  // The NIC ring grows past the switch capacity and past its initial
  // allocation, preserving FIFO order across relinearization.
  for (std::uint32_t i = 0; i < 100; ++i) pool.push(2, FlitRef{i, 0});
  EXPECT_EQ(pool.size(2), 100U);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(pool.pop(2).packet_slot, i);
  }
  EXPECT_GT(pool.bytes(), 0U);
}

TEST(FlitBufferPool, NicRingWrapsAroundAcrossGrowth) {
  FlitBufferPool pool(0, 1, 2);
  // Interleave pushes and pops so the head cursor wraps inside the
  // initial 16-entry ring, then force growth mid-wrap: relinearization
  // must preserve FIFO order from an arbitrary head offset.
  std::uint32_t next_push = 0;
  std::uint32_t next_pop = 0;
  for (std::uint32_t round = 0; round < 10; ++round) {
    for (std::uint32_t i = 0; i < 12; ++i) pool.push(0, FlitRef{next_push++, 0});
    for (std::uint32_t i = 0; i < 12; ++i) {
      EXPECT_EQ(pool.pop(0).packet_slot, next_pop++);
    }
  }
  for (std::uint32_t i = 0; i < 200; ++i) pool.push(0, FlitRef{next_push++, 0});
  while (next_pop < next_push) {
    EXPECT_EQ(pool.pop(0).packet_slot, next_pop++);
  }
  EXPECT_EQ(pool.size(0), 0U);
}

TEST(FlitBufferPool, SlotsRecycleWhenStateReturnsToDefault) {
  FlitBufferPool pool(4, 0, 4);
  pool.push(0, FlitRef{1, 0});
  pool.push(2, FlitRef{2, 0});
  EXPECT_EQ(pool.resident_slots(), 2U);
  EXPECT_TRUE(pool.has_slot(0));
  EXPECT_FALSE(pool.has_slot(1));

  // Draining alone releases; non-default side state pins.
  (void)pool.pop(0);
  pool.maybe_release(0);
  EXPECT_FALSE(pool.has_slot(0));
  EXPECT_EQ(pool.resident_slots(), 1U);

  (void)pool.pop(2);
  pool.set_claim(2, 7);
  pool.maybe_release(2);
  EXPECT_TRUE(pool.has_slot(2));  // claim pins the slot
  pool.set_claim(2, kNoBuffer);
  pool.maybe_release(2);
  EXPECT_FALSE(pool.has_slot(2));
  EXPECT_EQ(pool.resident_slots(), 0U);

  // A recycled slot is reused for the next activation, so the slab's
  // high-water mark tracks simultaneous residency, not total traffic.
  const std::uint32_t before = pool.peak_slots();
  pool.push(3, FlitRef{3, 0});
  EXPECT_EQ(pool.peak_slots(), before);
  // Reset state: a fresh slot starts with defaults, not the recycled
  // slot's stale out_alloc/claim.
  EXPECT_EQ(pool.out_alloc(3), kNoBuffer);
  EXPECT_EQ(pool.claim(3), kNoBuffer);
  EXPECT_EQ(pool.blocked_since(3), kNeverBlocked);
}

TEST(PacketPoolUnit, RecyclesSlotsAndTracksHighWater) {
  PacketPool pool;
  sim::Packet p;
  p.size_flits = 1;
  const std::uint32_t a = pool.acquire(p);
  const std::uint32_t b = pool.acquire(p);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.live(), 2U);
  EXPECT_EQ(pool.slot_count(), 2U);
  pool.release(a);
  EXPECT_EQ(pool.live(), 1U);
  // The freed slot is reused before the slab grows.
  const std::uint32_t c = pool.acquire(p);
  EXPECT_EQ(c, a);
  EXPECT_EQ(pool.slot_count(), 2U);  // high-water, not total acquires
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.live(), 0U);
  EXPECT_EQ(pool.slot_count(), 2U);
}

TEST(PacketPoolUnit, DebugChecksCatchDoubleReleaseAndUseAfterRelease) {
  if constexpr (!kDebugChecksEnabled) {
    GTEST_SKIP() << "NBCLOS_DEBUG_CHECKS compiled out";
  } else {
    PacketPool pool;
    sim::Packet p;
    p.id = 42;
    const std::uint32_t slot = pool.acquire(p);
    pool.release(slot);
    EXPECT_THROW(pool.release(slot), precondition_error);
    EXPECT_THROW((void)pool.at(slot), precondition_error);
    // Reacquiring clears the tombstone.
    const std::uint32_t again = pool.acquire(p);
    EXPECT_EQ(again, slot);
    EXPECT_EQ(pool.at(again).id, 42U);
  }
}

TEST(CreditLedgerUnit, ReturnsBecomeVisibleAfterTheDelay) {
  FlitBufferPool pool(1, 0, 4);
  CreditLedger ledger(pool, 2);
  EXPECT_EQ(ledger.credits(0), 4U);
  ledger.consume(0);
  ledger.consume(0);
  EXPECT_EQ(ledger.credits(0), 2U);
  ledger.schedule_return(0, 10);
  EXPECT_EQ(ledger.pending_returns(0), 1U);
  ledger.advance(11);
  EXPECT_EQ(ledger.credits(0), 2U);  // not yet: due at 10 + 2
  ledger.advance(12);
  EXPECT_EQ(ledger.credits(0), 3U);
  EXPECT_EQ(ledger.pending_returns(0), 0U);
}

TEST(CreditLedgerUnit, CreditActivityAlonePinsAndReleasesSlots) {
  FlitBufferPool pool(2, 0, 4);
  CreditLedger ledger(pool, 1);
  EXPECT_EQ(pool.resident_slots(), 0U);
  ledger.consume(0);  // credit state binds a slot without any flit
  EXPECT_TRUE(pool.has_slot(0));
  ledger.schedule_return(0, 5);
  ledger.advance(6);  // return applied -> all-default -> recycled
  EXPECT_FALSE(pool.has_slot(0));
  EXPECT_EQ(ledger.credits(0), 4U);
}

TEST(CreditLedgerUnit, RejectsSameCycleReturns) {
  FlitBufferPool pool(1, 0, 4);
  EXPECT_THROW(CreditLedger(pool, 0), precondition_error);
}

TEST(OnOffSignalUnit, LatchesFromOccupancyWithThreshold) {
  FlitBufferPool pool(1, 0, 4);
  OnOffSignal signal(pool, 3);
  EXPECT_FALSE(signal.off(0));
  pool.push(0, FlitRef{});
  pool.push(0, FlitRef{});
  pool.push(0, FlitRef{});
  signal.mark_dirty(0);
  EXPECT_FALSE(signal.off(0));  // not visible until the latch
  signal.latch();
  EXPECT_TRUE(signal.off(0));
  (void)pool.pop(0);
  signal.mark_dirty(0);
  signal.latch();
  EXPECT_FALSE(signal.off(0));
}

TEST(OnOffSignalUnit, RejectsZeroThreshold) {
  FlitBufferPool pool(1, 0, 4);
  EXPECT_THROW(OnOffSignal(pool, 0), precondition_error);
}

// --- mmap spill ----------------------------------------------------------

TEST(MmapSpill, SpilledArenasAreBitIdenticalToHeap) {
  // The same run, once on heap arenas and once with every FlatStore
  // spilled to unlinked temp files: storage placement must be invisible
  // to the simulation.  The env var is only read at pool construction,
  // so scoping it around the engine is race-free in this serial test.
  const FoldedClos ft(FtreeParams{2, 4, 3});
  const Network net = build_network(ft);
  const YuanNonblockingRouting yuan(ft);
  const auto cache = make_cache(ft, net, yuan);
  const auto traffic = sim::TrafficPattern::permutation(
      shift_permutation(ft.leaf_count(), 1), ft.leaf_count());
  FlowConfig config;
  config.injection_rate = 0.7;
  config.warmup_cycles = 200;
  config.measure_cycles = 800;
  config.seed = 99;
  config.counter_injection = true;

  FlowSim heap_sim(cache, traffic, config);
  const auto heap_result = heap_sim.run();
  EXPECT_EQ(heap_sim.arena_stats().spill_bytes, 0U);

  ASSERT_EQ(setenv("NBCLOS_MMAP_CACHE", "1", 1), 0);
  FlowSim spill_sim(cache, traffic, config);
  unsetenv("NBCLOS_MMAP_CACHE");
  const auto spill_result = spill_sim.run();
  EXPECT_GT(spill_sim.arena_stats().spill_bytes, 0U);

  EXPECT_EQ(heap_result.accepted_throughput, spill_result.accepted_throughput);
  EXPECT_EQ(heap_result.injected_packets, spill_result.injected_packets);
  EXPECT_EQ(heap_result.delivered_packets, spill_result.delivered_packets);
  EXPECT_EQ(heap_result.mean_latency, spill_result.mean_latency);
  EXPECT_EQ(heap_result.p99_latency, spill_result.p99_latency);
  EXPECT_EQ(heap_result.credit_stall_cycles, spill_result.credit_stall_cycles);
  EXPECT_EQ(heap_result.vc_stall_cycles, spill_result.vc_stall_cycles);
  EXPECT_EQ(heap_result.peak_buffer_flits, spill_result.peak_buffer_flits);
  EXPECT_EQ(heap_result.peak_live_packets, spill_result.peak_live_packets);
  EXPECT_EQ(heap_result.deadlocked, spill_result.deadlocked);
}

// --- pure route sources --------------------------------------------------

TEST(PureRouteSourceFlow, MatchesRouteCacheOnKaryTree) {
  // The same flow run through the O(T^2) table and the O(1) dmodk
  // arithmetic: identical routes must mean identical results, which is
  // what lets the scale bench drop the table entirely.
  const Network net = build_kary_ntree(3, 3);
  const auto terminals = static_cast<std::uint32_t>(net.terminals().size());
  const KaryTreeRouter table_router(net, 3, 3);
  const auto cache = std::make_shared<const routing::ChannelRouteCache>(
      net, [&](SDPair sd) { return table_router.route(sd); });
  const auto pure = std::make_shared<const flow::PureRouteSource>(
      net, std::make_shared<const sim::KaryDmodkRouter>(net, 3, 3));
  EXPECT_EQ(pure->bytes(), 0U);
  const auto traffic = sim::TrafficPattern::permutation(
      shift_permutation(terminals, 4), terminals);
  FlowConfig config;
  config.injection_rate = 0.3;
  config.warmup_cycles = 200;
  config.measure_cycles = 800;
  config.seed = 7;
  config.counter_injection = true;

  FlowSim cached(cache, traffic, config);
  const auto cached_result = cached.run();
  FlowSim arith(pure, traffic, config);
  const auto arith_result = arith.run();
  EXPECT_EQ(cached_result.accepted_throughput,
            arith_result.accepted_throughput);
  EXPECT_EQ(cached_result.delivered_packets, arith_result.delivered_packets);
  EXPECT_EQ(cached_result.mean_latency, arith_result.mean_latency);
  EXPECT_EQ(cached_result.credit_stall_cycles,
            arith_result.credit_stall_cycles);
  EXPECT_EQ(cached_result.peak_buffer_flits, arith_result.peak_buffer_flits);
}

}  // namespace
}  // namespace nbclos
