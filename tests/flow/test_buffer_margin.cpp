/// \file test_buffer_margin.cpp
/// \brief analysis::buffer_margin_sweep — the minimum buffer depth at
///        which a routing sustains its offered load ("min flits per port
///        for nonblocking").  Checks input validation, infeasible-depth
///        handling, and the expected shape of the margin curve on a
///        contention-free Yuan routing.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/flow/buffer_margin.hpp"
#include "nbclos/flow/engine.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

using analysis::BufferMarginConfig;
using analysis::buffer_margin_sweep;
using flow::FlowConfig;
using flow::Switching;

std::shared_ptr<const routing::ChannelRouteCache> make_cache(
    const FoldedClos& ft, const Network& net,
    const SinglePathRouting& routing) {
  return std::make_shared<const routing::ChannelRouteCache>(
      net, [&](SDPair sd) {
        LinkId run[FoldedClos::kMaxPathLinks];
        const auto count = ft.links_into(routing.route(sd), run);
        std::vector<std::uint32_t> channels;
        for (std::uint32_t i = 0; i < count; ++i) {
          channels.push_back(run[i].value);
        }
        return channels;
      });
}

class BufferMargin : public ::testing::Test {
 protected:
  BufferMargin()
      : ft(FtreeParams{2, 4, 3}),
        net(build_network(ft)),
        yuan(ft),
        cache(make_cache(ft, net, yuan)),
        traffic(sim::TrafficPattern::permutation(
            shift_permutation(ft.leaf_count(), 1), ft.leaf_count())) {}

  BufferMarginConfig margin_config() const {
    BufferMarginConfig config;
    config.buffer_sizes = {1, 2, 4, 8, 16};
    config.probe_load = 0.9;
    config.base.packet_flits = 4;
    config.base.warmup_cycles = 300;
    config.base.measure_cycles = 1700;
    config.base.seed = 31;
    return config;
  }

  FoldedClos ft;
  Network net;
  YuanNonblockingRouting yuan;
  std::shared_ptr<const routing::ChannelRouteCache> cache;
  sim::TrafficPattern traffic;
};

TEST_F(BufferMargin, RejectsMalformedSweeps) {
  BufferMarginConfig config = margin_config();
  config.buffer_sizes = {};
  EXPECT_THROW(buffer_margin_sweep(cache, traffic, config),
               precondition_error);
  config = margin_config();
  config.buffer_sizes = {4, 4, 8};  // not strictly ascending
  EXPECT_THROW(buffer_margin_sweep(cache, traffic, config),
               precondition_error);
  config = margin_config();
  config.probe_load = 0.0;
  EXPECT_THROW(buffer_margin_sweep(cache, traffic, config),
               precondition_error);
  config = margin_config();
  config.sustain_fraction = 1.5;
  EXPECT_THROW(buffer_margin_sweep(cache, traffic, config),
               precondition_error);
}

TEST_F(BufferMargin, FindsAFiniteMarginOnTheNonblockingRouting) {
  const auto result = buffer_margin_sweep(cache, traffic, margin_config());
  ASSERT_EQ(result.points.size(), 5U);
  // Contention-free routing with generous buffers must sustain the load:
  // the curve reaches "sustained" somewhere in the probed range.
  EXPECT_GT(result.min_flits_nonblocking, 0U);
  // And the reported margin is the first sustained point, with every
  // probed point keeping its configured depth.
  bool seen_min = false;
  for (const auto& point : result.points) {
    if (!seen_min && point.sustained) {
      EXPECT_EQ(point.buffer_flits, result.min_flits_nonblocking);
      seen_min = true;
    }
    EXPECT_TRUE(point.feasible);  // wormhole + credit: every depth runs
    EXPECT_FALSE(point.deadlocked);
    EXPECT_LE(point.peak_buffer_flits, point.buffer_flits);
  }
  EXPECT_TRUE(seen_min);
  // The deepest probe is comfortably past the margin.
  EXPECT_TRUE(result.points.back().sustained);
}

TEST_F(BufferMargin, ThroughputImprovesWithDepthUpToTheMargin) {
  const auto result = buffer_margin_sweep(cache, traffic, margin_config());
  // Deeper buffers never hurt on a contention-free routing: accepted
  // throughput is non-decreasing along the probed depths (within one
  // packet of slack the discrete simulator can introduce).
  for (std::size_t i = 1; i < result.points.size(); ++i) {
    EXPECT_GE(result.points[i].accepted_throughput,
              result.points[i - 1].accepted_throughput - 0.02)
        << "depth " << result.points[i].buffer_flits;
  }
}

TEST_F(BufferMargin, MarksDepthsBelowTheVctFloorInfeasible) {
  BufferMarginConfig config = margin_config();
  config.base.switching = Switching::kVirtualCutThrough;
  config.base.packet_flits = 4;
  config.buffer_sizes = {1, 2, 4, 8};
  const auto result = buffer_margin_sweep(cache, traffic, config);
  ASSERT_EQ(result.points.size(), 4U);
  // Depths 1 and 2 cannot hold a whole 4-flit packet: recorded as
  // infeasible, never run, never sustained.
  EXPECT_FALSE(result.points[0].feasible);
  EXPECT_FALSE(result.points[0].sustained);
  EXPECT_FALSE(result.points[1].feasible);
  EXPECT_TRUE(result.points[2].feasible);
  EXPECT_TRUE(result.points[3].feasible);
  // The margin, if found, is at least the VCT floor.
  if (result.min_flits_nonblocking != 0) {
    EXPECT_GE(result.min_flits_nonblocking, config.base.packet_flits);
  }
}

TEST_F(BufferMargin, SingleFlitPacketsNeedOnlyShallowBuffers) {
  // In the near-ideal regime (1-flit packets) the nonblocking routing
  // sustains the probe with just a few flits per port — the cheap end of
  // the margin curve the bench sweeps report.
  BufferMarginConfig config = margin_config();
  config.base.packet_flits = 1;
  config.buffer_sizes = {1, 2, 4};
  const auto result = buffer_margin_sweep(cache, traffic, config);
  EXPECT_GT(result.min_flits_nonblocking, 0U);
  EXPECT_LE(result.min_flits_nonblocking, 4U);
}

TEST_F(BufferMargin, BisectionMatchesTheFullSweepAtEveryShardCount) {
  // Same grid, same probes modulo injection mode: with counter injection
  // in the base config the serial sweep and the sharded bisection probe
  // identical simulations, so the margin must agree — and the bisection
  // must get there in O(log N) probes at every shard count.
  BufferMarginConfig config = margin_config();
  config.base.counter_injection = true;
  const auto sweep = buffer_margin_sweep(cache, traffic, config);
  ASSERT_GT(sweep.min_flits_nonblocking, 0U);
  for (const std::uint32_t shards : {1U, 2U, 4U}) {
    const auto bisect =
        analysis::buffer_margin_bisect(cache, traffic, config, shards);
    EXPECT_EQ(bisect.min_flits_nonblocking, sweep.min_flits_nonblocking)
        << "shards=" << shards;
    EXPECT_LE(bisect.points.size(), 4U) << "log2(5) probes + boundary";
    // Probed points carry real evidence and ascend by depth.
    for (std::size_t i = 0; i < bisect.points.size(); ++i) {
      if (i > 0) {
        EXPECT_GT(bisect.points[i].buffer_flits,
                  bisect.points[i - 1].buffer_flits);
      }
      if (bisect.points[i].buffer_flits >= sweep.min_flits_nonblocking) {
        EXPECT_TRUE(bisect.points[i].sustained);
      }
    }
  }
}

TEST_F(BufferMargin, BisectionReportsZeroWhenNoDepthSustains) {
  BufferMarginConfig config = margin_config();
  config.probe_load = 1.0;
  config.base.packet_flits = 8;
  config.base.credit_delay = 8;
  config.buffer_sizes = {1};
  const auto result = analysis::buffer_margin_bisect(cache, traffic, config, 2);
  ASSERT_EQ(result.points.size(), 1U);
  EXPECT_FALSE(result.points[0].sustained);
  EXPECT_EQ(result.min_flits_nonblocking, 0U);
}

TEST_F(BufferMargin, ReportsZeroWhenNoDepthSustains) {
  // Probing only depth 1 under long wormhole packets at full load: the
  // credit round trip throttles every channel well below the sustain
  // fraction, so the sweep must report "no margin found" (0), not a
  // bogus depth.
  BufferMarginConfig config = margin_config();
  config.probe_load = 1.0;
  config.base.packet_flits = 8;
  config.base.credit_delay = 8;
  config.buffer_sizes = {1};
  const auto result = buffer_margin_sweep(cache, traffic, config);
  ASSERT_EQ(result.points.size(), 1U);
  EXPECT_TRUE(result.points[0].feasible);
  EXPECT_FALSE(result.points[0].sustained);
  EXPECT_EQ(result.min_flits_nonblocking, 0U);
}

}  // namespace
}  // namespace nbclos
