#include "nbclos/routing/table.hpp"

#include <gtest/gtest.h>

#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

TEST(RoutingTable, SetAndLookup) {
  const FoldedClos ft(FtreeParams{2, 3, 4});
  RoutingTable table(ft);
  const SDPair sd{LeafId{0}, LeafId{5}};
  EXPECT_EQ(table.lookup(sd), std::nullopt);
  table.set(sd, TopId{2});
  EXPECT_EQ(table.lookup(sd), TopId{2});
  table.set(sd, TopId{1});  // overwrite
  EXPECT_EQ(table.lookup(sd), TopId{1});
  EXPECT_EQ(table.size(), 1U);
}

TEST(RoutingTable, RejectsDirectPairsAndBadTops) {
  const FoldedClos ft(FtreeParams{2, 3, 4});
  RoutingTable table(ft);
  EXPECT_THROW(table.set({LeafId{0}, LeafId{1}}, TopId{0}),
               precondition_error);
  EXPECT_THROW(table.set({LeafId{0}, LeafId{5}}, TopId{3}),
               precondition_error);
}

TEST(RoutingTable, PathFallsBackToDirect) {
  const FoldedClos ft(FtreeParams{2, 3, 4});
  RoutingTable table(ft);
  const auto path = table.path({LeafId{0}, LeafId{1}});
  EXPECT_TRUE(path.direct);
  EXPECT_THROW((void)table.path({LeafId{0}, LeafId{5}}), precondition_error);
}

TEST(RoutingTable, MaterializeCoversAllCrossPairs) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const YuanNonblockingRouting routing(ft);
  const auto table = RoutingTable::materialize(routing);
  EXPECT_EQ(table.size(), ft.cross_pair_count());
  // Lookup agrees with the live algorithm everywhere.
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      const SDPair sd{LeafId{s}, LeafId{d}};
      if (s == d || !ft.needs_top(sd)) continue;
      EXPECT_EQ(table.lookup(sd), routing.route(sd).top);
    }
  }
}

TEST(RoutingTable, FromPathsSkipsDirect) {
  const FoldedClos ft(FtreeParams{2, 3, 4});
  std::vector<FtreePath> paths;
  paths.push_back(ft.cross_path({LeafId{0}, LeafId{5}}, TopId{1}));
  paths.push_back(ft.direct_path({LeafId{0}, LeafId{1}}));
  const auto table = RoutingTable::from_paths(ft, paths);
  EXPECT_EQ(table.size(), 1U);
  EXPECT_EQ(table.lookup({LeafId{0}, LeafId{5}}), TopId{1});
}

TEST(RoutingTable, TopSwitchesUsedIsMaxPlusOne) {
  const FoldedClos ft(FtreeParams{2, 6, 4});
  RoutingTable table(ft);
  EXPECT_EQ(table.top_switches_used(), 0U);
  table.set({LeafId{0}, LeafId{5}}, TopId{0});
  table.set({LeafId{1}, LeafId{6}}, TopId{4});
  EXPECT_EQ(table.top_switches_used(), 5U);
}

}  // namespace
}  // namespace nbclos
