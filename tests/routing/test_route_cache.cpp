/// Golden tests for the CSR route caches: the flattened link runs must
/// reproduce the live route() calls bit-for-bit, including degraded
/// (flagged) fabrics and the large-radix smoke instance.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/routing/baselines.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/topology/network.hpp"
#include "nbclos/util/prng.hpp"

namespace nbclos {
namespace {

/// The link ids of routing.route(sd), in path order.
std::vector<std::uint32_t> live_links(const SinglePathRouting& routing,
                                      SDPair sd) {
  LinkId run[FoldedClos::kMaxPathLinks];
  const auto count = routing.ftree().links_into(routing.route(sd), run);
  std::vector<std::uint32_t> out;
  for (std::uint32_t i = 0; i < count; ++i) out.push_back(run[i].value);
  return out;
}

TEST(RouteCache, MatchesLiveRoutingOnEveryPair) {
  const FoldedClos ft(FtreeParams{3, 9, 5});
  const YuanNonblockingRouting yuan(ft);
  const auto cache = routing::RouteCache::materialize(yuan);
  ASSERT_EQ(cache.leaf_count(), ft.leaf_count());
  ASSERT_EQ(cache.link_count(), ft.link_count());
  EXPECT_FALSE(cache.any_unroutable());
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      const auto run = cache.links(s, d);
      if (s == d) {
        EXPECT_TRUE(run.empty());
        continue;
      }
      const auto expect = live_links(yuan, SDPair{LeafId{s}, LeafId{d}});
      ASSERT_EQ(run.size(), expect.size()) << "pair " << s << "->" << d;
      for (std::size_t i = 0; i < expect.size(); ++i) {
        EXPECT_EQ(run[i], expect[i]) << "pair " << s << "->" << d;
      }
      EXPECT_EQ(cache.flags(s, d), 0);
    }
  }
}

TEST(RouteCache, RunLengthsFollowPairKind) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const DModKRouting dmodk(ft);
  const auto cache = routing::RouteCache::materialize(dmodk);
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      const auto run = cache.links(s, d);
      if (s == d) {
        EXPECT_EQ(run.size(), 0U);
      } else if (ft.switch_of(LeafId{s}) == ft.switch_of(LeafId{d})) {
        EXPECT_EQ(run.size(), 2U);  // leaf-up + leaf-down
      } else {
        EXPECT_EQ(run.size(), 4U);  // up through a top switch and back
      }
    }
  }
}

TEST(RouteCache, BuildFnFlagsMarkUnroutablePairs) {
  const FoldedClos ft(FtreeParams{2, 4, 3});
  const DModKRouting dmodk(ft);
  // Declare every pair out of leaf 0 unroutable; everything else routes.
  const routing::RouteCache cache(
      ft, [&](SDPair sd, FtreePath& path) -> std::uint8_t {
        if (sd.src.value == 0) return routing::RouteCache::kUnroutable;
        dmodk.route_into(sd, path);
        return sd.dst.value == 1 ? routing::RouteCache::kFallback
                                 : std::uint8_t{0};
      });
  EXPECT_TRUE(cache.any_unroutable());
  for (std::uint32_t d = 1; d < ft.leaf_count(); ++d) {
    EXPECT_TRUE(cache.unroutable(0, d));
    EXPECT_TRUE(cache.links(0, d).empty());
  }
  EXPECT_FALSE(cache.unroutable(2, 0));
  EXPECT_EQ(cache.flags(2, 1), routing::RouteCache::kFallback);
  EXPECT_FALSE(cache.links(2, 1).empty());
}

TEST(RouteCache, ReportsArenaBytes) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const DModKRouting dmodk(ft);
  const auto cache = routing::RouteCache::materialize(dmodk);
  // At least the offsets table and the link runs must be accounted.
  EXPECT_GE(cache.bytes(),
            (cache.pair_count() + 1) * sizeof(std::uint32_t));
}

TEST(ChannelRouteCache, NextHopWalksThePrecomputedRun) {
  const FoldedClos ft(FtreeParams{2, 4, 3});
  const Network net = build_network(ft);
  const YuanNonblockingRouting yuan(ft);
  // channel id == LinkId by the FtreeNetworkMap contract.
  const routing::ChannelRouteCache cache(
      net, [&](SDPair sd) {
        LinkId run[FoldedClos::kMaxPathLinks];
        const auto count = ft.links_into(yuan.route(sd), run);
        std::vector<std::uint32_t> channels;
        for (std::uint32_t i = 0; i < count; ++i) {
          channels.push_back(run[i].value);
        }
        return channels;
      });
  ASSERT_EQ(cache.terminal_count(), ft.leaf_count());
  const auto terminals = net.terminals();
  for (std::uint32_t s = 0; s < cache.terminal_count(); ++s) {
    for (std::uint32_t d = 0; d < cache.terminal_count(); ++d) {
      if (s == d) {
        EXPECT_TRUE(cache.channels(s, d).empty());
        continue;
      }
      // Walking next_channel_from hop by hop reproduces the stored run
      // and ends at the destination terminal.
      std::uint32_t at = terminals[s];
      for (const auto expected : cache.channels(s, d)) {
        const auto c = cache.next_channel_from(at, terminals[s], terminals[d]);
        EXPECT_EQ(c, expected);
        at = net.channel_dst(c);
      }
      EXPECT_EQ(at, terminals[d]);
    }
  }
}

TEST(ChannelRouteCache, RejectsBrokenChains) {
  const FoldedClos ft(FtreeParams{2, 4, 3});
  const Network net = build_network(ft);
  EXPECT_THROW(routing::ChannelRouteCache(
                   net,
                   [&](SDPair) {
                     // A single down-link never starts at a terminal.
                     return std::vector<std::uint32_t>{
                         ft.leaf_down_link(LeafId{0}).value};
                   }),
               precondition_error);
  EXPECT_THROW(
      routing::ChannelRouteCache(
          net, [&](SDPair) { return std::vector<std::uint32_t>{}; }),
      precondition_error);
}

// --- large-radix smoke: ftree(8+64, 48) ---------------------------------

TEST(RouteCacheScale, Radix48RoutesAndAuditAgree) {
  const FoldedClos ft(FtreeParams{8, 64, 48});  // 384 leafs, 48 switches
  const YuanNonblockingRouting yuan(ft);
  const auto cache = routing::RouteCache::materialize(yuan);
  ASSERT_EQ(cache.leaf_count(), 384U);
  EXPECT_FALSE(cache.any_unroutable());

  // Spot-check the cached runs against live routing on a deterministic
  // sample of pairs (the full 384^2 sweep is covered at small radix).
  Xoshiro256 rng(48);
  for (int probe = 0; probe < 2000; ++probe) {
    const auto s = static_cast<std::uint32_t>(rng.below(ft.leaf_count()));
    const auto d = static_cast<std::uint32_t>(rng.below(ft.leaf_count()));
    if (s == d) continue;
    const auto run = cache.links(s, d);
    const auto expect = live_links(yuan, SDPair{LeafId{s}, LeafId{d}});
    ASSERT_EQ(run.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i) {
      EXPECT_EQ(run[i], expect[i]);
    }
  }

  // Every cached link id stays inside the fabric.
  for (std::uint32_t s = 0; s < ft.leaf_count(); s += 37) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      for (const auto link : cache.links(s, d)) {
        ASSERT_LT(link, ft.link_count());
      }
    }
  }

  // m = 64 >= n^2 = 64: Theorem 3 applies and the Lemma 1 audit must
  // certify the routing nonblocking at this radix.
  EXPECT_TRUE(lemma1_audit(yuan).empty());
}

}  // namespace
}  // namespace nbclos
