#include "nbclos/routing/multipath.hpp"

#include <gtest/gtest.h>

#include <set>

#include "nbclos/analysis/contention.hpp"

namespace nbclos {
namespace {

TEST(Multipath, CandidateSetHasRequestedWidth) {
  const FoldedClos ft(FtreeParams{2, 6, 4});
  MultipathObliviousRouting routing(ft, 4, SpreadPolicy::kRoundRobin);
  const SDPair sd{LeafId{0}, LeafId{5}};
  const auto cands = routing.candidates(sd);
  EXPECT_EQ(cands.size(), 4U);
  std::set<std::uint32_t> unique;
  for (const auto t : cands) {
    EXPECT_LT(t.value, ft.m());
    unique.insert(t.value);
  }
  EXPECT_EQ(unique.size(), 4U);  // distinct candidates
}

TEST(Multipath, CandidatesAreTrafficOblivious) {
  // Same SD pair -> same candidate set, always (routes are fixed before
  // any traffic exists; §IV-B).
  const FoldedClos ft(FtreeParams{3, 9, 5});
  MultipathObliviousRouting a(ft, 3, SpreadPolicy::kHash, 1);
  MultipathObliviousRouting b(ft, 3, SpreadPolicy::kRandom, 999);
  const SDPair sd{LeafId{1}, LeafId{10}};
  EXPECT_EQ(a.candidates(sd), b.candidates(sd));
}

TEST(Multipath, RoundRobinCyclesThroughCandidates) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  MultipathObliviousRouting routing(ft, 4, SpreadPolicy::kRoundRobin);
  const SDPair sd{LeafId{0}, LeafId{5}};
  const auto cands = routing.candidates(sd);
  for (std::uint64_t p = 0; p < 12; ++p) {
    const auto path = routing.path_for_packet(sd, p);
    EXPECT_EQ(path.top, cands[p % 4]);
  }
}

TEST(Multipath, HashIsDeterministicPerPacket) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  MultipathObliviousRouting a(ft, 4, SpreadPolicy::kHash);
  MultipathObliviousRouting b(ft, 4, SpreadPolicy::kHash);
  const SDPair sd{LeafId{1}, LeafId{6}};
  for (std::uint64_t p = 0; p < 20; ++p) {
    EXPECT_EQ(a.path_for_packet(sd, p).top, b.path_for_packet(sd, p).top);
  }
}

TEST(Multipath, RandomDrawsStayInCandidateSet) {
  const FoldedClos ft(FtreeParams{2, 6, 4});
  MultipathObliviousRouting routing(ft, 3, SpreadPolicy::kRandom, 7);
  const SDPair sd{LeafId{0}, LeafId{5}};
  const auto cands = routing.candidates(sd);
  const std::set<std::uint32_t> allowed{cands[0].value, cands[1].value,
                                        cands[2].value};
  for (std::uint64_t p = 0; p < 100; ++p) {
    EXPECT_TRUE(allowed.contains(routing.path_for_packet(sd, p).top.value));
  }
}

TEST(Multipath, DirectPairsBypassTopLevel) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  MultipathObliviousRouting routing(ft, 2, SpreadPolicy::kRoundRobin);
  const SDPair sd{LeafId{0}, LeafId{1}};
  EXPECT_TRUE(routing.path_for_packet(sd, 0).direct);
  EXPECT_THROW((void)routing.candidates(sd), precondition_error);
}

TEST(Multipath, FootprintIsUnionOfCandidatePaths) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  MultipathObliviousRouting routing(ft, 2, SpreadPolicy::kRoundRobin);
  const SDPair sd{LeafId{0}, LeafId{5}};
  const auto footprint = routing.link_footprint(sd);
  // 2 shared leaf links + 2 uplinks + 2 downlinks = 6 distinct links.
  EXPECT_EQ(footprint.size(), 6U);
  std::set<std::uint32_t> unique;
  for (const auto l : footprint) unique.insert(l.value);
  EXPECT_EQ(unique.size(), footprint.size());
}

TEST(Multipath, WidthOneDegeneratesToSinglePath) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  MultipathObliviousRouting routing(ft, 1, SpreadPolicy::kRandom, 3);
  const SDPair sd{LeafId{0}, LeafId{5}};
  const auto first = routing.path_for_packet(sd, 0).top;
  for (std::uint64_t p = 1; p < 10; ++p) {
    EXPECT_EQ(routing.path_for_packet(sd, p).top, first);
  }
}

TEST(Multipath, RejectsBadWidth) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  EXPECT_THROW(MultipathObliviousRouting(ft, 0, SpreadPolicy::kHash),
               precondition_error);
  EXPECT_THROW(MultipathObliviousRouting(ft, 5, SpreadPolicy::kHash),
               precondition_error);
}

TEST(Multipath, YuanBaseWidthOneIsTheoremThreeRouting) {
  // Candidate base kYuan at width 1 reproduces the (i,j) assignment
  // exactly, so its footprint audit passes — the bridge between §IV-A
  // and §IV-B.
  const FoldedClos ft(FtreeParams{2, 4, 5});
  MultipathObliviousRouting routing(ft, 1, SpreadPolicy::kRoundRobin, 1,
                                    CandidateBase::kYuan);
  const auto violations = lemma1_audit_footprints(
      ft, [&](SDPair sd) { return routing.link_footprint(sd); });
  EXPECT_TRUE(violations.empty());
  // The candidate equals i*n + j.
  const SDPair sd{LeafId{1}, LeafId{6}};  // i = 1, j = 0
  EXPECT_EQ(routing.candidates(sd).front().value, 2U);
}

TEST(Multipath, YuanBaseWidthTwoBreaksLemmaOne) {
  // §IV-B's core statement: widening a nonblocking single-path
  // assignment to two oblivious paths re-introduces violations.
  const FoldedClos ft(FtreeParams{2, 4, 5});
  MultipathObliviousRouting routing(ft, 2, SpreadPolicy::kRoundRobin, 1,
                                    CandidateBase::kYuan);
  const auto violations = lemma1_audit_footprints(
      ft, [&](SDPair sd) { return routing.link_footprint(sd); });
  EXPECT_FALSE(violations.empty());
}

TEST(Multipath, YuanBaseRequiresEnoughTops) {
  const FoldedClos ft(FtreeParams{3, 8, 7});  // m = 8 < 9
  EXPECT_THROW(MultipathObliviousRouting(ft, 1, SpreadPolicy::kHash, 1,
                                         CandidateBase::kYuan),
               precondition_error);
}

TEST(Multipath, NameEncodesPolicyAndWidth) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  EXPECT_EQ(MultipathObliviousRouting(ft, 2, SpreadPolicy::kHash).name(),
            "multipath-hash-w2");
  EXPECT_EQ(
      MultipathObliviousRouting(ft, 4, SpreadPolicy::kRoundRobin).name(),
      "multipath-round-robin-w4");
}

}  // namespace
}  // namespace nbclos
