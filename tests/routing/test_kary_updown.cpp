#include "nbclos/routing/kary_updown.hpp"

#include <gtest/gtest.h>

#include <set>

#include "nbclos/sim/engine.hpp"
#include "nbclos/sim/path_oracle.hpp"

namespace nbclos {
namespace {

TEST(KaryUpDown, NcaLevels) {
  const auto net = build_kary_ntree(2, 3);  // 8 terminals
  const KaryTreeRouter router(net, 2, 3);
  // Same edge switch (terminals 0, 1).
  EXPECT_EQ(router.nca_level(0, 1), 0U);
  // Switch positions 0 (00) and 1 (01): differ in digit 0 -> level 1.
  EXPECT_EQ(router.nca_level(0, 2), 1U);
  // Positions 0 (00) and 2 (10): differ in digit 1 -> level 2.
  EXPECT_EQ(router.nca_level(0, 4), 2U);
  EXPECT_EQ(router.nca_level(1, 7), 2U);
  // Symmetry.
  for (std::uint32_t s = 0; s < 8; ++s) {
    for (std::uint32_t d = 0; d < 8; ++d) {
      EXPECT_EQ(router.nca_level(s, d), router.nca_level(d, s));
    }
  }
}

TEST(KaryUpDown, DeterministicRoutesAreWellFormed) {
  const auto net = build_kary_ntree(3, 2);  // 9 terminals
  const KaryTreeRouter router(net, 3, 2);
  for (std::uint32_t s = 0; s < 9; ++s) {
    for (std::uint32_t d = 0; d < 9; ++d) {
      if (s == d) continue;
      const auto path = router.route({LeafId{s}, LeafId{d}});
      validate_channel_path(net, s, d, path);
      // Length: 2 (terminal links) + 2 * climb.
      const auto climb = router.nca_level(s, d);
      EXPECT_EQ(path.size(), 2U + 2U * climb);
    }
  }
}

TEST(KaryUpDown, RandomRoutesAreWellFormedAndDiverse) {
  const auto net = build_kary_ntree(2, 3);
  const KaryTreeRouter router(net, 2, 3);
  Xoshiro256 rng(5);
  const SDPair sd{LeafId{0}, LeafId{7}};  // full-height climb
  std::set<ChannelPath> seen;
  for (int i = 0; i < 64; ++i) {
    const auto path = router.route_random(sd, rng);
    validate_channel_path(net, 0, 7, path);
    seen.insert(path);
  }
  // Climb 2 with 2 free digit choices each of 2 values -> 4 distinct
  // up-paths; random sampling over 64 draws hits all of them.
  EXPECT_EQ(seen.size(), 4U);
}

TEST(KaryUpDown, DeterministicRoutingConvergesPerDestination) {
  // Destination-keyed ascent: every source reaches a destination through
  // the same topmost switch (the D-mod-K convergence property).
  const auto net = build_kary_ntree(2, 3);
  const KaryTreeRouter router(net, 2, 3);
  const LeafId dst{5};
  std::set<std::uint32_t> top_vertices;
  for (std::uint32_t s = 0; s < 8; ++s) {
    if (s == dst.value) continue;
    const auto path = router.route({LeafId{s}, dst});
    if (router.nca_level(s, dst.value) < 2) continue;  // not full height
    // Vertex after the climb: dst of the climb-th channel.
    const auto apex = net.channel(path[router.nca_level(s, dst.value)]).dst;
    top_vertices.insert(apex);
  }
  EXPECT_EQ(top_vertices.size(), 1U);
}

TEST(KaryUpDown, HeightOneIsDirect) {
  const auto net = build_kary_ntree(4, 1);
  const KaryTreeRouter router(net, 4, 1);
  const auto path = router.route({LeafId{0}, LeafId{3}});
  EXPECT_EQ(path.size(), 2U);
  validate_channel_path(net, 0, 3, path);
}

TEST(KaryUpDown, RejectsMismatchedNetwork) {
  const auto net = build_kary_ntree(2, 3);
  EXPECT_THROW(KaryTreeRouter(net, 2, 2), precondition_error);
  EXPECT_THROW(KaryTreeRouter(net, 3, 3), precondition_error);
}

TEST(KaryUpDown, RejectsBadPairs) {
  const auto net = build_kary_ntree(2, 2);
  const KaryTreeRouter router(net, 2, 2);
  EXPECT_THROW((void)router.route({LeafId{0}, LeafId{0}}),
               precondition_error);
  EXPECT_THROW((void)router.route({LeafId{0}, LeafId{4}}),
               precondition_error);
}

TEST(KaryUpDown, SimulatesUnderUniformTraffic) {
  // End-to-end: the up/down routes drive the packet simulator on a
  // k-ary n-tree at moderate uniform load without loss of progress.
  const auto net = build_kary_ntree(2, 3);
  const KaryTreeRouter router(net, 2, 3);
  sim::ExplicitPathOracle oracle(
      net, [&router](SDPair sd) { return router.route(sd); }, "kary-updown");
  const auto traffic = sim::TrafficPattern::uniform(8);
  sim::SimConfig config;
  config.injection_rate = 0.3;
  config.warmup_cycles = 500;
  config.measure_cycles = 3000;
  sim::PacketSim simulator(net, oracle, traffic, config);
  const auto result = simulator.run();
  EXPECT_NEAR(result.accepted_throughput, 0.3, 0.05);
}

}  // namespace
}  // namespace nbclos
