#include "nbclos/routing/edge_coloring.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"

namespace nbclos {
namespace {

using Edges = std::vector<std::pair<std::uint32_t, std::uint32_t>>;

/// A coloring is proper when no two edges sharing an endpoint share a
/// color.
bool proper(std::uint32_t left, std::uint32_t right, const Edges& edges,
            const std::vector<std::uint32_t>& colors) {
  for (std::size_t i = 0; i < edges.size(); ++i) {
    for (std::size_t j = i + 1; j < edges.size(); ++j) {
      if (colors[i] != colors[j]) continue;
      if (edges[i].first == edges[j].first ||
          edges[i].second == edges[j].second) {
        return false;
      }
    }
  }
  (void)left;
  (void)right;
  return true;
}

std::uint32_t max_degree(std::uint32_t left, std::uint32_t right,
                         const Edges& edges) {
  std::vector<std::uint32_t> dl(left, 0);
  std::vector<std::uint32_t> dr(right, 0);
  for (const auto& [u, v] : edges) {
    ++dl[u];
    ++dr[v];
  }
  std::uint32_t d = 1;
  for (const auto x : dl) d = std::max(d, x);
  for (const auto x : dr) d = std::max(d, x);
  return d;
}

TEST(EdgeColoring, SimpleMatchingGetsOneColor) {
  const Edges edges{{0, 1}, {1, 0}, {2, 2}};
  const auto colors = bipartite_edge_coloring(3, 3, edges);
  EXPECT_TRUE(proper(3, 3, edges, colors));
  for (const auto c : colors) EXPECT_EQ(c, 0U);
}

TEST(EdgeColoring, CompleteBipartiteUsesExactlyDegreeColors) {
  Edges edges;
  for (std::uint32_t u = 0; u < 4; ++u) {
    for (std::uint32_t v = 0; v < 4; ++v) edges.emplace_back(u, v);
  }
  const auto colors = bipartite_edge_coloring(4, 4, edges);
  EXPECT_TRUE(proper(4, 4, edges, colors));
  EXPECT_EQ(*std::max_element(colors.begin(), colors.end()), 3U);
}

TEST(EdgeColoring, MultigraphParallelEdges) {
  // Three parallel edges between the same pair need three colors.
  const Edges edges{{0, 0}, {0, 0}, {0, 0}};
  const auto colors = bipartite_edge_coloring(1, 1, edges);
  EXPECT_TRUE(proper(1, 1, edges, colors));
  std::vector<std::uint32_t> sorted = colors;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::uint32_t>{0, 1, 2}));
}

TEST(EdgeColoring, KoenigBoundHoldsOnRandomMultigraphs) {
  Xoshiro256 rng(31337);
  for (int trial = 0; trial < 50; ++trial) {
    const auto left = static_cast<std::uint32_t>(2 + rng.below(6));
    const auto right = static_cast<std::uint32_t>(2 + rng.below(6));
    const auto count = static_cast<std::size_t>(1 + rng.below(40));
    Edges edges;
    for (std::size_t e = 0; e < count; ++e) {
      edges.emplace_back(static_cast<std::uint32_t>(rng.below(left)),
                         static_cast<std::uint32_t>(rng.below(right)));
    }
    const auto colors = bipartite_edge_coloring(left, right, edges);
    ASSERT_TRUE(proper(left, right, edges, colors)) << "trial " << trial;
    const auto used = *std::max_element(colors.begin(), colors.end()) + 1;
    EXPECT_LE(used, max_degree(left, right, edges)) << "trial " << trial;
  }
}

TEST(EdgeColoring, RejectsOutOfRangeEdges) {
  EXPECT_THROW((void)bipartite_edge_coloring(2, 2, {{2, 0}}),
               precondition_error);
  EXPECT_THROW((void)bipartite_edge_coloring(2, 2, {{0, 5}}),
               precondition_error);
}

TEST(CentralizedRouter, RealizesPermutationWithMEqualsN) {
  // Benes: m >= n suffices with centralized control — the paper's
  // telephone-world baseline (compare m >= n^2 for distributed).
  const FoldedClos ft(FtreeParams{3, 3, 5});
  const CentralizedRearrangeableRouter router(ft);
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 100; ++trial) {
    const auto pattern = random_permutation(ft.leaf_count(), rng);
    const auto paths = router.route(pattern);
    EXPECT_FALSE(has_contention(ft, paths)) << "trial " << trial;
  }
}

TEST(CentralizedRouter, HandlesWorstCasePatterns) {
  const FoldedClos ft(FtreeParams{4, 4, 6});
  const CentralizedRearrangeableRouter router(ft);
  for (const auto& pattern :
       {shift_permutation(ft.leaf_count(), 4),
        reverse_permutation(ft.leaf_count()),
        tornado_permutation(ft.n(), ft.r()),
        neighbor_funnel_permutation(ft.n(), ft.r())}) {
    EXPECT_FALSE(has_contention(ft, router.route(pattern)));
  }
}

TEST(CentralizedRouter, DirectPairsStayLocal) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const CentralizedRearrangeableRouter router(ft);
  const Permutation pattern{{LeafId{0}, LeafId{1}}, {LeafId{1}, LeafId{0}}};
  const auto paths = router.route(pattern);
  EXPECT_TRUE(paths[0].direct);
  EXPECT_TRUE(paths[1].direct);
}

TEST(CentralizedRouter, RejectsNonPermutations) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const CentralizedRearrangeableRouter router(ft);
  EXPECT_THROW(
      (void)router.route({{LeafId{0}, LeafId{2}}, {LeafId{0}, LeafId{4}}}),
      precondition_error);
  EXPECT_THROW(
      (void)router.route({{LeafId{0}, LeafId{2}}, {LeafId{1}, LeafId{2}}}),
      precondition_error);
}

TEST(CentralizedRouter, ThrowsWhenColorsExceedM) {
  // m = 1 but two sources in one switch target two different switches:
  // degree 2 > m, so the permutation cannot be realized.
  const FoldedClos ft(FtreeParams{2, 1, 3});
  const CentralizedRearrangeableRouter router(ft);
  const Permutation pattern{{LeafId{0}, LeafId{2}}, {LeafId{1}, LeafId{4}}};
  EXPECT_THROW((void)router.route(pattern), precondition_error);
}

TEST(CentralizedRouter, PathsAlignWithInputOrder) {
  const FoldedClos ft(FtreeParams{2, 2, 3});
  const CentralizedRearrangeableRouter router(ft);
  const Permutation pattern{{LeafId{0}, LeafId{3}}, {LeafId{2}, LeafId{0}}};
  const auto paths = router.route(pattern);
  ASSERT_EQ(paths.size(), 2U);
  EXPECT_EQ(paths[0].sd, pattern[0]);
  EXPECT_EQ(paths[1].sd, pattern[1]);
}

}  // namespace
}  // namespace nbclos
