#include "nbclos/routing/infiniband.hpp"

#include <gtest/gtest.h>

#include "nbclos/routing/yuan_nonblocking.hpp"

namespace nbclos {
namespace {

TEST(Infiniband, LidAssignmentRoundTrips) {
  const FoldedClos ft(FtreeParams{3, 9, 7});
  const InfinibandFabric fabric(ft);
  EXPECT_EQ(fabric.lids_per_leaf(), 3U);
  EXPECT_EQ(fabric.lid_count(), 63U);
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      const auto lid = fabric.lid_for({LeafId{s}, LeafId{d}});
      EXPECT_EQ(fabric.leaf_of(lid).value, d);
      EXPECT_EQ(fabric.index_of(lid), ft.local_of(LeafId{s}));
    }
  }
}

TEST(Infiniband, RequiresTheoremThreeRegime) {
  const FoldedClos small(FtreeParams{3, 8, 7});
  EXPECT_THROW(InfinibandFabric{small}, precondition_error);
}

TEST(Infiniband, LftForwardingReproducesYuanPathsExactly) {
  // The whole point of the multiple-LID construction: pure
  // destination-based forwarding realizes the source-dependent (i, j)
  // routing.  Channel-by-channel equality on every SD pair.
  const FoldedClos ft(FtreeParams{3, 9, 8});
  const InfinibandFabric fabric(ft);
  const YuanNonblockingRouting routing(ft);
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      if (s == d) continue;
      const SDPair sd{LeafId{s}, LeafId{d}};
      const auto lft_path = fabric.forward_path(sd);
      ChannelPath expected;
      for (const auto link : ft.links_of(routing.route(sd))) {
        expected.push_back(link.value);
      }
      EXPECT_EQ(lft_path, expected) << "s=" << s << " d=" << d;
    }
  }
}

TEST(Infiniband, ForwardedPathsAreWellFormed) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const InfinibandFabric fabric(ft);
  const auto net = build_network(ft);
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      if (s == d) continue;
      const auto path = fabric.forward_path({LeafId{s}, LeafId{d}});
      validate_channel_path(net, s, d, path);
    }
  }
}

TEST(Infiniband, SingleLidPerDestinationCannotExpressYuan) {
  // Sanity for the motivation: with ONE address per destination, a
  // bottom switch must send all traffic for d through one uplink, so two
  // sources with different local indices cannot take different tops —
  // check the Theorem 3 assignment really needs both coordinates.
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const YuanNonblockingRouting routing(ft);
  const SDPair a{ft.leaf(BottomId{0}, 0), ft.leaf(BottomId{2}, 1)};
  const SDPair b{ft.leaf(BottomId{0}, 1), ft.leaf(BottomId{2}, 1)};
  EXPECT_NE(routing.route(a).top, routing.route(b).top);
}

TEST(Infiniband, ForwardRejectsTerminalVertices) {
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const InfinibandFabric fabric(ft);
  EXPECT_THROW((void)fabric.forward(/*vertex=*/0, Lid{0}),
               precondition_error);
  EXPECT_THROW((void)fabric.forward(ft.leaf_count(), Lid{9999}),
               precondition_error);
}

TEST(Infiniband, LftCostAccounting) {
  const FoldedClos ft(FtreeParams{4, 16, 20});
  const InfinibandFabric fabric(ft);
  // n LIDs per leaf: the LMC cost is a factor-n larger LFT.
  EXPECT_EQ(fabric.lft_entries_per_switch(), 80U * 4U);
}

}  // namespace
}  // namespace nbclos
