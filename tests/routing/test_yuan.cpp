#include "nbclos/routing/yuan_nonblocking.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/analysis/verifier.hpp"

namespace nbclos {
namespace {

FoldedClos theorem3_ftree(std::uint32_t n, std::uint32_t r) {
  return FoldedClos(FtreeParams{n, n * n, r});
}

TEST(YuanRouting, RequiresEnoughTopSwitches) {
  const FoldedClos small(FtreeParams{3, 8, 7});  // m = 8 < n^2 = 9
  EXPECT_THROW(YuanNonblockingRouting{small}, precondition_error);
  const FoldedClos ok(FtreeParams{3, 9, 7});
  EXPECT_NO_THROW(YuanNonblockingRouting{ok});
}

TEST(YuanRouting, UsesTopSwitchIJ) {
  // SD pair ((v,i),(w,j)) routes through top switch i*n + j (Theorem 3).
  const auto ft = theorem3_ftree(3, 5);
  const YuanNonblockingRouting routing(ft);
  for (std::uint32_t i = 0; i < 3; ++i) {
    for (std::uint32_t j = 0; j < 3; ++j) {
      const SDPair sd{ft.leaf(BottomId{0}, i), ft.leaf(BottomId{4}, j)};
      const auto path = routing.route(sd);
      EXPECT_FALSE(path.direct);
      EXPECT_EQ(path.top.value, i * 3 + j);
    }
  }
}

TEST(YuanRouting, SameSwitchPairsAreDirect) {
  const auto ft = theorem3_ftree(2, 4);
  const YuanNonblockingRouting routing(ft);
  const SDPair sd{ft.leaf(BottomId{1}, 0), ft.leaf(BottomId{1}, 1)};
  EXPECT_TRUE(routing.route(sd).direct);
}

TEST(YuanRouting, Lemma1AuditPasses) {
  // The Theorem 3 proof: every uplink carries one source, every downlink
  // one destination.  The audit checks the iff-condition over all
  // r(r-1)n^2 SD pairs — a machine proof of nonblocking-ness.
  for (std::uint32_t n = 1; n <= 4; ++n) {
    for (std::uint32_t r : {2U, 3U, 2 * n + 1, 2 * n + 2}) {
      const FoldedClos ft(FtreeParams{n, n * n, r});
      const YuanNonblockingRouting routing(ft);
      EXPECT_TRUE(is_nonblocking_single_path(routing))
          << "n=" << n << " r=" << r;
    }
  }
}

TEST(YuanRouting, UplinkCarriesExactlyOneSource) {
  // Directly check the structure asserted in the Theorem 3 proof text.
  const auto ft = theorem3_ftree(3, 7);
  const YuanNonblockingRouting routing(ft);
  // For uplink (v, (i,j)): every SD pair crossing it must have source
  // (v, i).
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      const SDPair sd{LeafId{s}, LeafId{d}};
      if (s == d || !ft.needs_top(sd)) continue;
      const auto path = routing.route(sd);
      // Source local index must equal the top switch's first coordinate.
      EXPECT_EQ(ft.local_of(sd.src), path.top.value / ft.n());
      EXPECT_EQ(ft.local_of(sd.dst), path.top.value % ft.n());
    }
  }
}

TEST(YuanRouting, ExhaustivelyNonblockingOnTinyInstance) {
  // Every one of the 6! = 720 full permutations of ftree(2+4, 3).
  const auto ft = theorem3_ftree(2, 3);
  const YuanNonblockingRouting routing(ft);
  const auto result = verify_exhaustive(ft, as_pattern_router(routing));
  EXPECT_TRUE(result.nonblocking);
  EXPECT_EQ(result.permutations_checked, 720U);
}

TEST(YuanRouting, RandomPermutationsNeverContend) {
  const auto ft = theorem3_ftree(4, 12);
  const YuanNonblockingRouting routing(ft);
  Xoshiro256 rng(2025);
  const auto result =
      verify_random(ft, as_pattern_router(routing), 200, rng);
  EXPECT_TRUE(result.nonblocking);
}

TEST(YuanRouting, AdversarialSearchFindsNothing) {
  const auto ft = theorem3_ftree(3, 8);
  const YuanNonblockingRouting routing(ft);
  Xoshiro256 rng(77);
  const auto result = verify_adversarial(
      ft, as_pattern_router(routing), AdversarialOptions{4, 300}, rng);
  EXPECT_TRUE(result.nonblocking);
}

TEST(YuanRouting, ClassicPatternsAreContentionFree) {
  const auto ft = theorem3_ftree(4, 16);  // 64 leaves, power of two
  const YuanNonblockingRouting routing(ft);
  const auto check = [&](const Permutation& p) {
    validate_permutation(p, ft.leaf_count());
    EXPECT_FALSE(has_contention(ft, routing.route_all(p)));
  };
  check(shift_permutation(ft.leaf_count(), 1));
  check(shift_permutation(ft.leaf_count(), 17));
  check(reverse_permutation(ft.leaf_count()));
  check(bit_reversal_permutation(ft.leaf_count()));
  check(butterfly_permutation(ft.leaf_count(), 3));
  check(tornado_permutation(ft.n(), ft.r()));
  check(neighbor_funnel_permutation(ft.n(), ft.r()));
}

TEST(YuanRouting, ExtraTopSwitchesStayUnused) {
  // With m > n^2, the scheme touches only the first n^2 top switches.
  const FoldedClos ft(FtreeParams{2, 7, 5});
  const YuanNonblockingRouting routing(ft);
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      const SDPair sd{LeafId{s}, LeafId{d}};
      if (s == d || !ft.needs_top(sd)) continue;
      EXPECT_LT(routing.route(sd).top.value, 4U);
    }
  }
}

class YuanParamTest : public ::testing::TestWithParam<
                          std::tuple<std::uint32_t, std::uint32_t>> {};

TEST_P(YuanParamTest, NonblockingAcrossShapes) {
  const auto [n, r] = GetParam();
  const FoldedClos ft(FtreeParams{n, n * n, r});
  const YuanNonblockingRouting routing(ft);
  EXPECT_TRUE(is_nonblocking_single_path(routing));
  Xoshiro256 rng(n * 1000 + r);
  EXPECT_TRUE(
      verify_random(ft, as_pattern_router(routing), 50, rng).nonblocking);
}

INSTANTIATE_TEST_SUITE_P(Shapes, YuanParamTest,
                         ::testing::Combine(::testing::Values(2U, 3U, 4U, 5U),
                                            ::testing::Values(3U, 6U, 11U,
                                                              20U)));

}  // namespace
}  // namespace nbclos
