#include "nbclos/routing/baselines.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/analysis/verifier.hpp"

namespace nbclos {
namespace {

TEST(Baselines, DModKUsesDestinationModM) {
  const FoldedClos ft(FtreeParams{2, 3, 4});
  const DModKRouting routing(ft);
  for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
    const SDPair sd{LeafId{d >= 2 ? 0U : 7U}, LeafId{d}};
    if (!ft.needs_top(sd)) continue;
    EXPECT_EQ(routing.route(sd).top.value, d % 3);
  }
}

TEST(Baselines, DModKConvergesAllTrafficToOneDest) {
  // The defining property of D-mod-K: all sources reach a destination
  // through the same top switch (deadlock-free, deterministic, but
  // blocking).
  const FoldedClos ft(FtreeParams{3, 5, 6});
  const DModKRouting routing(ft);
  const LeafId dst{13};
  std::uint32_t expected_top = UINT32_MAX;
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    const SDPair sd{LeafId{s}, dst};
    if (s == dst.value || !ft.needs_top(sd)) continue;
    const auto top = routing.route(sd).top.value;
    if (expected_top == UINT32_MAX) expected_top = top;
    EXPECT_EQ(top, expected_top);
  }
}

TEST(Baselines, DModKIsBlockingWhenMTooSmall) {
  // ftree(2+2, 5): m = 2 < n^2 = 4, so by Theorem 2 no single-path
  // deterministic routing is nonblocking; the audit must find violations.
  const FoldedClos ft(FtreeParams{2, 2, 5});
  const DModKRouting routing(ft);
  EXPECT_FALSE(is_nonblocking_single_path(routing));
}

TEST(Baselines, DModKBlocksEvenWithManyTopSwitches) {
  // Even with m = n^2 top switches D-mod-K stays blocking: it keys only
  // on the destination, so two sources in one switch with destinations
  // congruent mod m share an uplink.  (It ignores the source — exactly
  // what Theorem 3's (i, j) scheme fixes.)
  const FoldedClos ft(FtreeParams{2, 4, 5});
  const DModKRouting routing(ft);
  EXPECT_FALSE(is_nonblocking_single_path(routing));
  // And the verifier exhibits a concrete blocked permutation.
  Xoshiro256 rng(5);
  const auto result = verify_adversarial(
      ft, as_pattern_router(routing), AdversarialOptions{8, 500}, rng);
  EXPECT_FALSE(result.nonblocking);
  ASSERT_TRUE(result.counterexample.has_value());
  // The counterexample really is a permutation and really collides.
  validate_permutation(*result.counterexample, ft.leaf_count());
  EXPECT_TRUE(
      has_contention(ft, routing.route_all(*result.counterexample)));
}

TEST(Baselines, SModKKeysOnSource) {
  const FoldedClos ft(FtreeParams{2, 3, 4});
  const SModKRouting routing(ft);
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    const SDPair sd{LeafId{s}, LeafId{s >= 2 ? 0U : 7U}};
    if (!ft.needs_top(sd)) continue;
    EXPECT_EQ(routing.route(sd).top.value, s % 3);
  }
}

TEST(Baselines, DSwitchModKAggregatesBySwitch) {
  const FoldedClos ft(FtreeParams{2, 3, 5});
  const DModKSwitchRouting routing(ft);
  // Destinations in the same bottom switch share a top switch.
  const SDPair a{LeafId{0}, LeafId{6}};
  const SDPair b{LeafId{1}, LeafId{7}};
  EXPECT_EQ(routing.route(a).top.value, routing.route(b).top.value);
  EXPECT_EQ(routing.route(a).top.value, 3U % 3U);
}

TEST(Baselines, RandomFixedIsDeterministicGivenSeed) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const RandomFixedRouting a(ft, 42);
  const RandomFixedRouting b(ft, 42);
  const RandomFixedRouting c(ft, 43);
  std::uint32_t diffs = 0;
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      const SDPair sd{LeafId{s}, LeafId{d}};
      if (s == d || !ft.needs_top(sd)) continue;
      EXPECT_EQ(a.route(sd).top, b.route(sd).top);
      if (a.route(sd).top != c.route(sd).top) ++diffs;
    }
  }
  EXPECT_GT(diffs, 0U);  // different seed gives a different table
}

TEST(Baselines, RandomFixedTopsWithinRange) {
  const FoldedClos ft(FtreeParams{2, 5, 4});
  const RandomFixedRouting routing(ft, 9);
  for (std::uint32_t s = 0; s < ft.leaf_count(); ++s) {
    for (std::uint32_t d = 0; d < ft.leaf_count(); ++d) {
      const SDPair sd{LeafId{s}, LeafId{d}};
      if (s == d || !ft.needs_top(sd)) continue;
      EXPECT_LT(routing.route(sd).top.value, ft.m());
    }
  }
}

TEST(Baselines, NamesAreStable) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  EXPECT_EQ(DModKRouting(ft).name(), "d-mod-k");
  EXPECT_EQ(DModKSwitchRouting(ft).name(), "dswitch-mod-k");
  EXPECT_EQ(SModKRouting(ft).name(), "s-mod-k");
  EXPECT_EQ(RandomFixedRouting(ft, 1).name(), "random-fixed");
}

TEST(Baselines, AllRejectSelfLoops) {
  const FoldedClos ft(FtreeParams{2, 4, 4});
  const DModKRouting routing(ft);
  EXPECT_THROW((void)routing.route(SDPair{LeafId{3}, LeafId{3}}),
               precondition_error);
}

}  // namespace
}  // namespace nbclos
