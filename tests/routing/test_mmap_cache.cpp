/// U32Store and the mmap-backed ChannelRouteCache: the file-backed
/// arena must behave exactly like the heap vector it replaces — same
/// contents, same growth semantics — and a cache built under
/// NBCLOS_MMAP_CACHE must answer identically to a heap-built one.
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/topology/fat_tree.hpp"
#include "nbclos/topology/network.hpp"
#include "nbclos/util/mmap_arena.hpp"

namespace nbclos {
namespace {

/// Restores (or clears) NBCLOS_MMAP_CACHE when the test scope ends, so
/// one test's spill setting never leaks into the rest of the binary.
class ScopedMmapEnv {
 public:
  explicit ScopedMmapEnv(const char* value) {
    const char* old = std::getenv("NBCLOS_MMAP_CACHE");
    if (old != nullptr) saved_ = old;
    ::setenv("NBCLOS_MMAP_CACHE", value, 1);
  }
  ~ScopedMmapEnv() {
    if (saved_.has_value()) {
      ::setenv("NBCLOS_MMAP_CACHE", saved_->c_str(), 1);
    } else {
      ::unsetenv("NBCLOS_MMAP_CACHE");
    }
  }

 private:
  std::optional<std::string> saved_;
};

TEST(U32Store, HeapStoreMirrorsVector) {
  U32Store store;
  EXPECT_FALSE(store.file_backed());
  EXPECT_EQ(store.size(), 0U);
  for (std::uint32_t i = 0; i < 100; ++i) store.push_back(i * 7);
  ASSERT_EQ(store.size(), 100U);
  for (std::uint32_t i = 0; i < 100; ++i) EXPECT_EQ(store[i], i * 7);
  store.reserve(500);
  EXPECT_GE(store.capacity(), 500U);
  EXPECT_EQ(store.size(), 100U);
  store.shrink_to_fit();
  EXPECT_EQ(store.size(), 100U);
  EXPECT_EQ(store[99], 99U * 7);
}

TEST(U32Store, FileBackedStoreGrowsPastInitialCapacity) {
  U32Store store("/tmp");
#ifndef __linux__
  GTEST_SKIP() << "mmap backing is Linux-only";
#endif
  ASSERT_TRUE(store.file_backed());
  // Push well past the 1024-entry initial mapping to force mremap growth.
  constexpr std::uint32_t kCount = 5000;
  for (std::uint32_t i = 0; i < kCount; ++i) store.push_back(i ^ 0xA5A5A5A5U);
  ASSERT_TRUE(store.file_backed());
  ASSERT_EQ(store.size(), kCount);
  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(store[i], i ^ 0xA5A5A5A5U) << i;
  }
  store.shrink_to_fit();
  EXPECT_EQ(store.size(), kCount);
  EXPECT_GE(store.capacity(), store.size());
  EXPECT_EQ(store[kCount - 1], (kCount - 1) ^ 0xA5A5A5A5U);
}

TEST(U32Store, ReserveOnFileBackedStorePreallocates) {
  U32Store store("/tmp");
#ifndef __linux__
  GTEST_SKIP() << "mmap backing is Linux-only";
#endif
  store.reserve(10000);
  EXPECT_GE(store.capacity(), 10000U);
  for (std::uint32_t i = 0; i < 10000; ++i) store.push_back(i);
  EXPECT_EQ(store.size(), 10000U);
  EXPECT_EQ(store[9999], 9999U);
}

TEST(U32Store, CopyCollapsesToHeapAndMovePreservesBacking) {
  U32Store store("/tmp");
  for (std::uint32_t i = 0; i < 2000; ++i) store.push_back(i + 1);
  const bool was_file_backed = store.file_backed();

  const U32Store copy(store);
  EXPECT_FALSE(copy.file_backed());
  ASSERT_EQ(copy.size(), 2000U);
  EXPECT_EQ(copy[0], 1U);
  EXPECT_EQ(copy[1999], 2000U);

  U32Store assigned;
  assigned.push_back(99);
  assigned = store;
  EXPECT_FALSE(assigned.file_backed());
  ASSERT_EQ(assigned.size(), 2000U);
  EXPECT_EQ(assigned[1234], 1235U);

  U32Store moved(std::move(store));
  EXPECT_EQ(moved.file_backed(), was_file_backed);
  ASSERT_EQ(moved.size(), 2000U);
  EXPECT_EQ(moved[1999], 2000U);
}

TEST(U32Store, MmapCacheDirParsesTheEnvironment) {
  {
    ScopedMmapEnv env("0");
    EXPECT_FALSE(U32Store::mmap_cache_dir().has_value());
  }
  {
    ScopedMmapEnv env("1");
    const auto dir = U32Store::mmap_cache_dir();
    ASSERT_TRUE(dir.has_value());
    EXPECT_EQ(*dir, "/tmp");
  }
  {
    ScopedMmapEnv env("/var/tmp");
    const auto dir = U32Store::mmap_cache_dir();
    ASSERT_TRUE(dir.has_value());
    EXPECT_EQ(*dir, "/var/tmp");
  }
}

/// Build the Yuan route cache for a small ftree; factored so the heap
/// and mmap builds use byte-for-byte the same route function.
routing::ChannelRouteCache build_yuan_cache(const Network& net,
                                            const FoldedClos& ft,
                                            const YuanNonblockingRouting& yuan) {
  return routing::ChannelRouteCache(net, [&](SDPair sd) {
    LinkId run[FoldedClos::kMaxPathLinks];
    const auto count = ft.links_into(yuan.route(sd), run);
    std::vector<std::uint32_t> channels;
    for (std::uint32_t i = 0; i < count; ++i) channels.push_back(run[i].value);
    return channels;
  });
}

TEST(ChannelRouteCache, MmapBackedCacheRoundTripsAgainstHeap) {
  const FoldedClos ft(FtreeParams{3, 9, 5});
  const Network net = build_network(ft);
  const YuanNonblockingRouting yuan(ft);
  const auto heap_cache = build_yuan_cache(net, ft, yuan);
  EXPECT_FALSE(heap_cache.mmap_backed());

  ScopedMmapEnv env("1");
  const auto mmap_cache = build_yuan_cache(net, ft, yuan);
#ifdef __linux__
  EXPECT_TRUE(mmap_cache.mmap_backed());
#endif
  ASSERT_EQ(mmap_cache.terminal_count(), heap_cache.terminal_count());
  ASSERT_EQ(mmap_cache.entry_count(), heap_cache.entry_count());
  EXPECT_GT(mmap_cache.bytes(), 0U);
  const auto T = heap_cache.terminal_count();
  for (std::uint32_t s = 0; s < T; ++s) {
    for (std::uint32_t d = 0; d < T; ++d) {
      const auto expect = heap_cache.channels(s, d);
      const auto got = mmap_cache.channels(s, d);
      ASSERT_EQ(got.size(), expect.size()) << s << "->" << d;
      for (std::size_t i = 0; i < expect.size(); ++i) {
        ASSERT_EQ(got[i], expect[i]) << s << "->" << d << " hop " << i;
      }
      // Dense next-hop lookups agree along the whole path.
      for (const auto c : expect) {
        EXPECT_EQ(mmap_cache.next_channel_from(net.channel_src(c), s, d),
                  heap_cache.next_channel_from(net.channel_src(c), s, d));
      }
    }
  }
}

}  // namespace
}  // namespace nbclos
