#include "nbclos/core/multilevel.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/permutations.hpp"

namespace nbclos {
namespace {

TEST(MultiLevel, TwoLevelMatchesClosedForm) {
  for (std::uint32_t n = 2; n <= 4; ++n) {
    const MultiLevelFabric fabric(n, 2);
    const auto d = fabric.design();
    EXPECT_EQ(fabric.port_count(), d.ports);
    EXPECT_EQ(fabric.switch_count(), d.switches);
  }
}

TEST(MultiLevel, ThreeLevelMatchesClosedForm) {
  for (std::uint32_t n = 2; n <= 3; ++n) {
    const MultiLevelFabric fabric(n, 3);
    const auto d = fabric.design();
    EXPECT_EQ(fabric.port_count(), d.ports);
    EXPECT_EQ(fabric.switch_count(), d.switches);
    // Spelled out for n = 2: 24 ports, 2*16+2*8+4 = 52 switches.
    if (n == 2) {
      EXPECT_EQ(fabric.port_count(), 24U);
      EXPECT_EQ(fabric.switch_count(), 52U);
    }
  }
}

TEST(MultiLevel, FourLevelMatchesClosedForm) {
  const MultiLevelFabric fabric(2, 4);
  EXPECT_EQ(fabric.port_count(), 48U);  // 2^5 + 2^4
  EXPECT_EQ(fabric.switch_count(), fabric.design().switches);
}

TEST(MultiLevel, RoutesAreWellFormed) {
  const MultiLevelFabric fabric(2, 3);
  const auto& net = fabric.network();
  for (std::uint32_t s = 0; s < fabric.port_count(); ++s) {
    for (std::uint32_t d = 0; d < fabric.port_count(); ++d) {
      if (s == d) continue;
      const auto path = fabric.route({LeafId{s}, LeafId{d}});
      validate_channel_path(net, s, d, path);
    }
  }
}

TEST(MultiLevel, RouteLengthReflectsLocality) {
  const MultiLevelFabric fabric(2, 3);
  // Same bottom switch: leaf-up + leaf-down only.
  EXPECT_EQ(fabric.route({LeafId{0}, LeafId{1}}).size(), 2U);
  // Leaves 0 and 2 share a level-3 bottom-switch pair... port 0 and 2 sit
  // on different bottom switches (2 ports each), so the route climbs at
  // least one level: 2 leaf + 2 inner channels.
  EXPECT_EQ(fabric.route({LeafId{0}, LeafId{2}}).size(), 4U);
  // Maximum climb: through a level-2 sub-block into its own sub-switch:
  // 2 leaf + 2 + 2 channels.
  EXPECT_EQ(fabric.route({LeafId{0}, LeafId{23}}).size(), 6U);
}

TEST(MultiLevel, CertifyProvesThreeLevelNonblocking) {
  // The paper's induction claim, machine-checked: the generalized Lemma 1
  // audit passes on the recursive construction.
  const MultiLevelFabric two(2, 2);
  EXPECT_TRUE(two.certify());
  const MultiLevelFabric three(2, 3);
  EXPECT_TRUE(three.certify());
  const MultiLevelFabric three_n3(3, 3);
  EXPECT_TRUE(three_n3.certify());
}

TEST(MultiLevel, FourLevelCertifies) {
  const MultiLevelFabric four(2, 4);
  EXPECT_TRUE(four.certify());
}

TEST(MultiLevel, RandomPermutationsContentionFree) {
  const MultiLevelFabric fabric(3, 3);  // 108 ports
  EXPECT_TRUE(fabric.verify_random(25, 777));
}

TEST(MultiLevel, SwitchRadixIsUniform) {
  // Every switch in the construction has radix n + n^2 (in + out
  // channel degree each equal to n + n^2).
  const MultiLevelFabric fabric(2, 3);
  const auto& net = fabric.network();
  for (std::uint32_t v = 0; v < net.vertex_count(); ++v) {
    if (net.vertex(v).kind != VertexKind::kSwitch) continue;
    EXPECT_EQ(net.out_channels(v).size(), 6U) << "vertex " << v;
    EXPECT_EQ(net.in_channels(v).size(), 6U) << "vertex " << v;
  }
}

TEST(MultiLevel, RejectsBadParameters) {
  EXPECT_THROW(MultiLevelFabric(1, 2), precondition_error);
  EXPECT_THROW(MultiLevelFabric(2, 1), precondition_error);
  EXPECT_THROW(MultiLevelFabric(10, 7), precondition_error);  // too large
}

TEST(MultiLevel, RouteRejectsBadPairs) {
  const MultiLevelFabric fabric(2, 2);
  EXPECT_THROW((void)fabric.route({LeafId{0}, LeafId{0}}),
               precondition_error);
  EXPECT_THROW((void)fabric.route({LeafId{0}, LeafId{99}}),
               precondition_error);
}

}  // namespace
}  // namespace nbclos
