#include "nbclos/core/designer.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "nbclos/util/check.hpp"

namespace nbclos {
namespace {

TEST(Designer, TwoLevelFormulae) {
  // n = 4: radix 20, 2n^2+n = 36 switches, n^3+n^2 = 80 ports (Table I).
  const auto d = two_level_design(4);
  EXPECT_EQ(d.switch_radix, 20U);
  EXPECT_EQ(d.switches, 36U);
  EXPECT_EQ(d.ports, 80U);
  EXPECT_EQ(d.params.n, 4U);
  EXPECT_EQ(d.params.m, 16U);
  EXPECT_EQ(d.params.r, 20U);
}

TEST(Designer, TwoLevelIsSelfConsistent) {
  for (std::uint32_t n = 2; n <= 12; ++n) {
    const auto d = two_level_design(n);
    const FoldedClos ft(d.params);
    EXPECT_EQ(ft.leaf_count(), d.ports);
    EXPECT_EQ(ft.switch_count(), d.switches);
    EXPECT_EQ(ft.bottom_radix(), d.switch_radix);
    // Same-radix constraint: top switches have radix r = n + n^2 too.
    EXPECT_EQ(ft.top_radix(), d.switch_radix);
    // Roughly 2N switches support N^1.5 ports (the paper's N = n^2+n).
    const double big_n = static_cast<double>(d.switch_radix);
    EXPECT_NEAR(static_cast<double>(d.ports), std::pow(big_n, 1.5),
                big_n * std::sqrt(big_n) * 0.35);
  }
}

TEST(Designer, DesignForRadixPicksLargestN) {
  EXPECT_EQ(design_for_radix(20)->n, 4U);
  EXPECT_EQ(design_for_radix(21)->n, 4U);   // n=5 needs 30 ports
  EXPECT_EQ(design_for_radix(30)->n, 5U);
  EXPECT_EQ(design_for_radix(42)->n, 6U);
  EXPECT_EQ(design_for_radix(6)->n, 2U);
  EXPECT_EQ(design_for_radix(5), std::nullopt);
}

TEST(Designer, RecursiveMatchesPaperThreeLevelPorts) {
  // 3 levels: n^4 + n^3 ports (paper §IV discussion).
  for (std::uint32_t n = 2; n <= 6; ++n) {
    const auto d = recursive_design(n, 3);
    const std::uint64_t n64 = n;
    EXPECT_EQ(d.ports, n64 * n64 * n64 * (n64 + 1));
    // Our switch recurrence: 2n^4 + 2n^3 + n^2 (the paper prints
    // 2n^4 + 3n^3 + n^2; see EXPERIMENTS.md).
    EXPECT_EQ(d.switches, 2 * n64 * n64 * n64 * n64 + 2 * n64 * n64 * n64 +
                              n64 * n64);
  }
}

TEST(Designer, RecursiveLevelTwoEqualsTwoLevel) {
  for (std::uint32_t n = 2; n <= 8; ++n) {
    const auto base = two_level_design(n);
    const auto rec = recursive_design(n, 2);
    EXPECT_EQ(rec.ports, base.ports);
    EXPECT_EQ(rec.switches, base.switches);
  }
}

TEST(Designer, RecursivePortGrowthIsGeometric) {
  const auto l2 = recursive_design(3, 2);
  const auto l3 = recursive_design(3, 3);
  const auto l4 = recursive_design(3, 4);
  EXPECT_EQ(l3.ports, 3 * l2.ports);
  EXPECT_EQ(l4.ports, 3 * l3.ports);
  // Switch recurrence: S(L+1) = P(L) + n^2 S(L).
  EXPECT_EQ(l3.switches, l2.ports + 9 * l2.switches);
  EXPECT_EQ(l4.switches, l3.ports + 9 * l3.switches);
}

TEST(Designer, RejectsBadArguments) {
  EXPECT_THROW((void)two_level_design(1), precondition_error);
  EXPECT_THROW((void)recursive_design(3, 1), precondition_error);
  EXPECT_THROW((void)recursive_design(1, 2), precondition_error);
}

TEST(Designer, EnumerateDesignsIsAscendingAndBounded) {
  const auto designs = enumerate_designs(42);
  ASSERT_EQ(designs.size(), 5U);  // n = 2..6
  for (std::size_t i = 0; i < designs.size(); ++i) {
    EXPECT_EQ(designs[i].n, i + 2);
    EXPECT_LE(designs[i].switch_radix, 42U);
  }
  EXPECT_TRUE(enumerate_designs(5).empty());
}

}  // namespace
}  // namespace nbclos
