#include "nbclos/core/fabric.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"

namespace nbclos {
namespace {

TEST(Fabric, DefaultShapeIsTableOneDesign) {
  const NonblockingFabric fabric(3);
  EXPECT_EQ(fabric.topology().n(), 3U);
  EXPECT_EQ(fabric.topology().m(), 9U);
  EXPECT_EQ(fabric.topology().r(), 12U);  // n + n^2
  EXPECT_EQ(fabric.port_count(), 36U);
}

TEST(Fabric, CustomRIsHonored) {
  const NonblockingFabric fabric(3, 7);
  EXPECT_EQ(fabric.topology().r(), 7U);
  EXPECT_EQ(fabric.port_count(), 21U);
}

TEST(Fabric, CertifyProvesNonblocking) {
  // The Lemma 1 audit is an iff: certify() is a proof for the instance.
  for (std::uint32_t n = 2; n <= 4; ++n) {
    const NonblockingFabric fabric(n);
    EXPECT_TRUE(fabric.certify()) << "n=" << n;
  }
}

TEST(Fabric, RandomVerificationAgrees) {
  const NonblockingFabric fabric(3);
  const auto result = fabric.verify_random(100, 1234);
  EXPECT_TRUE(result.nonblocking);
  EXPECT_EQ(result.permutations_checked, 100U);
}

TEST(Fabric, RoutePatternIsContentionFree) {
  const NonblockingFabric fabric(4);
  Xoshiro256 rng(55);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pattern = random_permutation(fabric.port_count(), rng);
    const auto paths = fabric.route_pattern(pattern);
    EXPECT_FALSE(has_contention(fabric.topology(), paths));
  }
}

TEST(Fabric, RouteSingle) {
  const NonblockingFabric fabric(2);
  const auto& ft = fabric.topology();
  const SDPair cross{ft.leaf(BottomId{0}, 1), ft.leaf(BottomId{3}, 0)};
  const auto path = fabric.route(cross);
  EXPECT_FALSE(path.direct);
  EXPECT_EQ(path.top.value, 1U * 2U + 0U);  // (i, j) = (1, 0)
}

TEST(Fabric, ToNetworkMatchesTopology) {
  const NonblockingFabric fabric(2);
  const auto net = fabric.to_network();
  EXPECT_EQ(net.channel_count(), fabric.topology().link_count());
  EXPECT_EQ(net.terminals().size(), fabric.port_count());
}

TEST(Fabric, RejectsTinyN) {
  EXPECT_THROW(NonblockingFabric(1), precondition_error);
}

}  // namespace
}  // namespace nbclos
