#include "nbclos/core/conditions.hpp"

#include <gtest/gtest.h>

#include "nbclos/analysis/root_capacity.hpp"

namespace nbclos {
namespace {

TEST(Conditions, LargeTopRegimeBoundary) {
  EXPECT_FALSE(large_top_regime(3, 6));
  EXPECT_TRUE(large_top_regime(3, 7));   // r = 2n+1
  EXPECT_TRUE(large_top_regime(3, 8));
}

TEST(Conditions, PortUpperBoundSmallR) {
  // Theorem 1: at most 2(n+m) ports when r <= 2n+1.
  EXPECT_EQ(port_upper_bound_small_r(4, 16), 40U);
  EXPECT_EQ(port_upper_bound_small_r(2, 4), 12U);
}

TEST(Conditions, PortBoundHoldsAtTheBoundary) {
  // For any n and r = 2n+1 with m = min required, ports r*n <= 2(n+m):
  // consistency between Theorems 1 and 2's counting.
  for (std::uint32_t n = 1; n <= 8; ++n) {
    const std::uint32_t r = 2 * n + 1;
    const auto m = min_top_switches_deterministic(n, r);
    EXPECT_LE(std::uint64_t{r} * n,
              port_upper_bound_small_r(n, static_cast<std::uint32_t>(m)));
  }
}

TEST(Conditions, MinTopSwitchesLargeR) {
  // Theorem 2: m >= n^2 when r >= 2n+1.
  EXPECT_EQ(min_top_switches_deterministic(4, 9), 16U);
  EXPECT_EQ(min_top_switches_deterministic(5, 11), 25U);
  EXPECT_EQ(min_top_switches_deterministic(2, 100), 4U);
}

TEST(Conditions, MinTopSwitchesSmallR) {
  // r <= 2n+1: ceil((r-1)n/2) from Lemma 2 counting.
  EXPECT_EQ(min_top_switches_deterministic(3, 4), 5U);   // ceil(9/2)
  EXPECT_EQ(min_top_switches_deterministic(2, 4), 3U);   // ceil(6/2)
  EXPECT_EQ(min_top_switches_deterministic(4, 2), 2U);   // ceil(4/2)
}

TEST(Conditions, MinTopSwitchesContinuousAtBoundary) {
  // At r = 2n+1 the two formulas agree: ceil((2n)n/2) = n^2.
  for (std::uint32_t n = 1; n <= 10; ++n) {
    const std::uint32_t r = 2 * n + 1;
    EXPECT_EQ(min_top_switches_deterministic(n, r), std::uint64_t{n} * n);
    EXPECT_EQ(min_top_switches_deterministic(n, r - 1),
              (std::uint64_t{r - 2} * n + 1) / 2);
  }
}

TEST(Conditions, DeterministicFeasibility) {
  EXPECT_TRUE(deterministic_nonblocking_feasible(FtreeParams{3, 9, 10}));
  EXPECT_TRUE(deterministic_nonblocking_feasible(FtreeParams{3, 12, 10}));
  EXPECT_FALSE(deterministic_nonblocking_feasible(FtreeParams{3, 8, 10}));
}

TEST(Conditions, AdaptiveExponent) {
  EXPECT_DOUBLE_EQ(adaptive_exponent(1), 1.75);
  EXPECT_DOUBLE_EQ(adaptive_exponent(2), 2.0 - 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(adaptive_exponent(3), 1.875);
  // Always strictly below the deterministic exponent 2.
  for (std::uint32_t c = 1; c <= 10; ++c) {
    EXPECT_LT(adaptive_exponent(c), 2.0);
  }
}

TEST(Conditions, AdaptiveSimpleBound) {
  // ceil(n/(c+2)) * (c+1) * n.
  EXPECT_EQ(adaptive_simple_bound(4, 2), 12U);   // 1 config * 3 * 4
  EXPECT_EQ(adaptive_simple_bound(5, 2), 30U);   // 2 configs * 15
  EXPECT_EQ(adaptive_simple_bound(8, 2), 48U);   // 2 configs * 24
  EXPECT_EQ(adaptive_simple_bound(6, 1), 24U);   // 2 configs * 12
}

TEST(Conditions, BoundsConsistentWithRootCapacity) {
  // min_top_switches = ceil(cross pairs / per-top capacity bound).
  for (std::uint32_t n = 1; n <= 4; ++n) {
    for (std::uint32_t r = 2; r <= 10; ++r) {
      const std::uint64_t pairs = std::uint64_t{r} * (r - 1) * n * n;
      const auto cap = root_capacity_bound(n, r);
      EXPECT_EQ(min_top_switches_deterministic(n, r),
                (pairs + cap - 1) / cap)
          << "n=" << n << " r=" << r;
    }
  }
}

}  // namespace
}  // namespace nbclos
