#include "nbclos/core/table_one.hpp"

#include <gtest/gtest.h>

#include "nbclos/util/check.hpp"

namespace nbclos {
namespace {

TEST(TableOne, Row20MatchesPaperExactly) {
  const auto rows = table_one_published();
  ASSERT_EQ(rows.size(), 3U);
  const auto& row = rows[0];
  EXPECT_EQ(row.switch_radix, 20U);
  EXPECT_EQ(row.nb_switches, 36U);
  EXPECT_EQ(row.nb_ports, 80U);
  EXPECT_EQ(row.ft_switches, 30U);
  EXPECT_EQ(row.ft_ports, 200U);
  EXPECT_EQ(row.paper_nb_switches, 36U);
  EXPECT_EQ(row.paper_nb_ports, 80U);
  EXPECT_EQ(row.paper_ft_switches, 30U);
  EXPECT_EQ(row.paper_ft_ports, 200U);
}

TEST(TableOne, Row30MatchesPaperExactly) {
  const auto& row = table_one_published()[1];
  EXPECT_EQ(row.switch_radix, 30U);
  EXPECT_EQ(row.nb_switches, 55U);
  EXPECT_EQ(row.nb_ports, 150U);
  EXPECT_EQ(row.ft_switches, 45U);
  EXPECT_EQ(row.ft_ports, 450U);
  EXPECT_EQ(row.nb_switches, row.paper_nb_switches);
  EXPECT_EQ(row.ft_ports, row.paper_ft_ports);
}

TEST(TableOne, Row42ExposesThePaperTypos) {
  // The published table prints 88 switches and 884 FT ports; the paper's
  // own formulas give 2*36+6 = 78 and 42^2/2 = 882.  We must reproduce
  // the formulas, not the typos — and record the difference.
  const auto& row = table_one_published()[2];
  EXPECT_EQ(row.switch_radix, 42U);
  EXPECT_EQ(row.nb_switches, 78U);
  EXPECT_EQ(row.paper_nb_switches, 88U);
  EXPECT_EQ(row.nb_ports, 252U);
  EXPECT_EQ(row.paper_nb_ports, 252U);
  EXPECT_EQ(row.ft_switches, 63U);
  EXPECT_EQ(row.paper_ft_switches, 63U);
  EXPECT_EQ(row.ft_ports, 882U);
  EXPECT_EQ(row.paper_ft_ports, 884U);
}

TEST(TableOne, ArbitraryRadixRow) {
  const auto row = table_one_row(56);  // n = 7: 7+49 = 56
  EXPECT_EQ(row.nb_switches, 2 * 49U + 7U);
  EXPECT_EQ(row.nb_ports, 343U + 49U);
  EXPECT_EQ(row.ft_switches, 84U);   // 3*56/2
  EXPECT_EQ(row.ft_ports, 1568U);    // 56^2/2
  EXPECT_FALSE(row.paper_nb_switches.has_value());
}

TEST(TableOne, OddRadixSkipsFtComparison) {
  const auto row = table_one_row(13);  // n = 3 fits (12 <= 13); FT needs even
  EXPECT_EQ(row.nb_ports, 36U);
  EXPECT_EQ(row.ft_ports, 0U);
}

TEST(TableOne, RejectsTinyRadix) {
  EXPECT_THROW((void)table_one_row(5), precondition_error);
}

TEST(TableOne, NonblockingCostsMoreThanRearrangeable) {
  // The qualitative Table I story: our nonblocking network supports
  // fewer ports per switch than FT(m,2) — the price of crossbar-like
  // behaviour under distributed control.
  for (const auto& row : table_one_published()) {
    const double nb_ratio = static_cast<double>(row.nb_ports) /
                            static_cast<double>(row.nb_switches);
    const double ft_ratio = static_cast<double>(row.ft_ports) /
                            static_cast<double>(row.ft_switches);
    EXPECT_LT(nb_ratio, ft_ratio);
  }
}

}  // namespace
}  // namespace nbclos
