/// \file adaptive_scheduling.cpp
/// \brief Walkthrough of Algorithm NONBLOCKINGADAPTIVE (paper Fig. 4):
///        schedule a permutation with local adaptive routing, inspect the
///        configuration/partition assignments, and compare top-switch
///        usage against the deterministic m = n^2 requirement.
///
/// Run: ./adaptive_scheduling [n] [r]   (defaults n = 4, r = 16)
#include <iostream>
#include <string>

#include "nbclos/adaptive/router.hpp"
#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/util/table.hpp"

int main(int argc, char** argv) {
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 4U;
  const std::uint32_t r =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 16U;

  const nbclos::adaptive::AdaptiveParams params{
      n, r, nbclos::min_digit_width(r, n)};
  std::cout << "ftree(" << n << "+m, " << r << "): c = " << params.c
            << " (smallest c with r <= n^c), configurations of "
            << params.partitions_per_config() << " partitions x " << n
            << " switches = " << params.switches_per_config()
            << " top switches each\n\n";

  const nbclos::adaptive::NonblockingAdaptiveRouter router(params);

  // Schedule an adversarial pattern: whole switches funnel onto whole
  // switches (every destination switch sees n incoming pairs).
  const auto pattern = nbclos::neighbor_funnel_permutation(n, r);
  const auto schedule = router.route(pattern);

  std::cout << "Scheduled " << pattern.size() << " SD pairs using "
            << schedule.configurations_used << " configuration(s) = "
            << schedule.top_switches_used << " top switches "
            << "(deterministic routing would need m >= n^2 = " << n * n
            << ")\n\n";

  // Show the first source switch's assignments in the paper's notation.
  std::cout << "Assignments for SD pairs from switch 0 "
               "(digits s_{c-1}..s_0, local p):\n";
  nbclos::TextTable table({"src", "dst", "dst digits", "config", "partition",
                           "key", "top switch"});
  const nbclos::DigitCodec codec(n, params.c);
  for (const auto& a : schedule.assignments) {
    if (a.sd.src.value / n != 0 || a.direct) continue;
    const auto digits = codec.digits(a.sd.dst.value / n);
    std::string digit_str;
    for (std::uint32_t i = params.c; i-- > 0;) {
      digit_str += std::to_string(digits[i]);
    }
    digit_str += "|p=" + std::to_string(a.sd.dst.value % n);
    table.add(a.sd.src.value, a.sd.dst.value, digit_str, a.configuration,
              a.partition, a.key, a.top_switch);
  }
  table.print(std::cout);

  // Verify the schedule really is contention-free on a topology sized to
  // fit it.
  const nbclos::FoldedClos ft(
      nbclos::FtreeParams{n, schedule.top_switches_used, r});
  const auto paths = schedule.to_paths(ft);
  std::cout << "\nContention check: "
            << (nbclos::has_contention(ft, paths) ? "FOUND (bug!)"
                                                  : "none — nonblocking")
            << "\n";

  // Adaptivity in action: scheduling a different pattern moves pairs.
  nbclos::Xoshiro256 rng(2);
  std::uint32_t worst = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const auto random_pattern = nbclos::random_permutation(n * r, rng);
    worst = std::max(worst, router.route(random_pattern).top_switches_used);
  }
  std::cout << "Worst top-switch usage over 50 random permutations: "
            << worst << " (vs deterministic n^2 = " << n * n << ")\n";
  return 0;
}
