/// \file circuit_switching.cpp
/// \brief The telephone-communication world the paper's §II surveys:
///        circuit switching on Clos(n, m, r) with a centralized
///        controller, demonstrating all three classical nonblocking
///        regimes and why they need the controller.
///
/// Run: ./circuit_switching [n] [r]   (defaults n = 4, r = 6)
#include <iostream>
#include <string>

#include "nbclos/circuit/clos_switch.hpp"
#include "nbclos/util/table.hpp"

int main(int argc, char** argv) {
  const std::uint32_t n =
      argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 4U;
  const std::uint32_t r =
      argc > 2 ? static_cast<std::uint32_t>(std::stoul(argv[2])) : 6U;

  std::cout << "=== Circuit switching on Clos(" << n << ", m, " << r
            << ") — centralized controller ===\n\n";

  // 1. Strictly nonblocking: m = 2n-1 never blocks, whatever the
  //    strategy or history (Clos 1953).
  {
    nbclos::circuit::ClosCircuitSwitch clos(n, 2 * n - 1, r);
    nbclos::Xoshiro256 rng(1);
    const auto result = nbclos::circuit::run_churn(
        clos, nbclos::circuit::FitStrategy::kRandom, 30000, 1.0, false, rng);
    std::cout << "m = 2n-1 = " << 2 * n - 1 << " (strict): "
              << result.attempts << " calls, " << result.blocked
              << " blocked\n";
  }

  // 2. Below the strict bound, greedy strategies block under churn...
  {
    nbclos::circuit::ClosCircuitSwitch clos(n, n, r);
    nbclos::Xoshiro256 rng(2);
    const auto result = nbclos::circuit::run_churn(
        clos, nbclos::circuit::FitStrategy::kFirstFit, 30000, 1.0, false,
        rng);
    std::cout << "m = n = " << n << " (first-fit):  " << result.attempts
              << " calls, " << result.blocked << " blocked (P = "
              << nbclos::format_double(result.blocking_probability(), 3)
              << ")\n";
  }

  // 3. ...but the same m = n fabric never blocks when the controller may
  //    rearrange live circuits (Slepian-Duguid / Benes 1962).
  {
    nbclos::circuit::ClosCircuitSwitch clos(n, n, r);
    nbclos::Xoshiro256 rng(3);
    const auto result = nbclos::circuit::run_churn(
        clos, nbclos::circuit::FitStrategy::kFirstFit, 30000, 1.0, true,
        rng);
    std::cout << "m = n = " << n << " (rearrange):  " << result.attempts
              << " calls, " << result.blocked << " blocked, "
              << result.rearrangements_needed << " rearrangements\n";
  }

  // 4. A single rearrangement, step by step: fill a small switch until
  //    first-fit is stuck, then watch the recoloring place the call.
  std::cout << "\nRearrangement walkthrough on Clos(2, 2, 3):\n";
  nbclos::circuit::ClosCircuitSwitch clos(2, 2, 3);
  const auto show = [&clos] {
    for (const auto& c : clos.circuits()) {
      std::cout << "  circuit " << c.id << ": in " << c.input_port
                << " -> out " << c.output_port << " via middle " << c.middle
                << "\n";
    }
  };
  (void)clos.connect(0, 2, nbclos::circuit::FitStrategy::kFirstFit);
  (void)clos.connect(1, 4, nbclos::circuit::FitStrategy::kFirstFit);
  (void)clos.connect(2, 0, nbclos::circuit::FitStrategy::kFirstFit);
  std::cout << "after three first-fit calls:\n";
  show();
  const auto blocked = clos.connect(3, 5, nbclos::circuit::FitStrategy::kFirstFit);
  std::cout << "connect(3 -> 5) without rearrangement: "
            << (blocked ? "placed" : "BLOCKED") << "\n";
  if (!blocked) {
    const auto id = clos.connect_with_rearrangement(3, 5);
    std::cout << "connect_with_rearrangement(3 -> 5): "
              << (id ? "placed" : "failed") << "\n";
    show();
  }
  clos.validate();

  std::cout << "\nThe paper's departure point: all of the above assumes one "
               "controller seeing\nevery call.  With distributed control "
               "(each switch routing independently),\nnone of these bounds "
               "apply — that regime needs m >= n^2 (Theorem 2).\n";
  return 0;
}
