/// \file throughput_study.cpp
/// \brief Packet-level demonstration of the paper's motivating claim:
///        a folded-Clos that is "nonblocking" only in the telephone sense
///        delivers far less than a crossbar under distributed routing,
///        while the Theorem 3 fabric matches the crossbar exactly.
///
/// Run: ./throughput_study [load]   (default 0.9 flits/cycle/terminal)
#include <iostream>
#include <string>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/sim/engine.hpp"
#include "nbclos/util/table.hpp"

int main(int argc, char** argv) {
  const double load = argc > 1 ? std::stod(argv[1]) : 0.9;

  constexpr std::uint32_t kN = 4;
  constexpr std::uint32_t kR = 8;
  const std::uint32_t terminals = kN * kR;

  // The adversarial permutation: each source switch targets both members
  // of two mod-16 residue classes, so destination-keyed static routing
  // (top = dst mod m, for m = 4 or 16) funnels its four flows onto two
  // uplinks, while the Theorem 3 (i,j) routing keeps them disjoint.
  nbclos::Permutation pattern;
  for (std::uint32_t v = 0; v < kR; ++v) {
    const std::uint32_t base = 2 * v;
    pattern.push_back(
        {nbclos::LeafId{v * kN + 0}, nbclos::LeafId{(base + 20) % 32}});
    pattern.push_back(
        {nbclos::LeafId{v * kN + 1}, nbclos::LeafId{(base + 4) % 32}});
    pattern.push_back(
        {nbclos::LeafId{v * kN + 2}, nbclos::LeafId{(base + 5) % 32}});
    pattern.push_back(
        {nbclos::LeafId{v * kN + 3}, nbclos::LeafId{(base + 21) % 32}});
  }
  nbclos::validate_permutation(pattern, terminals);
  const auto traffic =
      nbclos::sim::TrafficPattern::permutation(pattern, terminals);

  nbclos::sim::SimConfig config;
  config.injection_rate = load;
  config.warmup_cycles = 2000;
  config.measure_cycles = 8000;
  config.seed = 3;

  nbclos::TextTable table({"fabric + routing", "accepted throughput",
                           "mean latency", "p99 latency", "saturated"});
  const auto report = [&](const std::string& name,
                          const nbclos::sim::SimResult& result) {
    table.add(name, nbclos::format_double(result.accepted_throughput),
              nbclos::format_double(result.mean_latency, 1),
              nbclos::format_double(result.p99_latency, 1),
              std::string(result.saturated() ? "yes" : "no"));
  };

  {
    const auto net = nbclos::build_crossbar(terminals);
    nbclos::sim::CrossbarOracle oracle(terminals);
    nbclos::sim::PacketSim sim(net, oracle, traffic, config);
    report("ideal crossbar", sim.run());
  }
  {
    const nbclos::FoldedClos ft(nbclos::FtreeParams{kN, kN * kN, kR});
    const auto net = nbclos::build_network(ft);
    const nbclos::YuanNonblockingRouting routing(ft);
    const auto routes = nbclos::RoutingTable::materialize(routing);
    nbclos::sim::FtreeOracle oracle(ft, nbclos::sim::UplinkPolicy::kTable,
                                    &routes);
    nbclos::sim::PacketSim sim(net, oracle, traffic, config);
    report("nonblocking ftree (Theorem 3, m=n^2)", sim.run());
  }
  {
    const nbclos::FoldedClos ft(nbclos::FtreeParams{kN, kN * kN, kR});
    const auto net = nbclos::build_network(ft);
    nbclos::sim::FtreeOracle oracle(ft, nbclos::sim::UplinkPolicy::kDModK);
    nbclos::sim::PacketSim sim(net, oracle, traffic, config);
    report("same ftree, static d-mod-k", sim.run());
  }
  {
    const nbclos::FoldedClos ft(nbclos::FtreeParams{kN, kN, kR});
    const auto net = nbclos::build_network(ft);
    nbclos::sim::FtreeOracle oracle(ft, nbclos::sim::UplinkPolicy::kDModK);
    nbclos::sim::PacketSim sim(net, oracle, traffic, config);
    report("rearrangeable ftree (m=n), d-mod-k", sim.run());
  }
  {
    const nbclos::FoldedClos ft(nbclos::FtreeParams{kN, kN * kN, kR});
    const auto net = nbclos::build_network(ft);
    nbclos::sim::FtreeOracle oracle(ft,
                                    nbclos::sim::UplinkPolicy::kLeastQueue);
    nbclos::sim::PacketSim sim(net, oracle, traffic, config);
    report("same ftree, least-queue adaptive", sim.run());
  }

  std::cout << "Adversarial permutation, offered load "
            << nbclos::format_double(load) << " flits/cycle/terminal, "
            << terminals << " terminals:\n\n";
  table.print(std::cout);
  std::cout << "\nThe Theorem 3 fabric is the only fat-tree configuration "
               "that keeps crossbar\nthroughput under distributed control — "
               "the paper's definition of nonblocking\nin computer "
               "communication environments.\n";
  return 0;
}
