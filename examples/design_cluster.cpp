/// \file design_cluster.cpp
/// \brief Cluster-interconnect sizing tool: given the switch radix you
///        can buy, what nonblocking fabrics can you build and what do
///        they cost?  This is the engineering question the paper's §IV
///        discussion and Table I answer.
///
/// Run: ./design_cluster [radix] [target_ports]
///      (defaults: radix 42, target 2000 ports)
#include <iostream>
#include <string>

#include "nbclos/core/designer.hpp"
#include "nbclos/core/table_one.hpp"
#include "nbclos/topology/mport_ntree.hpp"
#include "nbclos/util/table.hpp"

int main(int argc, char** argv) {
  const std::uint32_t radix =
      argc > 1 ? static_cast<std::uint32_t>(std::stoul(argv[1])) : 42U;
  const std::uint64_t target_ports =
      argc > 2 ? std::stoull(argv[2]) : 2000ULL;

  std::cout << "=== Nonblocking fabric design for radix-" << radix
            << " switches ===\n\n";

  // 1. All two-level designs that fit this radix.
  std::cout << "Two-level designs ftree(n+n^2, n+n^2) with n+n^2 <= "
            << radix << ":\n";
  nbclos::TextTable designs(
      {"n", "radix used", "ports", "switches", "links", "ports/switch"});
  for (const auto& d : nbclos::enumerate_designs(radix)) {
    designs.add(d.n, d.switch_radix, d.ports, d.switches, d.links,
                nbclos::format_double(static_cast<double>(d.ports) /
                                      static_cast<double>(d.switches)));
  }
  designs.print(std::cout);

  const auto best = nbclos::design_for_radix(radix);
  if (!best) {
    std::cout << "Radix too small for any nonblocking design (need >= 6).\n";
    return 1;
  }

  // 2. Comparison with the rearrangeable m-port 2-tree of the same radix
  //    (Table I's second family) — cheaper, but blocking under
  //    distributed control.
  std::cout << "\nComparison with rearrangeable FT(" << radix << ", 2):\n";
  nbclos::TextTable cmp({"fabric", "ports", "switches",
                         "nonblocking (distributed control)"});
  cmp.add(std::string("ftree(") + std::to_string(best->n) + "+" +
              std::to_string(best->n * best->n) + ", " +
              std::to_string(best->switch_radix) + ")",
          best->ports, best->switches, std::string("yes (Theorem 3)"));
  if (radix % 2 == 0) {
    const auto ft = nbclos::mport_ntree_size(radix, 2);
    cmp.add(std::string("FT(") + std::to_string(radix) + ", 2)",
            ft.node_count, ft.switch_count,
            std::string("no (rearrangeable only)"));
  }
  cmp.print(std::cout);

  // 3. Scale up: recursive multi-level designs until the port target is
  //    met (§IV: always replace *top* switches, per Theorem 1).
  std::cout << "\nScaling to >= " << target_ports
            << " ports by recursive construction:\n";
  nbclos::TextTable levels({"levels", "ports", "switches", "meets target"});
  for (std::uint32_t level = 2; level <= 6; ++level) {
    const auto d = nbclos::recursive_design(best->n, level);
    const bool met = d.ports >= target_ports;
    levels.add(level, d.ports, d.switches, std::string(met ? "yes" : "no"));
    if (met) break;
  }
  levels.print(std::cout);

  std::cout << "\nRule of thumb (paper): ~2N radix-N switches buy ~N^1.5 "
               "truly nonblocking ports;\neach extra level multiplies "
               "ports by n at ~n^2 times the switch count.\n";
  return 0;
}
