/// \file quickstart.cpp
/// \brief Five-minute tour of the library: build a nonblocking fabric,
///        route a permutation, certify zero contention, and cross-check
///        with the empirical verifier.
///
/// Run: ./quickstart [n]    (default n = 4: the 20-port-switch design)
#include <iostream>
#include <string>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/core/fabric.hpp"

int main(int argc, char** argv) {
  const std::uint32_t n = argc > 1 ? static_cast<std::uint32_t>(
                                         std::stoul(argv[1]))
                                   : 4U;

  // 1. Build ftree(n + n^2, n + n^2) — the paper's Table I design: a
  //    fabric of uniform (n+n^2)-port switches that behaves like one big
  //    crossbar under distributed control.
  const nbclos::NonblockingFabric fabric(n);
  const auto& topo = fabric.topology();
  std::cout << "Built ftree(" << topo.n() << "+" << topo.m() << ", "
            << topo.r() << "): " << fabric.port_count() << " ports, "
            << topo.switch_count() << " switches of radix "
            << topo.bottom_radix() << "\n";

  // 2. Route a full permutation (cyclic shift) with the Theorem 3
  //    single-path deterministic routing.
  const auto pattern = nbclos::shift_permutation(fabric.port_count(), 7);
  const auto paths = fabric.route_pattern(pattern);
  std::cout << "Routed a " << pattern.size() << "-pair shift permutation; "
            << "contention: "
            << (nbclos::has_contention(topo, paths) ? "FOUND (bug!)" : "none")
            << "\n";

  // A sample path, in the paper's notation (v,i) -> (i,j) -> (w,j):
  const auto& sample = paths.front();
  std::cout << "Example: leaf " << sample.sd.src.value << " (switch "
            << topo.switch_of(sample.sd.src).value << ", local "
            << topo.local_of(sample.sd.src) << ") -> leaf "
            << sample.sd.dst.value << " via top switch (i,j) = ("
            << sample.top.value / topo.n() << "," << sample.top.value % topo.n()
            << ")\n";

  // 3. Certify: the Lemma 1 audit walks all r(r-1)n^2 SD pairs and proves
  //    (not samples) that no permutation can ever contend.
  std::cout << "Lemma 1 certification over " << topo.cross_pair_count()
            << " SD pairs: "
            << (fabric.certify() ? "NONBLOCKING (proof)" : "FAILED") << "\n";

  // 4. Cross-check with randomized verification.
  const auto verdict = fabric.verify_random(/*trials=*/500, /*seed=*/1);
  std::cout << "Random verification: " << verdict.permutations_checked
            << " permutations, "
            << (verdict.nonblocking ? "zero contention" : "CONTENTION")
            << "\n";
  return 0;
}
