/// \file digits.hpp
/// \brief Fixed-width base-n digit codec.
///
/// The paper's adaptive routing (Section V) numbers the r bottom switches
/// with c base-n digits and the r*n leaf nodes with c+1 base-n digits
/// `s_{c-1} ... s_0 p`.  This codec converts between the integer id and
/// its digit vector, with digit 0 being the least significant ("first
/// digit" in the paper's wording, i.e. the local node number p for node
/// ids).
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/util/check.hpp"

namespace nbclos {

/// Encode/decode integers as fixed-width base-`radix` digit strings.
class DigitCodec {
 public:
  /// \param radix the base n (>= 2)
  /// \param width number of digits c (>= 1)
  DigitCodec(std::uint32_t radix, std::uint32_t width)
      : radix_(radix), width_(width) {
    NBCLOS_REQUIRE(radix >= 2, "radix must be >= 2");
    NBCLOS_REQUIRE(width >= 1, "width must be >= 1");
    std::uint64_t cap = 1;
    for (std::uint32_t i = 0; i < width; ++i) {
      NBCLOS_REQUIRE(cap <= UINT64_MAX / radix, "digit space overflow");
      cap *= radix;
    }
    capacity_ = cap;
  }

  [[nodiscard]] std::uint32_t radix() const noexcept { return radix_; }
  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  /// Number of representable values, radix^width.
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }

  /// Digit i (0 = least significant).  \pre value < capacity().
  [[nodiscard]] std::uint32_t digit(std::uint64_t value,
                                    std::uint32_t i) const {
    NBCLOS_REQUIRE(value < capacity_, "value out of digit range");
    NBCLOS_REQUIRE(i < width_, "digit index out of range");
    for (std::uint32_t k = 0; k < i; ++k) value /= radix_;
    return static_cast<std::uint32_t>(value % radix_);
  }

  /// All digits, least significant first.
  [[nodiscard]] std::vector<std::uint32_t> digits(std::uint64_t value) const {
    NBCLOS_REQUIRE(value < capacity_, "value out of digit range");
    std::vector<std::uint32_t> out(width_);
    for (std::uint32_t i = 0; i < width_; ++i) {
      out[i] = static_cast<std::uint32_t>(value % radix_);
      value /= radix_;
    }
    return out;
  }

  /// Inverse of digits(): compose a value from digits (LSB first).
  [[nodiscard]] std::uint64_t compose(
      const std::vector<std::uint32_t>& digits) const {
    NBCLOS_REQUIRE(digits.size() == width_, "digit count mismatch");
    std::uint64_t value = 0;
    for (std::uint32_t i = width_; i-- > 0;) {
      NBCLOS_REQUIRE(digits[i] < radix_, "digit out of range");
      value = value * radix_ + digits[i];
    }
    return value;
  }

 private:
  std::uint32_t radix_;
  std::uint32_t width_;
  std::uint64_t capacity_;
};

/// Smallest c >= 1 such that r <= n^c — the paper's constant c for
/// ftree(n+m, r).  \pre n >= 2.
[[nodiscard]] inline std::uint32_t min_digit_width(std::uint64_t r,
                                                   std::uint32_t n) {
  NBCLOS_REQUIRE(n >= 2, "n must be >= 2");
  NBCLOS_REQUIRE(r >= 1, "r must be >= 1");
  std::uint32_t c = 1;
  std::uint64_t cap = n;
  while (cap < r) {
    NBCLOS_REQUIRE(cap <= UINT64_MAX / n, "overflow computing n^c");
    cap *= n;
    ++c;
  }
  return c;
}

}  // namespace nbclos
