/// \file check.hpp
/// \brief Error-handling primitives: invariant assertions, argument
///        validation, and checked narrowing conversions.
///
/// Style follows the C++ Core Guidelines: exceptions signal precondition
/// violations on the public API surface (`NBCLOS_REQUIRE`), while internal
/// invariants use `NBCLOS_ASSERT`, which is active in all build types --
/// this library computes combinatorial certificates, so silent corruption
/// is worse than a small runtime cost.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <type_traits>

namespace nbclos {

/// Exception thrown when a public-API precondition is violated.
class precondition_error : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Exception thrown when an internal invariant fails (a library bug).
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void fail_require(const char* expr, const std::string& msg,
                                      const std::source_location loc) {
  throw precondition_error(std::string("precondition failed: ") + expr +
                           (msg.empty() ? "" : (": " + msg)) + " at " +
                           loc.file_name() + ":" + std::to_string(loc.line()));
}

[[noreturn]] inline void fail_assert(const char* expr,
                                     const std::source_location loc) {
  throw invariant_error(std::string("invariant failed: ") + expr + " at " +
                        loc.file_name() + ":" + std::to_string(loc.line()));
}

}  // namespace detail

/// Validate a public-API precondition; throws nbclos::precondition_error.
#define NBCLOS_REQUIRE(expr, msg)                                 \
  do {                                                            \
    if (!(expr)) {                                                \
      ::nbclos::detail::fail_require(#expr, (msg),                \
                                     std::source_location::current()); \
    }                                                             \
  } while (false)

/// Check an internal invariant; throws nbclos::invariant_error.
/// Active in every build type.
#define NBCLOS_ASSERT(expr)                                       \
  do {                                                            \
    if (!(expr)) {                                                \
      ::nbclos::detail::fail_assert(#expr,                        \
                                    std::source_location::current()); \
    }                                                             \
  } while (false)

// --- debug-only bounds checks for per-pair / per-flit accessors ---------
//
// NBCLOS_REQUIRE stays on the construction/API boundary, where a check
// runs once per object.  Index arithmetic that runs once per routed pair
// or per simulated flit (FoldedClos link accessors, RoutingTable::lookup,
// Network::channel_src) instead uses NBCLOS_DEBUG_CHECK: identical to
// NBCLOS_REQUIRE in Debug builds, compiled out entirely when NDEBUG is
// defined (Release / RelWithDebInfo).  The ids these accessors consume
// are produced by the library's own counted loops and caches, so the
// checks are redundant in correct code — Debug + sanitizer CI keeps them
// honest while the hot paths stay branch-free at -O3.
//
// Override with -DNBCLOS_DEBUG_CHECKS=0/1 to force either behaviour.
#if !defined(NBCLOS_DEBUG_CHECKS)
#if defined(NDEBUG)
#define NBCLOS_DEBUG_CHECKS 0
#else
#define NBCLOS_DEBUG_CHECKS 1
#endif
#endif

#if NBCLOS_DEBUG_CHECKS
#define NBCLOS_DEBUG_CHECK(expr, msg) NBCLOS_REQUIRE(expr, msg)
#else
#define NBCLOS_DEBUG_CHECK(expr, msg) \
  do {                                \
  } while (false)
#endif

/// Whether NBCLOS_DEBUG_CHECK is active in this translation unit — lets
/// tests skip throw-expectations that a Release build compiles out.
inline constexpr bool kDebugChecksEnabled = NBCLOS_DEBUG_CHECKS != 0;

/// Checked narrowing conversion (gsl::narrow style). Throws if the value
/// does not round-trip or if the sign changes.
template <typename To, typename From>
[[nodiscard]] constexpr To narrow(From value) {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>);
  const To converted = static_cast<To>(value);
  if (static_cast<From>(converted) != value ||
      ((converted < To{}) != (value < From{}))) {
    throw precondition_error("narrowing conversion lost information");
  }
  return converted;
}

}  // namespace nbclos
