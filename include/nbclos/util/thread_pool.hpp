/// \file thread_pool.hpp
/// \brief A small work-stealing-free thread pool with a blocking
///        parallel_for, used to parallelize permutation sweeps and
///        simulator parameter scans.
///
/// The pool is deliberately simple: a shared queue guarded by a mutex is
/// plenty for our coarse-grained tasks (each task verifies a whole
/// permutation or simulates thousands of cycles).  Determinism note:
/// callers must give each parallel chunk its own split PRNG; results are
/// then independent of scheduling order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nbclos {

class ThreadPool {
 public:
  /// Spawn `threads` workers; 0 means hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueue a task.  Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until all submitted tasks have completed.
  void wait_idle();

  /// Run fn(i) for i in [begin, end), partitioned into contiguous chunks
  /// across the pool, and block until done.  fn must be thread-safe.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Run fn(chunk_index, chunk_begin, chunk_end) once per chunk —
  /// convenient when each worker needs its own accumulator / PRNG.
  void parallel_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  /// Workers currently executing a task (observability; racy by nature).
  [[nodiscard]] std::size_t active_count() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }
  /// Tasks completed over the pool's lifetime.
  [[nodiscard]] std::uint64_t tasks_executed() const noexcept {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  void worker_loop();

  std::atomic<std::size_t> active_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace nbclos
