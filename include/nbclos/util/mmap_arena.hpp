/// \file mmap_arena.hpp
/// \brief Growable flat array of trivially-copyable elements with an
///        optional file-backed (mmap) arena, so tables that exceed RAM
///        can spill to disk.
///
/// `FlatStore<T>` is the storage primitive behind `ChannelRouteCache`
/// and the flow-level flit/packet arenas: by default it is a thin
/// wrapper over `std::vector<T>`, but when constructed with a backing
/// directory (Linux only) the array lives in an unlinked temporary file
/// mapped with `MAP_SHARED`.  The kernel then pages cold regions of a
/// giant table out to disk under memory pressure instead of OOM-killing
/// the process, while the hot working set stays in the page cache at
/// normal speed.  The file is unlinked immediately after creation, so
/// it vanishes with the process and never needs cleanup.
///
/// The backing directory typically comes from the `NBCLOS_MMAP_CACHE`
/// environment variable (see `mmap_cache_dir()`): unset/empty/"0" means
/// heap, "1" means the default temp directory, anything else is used as
/// the directory itself.  On non-Linux platforms, or when the backing
/// file cannot be created, the store silently falls back to the heap —
/// the contents and the API behave identically either way.
///
/// `U32Store` is the historical `std::uint32_t` instantiation and keeps
/// its name because route tables predate the template.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#ifdef __linux__
#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>
#endif

#include "nbclos/util/check.hpp"

namespace nbclos {

namespace detail {

/// Backing directory requested via NBCLOS_MMAP_CACHE, if any.
[[nodiscard]] inline std::optional<std::string> mmap_cache_dir_from_env() {
  const char* env = std::getenv("NBCLOS_MMAP_CACHE");
  if (env == nullptr || env[0] == '\0') return std::nullopt;
  const std::string value(env);
  if (value == "0") return std::nullopt;
  if (value == "1") return std::string("/tmp");
  return value;
}

}  // namespace detail

template <typename T>
class FlatStore {
  static_assert(std::is_trivially_copyable_v<T>,
                "FlatStore spills raw bytes; T must be trivially copyable");

 public:
  /// Heap-backed store (the default, and the non-Linux behavior).
  FlatStore() = default;

  /// File-backed store with its unlinked temp file in `backing_dir`;
  /// falls back to the heap when the file cannot be created.
  explicit FlatStore(const std::string& backing_dir) {
#ifdef __linux__
    std::string path = backing_dir + "/nbclos-arena-XXXXXX";
    const int fd = ::mkstemp(path.data());
    if (fd >= 0) {
      ::unlink(path.c_str());
      fd_ = fd;
    }
#else
    (void)backing_dir;
#endif
  }

  /// Store that spills iff NBCLOS_MMAP_CACHE asks for it.  The helper
  /// keeps call sites one-liners: `FlatStore<T>::from_env()`.
  [[nodiscard]] static FlatStore from_env() {
    const auto dir = mmap_cache_dir();
    return dir ? FlatStore(*dir) : FlatStore();
  }

  ~FlatStore() { release(); }

  FlatStore(FlatStore&& other) noexcept { steal(other); }
  FlatStore& operator=(FlatStore&& other) noexcept {
    if (this != &other) {
      release();
      steal(other);
    }
    return *this;
  }
  /// Deep copy lands on the heap regardless of the source's backing —
  /// copies are for tests and snapshots, not for giant tables.
  FlatStore(const FlatStore& other) {
    heap_.assign(other.data(), other.data() + other.size());
  }
  FlatStore& operator=(const FlatStore& other) {
    if (this != &other) {
      release();
      heap_.assign(other.data(), other.data() + other.size());
    }
    return *this;
  }

  /// Backing directory requested via NBCLOS_MMAP_CACHE, if any.
  [[nodiscard]] static std::optional<std::string> mmap_cache_dir() {
    return detail::mmap_cache_dir_from_env();
  }

  [[nodiscard]] bool file_backed() const noexcept {
#ifdef __linux__
    return fd_ >= 0;
#else
    return false;
#endif
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return file_backed() ? map_size_ : heap_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    return file_backed() ? map_capacity_ : heap_.capacity();
  }
  [[nodiscard]] const T* data() const noexcept {
    return file_backed() ? map_ : heap_.data();
  }
  [[nodiscard]] T* data() noexcept { return file_backed() ? map_ : heap_.data(); }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    NBCLOS_DEBUG_CHECK(i < size(), "FlatStore index out of range");
    return data()[i];
  }
  [[nodiscard]] T& operator[](std::size_t i) {
    NBCLOS_DEBUG_CHECK(i < size(), "FlatStore index out of range");
    return data()[i];
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return capacity() * sizeof(T);
  }
  /// Bytes living in the backing file rather than the heap (0 when
  /// heap-backed) — the quantity manifests report as "spill".
  [[nodiscard]] std::size_t spill_bytes() const noexcept {
    return file_backed() ? bytes() : 0;
  }

  void reserve(std::size_t n) {
    if (!file_backed()) {
      heap_.reserve(n);
      return;
    }
    if (n > map_capacity_) grow_to(n);
  }

  void push_back(const T& value) {
    if (!file_backed()) {
      heap_.push_back(value);
      return;
    }
    if (map_size_ == map_capacity_) {
      grow_to(map_capacity_ == 0 ? kInitialCapacity : map_capacity_ * 2);
    }
    map_[map_size_++] = value;
  }

  /// Grow (value-filling new slots) or shrink the logical size.  Growth
  /// beyond capacity doubles, matching push_back's amortization.
  void resize(std::size_t n, const T& fill = T{}) {
    if (!file_backed()) {
      heap_.resize(n, fill);
      return;
    }
    if (n > map_capacity_) {
      std::size_t target = map_capacity_ == 0 ? kInitialCapacity : map_capacity_;
      while (target < n) target *= 2;
      grow_to(target);
      if (!file_backed()) {  // grow fell back to the heap
        heap_.resize(n, fill);
        return;
      }
    }
    for (std::size_t i = map_size_; i < n; ++i) map_[i] = fill;
    map_size_ = n;
  }

  void shrink_to_fit() {
    if (!file_backed()) {
      heap_.shrink_to_fit();
      return;
    }
#ifdef __linux__
    if (map_capacity_ > map_size_) resize_mapping(map_size_);
#endif
  }

 private:
  static constexpr std::size_t kInitialCapacity = 1024;

  void grow_to(std::size_t n) {
#ifdef __linux__
    resize_mapping(n);
#else
    (void)n;
#endif
  }

#ifdef __linux__
  /// Grow or shrink both the backing file and the mapping.  On any
  /// failure the store falls back to the heap, preserving its contents.
  void resize_mapping(std::size_t new_capacity) {
    const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
    std::size_t new_bytes = new_capacity * sizeof(T);
    new_bytes = (new_bytes + page - 1) / page * page;
    if (new_bytes == 0) new_bytes = page;
    new_capacity = new_bytes / sizeof(T);
    if (::ftruncate(fd_, static_cast<off_t>(new_bytes)) != 0) {
      fall_back_to_heap();
      return;
    }
    void* mapped;
    if (map_ == nullptr) {
      mapped = ::mmap(nullptr, new_bytes, PROT_READ | PROT_WRITE, MAP_SHARED,
                      fd_, 0);
    } else {
      mapped = ::mremap(map_, map_bytes_, new_bytes, MREMAP_MAYMOVE);
    }
    if (mapped == MAP_FAILED) {
      fall_back_to_heap();
      return;
    }
    map_ = static_cast<T*>(mapped);
    map_bytes_ = new_bytes;
    map_capacity_ = new_capacity;
    if (map_size_ > map_capacity_) map_size_ = map_capacity_;
  }

  void fall_back_to_heap() {
    heap_.assign(map_, map_ + map_size_);
    if (map_ != nullptr) ::munmap(map_, map_bytes_);
    ::close(fd_);
    map_ = nullptr;
    map_bytes_ = 0;
    map_size_ = 0;
    map_capacity_ = 0;
    fd_ = -1;
  }
#endif

  void release() {
#ifdef __linux__
    if (map_ != nullptr) ::munmap(map_, map_bytes_);
    if (fd_ >= 0) ::close(fd_);
    map_ = nullptr;
    fd_ = -1;
    map_bytes_ = 0;
    map_size_ = 0;
    map_capacity_ = 0;
#endif
    heap_.clear();
  }

  void steal(FlatStore& other) {
    heap_ = std::move(other.heap_);
    other.heap_.clear();
#ifdef __linux__
    fd_ = std::exchange(other.fd_, -1);
    map_ = std::exchange(other.map_, nullptr);
    map_bytes_ = std::exchange(other.map_bytes_, 0);
    map_size_ = std::exchange(other.map_size_, 0);
    map_capacity_ = std::exchange(other.map_capacity_, 0);
#endif
  }

  std::vector<T> heap_;
#ifdef __linux__
  int fd_ = -1;
  T* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  std::size_t map_size_ = 0;
  std::size_t map_capacity_ = 0;
#endif
};

using U32Store = FlatStore<std::uint32_t>;

}  // namespace nbclos
