/// \file stats.hpp
/// \brief Streaming statistics used by the experiment harnesses:
///        Welford running moments, min/max tracking, normal-approximation
///        confidence intervals, and a fixed-bin histogram.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nbclos {

/// Numerically-stable streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  void add(double x) noexcept;

  /// Merge another accumulator (parallel reduction; Chan et al. update).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// Half-width of the ~95% normal-approximation confidence interval.
  [[nodiscard]] double ci95_half_width() const noexcept;

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width histogram over [lo, hi); samples outside the range land in
/// saturating edge bins.  Used for latency distributions in the simulator.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;

  [[nodiscard]] std::size_t bin_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Value below which the given fraction of samples fall (linear
  /// interpolation within the containing bin).  \pre 0 <= q <= 1.
  [[nodiscard]] double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Streaming quantile estimator for non-negative integer-valued samples
/// (e.g. packet latencies in cycles) with a bounded value range known up
/// front.  Memory is O(min(max_value, max_bins)) regardless of sample
/// count, so the simulator can track p50/p99/p999 over arbitrarily long
/// runs without buffering every sample for an end-of-run sort.
///
/// Quantiles follow the sort-rank convention `sorted[floor(q * (n - 1))]`
/// at bucket resolution: the returned value is the lower edge of the
/// bucket containing that rank, so the error is strictly less than one
/// `bucket_width()`.  When `max_value < max_bins` every bucket holds a
/// single integer and quantiles are exact.
class QuantileHistogram {
 public:
  /// \param max_value largest sample that keeps full resolution; larger
  ///        samples saturate into the top bucket.
  /// \param max_bins  memory bound; bucket width is the smallest integer
  ///        covering [0, max_value] within this many buckets.
  explicit QuantileHistogram(std::uint64_t max_value,
                             std::size_t max_bins = 4096);

  void add(std::uint64_t value) noexcept;

  /// Record `weight` occurrences of `value` in one call (used when a
  /// worker flushes a locally-accumulated count; equivalent to calling
  /// add(value) `weight` times).  The running count saturates at
  /// UINT64_MAX instead of wrapping.
  void add(std::uint64_t value, std::uint64_t weight) noexcept;

  /// Merge another histogram (parallel reduction).  \pre identical
  /// geometry (same max_value / max_bins).
  void merge(const QuantileHistogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t bucket_width() const noexcept { return width_; }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }

  /// Lower edge of the bucket holding rank floor(q * (count - 1));
  /// 0 when empty.  \pre 0 <= q <= 1.
  [[nodiscard]] double quantile(double q) const;

 private:
  std::uint64_t width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Least-squares fit of y = a * x^b through points (x_i, y_i) in log space.
/// Returns {a, b}.  Used to measure the empirical exponent in Theorem 5.
struct PowerFit {
  double coefficient;  ///< a
  double exponent;     ///< b
  double r_squared;    ///< goodness of fit in log space
};

[[nodiscard]] PowerFit fit_power_law(const std::vector<double>& x,
                                     const std::vector<double>& y);

}  // namespace nbclos
