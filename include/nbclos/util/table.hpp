/// \file table.hpp
/// \brief Aligned ASCII table and CSV emission for experiment harnesses.
///
/// Every bench binary prints its results twice: a human-readable aligned
/// table (mirroring the paper's table layout) and, optionally, CSV on a
/// separate stream for downstream plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace nbclos {

/// Column-aligned text table builder.
class TextTable {
 public:
  /// Create a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format arbitrary streamable values into a row.
  template <typename... Ts>
  void add(const Ts&... values) {
    add_row({format_cell(values)...});
  }

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Render with box-drawing separators and a header rule.
  void print(std::ostream& os) const;

  /// Render as RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void print_csv(std::ostream& os) const;

 private:
  template <typename T>
  static std::string format_cell(const T& value);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision, trimming trailing zeros.
[[nodiscard]] std::string format_double(double value, int precision = 3);

/// Render "measured (paper: expected)" comparison cells used in
/// EXPERIMENTS.md style output.
[[nodiscard]] std::string versus(double measured, double paper,
                                 int precision = 3);

}  // namespace nbclos

#include <sstream>

namespace nbclos {

template <typename T>
std::string TextTable::format_cell(const T& value) {
  if constexpr (std::is_same_v<T, std::string>) {
    return value;
  } else if constexpr (std::is_floating_point_v<T>) {
    return format_double(static_cast<double>(value));
  } else {
    std::ostringstream os;
    os << value;
    return os.str();
  }
}

}  // namespace nbclos
