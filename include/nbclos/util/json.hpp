/// \file json.hpp
/// \brief Streaming JSON writer shared by the bench harnesses, the
///        metrics/trace exporters, and the CLI.
///
/// Before this existed every bench hand-rolled its JSON with raw
/// `std::cout <<`, which diverged in float precision (default 6
/// significant digits in some benches, full precision in others) and
/// duplicated escaping logic.  JsonWriter centralizes:
///   * structural correctness — commas, nesting, and key/value pairing
///     are tracked on a stack and misuse fails fast via NBCLOS_REQUIRE;
///   * string escaping (quotes, backslashes, control characters);
///   * float formatting — shortest round-trip representation via
///     std::to_chars, so every bench emits bit-faithful doubles;
///   * non-finite doubles — JSON has no NaN/Inf, so they are emitted as
///     null (the conventional lossy mapping, flagged in EXPERIMENTS.md).
///
/// Pretty-printing indents two spaces per level; pass indent = 0 for
/// compact single-line output (used by the JSONL trace stream).
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace nbclos {

class JsonWriter {
 public:
  /// \param indent spaces per nesting level; 0 = compact (no newlines).
  explicit JsonWriter(std::ostream& out, int indent = 2)
      : out_(&out), indent_(indent) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value (or
  /// begin_object/begin_array).
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) {
    return value(std::string_view(text));
  }
  JsonWriter& value(bool flag);
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int32_t number) {
    return value(static_cast<std::int64_t>(number));
  }
  JsonWriter& value(std::uint32_t number) {
    return value(static_cast<std::uint64_t>(number));
  }

  /// key + value in one call: writer.member("seed", 42).
  template <typename T>
  JsonWriter& member(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// True once every opened scope is closed and one top-level value has
  /// been written.
  [[nodiscard]] bool complete() const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  void begin_value();  ///< comma/indent bookkeeping before any value
  void open(Scope scope, char bracket);
  void close(Scope scope, char bracket);
  void newline_indent();

  std::ostream* out_;
  int indent_;
  struct Level {
    Scope scope;
    bool has_items = false;
    bool key_pending = false;  ///< kObject: key written, value outstanding
  };
  std::vector<Level> stack_;
  bool root_written_ = false;
};

/// Escape and quote `text` per JSON (used by JsonWriter internally and
/// exposed for ad-hoc emitters like the trace writer's tests).
void write_json_string(std::ostream& out, std::string_view text);

/// Shortest round-trip decimal form of `number` ("null" for non-finite).
void write_json_double(std::ostream& out, double number);

}  // namespace nbclos
