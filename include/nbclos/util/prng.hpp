/// \file prng.hpp
/// \brief Deterministic pseudo-random number generation.
///
/// Every stochastic component in this library (permutation sampling,
/// multipath spreading, simulator injection processes) draws from an
/// explicitly-seeded generator so that experiments are reproducible
/// bit-for-bit across runs and machines.  We use xoshiro256** — fast,
/// high quality, and trivially splittable for parallel sweeps — seeded
/// through SplitMix64 as its authors recommend.
#pragma once

#include <array>
#include <cstdint>
#include <iterator>
#include <limits>

namespace nbclos {

/// SplitMix64: used to expand a 64-bit seed into generator state and to
/// derive decorrelated child seeds for parallel workers.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  [[nodiscard]] constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna.  Satisfies
/// std::uniform_random_bit_generator, so it plugs into <random>
/// distributions as well as our own helpers below.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Construct from a 64-bit seed (expanded via SplitMix64).
  explicit constexpr Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased uniform integer in [0, bound) via Lemire's nearly
  /// divisionless bounded generation with full rejection — exactly
  /// uniform for any bound > 0.  Defined inline: the hill-climb engines
  /// draw twice per step, so this must not be an out-of-line call.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
#ifdef __SIZEOF_INT128__
    __extension__ using uint128 = unsigned __int128;
#else
#error "xoshiro bounded draw requires 128-bit multiply"
#endif
    std::uint64_t x = (*this)();
    uint128 m = static_cast<uint128>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<uint128>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform01() < p; }

  /// Derive a decorrelated child generator (for parallel workers).
  [[nodiscard]] Xoshiro256 split() noexcept {
    return Xoshiro256((*this)() ^ 0x9E3779B97F4A7C15ULL);
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Fisher–Yates shuffle of a random-access range using our generator.
template <typename RandomIt>
void shuffle(RandomIt first, RandomIt last, Xoshiro256& rng) {
  using Diff = typename std::iterator_traits<RandomIt>::difference_type;
  const auto count = static_cast<std::uint64_t>(last - first);
  for (std::uint64_t i = count; i > 1; --i) {
    const auto j = rng.below(i);
    using std::swap;
    swap(first[static_cast<Diff>(i - 1)], first[static_cast<Diff>(j)]);
  }
}

}  // namespace nbclos
