/// \file clos.hpp
/// \brief The classic three-stage unidirectional Clos(n, m, r) network and
///        its logical equivalence with ftree(n+m, r).
///
/// Clos(n, m, r):
///   * r input switches (n x m),
///   * m middle switches (r x r),
///   * r output switches (m x n),
/// with one unidirectional link from every input switch to every middle
/// switch and from every middle switch to every output switch.
///
/// The paper (Section I) observes Clos(n, m, r) is logically equivalent to
/// ftree(n+m, r): folding merges input switch i with output switch i.
/// This class exists to make that equivalence executable — tests map
/// connections through the Clos network onto ftree paths and verify the
/// contention structure is identical.
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/topology/fat_tree.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos {

/// A unidirectional connection request: input port -> output port.
struct ClosConnection {
  std::uint32_t input_port = 0;   ///< 0 .. r*n-1
  std::uint32_t output_port = 0;  ///< 0 .. r*n-1
  friend constexpr auto operator<=>(const ClosConnection&,
                                    const ClosConnection&) = default;
};

/// A routed connection: which middle switch carries it.
struct ClosRoute {
  ClosConnection connection;
  std::uint32_t middle = 0;  ///< 0 .. m-1
};

class ThreeStageClos {
 public:
  ThreeStageClos(std::uint32_t n, std::uint32_t m, std::uint32_t r);

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t m() const noexcept { return m_; }
  [[nodiscard]] std::uint32_t r() const noexcept { return r_; }
  [[nodiscard]] std::uint32_t port_count() const noexcept { return n_ * r_; }

  [[nodiscard]] std::uint32_t input_switch_of(std::uint32_t input_port) const {
    NBCLOS_DEBUG_CHECK(input_port < port_count(), "input port out of range");
    return input_port / n_;
  }
  [[nodiscard]] std::uint32_t output_switch_of(std::uint32_t output_port) const {
    NBCLOS_DEBUG_CHECK(output_port < port_count(), "output port out of range");
    return output_port / n_;
  }

  // Internal directed links: first stage (input switch i -> middle j) has
  // id i*m + j; second stage (middle j -> output switch k) has id
  // r*m + j*r + k.
  [[nodiscard]] std::uint32_t first_stage_link(std::uint32_t input_switch,
                                               std::uint32_t middle) const;
  [[nodiscard]] std::uint32_t second_stage_link(std::uint32_t middle,
                                                std::uint32_t output_switch) const;
  [[nodiscard]] std::uint32_t internal_link_count() const noexcept {
    return 2 * r_ * m_;
  }

  /// Internal links used by a routed connection (always exactly two).
  [[nodiscard]] std::vector<std::uint32_t> links_of(const ClosRoute& route) const;

  /// Count internal link conflicts among a set of routed connections
  /// (pairs of routes sharing a link).  A conflict-free set is what the
  /// telephone world calls a realized "assignment".
  [[nodiscard]] std::uint64_t conflict_count(
      const std::vector<ClosRoute>& routes) const;

  // --- equivalence with ftree(n+m, r) -----------------------------------
  /// The folded network this Clos corresponds to.
  [[nodiscard]] FtreeParams folded_params() const noexcept {
    return FtreeParams{n_, m_, r_};
  }
  /// Map a Clos connection + middle choice to the corresponding ftree
  /// path (input port p -> leaf p, output port q -> leaf q, middle j ->
  /// top switch j).  Same-switch connections fold to direct paths.
  [[nodiscard]] FtreePath to_ftree_path(const ClosRoute& route,
                                        const FoldedClos& ftree) const;

 private:
  std::uint32_t n_;
  std::uint32_t m_;
  std::uint32_t r_;
};

}  // namespace nbclos
