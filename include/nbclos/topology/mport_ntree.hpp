/// \file mport_ntree.hpp
/// \brief m-port n-trees FT(m, h) (Lin, Chung, Huang 2004) — the
///        rearrangeably-nonblocking fat-tree family the paper compares
///        against in Table I.
///
/// An m-port n-tree (we write the height as `h` to avoid clashing with
/// the paper's `n` = leaf ports) is built entirely from m-port switches:
///   * processing nodes:  2 * (m/2)^h
///   * switches:          (2h - 1) * (m/2)^(h-1)
/// For h = 2 this is exactly ftree(m/2 + m/2, m): m bottom switches with
/// m/2 leaf ports and m/2 uplinks, and m/2 top switches of radix m —
/// supporting m^2/2 ports with 3m/2 switches, as quoted in the paper.
#pragma once

#include <cstdint>

#include "nbclos/topology/fat_tree.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos {

/// Cost/size figures for FT(m, h).
struct MportNtreeSize {
  std::uint32_t switch_radix = 0;   ///< m
  std::uint32_t height = 0;         ///< h (levels of switches)
  std::uint64_t node_count = 0;     ///< processing (leaf) nodes
  std::uint64_t switch_count = 0;   ///< total switches
};

/// Compute the size of FT(m, h).  \pre m even, m >= 4, h >= 1.
[[nodiscard]] MportNtreeSize mport_ntree_size(std::uint32_t m,
                                              std::uint32_t h);

/// The h = 2 member as a concrete folded-Clos: ftree(m/2 + m/2, m).
/// This is the paper's Table I comparator FT(m, 2).
[[nodiscard]] FoldedClos mport_2tree(std::uint32_t m);

}  // namespace nbclos
