/// \file dot.hpp
/// \brief Graphviz (DOT) export of Network graphs — for documentation,
///        debugging, and eyeballing that a constructed fabric matches
///        the paper's figures.
#pragma once

#include <iosfwd>
#include <string>

#include "nbclos/topology/network.hpp"

namespace nbclos {

struct DotOptions {
  bool merge_bidirectional = true;  ///< draw channel pairs as one edge
  bool rank_by_level = true;        ///< same-rank clusters per level
  std::string graph_name = "nbclos";
};

/// Write the network as a DOT digraph (or graph when merging
/// bidirectional channel pairs).  Terminals are boxes, switches circles,
/// labeled "t<idx>" / "s<level>.<idx>".
void write_dot(std::ostream& os, const Network& net,
               const DotOptions& options = {});

}  // namespace nbclos
