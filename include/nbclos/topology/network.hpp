/// \file network.hpp
/// \brief Generic directed network graph: the substrate for the packet
///        simulator and for multi-level topologies that do not fit the
///        closed-form FoldedClos index arithmetic.
///
/// Vertices are terminals (packet sources/sinks) or switches; channels
/// are directed unit-bandwidth links.  A Network is built once (builder
/// methods), then finalized, after which adjacency queries are O(1).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "nbclos/topology/fat_tree.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos {

enum class VertexKind : std::uint8_t { kTerminal, kSwitch };

struct Vertex {
  VertexKind kind = VertexKind::kTerminal;
  std::uint32_t level = 0;           ///< 0 = terminals/edge, increasing upward
  std::uint32_t index_in_level = 0;  ///< position within its level
};

struct NetChannel {
  std::uint32_t src = 0;  ///< source vertex
  std::uint32_t dst = 0;  ///< destination vertex
};

class Network {
 public:
  /// Append a vertex; returns its id.
  std::uint32_t add_vertex(VertexKind kind, std::uint32_t level,
                           std::uint32_t index_in_level);
  /// Append a directed channel; returns its id.  Must precede finalize().
  std::uint32_t add_channel(std::uint32_t src, std::uint32_t dst);

  /// Pre-size the vertex and channel arrays.  A construction-time hint
  /// only — the million-terminal builders know their exact census up
  /// front and otherwise pay log2(size) reallocation copies of arrays
  /// that end up hundreds of megabytes.
  void reserve(std::uint32_t vertices, std::uint32_t channels);

  /// Build adjacency indexes.  Construction methods are rejected after
  /// this; query methods are rejected before it.
  void finalize();
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  [[nodiscard]] std::uint32_t vertex_count() const noexcept {
    return static_cast<std::uint32_t>(vertices_.size());
  }
  [[nodiscard]] std::uint32_t channel_count() const noexcept {
    return static_cast<std::uint32_t>(channel_src_.size());
  }
  [[nodiscard]] const Vertex& vertex(std::uint32_t v) const {
    NBCLOS_REQUIRE(v < vertices_.size(), "vertex id out of range");
    return vertices_[v];
  }
  /// Both endpoints of a channel, by value (endpoints live in separate
  /// flat arrays — see channel_src/channel_dst for the hot accessors).
  [[nodiscard]] NetChannel channel(std::uint32_t c) const {
    NBCLOS_REQUIRE(c < channel_src_.size(), "channel id out of range");
    return NetChannel{channel_src_[c], channel_dst_[c]};
  }
  /// Hot-path endpoint loads: one indexed read from a contiguous
  /// uint32 array, bounds-checked only in Debug builds.  The simulator
  /// consults these once per flit hop and the route caches once per
  /// cached channel, so they must compile to a bare load at -O3.
  [[nodiscard]] std::uint32_t channel_src(std::uint32_t c) const {
    NBCLOS_DEBUG_CHECK(c < channel_src_.size(), "channel id out of range");
    return channel_src_[c];
  }
  [[nodiscard]] std::uint32_t channel_dst(std::uint32_t c) const {
    NBCLOS_DEBUG_CHECK(c < channel_dst_.size(), "channel id out of range");
    return channel_dst_[c];
  }

  /// Outgoing / incoming channel ids of a vertex (finalized only).
  [[nodiscard]] std::span<const std::uint32_t> out_channels(std::uint32_t v) const;
  [[nodiscard]] std::span<const std::uint32_t> in_channels(std::uint32_t v) const;

  /// Channel from src to dst, if one exists (finalized only; O(out-degree)).
  [[nodiscard]] std::optional<std::uint32_t> find_channel(std::uint32_t src,
                                                          std::uint32_t dst) const;

  [[nodiscard]] std::vector<std::uint32_t> terminals() const;

 private:
  struct Csr {
    std::vector<std::uint32_t> offsets;
    std::vector<std::uint32_t> items;
    [[nodiscard]] std::span<const std::uint32_t> row(std::uint32_t v) const {
      return {items.data() + offsets[v], offsets[v + 1] - offsets[v]};
    }
  };

  std::vector<Vertex> vertices_;
  // Channel endpoints in structure-of-arrays form: channel c runs from
  // channel_src_[c] to channel_dst_[c].  Keeping each endpoint column
  // contiguous lets the per-flit / per-cached-channel loads above stay
  // single indexed reads with no struct padding or pointer chasing.
  std::vector<std::uint32_t> channel_src_;
  std::vector<std::uint32_t> channel_dst_;
  Csr out_;
  Csr in_;
  bool finalized_ = false;
};

/// The vertex-numbering contract used when converting a FoldedClos into a
/// Network: terminals first, then bottom switches, then top switches, and
/// channels added in exactly LinkId order (so channel id == LinkId value).
struct FtreeNetworkMap {
  FtreeParams params;

  [[nodiscard]] std::uint32_t terminal(LeafId leaf) const noexcept {
    return leaf.value;
  }
  [[nodiscard]] std::uint32_t bottom(BottomId v) const noexcept {
    return params.r * params.n + v.value;
  }
  [[nodiscard]] std::uint32_t top(TopId t) const noexcept {
    return params.r * params.n + params.r + t.value;
  }
  [[nodiscard]] bool is_terminal(std::uint32_t v) const noexcept {
    return v < params.r * params.n;
  }
  [[nodiscard]] bool is_bottom(std::uint32_t v) const noexcept {
    return v >= params.r * params.n && v < params.r * params.n + params.r;
  }
  [[nodiscard]] bool is_top(std::uint32_t v) const noexcept {
    return v >= params.r * params.n + params.r;
  }
  [[nodiscard]] LeafId leaf_of(std::uint32_t v) const {
    NBCLOS_REQUIRE(is_terminal(v), "vertex is not a terminal");
    return LeafId{v};
  }
  [[nodiscard]] BottomId bottom_of(std::uint32_t v) const {
    NBCLOS_REQUIRE(is_bottom(v), "vertex is not a bottom switch");
    return BottomId{v - params.r * params.n};
  }
  [[nodiscard]] TopId top_of(std::uint32_t v) const {
    NBCLOS_REQUIRE(is_top(v), "vertex is not a top switch");
    return TopId{v - params.r * params.n - params.r};
  }
};

/// Convert ftree(n+m, r) to a Network following FtreeNetworkMap.
[[nodiscard]] Network build_network(const FoldedClos& ftree);

/// An N-port single crossbar switch: N terminals around one switch.
/// Channel layout: terminal t -> switch is channel t; switch -> terminal
/// t is channel N + t.
[[nodiscard]] Network build_crossbar(std::uint32_t ports);

/// A k-ary h-tree (Petrini & Vanneschi): k^h terminals, h levels of
/// k^(h-1) switches.  Switch (level l, position w) links to switch
/// (l+1, w') iff the base-k digit strings of w and w' agree everywhere
/// except possibly digit l.  Terminals attach to level-0 switches.
[[nodiscard]] Network build_kary_ntree(std::uint32_t k, std::uint32_t h);

}  // namespace nbclos
