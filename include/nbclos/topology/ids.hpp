/// \file ids.hpp
/// \brief Strongly-typed identifiers for folded-Clos entities.
///
/// The paper indexes three entity families: leaf nodes (`r*n` of them),
/// bottom-level switches (`r`), and top-level switches (`m`).  We wrap the
/// raw indices in distinct types so a leaf id cannot be passed where a
/// switch id is expected; all are trivially-copyable value types.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace nbclos {

/// Index of a leaf node (a communication endpoint), 0 .. r*n-1.
struct LeafId {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(LeafId, LeafId) = default;
};

/// Index of a bottom-level (edge) switch, 0 .. r-1.
struct BottomId {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(BottomId, BottomId) = default;
};

/// Index of a top-level (core) switch, 0 .. m-1.
struct TopId {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(TopId, TopId) = default;
};

/// Index of a *directed* link in the ftree; see FoldedClos for the layout.
struct LinkId {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(LinkId, LinkId) = default;
};

/// A source-destination pair — the unit of communication in the paper.
struct SDPair {
  LeafId src;
  LeafId dst;
  friend constexpr auto operator<=>(const SDPair&, const SDPair&) = default;
};

}  // namespace nbclos

template <>
struct std::hash<nbclos::LeafId> {
  std::size_t operator()(nbclos::LeafId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};

template <>
struct std::hash<nbclos::SDPair> {
  std::size_t operator()(const nbclos::SDPair& sd) const noexcept {
    return (static_cast<std::size_t>(sd.src.value) << 32) ^ sd.dst.value;
  }
};
