/// \file fat_tree.hpp
/// \brief The two-level folded-Clos topology ftree(n+m, r) — the central
///        object of the paper.
///
/// ftree(n+m, r) has:
///   * `r` bottom-level switches of radix n+m (n leaf ports, m uplinks),
///   * `m` top-level switches of radix r (one link per bottom switch),
///   * `r * n` leaf nodes.
/// All links are bidirectional; for contention analysis we model each
/// direction as its own directed link (uplink vs downlink), because a
/// full-duplex link only contends per direction.
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/topology/ids.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos {

/// Parameters of ftree(n+m, r).
struct FtreeParams {
  std::uint32_t n = 0;  ///< leaf ports per bottom switch
  std::uint32_t m = 0;  ///< number of top-level switches (uplinks per bottom)
  std::uint32_t r = 0;  ///< number of bottom-level switches

  friend constexpr bool operator==(const FtreeParams&,
                                   const FtreeParams&) = default;
};

/// Which of the four directed-link families a LinkId belongs to.
enum class LinkKind : std::uint8_t {
  kLeafUp,    ///< leaf -> bottom switch
  kUp,        ///< bottom switch -> top switch
  kDown,      ///< top switch -> bottom switch
  kLeafDown,  ///< bottom switch -> leaf
};

/// A route through the ftree.  Either a direct route (src and dst share a
/// bottom switch; no top switch involved) or a cross route through
/// exactly one top switch.
struct FtreePath {
  SDPair sd;
  bool direct = false;
  TopId top;  ///< meaningful only when !direct

  friend constexpr bool operator==(const FtreePath&, const FtreePath&) = default;
};

/// Immutable description of one ftree(n+m, r) instance plus all index
/// arithmetic: id <-> (switch, local) mappings and directed-link ids.
class FoldedClos {
 public:
  explicit FoldedClos(FtreeParams params);

  [[nodiscard]] const FtreeParams& params() const noexcept { return params_; }
  [[nodiscard]] std::uint32_t n() const noexcept { return params_.n; }
  [[nodiscard]] std::uint32_t m() const noexcept { return params_.m; }
  [[nodiscard]] std::uint32_t r() const noexcept { return params_.r; }

  [[nodiscard]] std::uint32_t leaf_count() const noexcept {
    return params_.r * params_.n;
  }
  [[nodiscard]] std::uint32_t bottom_count() const noexcept { return params_.r; }
  [[nodiscard]] std::uint32_t top_count() const noexcept { return params_.m; }
  [[nodiscard]] std::uint32_t switch_count() const noexcept {
    return params_.r + params_.m;
  }
  /// Radix (port count) of a bottom switch: n leaf ports + m uplinks.
  [[nodiscard]] std::uint32_t bottom_radix() const noexcept {
    return params_.n + params_.m;
  }
  /// Radix of a top switch: one port per bottom switch.
  [[nodiscard]] std::uint32_t top_radix() const noexcept { return params_.r; }

  // --- leaf numbering: leaf (v, k) = v * n + k -------------------------
  [[nodiscard]] LeafId leaf(BottomId v, std::uint32_t k) const {
    NBCLOS_DEBUG_CHECK(v.value < r() && k < n(), "leaf coordinates out of range");
    return LeafId{v.value * n() + k};
  }
  [[nodiscard]] BottomId switch_of(LeafId leaf) const {
    NBCLOS_DEBUG_CHECK(leaf.value < leaf_count(), "leaf id out of range");
    return BottomId{leaf.value / n()};
  }
  /// Local node number within its bottom switch (the paper's `p`).
  [[nodiscard]] std::uint32_t local_of(LeafId leaf) const {
    NBCLOS_DEBUG_CHECK(leaf.value < leaf_count(), "leaf id out of range");
    return leaf.value % n();
  }

  // --- directed link ids ----------------------------------------------
  // Layout: [leaf-up | up | down | leaf-down] contiguous blocks.
  [[nodiscard]] std::uint32_t link_count() const noexcept {
    return 2 * leaf_count() + 2 * params_.r * params_.m;
  }
  [[nodiscard]] LinkId leaf_up_link(LeafId leaf) const {
    NBCLOS_DEBUG_CHECK(leaf.value < leaf_count(), "leaf id out of range");
    return LinkId{leaf.value};
  }
  [[nodiscard]] LinkId up_link(BottomId v, TopId t) const {
    NBCLOS_DEBUG_CHECK(v.value < r() && t.value < m(), "up-link out of range");
    return LinkId{leaf_count() + v.value * m() + t.value};
  }
  [[nodiscard]] LinkId down_link(TopId t, BottomId v) const {
    NBCLOS_DEBUG_CHECK(v.value < r() && t.value < m(), "down-link out of range");
    return LinkId{leaf_count() + r() * m() + t.value * r() + v.value};
  }
  [[nodiscard]] LinkId leaf_down_link(LeafId leaf) const {
    NBCLOS_DEBUG_CHECK(leaf.value < leaf_count(), "leaf id out of range");
    return LinkId{leaf_count() + 2 * r() * m() + leaf.value};
  }
  [[nodiscard]] LinkKind kind_of(LinkId link) const;

  // --- paths -----------------------------------------------------------
  /// A direct path (valid only when src and dst share a bottom switch).
  [[nodiscard]] FtreePath direct_path(SDPair sd) const;
  /// A cross path through the given top switch (src and dst must be in
  /// different bottom switches).
  [[nodiscard]] FtreePath cross_path(SDPair sd, TopId top) const;
  /// Whether an SD pair needs a top-level switch.
  [[nodiscard]] bool needs_top(SDPair sd) const {
    return switch_of(sd.src) != switch_of(sd.dst);
  }

  /// The directed links traversed by a path, in order.
  [[nodiscard]] std::vector<LinkId> links_of(const FtreePath& path) const;

  /// Maximum number of directed links on any path (cross paths use 4).
  static constexpr std::uint32_t kMaxPathLinks = 4;

  /// Allocation-free variant of links_of: writes the path's links into
  /// `out` and returns how many were written (2 for direct, 4 for cross).
  /// This is the verification engine's hot path — every permutation
  /// evaluated routes O(leafs) paths through here.
  std::uint32_t links_into(const FtreePath& path,
                           LinkId (&out)[kMaxPathLinks]) const {
    if (path.direct) {
      out[0] = leaf_up_link(path.sd.src);
      out[1] = leaf_down_link(path.sd.dst);
      return 2;
    }
    out[0] = leaf_up_link(path.sd.src);
    out[1] = up_link(switch_of(path.sd.src), path.top);
    out[2] = down_link(path.top, switch_of(path.sd.dst));
    out[3] = leaf_down_link(path.sd.dst);
    return 4;
  }

  /// Number of SD pairs that must cross a top switch: r*(r-1)*n^2.
  [[nodiscard]] std::uint64_t cross_pair_count() const noexcept {
    const std::uint64_t rr = params_.r;
    const std::uint64_t nn = params_.n;
    return rr * (rr - 1) * nn * nn;
  }

  /// Structural self-check: verifies link-id bijectivity and leaf
  /// round-trips; throws invariant_error on failure.  Intended for tests.
  void validate() const;

 private:
  FtreeParams params_;
};

}  // namespace nbclos
