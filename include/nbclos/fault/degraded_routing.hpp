/// \file degraded_routing.hpp
/// \brief Degraded-mode fallback for the Theorem 3 routing.
///
/// YuanNonblockingRouting sends SD pair ((v, i), (w, j)) through top
/// switch (i, j).  When that top switch — or either of the two links the
/// path needs — is dead, the assignment must fall back.  DegradedYuanRouting
/// keeps the (i, j) assignment whenever it is live (preserving the
/// Theorem 3 nonblocking structure on the healthy part of the fabric) and
/// otherwise scans deterministically from (i, j) for the first usable top
/// switch.  The fallback is still a *local* decision in the paper's
/// distributed-control sense: it uses only the source's local number, the
/// destination address, and link-state liveness that every switch learns
/// from its routing protocol — no global traffic knowledge (the Lemma 3/4
/// class-DIFF constraints concern traffic-aware coordination, which this
/// never does).
///
/// Fallback necessarily sacrifices the strict Lemma 1 single-source /
/// single-destination property on the links it borrows; the FaultSweep
/// (sweep.hpp) measures how many failures the fabric absorbs before that
/// loss first manifests as a blocked permutation.
#pragma once

#include <optional>

#include "nbclos/fault/degraded_view.hpp"
#include "nbclos/routing/single_path.hpp"
#include "nbclos/topology/network.hpp"

namespace nbclos::fault {

/// Liveness queries phrased in ftree coordinates, for Networks produced by
/// build_network() (channel id == LinkId value; vertex numbering per
/// FtreeNetworkMap).  All queries are O(1).
class FtreeLiveness {
 public:
  FtreeLiveness(const FoldedClos& ftree, const DegradedView& view);

  [[nodiscard]] const FoldedClos& ftree() const noexcept { return *ftree_; }
  [[nodiscard]] const DegradedView& view() const noexcept { return *view_; }

  [[nodiscard]] bool top_alive(TopId t) const {
    return view_->vertex_alive(map_.top(t));
  }
  [[nodiscard]] bool bottom_alive(BottomId b) const {
    return view_->vertex_alive(map_.bottom(b));
  }
  [[nodiscard]] bool up_alive(BottomId b, TopId t) const {
    return view_->channel_alive(ftree_->up_link(b, t).value);
  }
  [[nodiscard]] bool down_alive(TopId t, BottomId b) const {
    return view_->channel_alive(ftree_->down_link(t, b).value);
  }
  [[nodiscard]] bool leaf_up_alive(LeafId leaf) const {
    return view_->channel_alive(ftree_->leaf_up_link(leaf).value);
  }
  [[nodiscard]] bool leaf_down_alive(LeafId leaf) const {
    return view_->channel_alive(ftree_->leaf_down_link(leaf).value);
  }
  /// Can cross traffic from bottom switch s to bottom switch d use top t?
  /// (up link, the top switch itself, and the down link must all be live;
  /// channel_alive already folds endpoint liveness in).
  [[nodiscard]] bool top_usable(BottomId s, BottomId d, TopId t) const {
    return up_alive(s, t) && down_alive(t, d);
  }

 private:
  const FoldedClos* ftree_;
  const DegradedView* view_;
  FtreeNetworkMap map_;
};

class DegradedYuanRouting final : public SinglePathRouting {
 public:
  /// \pre ftree.m() >= ftree.n()^2 and view is over build_network(ftree).
  DegradedYuanRouting(const FoldedClos& ftree, const DegradedView& view);

  [[nodiscard]] std::string name() const override { return "yuan-degraded"; }

  /// The top switch this pair would use, or nullopt when no live top can
  /// carry it.  \pre sd is a cross-switch pair.
  [[nodiscard]] std::optional<TopId> try_top_for(SDPair sd) const;

  /// Full route including endpoint-link liveness; nullopt when the pair is
  /// unroutable on the degraded fabric.  \pre sd.src != sd.dst.
  [[nodiscard]] std::optional<FtreePath> try_route(SDPair sd) const;

  /// Whether this pair is currently forced off its Theorem 3 (i, j)
  /// assignment.  \pre sd is a cross-switch pair.
  [[nodiscard]] bool uses_fallback(SDPair sd) const;

  [[nodiscard]] const FtreeLiveness& liveness() const noexcept {
    return liveness_;
  }

 protected:
  /// Like try_top_for but throws precondition_error when unroutable, to
  /// satisfy the SinglePathRouting contract.
  [[nodiscard]] TopId top_for(SDPair sd) const override;

 private:
  [[nodiscard]] TopId primary_top(SDPair sd) const;

  FtreeLiveness liveness_;
};

}  // namespace nbclos::fault
