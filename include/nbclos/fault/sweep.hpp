/// \file sweep.hpp
/// \brief Empirical "nonblocking margin" of ftree(n+n^2, r) under random
///        link failures.
///
/// Theorem 3 makes ftree(n+n^2, r) nonblocking for every permutation; the
/// sweep asks how much of that survives degradation.  Failures are drawn
/// as a growing, seed-fixed sequence of bottom<->top link pairs (nested
/// sets, see FailureModel::shuffled_uplink_pairs), and at each failure
/// count a batch of random permutations is routed with DegradedYuanRouting
/// and audited for contention.  The first failure count at which any
/// permutation blocks (or a pair becomes unroutable) is the fabric's
/// empirical nonblocking margin for that seed.
///
/// Trials are parallelized over util::ThreadPool in a fixed number of
/// chunks with chunk-derived seeds, so results are bit-identical for any
/// thread count — the property the CLI's reproducibility contract rests
/// on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nbclos/routing/table.hpp"
#include "nbclos/sim/engine.hpp"
#include "nbclos/util/thread_pool.hpp"

namespace nbclos::analysis {

struct FaultSweepConfig {
  std::uint32_t n = 4;  ///< ftree(n+n^2, r)
  std::uint32_t r = 8;
  std::uint32_t max_failures = 24;   ///< uplink-pair failures at the last level
  std::uint32_t failure_step = 1;    ///< failure-count increment per level
  std::uint32_t permutations_per_level = 32;
  std::uint64_t seed = 2026;
  std::uint32_t chunks = 16;  ///< fixed parallel split (determinism knob)
  /// Stop after the first level that blocks (margin search) instead of
  /// sweeping every level (degradation curve).
  bool stop_at_first_blocking = false;
};

struct FaultSweepLevel {
  std::uint32_t failures = 0;  ///< failed uplink pairs at this level
  std::uint32_t blocked_permutations = 0;    ///< routed but with contention
  std::uint32_t unroutable_permutations = 0; ///< >= 1 pair had no live path
  std::uint64_t worst_collisions = 0;  ///< max colliding path pairs seen
  std::uint64_t fallback_pairs = 0;    ///< SD pairs forced off (i, j), summed
};

struct FaultSweepResult {
  std::vector<FaultSweepLevel> levels;  ///< failures = 0, step, 2*step, ...
  /// Failure count of the first level where any permutation blocked or
  /// became unroutable; nullopt when the whole sweep stayed clean.
  std::optional<std::uint32_t> first_blocking_failures;
  std::uint32_t permutations_per_level = 0;
};

[[nodiscard]] FaultSweepResult run_fault_sweep(const FaultSweepConfig& config,
                                               ThreadPool& pool);

/// One level of a simulated degraded-throughput sweep.
struct FaultThroughputLevel {
  std::uint32_t failures = 0;  ///< failed bottom<->top uplink pairs
  sim::SimResult sim;
  std::uint64_t reroutes = 0;  ///< fallback decisions by the fault oracle
};

/// Simulated accepted throughput as uplink failures accumulate: for each
/// entry of `levels`, fail that many seed-fixed uplink pairs (nested
/// sets, as in run_fault_sweep), route with the fault-tolerant table
/// oracle (primary assignment from `table`, least-loaded live fallback),
/// and run the packet simulator.  Levels are independent — each owns its
/// DegradedView, oracle, and simulator seeded only by (fault_seed,
/// sim_config.seed) — so they evaluate concurrently over `pool`
/// (nullptr = serial) with results bit-identical at any thread count.
[[nodiscard]] std::vector<FaultThroughputLevel> run_fault_throughput_sweep(
    const FoldedClos& ftree, const Network& net, const RoutingTable& table,
    const sim::TrafficPattern& traffic, const sim::SimConfig& sim_config,
    const std::vector<std::uint32_t>& levels, std::uint64_t fault_seed,
    ThreadPool* pool = nullptr);

}  // namespace nbclos::analysis
