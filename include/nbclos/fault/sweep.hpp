/// \file sweep.hpp
/// \brief Empirical "nonblocking margin" of ftree(n+n^2, r) under random
///        link failures.
///
/// Theorem 3 makes ftree(n+n^2, r) nonblocking for every permutation; the
/// sweep asks how much of that survives degradation.  Failures are drawn
/// as a growing, seed-fixed sequence of bottom<->top link pairs (nested
/// sets, see FailureModel::shuffled_uplink_pairs), and at each failure
/// count a batch of random permutations is routed with DegradedYuanRouting
/// and audited for contention.  The first failure count at which any
/// permutation blocks (or a pair becomes unroutable) is the fabric's
/// empirical nonblocking margin for that seed.
///
/// Trials are parallelized over util::ThreadPool in a fixed number of
/// chunks with chunk-derived seeds, so results are bit-identical for any
/// thread count — the property the CLI's reproducibility contract rests
/// on.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nbclos/util/thread_pool.hpp"

namespace nbclos::analysis {

struct FaultSweepConfig {
  std::uint32_t n = 4;  ///< ftree(n+n^2, r)
  std::uint32_t r = 8;
  std::uint32_t max_failures = 24;   ///< uplink-pair failures at the last level
  std::uint32_t failure_step = 1;    ///< failure-count increment per level
  std::uint32_t permutations_per_level = 32;
  std::uint64_t seed = 2026;
  std::uint32_t chunks = 16;  ///< fixed parallel split (determinism knob)
  /// Stop after the first level that blocks (margin search) instead of
  /// sweeping every level (degradation curve).
  bool stop_at_first_blocking = false;
};

struct FaultSweepLevel {
  std::uint32_t failures = 0;  ///< failed uplink pairs at this level
  std::uint32_t blocked_permutations = 0;    ///< routed but with contention
  std::uint32_t unroutable_permutations = 0; ///< >= 1 pair had no live path
  std::uint64_t worst_collisions = 0;  ///< max colliding path pairs seen
  std::uint64_t fallback_pairs = 0;    ///< SD pairs forced off (i, j), summed
};

struct FaultSweepResult {
  std::vector<FaultSweepLevel> levels;  ///< failures = 0, step, 2*step, ...
  /// Failure count of the first level where any permutation blocked or
  /// became unroutable; nullopt when the whole sweep stayed clean.
  std::optional<std::uint32_t> first_blocking_failures;
  std::uint32_t permutations_per_level = 0;
};

[[nodiscard]] FaultSweepResult run_fault_sweep(const FaultSweepConfig& config,
                                               ThreadPool& pool);

}  // namespace nbclos::analysis
