/// \file degraded_view.hpp
/// \brief O(1) liveness mask over a finalized Network.
///
/// The paper's guarantees (Theorems 1-3) are proven for a pristine ftree;
/// production fabrics run degraded.  A DegradedView layers a mutable
/// failed/alive mask over an immutable Network so that routing oracles and
/// the packet simulator can ask "is this channel usable right now?" in
/// O(1) without rebuilding the graph.  A channel is *usable* when it has
/// not failed itself and both of its endpoint vertices are alive — failing
/// a switch therefore implicitly kills every channel touching it.
///
/// This header is intentionally header-only: the simulator engine consults
/// the view each cycle, and keeping it inline avoids a link-level cycle
/// between the sim library (which applies FaultEvents) and the fault
/// library (whose oracles are built on the sim's RoutingOracle interface).
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/topology/network.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos::fault {

/// Sentinel an oracle may return from next_channel() when no live route
/// exists; the engine counts the packet as dropped.
inline constexpr std::uint32_t kNoRoute = UINT32_MAX;

enum class FaultAction : std::uint8_t {
  kFailChannel,
  kRecoverChannel,
  kFailVertex,
  kRecoverVertex,
};

/// One scheduled liveness transition.  `cycle` is measured from the start
/// of a simulator run (cycle 0 = first warmup cycle); events at cycle 0
/// describe a statically degraded fabric.
struct FaultEvent {
  std::uint64_t cycle = 0;
  FaultAction action = FaultAction::kFailChannel;
  std::uint32_t target = 0;  ///< channel id or vertex id, per action

  friend constexpr bool operator==(const FaultEvent&,
                                   const FaultEvent&) = default;
};

class DegradedView {
 public:
  explicit DegradedView(const Network& net)
      : net_(&net),
        channel_ok_(net.channel_count(), 1),
        vertex_ok_(net.vertex_count(), 1) {
    NBCLOS_REQUIRE(net.finalized(), "degraded view needs a finalized network");
  }

  [[nodiscard]] const Network& network() const noexcept { return *net_; }

  // --- mutation (idempotent: re-failing a failed element is a no-op) ----
  void fail_channel(std::uint32_t c) {
    NBCLOS_REQUIRE(c < channel_ok_.size(), "channel id out of range");
    if (channel_ok_[c] != 0) ++failed_channels_;
    channel_ok_[c] = 0;
  }
  void recover_channel(std::uint32_t c) {
    NBCLOS_REQUIRE(c < channel_ok_.size(), "channel id out of range");
    if (channel_ok_[c] == 0) --failed_channels_;
    channel_ok_[c] = 1;
  }
  void fail_vertex(std::uint32_t v) {
    NBCLOS_REQUIRE(v < vertex_ok_.size(), "vertex id out of range");
    if (vertex_ok_[v] != 0) ++failed_vertices_;
    vertex_ok_[v] = 0;
  }
  void recover_vertex(std::uint32_t v) {
    NBCLOS_REQUIRE(v < vertex_ok_.size(), "vertex id out of range");
    if (vertex_ok_[v] == 0) --failed_vertices_;
    vertex_ok_[v] = 1;
  }
  void apply(const FaultEvent& event) {
    switch (event.action) {
      case FaultAction::kFailChannel: fail_channel(event.target); return;
      case FaultAction::kRecoverChannel: recover_channel(event.target); return;
      case FaultAction::kFailVertex: fail_vertex(event.target); return;
      case FaultAction::kRecoverVertex: recover_vertex(event.target); return;
    }
    NBCLOS_ASSERT(false);
  }
  /// Return to the pristine state (everything alive).
  void reset() {
    channel_ok_.assign(channel_ok_.size(), 1);
    vertex_ok_.assign(vertex_ok_.size(), 1);
    failed_channels_ = 0;
    failed_vertices_ = 0;
  }

  // --- O(1) liveness queries -------------------------------------------
  [[nodiscard]] bool vertex_alive(std::uint32_t v) const {
    NBCLOS_REQUIRE(v < vertex_ok_.size(), "vertex id out of range");
    return vertex_ok_[v] != 0;
  }
  /// The channel itself has been failed (ignores endpoint liveness).
  [[nodiscard]] bool channel_failed(std::uint32_t c) const {
    NBCLOS_REQUIRE(c < channel_ok_.size(), "channel id out of range");
    return channel_ok_[c] == 0;
  }
  /// Usable: not failed and both endpoints alive.
  [[nodiscard]] bool channel_alive(std::uint32_t c) const {
    NBCLOS_REQUIRE(c < channel_ok_.size(), "channel id out of range");
    if (channel_ok_[c] == 0) return false;
    const auto& ch = net_->channel(c);
    return vertex_ok_[ch.src] != 0 && vertex_ok_[ch.dst] != 0;
  }

  [[nodiscard]] std::uint32_t failed_channel_count() const noexcept {
    return failed_channels_;
  }
  [[nodiscard]] std::uint32_t failed_vertex_count() const noexcept {
    return failed_vertices_;
  }
  [[nodiscard]] bool pristine() const noexcept {
    return failed_channels_ == 0 && failed_vertices_ == 0;
  }

  /// Live out-channels of a vertex (O(out-degree); convenience for tests
  /// and connectivity audits, not hot paths).
  [[nodiscard]] std::vector<std::uint32_t> alive_out_channels(
      std::uint32_t v) const {
    std::vector<std::uint32_t> live;
    for (const auto c : net_->out_channels(v)) {
      if (channel_alive(c)) live.push_back(c);
    }
    return live;
  }

 private:
  const Network* net_;
  std::vector<std::uint8_t> channel_ok_;
  std::vector<std::uint8_t> vertex_ok_;
  std::uint32_t failed_channels_ = 0;
  std::uint32_t failed_vertices_ = 0;
};

}  // namespace nbclos::fault
