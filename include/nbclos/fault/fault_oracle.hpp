/// \file fault_oracle.hpp
/// \brief Fault-aware per-hop routing for the packet simulator.
///
/// FaultTolerantOracle is the degraded-operation counterpart of
/// sim::FtreeOracle: at a bottom switch it restricts the uplink choice to
/// top switches that can still reach the destination's bottom switch, then
/// applies the configured UplinkPolicy among the survivors.  Decisions
/// stay local in the paper's distributed-control sense: a switch knows its
/// own link states, and which remote links are dead is exactly the
/// link-state information a routing protocol floods — never traffic state.
/// When no live route exists the oracle returns fault::kNoRoute and the
/// engine counts the packet as dropped.
#pragma once

#include <string>

#include "nbclos/fault/degraded_routing.hpp"
#include "nbclos/fault/degraded_view.hpp"
#include "nbclos/sim/oracle.hpp"

namespace nbclos::fault {

class FaultTolerantOracle final : public sim::RoutingOracle {
 public:
  /// \param table required iff policy == UplinkPolicy::kTable (not owned;
  ///        must outlive).  The table supplies the *primary* assignment;
  ///        when its top switch is unreachable the oracle falls back to
  ///        the least-loaded live alternative.
  FaultTolerantOracle(const FoldedClos& ftree, const DegradedView& view,
                      sim::UplinkPolicy policy,
                      const RoutingTable* table = nullptr,
                      std::uint64_t seed = 7);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t next_channel(const sim::SimView& view,
                                           std::uint32_t vertex,
                                           const sim::Packet& packet) override;

  /// Times a packet found its preferred uplink dead and was steered to an
  /// alternative live top switch.
  [[nodiscard]] std::uint64_t reroute_count() const noexcept {
    return reroutes_;
  }
  /// Times no live route existed and kNoRoute was returned.
  [[nodiscard]] std::uint64_t no_route_count() const noexcept {
    return no_routes_;
  }

 private:
  [[nodiscard]] std::uint32_t pick_uplink(const sim::SimView& view,
                                          BottomId here, SDPair sd);

  FtreeLiveness liveness_;
  FtreeNetworkMap map_;
  sim::UplinkPolicy policy_;
  const RoutingTable* table_;
  Xoshiro256 rng_;
  std::uint64_t reroutes_ = 0;
  std::uint64_t no_routes_ = 0;
  std::vector<std::uint32_t> candidates_;  ///< scratch, avoids realloc
};

}  // namespace nbclos::fault
