/// \file failure_model.hpp
/// \brief Deterministic fault injection: static failure sets and scheduled
///        mid-run failure/recovery events.
///
/// A FailureModel is a recorded *plan* of FaultEvents against one Network.
/// Plans come from three sources:
///   * explicit calls (fail this channel at this cycle);
///   * ftree-coordinate conveniences (fail an uplink pair or a whole top
///     switch), valid for Networks produced by build_network(), whose
///     channel ids equal FoldedClos LinkIds;
///   * seeded random injection, reproducible bit-for-bit from a 64-bit
///     seed.  Random uplink failures for a given (ftree, seed) are drawn
///     as a prefix of one fixed shuffled order, so the failure set at
///     count k+1 is a superset of the set at count k — which is what
///     makes a "how many failures until blocking" margin well defined.
///
/// The plan can be applied wholesale to a DegradedView (static analysis)
/// or handed to PacketSim as a schedule (mid-run degradation).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "nbclos/fault/degraded_view.hpp"
#include "nbclos/topology/network.hpp"

namespace nbclos::fault {

class FailureModel {
 public:
  explicit FailureModel(const Network& net) : net_(&net) {
    NBCLOS_REQUIRE(net.finalized(), "failure model needs a finalized network");
  }

  [[nodiscard]] const Network& network() const noexcept { return *net_; }

  // --- explicit events --------------------------------------------------
  void fail_channel(std::uint32_t channel, std::uint64_t cycle = 0);
  void recover_channel(std::uint32_t channel, std::uint64_t cycle);
  void fail_vertex(std::uint32_t vertex, std::uint64_t cycle = 0);
  void recover_vertex(std::uint32_t vertex, std::uint64_t cycle);

  // --- ftree conveniences (Network from build_network() only) -----------
  /// Fail both directions of the bidirectional link between bottom switch
  /// b and top switch t.
  void fail_uplink_pair(const FoldedClos& ftree, BottomId b, TopId t,
                        std::uint64_t cycle = 0);
  void recover_uplink_pair(const FoldedClos& ftree, BottomId b, TopId t,
                           std::uint64_t cycle);
  /// Fail / recover a whole top switch (its vertex; all r link pairs die
  /// implicitly through endpoint liveness).
  void fail_top_switch(const FoldedClos& ftree, TopId t,
                       std::uint64_t cycle = 0);
  void recover_top_switch(const FoldedClos& ftree, TopId t,
                          std::uint64_t cycle);

  // --- seeded random injection -----------------------------------------
  /// Fail `count` distinct bottom<->top uplink pairs chosen by `seed`
  /// (both directions each).  Nested: a larger count with the same seed
  /// fails a superset of the pairs a smaller count fails.
  void inject_random_uplink_failures(const FoldedClos& ftree,
                                     std::uint32_t count, std::uint64_t seed,
                                     std::uint64_t cycle = 0);
  /// Fail `count` distinct top switches chosen by `seed` (same nesting).
  void inject_random_top_failures(const FoldedClos& ftree, std::uint32_t count,
                                  std::uint64_t seed, std::uint64_t cycle = 0);

  /// The deterministic (bottom, top) order behind
  /// inject_random_uplink_failures — exposed so sweeps can grow failure
  /// sets one link at a time without re-deriving the shuffle.
  [[nodiscard]] static std::vector<std::pair<BottomId, TopId>>
  shuffled_uplink_pairs(const FoldedClos& ftree, std::uint64_t seed);

  // --- consuming the plan ----------------------------------------------
  /// Events in insertion order.
  [[nodiscard]] const std::vector<FaultEvent>& events() const noexcept {
    return events_;
  }
  /// Events stably sorted by cycle — the form PacketSim consumes.
  [[nodiscard]] std::vector<FaultEvent> schedule() const;
  /// Apply every event with event.cycle <= cycle, in schedule order.
  void apply_up_to(DegradedView& view, std::uint64_t cycle) const;
  /// Apply the static (cycle 0) portion of the plan.
  void apply_static(DegradedView& view) const { apply_up_to(view, 0); }

 private:
  void require_ftree_net(const FoldedClos& ftree) const;

  const Network* net_;
  std::vector<FaultEvent> events_;
};

}  // namespace nbclos::fault
