/// \file config.hpp
/// \brief Configuration for the cycle-level flow-control engine.
///
/// flow::FlowSim models what sim::PacketSim abstracts away: *finite*
/// router buffers and the backpressure protocol that keeps them from
/// overflowing.  The configuration picks the three axes real routers
/// differ on:
///   * buffer depth — flits per (output channel, virtual channel) FIFO;
///   * signaling    — credit-based (sender counts free downstream slots)
///     or on/off (receiver asserts a stop signal near the high-water
///     mark, one cycle of signaling delay);
///   * switching    — wormhole (a head flit advances as soon as one
///     downstream slot is free; the packet's flits may span several
///     routers) or virtual cut-through (the head waits until the whole
///     packet fits downstream, so a packet never straddles a stalled
///     boundary).
#pragma once

#include <cstdint>

namespace nbclos::flow {

enum class Switching : std::uint8_t {
  kWormhole,         ///< head needs 1 free downstream slot; worm may span routers
  kVirtualCutThrough ///< head needs packet_flits free slots; packet moves whole
};

enum class Backpressure : std::uint8_t {
  kCredit,  ///< per-buffer credit counters, returns delayed credit_delay cycles
  kOnOff    ///< stop bit asserted at the high-water mark, 1-cycle signal delay
};

struct FlowConfig {
  double injection_rate = 0.1;    ///< offered load, flits/cycle/terminal
  std::uint32_t packet_flits = 4; ///< flits per packet
  /// Capacity of every switch (channel, VC) output FIFO, in flits.
  /// Terminal NIC send queues stay unbounded, exactly as in PacketSim.
  std::uint32_t buffer_flits = 8;
  std::uint32_t vcs = 1;          ///< virtual channels per physical channel
  Switching switching = Switching::kWormhole;
  Backpressure backpressure = Backpressure::kCredit;
  /// Cycles before a freed buffer slot is visible upstream again (credit
  /// mode only; on/off always signals with a 1-cycle delay).
  std::uint32_t credit_delay = 1;
  std::uint64_t warmup_cycles = 2000;
  std::uint64_t measure_cycles = 8000;
  std::uint64_t seed = 42;
  /// Forward-progress check period for the deadlock watchdog: if a whole
  /// epoch passes in which no flit moves while flits are in the system,
  /// the run aborts cleanly with a diagnostic (FlowResult::deadlocked).
  /// 0 disables the watchdog.
  std::uint64_t watchdog_epoch = 1024;
  /// Draw injection randomness from the counter-based discipline
  /// (sim/injection_rng.hpp) instead of the sequential Xoshiro stream:
  /// every (cycle, terminal) draw becomes a pure function of the seed,
  /// which is what lets ShardedFlowSim reproduce FlowSim bit-identically
  /// at any shard count.  Also switches mean latency / mean stall to
  /// exact integer accumulators (order-independent, shard-mergeable).
  /// Off by default — the legacy stream is part of the recorded golden
  /// results.
  bool counter_injection = false;
  /// Pin ShardedFlowSim's workers to CPUs (node-major) so first-touch
  /// arena allocation lands each shard's pages on its worker's NUMA
  /// node.  No effect on the serial engine; failures are never fatal.
  bool pin_shards = false;
  /// Arm the obs::FlightRecorder: sample engine-level time series
  /// (buffer occupancy, stall counters, blocked heads) every
  /// record_cadence cycles into fixed-budget rings.  Off by default and
  /// a no-op when the library is built with -DNBCLOS_OBS=OFF.  The
  /// kInvariant series merge bit-identically at any shard count (same
  /// contract as the FlowResult itself).
  bool record_timeseries = false;
  std::uint64_t record_cadence = 64;      ///< cycles between samples
  std::uint32_t record_ring_capacity = 512;  ///< samples kept per series

  /// Buffer depth at which no switch FIFO can fill in the ideal-switch
  /// golden regime (see ideal_reference()); mirrors
  /// sim::SimConfig::kEffectivelyInfiniteQueueCapacity, measured in flits
  /// rather than packets because flow buffers hold flits.
  static constexpr std::uint32_t kEffectivelyInfiniteBufferFlits = 1024;

  /// The documented single-flit / effectively-infinite-buffer reference
  /// configuration: with it, wormhole == VCT == store-and-forward and no
  /// backpressure ever engages, so FlowSim must reproduce
  /// sim::SimConfig::ideal_reference() PacketSim results bit-identically
  /// on contention-free (nonblocking) routings.  Keep the two factories
  /// in sync — the cross-engine golden tests rely on both.
  [[nodiscard]] static FlowConfig ideal_reference(double injection_rate,
                                                  std::uint64_t seed) {
    FlowConfig config;
    config.injection_rate = injection_rate;
    config.packet_flits = 1;
    config.buffer_flits = kEffectivelyInfiniteBufferFlits;
    config.vcs = 1;
    config.switching = Switching::kWormhole;
    config.backpressure = Backpressure::kCredit;
    config.seed = seed;
    return config;
  }

  /// True when this configuration is in the ideal-switch regime the
  /// golden equivalence tests rely on.
  [[nodiscard]] bool ideal_switch_regime() const noexcept {
    return packet_flits == 1 && vcs == 1 &&
           buffer_flits >= kEffectivelyInfiniteBufferFlits;
  }

  /// Free downstream slots a head flit must see before it may start
  /// transmitting (the switching-mode reservation).
  [[nodiscard]] std::uint32_t head_reservation_flits() const noexcept {
    return switching == Switching::kVirtualCutThrough ? packet_flits : 1u;
  }

  /// On/off high-water mark: the receiver asserts "off" once occupancy
  /// reaches buffer_flits - head_reservation_flits().  The reservation
  /// plus the 1-cycle signaling delay bound occupancy at buffer_flits
  /// (see DESIGN.md "flow-control engine" for the overshoot argument).
  [[nodiscard]] std::uint32_t onoff_off_threshold() const noexcept {
    return buffer_flits - head_reservation_flits();
  }
};

}  // namespace nbclos::flow
