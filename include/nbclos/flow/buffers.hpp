/// \file buffers.hpp
/// \brief Flit storage for the flow-control engine: a flat pool of
///        per-(channel, VC) FIFOs plus the slab of live packets the
///        flits point into.
///
/// Layout follows the PR 2 queue-pool idiom from sim::PacketSim: every
/// finite switch buffer is a fixed slice of one contiguous allocation
/// (slice = capacity rounded up to a power of two, so ring wrap-around
/// is a mask), while unbounded terminal NIC buffers are growable
/// power-of-two rings.  A flit is 8 bytes — (packet slot, flit index) —
/// so even deep-buffer sweeps stay cache-compact.
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/sim/packet.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos::flow {

/// One flit in a buffer or on a wire: the packet it belongs to (a slot
/// in the PacketPool) and its position within that packet.  Index 0 is
/// the head flit (carries the route), size_flits - 1 the tail (releases
/// the downstream VC claim).
struct FlitRef {
  std::uint32_t packet_slot = 0;
  std::uint32_t flit_index = 0;
};

/// Slab of live packets, indexed by slot.  Flits reference their packet
/// through a slot id instead of carrying 40-byte descriptors, and a slot
/// is recycled the cycle its tail flit is ejected.
class PacketPool {
 public:
  [[nodiscard]] std::uint32_t acquire(const sim::Packet& packet) {
    if (free_.empty()) {
      packets_.push_back(packet);
      return static_cast<std::uint32_t>(packets_.size() - 1);
    }
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    packets_[slot] = packet;
    return slot;
  }

  void release(std::uint32_t slot) {
    NBCLOS_DEBUG_CHECK(slot < packets_.size(), "packet slot out of range");
    free_.push_back(slot);
  }

  [[nodiscard]] const sim::Packet& at(std::uint32_t slot) const {
    NBCLOS_DEBUG_CHECK(slot < packets_.size(), "packet slot out of range");
    return packets_[slot];
  }

  [[nodiscard]] std::size_t live() const noexcept {
    return packets_.size() - free_.size();
  }
  /// High-water slot count — how many packets were ever simultaneously
  /// live (the slab never shrinks).
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return packets_.size();
  }

 private:
  std::vector<sim::Packet> packets_;
  std::vector<std::uint32_t> free_;
};

/// All flit FIFOs of one FlowSim, addressed by dense buffer id: ids
/// [0, switch_buffers) are finite switch FIFOs (capacity_flits each),
/// ids [switch_buffers, switch_buffers + nic_buffers) are unbounded
/// terminal NIC send queues.  The flow-control protocol — not this
/// container — keeps switch occupancy within capacity; push asserts it.
class FlitBufferPool {
 public:
  FlitBufferPool(std::uint32_t switch_buffers, std::uint32_t nic_buffers,
                 std::uint32_t capacity_flits);

  void push(std::uint32_t b, FlitRef flit) {
    if (b < switch_count_) {
      NBCLOS_ASSERT(size_[b] < capacity_);  // flow-control protocol bound
      switch_pool_[std::size_t{b} * slice_ +
                   ((head_[b] + size_[b]) & slice_mask_)] = flit;
      ++switch_flits_total_;
      if (++size_[b] > peak_switch_flits_) peak_switch_flits_ = size_[b];
      return;
    }
    auto& ring = nic_rings_[b - switch_count_];
    if (size_[b] == ring.size()) {
      // Full (or first use): double and relinearize so head lands at 0.
      std::vector<FlitRef> bigger(ring.empty() ? kNicRingInitialCapacity
                                               : ring.size() * 2);
      for (std::uint32_t i = 0; i < size_[b]; ++i) {
        bigger[i] = ring[(head_[b] + i) & (ring.size() - 1)];
      }
      ring = std::move(bigger);
      head_[b] = 0;
    }
    ring[(head_[b] + size_[b]) & (ring.size() - 1)] = flit;
    ++size_[b];
  }

  FlitRef pop(std::uint32_t b) {
    NBCLOS_ASSERT(size_[b] > 0);
    FlitRef flit;
    if (b < switch_count_) {
      flit = switch_pool_[std::size_t{b} * slice_ + head_[b]];
      head_[b] = (head_[b] + 1) & slice_mask_;
      --switch_flits_total_;
    } else {
      const auto& ring = nic_rings_[b - switch_count_];
      flit = ring[head_[b]];
      head_[b] = (head_[b] + 1) &
                 (static_cast<std::uint32_t>(ring.size()) - 1);
    }
    --size_[b];
    return flit;
  }

  [[nodiscard]] FlitRef front(std::uint32_t b) const {
    NBCLOS_ASSERT(size_[b] > 0);
    if (b < switch_count_) {
      return switch_pool_[std::size_t{b} * slice_ + head_[b]];
    }
    return nic_rings_[b - switch_count_][head_[b]];
  }

  [[nodiscard]] std::uint32_t size(std::uint32_t b) const {
    NBCLOS_DEBUG_CHECK(b < size_.size(), "buffer id out of range");
    return size_[b];
  }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t switch_buffer_count() const noexcept {
    return switch_count_;
  }
  [[nodiscard]] std::uint32_t buffer_count() const noexcept {
    return static_cast<std::uint32_t>(size_.size());
  }
  /// Flits currently held across all switch buffers (maintained
  /// incrementally — feeds the per-cycle queue-depth sample).
  [[nodiscard]] std::uint64_t switch_flits_total() const noexcept {
    return switch_flits_total_;
  }
  /// High-water occupancy of any single switch buffer over the run.
  [[nodiscard]] std::uint32_t peak_switch_flits() const noexcept {
    return peak_switch_flits_;
  }
  /// Resident bytes of the flat arrays (reported as an obs gauge).
  [[nodiscard]] std::size_t bytes() const noexcept;

 private:
  static constexpr std::uint32_t kNicRingInitialCapacity = 16;

  std::uint32_t switch_count_ = 0;
  std::uint32_t capacity_ = 0;
  std::uint32_t slice_ = 0;       ///< bit_ceil(capacity)
  std::uint32_t slice_mask_ = 0;  ///< slice - 1
  std::vector<FlitRef> switch_pool_;
  std::vector<std::vector<FlitRef>> nic_rings_;
  std::vector<std::uint32_t> head_;  ///< per buffer, switch then NIC
  std::vector<std::uint32_t> size_;
  std::uint64_t switch_flits_total_ = 0;
  std::uint32_t peak_switch_flits_ = 0;
};

}  // namespace nbclos::flow
