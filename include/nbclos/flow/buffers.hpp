/// \file buffers.hpp
/// \brief Flit storage for the flow-control engine: a lazily-allocated
///        slab of per-(channel, VC) FIFO slots plus the slab of live
///        packets the flits point into.
///
/// PR 2's queue-pool idiom preallocated one ring slice per buffer for
/// *all* buffers, which is exactly what cannot exist at 10^6 terminals:
/// a 10-ary 6-tree has ~1.1e7 switch FIFOs of which only the live flit
/// front ever holds data.  The pool is therefore slot-sparse: a buffer
/// owns no storage until its first flit (or credit/claim/stop-bit
/// event) arrives, at which point it is bound to a `BufferSlot` from a
/// recycling slab.  The slot carries the ring cursor *and* every
/// per-buffer side field the engines used to keep in dense arrays
/// (out-allocation, VC claim, blocked-since, credit counters, on/off
/// bits), so the only dense residue is the 4-byte id→slot map.  A slot
/// whose fields are all back at their defaults is recycled by
/// `maybe_release`, so steady-state residency tracks the live flit
/// front, not the fabric size.
///
/// Ring layout per slot follows the old scheme (slice = capacity
/// rounded up to a power of two, wrap-around is a mask), but the slab
/// and the slot records live in `FlatStore`s, so setting
/// `NBCLOS_MMAP_CACHE` spills them to an unlinked temp file instead of
/// OOMing (see util/mmap_arena.hpp).  Unbounded terminal NIC buffers
/// keep growable power-of-two rings on the side, lazily allocated the
/// same way.
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/sim/packet.hpp"
#include "nbclos/util/check.hpp"
#include "nbclos/util/mmap_arena.hpp"

namespace nbclos::flow {

/// One flit in a buffer or on a wire: the packet it belongs to (a slot
/// in the PacketPool) and its position within that packet.  Index 0 is
/// the head flit (carries the route), size_flits - 1 the tail (releases
/// the downstream VC claim).
struct FlitRef {
  std::uint32_t packet_slot = 0;
  std::uint32_t flit_index = 0;
};

/// Sentinel buffer id: "no buffer" (matches the engines' kNone).  The
/// sharded engine additionally stores its kClaimPending placeholder
/// (kNoBuffer - 1) in the claim field; the pool only cares that both
/// differ from kNoBuffer, the releasable default.
inline constexpr std::uint32_t kNoBuffer = 0xFFFFFFFFu;

/// Sentinel for "buffer has never blocked" in blocked-since queries.
inline constexpr std::uint64_t kNeverBlocked = 0xFFFFFFFFFFFFFFFFull;

/// Arena accounting the engines surface to benches and the CLI manifest
/// (summed over shards for ShardedFlowSim).
struct ArenaStats {
  std::size_t flit_arena_bytes = 0;    ///< FlitBufferPool::bytes()
  std::size_t packet_arena_bytes = 0;  ///< PacketPool::bytes()
  std::uint64_t resident_slots = 0;    ///< buffers currently bound to a slot
  std::uint64_t peak_slots = 0;        ///< high-water resident slots
  std::size_t spill_bytes = 0;         ///< bytes in NBCLOS_MMAP_CACHE files
};

/// Slab of live packets, indexed by slot.  Flits reference their packet
/// through a slot id instead of carrying 40-byte descriptors, and a slot
/// is recycled the cycle its tail flit is ejected.  Backed by a
/// FlatStore so packet descriptors spill with the flit arenas under
/// NBCLOS_MMAP_CACHE.
class PacketPool {
 public:
  PacketPool() : packets_(FlatStore<sim::Packet>::from_env()) {}

  [[nodiscard]] std::uint32_t acquire(const sim::Packet& packet) {
    if (free_.empty()) {
      packets_.push_back(packet);
      if constexpr (kDebugChecksEnabled) {
        freed_.push_back(0);
      }
      return static_cast<std::uint32_t>(packets_.size() - 1);
    }
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    packets_[slot] = packet;
    if constexpr (kDebugChecksEnabled) {
      freed_[slot] = 0;
    }
    return slot;
  }

  void release(std::uint32_t slot) {
    NBCLOS_DEBUG_CHECK(slot < packets_.size(), "packet slot out of range");
    if constexpr (kDebugChecksEnabled) {
      NBCLOS_DEBUG_CHECK(freed_[slot] == 0, "packet slot double-released");
      freed_[slot] = 1;
      // Poison the stale descriptor so a use-after-release reads an
      // obviously-wrong packet instead of yesterday's.
      sim::Packet poison;
      poison.id = 0xDEADDEADDEADDEADull;
      poison.src_terminal = kNoBuffer;
      poison.dst_terminal = kNoBuffer;
      poison.size_flits = 0;
      poison.injected_cycle = 0xDEADDEADDEADDEADull;
      poison.flow_sequence = 0xDEADDEADDEADDEADull;
      packets_[slot] = poison;
    }
    free_.push_back(slot);
  }

  [[nodiscard]] const sim::Packet& at(std::uint32_t slot) const {
    NBCLOS_DEBUG_CHECK(slot < packets_.size(), "packet slot out of range");
    if constexpr (kDebugChecksEnabled) {
      NBCLOS_DEBUG_CHECK(freed_[slot] == 0, "packet slot used after release");
    }
    return packets_[slot];
  }

  [[nodiscard]] std::size_t live() const noexcept {
    return packets_.size() - free_.size();
  }
  /// High-water slot count — how many packets were ever simultaneously
  /// live (the slab never shrinks).
  [[nodiscard]] std::size_t slot_count() const noexcept {
    return packets_.size();
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return packets_.bytes() + free_.capacity() * sizeof(std::uint32_t) +
           freed_.capacity();
  }
  [[nodiscard]] std::size_t spill_bytes() const noexcept {
    return packets_.spill_bytes();
  }

 private:
  FlatStore<sim::Packet> packets_;
  std::vector<std::uint32_t> free_;
  /// Double-release detector; only maintained when debug checks compile.
  std::vector<std::uint8_t> freed_;
};

/// All flit FIFOs of one FlowSim, addressed by dense buffer id: ids
/// [0, switch_buffers) are finite switch FIFOs (capacity_flits each),
/// ids [switch_buffers, switch_buffers + nic_buffers) are unbounded
/// terminal NIC send queues.  The flow-control protocol — not this
/// container — keeps switch occupancy within capacity; push asserts it.
///
/// Storage is slot-sparse (see the file comment).  Engines touch state
/// through accessors keyed by buffer id; any write of a non-default
/// value lazily binds the buffer to a slot, and engines call
/// `maybe_release` at transaction boundaries to recycle drained slots.
class FlitBufferPool {
 public:
  /// Per-live-buffer record.  All defaults together mean "releasable":
  /// empty, unallocated, unclaimed, never/no-longer blocked, full
  /// credits, nothing pending, stop bit clear, not queued dirty.
  struct BufferSlot {
    std::uint32_t buffer = 0;  ///< owning buffer id (back-pointer)
    std::uint32_t head = 0;
    std::uint32_t size = 0;
    std::uint32_t out_alloc = kNoBuffer;
    std::uint32_t claim = kNoBuffer;
    std::uint32_t credits_used = 0;
    std::uint32_t pending_returns = 0;
    /// Cycle the buffer became blocked, plus one; 0 = not blocked.
    std::uint64_t blocked_since_plus1 = 0;
    std::uint8_t off = 0;
    std::uint8_t in_dirty = 0;
  };

  FlitBufferPool(std::uint32_t switch_buffers, std::uint32_t nic_buffers,
                 std::uint32_t capacity_flits);

  // --- FIFO operations -------------------------------------------------

  void push(std::uint32_t b, FlitRef flit) {
    BufferSlot& sl = slots_[ensure_slot(b)];
    if (b < switch_count_) {
      NBCLOS_ASSERT(sl.size < capacity_);  // flow-control protocol bound
      ring_slab_[std::size_t{slot_of_[b]} * slice_ +
                 ((sl.head + sl.size) & slice_mask_)] = flit;
      ++switch_flits_total_;
      if (++sl.size > peak_switch_flits_) peak_switch_flits_ = sl.size;
      return;
    }
    auto& ring = nic_rings_[b - switch_count_];
    if (sl.size == ring.size()) {
      // Full (or first use): double and relinearize so head lands at 0.
      std::vector<FlitRef> bigger(ring.empty() ? kNicRingInitialCapacity
                                               : ring.size() * 2);
      for (std::uint32_t i = 0; i < sl.size; ++i) {
        bigger[i] = ring[(sl.head + i) & (ring.size() - 1)];
      }
      ring = std::move(bigger);
      sl.head = 0;
    }
    ring[(sl.head + sl.size) & (ring.size() - 1)] = flit;
    ++sl.size;
  }

  FlitRef pop(std::uint32_t b) {
    const std::uint32_t s = slot_of_[b];
    NBCLOS_ASSERT(s != kNoSlot);
    BufferSlot& sl = slots_[s];
    NBCLOS_ASSERT(sl.size > 0);
    FlitRef flit;
    if (b < switch_count_) {
      flit = ring_slab_[std::size_t{s} * slice_ + sl.head];
      sl.head = (sl.head + 1) & slice_mask_;
      --switch_flits_total_;
    } else {
      const auto& ring = nic_rings_[b - switch_count_];
      flit = ring[sl.head];
      sl.head = (sl.head + 1) & (static_cast<std::uint32_t>(ring.size()) - 1);
    }
    --sl.size;
    return flit;
  }

  [[nodiscard]] FlitRef front(std::uint32_t b) const {
    const std::uint32_t s = slot_of_[b];
    NBCLOS_ASSERT(s != kNoSlot);
    const BufferSlot& sl = slots_[s];
    NBCLOS_ASSERT(sl.size > 0);
    if (b < switch_count_) {
      return ring_slab_[std::size_t{s} * slice_ + sl.head];
    }
    return nic_rings_[b - switch_count_][sl.head];
  }

  [[nodiscard]] std::uint32_t size(std::uint32_t b) const {
    NBCLOS_DEBUG_CHECK(b < slot_of_.size(), "buffer id out of range");
    const std::uint32_t s = slot_of_[b];
    return s == kNoSlot ? 0 : slots_[s].size;
  }

  // --- per-buffer side state (engine-owned semantics) ------------------

  [[nodiscard]] std::uint32_t out_alloc(std::uint32_t b) const {
    const std::uint32_t s = slot_of_[b];
    return s == kNoSlot ? kNoBuffer : slots_[s].out_alloc;
  }
  void set_out_alloc(std::uint32_t b, std::uint32_t value) {
    if (value == kNoBuffer && slot_of_[b] == kNoSlot) return;
    slots_[ensure_slot(b)].out_alloc = value;
  }

  [[nodiscard]] std::uint32_t claim(std::uint32_t b) const {
    const std::uint32_t s = slot_of_[b];
    return s == kNoSlot ? kNoBuffer : slots_[s].claim;
  }
  void set_claim(std::uint32_t b, std::uint32_t value) {
    if (value == kNoBuffer && slot_of_[b] == kNoSlot) return;
    slots_[ensure_slot(b)].claim = value;
  }

  [[nodiscard]] std::uint64_t blocked_since(std::uint32_t b) const {
    const std::uint32_t s = slot_of_[b];
    if (s == kNoSlot || slots_[s].blocked_since_plus1 == 0) {
      return kNeverBlocked;
    }
    return slots_[s].blocked_since_plus1 - 1;
  }
  void set_blocked_since(std::uint32_t b, std::uint64_t cycle) {
    slots_[ensure_slot(b)].blocked_since_plus1 = cycle + 1;
  }
  void clear_blocked_since(std::uint32_t b) {
    const std::uint32_t s = slot_of_[b];
    if (s != kNoSlot) slots_[s].blocked_since_plus1 = 0;
  }

  // --- credit counters (driven by CreditLedger) ------------------------

  [[nodiscard]] std::uint32_t credits(std::uint32_t b) const {
    const std::uint32_t s = slot_of_[b];
    return capacity_ - (s == kNoSlot ? 0 : slots_[s].credits_used);
  }
  void consume_credit(std::uint32_t b) {
    BufferSlot& sl = slots_[ensure_slot(b)];
    NBCLOS_ASSERT(sl.credits_used < capacity_);
    ++sl.credits_used;
  }
  void note_pending_return(std::uint32_t b) {
    ++slots_[ensure_slot(b)].pending_returns;
  }
  void apply_credit_return(std::uint32_t b) {
    const std::uint32_t s = slot_of_[b];
    NBCLOS_ASSERT(s != kNoSlot);  // pending_returns pins the slot
    BufferSlot& sl = slots_[s];
    NBCLOS_ASSERT(sl.credits_used > 0);
    NBCLOS_ASSERT(sl.pending_returns > 0);
    --sl.credits_used;
    --sl.pending_returns;
    maybe_release(b);
  }
  [[nodiscard]] std::uint64_t pending_returns(std::uint32_t b) const {
    const std::uint32_t s = slot_of_[b];
    return s == kNoSlot ? 0 : slots_[s].pending_returns;
  }

  // --- on/off stop bits (driven by OnOffSignal) ------------------------

  [[nodiscard]] bool off_bit(std::uint32_t b) const {
    const std::uint32_t s = slot_of_[b];
    return s != kNoSlot && slots_[s].off != 0;
  }
  /// Returns true when the buffer was not already queued dirty.
  [[nodiscard]] bool test_and_set_dirty(std::uint32_t b) {
    BufferSlot& sl = slots_[ensure_slot(b)];
    if (sl.in_dirty != 0) return false;
    sl.in_dirty = 1;
    return true;
  }
  /// Latch the stop bit from current occupancy, clear the dirty flag,
  /// and recycle the slot if that left it fully default.
  void latch_off_bit(std::uint32_t b, std::uint32_t threshold) {
    const std::uint32_t s = slot_of_[b];
    NBCLOS_ASSERT(s != kNoSlot);  // in_dirty pins the slot
    BufferSlot& sl = slots_[s];
    sl.off = sl.size >= threshold ? 1 : 0;
    sl.in_dirty = 0;
    maybe_release(b);
  }

  // --- slot lifecycle --------------------------------------------------

  /// Recycle `b`'s slot if every field is back at its default.  Safe to
  /// call on buffers without a slot.  Engines call this at transaction
  /// boundaries (after a pop completes its credit/claim bookkeeping);
  /// a missed call costs memory, never correctness.
  void maybe_release(std::uint32_t b) {
    const std::uint32_t s = slot_of_[b];
    if (s == kNoSlot) return;
    const BufferSlot& sl = slots_[s];
    if (sl.size != 0 || sl.out_alloc != kNoBuffer || sl.claim != kNoBuffer ||
        sl.credits_used != 0 || sl.pending_returns != 0 ||
        sl.blocked_since_plus1 != 0 || sl.off != 0 || sl.in_dirty != 0) {
      return;
    }
    slot_of_[b] = kNoSlot;
    free_slots_.push_back(s);
    --resident_slots_;
  }

  [[nodiscard]] bool has_slot(std::uint32_t b) const {
    return slot_of_[b] != kNoSlot;
  }

  /// Visit every live buffer as fn(buffer_id, slot_id, slot) — ascending
  /// slot id, i.e. allocation order, NOT buffer-id order; callers
  /// needing determinism must sort the ids they collect.  Cost is
  /// O(slots ever allocated), which tracks the high-water live set, not
  /// the fabric size.
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (std::uint32_t s = 0; s < slots_.size(); ++s) {
      const BufferSlot& sl = slots_[s];
      if (slot_of_[sl.buffer] == s) fn(sl.buffer, s, sl);
    }
  }

  /// Slot id bound to `b`, or kNoSlot.  Audit paths use this to index
  /// slot-sized scratch arrays.
  [[nodiscard]] std::uint32_t slot_id(std::uint32_t b) const {
    return slot_of_[b];
  }
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  // --- capacities & stats ----------------------------------------------

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t switch_buffer_count() const noexcept {
    return switch_count_;
  }
  [[nodiscard]] std::uint32_t buffer_count() const noexcept {
    return static_cast<std::uint32_t>(slot_of_.size());
  }
  /// Flits currently held across all switch buffers (maintained
  /// incrementally — feeds the per-cycle queue-depth sample).
  [[nodiscard]] std::uint64_t switch_flits_total() const noexcept {
    return switch_flits_total_;
  }
  /// High-water occupancy of any single switch buffer over the run.
  [[nodiscard]] std::uint32_t peak_switch_flits() const noexcept {
    return peak_switch_flits_;
  }
  /// Buffers currently bound to a slot.
  [[nodiscard]] std::uint32_t resident_slots() const noexcept {
    return resident_slots_;
  }
  /// High-water resident slot count (== slots ever allocated, since the
  /// slab recycles before growing).
  [[nodiscard]] std::uint32_t peak_slots() const noexcept {
    return static_cast<std::uint32_t>(slots_.size());
  }
  /// Resident bytes of the arrays (reported as an obs gauge).
  [[nodiscard]] std::size_t bytes() const noexcept;
  /// Bytes living in NBCLOS_MMAP_CACHE-backed files rather than heap.
  [[nodiscard]] std::size_t spill_bytes() const noexcept {
    return slot_of_.spill_bytes() + slots_.spill_bytes() +
           ring_slab_.spill_bytes();
  }

 private:
  static constexpr std::uint32_t kNicRingInitialCapacity = 16;

  /// Slot bound to `b`, binding a recycled or fresh one on first touch.
  std::uint32_t ensure_slot(std::uint32_t b) {
    std::uint32_t s = slot_of_[b];
    if (s != kNoSlot) return s;
    if (!free_slots_.empty()) {
      s = free_slots_.back();
      free_slots_.pop_back();
      slots_[s] = BufferSlot{};
    } else {
      s = static_cast<std::uint32_t>(slots_.size());
      slots_.push_back(BufferSlot{});
      ring_slab_.resize(slots_.size() * slice_);
    }
    slots_[s].buffer = b;
    slot_of_[b] = s;
    ++resident_slots_;
    return s;
  }

  std::uint32_t switch_count_ = 0;
  std::uint32_t capacity_ = 0;
  std::uint32_t slice_ = 0;       ///< bit_ceil(capacity)
  std::uint32_t slice_mask_ = 0;  ///< slice - 1
  std::uint32_t resident_slots_ = 0;
  /// Dense id→slot map — the only O(buffer_count) array left.
  FlatStore<std::uint32_t> slot_of_;
  FlatStore<BufferSlot> slots_;
  /// Ring storage, slice_ entries per slot (switch slots use theirs;
  /// NIC slots leave them idle and use nic_rings_).
  FlatStore<FlitRef> ring_slab_;
  std::vector<std::uint32_t> free_slots_;
  /// Growable per-NIC rings, lazily sized on first push and retained
  /// across slot recycling.
  std::vector<std::vector<FlitRef>> nic_rings_;
  std::uint64_t switch_flits_total_ = 0;
  std::uint32_t peak_switch_flits_ = 0;
};

}  // namespace nbclos::flow
