/// \file credits.hpp
/// \brief Backpressure signaling state: per-buffer credit counters with
///        delayed returns, and the on/off stop-bit alternative.
///
/// Credit mode is conservative by construction: a credit is consumed the
/// cycle a flit starts toward a buffer and returned `delay` cycles after
/// a flit leaves it, so
///
///   credits(b) + occupancy(b) + flits_in_flight_to(b)
///              + pending_returns(b) == capacity
///
/// holds at every cycle boundary (the conservation invariant the flow
/// tests audit) and occupancy can never exceed capacity for any delay.
///
/// On/off mode models a stop bit latched at the end of each cycle and
/// read by senders the next cycle (1-cycle signaling delay).  The stop
/// threshold leaves `head_reservation` slots of slack, which together
/// with the single-writer-per-buffer rule (VC claims) bounds occupancy
/// at capacity — see DESIGN.md "flow-control engine" for the overshoot
/// accounting.
///
/// Since the slot-sparse pool rewrite, both classes are protocol layers
/// over the FlitBufferPool they are constructed against: the per-buffer
/// counters/bits live in the pool's BufferSlot records (so idle buffers
/// cost nothing), while these classes keep only the temporal structure —
/// the credit delay line and the dirty list.  Buffer ids are
/// switch-buffer ids (< pool.switch_buffer_count()); NIC buffers are
/// unbounded and never tracked.
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/flow/buffers.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos::flow {

/// Credit counters for every switch buffer, plus the delay line that
/// models the upstream credit wire.  The pool reference must outlive
/// the ledger.
class CreditLedger {
 public:
  /// \param delay cycles between a downstream pop and the credit being
  ///        visible upstream again; must be >= 1 (a same-cycle return
  ///        would make transmissions order-dependent within the phase).
  CreditLedger(FlitBufferPool& pool, std::uint32_t delay);

  /// Apply the credit returns due this cycle.  Call once at the start of
  /// every cycle, before transmissions read the counters.
  void advance(std::uint64_t now);

  [[nodiscard]] std::uint32_t credits(std::uint32_t b) const {
    return pool_->credits(b);
  }

  /// A flit started toward buffer `b` this cycle.
  void consume(std::uint32_t b) { pool_->consume_credit(b); }

  /// A flit left buffer `b` this cycle; its credit becomes visible at
  /// now + delay.
  void schedule_return(std::uint32_t b, std::uint64_t now) {
    pool_->note_pending_return(b);
    delay_line_[(now + delay_) % delay_line_.size()].push_back(b);
  }

  /// Returns scheduled but not yet applied for `b` (O(1) — the slot
  /// carries the counter).
  [[nodiscard]] std::uint64_t pending_returns(std::uint32_t b) const {
    return pool_->pending_returns(b);
  }

  [[nodiscard]] std::uint32_t capacity() const noexcept {
    return pool_->capacity();
  }

 private:
  FlitBufferPool* pool_;
  std::uint32_t delay_ = 1;
  /// delay + 1 buckets of buffer ids, indexed by cycle mod size; a
  /// bucket is drained by advance() before the cycle that refills it.
  std::vector<std::vector<std::uint32_t>> delay_line_;
};

/// On/off stop bits for every switch buffer.  Senders read off() during
/// the cycle; occupancy changes mark buffers dirty, and latch() recomputes
/// the dirty bits at the end of the cycle — so a bit read at cycle t
/// always reflects occupancy at the end of cycle t-1.
class OnOffSignal {
 public:
  /// \param off_threshold occupancy at which the stop bit asserts
  ///        (FlowConfig::onoff_off_threshold()); must be >= 1 so an
  ///        empty buffer always reads "on".
  OnOffSignal(FlitBufferPool& pool, std::uint32_t off_threshold);

  [[nodiscard]] bool off(std::uint32_t b) const { return pool_->off_bit(b); }

  /// Occupancy of `b` changed this cycle; recompute its bit at latch().
  void mark_dirty(std::uint32_t b) {
    if (pool_->test_and_set_dirty(b)) dirty_.push_back(b);
  }

  /// End-of-cycle: latch the stop bits of dirty buffers from current
  /// occupancy.  Cost is O(buffers touched this cycle), not O(all).
  void latch();

 private:
  FlitBufferPool* pool_;
  std::uint32_t threshold_ = 0;
  std::vector<std::uint32_t> dirty_;
};

}  // namespace nbclos::flow
