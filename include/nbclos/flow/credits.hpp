/// \file credits.hpp
/// \brief Backpressure signaling state: per-buffer credit counters with
///        delayed returns, and the on/off stop-bit alternative.
///
/// Credit mode is conservative by construction: a credit is consumed the
/// cycle a flit starts toward a buffer and returned `delay` cycles after
/// a flit leaves it, so
///
///   credits(b) + occupancy(b) + flits_in_flight_to(b)
///              + pending_returns(b) == capacity
///
/// holds at every cycle boundary (the conservation invariant the flow
/// tests audit) and occupancy can never exceed capacity for any delay.
///
/// On/off mode models a stop bit latched at the end of each cycle and
/// read by senders the next cycle (1-cycle signaling delay).  The stop
/// threshold leaves `head_reservation` slots of slack, which together
/// with the single-writer-per-buffer rule (VC claims) bounds occupancy
/// at capacity — see DESIGN.md "flow-control engine" for the overshoot
/// accounting.
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/flow/buffers.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos::flow {

/// Credit counters for every switch buffer, plus the delay line that
/// models the upstream credit wire.  All ids are switch-buffer ids
/// (< FlitBufferPool::switch_buffer_count()); NIC buffers are unbounded
/// and never tracked.
class CreditLedger {
 public:
  /// \param delay cycles between a downstream pop and the credit being
  ///        visible upstream again; must be >= 1 (a same-cycle return
  ///        would make transmissions order-dependent within the phase).
  CreditLedger(std::uint32_t switch_buffers, std::uint32_t capacity,
               std::uint32_t delay);

  /// Apply the credit returns due this cycle.  Call once at the start of
  /// every cycle, before transmissions read the counters.
  void advance(std::uint64_t now);

  [[nodiscard]] std::uint32_t credits(std::uint32_t b) const {
    NBCLOS_DEBUG_CHECK(b < credits_.size(), "buffer id out of range");
    return credits_[b];
  }

  /// A flit started toward buffer `b` this cycle.
  void consume(std::uint32_t b) {
    NBCLOS_ASSERT(credits_[b] > 0);
    --credits_[b];
  }

  /// A flit left buffer `b` this cycle; its credit becomes visible at
  /// now + delay.
  void schedule_return(std::uint32_t b, std::uint64_t now) {
    delay_line_[(now + delay_) % delay_line_.size()].push_back(b);
  }

  /// Returns scheduled but not yet applied for `b` (audit path, O(delay
  /// line); the hot path never calls this).
  [[nodiscard]] std::uint64_t pending_returns(std::uint32_t b) const;

  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

 private:
  std::uint32_t capacity_ = 0;
  std::uint32_t delay_ = 1;
  std::vector<std::uint32_t> credits_;
  /// delay + 1 buckets of buffer ids, indexed by cycle mod size; a
  /// bucket is drained by advance() before the cycle that refills it.
  std::vector<std::vector<std::uint32_t>> delay_line_;
};

/// On/off stop bits for every switch buffer.  Senders read off() during
/// the cycle; occupancy changes mark buffers dirty, and latch() recomputes
/// the dirty bits at the end of the cycle — so a bit read at cycle t
/// always reflects occupancy at the end of cycle t-1.
class OnOffSignal {
 public:
  /// \param off_threshold occupancy at which the stop bit asserts
  ///        (FlowConfig::onoff_off_threshold()); must be >= 1 so an
  ///        empty buffer always reads "on".
  OnOffSignal(std::uint32_t switch_buffers, std::uint32_t off_threshold);

  [[nodiscard]] bool off(std::uint32_t b) const {
    NBCLOS_DEBUG_CHECK(b < off_.size(), "buffer id out of range");
    return off_[b] != 0;
  }

  /// Occupancy of `b` changed this cycle; recompute its bit at latch().
  void mark_dirty(std::uint32_t b) {
    if (in_dirty_[b]) return;
    in_dirty_[b] = 1;
    dirty_.push_back(b);
  }

  /// End-of-cycle: latch the stop bits of dirty buffers from current
  /// occupancy.  Cost is O(buffers touched this cycle), not O(all).
  void latch(const FlitBufferPool& pool);

 private:
  std::uint32_t threshold_ = 0;
  std::vector<std::uint8_t> off_;
  std::vector<std::uint32_t> dirty_;
  std::vector<std::uint8_t> in_dirty_;
};

}  // namespace nbclos::flow
