/// \file engine.hpp
/// \brief Cycle-level flow-control simulator: finite per-VC flit
///        buffers, credit / on-off backpressure, wormhole or
///        virtual-cut-through switching.
///
/// FlowSim refines sim::PacketSim from packet granularity down to flits.
/// Where PacketSim teleports a whole packet into an (effectively sized)
/// output queue, FlowSim moves one flit per channel per cycle between
/// *finite* output FIFOs and blocks the upstream flit in place when the
/// downstream FIFO has no room — which is exactly how head-of-line
/// blocking, credit stalls, buffer-induced tree saturation, and wormhole
/// deadlock arise in real folded-Clos routers (the effects the paper's
/// ideal-switch Theorems 1-3 abstract away).
///
/// Model (output-buffered, Dally & Towles conventions):
///   * every channel c owns `vcs` flit FIFOs at its source vertex; a
///     flit transmitted on c lands one cycle later in the downstream
///     FIFO its packet holds, or is ejected if dst(c) is a terminal;
///   * a head flit must first allocate a downstream (channel, VC):
///     the route comes from the shared flow::RouteSource (a
///     ChannelRouteCache table or a pure O(1) router), the
///     VC from a first-free scan starting at the packet's current VC,
///     and the VC is *claimed* until the tail flit arrives — packets
///     never interleave inside a FIFO, and a buffer has at most one
///     writer in flight (what makes the occupancy bounds provable);
///   * wormhole: one free downstream slot admits the head, so a blocked
///     worm spans routers and holds its claims (the deadlock mechanism);
///     virtual cut-through: the head waits for the whole packet's worth
///     of space, so a stalled packet always fits in one router;
///   * backpressure is credit-based (conservative counters, delayed
///     returns) or on/off (stop bit, 1-cycle signal delay) — see
///     credits.hpp for the occupancy-bound arguments;
///   * terminal NIC send queues stay unbounded and injection mirrors
///     PacketSim's RNG call sequence exactly, which is what makes the
///     cross-engine golden equivalence test possible (see
///     FlowConfig::ideal_reference).
///
/// Per cycle: credit returns -> wire arrivals -> transmissions ->
/// injection -> on/off latch -> depth sample -> watchdog.  All iteration
/// orders are fixed (active lists re-sorted by channel id per sweep, the
/// PacketSim discipline), so runs are bit-reproducible from seeds and
/// sweeps are thread-count independent.
///
/// The deadlock watchdog is the robustness backstop: if a whole epoch
/// passes with flits in the system but none transmitted, the run stops
/// with a diagnostic instead of hanging — wormhole configurations on
/// cyclic channel dependencies *should* trip it (see tests/flow).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "nbclos/fault/degraded_view.hpp"
#include "nbclos/flow/buffers.hpp"
#include "nbclos/flow/config.hpp"
#include "nbclos/flow/credits.hpp"
#include "nbclos/flow/route_source.hpp"
#include "nbclos/obs/flight_recorder.hpp"
#include "nbclos/obs/metrics.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/sim/traffic.hpp"
#include "nbclos/topology/network.hpp"
#include "nbclos/util/prng.hpp"
#include "nbclos/util/stats.hpp"
#include "nbclos/util/thread_pool.hpp"

namespace nbclos::flow {

struct FlowResult {
  // Fields shared with sim::SimResult (same names, same semantics, same
  // arithmetic) — the golden equivalence tests compare these across
  // engines field by field.
  double offered_load = 0.0;          ///< config injection rate
  double accepted_throughput = 0.0;   ///< ejected flits/terminal/cycle
  double mean_latency = 0.0;          ///< cycles, tail ejection - injection
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double p999_latency = 0.0;
  double latency_bucket_width = 1.0;
  std::uint64_t injected_packets = 0;
  std::uint64_t delivered_packets = 0;
  /// Packets refused at injection because the source NIC uplink was dead
  /// (fail-stop fault model: in-network flits are never purged — they
  /// block in place and eventually trip the watchdog; only packets that
  /// cannot even enter the network are dropped).
  std::uint64_t dropped_packets = 0;
  /// Time-average flits queued per switch output channel (all VCs of a
  /// channel summed) — with 1-flit packets and vcs = 1 this is unit-for-
  /// unit PacketSim's mean_switch_queue_depth.
  double mean_switch_queue_depth = 0.0;
  double min_flow_throughput = 0.0;
  double max_flow_throughput = 0.0;

  // Flow-control-specific telemetry.
  std::uint64_t credit_stall_cycles = 0;  ///< head/body refused by backpressure
  std::uint64_t vc_stall_cycles = 0;      ///< head refused: no claimable VC
  double mean_stall_cycles = 0.0;         ///< per stall episode
  double p99_stall_cycles = 0.0;
  std::uint32_t peak_buffer_flits = 0;    ///< high-water switch FIFO occupancy
  std::uint64_t peak_live_packets = 0;    ///< high-water packets in system

  // Deadlock watchdog diagnostic (run stops at deadlock_cycle when set).
  bool deadlocked = false;
  std::uint64_t deadlock_cycle = 0;
  std::uint64_t stuck_flits = 0;
  std::vector<std::uint32_t> stuck_buffers;  ///< sample of occupied buffer ids

  /// accepted < 95% of offered — saturated at this load (PacketSim rule).
  [[nodiscard]] bool saturated() const {
    return accepted_throughput < 0.95 * offered_load;
  }
};

/// One blocked FIFO in a deadlock forensics report: where its head is
/// stuck, what it is waiting for, and since when.
struct BlockedBufferReport {
  /// waiting_for when the wait target is unknown (empty FIFO, or a
  /// terminal-bound head, which never blocks downstream).
  static constexpr std::uint32_t kWaitsOnNone = UINT32_MAX;

  std::uint32_t buffer = 0;   ///< global buffer id (serial FlowSim's space)
  std::uint32_t channel = 0;  ///< channel owning the buffer
  std::uint32_t occupancy = 0;  ///< flits queued in the FIFO at the trip
  /// The downstream buffer the head flit needs space in: the worm's
  /// out_alloc for body flits, the allocation scan's first candidate for
  /// a head still waiting to claim a VC.
  std::uint32_t waiting_for = kWaitsOnNone;
  std::uint64_t blocked_since = 0;  ///< cycle the stall episode began
  bool on_cycle = false;  ///< member of the circular-wait chain, if any
};

/// Stall forensics captured when the deadlock watchdog trips: every
/// genuinely blocked FIFO (capped at kMaxBlocked, circular-wait members
/// kept preferentially), the circular-wait chain found by following the
/// waiting_for edges, and the last kTailPoints samples of each
/// flight-recorder series — "what the system looked like just before it
/// stopped".  The chain walk is exact for body flits (the worm's
/// out_alloc IS the wait edge) and first-candidate for blocked heads,
/// which with one VC — the classic wormhole-deadlock configuration — is
/// exact too.
struct DeadlockForensics {
  static constexpr std::size_t kTailPoints = 16;
  static constexpr std::size_t kMaxBlocked = 32;

  bool valid = false;  ///< set iff the watchdog tripped
  std::uint64_t trip_cycle = 0;
  std::uint64_t stuck_flits = 0;
  std::vector<BlockedBufferReport> blocked;  ///< ascending buffer id
  /// Buffers forming one circular wait (first found, walk order), empty
  /// when the blocked set is acyclic inside the report.
  std::vector<std::uint32_t> wait_cycle;
  std::vector<obs::MergedSeries> tail;  ///< recorder tail at the trip
};

namespace detail {
/// Shared forensics finisher (serial + sharded engines): sort the raw
/// blocked list by buffer id, find a circular wait by following the
/// waiting_for edges, mark its members, and cap the list keeping chain
/// members preferentially.
void finalize_forensics(DeadlockForensics& forensics);
}  // namespace detail

class FlowSim {
 public:
  /// The cache pins the Network and the routing; it is shared read-only
  /// across the sweep workers, so it arrives as a shared_ptr.
  ///
  /// Optional faults: `degraded` seeds a PRIVATE copy of the liveness
  /// mask (the caller's view is never mutated — unlike PacketSim) and
  /// `fault_events` are applied to the copy at their scheduled cycles.
  /// Semantics are fail-stop blocking: a dead channel transmits nothing
  /// (its flits wait in place — deadlock territory, by design), a head
  /// flit whose route leads into a dead channel stalls as a credit
  /// block, and only injection onto a dead NIC uplink drops the packet
  /// (FlowResult::dropped_packets).
  FlowSim(std::shared_ptr<const routing::ChannelRouteCache> routes,
          const sim::TrafficPattern& traffic, FlowConfig config,
          const fault::DegradedView* degraded = nullptr,
          std::vector<fault::FaultEvent> fault_events = {});

  /// Same engine over any RouteSource — with a PureRouteSource this is
  /// the only constructor that works at 10^6 terminals (no O(T^2) pair
  /// table is ever built).
  FlowSim(std::shared_ptr<const RouteSource> routes,
          const sim::TrafficPattern& traffic, FlowConfig config,
          const fault::DegradedView* degraded = nullptr,
          std::vector<fault::FaultEvent> fault_events = {});

  /// Run warmup + measurement; returns aggregate results.  Stops early
  /// (with result.deadlocked set) if the watchdog trips.
  [[nodiscard]] FlowResult run();

  /// Flits transmitted per channel over the whole run.  Valid after run().
  [[nodiscard]] const std::vector<std::uint64_t>& link_busy_flits() const {
    return link_busy_flits_;
  }

  /// Credit-conservation audit over every switch buffer:
  /// credits + occupancy + in-flight + pending returns == capacity.
  /// Checked internally at every watchdog epoch and at end of run; public
  /// so tests can probe it mid-run too.  \pre credit backpressure mode.
  [[nodiscard]] bool credit_conservation_holds() const;

  /// The per-epoch time-series recorder (inactive unless
  /// FlowConfig::record_timeseries).  Valid after run().
  [[nodiscard]] const obs::FlightRecorder& recorder() const {
    return recorder_;
  }

  /// Deadlock forensics — valid (forensics().valid) only when the
  /// watchdog tripped.  Valid after run().
  [[nodiscard]] const DeadlockForensics& forensics() const {
    return forensics_;
  }

  /// Flit/packet arena accounting (slab residency, spill) — valid any
  /// time; benches and the CLI manifest read it after run().
  [[nodiscard]] ArenaStats arena_stats() const;

 private:
  static constexpr std::uint32_t kNone = UINT32_MAX;
  static constexpr std::uint32_t kEject = UINT32_MAX;  ///< wire target
  static constexpr std::uint64_t kNotBlocked = UINT64_MAX;

  /// The flit a channel transmitted last cycle, landing this cycle.  At
  /// most one per channel (one flit per channel per cycle), and at most
  /// one wire targets any given buffer (the claim serializes writers).
  /// Kept as a compact list instead of a dense per-channel array: the
  /// set of busy wires tracks live flits, not fabric size.
  struct BusyWire {
    std::uint32_t channel = 0;
    std::uint32_t target = 0;  ///< downstream buffer id, or kEject
    FlitRef flit;
  };

  void step_arrivals();
  void step_transmissions();
  void step_injection();
  /// Build and enqueue one packet from terminal t to dst (or drop it if
  /// the NIC uplink is dead) — shared by both injection RNG modes.
  void inject_packet(std::uint32_t t, std::uint32_t dst);
  /// Apply every scheduled fault whose cycle has arrived to the private
  /// degraded copy.  No queue purging (fail-stop blocking semantics).
  void apply_due_faults();
  [[nodiscard]] bool channel_usable(std::uint32_t c) const {
    return !degraded_.has_value() || degraded_->channel_alive(c);
  }
  /// Land one flit at its destination terminal; frees the packet slot on
  /// the tail.
  void eject(FlitRef flit);
  /// Try to move one flit on channel `c` (VC round-robin); returns true
  /// if a flit was transmitted.
  bool try_transmit(std::uint32_t c);
  /// Head-flit downstream (channel, VC) allocation; returns the claimed
  /// buffer id or kNone (stall reasons accumulated into the counters).
  std::uint32_t allocate_downstream(std::uint32_t from_vc,
                                    const sim::Packet& packet,
                                    std::uint32_t at_vertex, bool* credit_block);
  [[nodiscard]] bool backpressure_ok(std::uint32_t b,
                                     std::uint32_t reservation) const;
  void note_blocked(std::uint32_t b, bool credit_block);
  void note_unblocked(std::uint32_t b);
  void activate(std::uint32_t channel);
  /// True when the watchdog detects a whole epoch without forward
  /// progress while flits remain in the system.
  bool watchdog_tripped();
  void fill_deadlock_diag(FlowResult& result) const;
  void flush_obs(double wall_seconds);
  void arm_recorder();
  void sample_recorder();
  /// Freeze the blocked-FIFO picture + recorder tail after a watchdog
  /// trip (the run loop has stopped; all state is final).
  void capture_forensics();

  std::shared_ptr<const RouteSource> routes_;
  const Network* net_;
  const sim::TrafficPattern* traffic_;
  FlowConfig config_;
  std::optional<fault::DegradedView> degraded_;  ///< private copy
  std::vector<fault::FaultEvent> fault_events_;  ///< sorted by cycle
  std::size_t next_fault_ = 0;

  // Per-channel precomputed facts and state.
  std::vector<std::uint32_t> buf_base_;   ///< first buffer id of channel
  std::vector<std::uint8_t> is_nic_;      ///< source vertex is a terminal
  std::vector<std::uint32_t> channel_dst_;
  std::vector<std::uint8_t> dst_is_terminal_;
  std::vector<std::uint32_t> next_vc_;    ///< round-robin VC arbiter state
  std::vector<BusyWire> busy_wires_;      ///< flits in flight this cycle
  std::vector<std::uint32_t> channel_flits_;  ///< queued flits per channel

  // Active-channel list: exactly the channels with queued flits, sorted
  // by id before each transmission sweep (bit-reproducibility).
  std::vector<std::uint32_t> active_;
  std::vector<std::uint8_t> in_active_;

  // Buffer id space (switch buffers first, then NIC buffers).  All
  // per-buffer *state* lives slot-sparse in pool_; only the id→channel
  // decoding tables remain, and those are per channel, not per buffer.
  std::vector<std::uint32_t> channel_of_switch_idx_;  ///< switch index -> c
  std::vector<std::uint32_t> channel_of_nic_idx_;     ///< NIC index -> c
  std::uint32_t switch_buffer_count_ = 0;
  std::uint64_t switch_channel_count_ = 0;

  [[nodiscard]] std::uint32_t owner_channel_of(std::uint32_t b) const {
    return b < switch_buffer_count_
               ? channel_of_switch_idx_[b / config_.vcs]
               : channel_of_nic_idx_[b - switch_buffer_count_];
  }

  FlitBufferPool pool_;
  PacketPool packets_;
  std::unique_ptr<CreditLedger> ledger_;   ///< credit mode only
  std::unique_ptr<OnOffSignal> onoff_;     ///< on/off mode only
  std::uint32_t head_reservation_ = 1;

  Xoshiro256 rng_;
  std::uint64_t now_ = 0;
  std::uint64_t next_packet_id_ = 0;
  double packet_rate_ = 0.0;  ///< injection_rate / packet_flits
  std::vector<std::uint32_t> terminal_vertices_;
  std::vector<std::uint64_t> flow_sequence_;  ///< per source terminal

  bool measuring_ = false;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_packets_ = 0;
  std::uint64_t dropped_ = 0;  ///< packets refused at a dead NIC uplink
  std::uint64_t delivered_measured_flits_ = 0;
  std::vector<std::uint64_t> delivered_per_source_;  ///< measured flits
  RunningStats latency_;
  /// Exact integer latency accumulators: under counter_injection the
  /// reported mean is latency_sum_/latency_count_ (order-independent, so
  /// it matches ShardedFlowSim's shard-merged mean bit-for-bit) instead
  /// of the Welford stream above.
  std::uint64_t latency_sum_ = 0;
  std::uint64_t latency_count_ = 0;
  QuantileHistogram latency_hist_;
  RunningStats queue_depth_samples_;

  // Flow-control telemetry.
  std::uint64_t credit_stall_cycles_ = 0;
  std::uint64_t vc_stall_cycles_ = 0;
  RunningStats stall_stats_;         ///< per-episode durations
  /// Integer stall accumulators, same role as latency_sum_/count_ above.
  std::uint64_t stall_duration_sum_ = 0;
  std::uint64_t stall_episode_count_ = 0;
  QuantileHistogram stall_hist_;
  std::vector<std::uint32_t> peak_per_vc_;  ///< per VC index, switch buffers
  std::uint64_t peak_live_packets_ = 0;

  // Watchdog.
  std::uint64_t flits_in_system_ = 0;
  std::uint64_t flits_moved_epoch_ = 0;
  bool deadlocked_ = false;
  /// Conservation-audit scratch, indexed by pool slot id; hoisted out of
  /// credit_conservation_holds so epoch audits do not allocate.
  mutable std::vector<std::uint64_t> audit_in_flight_;

  // Observability (never feeds back into simulation state).
  std::vector<std::uint64_t> link_busy_flits_;
  std::uint64_t route_lookups_ = 0;
  /// Stall-latency histogram handle, resolved once at construction (the
  /// registry lookup never runs on the hot path).
  obs::HistogramMetric* stall_metric_ = nullptr;
  /// FIFOs currently inside a stall episode (blocked_since_ set) — the
  /// flight recorder's blocked-head series; partitions additively across
  /// shards because every buffer has exactly one owner.
  std::uint64_t blocked_heads_ = 0;
  obs::FlightRecorder recorder_;
  obs::FlightRecorder::SeriesId rec_in_system_ = 0;
  obs::FlightRecorder::SeriesId rec_buffer_occupancy_ = 0;
  obs::FlightRecorder::SeriesId rec_credit_stalls_ = 0;
  obs::FlightRecorder::SeriesId rec_vc_stalls_ = 0;
  obs::FlightRecorder::SeriesId rec_blocked_heads_ = 0;
  obs::FlightRecorder::SeriesId rec_injected_ = 0;
  obs::FlightRecorder::SeriesId rec_delivered_ = 0;
  DeadlockForensics forensics_;
};

/// Run one FlowSim per injection rate over `pool` (nullptr = serial).
/// Each run is fully determined by its config, so the results are
/// field-for-field identical at any thread count.
[[nodiscard]] std::vector<FlowResult> flow_load_sweep(
    const std::shared_ptr<const routing::ChannelRouteCache>& routes,
    const sim::TrafficPattern& traffic, const FlowConfig& base,
    const std::vector<double>& rates, ThreadPool* pool);

/// RouteSource-generic sweep (the cache overload wraps and delegates).
[[nodiscard]] std::vector<FlowResult> flow_load_sweep(
    const std::shared_ptr<const RouteSource>& routes,
    const sim::TrafficPattern& traffic, const FlowConfig& base,
    const std::vector<double>& rates, ThreadPool* pool);

}  // namespace nbclos::flow
