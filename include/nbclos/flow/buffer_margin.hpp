/// \file buffer_margin.hpp
/// \brief Buffer-margin sweep: the minimum flits per switch port at
///        which a routing sustains nonblocking throughput under finite
///        buffers and real flow control.
///
/// The paper's Theorem 3 guarantees link-disjoint paths for any
/// permutation — an *ideal-switch* statement.  With finite buffers, a
/// too-shallow FIFO stalls even a contention-free schedule (credit
/// round-trips, serialization of multi-flit packets), so the practical
/// question is: how deep must the per-port buffers be before the fabric
/// behaves nonblocking again?  This sweep probes a high offered load
/// across ascending buffer depths and reports the first depth that
/// sustains it.
///
/// Declared in namespace nbclos::analysis (the experiment-harness
/// namespace) but built into the flow library, mirroring how the fault
/// library hosts analysis::run_fault_sweep — analysis/ sits below flow/
/// in the dependency order, so the harness lives with the engine it
/// drives.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nbclos/flow/engine.hpp"

namespace nbclos::analysis {

struct BufferMarginConfig {
  /// Buffer depths (flits per switch FIFO) to probe, strictly ascending.
  std::vector<std::uint32_t> buffer_sizes;
  /// Offered load each depth must sustain (flits/cycle/terminal).
  double probe_load = 1.0;
  /// Sustained means accepted >= sustain_fraction * probe_load — 0.95
  /// matches the engines' saturated() rule.
  double sustain_fraction = 0.95;
  /// Template for every probe; buffer_flits and injection_rate are
  /// overridden per point.
  flow::FlowConfig base;
};

struct BufferMarginPoint {
  std::uint32_t buffer_flits = 0;
  /// False when the depth cannot even host the configured switching mode
  /// (VCT needs a whole packet per FIFO, on/off needs signaling slack);
  /// such points are recorded as unsustained without running.
  bool feasible = true;
  double accepted_throughput = 0.0;
  bool sustained = false;
  bool deadlocked = false;
  std::uint64_t credit_stall_cycles = 0;
  std::uint32_t peak_buffer_flits = 0;
};

struct BufferMarginResult {
  std::vector<BufferMarginPoint> points;  ///< one per requested depth
  /// Smallest probed depth that sustained the load; 0 when none did.
  std::uint32_t min_flits_nonblocking = 0;
};

/// Probe every requested buffer depth at `probe_load`, in parallel over
/// `pool` (nullptr = serial).  Each probe is an independent FlowSim run
/// fully determined by its config, so the result is identical at any
/// thread count.
[[nodiscard]] BufferMarginResult buffer_margin_sweep(
    const std::shared_ptr<const flow::RouteSource>& routes,
    const sim::TrafficPattern& traffic, const BufferMarginConfig& config,
    ThreadPool* pool = nullptr);
/// Route-cache convenience overload (wraps a CacheRouteSource).
[[nodiscard]] BufferMarginResult buffer_margin_sweep(
    const std::shared_ptr<const routing::ChannelRouteCache>& routes,
    const sim::TrafficPattern& traffic, const BufferMarginConfig& config,
    ThreadPool* pool = nullptr);

/// Early-exit bisection over the same depth grid: find the margin with
/// O(log N) probes instead of N, each probe a `flow::ShardedFlowSim` run
/// at `shards` workers (counter injection — verdicts are bit-identical
/// at any shard count).  Assumes sustainability is monotone in depth at
/// fixed load — deeper FIFOs never lose throughput — which holds for
/// the deterministic single-path routings this harness probes; when it
/// holds, `min_flits_nonblocking` equals the full sweep's.  Returned
/// `points` holds only the depths actually probed (ascending), so past
/// radix 16 — where one probe is minutes, not seconds — the margin of a
/// 12-point grid costs 4 probes.
[[nodiscard]] BufferMarginResult buffer_margin_bisect(
    const std::shared_ptr<const flow::RouteSource>& routes,
    const sim::TrafficPattern& traffic, const BufferMarginConfig& config,
    std::uint32_t shards = 1);
/// Route-cache convenience overload (wraps a CacheRouteSource).
[[nodiscard]] BufferMarginResult buffer_margin_bisect(
    const std::shared_ptr<const routing::ChannelRouteCache>& routes,
    const sim::TrafficPattern& traffic, const BufferMarginConfig& config,
    std::uint32_t shards = 1);

}  // namespace nbclos::analysis
