/// \file route_source.hpp
/// \brief Route providers for the flow-level engines: the per-pair
///        `ChannelRouteCache` table, or a pure O(1) `sim::ShardRouter`.
///
/// The flow engines only ever ask one question — "which channel does
/// the (src, dst) flow take out of `vertex`?" — but until the
/// million-terminal scale-out they could only ask it of a
/// `ChannelRouteCache`, whose O(T^2) pair table cannot exist at 10^6
/// terminals.  `RouteSource` abstracts the question; `CacheRouteSource`
/// wraps the existing table (every historical call site keeps working
/// through the engines' cache-taking constructors), and
/// `PureRouteSource` wraps any deterministic `sim::ShardRouter` —
/// e.g. `KaryDmodkRouter`, whose digit arithmetic answers in O(1) with
/// zero per-pair state.  Both must be deterministic and safe to call
/// concurrently from shard workers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "nbclos/routing/route_cache.hpp"
#include "nbclos/sim/shard_router.hpp"
#include "nbclos/topology/network.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos::flow {

/// Pure next-hop interface for the flow engines.  `src` and `dst` are
/// vertex ids of terminals, as carried by sim::Packet.
class RouteSource {
 public:
  virtual ~RouteSource() = default;
  [[nodiscard]] virtual const Network& network() const = 0;
  /// Outgoing channel of the (src, dst) flow at `vertex`.
  [[nodiscard]] virtual std::uint32_t next_channel_from(
      std::uint32_t vertex, std::uint32_t src, std::uint32_t dst) const = 0;
  /// Resident bytes of routing state (0 for pure arithmetic routers).
  [[nodiscard]] virtual std::size_t bytes() const = 0;
  [[nodiscard]] virtual std::string label() const = 0;
};

/// The historical path: every pair's channel run materialized in a
/// `ChannelRouteCache` (possibly mmap-spilled, see route_cache.hpp).
class CacheRouteSource final : public RouteSource {
 public:
  explicit CacheRouteSource(
      std::shared_ptr<const routing::ChannelRouteCache> cache)
      : cache_(std::move(cache)) {
    NBCLOS_REQUIRE(cache_ != nullptr, "route cache must not be null");
  }

  [[nodiscard]] const Network& network() const override {
    return cache_->network();
  }
  [[nodiscard]] std::uint32_t next_channel_from(
      std::uint32_t vertex, std::uint32_t src,
      std::uint32_t dst) const override {
    return cache_->next_channel_from(vertex, src, dst);
  }
  [[nodiscard]] std::size_t bytes() const override { return cache_->bytes(); }
  [[nodiscard]] std::string label() const override { return "route-cache"; }

  [[nodiscard]] const std::shared_ptr<const routing::ChannelRouteCache>&
  cache() const noexcept {
    return cache_;
  }

 private:
  std::shared_ptr<const routing::ChannelRouteCache> cache_;
};

/// O(1)-per-hop routing from a pure `sim::ShardRouter` — no per-pair
/// table, so fabrics of any size route in constant memory.  This is the
/// only way a 10^6-terminal flow-level run fits.
class PureRouteSource final : public RouteSource {
 public:
  PureRouteSource(const Network& net,
                  std::shared_ptr<const sim::ShardRouter> router)
      : net_(&net), router_(std::move(router)) {
    NBCLOS_REQUIRE(router_ != nullptr, "shard router must not be null");
  }

  [[nodiscard]] const Network& network() const override { return *net_; }
  [[nodiscard]] std::uint32_t next_channel_from(
      std::uint32_t vertex, std::uint32_t src,
      std::uint32_t dst) const override {
    sim::Packet probe;
    probe.src_terminal = src;
    probe.dst_terminal = dst;
    return router_->next_channel(vertex, probe);
  }
  [[nodiscard]] std::size_t bytes() const override { return 0; }
  [[nodiscard]] std::string label() const override { return router_->name(); }

 private:
  const Network* net_;
  std::shared_ptr<const sim::ShardRouter> router_;
};

}  // namespace nbclos::flow
