/// \file sharded.hpp
/// \brief Shard-partitioned cycle-level flow-control simulation:
///        per-(channel, VC) flit buffers, credit counters, and switch
///        state split into per-shard arenas with epoch-synchronized
///        flit / grant / credit exchange.
///
/// `ShardedFlowSim` splits a `FlowSim`-equivalent run across S shard
/// workers using the same deterministic out-channel-balanced vertex cut
/// (`sim::ShardPlan`) and SPSC mailbox / barrier-epoch machinery
/// (`sim/shard_exchange.hpp`) as `sim::ShardedSim` — refined from packet
/// granularity down to flits, credits, and claims.
///
/// State placement (two roles per shard):
///   * the OWNER of channel c — shard_of(src(c)) — holds every buffer of
///     c: flit storage, claim and credit-ledger entries, on/off signal,
///     out_alloc, next_vc, and stall bookkeeping.  Arrival pushes into a
///     buffer of c are made by whoever transmitted on the upstream
///     channel c' with dst(c') = src(c) — and that transmitter runs on
///     shard_of(dst(c')) = owner(c), so pushes are owner-local too;
///   * the EXECUTOR of channel c — shard_of(dst(c)) — makes c's
///     transmission decisions: it routes, scans downstream VCs, checks
///     and sets claims, checks backpressure, and consumes credits.  All
///     of that state belongs to buffers sourced at dst(c), which the
///     executor owns, so decisions never touch foreign arenas.
///
/// Per cycle, three phases over two barriers (plus one extra barrier at
/// watchdog epochs):
///
///   A. owner role — apply scheduled faults to the private DegradedView
///      copy, advance the credit ledger, land last cycle's wires (push
///      or eject), then send one *flit proposal* per non-empty VC of
///      each active channel to the channel's executor;
///   -- barrier 1 --
///   B. executor role — merge local + mailbox proposals, sort by
///      (channel, VC), and replay FlowSim::try_transmit's VC scan
///      verbatim against local claim/credit state; emit a *transmit
///      grant* (winner VC + per-VC stall masks) back to the owner, a
///      *credit return* for every pop from a switch buffer, and a local
///      wire for the moved flit;
///   -- barrier 2 --
///   C. owner role — apply grants in ascending channel order (pop the
///      winning flit, update out_alloc/next_vc, book stalls), drain
///      credit returns into the ledger's delay line (the ONLY driver of
///      schedule_return — credits flow opposite to flits, which is why
///      they need their own mailbox class), inject with the counter
///      RNG over owned terminals, latch on/off, record this cycle's
///      depth sum, and at watchdog epochs aggregate stuck-flit counts
///      across ALL shards before deciding (per-shard verdicts would
///      miss deadlocks whose cycle spans the cut).
///
/// Determinism contract: routing through the shared read-only
/// `RouteSource` (a `ChannelRouteCache` table or a pure arithmetic
/// router — both deterministic), counter-based injection, exact
/// integer statistic merges, and per-executor ascending channel order
/// (all cross-channel interaction within a cycle — claims, credit
/// consumption — is confined to channels sharing a downstream vertex,
/// i.e. one executor) make a run **bit-identical to serial FlowSim with
/// `FlowConfig::counter_injection` at any shard count**, including under
/// mid-run fault schedules, for wormhole and VCT switching and credit
/// and on/off backpressure.  tests/flow/test_flow_sharded.cpp asserts
/// every FlowResult field with EXPECT_EQ.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nbclos/fault/degraded_view.hpp"
#include "nbclos/flow/config.hpp"
#include "nbclos/flow/engine.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/sim/shard_exchange.hpp"
#include "nbclos/sim/traffic.hpp"

namespace nbclos::flow {

class ShardedFlowSim {
 public:
  /// Engine-health telemetry for one run (valid after run()).
  struct Telemetry {
    std::uint64_t cross_shard_flits = 0;    ///< flit proposals via mailboxes
    std::uint64_t cross_shard_credits = 0;  ///< credit returns via mailboxes
    std::uint64_t mailbox_peak = 0;  ///< max messages in one box drain
  };

  /// Same contract as FlowSim plus the shard count; `degraded` seeds one
  /// PRIVATE DegradedView copy per shard (the same `fault_events`
  /// schedule is applied to every copy at the same cycles, so they never
  /// diverge).  Injection always uses the counter-based RNG; pinning and
  /// first-touch arena placement follow `FlowConfig::pin_shards`.
  ShardedFlowSim(std::shared_ptr<const RouteSource> routes,
                 const sim::TrafficPattern& traffic, FlowConfig config,
                 std::uint32_t shards,
                 const fault::DegradedView* degraded = nullptr,
                 std::vector<fault::FaultEvent> fault_events = {});
  /// Historical entry point: wrap the route cache in a CacheRouteSource.
  ShardedFlowSim(std::shared_ptr<const routing::ChannelRouteCache> routes,
                 const sim::TrafficPattern& traffic, FlowConfig config,
                 std::uint32_t shards,
                 const fault::DegradedView* degraded = nullptr,
                 std::vector<fault::FaultEvent> fault_events = {});
  ~ShardedFlowSim();

  ShardedFlowSim(const ShardedFlowSim&) = delete;
  ShardedFlowSim& operator=(const ShardedFlowSim&) = delete;

  /// Run warmup + measurement across all shard workers; returns the
  /// merged aggregate results (bit-identical at any shard count).
  [[nodiscard]] FlowResult run();

  /// Flits transmitted per channel, summed across shards.  Valid after
  /// run() (FlowSim::link_busy_flits parity).
  [[nodiscard]] const std::vector<std::uint64_t>& link_busy_flits() const {
    return merged_link_busy_;
  }

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return plan_.shard_count;
  }
  [[nodiscard]] const sim::ShardPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const Telemetry& telemetry() const noexcept {
    return telemetry_;
  }
  /// Resident bytes of the per-shard flit/credit arenas.
  [[nodiscard]] std::size_t arena_bytes() const noexcept;
  /// Flit/packet arena accounting summed over shards (FlowSim parity).
  /// Valid after run() — pools live until the engine is destroyed.
  [[nodiscard]] ArenaStats arena_stats() const noexcept;

  /// The per-epoch time-series recorder (inactive unless
  /// FlowConfig::record_timeseries).  Every shard samples the same
  /// global cycles into its own slot; the kInvariant series merge
  /// bit-identically to a serial FlowSim recording at any shard count.
  /// Valid after run().
  [[nodiscard]] const obs::FlightRecorder& recorder() const {
    return recorder_;
  }

  /// Deadlock forensics, merged across shards into serial FlowSim's
  /// global buffer id space — valid (forensics().valid) only when the
  /// watchdog tripped.  Valid after run().
  [[nodiscard]] const DeadlockForensics& forensics() const {
    return forensics_;
  }

 private:
  struct Shard;

  /// Owner -> executor, one per non-empty VC of an active channel: the
  /// VC's front flit (packet inline — flit storage never crosses the
  /// cut) plus the owner-side state the executor's replayed VC scan
  /// needs.
  struct FlitProposal {
    std::uint32_t channel = 0;
    std::uint32_t flit_index = 0;
    std::uint32_t out_alloc = 0;  ///< body flits: global downstream buffer
    sim::Packet packet;
    std::uint8_t vc = 0;
    std::uint8_t start_vc = 0;  ///< owner's next_vc round-robin start
  };

  /// Executor -> owner: the arbitration outcome for one channel this
  /// cycle — which VC won (if any) and which attempted VCs stalled, and
  /// why (masks indexed by VC).
  struct TransmitGrant {
    std::uint32_t channel = 0;
    std::uint32_t new_out_alloc = 0;  ///< head transmit: claimed buffer
    std::uint32_t credit_block_mask = 0;
    std::uint32_t vc_block_mask = 0;
    std::uint8_t winner_vc = 0;  ///< kNoWinner when every VC stalled
  };

  /// Executor -> owner, one per flit popped from a switch buffer: the
  /// freed slot's credit flows back upstream — opposite to the flit —
  /// and is the ONLY driver of the owner's CreditLedger::schedule_return
  /// (and OnOffSignal::mark_dirty in on/off mode).
  struct CreditReturn {
    std::uint32_t buffer = 0;  ///< global buffer id
  };

  void run_shard(std::uint32_t s);
  void init_shard_arena(std::uint32_t s);
  void phase_owner_pre(Shard& sh, std::uint64_t now, bool measuring);
  void phase_execute(Shard& sh, std::uint64_t now);
  void phase_owner_post(Shard& sh, std::uint64_t now);
  [[nodiscard]] bool epoch_watchdog(Shard& sh, std::uint64_t now);
  void eject_flit(Shard& sh, const sim::Packet& packet,
                  std::uint32_t flit_index, std::uint64_t now, bool measuring);
  /// Executor-side head-flit downstream (channel, VC) allocation against
  /// local claim/backpressure state; FlowSim::allocate_downstream replica.
  std::uint32_t allocate_downstream(Shard& sh, std::uint32_t from_vc,
                                    const sim::Packet& packet,
                                    std::uint32_t at_vertex,
                                    bool* credit_block);
  void apply_grant(Shard& sh, const TransmitGrant& grant, std::uint64_t now);
  void note_blocked(Shard& sh, std::uint32_t global_b, bool credit_block,
                    std::uint64_t now);
  void note_unblocked(Shard& sh, std::uint32_t global_b, std::uint64_t now);
  [[nodiscard]] bool backpressure_ok(const Shard& sh, std::uint32_t local_b,
                                     std::uint32_t reservation) const;
  /// Audits live slots only (never-activated buffers hold full credits
  /// trivially); uses the shard's hoisted audit scratch, hence non-const.
  [[nodiscard]] bool local_credit_conservation_holds(Shard& sh) const;
  [[nodiscard]] FlowResult merge_results();
  void flush_obs(double wall_seconds);
  void arm_recorder();
  void sample_recorder(Shard& sh, std::uint64_t now);
  /// Merge every shard's frozen blocked-FIFO picture (after the workers
  /// have joined) into one global forensics report.
  void capture_forensics();

  std::shared_ptr<const RouteSource> routes_;
  const Network* net_;
  const sim::TrafficPattern* traffic_;
  FlowConfig config_;
  std::vector<fault::FaultEvent> fault_events_;  ///< sorted by cycle
  const fault::DegradedView* degraded_ = nullptr;  ///< copied per shard
  sim::ShardPlan plan_;
  std::uint32_t terminal_count_ = 0;
  double packet_rate_ = 0.0;
  std::uint32_t head_reservation_ = 1;

  // Shared read-only per-channel / per-buffer facts, computed once in
  // the constructor (the GLOBAL buffer id space is exactly serial
  // FlowSim's assignment, so diagnostics and messages agree with it).
  std::vector<std::uint32_t> buf_base_;
  std::vector<std::uint8_t> is_nic_;
  std::vector<std::uint32_t> channel_dst_;
  std::vector<std::uint8_t> dst_is_terminal_;
  std::vector<std::uint8_t> channel_executor_;  ///< shard_of(dst(c))
  /// Dense index of c among its executor's executed channels (ascending
  /// c) — per-shard link-busy tallies are executor-local so their size
  /// tracks channels / S, not S full copies of the fabric.
  std::vector<std::uint32_t> exec_index_;
  std::vector<std::uint32_t> buf_local_of_global_;
  std::uint32_t switch_buffer_count_ = 0;
  std::uint64_t switch_channel_count_ = 0;

  std::vector<std::unique_ptr<Shard>> shards_;
  sim::MailboxGrid<FlitProposal> proposal_box_;
  sim::MailboxGrid<TransmitGrant> grant_box_;
  sim::MailboxGrid<CreditReturn> credit_box_;

  /// Watchdog epoch aggregation slots: shard s writes its local
  /// {flits in system, flits moved} here, one extra barrier makes them
  /// visible, and every shard reduces the SAME totals — the aggregated
  /// verdict a per-shard scan would get wrong for deadlock cycles that
  /// span the cut.  (Per-shard in-system counts can be negative: a
  /// shard that ejects packets injected elsewhere only ever decrements.)
  struct EpochStat {
    std::int64_t flits_in_system = 0;
    std::uint64_t flits_moved = 0;
  };
  std::vector<EpochStat> epoch_stats_;

  std::unique_ptr<sim::ShardSync> sync_;
  sim::NumaTopology numa_;
  Telemetry telemetry_;
  std::vector<std::uint64_t> merged_link_busy_;
  obs::FlightRecorder recorder_;
  obs::FlightRecorder::SeriesId rec_in_system_ = 0;
  obs::FlightRecorder::SeriesId rec_buffer_occupancy_ = 0;
  obs::FlightRecorder::SeriesId rec_credit_stalls_ = 0;
  obs::FlightRecorder::SeriesId rec_vc_stalls_ = 0;
  obs::FlightRecorder::SeriesId rec_blocked_heads_ = 0;
  obs::FlightRecorder::SeriesId rec_injected_ = 0;
  obs::FlightRecorder::SeriesId rec_delivered_ = 0;
  obs::FlightRecorder::SeriesId rec_mailbox_flits_ = 0;
  obs::FlightRecorder::SeriesId rec_mailbox_credits_ = 0;
  obs::FlightRecorder::SeriesId rec_mailbox_peak_ = 0;
  DeadlockForensics forensics_;
  bool ran_ = false;
};

}  // namespace nbclos::flow
