/// \file lemma6.hpp
/// \brief Lemma 6: the combinatorial engine behind Theorem 5.
///
/// For any k distinct numbers written with c+1 base-n digits
/// `d_c d_{c-1} ... d_0`, there exists a digit position i such that at
/// least k^(1/(2(c+1))) of the numbers have pairwise-different d_0, or
/// pairwise-different (d_i - d_0) mod n.  These two criteria are exactly
/// the partition keys of partitions 0 and i, so Lemma 6 lower-bounds how
/// many SD pairs the greedy can peel off per configuration.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nbclos/util/digits.hpp"

namespace nbclos::adaptive {

/// Result of the Lemma 6 selection.
struct Lemma6Selection {
  /// Which criterion matched: partition index (0 => distinct d_0;
  /// i >= 1 => distinct (d_i - d_0) mod n).
  std::uint32_t partition = 0;
  /// Indices (into the input span) of numbers with pairwise-distinct keys.
  std::vector<std::size_t> indices;
};

/// The key Lemma 6 evaluates for a number under criterion `partition`:
/// partition 0 -> d_0; partition i >= 1 -> (d_i - d_0) mod n.
[[nodiscard]] std::uint32_t lemma6_key(const DigitCodec& codec,
                                       std::uint64_t value,
                                       std::uint32_t partition);

/// Find the criterion with the most pairwise-distinct keys among the
/// given (distinct) numbers, returning one representative per key value.
/// \param codec  base-n codec of width c+1
/// \param values distinct numbers, each < codec.capacity()
/// Guaranteed (Lemma 6): result.indices.size() >= k^(1/(2(c+1))) where
/// k = values.size() and c+1 = codec.width().
[[nodiscard]] Lemma6Selection lemma6_select(const DigitCodec& codec,
                                            std::span<const std::uint64_t> values);

/// The analytic lower bound k^(1/(2(c+1))) of Lemma 6.
[[nodiscard]] double lemma6_bound(std::size_t k, std::uint32_t c);

}  // namespace nbclos::adaptive
