/// \file router.hpp
/// \brief Algorithm NONBLOCKINGADAPTIVE (paper Fig. 4): the local adaptive
///        routing that achieves nonblocking communication with
///        O(n^(2 - 1/(2(c+1)))) top-level switches (Theorems 4 & 5).
///
/// The router processes SD pairs of each source switch independently —
/// that is what makes it *local* adaptive: in a distributed realization
/// every input switch runs this logic over only its own SD pairs, with no
/// global state.  For each switch it allocates configurations one at a
/// time; inside a configuration it repeatedly picks the unused partition
/// that can absorb the largest subset of remaining SD pairs (Lemma 5)
/// until the configuration's c+1 partitions are spent.  The per-switch
/// schedules then merge: corresponding partitions across switches share
/// the same physical n top switches without contention because each
/// partition's routing is Class DIFF (Lemma 4).
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/adaptive/partitions.hpp"
#include "nbclos/topology/fat_tree.hpp"

namespace nbclos::adaptive {

/// Where one SD pair landed in the schedule.
struct Assignment {
  SDPair sd;
  std::uint32_t configuration = 0;
  std::uint32_t partition = 0;   ///< 0-based, 0 = the paper's first partition
  std::uint32_t key = 0;         ///< partition-local switch index
  std::uint32_t top_switch = 0;  ///< global top-switch index
  bool direct = false;           ///< same-switch pair, no top switch used
};

/// The full routing decision for a pattern.
struct AdaptiveSchedule {
  AdaptiveParams params;
  std::vector<Assignment> assignments;      ///< aligned with input pattern
  std::uint32_t configurations_used = 0;    ///< the paper's `totalconf`
  std::uint32_t top_switches_used = 0;      ///< totalconf * (c+1) * n

  /// Convert to ftree paths.  \pre ftree.m() >= top_switches_used.
  [[nodiscard]] std::vector<FtreePath> to_paths(const FoldedClos& ftree) const;
};

class NonblockingAdaptiveRouter {
 public:
  /// \pre params derived via AdaptiveParams::from (n >= 2).
  explicit NonblockingAdaptiveRouter(AdaptiveParams params)
      : params_(params) {}

  [[nodiscard]] const AdaptiveParams& params() const noexcept {
    return params_;
  }

  /// Schedule a permutation (validated: each leaf used at most once as a
  /// source and at most once as a destination).
  [[nodiscard]] AdaptiveSchedule route(const std::vector<SDPair>& pattern) const;

 private:
  AdaptiveParams params_;
};

}  // namespace nbclos::adaptive
