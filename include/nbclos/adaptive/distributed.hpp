/// \file distributed.hpp
/// \brief The distributed realization of NONBLOCKINGADAPTIVE (§V).
///
/// The paper: "local adaptive routing algorithms ... can be realized in
/// a distributed manner by implementing the routing logic in each of the
/// input switches ... the algorithm does not require global information
/// to be shared among different switches."  This header makes that
/// concrete: SwitchLocalScheduler is one input switch's control logic —
/// it accepts only SD pairs whose sources live in that switch and emits
/// their assignments with no other input.  distributed_route() runs r
/// independent schedulers and merges; tests assert the merge is
/// identical to the monolithic NonblockingAdaptiveRouter, which is
/// exactly the paper's claim that merging needs no coordination.
#pragma once

#include <span>
#include <vector>

#include "nbclos/adaptive/router.hpp"

namespace nbclos::adaptive {

/// Which partition the inner loop of Fig. 4 consumes next — an ablation
/// knob around line (7).  The paper scans all unused partitions for the
/// largest routable subset; kFirstAvailable takes the lowest-index unused
/// partition instead (cheaper, but loses the Lemma 6 guarantee that the
/// first peel of a configuration is large).
enum class PartitionPolicy : std::uint8_t {
  kLargestSubset,   ///< the paper's greedy (default)
  kFirstAvailable,  ///< ignore subset sizes, take partitions in order
};

/// Fig. 4's greedy for the SD pairs of ONE source switch: allocate
/// configurations, fill partitions per the chosen policy.  Exposed so the
/// monolithic router and the distributed schedulers share one
/// implementation.  Returns assignments aligned with `pairs`; direct
/// (same-switch destination) pairs get `direct = true`.
/// \pre every pair's source lies in bottom switch `switch_id`;
///      destinations are distinct (permutation restriction).
[[nodiscard]] std::vector<Assignment> schedule_one_switch(
    const AdaptiveParams& params, std::uint32_t switch_id,
    std::span<const SDPair> pairs,
    PartitionPolicy policy = PartitionPolicy::kLargestSubset);

/// One input switch's distributed control logic.
class SwitchLocalScheduler {
 public:
  SwitchLocalScheduler(AdaptiveParams params, std::uint32_t switch_id)
      : params_(params), switch_id_(switch_id) {
    NBCLOS_REQUIRE(switch_id < params.r, "switch id out of range");
  }

  [[nodiscard]] std::uint32_t switch_id() const noexcept { return switch_id_; }

  /// Schedule this switch's local traffic; throws if any pair's source
  /// is foreign (a distributed switch never sees foreign traffic).
  [[nodiscard]] std::vector<Assignment> schedule(
      std::span<const SDPair> local_pairs) const {
    return schedule_one_switch(params_, switch_id_, local_pairs);
  }

 private:
  AdaptiveParams params_;
  std::uint32_t switch_id_;
};

/// Run r independent SwitchLocalSchedulers over a permutation and merge
/// their outputs — no cross-switch information flows.  The result is
/// byte-identical to NonblockingAdaptiveRouter::route (tested).
[[nodiscard]] AdaptiveSchedule distributed_route(
    const AdaptiveParams& params, const std::vector<SDPair>& pattern,
    PartitionPolicy policy = PartitionPolicy::kLargestSubset);

}  // namespace nbclos::adaptive
