/// \file partitions.hpp
/// \brief Partition machinery of the paper's local adaptive routing (§V).
///
/// For ftree(n+m, r) pick the smallest c with r <= n^c.  Bottom switches
/// carry c base-n digits; leaf nodes carry c+1 digits
/// `s_{c-1} ... s_0 p` where p is the node's local number.  A
/// *configuration* is a group of (c+1)*n top-level switches, divided into
/// c+1 *partitions* of n switches each.  Within a partition, the routing
/// of an SD pair depends only on its destination:
///   * partition 0 ("first partition"): destination goes to partition
///     switch `p`;
///   * partition k, 1 <= k <= c: destination goes to partition switch
///     `(s_{k-1} - p) mod n`.
/// Lemma 4 shows each partition's routing is Class DIFF: two different
/// destinations in the same bottom switch always map to different
/// partition switches, so SD pairs from different source switches can
/// never contend (Lemma 3).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "nbclos/topology/fat_tree.hpp"
#include "nbclos/util/digits.hpp"

namespace nbclos::adaptive {

/// Digit parameters for the adaptive scheme on ftree(n+m, r).
struct AdaptiveParams {
  std::uint32_t n = 0;  ///< leaf ports per bottom switch (digit radix)
  std::uint32_t r = 0;  ///< bottom switches
  std::uint32_t c = 0;  ///< smallest c with r <= n^c

  /// Derive params from a topology.  \pre n >= 2.
  [[nodiscard]] static AdaptiveParams from(const FoldedClos& ftree);

  /// Partitions per configuration: c + 1.
  [[nodiscard]] std::uint32_t partitions_per_config() const noexcept {
    return c + 1;
  }
  /// Top switches per configuration: (c+1) * n.
  [[nodiscard]] std::uint32_t switches_per_config() const noexcept {
    return (c + 1) * n;
  }
  /// Worst-case top switches the greedy ever needs: each configuration
  /// routes at least one SD pair per source switch, so at most n
  /// configurations are used: n * (c+1) * n.
  [[nodiscard]] std::uint32_t worst_case_top_switches() const noexcept {
    return n * switches_per_config();
  }
};

/// The partition-local switch index ("key") a destination maps to inside
/// partition `k` (0-based; 0 is the paper's first partition).
/// \pre k <= params.c, dst < params.r * params.n.
[[nodiscard]] std::uint32_t partition_key(const AdaptiveParams& params,
                                          std::uint32_t k, LeafId dst);

/// Global top-switch index for (configuration, partition, key).
[[nodiscard]] inline std::uint32_t top_switch_index(
    const AdaptiveParams& params, std::uint32_t configuration,
    std::uint32_t k, std::uint32_t key) {
  return configuration * params.switches_per_config() + k * params.n + key;
}

/// Largest routable subset (Lemma 5): among SD pairs from one switch, a
/// subset fits partition k iff all its destinations have distinct keys.
/// Returns indices into `pairs` — the first pair seen for each distinct
/// key, so the result's size equals the number of distinct keys.
[[nodiscard]] std::vector<std::size_t> largest_routable_subset(
    const AdaptiveParams& params, std::uint32_t k,
    std::span<const SDPair> pairs);

/// Class DIFF check (Lemma 3 / Lemma 4): a destination->switch map is
/// Class DIFF iff any two *different* destinations in the same bottom
/// switch map to different switches.  Verifies partition k's routing by
/// exhaustive scan over all destination pairs; returns true iff it holds.
[[nodiscard]] bool is_class_diff_partition(const AdaptiveParams& params,
                                           std::uint32_t k);

}  // namespace nbclos::adaptive
