/// \file run_info.hpp
/// \brief Build + run manifest embedded in every bench JSON and trace.
///
/// Reproducing a measurement requires knowing exactly what ran: RunInfo
/// captures the build identity (git sha, compiler, build type, flags,
/// whether observability was compiled in) at compile time and lets the
/// harness fill in the per-run facts (seed, thread count, wall time).
/// Unlike obs/metrics and obs/trace this is NOT compiled out by
/// NBCLOS_OBS=OFF — a manifest is exactly as valuable for an OFF build.
#pragma once

#include <cstdint>
#include <string>

namespace nbclos {
class JsonWriter;
}

namespace nbclos::obs {

struct RunInfo {
  // --- build identity (filled by current()) ---------------------------
  std::string version;     ///< nbclos project version
  std::string git_sha;     ///< HEAD at configure time ("unknown" outside git)
  std::string compiler;    ///< id + version, e.g. "GNU 13.2.0"
  std::string build_type;  ///< CMAKE_BUILD_TYPE
  std::string cxx_flags;   ///< CMAKE_CXX_FLAGS (often empty)
  bool obs_enabled = false;  ///< NBCLOS_OBS compiled in?

  // --- run facts (filled by the harness; 0 / empty = not applicable) --
  std::uint64_t seed = 0;
  std::uint32_t threads = 0;
  std::uint32_t hardware_concurrency = 0;
  /// Online NUMA nodes (parsed from /sys/devices/system/node by
  /// current(); 1 where the hierarchy is absent).  Together with
  /// pin_threads this fully describes the placement side of a sharded
  /// run's telemetry configuration.
  std::uint32_t numa_nodes = 1;
  /// Were the shard workers pinned node-major (SimConfig::pin_shards /
  /// FlowConfig::pin_shards)?  Filled by the harness.
  bool pin_threads = false;
  double wall_seconds = 0.0;
  /// Simulation shard count (0 = not a sharded run).
  std::uint32_t shards = 0;
  /// Peak resident set in KiB, sampled by the harness *after* the big
  /// arenas exist (peak RSS is monotone, so sampling late is what makes
  /// the number honest); 0 = not sampled.
  std::uint64_t peak_rss_kb = 0;

  /// Build-time identity plus hardware_concurrency; run facts zeroed.
  [[nodiscard]] static RunInfo current();

  /// Emit as a JSON object value (caller positions the writer — typically
  /// after `writer.key("manifest")`).
  void write_json(JsonWriter& writer) const;

  /// One-line human summary for `nbclos --version`.
  [[nodiscard]] std::string summary() const;
};

/// Peak resident set size of this process in KiB (getrusage on POSIX;
/// 0 where unavailable).  Monotone over the process lifetime — call it
/// after the structures you want accounted for have been built.
[[nodiscard]] std::uint64_t peak_rss_kb();

}  // namespace nbclos::obs
