/// \file prom_export.hpp
/// \brief Prometheus text-exposition writer for the metrics registry.
///
/// Turns a MetricsRegistry snapshot into the Prometheus text format
/// (version 0.0.4): counters export as `counter`, gauges as `gauge`,
/// and quantile histograms as `summary` (p50/p99/p999 quantile labels
/// plus a `_count` line).  Dotted nbclos metric names are sanitized to
/// the Prometheus grammar (`sim.link.busy_flit_cycles` becomes
/// `nbclos_sim_link_busy_flit_cycles`).
///
/// Unlike the instruments themselves this writer is NOT compiled out by
/// NBCLOS_OBS=OFF — it simply exports the (empty) snapshot, so the CLI
/// surface stays identical in both builds.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "nbclos/obs/metrics.hpp"

namespace nbclos::obs {

/// Sanitize `name` to the Prometheus metric-name grammar
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` and prefix it with "nbclos_": every
/// character outside the grammar maps to '_'.
[[nodiscard]] std::string prom_name(std::string_view name);

/// Write `snapshot` (as returned by MetricsRegistry::snapshot(), sorted
/// by name) in Prometheus text-exposition format.
void prom_export(std::ostream& out, const std::vector<MetricSample>& snapshot);

/// prom_export of the global registry, as a string (the metrics-serve
/// response body and the --prom-out payload).
[[nodiscard]] std::string prom_export_global();

}  // namespace nbclos::obs
