/// \file flight_recorder.hpp
/// \brief Fixed-budget time-series telemetry: per-shard ring buffers with
///        deterministic downsampling, merged into ordered series.
///
/// The PR 4 metrics registry answers "what happened over the whole run";
/// the flight recorder answers "how did it evolve": which signals grew,
/// when congestion set in, what the last epochs before a watchdog trip
/// looked like.  Design constraints (see DESIGN.md §"flight recorder"):
///
///   * FIXED BUDGET — every series is a ring of at most `ring_capacity`
///     (timestamp, value) samples per shard.  When the ring fills, the
///     series drops every other retained sample and doubles its sampling
///     stride, so an arbitrarily long run costs the same memory as a
///     short one and resolution degrades gracefully (never below
///     ring_capacity/2 points spanning the whole run).  Engines record
///     *aggregate* signals (total queue depth, busy-flit totals, blocked
///     heads, mailbox occupancy), never one series per link: at 10^6
///     terminals per-link rings would dwarf the simulation arenas.
///
///   * DETERMINISTIC — which samples survive downsampling is a pure
///     function of the sequence of recorded timestamps and the ring
///     capacity, never of wall-clock time or shard count.  Every shard
///     of a sharded engine samples at the same global cycles with the
///     same capacity, so all shards retain exactly the same timestamps
///     and the merged series is bit-identical at any shard count
///     (asserted by tests and the bench identity verdicts) — provided
///     the recorded quantity partitions additively across shards.
///     Series that exist only in sharded runs (mailbox occupancy,
///     which is identically zero at one shard and absent serially) are
///     tagged Scope::kShardTopology and excluded from that contract.
///
///   * WRITER-SAFE — each (series, shard) cell is written by exactly one
///     shard thread; cells are preallocated at configure() so recording
///     never allocates or locks.  merged() is called after the writers
///     have joined (end of run / watchdog trip), where it aggregates
///     across shards by exact integer sum or max.
///
/// Like the rest of nbclos/obs, the whole class collapses to an inline
/// no-op stub under -DNBCLOS_OBS=OFF.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nbclos/obs/metrics.hpp"  // NBCLOS_OBS_ENABLED + runtime switch

namespace nbclos::obs {

/// One retained sample: simulation cycle and the (integer) value there.
struct SeriesPoint {
  std::uint64_t t = 0;   ///< simulation cycle of the sample
  std::int64_t v = 0;    ///< recorded value (exact integers only)
  friend bool operator==(const SeriesPoint&, const SeriesPoint&) = default;
};

/// How per-shard values combine into the merged series.
enum class SeriesAgg : std::uint8_t {
  kSum,  ///< value partitions additively across shards (totals, counters)
  kMax   ///< value is a per-shard peak; the merged peak is the max
};

/// Whether the merged series is part of the shard-count-invariance
/// contract.
enum class SeriesScope : std::uint8_t {
  kInvariant,      ///< must merge bit-identically at any shard count
  kShardTopology   ///< depends on the shard cut (mailboxes, barriers)
};

/// One merged, ordered series as returned by FlightRecorder::merged().
struct MergedSeries {
  std::string name;
  SeriesAgg agg = SeriesAgg::kSum;
  SeriesScope scope = SeriesScope::kInvariant;
  /// Cycles between retained samples after downsampling
  /// (= cadence * 2^halvings); 0 when the series never recorded.
  std::uint64_t stride_cycles = 0;
  std::vector<SeriesPoint> points;  ///< strictly increasing t
};

#if NBCLOS_OBS_ENABLED

class FlightRecorder {
 public:
  struct Config {
    /// Cycles between samples before any downsampling.  Engines call
    /// want(cycle) and only sample on multiples of the cadence, so the
    /// per-cycle cost of an idle recorder is one branch.
    std::uint64_t cadence = 64;
    /// Per-(series, shard) ring budget in samples.  Must be >= 2; when
    /// the ring fills resolution halves (stride doubles).
    std::uint32_t ring_capacity = 512;
    /// Writer slots; shard s of a sharded engine records into slot s.
    std::uint32_t shards = 1;
  };

  using SeriesId = std::uint32_t;

  /// Default-constructed recorder is inactive: want() is false and
  /// record() is a no-op until configure() is called.
  FlightRecorder() = default;
  explicit FlightRecorder(const Config& config) { configure(config); }

  /// (Re)arm the recorder: clears all series and sets the geometry.
  /// Not thread-safe; call before the writer threads start.
  void configure(const Config& config);

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// Register a series (before the writers start).  Registering the
  /// same name twice returns the same id.
  SeriesId series(const std::string& name, SeriesAgg agg,
                  SeriesScope scope = SeriesScope::kInvariant);

  /// True when `cycle` is a sampling point.  Hot-path guard: engines
  /// wrap their sampling block in `if (recorder.want(now))`.
  [[nodiscard]] bool want(std::uint64_t cycle) const noexcept {
    return active_ && cycle % config_.cadence == 0 &&
           detail::runtime_enabled();
  }

  /// Append one sample to (series, shard).  \pre want(cycle) was true
  /// this cycle and every shard records the same cycles in order.
  /// Single writer per (series, shard) cell; never allocates beyond the
  /// ring capacity reserved at configure().
  void record(SeriesId id, std::uint32_t shard, std::uint64_t cycle,
              std::int64_t value);

  /// Merge every series across shards into ordered series (timestamps
  /// strictly increasing).  Shards retain identical timestamps by
  /// construction; defensively, only timestamps present in every
  /// nonempty shard are merged.  Call after writers have joined.
  [[nodiscard]] std::vector<MergedSeries> merged() const;

  /// merged(), truncated to the last `k` points of each series — the
  /// forensics tail dumped on a watchdog trip.
  [[nodiscard]] std::vector<MergedSeries> tail(std::size_t k) const;

  /// Total bytes reserved for sample storage (memory-bound checks).
  [[nodiscard]] std::size_t sample_bytes() const noexcept;

 private:
  struct Cell {
    std::vector<SeriesPoint> ring;   ///< size <= ring_capacity, ordered
    std::uint64_t stride = 1;        ///< in cadence units; doubles on fill
  };
  struct SeriesState {
    std::string name;
    SeriesAgg agg;
    SeriesScope scope;
    std::vector<Cell> cells;  ///< one per shard, single-writer each
  };

  bool active_ = false;
  Config config_{};
  std::vector<SeriesState> series_;
};

#else  // !NBCLOS_OBS_ENABLED — inline no-op stubs

class FlightRecorder {
 public:
  struct Config {
    std::uint64_t cadence = 64;
    std::uint32_t ring_capacity = 512;
    std::uint32_t shards = 1;
  };
  using SeriesId = std::uint32_t;

  FlightRecorder() = default;
  explicit FlightRecorder(const Config&) {}
  void configure(const Config&) {}
  [[nodiscard]] bool active() const noexcept { return false; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  SeriesId series(const std::string&, SeriesAgg,
                  SeriesScope = SeriesScope::kInvariant) {
    return 0;
  }
  [[nodiscard]] bool want(std::uint64_t) const noexcept { return false; }
  void record(SeriesId, std::uint32_t, std::uint64_t, std::int64_t) {}
  [[nodiscard]] std::vector<MergedSeries> merged() const { return {}; }
  [[nodiscard]] std::vector<MergedSeries> tail(std::size_t) const {
    return {};
  }
  [[nodiscard]] std::size_t sample_bytes() const noexcept { return 0; }

 private:
  Config config_{};
};

#endif  // NBCLOS_OBS_ENABLED

}  // namespace nbclos::obs
