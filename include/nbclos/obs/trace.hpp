/// \file trace.hpp
/// \brief Scoped span tracing with Chrome trace_event / JSONL export.
///
/// A TraceSession collects timestamped events into per-thread buffers
/// (no locks on the record path; the global registry of buffers is only
/// locked on a thread's FIRST event).  Supported event phases follow the
/// Chrome trace_event format, so the output of write_chrome() loads
/// directly into chrome://tracing or Perfetto:
///   * "X" complete events — a named span with start + duration, emitted
///     by the RAII ScopedSpan;
///   * "i" instant events — point-in-time markers (e.g. one bisection
///     step with its lo/mid/hi bracket as args);
///   * "C" counter events — a sampled numeric series.
/// write_jsonl() emits the same events one-JSON-object-per-line for
/// stream processing (schema in EXPERIMENTS.md).
///
/// Event names and categories must be string literals (or otherwise
/// outlive the session): the collector stores the pointers, never copies.
///
/// Cost: when no session is active a ScopedSpan is two relaxed loads; an
/// instant/counter emit is one.  When NBCLOS_OBS=OFF everything here is
/// an inline empty stub and instrumented call sites compile away.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "nbclos/obs/metrics.hpp"  // NBCLOS_OBS_ENABLED + kEnabled

#if NBCLOS_OBS_ENABLED
#include <atomic>
#endif

namespace nbclos::obs {

#if NBCLOS_OBS_ENABLED

namespace detail {

/// One trace event; `key[i]`/`val[i]` hold up to kMaxArgs numeric args.
struct TraceEvent {
  static constexpr std::size_t kMaxArgs = 3;
  const char* name = nullptr;
  const char* cat = nullptr;
  char phase = 'X';
  std::uint32_t tid = 0;
  std::uint64_t ts_ns = 0;   ///< nanoseconds since session start
  std::uint64_t dur_ns = 0;  ///< "X" events only
  std::uint8_t argc = 0;
  const char* keys[kMaxArgs] = {nullptr, nullptr, nullptr};
  double vals[kMaxArgs] = {0.0, 0.0, 0.0};
};

[[nodiscard]] bool trace_active() noexcept;
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;
void trace_record(const TraceEvent& event) noexcept;

}  // namespace detail

/// Process-wide trace collector.  start() clears previous events and
/// begins collecting; stop() freezes the buffers for export.  Starting
/// while active is a no-op; the session is not reentrant but is safe to
/// drive from any single controlling thread while workers record.
class TraceSession {
 public:
  static void start();
  static void stop();
  [[nodiscard]] static bool active() noexcept {
    return detail::trace_active();
  }
  /// Number of collected events (stopped sessions only).
  [[nodiscard]] static std::size_t event_count();
  /// Chrome trace_event JSON ({"traceEvents": [...], "metadata": {...}}).
  static void write_chrome(std::ostream& out);
  /// One event per line; see EXPERIMENTS.md §"trace JSONL schema".
  static void write_jsonl(std::ostream& out);
};

/// Emit an instant event ("i") with up to three numeric args.
void trace_instant(const char* name, const char* cat = "nbclos",
                   const char* k0 = nullptr, double v0 = 0.0,
                   const char* k1 = nullptr, double v1 = 0.0,
                   const char* k2 = nullptr, double v2 = 0.0) noexcept;

/// Emit a counter sample ("C"): a named numeric series over time.
void trace_counter(const char* name, double value,
                   const char* series = "value") noexcept;

/// RAII complete-event span ("X").  Records start on construction and
/// duration on destruction; up to three numeric args may be attached
/// before the span closes.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* cat = "nbclos") noexcept {
    if (!detail::trace_active()) return;
    event_.name = name;
    event_.cat = cat;
    event_.ts_ns = detail::trace_now_ns();
    armed_ = true;
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void arg(const char* key, double value) noexcept {
    if (!armed_ || event_.argc >= detail::TraceEvent::kMaxArgs) return;
    event_.keys[event_.argc] = key;
    event_.vals[event_.argc] = value;
    ++event_.argc;
  }

  ~ScopedSpan() {
    if (!armed_ || !detail::trace_active()) return;
    event_.dur_ns = detail::trace_now_ns() - event_.ts_ns;
    detail::trace_record(event_);
  }

 private:
  detail::TraceEvent event_;
  bool armed_ = false;
};

#else  // !NBCLOS_OBS_ENABLED — inline no-op stubs

class TraceSession {
 public:
  static void start() {}
  static void stop() {}
  [[nodiscard]] static bool active() noexcept { return false; }
  [[nodiscard]] static std::size_t event_count() { return 0; }
  static void write_chrome(std::ostream&) {}
  static void write_jsonl(std::ostream&) {}
};

inline void trace_instant(const char*, const char* = "nbclos",
                          const char* = nullptr, double = 0.0,
                          const char* = nullptr, double = 0.0,
                          const char* = nullptr, double = 0.0) noexcept {}

inline void trace_counter(const char*, double,
                          const char* = "value") noexcept {}

class ScopedSpan {
 public:
  explicit ScopedSpan(const char*, const char* = "nbclos") noexcept {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  void arg(const char*, double) noexcept {}
};

#endif  // NBCLOS_OBS_ENABLED

}  // namespace nbclos::obs
