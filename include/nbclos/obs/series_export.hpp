/// \file series_export.hpp
/// \brief JSON and CSV writers for merged FlightRecorder series.
///
/// Both formats carry the same information (schema "nbclos-timeseries-v1",
/// documented in EXPERIMENTS.md and checked by tools/validate_timeseries.py):
///
///   JSON: { "schema": "nbclos-timeseries-v1", "cadence_cycles": C,
///           "ring_capacity": R, "shards": S,
///           "series": [ { "name", "agg" ("sum"|"max"),
///                         "scope" ("invariant"|"shard_topology"),
///                         "stride_cycles", "points": [[t, v], ...] } ] }
///
///   CSV:  one header line `series,agg,scope,stride_cycles,t,v`, then one
///         row per point, series in registration order, points in time
///         order.  The recorder geometry travels in a leading comment
///         line `# nbclos-timeseries-v1 cadence=C ring=R shards=S`.
///
/// The writers work identically under -DNBCLOS_OBS=OFF (they receive an
/// empty series list), so --timeseries-out always produces a valid file.
#pragma once

#include <iosfwd>
#include <vector>

#include "nbclos/obs/flight_recorder.hpp"

namespace nbclos::obs {

void write_timeseries_json(std::ostream& out,
                           const std::vector<MergedSeries>& series,
                           const FlightRecorder::Config& config);

void write_timeseries_csv(std::ostream& out,
                          const std::vector<MergedSeries>& series,
                          const FlightRecorder::Config& config);

/// Dispatch on the file extension: ".csv" writes CSV, everything else
/// JSON.  Returns false when the file could not be opened.
bool write_timeseries_file(const std::string& path,
                           const std::vector<MergedSeries>& series,
                           const FlightRecorder::Config& config);

}  // namespace nbclos::obs
