/// \file metrics.hpp
/// \brief Thread-safe metrics registry: named counters, gauges, and
///        quantile histograms shared by every engine in the library.
///
/// Design (see DESIGN.md §"observability layer"):
///   * handles are resolved ONCE (registry lookup under a mutex) and then
///     held by reference — the hot path never touches the name map;
///   * counters are sharded per thread: an increment is one relaxed
///     fetch_add on a cache-line-padded slot owned by the calling thread,
///     so concurrent engines (sweep workers, verify shards) never contend;
///   * gauges are single relaxed stores (last-writer-wins by design);
///   * histograms reuse util::QuantileHistogram behind per-shard locks
///     that are uncontended in practice (shard index ~ thread);
///   * a snapshot merges all shards without stopping writers.
///
/// When the library is configured with -DNBCLOS_OBS=OFF every type below
/// collapses to an inline empty stub, so instrumented call sites compile
/// to true no-ops (verified by the NBCLOS_OBS=OFF CI / test build).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#ifndef NBCLOS_OBS_ENABLED
#define NBCLOS_OBS_ENABLED 1
#endif

#include "nbclos/util/stats.hpp"

#if NBCLOS_OBS_ENABLED
#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#endif

namespace nbclos::obs {

/// Compile-time switch mirroring the NBCLOS_OBS CMake option; lets
/// call sites use `if constexpr (obs::kEnabled)` for code that should
/// vanish entirely from an OFF build.
inline constexpr bool kEnabled = NBCLOS_OBS_ENABLED != 0;

/// One merged metric value in a snapshot.
struct MetricSample {
  std::string name;
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram } kind =
      Kind::kCounter;
  std::uint64_t count = 0;  ///< counter value / histogram sample count
  std::int64_t gauge = 0;   ///< gauge value (kGauge only)
  double p50 = 0.0, p99 = 0.0, p999 = 0.0;  ///< kHistogram only
  double hist_bucket_width = 0.0;           ///< kHistogram only
};

#if NBCLOS_OBS_ENABLED

namespace detail {

/// Number of cache-line-padded shard slots per counter.  Threads beyond
/// this many share slots (correctness is unaffected; only contention).
inline constexpr std::size_t kShards = 32;

/// Destructive-interference distance; a fixed 64 avoids GCC's
/// -Winterference-size ABI warning and is right for every target we
/// build on (x86-64, aarch64 pad to 64 or 128 — padding more than a
/// line only wastes a little space).
inline constexpr std::size_t kCacheLine = 64;

/// Stable per-thread shard index, assigned on first use.
[[nodiscard]] std::size_t shard_index() noexcept;

/// Global master switch (see obs::set_enabled).  Relaxed: a stale read
/// merely records or skips a few events around the toggle.
[[nodiscard]] bool runtime_enabled() noexcept;

}  // namespace detail

/// Runtime master switch for all metric recording and tracing.  Defaults
/// to on; benches pause it to measure the instrumented-but-idle cost
/// (the compiled-off cost is measured by an NBCLOS_OBS=OFF build).
void set_enabled(bool enabled) noexcept;
[[nodiscard]] bool enabled() noexcept;

/// Monotonic counter.  add() is wait-free: one relaxed fetch_add on the
/// calling thread's padded slot.
class Counter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    if (!detail::runtime_enabled()) return;
    slots_[detail::shard_index()].value.fetch_add(delta,
                                                  std::memory_order_relaxed);
  }

  /// Sum over shards.  Safe concurrently with writers (relaxed loads);
  /// the result is a valid value the counter passed through.
  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& slot : slots_) {
      total += slot.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  void reset() noexcept {
    for (auto& slot : slots_) slot.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(detail::kCacheLine) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Slot, detail::kShards> slots_{};
};

/// Last-writer-wins signed gauge with an additive mode for occupancy
/// tracking (add/sub from concurrent workers).
class Gauge {
 public:
  void set(std::int64_t value) noexcept {
    if (!detail::runtime_enabled()) return;
    value_.store(value, std::memory_order_relaxed);
    update_max(value);
  }
  void add(std::int64_t delta) noexcept {
    if (!detail::runtime_enabled()) return;
    const auto now = value_.fetch_add(delta, std::memory_order_relaxed) + delta;
    update_max(now);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// High-water mark since construction / reset.
  [[nodiscard]] std::int64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  void update_max(std::int64_t candidate) noexcept {
    auto current = max_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !max_.compare_exchange_weak(current, candidate,
                                       std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Sharded quantile histogram: each shard pairs a util::QuantileHistogram
/// with a mutex that is uncontended as long as at most ~kShards threads
/// record concurrently.  Snapshot merges shards (merge is associative and
/// commutative — see tests/util/test_stats.cpp).
class HistogramMetric {
 public:
  HistogramMetric(std::uint64_t max_value, std::size_t max_bins);

  void record(std::uint64_t value) noexcept;

  /// Merged copy of all shards.
  [[nodiscard]] QuantileHistogram merged() const;

  void reset();

 private:
  struct Shard {
    mutable std::mutex mutex;
    QuantileHistogram hist;
    explicit Shard(std::uint64_t max_value, std::size_t max_bins)
        : hist(max_value, max_bins) {}
  };
  std::uint64_t max_value_;
  std::size_t max_bins_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// Name -> instrument registry.  Lookup is mutex-guarded and intended to
/// happen once per engine construction; returned references stay valid
/// for the registry's lifetime (instruments are never removed).
class MetricsRegistry {
 public:
  /// The process-wide registry used by all engines.
  [[nodiscard]] static MetricsRegistry& global();

  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  /// \pre geometry must match across calls with the same name.
  [[nodiscard]] HistogramMetric& histogram(const std::string& name,
                                           std::uint64_t max_value,
                                           std::size_t max_bins = 2048);

  /// Merged view of every instrument, sorted by name.
  [[nodiscard]] std::vector<MetricSample> snapshot() const;

  /// Zero every instrument (benches / tests); handles stay valid.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

#else  // !NBCLOS_OBS_ENABLED — inline no-op stubs

inline void set_enabled(bool) noexcept {}
[[nodiscard]] inline bool enabled() noexcept { return false; }

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
  [[nodiscard]] std::int64_t max() const noexcept { return 0; }
  void reset() noexcept {}
};

class HistogramMetric {
 public:
  void record(std::uint64_t) noexcept {}
  [[nodiscard]] QuantileHistogram merged() const { return QuantileHistogram(1); }
  void reset() noexcept {}
};

class MetricsRegistry {
 public:
  [[nodiscard]] static MetricsRegistry& global() {
    static MetricsRegistry registry;
    return registry;
  }
  [[nodiscard]] Counter& counter(const std::string&) { return counter_; }
  [[nodiscard]] Gauge& gauge(const std::string&) { return gauge_; }
  [[nodiscard]] HistogramMetric& histogram(const std::string&, std::uint64_t,
                                           std::size_t = 2048) {
    return histogram_;
  }
  [[nodiscard]] std::vector<MetricSample> snapshot() const { return {}; }
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  HistogramMetric histogram_;
};

#endif  // NBCLOS_OBS_ENABLED

/// Shorthand used throughout the engines.
[[nodiscard]] inline MetricsRegistry& metrics() {
  return MetricsRegistry::global();
}

}  // namespace nbclos::obs
