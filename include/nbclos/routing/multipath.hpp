/// \file multipath.hpp
/// \brief Traffic-oblivious multi-path deterministic routing (paper §IV-B).
///
/// Packets of one SD pair are spread over a fixed candidate set of top
/// switches, by round-robin, random draw, or hashing — all independent of
/// the traffic pattern.  The paper shows such schemes obey the same
/// nonblocking condition (m >= n^2) as single-path routing: because the
/// moment a particular path is used is unpredictable, Lemma 1 must hold
/// over the *union* of candidate paths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nbclos/topology/fat_tree.hpp"
#include "nbclos/util/prng.hpp"

namespace nbclos {

enum class SpreadPolicy : std::uint8_t {
  kRoundRobin,  ///< packet t of an SD pair uses candidate t mod |C|
  kRandom,      ///< each packet draws a candidate uniformly
  kHash,        ///< candidate chosen by hashing (sd, packet index)
};

[[nodiscard]] std::string to_string(SpreadPolicy policy);

/// Which fixed candidate fan each SD pair spreads over.
enum class CandidateBase : std::uint8_t {
  kSum,   ///< candidate k of (s,d) is top (s + d + k) mod m
  kYuan,  ///< candidate k is top (i*n + j + k) mod m — widens the
          ///< Theorem 3 assignment, so width 1 is exactly the
          ///< nonblocking routing and any width >= 2 breaks Lemma 1
};

class MultipathObliviousRouting {
 public:
  /// Spread every cross SD pair over `width` candidate top switches —
  /// a fixed, pattern-independent fan.  width = m gives full spreading.
  MultipathObliviousRouting(const FoldedClos& ftree, std::uint32_t width,
                            SpreadPolicy policy, std::uint64_t seed = 1,
                            CandidateBase base = CandidateBase::kSum);

  [[nodiscard]] const FoldedClos& ftree() const noexcept { return *ftree_; }
  [[nodiscard]] std::uint32_t width() const noexcept { return width_; }
  [[nodiscard]] SpreadPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::string name() const;

  /// The fixed candidate set for an SD pair (cross pairs only).
  [[nodiscard]] std::vector<TopId> candidates(SDPair sd) const;

  /// Path used by the `packet_index`-th packet of this SD pair.  For
  /// kRandom the draw consumes this object's internal generator, so the
  /// sequence is reproducible from the seed but stateful.
  [[nodiscard]] FtreePath path_for_packet(SDPair sd, std::uint64_t packet_index);

  /// Union of links that packets of this SD pair may ever traverse — the
  /// object Lemma 1 constrains for oblivious multipath schemes.
  [[nodiscard]] std::vector<LinkId> link_footprint(SDPair sd) const;

 private:
  const FoldedClos* ftree_;
  std::uint32_t width_;
  SpreadPolicy policy_;
  CandidateBase base_ = CandidateBase::kSum;
  mutable Xoshiro256 rng_;
};

}  // namespace nbclos
