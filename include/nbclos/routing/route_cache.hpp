/// \file route_cache.hpp
/// \brief Precomputed flat-array (CSR) route storage shared by every
///        engine that replays the same deterministic routing.
///
/// Single-path deterministic routings are pattern-independent, so every
/// SD pair's path can be materialized exactly once and then replayed by
/// the verification engines (thousands of hill-climb restarts), the
/// sweep drivers (dozens of load probes), and the fault machinery (one
/// degraded fabric per failure level) without ever calling route()
/// again.  Two caches cover the library's two path vocabularies:
///
///   * RouteCache        — ftree LinkId runs for FoldedClos routings;
///   * ChannelRouteCache — Network channel runs with dense next-hop
///                         lookup for the packet simulator.
///
/// Both use the same memory layout: one contiguous `uint32_t` link array
/// holding every pair's run back to back, plus a CSR offsets table
/// indexed by src-major pair id — two loads to reach any path, zero
/// pointer chasing, and the whole structure is immutable after
/// construction, so it is shared read-only across worker threads.
///
/// Invalidation: a cache snapshots the routing it was built from.  It
/// must be rebuilt whenever the underlying route function would answer
/// differently — for degraded fabrics that means one cache per failure
/// set (see DESIGN.md "memory layout & route cache" for the rules).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "nbclos/topology/fat_tree.hpp"
#include "nbclos/topology/network.hpp"
#include "nbclos/util/check.hpp"
#include "nbclos/util/mmap_arena.hpp"

namespace nbclos {
class SinglePathRouting;
}

namespace nbclos::routing {

/// All SD-pair link runs of a single-path routing over ftree(n+m, r),
/// flattened: pair (s, d) occupies links()[offsets[s*L+d] ..
/// offsets[s*L+d+1]) in one contiguous array (2 links for direct pairs,
/// 4 for cross pairs, 0 for the diagonal and unroutable pairs).
class RouteCache {
 public:
  /// Per-pair flag bits (degraded fabrics; healthy routings store 0).
  static constexpr std::uint8_t kUnroutable = 1U << 0;
  static constexpr std::uint8_t kFallback = 1U << 1;

  /// Generic builder: `fn(sd, path)` fills `path` and returns flag bits
  /// for every ordered pair with sd.src != sd.dst.  When the returned
  /// flags contain kUnroutable the path is ignored and the pair gets an
  /// empty run.
  using BuildFn = std::function<std::uint8_t(SDPair, FtreePath&)>;
  RouteCache(const FoldedClos& ftree, const BuildFn& fn);

  /// Snapshot a healthy routing (all pairs routable, no flags).
  [[nodiscard]] static RouteCache materialize(const SinglePathRouting& routing);

  [[nodiscard]] std::uint32_t leaf_count() const noexcept { return leafs_; }
  [[nodiscard]] std::uint32_t link_count() const noexcept { return links_in_topology_; }

  /// The link-id run of pair (s, d) — empty for s == d and for
  /// unroutable pairs.  Two indexed loads; no per-call validation in
  /// Release (the verification hot path runs through here).
  [[nodiscard]] std::span<const std::uint32_t> links(std::uint32_t s,
                                                     std::uint32_t d) const {
    NBCLOS_DEBUG_CHECK(s < leafs_ && d < leafs_, "SD pair out of range");
    const std::size_t pair = std::size_t{s} * leafs_ + d;
    const std::uint32_t begin = offsets_[pair];
    return {links_.data() + begin, offsets_[pair + 1] - begin};
  }

  [[nodiscard]] std::uint8_t flags(std::uint32_t s, std::uint32_t d) const {
    NBCLOS_DEBUG_CHECK(s < leafs_ && d < leafs_, "SD pair out of range");
    return flags_[std::size_t{s} * leafs_ + d];
  }
  [[nodiscard]] bool unroutable(std::uint32_t s, std::uint32_t d) const {
    return (flags(s, d) & kUnroutable) != 0;
  }
  [[nodiscard]] bool any_unroutable() const noexcept { return any_unroutable_; }

  [[nodiscard]] std::uint64_t pair_count() const noexcept {
    return std::uint64_t{leafs_} * leafs_;
  }
  /// Resident size of the flattened arrays (reported as an obs gauge).
  [[nodiscard]] std::size_t bytes() const noexcept {
    return links_.capacity() * sizeof(std::uint32_t) +
           offsets_.capacity() * sizeof(std::uint32_t) + flags_.capacity();
  }

  /// Bulk-account `n` cache lookups to the obs registry.  Engines count
  /// locally and flush once per restart/probe so the hot loop never
  /// touches a shared counter.
  static void note_lookups(std::uint64_t n);

 private:
  std::uint32_t leafs_ = 0;
  std::uint32_t links_in_topology_ = 0;
  bool any_unroutable_ = false;
  std::vector<std::uint32_t> offsets_;  ///< leafs^2 + 1 entries, src-major
  std::vector<std::uint32_t> links_;    ///< all runs, back to back
  std::vector<std::uint8_t> flags_;     ///< leafs^2 per-pair flag bytes
};

/// All terminal-pair channel runs of a Network routing, flattened with
/// the same CSR layout, plus the dense next-hop lookup the packet
/// simulator needs (replacing the old per-hop hash map).
///
/// Storage is a `U32Store`: heap-backed by default, or spilled to an
/// unlinked mmap'd file when the `NBCLOS_MMAP_CACHE` environment
/// variable names a backing directory (see util/mmap_arena.hpp) — route
/// tables past ~10^5 terminals are O(T^2) and otherwise exceed RAM.
class ChannelRouteCache {
 public:
  /// Route function over terminal *indices* (positions in
  /// net.terminals()) — the same signature as analysis'
  /// NetworkRouteFn, restated here so routing/ stays below analysis/ in
  /// the library dependency order.
  using RouteFn = std::function<std::vector<std::uint32_t>(SDPair)>;

  /// Routes every ordered terminal pair through `route` (validated for
  /// chaining) and flattens the channel runs.
  ChannelRouteCache(const Network& net, const RouteFn& route);

  [[nodiscard]] const Network& network() const noexcept { return *net_; }
  [[nodiscard]] std::uint32_t terminal_count() const noexcept {
    return terminals_;
  }

  /// Channel run of terminal-index pair (s, d); empty for s == d.
  [[nodiscard]] std::span<const std::uint32_t> channels(std::uint32_t s,
                                                        std::uint32_t d) const {
    NBCLOS_DEBUG_CHECK(s < terminals_ && d < terminals_,
                       "terminal pair out of range");
    const std::size_t pair = std::size_t{s} * terminals_ + d;
    const std::uint32_t begin = offsets_[pair];
    return {channels_.data() + begin, offsets_[pair + 1] - begin};
  }

  /// The outgoing channel of the (src, dst) flow at `vertex` — a walk of
  /// the pair's contiguous run (paths have <= 2·levels hops).  `src` and
  /// `dst` are vertex ids of terminals, as carried by sim::Packet.
  [[nodiscard]] std::uint32_t next_channel_from(std::uint32_t vertex,
                                                std::uint32_t src,
                                                std::uint32_t dst) const;

  /// Total (pair, hop) entries — what the old hash map counted.
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return channels_.bytes() + offsets_.bytes() +
           terminal_index_.capacity() * sizeof(std::uint32_t);
  }

  /// Whether the CSR arrays live in an mmap'd backing file (set by the
  /// NBCLOS_MMAP_CACHE environment variable at construction).
  [[nodiscard]] bool mmap_backed() const noexcept {
    return channels_.file_backed();
  }

  static constexpr std::uint32_t kNotATerminal = UINT32_MAX;

  /// Terminal index of a vertex (kNotATerminal for switches).  Exposed
  /// for the per-shard views, which share this mapping.
  [[nodiscard]] std::uint32_t terminal_index(std::uint32_t vertex) const {
    NBCLOS_DEBUG_CHECK(vertex < terminal_index_.size(),
                       "vertex id out of range");
    return terminal_index_[vertex];
  }

 private:
  const Network* net_;
  std::uint32_t terminals_ = 0;
  std::vector<std::uint32_t> terminal_index_;  ///< vertex id -> terminal index
  U32Store offsets_;                           ///< terminals^2 + 1, src-major
  U32Store channels_;                          ///< all runs, back to back
};

/// Per-shard CSR slice of a ChannelRouteCache: for every terminal pair,
/// only the path channels whose SOURCE vertex is owned by one shard of a
/// contiguous vertex partition.  A shard worker resolving next hops for
/// the vertices it owns touches exactly this view's arrays — a
/// contiguous per-shard arena sized from (and reported like) the PR 5
/// `route_cache.bytes` gauge, as `route_cache.shard.N.bytes`.
class ShardRouteView {
 public:
  /// \param vertex_begin contiguous partition boundaries over vertex ids
  ///        (shard s owns [vertex_begin[s], vertex_begin[s+1])).
  /// \param shard which slice to materialize.
  ShardRouteView(const ChannelRouteCache& cache,
                 std::span<const std::uint32_t> vertex_begin,
                 std::uint32_t shard);

  [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }

  /// Channel subrun of terminal-index pair (s, d) owned by this shard.
  [[nodiscard]] std::span<const std::uint32_t> channels(std::uint32_t s,
                                                        std::uint32_t d) const {
    NBCLOS_DEBUG_CHECK(s < terminals_ && d < terminals_,
                       "terminal pair out of range");
    const std::size_t pair = std::size_t{s} * terminals_ + d;
    const std::uint32_t begin = offsets_[pair];
    return {channels_.data() + begin, offsets_[pair + 1] - begin};
  }

  /// Same contract as ChannelRouteCache::next_channel_from, restricted
  /// to hops departing from this shard's vertices.  \pre `vertex` is
  /// owned by this shard and lies on the pair's path.
  [[nodiscard]] std::uint32_t next_channel_from(std::uint32_t vertex,
                                                std::uint32_t src,
                                                std::uint32_t dst) const;

  [[nodiscard]] std::size_t entry_count() const noexcept {
    return channels_.size();
  }
  [[nodiscard]] std::size_t bytes() const noexcept {
    return channels_.capacity() * sizeof(std::uint32_t) +
           offsets_.capacity() * sizeof(std::uint32_t);
  }

 private:
  const ChannelRouteCache* cache_;
  const Network* net_;
  std::uint32_t terminals_ = 0;
  std::uint32_t shard_ = 0;
  std::vector<std::uint32_t> offsets_;   ///< terminals^2 + 1, src-major
  std::vector<std::uint32_t> channels_;  ///< owned subruns, back to back
};

}  // namespace nbclos::routing
