/// \file single_path.hpp
/// \brief The single-path deterministic routing interface (paper §IV-A).
///
/// A single-path deterministic routing assigns one fixed path to every SD
/// pair, independent of the traffic pattern.  In ftree(n+m, r) a path is
/// fully determined by the top-level switch it crosses (or by being
/// direct), so implementations only choose a TopId per SD pair.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nbclos/topology/fat_tree.hpp"

namespace nbclos {

class SinglePathRouting {
 public:
  explicit SinglePathRouting(const FoldedClos& ftree) : ftree_(&ftree) {}
  virtual ~SinglePathRouting() = default;

  SinglePathRouting(const SinglePathRouting&) = delete;
  SinglePathRouting& operator=(const SinglePathRouting&) = delete;

  [[nodiscard]] const FoldedClos& ftree() const noexcept { return *ftree_; }

  /// Human-readable algorithm name (used in experiment output).
  [[nodiscard]] virtual std::string name() const = 0;

  /// The fixed path for an SD pair.  \pre sd.src != sd.dst.
  [[nodiscard]] FtreePath route(SDPair sd) const {
    NBCLOS_REQUIRE(sd.src != sd.dst, "self-loop SD pair");
    if (!ftree_->needs_top(sd)) return ftree_->direct_path(sd);
    const TopId top = top_for(sd);
    return ftree_->cross_path(sd, top);
  }

  /// Allocation-free route: writes the fixed path into caller scratch.
  /// The verification engine's delta evaluator re-routes <= 4 SD pairs
  /// per hill-climb step through this.  \pre sd.src != sd.dst.
  void route_into(SDPair sd, FtreePath& out) const {
    NBCLOS_DEBUG_CHECK(sd.src != sd.dst, "self-loop SD pair");
    if (!ftree_->needs_top(sd)) {
      out = ftree_->direct_path(sd);
      return;
    }
    out = ftree_->cross_path(sd, top_for(sd));
  }

  /// Routes for a whole communication pattern, in input order.
  [[nodiscard]] std::vector<FtreePath> route_all(
      const std::vector<SDPair>& pattern) const {
    std::vector<FtreePath> paths;
    paths.reserve(pattern.size());
    for (const auto sd : pattern) paths.push_back(route(sd));
    return paths;
  }

  /// route_all into a reused buffer (cleared first) — no allocation once
  /// the buffer has grown to pattern size.
  void route_all_into(const std::vector<SDPair>& pattern,
                      std::vector<FtreePath>& out) const {
    out.clear();
    out.reserve(pattern.size());
    for (const auto sd : pattern) {
      FtreePath path;
      route_into(sd, path);
      out.push_back(path);
    }
  }

 protected:
  /// Choose the top-level switch for a cross-switch SD pair.
  [[nodiscard]] virtual TopId top_for(SDPair sd) const = 0;

 private:
  const FoldedClos* ftree_;
};

}  // namespace nbclos
