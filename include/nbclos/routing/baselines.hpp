/// \file baselines.hpp
/// \brief Deterministic single-path routings used by deployed fat-tree
///        systems, as comparison points for the paper's scheme.
///
/// * DModK — "destination mod k": top switch = dst leaf id mod m.  This
///   is the classic InfiniBand / OpenSM-style static fat-tree routing
///   (every path to a given destination converges on one top switch), the
///   scheme whose permutation behaviour refs [5][7] measured.
/// * DModKSwitch — coarser variant keyed by destination *switch*.
/// * SModK — source-keyed mirror image of DModK.
/// * RandomFixed — a uniformly random but fixed per-SD assignment (what
///   "random routing tables" give you), seeded and reproducible.
#pragma once

#include <vector>

#include "nbclos/routing/single_path.hpp"
#include "nbclos/util/prng.hpp"

namespace nbclos {

class DModKRouting final : public SinglePathRouting {
 public:
  using SinglePathRouting::SinglePathRouting;
  [[nodiscard]] std::string name() const override { return "d-mod-k"; }

 protected:
  [[nodiscard]] TopId top_for(SDPair sd) const override {
    return TopId{sd.dst.value % ftree().m()};
  }
};

class DModKSwitchRouting final : public SinglePathRouting {
 public:
  using SinglePathRouting::SinglePathRouting;
  [[nodiscard]] std::string name() const override { return "dswitch-mod-k"; }

 protected:
  [[nodiscard]] TopId top_for(SDPair sd) const override {
    return TopId{ftree().switch_of(sd.dst).value % ftree().m()};
  }
};

class SModKRouting final : public SinglePathRouting {
 public:
  using SinglePathRouting::SinglePathRouting;
  [[nodiscard]] std::string name() const override { return "s-mod-k"; }

 protected:
  [[nodiscard]] TopId top_for(SDPair sd) const override {
    return TopId{sd.src.value % ftree().m()};
  }
};

/// Fixed random assignment: a reproducible table mapping every cross SD
/// pair to an independently uniform top switch.
class RandomFixedRouting final : public SinglePathRouting {
 public:
  RandomFixedRouting(const FoldedClos& ftree, std::uint64_t seed);
  [[nodiscard]] std::string name() const override { return "random-fixed"; }

 protected:
  [[nodiscard]] TopId top_for(SDPair sd) const override;

 private:
  std::vector<std::uint32_t> table_;  ///< indexed by src*leaf_count + dst
};

}  // namespace nbclos
