/// \file infiniband.hpp
/// \brief Deploying the Theorem 3 routing on destination-routed hardware
///        via multiple LIDs (the paper's ref [12], Lin-Chung-Huang; the
///        InfiniBand LMC mechanism).
///
/// Real switches forward by *destination address only* (a linear
/// forwarding table, LFT: destination LID -> output port).  The Theorem 3
/// assignment, however, depends on the source's local index i as well as
/// the destination's j — it is not expressible with one address per
/// node.  The standard fix, which InfiniBand supports natively (LMC),
/// is to give every destination n LIDs, one per source local index:
///
///   lid(d, i) = n * d + i      (destination leaf d, source local i)
///
/// and program the LFTs so that LID lid(d, i) travels via top switch
/// (i, j = local(d)).  A source (v, i) addressing d picks lid(d, i); the
/// network then realizes exactly the (i, j) path with plain
/// destination-based forwarding.  This module builds those LFTs and a
/// forwarding engine, and the tests/benches verify the LFT-forwarded
/// paths are *identical* to YuanNonblockingRouting's.
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/analysis/network_audit.hpp"
#include "nbclos/topology/fat_tree.hpp"
#include "nbclos/topology/network.hpp"

namespace nbclos {

/// A LID (local identifier): the address packets are forwarded by.
struct Lid {
  std::uint32_t value = 0;
  friend constexpr auto operator<=>(Lid, Lid) = default;
};

class InfinibandFabric {
 public:
  /// Program LFTs for ftree(n+m, r) with m >= n^2 (Theorem 3 regime).
  explicit InfinibandFabric(const FoldedClos& ftree);

  [[nodiscard]] const FoldedClos& ftree() const noexcept { return *ftree_; }
  /// LIDs per destination (the LMC fan-out): n.
  [[nodiscard]] std::uint32_t lids_per_leaf() const noexcept {
    return ftree_->n();
  }
  [[nodiscard]] std::uint32_t lid_count() const noexcept {
    return ftree_->leaf_count() * ftree_->n();
  }

  /// The LID source s uses to reach destination d: lid(d, local(s)).
  [[nodiscard]] Lid lid_for(SDPair sd) const;
  /// Decompose a LID into (destination leaf, source-local index).
  [[nodiscard]] LeafId leaf_of(Lid lid) const;
  [[nodiscard]] std::uint32_t index_of(Lid lid) const;

  /// LFT lookup: the output channel a switch uses for a LID.  `vertex`
  /// must be a switch of build_network(ftree) (channel ids == LinkIds).
  [[nodiscard]] std::uint32_t forward(std::uint32_t vertex, Lid lid) const;

  /// Walk a packet from source to destination using only LFT lookups —
  /// destination-based forwarding end to end.  Returns the channel path.
  [[nodiscard]] ChannelPath forward_path(SDPair sd) const;

  /// Bytes of LFT state per bottom switch (one entry per LID) — the
  /// hardware cost of the multiple-LID trick.
  [[nodiscard]] std::size_t lft_entries_per_switch() const noexcept {
    return lid_count();
  }

 private:
  const FoldedClos* ftree_;
  FtreeNetworkMap map_;
  // lft_bottom_[v][lid] / lft_top_[t][lid]: output channel id.
  std::vector<std::vector<std::uint32_t>> lft_bottom_;
  std::vector<std::vector<std::uint32_t>> lft_top_;
};

}  // namespace nbclos
