/// \file table.hpp
/// \brief Materialized per-SD routing tables.
///
/// A RoutingTable stores an explicit top-switch assignment for a set of
/// SD pairs.  Two uses: (1) snapshot any SinglePathRouting so the packet
/// simulator can do O(1) lookups, and (2) hold pattern-specific
/// assignments produced by the adaptive/centralized routers, which are
/// functions of the traffic pattern rather than the SD pair alone.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nbclos/routing/single_path.hpp"
#include "nbclos/topology/fat_tree.hpp"

namespace nbclos {

class RoutingTable {
 public:
  explicit RoutingTable(const FoldedClos& ftree)
      : ftree_(&ftree),
        entries_(static_cast<std::size_t>(ftree.leaf_count()) *
                     ftree.leaf_count(),
                 kUnassigned) {}

  [[nodiscard]] const FoldedClos& ftree() const noexcept { return *ftree_; }

  /// Record the top switch for a cross SD pair (overwrites).
  void set(SDPair sd, TopId top);

  /// Lookup; nullopt if the pair was never assigned (direct pairs are
  /// never stored — ask the topology instead).  Entries live in a dense
  /// src-major array — materialized tables cover nearly all leaf pairs
  /// anyway, and the simulator consults this once per packet per leaf
  /// switch, so the lookup must be a plain indexed load.
  [[nodiscard]] std::optional<TopId> lookup(SDPair sd) const {
    const auto top = entries_[index(sd)];
    if (top == kUnassigned) return std::nullopt;
    return TopId{top};
  }

  /// Path for an SD pair: direct if same switch, else the stored
  /// assignment.  Throws if a cross pair has no assignment.
  [[nodiscard]] FtreePath path(SDPair sd) const;

  [[nodiscard]] std::size_t size() const noexcept { return assigned_; }

  /// Snapshot a routing algorithm over *all* r(r-1)n^2 cross SD pairs.
  [[nodiscard]] static RoutingTable materialize(const SinglePathRouting& routing);

  /// Build from explicit per-pattern paths (e.g. adaptive output).
  [[nodiscard]] static RoutingTable from_paths(
      const FoldedClos& ftree, const std::vector<FtreePath>& paths);

  /// Highest assigned top-switch index + 1 (0 when empty) — the number of
  /// top switches the assignment actually requires.
  [[nodiscard]] std::uint32_t top_switches_used() const;

 private:
  static constexpr std::uint32_t kUnassigned = UINT32_MAX;

  [[nodiscard]] std::size_t index(SDPair sd) const {
    NBCLOS_DEBUG_CHECK(sd.src.value < ftree_->leaf_count() &&
                           sd.dst.value < ftree_->leaf_count(),
                       "SD pair out of range");
    return static_cast<std::size_t>(sd.src.value) * ftree_->leaf_count() +
           sd.dst.value;
  }

  const FoldedClos* ftree_;
  std::vector<std::uint32_t> entries_;  ///< src-major; kUnassigned = empty
  std::size_t assigned_ = 0;
};

}  // namespace nbclos
