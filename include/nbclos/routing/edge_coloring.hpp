/// \file edge_coloring.hpp
/// \brief Centralized (global-adaptive) permutation routing via bipartite
///        edge coloring — the telephone-world comparator.
///
/// With a centralized controller, ftree(n+m, r) is rearrangeably
/// nonblocking for m >= n (Benes 1962).  The constructive proof is a
/// bipartite edge coloring: model the permutation as a multigraph with
/// source switches on the left, destination switches on the right, and
/// one edge per cross SD pair.  Every vertex has degree <= n (a switch
/// hosts n leaves), and by König's theorem the edges can be properly
/// colored with max-degree colors; assigning color c -> top switch c
/// yields contention-free routes.
///
/// The paper uses this scheme as the baseline that distributed control
/// cannot implement: it needs the whole pattern at once.  We implement it
/// to (a) check our verifier against a known-nonblocking scheme and
/// (b) quantify the price of distributed control (m = n versus m = n^2).
#pragma once

#include <string>
#include <vector>

#include "nbclos/topology/fat_tree.hpp"

namespace nbclos {

/// Properly edge-color a bipartite multigraph given as (left, right) endpoint
/// pairs, using at most max-degree colors (König).  Returns one color per
/// edge.  Exposed for direct testing.
/// \param left_count  number of left vertices
/// \param right_count number of right vertices
/// \param edges       (left, right) endpoint index pairs
[[nodiscard]] std::vector<std::uint32_t> bipartite_edge_coloring(
    std::uint32_t left_count, std::uint32_t right_count,
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& edges);

class CentralizedRearrangeableRouter {
 public:
  explicit CentralizedRearrangeableRouter(const FoldedClos& ftree)
      : ftree_(&ftree) {}

  [[nodiscard]] std::string name() const { return "centralized-coloring"; }
  [[nodiscard]] const FoldedClos& ftree() const noexcept { return *ftree_; }

  /// Contention-free routes for a permutation.  Throws precondition_error
  /// if the pattern is not a permutation or if it needs more colors than
  /// m (cannot happen when m >= n).
  [[nodiscard]] std::vector<FtreePath> route(
      const std::vector<SDPair>& permutation) const;

 private:
  const FoldedClos* ftree_;
};

}  // namespace nbclos
