/// \file kary_updown.hpp
/// \brief Nearest-common-ancestor (up/down) routing on k-ary n-trees —
///        the routing discipline of real fat-tree interconnects
///        (Petrini & Vanneschi; InfiniBand-style destination-based
///        variants), used here to exercise the generic Network/simulator
///        stack on the paper's broader topology family.
///
/// A packet climbs from its source's edge switch to the lowest level
/// whose position digits can still be steered to match the destination
/// (the NCA level), then descends deterministically.  Upward digit
/// choices are free — that freedom is exactly where fat-tree adaptivity
/// lives; we provide a destination-keyed deterministic choice (the
/// D-mod-K analogue) and a uniformly random one.
#pragma once

#include <cstdint>

#include "nbclos/analysis/network_audit.hpp"
#include "nbclos/topology/network.hpp"
#include "nbclos/util/digits.hpp"
#include "nbclos/util/prng.hpp"

namespace nbclos {

class KaryTreeRouter {
 public:
  /// \param net must be the graph produced by build_kary_ntree(k, h).
  KaryTreeRouter(const Network& net, std::uint32_t k, std::uint32_t h);

  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  [[nodiscard]] std::uint32_t h() const noexcept { return h_; }
  [[nodiscard]] std::uint32_t terminal_count() const noexcept {
    return terminals_;
  }

  /// Switch levels the route must climb (0 = same edge switch).
  [[nodiscard]] std::uint32_t nca_level(std::uint32_t src,
                                        std::uint32_t dst) const;

  /// Deterministic route: upward digits are set to the destination's
  /// switch digits immediately (destination-based convergence, like
  /// D-mod-K on two-level fat-trees).
  [[nodiscard]] ChannelPath route(SDPair sd) const;

  /// Random upward digits (oblivious spreading); descent deterministic.
  [[nodiscard]] ChannelPath route_random(SDPair sd, Xoshiro256& rng) const;

 private:
  [[nodiscard]] ChannelPath route_impl(
      SDPair sd, const std::function<std::uint32_t(std::uint32_t)>& up_digit)
      const;
  [[nodiscard]] std::uint32_t switch_vertex(std::uint32_t level,
                                            std::uint32_t pos) const;
  [[nodiscard]] std::uint32_t channel_between(std::uint32_t from,
                                              std::uint32_t to) const;

  const Network* net_;
  std::uint32_t k_;
  std::uint32_t h_;
  std::uint32_t terminals_;
  std::uint32_t per_level_;  ///< k^(h-1) switches per level
};

}  // namespace nbclos
