/// \file yuan_nonblocking.hpp
/// \brief The paper's optimal nonblocking single-path routing (Theorem 3).
///
/// In ftree(n + n^2, r) the n^2 top switches are numbered (i, j) with
/// 0 <= i, j < n.  SD pair (s = (v, i), d = (w, j)) is routed through top
/// switch (i, j), i.e. the top switch indexed by the *local* numbers of
/// the source and destination within their bottom switches.  Theorem 3
/// proves every uplink then carries traffic from exactly one source and
/// every downlink to exactly one destination, so by Lemma 1 the network
/// is nonblocking for every permutation.
#pragma once

#include "nbclos/routing/single_path.hpp"

namespace nbclos {

class YuanNonblockingRouting final : public SinglePathRouting {
 public:
  /// \pre ftree.m() >= ftree.n()^2 (the nonblocking condition, Theorem 2).
  explicit YuanNonblockingRouting(const FoldedClos& ftree)
      : SinglePathRouting(ftree) {
    NBCLOS_REQUIRE(std::uint64_t{ftree.m()} >=
                       std::uint64_t{ftree.n()} * ftree.n(),
                   "Yuan routing requires m >= n^2 top switches");
  }

  [[nodiscard]] std::string name() const override { return "yuan-nonblocking"; }

  /// The (i, j) top switch as a flat index i*n + j.
  [[nodiscard]] static TopId top_index(std::uint32_t n, std::uint32_t i,
                                       std::uint32_t j) {
    NBCLOS_REQUIRE(i < n && j < n, "top coordinates out of range");
    return TopId{i * n + j};
  }

 protected:
  [[nodiscard]] TopId top_for(SDPair sd) const override {
    const auto& ft = ftree();
    return top_index(ft.n(), ft.local_of(sd.src), ft.local_of(sd.dst));
  }
};

}  // namespace nbclos
