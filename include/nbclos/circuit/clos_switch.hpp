/// \file clos_switch.hpp
/// \brief The telephone-communication world: circuit switching on
///        Clos(n, m, r) with a centralized controller.
///
/// This module makes the paper's §II background executable — the regime
/// in which the classical nonblocking conditions were proved and against
/// which the paper defines its computer-communication notion:
///   * strictly nonblocking  (Clos 1953):  m >= 2n-1 — any free middle
///     always exists, independent of history and strategy;
///   * wide-sense nonblocking (Benes):     strategy-dependent (we provide
///     packing/first-fit/random/least-used strategies to experiment);
///   * rearrangeably nonblocking (Benes 1962): m >= n — always realizable
///     if existing circuits may move (implemented via bipartite edge
///     coloring, the Slepian–Duguid argument).
///
/// A connection occupies one first-stage link (input switch -> middle)
/// and one second-stage link (middle -> output switch) exclusively —
/// circuit semantics, unlike the packet world in nbclos::sim.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nbclos/util/prng.hpp"

namespace nbclos::circuit {

/// How the controller picks among free middle switches.
enum class FitStrategy : std::uint8_t {
  kFirstFit,   ///< lowest-index free middle
  kRandom,     ///< uniform over free middles
  kPacking,    ///< most-loaded free middle (Benes' wide-sense heuristic)
  kLeastUsed,  ///< least-loaded free middle (spreading)
};

[[nodiscard]] std::string to_string(FitStrategy strategy);

/// A live circuit.
struct Circuit {
  std::uint32_t id = 0;
  std::uint32_t input_port = 0;
  std::uint32_t output_port = 0;
  std::uint32_t middle = 0;
};

class ClosCircuitSwitch {
 public:
  /// Clos(n, m, r): r input switches with n ports, m middles, r output
  /// switches with n ports.
  ClosCircuitSwitch(std::uint32_t n, std::uint32_t m, std::uint32_t r,
                    std::uint64_t seed = 1);

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t m() const noexcept { return m_; }
  [[nodiscard]] std::uint32_t r() const noexcept { return r_; }
  [[nodiscard]] std::uint32_t port_count() const noexcept { return n_ * r_; }

  [[nodiscard]] bool input_port_busy(std::uint32_t port) const;
  [[nodiscard]] bool output_port_busy(std::uint32_t port) const;
  [[nodiscard]] std::size_t active_circuits() const noexcept {
    return active_count_;
  }

  /// Try to establish input_port -> output_port without disturbing
  /// existing circuits.  Returns the circuit id, or nullopt if every
  /// middle has its first- or second-stage link busy (blocked).
  /// \pre both ports idle.
  [[nodiscard]] std::optional<std::uint32_t> connect(std::uint32_t input_port,
                                                     std::uint32_t output_port,
                                                     FitStrategy strategy);

  /// Establish the circuit, rearranging existing circuits if necessary
  /// (Slepian–Duguid via bipartite edge coloring).  Returns the circuit
  /// id, or nullopt only when even rearrangement cannot help (some
  /// switch already carries more circuits than m — impossible for
  /// m >= n).  Existing circuits may change middles but never drop.
  [[nodiscard]] std::optional<std::uint32_t> connect_with_rearrangement(
      std::uint32_t input_port, std::uint32_t output_port);

  /// Tear down a circuit.  \pre id is active.
  void disconnect(std::uint32_t id);

  [[nodiscard]] std::optional<Circuit> circuit(std::uint32_t id) const;
  [[nodiscard]] std::vector<Circuit> circuits() const;

  /// Internal-consistency audit: every active circuit holds exactly its
  /// two stage links and no link is double-booked.  Throws on violation.
  void validate() const;

 private:
  [[nodiscard]] std::optional<std::uint32_t> pick_middle(
      std::uint32_t in_switch, std::uint32_t out_switch, FitStrategy strategy);
  void occupy(const Circuit& circuit);
  void release(const Circuit& circuit);

  std::uint32_t n_;
  std::uint32_t m_;
  std::uint32_t r_;
  Xoshiro256 rng_;

  static constexpr std::int64_t kFree = -1;
  // first_[i][j]: circuit id using link input-switch i -> middle j.
  std::vector<std::vector<std::int64_t>> first_;
  // second_[j][k]: circuit id using link middle j -> output-switch k.
  std::vector<std::vector<std::int64_t>> second_;
  std::vector<std::uint32_t> middle_load_;  ///< circuits per middle

  std::vector<std::optional<Circuit>> circuits_;  ///< indexed by id
  std::vector<std::int64_t> input_port_circuit_;
  std::vector<std::int64_t> output_port_circuit_;
  std::size_t active_count_ = 0;
};

/// Connect/disconnect churn driver: at each step, with probability
/// proportional to free ports, picks a random idle input/output pair and
/// attempts to connect; otherwise disconnects a random active circuit.
struct ChurnResult {
  std::uint64_t attempts = 0;
  std::uint64_t blocked = 0;
  std::uint64_t rearrangements_needed = 0;  ///< only with rearrangement
  [[nodiscard]] double blocking_probability() const {
    return attempts == 0 ? 0.0
                         : static_cast<double>(blocked) /
                               static_cast<double>(attempts);
  }
};

/// \param target_occupancy fraction of ports to keep busy (0, 1].
/// \param use_rearrangement route blocked calls via
///        connect_with_rearrangement instead of counting them blocked.
[[nodiscard]] ChurnResult run_churn(ClosCircuitSwitch& clos,
                                    FitStrategy strategy, std::uint64_t steps,
                                    double target_occupancy,
                                    bool use_rearrangement, Xoshiro256& rng);

/// Adversarial call-sequence search: random sequences of connects and
/// targeted disconnects, restarted many times, hunting for a state in
/// which some connect request blocks.  Distinguishes wide-sense behaviour
/// below the strict bound: a strategy survives the adversary at a given
/// m iff no blocking state was found within the budget (not a proof —
/// but packing routinely survives budgets that kill spreading).
struct AdversarySearchResult {
  bool blocked_found = false;
  std::uint64_t sequences_tried = 0;
  std::uint64_t calls_placed = 0;
};

[[nodiscard]] AdversarySearchResult adversary_search(
    std::uint32_t n, std::uint32_t m, std::uint32_t r, FitStrategy strategy,
    std::uint32_t restarts, std::uint32_t steps_per_restart, Xoshiro256& rng);

}  // namespace nbclos::circuit
