/// \file path_oracle.hpp
/// \brief Simulator oracle driven by explicit precomputed channel paths —
///        lets the packet simulator run on *any* topology (multi-level
///        recursive fabrics, k-ary n-trees) for which a route function
///        exists, without a bespoke per-topology oracle.
#pragma once

#include <unordered_map>

#include "nbclos/analysis/network_audit.hpp"
#include "nbclos/sim/oracle.hpp"

namespace nbclos::sim {

class ExplicitPathOracle final : public RoutingOracle {
 public:
  /// Precompute next-hop entries for every ordered terminal pair using
  /// the route function (validated for chaining).
  ExplicitPathOracle(const Network& net, const NetworkRouteFn& route,
                     std::string name = "explicit-path");

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::uint32_t next_channel(const SimView& view,
                                           std::uint32_t vertex,
                                           const Packet& packet) override;

  [[nodiscard]] std::size_t entry_count() const noexcept {
    return next_hop_.size();
  }

 private:
  static std::uint64_t key(std::uint32_t vertex, std::uint32_t src,
                           std::uint32_t dst) noexcept {
    // Vertex/terminal ids are < 2^21 in every fabric we build.
    return (std::uint64_t{vertex} << 42) | (std::uint64_t{src} << 21) | dst;
  }

  std::string name_;
  std::unordered_map<std::uint64_t, std::uint32_t> next_hop_;
};

}  // namespace nbclos::sim
