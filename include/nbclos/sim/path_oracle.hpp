/// \file path_oracle.hpp
/// \brief Simulator oracle driven by explicit precomputed channel paths —
///        lets the packet simulator run on *any* topology (multi-level
///        recursive fabrics, k-ary n-trees) for which a route function
///        exists, without a bespoke per-topology oracle.
#pragma once

#include <memory>

#include "nbclos/analysis/network_audit.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/sim/oracle.hpp"

namespace nbclos::sim {

class ExplicitPathOracle final : public RoutingOracle {
 public:
  /// Precompute the channel run of every ordered terminal pair using the
  /// route function (validated for chaining) into a private cache.
  ExplicitPathOracle(const Network& net, const NetworkRouteFn& route,
                     std::string name = "explicit-path");

  /// Share an already-materialized cache — e.g. one built once per
  /// fabric and replayed across many simulator runs.
  ExplicitPathOracle(std::shared_ptr<const routing::ChannelRouteCache> cache,
                     std::string name = "explicit-path");

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::uint32_t next_channel(const SimView& view,
                                           std::uint32_t vertex,
                                           const Packet& packet) override;

  /// Total (pair, hop) next-hop entries available.
  [[nodiscard]] std::size_t entry_count() const noexcept {
    return cache_->entry_count();
  }

  [[nodiscard]] const routing::ChannelRouteCache& cache() const noexcept {
    return *cache_;
  }

 private:
  std::string name_;
  std::shared_ptr<const routing::ChannelRouteCache> cache_;
};

}  // namespace nbclos::sim
