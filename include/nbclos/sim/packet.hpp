/// \file packet.hpp
/// \brief The unit of traffic in the packet simulator.
#pragma once

#include <cstdint>

namespace nbclos::sim {

struct Packet {
  std::uint64_t id = 0;
  std::uint32_t src_terminal = 0;  ///< network vertex id of the source
  std::uint32_t dst_terminal = 0;  ///< network vertex id of the destination
  std::uint32_t size_flits = 1;    ///< serialization delay per link, cycles
  std::uint64_t injected_cycle = 0;
  /// Sequence number within its (src, dst) flow — lets oblivious
  /// multipath oracles spread deterministically.
  std::uint64_t flow_sequence = 0;
};

}  // namespace nbclos::sim
