/// \file traffic.hpp
/// \brief Traffic patterns for the packet simulator.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/util/prng.hpp"

namespace nbclos::sim {

/// Destination selection per injected packet.  Permutation traffic fixes
/// one destination per source (the paper's communication model); uniform
/// and hotspot draw per packet.
class TrafficPattern {
 public:
  /// Fixed destination per source from a permutation; sources absent
  /// from the permutation inject nothing.
  [[nodiscard]] static TrafficPattern permutation(const Permutation& pattern,
                                                  std::uint32_t terminal_count);
  /// Uniform random destination (excluding self).
  [[nodiscard]] static TrafficPattern uniform(std::uint32_t terminal_count);
  /// With probability `fraction` target the hotspot terminal, otherwise
  /// uniform.
  [[nodiscard]] static TrafficPattern hotspot(std::uint32_t terminal_count,
                                              std::uint32_t hotspot_terminal,
                                              double fraction);

  [[nodiscard]] std::string name() const { return name_; }
  [[nodiscard]] std::uint32_t terminal_count() const noexcept {
    return terminal_count_;
  }

  /// Destination for the next packet from `src`; nullopt = src is silent.
  [[nodiscard]] std::optional<std::uint32_t> destination(std::uint32_t src,
                                                         Xoshiro256& rng) const;

 private:
  enum class Kind : std::uint8_t { kPermutation, kUniform, kHotspot };

  Kind kind_ = Kind::kUniform;
  std::uint32_t terminal_count_ = 0;
  std::string name_;
  std::vector<std::int64_t> fixed_destination_;  ///< -1 = silent
  std::uint32_t hotspot_terminal_ = 0;
  double hotspot_fraction_ = 0.0;
};

}  // namespace nbclos::sim
