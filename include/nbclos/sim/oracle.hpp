/// \file oracle.hpp
/// \brief Per-hop routing decisions for the packet simulator.
///
/// An oracle answers: "this packet sits at this vertex — which outgoing
/// channel next?"  Oracles only see the SimView (local queue occupancy),
/// which is exactly the information a distributed switch has; this is how
/// the simulator stays faithful to the paper's "computer communication
/// environment".
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "nbclos/routing/table.hpp"
#include "nbclos/sim/packet.hpp"
#include "nbclos/topology/network.hpp"
#include "nbclos/util/prng.hpp"

namespace nbclos::sim {

/// Read-only view of simulator state an oracle may consult.  Local
/// adaptivity = looking at the occupancy of this switch's own output
/// queues; nothing else is exposed.
class SimView {
 public:
  SimView(const Network& net, const std::vector<std::uint32_t>& queue_depth)
      : net_(&net), queue_depth_(&queue_depth) {}

  [[nodiscard]] const Network& network() const noexcept { return *net_; }
  /// Packets currently waiting on channel c's output queue.
  [[nodiscard]] std::uint32_t queue_depth(std::uint32_t channel) const {
    return (*queue_depth_)[channel];
  }

 private:
  const Network* net_;
  const std::vector<std::uint32_t>* queue_depth_;
};

class RoutingOracle {
 public:
  virtual ~RoutingOracle() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// The outgoing channel for `packet` at `vertex`.
  [[nodiscard]] virtual std::uint32_t next_channel(const SimView& view,
                                                   std::uint32_t vertex,
                                                   const Packet& packet) = 0;
};

/// How a fat-tree oracle picks the uplink for cross-switch packets.
enum class UplinkPolicy : std::uint8_t {
  kTable,       ///< per-SD fixed top switch from a RoutingTable
  kRandom,      ///< uniform random top switch per packet (oblivious)
  kLeastQueue,  ///< top switch whose uplink queue is shortest (local adaptive)
  kDModK,       ///< dst leaf id mod m (computed on the fly, no table)
};

/// Oracle for ftree(n+m, r) networks built with build_network(): decides
/// up at the bottom switch (policy-dependent), down is forced.
class FtreeOracle final : public RoutingOracle {
 public:
  /// \param table required iff policy == kTable (not owned; must outlive).
  FtreeOracle(const FoldedClos& ftree, UplinkPolicy policy,
              const RoutingTable* table = nullptr, std::uint64_t seed = 7);
  ~FtreeOracle() override;

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t next_channel(const SimView& view,
                                           std::uint32_t vertex,
                                           const Packet& packet) override;

  /// Cross-switch uplink choices made so far (the policy-dependent
  /// decisions; injections, descents, and local delivery are forced).
  [[nodiscard]] std::uint64_t uplink_decisions() const noexcept {
    return uplink_decisions_;
  }

 private:
  const FoldedClos* ftree_;
  FtreeNetworkMap map_;
  UplinkPolicy policy_;
  const RoutingTable* table_;
  Xoshiro256 rng_;
  // Accumulated locally (one plain increment on the hot path) and flushed
  // to the obs registry once, on destruction.
  std::uint64_t uplink_decisions_ = 0;
};

/// Oracle for the single crossbar from build_crossbar().
class CrossbarOracle final : public RoutingOracle {
 public:
  explicit CrossbarOracle(std::uint32_t ports) : ports_(ports) {}
  [[nodiscard]] std::string name() const override { return "crossbar"; }
  [[nodiscard]] std::uint32_t next_channel(const SimView& view,
                                           std::uint32_t vertex,
                                           const Packet& packet) override;

 private:
  std::uint32_t ports_;
};

}  // namespace nbclos::sim
