/// \file injection_rng.hpp
/// \brief Counter-based injection randomness shared by PacketSim (opt-in)
///        and ShardedSim (always).
///
/// The legacy injection process draws from one sequential Xoshiro256
/// stream, so every terminal's draw depends on every earlier terminal's
/// draw — correct, but inherently serial.  The counter discipline makes
/// the randomness for (cycle, terminal) a pure function of
/// (seed, cycle, terminal): a SplitMix64 generator is keyed by mixing the
/// three values, the first draw decides the Bernoulli injection, and any
/// further randomness the traffic pattern needs (uniform/hotspot
/// destinations) comes from a Xoshiro256 seeded by the second draw.  Any
/// engine — single-threaded or sharded, at any shard count — reproduces
/// the identical injection stream regardless of which worker evaluates
/// which terminal, which is what makes the sharded golden-identity
/// contract possible (see DESIGN.md §"sharded memory layout").
#pragma once

#include <cstdint>

#include "nbclos/util/prng.hpp"

namespace nbclos::sim {

/// SplitMix64 state for the (seed, cycle, terminal) draw.  The odd
/// multipliers decorrelate neighboring cycles/terminals; SplitMix64's
/// output mix does the rest.
[[nodiscard]] inline constexpr std::uint64_t injection_counter_state(
    std::uint64_t seed, std::uint64_t cycle, std::uint32_t terminal) noexcept {
  return seed + cycle * 0x9E3779B97F4A7C15ULL +
         (std::uint64_t{terminal} + 1) * 0xBF58476D1CE4E5B9ULL;
}

/// Bernoulli draw with the same uniform01 mapping Xoshiro256 uses, so the
/// acceptance region for a given probability is bit-identical.
[[nodiscard]] inline bool injection_bernoulli(SplitMix64& sm,
                                              double p) noexcept {
  return static_cast<double>(sm.next() >> 11) * 0x1.0p-53 < p;
}

}  // namespace nbclos::sim
