/// \file sharded.hpp
/// \brief Switch-partitioned packet simulation with epoch-synchronized
///        channel exchange.
///
/// `ShardedSim` splits a `PacketSim`-equivalent cycle simulation across S
/// shard workers.  Switches (and the ring-buffer queue pools behind them)
/// are partitioned into per-shard arenas by a deterministic, contiguous,
/// out-channel-balanced vertex cut (`ShardPlan`); every channel is owned
/// by the shard of its SOURCE vertex, so a queue, its in-flight register,
/// and its round-robin arbitration state all live in exactly one shard's
/// arena and are never touched by another worker.
///
/// Per cycle, each shard runs three phases separated by two
/// `std::barrier` epochs (the Graphite phase-exchange idiom):
///
///   A. faults + arrivals: deliver terminal-bound packets, route the
///      rest (pure `ShardRouter` — no shared state), and emit an
///      admission *proposal* per candidate to the owner of the chosen
///      next channel: a local list when the owner is this shard, else a
///      per-(src, dst)-shard SPSC mailbox;
///   -- barrier 1 (every proposal is visible to its target's owner) --
///   B. admission: merge local + mailbox proposals, sort by
///      (target, proposing channel), and run PacketSim's per-queue
///      round-robin arbitration verbatim; winners enter the target
///      queue, and every proposer gets an accept/reject *ack* (local or
///      via the reverse mailboxes);
///   -- barrier 2 (every ack is visible to its proposer's owner) --
///   C. resolve acks (losers stall on their channel, exactly
///      PacketSim's backpressure), start transmissions, inject new
///      packets with the counter-based RNG (injection_rng.hpp), and
///      record this cycle's switch-queue depth sum.
///
/// Mailbox safety needs no third barrier: a proposal box written in
/// A(n) is drained by its reader in B(n), which happens-before the
/// writer's next write in A(n+1) via barrier 2 of cycle n; an ack box
/// written in B(n) is drained in C(n), which happens-before the next
/// write in B(n+1) via barrier 1 of cycle n+1.
///
/// Determinism contract: because the cut is deterministic, proposals are
/// merged in sorted order, round-robin state transfers verbatim, and all
/// merged statistics use exact integer arithmetic (replayed in cycle
/// order where PacketSim streams doubles), a run is **bit-identical at
/// any shard count** and bit-identical to `PacketSim` run with
/// `SimConfig::counter_injection` and the same `ShardRouter` (via
/// `ShardRouterOracle`).  The golden tests in tests/sim/test_sharded.cpp
/// assert every `SimResult` field with EXPECT_EQ.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "nbclos/fault/degraded_view.hpp"
#include "nbclos/sim/engine.hpp"
#include "nbclos/sim/shard_exchange.hpp"
#include "nbclos/sim/shard_router.hpp"
#include "nbclos/sim/traffic.hpp"
#include "nbclos/topology/network.hpp"
#include "nbclos/util/stats.hpp"

namespace nbclos::sim {

class ShardedSim {
 public:
  /// Engine-health telemetry for one run (valid after run()).
  struct Telemetry {
    std::uint64_t cross_shard_flits = 0;  ///< flits proposed via mailboxes
    std::uint64_t mailbox_peak = 0;       ///< max proposals in one box drain
    /// Packets still in the system when the run ended (in flight or
    /// queued) — with injected/delivered/dropped this closes the
    /// conservation identity injected == delivered + dropped + remaining.
    std::uint64_t remaining_packets = 0;
  };

  /// All references must outlive the simulator.  Unlike PacketSim the
  /// router must be pure (see shard_router.hpp) and `degraded` is taken
  /// by const reference: every shard keeps a private copy and applies
  /// the same `fault_events` schedule at the same cycles, so the copies
  /// never diverge.  Injection always uses the counter-based RNG.
  ShardedSim(const Network& net, const ShardRouter& router,
             const TrafficPattern& traffic, SimConfig config,
             std::uint32_t shards,
             const fault::DegradedView* degraded = nullptr,
             std::vector<fault::FaultEvent> fault_events = {});
  ~ShardedSim();

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  /// Run warmup + measurement across all shard workers; returns the
  /// merged aggregate results (bit-identical at any shard count).
  [[nodiscard]] SimResult run();

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return plan_.shard_count;
  }
  [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const Telemetry& telemetry() const noexcept {
    return telemetry_;
  }
  /// Resident bytes of the per-shard simulation arenas (queue pools,
  /// flight registers, per-channel state) — what the scale benches report
  /// as bytes/terminal.
  [[nodiscard]] std::size_t arena_bytes() const noexcept;

  /// The per-epoch time-series recorder (inactive unless
  /// SimConfig::record_timeseries).  Every shard samples the same global
  /// cycles into its own ring slot; merged() aggregates by exact integer
  /// sum/max, and the kInvariant series are bit-identical to a serial
  /// PacketSim recording at any shard count.  Valid after run().
  [[nodiscard]] const obs::FlightRecorder& recorder() const {
    return recorder_;
  }

 private:
  struct Shard;
  struct Proposal {
    std::uint32_t target = 0;  ///< proposed next channel (global id)
    std::uint32_t from = 0;    ///< proposing channel (global id)
    Packet packet;
  };
  struct Ack {
    std::uint32_t from = 0;  ///< proposing channel (global id)
    bool accepted = false;
  };

  void run_shard(std::uint32_t s);
  void init_shard_arena(std::uint32_t s);  ///< called on the worker thread
  void cycle_faults(Shard& sh, std::uint64_t now);
  void phase_propose(Shard& sh, std::uint64_t now, bool measuring);
  void phase_admit(Shard& sh);
  void phase_resolve(Shard& sh, std::uint64_t now);
  void deliver(Shard& sh, const Packet& packet, std::uint64_t now,
               bool measuring);
  void queue_push(Shard& sh, std::uint32_t channel, const Packet& packet);
  [[nodiscard]] Packet queue_pop(Shard& sh, std::uint32_t channel);
  void queue_clear(Shard& sh, std::uint32_t channel);
  void send_ack(Shard& sh, std::uint32_t from, bool accepted);
  [[nodiscard]] bool channel_usable(const Shard& sh,
                                    std::uint32_t channel) const;
  [[nodiscard]] SimResult merge_results();
  void flush_obs(double wall_seconds);
  void arm_recorder();
  void sample_recorder(Shard& sh, std::uint64_t now);

  const Network* net_;
  const ShardRouter* router_;
  const TrafficPattern* traffic_;
  SimConfig config_;
  std::vector<fault::FaultEvent> fault_events_;  ///< sorted by cycle
  const fault::DegradedView* degraded_ = nullptr;  ///< copied per shard
  ShardPlan plan_;
  std::uint32_t terminal_count_ = 0;
  double packet_rate_ = 0.0;

  std::vector<std::unique_ptr<Shard>> shards_;
  /// SPSC mailboxes (shard_exchange.hpp): written in disjoint epoch
  /// windows — proposals downstream in phase A, acks upstream in B.
  MailboxGrid<Proposal> proposal_box_;
  MailboxGrid<Ack> ack_box_;

  std::unique_ptr<ShardSync> sync_;
  NumaTopology numa_;
  Telemetry telemetry_;
  obs::FlightRecorder recorder_;
  obs::FlightRecorder::SeriesId rec_queue_depth_ = 0;
  obs::FlightRecorder::SeriesId rec_active_flying_ = 0;
  obs::FlightRecorder::SeriesId rec_active_sendable_ = 0;
  obs::FlightRecorder::SeriesId rec_busy_flits_ = 0;
  obs::FlightRecorder::SeriesId rec_injected_ = 0;
  obs::FlightRecorder::SeriesId rec_delivered_ = 0;
  obs::FlightRecorder::SeriesId rec_mailbox_flits_ = 0;
  obs::FlightRecorder::SeriesId rec_mailbox_peak_ = 0;
  bool ran_ = false;
};

/// Sweep injection rates through ShardedSim — the sharded counterpart of
/// the serial load_sweep driver.  Each probe constructs a fresh engine
/// (private degraded copies per shard), so results are independent of
/// probe order and identical at any shard count.
[[nodiscard]] std::vector<SimResult> load_sweep_sharded(
    const Network& net, const ShardRouter& router,
    const TrafficPattern& traffic, const SimConfig& base,
    const std::vector<double>& rates, std::uint32_t shards,
    const fault::DegradedView* degraded = nullptr,
    const std::vector<fault::FaultEvent>& fault_events = {});

}  // namespace nbclos::sim
