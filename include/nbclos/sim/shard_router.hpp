/// \file shard_router.hpp
/// \brief Pure (stateless, thread-safe) next-hop providers for the
///        sharded simulation engine.
///
/// `ShardedSim` consults the router concurrently from every shard
/// worker, so the routing decision must be a pure function of
/// (vertex, packet): no SimView, no internal RNG, no mutation.  That
/// rules out the adaptive and random `RoutingOracle` policies by design
/// — a distributed simulation can only be bit-identical to a serial one
/// when per-hop decisions do not depend on global queue state.  Three
/// routers cover the library's deterministic policies:
///
///   * `KaryDmodkRouter`  — O(1) digit arithmetic on `build_kary_ntree`
///     networks, reproducing `KaryTreeRouter::route` paths without
///     materializing any table (the per-pair `ChannelRouteCache` is
///     O(T^2) and simply cannot exist at 10^6 terminals);
///   * `FtreeDmodkRouter` — O(1) index arithmetic on `build_network`
///     ftree fabrics (d-mod-k uplinks, forced descent);
///   * `CachedShardRouter` — replays any deterministic single-path
///     routing from a shared read-only `ChannelRouteCache`, optionally
///     through per-shard CSR views for arena locality.
///
/// `ShardRouterOracle` adapts any ShardRouter to the `RoutingOracle`
/// interface so `PacketSim` can run the *identical* policy — that is how
/// the golden tests prove `ShardedSim(k) == PacketSim` bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nbclos/core/multilevel.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/sim/oracle.hpp"
#include "nbclos/sim/packet.hpp"
#include "nbclos/topology/network.hpp"

namespace nbclos::sim {

/// Pure next-hop interface: must be const, deterministic, and safe to
/// call from any number of threads concurrently.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Outgoing channel for `packet` at `vertex` (a terminal source or a
  /// switch), or fault::kNoRoute when the policy has no next hop.
  [[nodiscard]] virtual std::uint32_t next_channel(
      std::uint32_t vertex, const Packet& packet) const = 0;
};

/// Destination-keyed up*/down* routing on `build_kary_ntree(k, h)`
/// networks in O(1) per hop, with zero per-pair state.
///
/// The builder's channel numbering is formulaic — terminal p's uplink is
/// channel 2p and its downlink 2p+1; the up channel from switch (l, w)
/// toward digit d is B + 2*((l*P + w)*k + d) with B = 2*k^h and
/// P = k^(h-1), and the matching down channel is its successor — so the
/// next hop is pure digit arithmetic.  Ascent at level l rewrites digit
/// l to the destination's digit (the k-ary analogue of d-mod-k: the
/// uplink choice is keyed by the destination, spreading flows across the
/// tree deterministically); a switch descends exactly when the
/// destination's edge switch lies in its subtree, i.e. all digits >= its
/// level agree.  The resulting paths are exactly
/// `KaryTreeRouter::route`'s (verified by tests/sim/test_shard_router).
class KaryDmodkRouter final : public ShardRouter {
 public:
  /// \param net must have been produced by build_kary_ntree(k, h); the
  ///        constructor checks the vertex/channel census.
  KaryDmodkRouter(const Network& net, std::uint32_t k, std::uint32_t h);

  [[nodiscard]] std::string name() const override { return "kary-dmodk"; }
  [[nodiscard]] std::uint32_t next_channel(
      std::uint32_t vertex, const Packet& packet) const override;

  [[nodiscard]] std::uint32_t k() const noexcept { return k_; }
  [[nodiscard]] std::uint32_t height() const noexcept { return h_; }

 private:
  std::uint32_t k_ = 0;
  std::uint32_t h_ = 0;
  std::uint32_t terminals_ = 0;      ///< k^h
  std::uint32_t per_level_ = 0;      ///< k^(h-1)
  std::uint32_t inter_base_ = 0;     ///< first inter-switch channel id (2T)
  std::vector<std::uint64_t> powk_;  ///< k^0 .. k^(h-1)
};

/// d-mod-k on `build_network(FoldedClos)` fabrics in O(1) per hop: the
/// uplink at a bottom switch is `dst mod m`, descent is forced.  Same
/// paths as FtreeOracle's kDModK policy, without its decision counter
/// (which would be a data race across shards).
class FtreeDmodkRouter final : public ShardRouter {
 public:
  explicit FtreeDmodkRouter(const FoldedClos& ftree)
      : ftree_(&ftree), map_{ftree.params()} {}

  [[nodiscard]] std::string name() const override { return "ftree-dmodk"; }
  [[nodiscard]] std::uint32_t next_channel(
      std::uint32_t vertex, const Packet& packet) const override;

 private:
  const FoldedClos* ftree_;
  FtreeNetworkMap map_;
};

/// The recursive Theorem 3 (i, j) rule on a `MultiLevelFabric`, as a
/// pure router: each hop re-derives the fabric's fixed single path for
/// the packet's SD pair and returns the path channel leaving `vertex`.
/// Deriving the path is O(levels) digit recursion with no shared state,
/// so the router is safe from every shard worker — and, unlike a
/// materialized `ChannelRouteCache`, needs no O(T^2) table.  The leaf
/// index space of the fabric IS its terminal vertex id space (leaves are
/// vertices 0..P-1), so packets address it directly.
class RecursiveShardRouter final : public ShardRouter {
 public:
  /// \param fabric must outlive the router; its network must be the one
  ///        the simulation runs on.
  explicit RecursiveShardRouter(const MultiLevelFabric& fabric);

  [[nodiscard]] std::string name() const override {
    return "multilevel-thm3";
  }
  [[nodiscard]] std::uint32_t next_channel(
      std::uint32_t vertex, const Packet& packet) const override;

 private:
  const MultiLevelFabric* fabric_;
  const Network* net_;
};

/// Replays a deterministic routing from a shared `ChannelRouteCache`.
/// With per-shard views attached (see `attach_views`), each lookup is
/// answered from the CSR slice owned by the vertex's shard — the arrays
/// a worker touches are the ones sized for (and reported by) its
/// `route_cache.shard.N.bytes` gauge.
class CachedShardRouter final : public ShardRouter {
 public:
  explicit CachedShardRouter(const routing::ChannelRouteCache& cache)
      : cache_(&cache) {}

  /// Build per-shard CSR views over the vertex partition
  /// (`vertex_begin` has shard_count+1 entries).  Lookups for a vertex
  /// then go through the view of the shard owning that vertex.
  void attach_views(std::span<const std::uint32_t> vertex_begin);

  [[nodiscard]] std::string name() const override { return "cached"; }
  [[nodiscard]] std::uint32_t next_channel(
      std::uint32_t vertex, const Packet& packet) const override;

  [[nodiscard]] const std::vector<routing::ShardRouteView>& views() const {
    return views_;
  }

 private:
  const routing::ChannelRouteCache* cache_;
  std::vector<routing::ShardRouteView> views_;
  std::vector<std::uint32_t> vertex_begin_;  ///< partition, when views exist
};

/// RoutingOracle adapter: lets PacketSim run the exact policy a
/// ShardedSim run uses, for golden cross-engine comparisons.
class ShardRouterOracle final : public RoutingOracle {
 public:
  explicit ShardRouterOracle(const ShardRouter& router) : router_(&router) {}

  [[nodiscard]] std::string name() const override { return router_->name(); }
  [[nodiscard]] std::uint32_t next_channel(const SimView& /*view*/,
                                           std::uint32_t vertex,
                                           const Packet& packet) override {
    return router_->next_channel(vertex, packet);
  }

 private:
  const ShardRouter* router_;
};

}  // namespace nbclos::sim
