/// \file shard_exchange.hpp
/// \brief The shared shard-exchange layer: deterministic vertex
///        partitioning (ShardPlan), SPSC epoch mailboxes (MailboxGrid),
///        the barrier + failure latch (ShardSync), and libnuma-free NUMA
///        placement helpers.
///
/// Both sharded engines — `sim::ShardedSim` (packet granularity) and
/// `flow::ShardedFlowSim` (flit granularity, credits) — run the same
/// epoch discipline: per cycle, each shard executes phases separated by
/// two `std::barrier` epochs, and cross-shard messages travel in
/// single-producer single-consumer mailboxes indexed [src * S + dst].
/// Box (src, dst) is written only by shard `src` and drained (read +
/// cleared) only by shard `dst`, in disjoint epoch windows:
///
///   * a box written in phase A of cycle n is drained in phase B of
///     cycle n, which happens-before the writer's next write in
///     A(n + 1) via barrier 2 of cycle n;
///   * a box written in B(n) is drained in C(n), which happens-before
///     the next write in B(n + 1) via barrier 1 of cycle n + 1.
///
/// Two barriers therefore suffice for box reuse regardless of how many
/// mailbox *classes* an engine exchanges: ShardedSim uses two (admission
/// proposals downstream, acks upstream); ShardedFlowSim uses three
/// (transmit proposals downstream, transmit grants upstream, and credit
/// returns upstream — credit-return messages flow opposite to flits,
/// feeding the upstream shard's CreditLedger).
///
/// NUMA awareness is opt-in and degrades gracefully: `NumaTopology`
/// parses /sys/devices/system/node (no libnuma dependency — the build
/// containers don't ship it), `pin_current_thread` wraps
/// `sched_setaffinity`, and engines allocate their per-shard arenas
/// inside the worker threads (first touch), so with pinning enabled each
/// arena's pages land on the worker's node.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <exception>
#include <mutex>
#include <vector>

#include "nbclos/topology/network.hpp"
#include "nbclos/util/check.hpp"

namespace nbclos::sim {

/// Deterministic contiguous vertex partition, balanced by out-channel
/// counts (a proxy for queue + in-flight state, which is what each shard
/// arena actually holds).  Shard s owns vertices
/// [vertex_begin[s], vertex_begin[s+1]) and every channel whose source
/// lies in that range.  Library builders number terminals [0, T) first,
/// so each shard also owns a contiguous terminal range and injection is
/// always shard-local.
struct ShardPlan {
  std::uint32_t shard_count = 1;
  std::vector<std::uint32_t> vertex_begin;  ///< shard_count + 1 boundaries
  std::vector<std::uint8_t> channel_owner;  ///< per channel: owning shard
  /// Per channel: index into the owner's local per-channel arrays (local
  /// ids ascend with global channel id within each shard, so per-shard
  /// sorted sweeps visit channels in global order).
  std::vector<std::uint32_t> channel_local;
  std::vector<std::vector<std::uint32_t>> shard_channels;  ///< global ids, asc

  /// Build the plan for `net` (requested shard count is clamped to
  /// [1, min(vertex_count, 64)]).  Pure function of (net, shards).
  [[nodiscard]] static ShardPlan build(const Network& net,
                                       std::uint32_t shards);

  [[nodiscard]] std::uint32_t shard_of_vertex(std::uint32_t v) const {
    std::uint32_t lo = 0;
    std::uint32_t hi = shard_count;
    while (hi - lo > 1) {
      const std::uint32_t mid = lo + (hi - lo) / 2;
      if (vertex_begin[mid] <= v) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    return lo;
  }
};

/// SPSC epoch mailboxes for one message class: box(src, dst) is written
/// only by shard src and drained only by shard dst (see file comment for
/// the reuse proof).  One grid per message class an engine exchanges.
template <typename T>
class MailboxGrid {
 public:
  MailboxGrid() = default;
  explicit MailboxGrid(std::uint32_t shards)
      : shards_(shards), boxes_(std::size_t{shards} * shards) {}

  [[nodiscard]] std::vector<T>& box(std::uint32_t src, std::uint32_t dst) {
    NBCLOS_DEBUG_CHECK(src < shards_ && dst < shards_,
                       "mailbox shard index out of range");
    return boxes_[std::size_t{src} * shards_ + dst];
  }

  /// Drain every box addressed to `dst` in ascending src order, calling
  /// `fn(src, box)` for each non-empty box and clearing it afterwards.
  /// Only shard `dst` may call this (SPSC contract).
  template <typename Fn>
  void drain_to(std::uint32_t dst, Fn&& fn) {
    for (std::uint32_t src = 0; src < shards_; ++src) {
      auto& b = boxes_[std::size_t{src} * shards_ + dst];
      if (b.empty()) continue;
      fn(src, b);
      b.clear();
    }
  }

  [[nodiscard]] std::uint32_t shard_count() const noexcept { return shards_; }

 private:
  std::uint32_t shards_ = 0;
  std::vector<std::vector<T>> boxes_;
};

/// Barrier + failure latch shared by all shard workers of one run.  A
/// worker that throws records the exception, raises `failed`, and drops
/// from the barrier so the remaining shards never deadlock; they drain
/// out at their next cycle boundary and the calling thread rethrows
/// after joining.
struct ShardSync {
  std::barrier<> barrier;
  std::atomic<bool> failed{false};
  std::mutex mutex;
  std::exception_ptr eptr;

  explicit ShardSync(std::ptrdiff_t n) : barrier(n) {}

  /// Record the in-flight exception (first wins), raise the latch, and
  /// drop this worker from the barrier.  Call from a worker's catch-all.
  void record_failure() {
    {
      const std::scoped_lock lock(mutex);
      if (!eptr) eptr = std::current_exception();
    }
    failed.store(true, std::memory_order_relaxed);
    barrier.arrive_and_drop();
  }

  /// True when some worker failed; surviving workers should
  /// `barrier.arrive_and_drop()` and return.
  [[nodiscard]] bool poisoned() const noexcept {
    return failed.load(std::memory_order_relaxed);
  }

  /// Rethrow the recorded exception, if any.  Call after joining.
  void rethrow_if_failed() {
    if (eptr) std::rethrow_exception(eptr);
  }
};

/// CPU -> NUMA node map parsed from /sys/devices/system/node (one node
/// covering every CPU when the hierarchy is absent, e.g. non-Linux or
/// single-socket containers).  No libnuma dependency.
struct NumaTopology {
  std::uint32_t cpu_count = 1;
  std::uint32_t node_count = 1;
  std::vector<std::uint32_t> node_of_cpu;  ///< indexed by cpu id
  /// CPU ids grouped node-major (node 0's cpus ascending, then node
  /// 1's, ...) — the deterministic pinning order for shard workers.
  std::vector<std::uint32_t> pin_order;

  [[nodiscard]] static NumaTopology detect();
};

/// Pin the calling thread to one CPU via sched_setaffinity.  Returns
/// false (and leaves affinity unchanged) when unsupported or denied.
bool pin_current_thread(std::uint32_t cpu);

/// NUMA node the calling thread is currently executing on (0 when
/// undeterminable) — recorded as the per-shard arena-residency gauge:
/// with pinning + first-touch allocation, the node a worker runs on is
/// the node its arena pages live on.
[[nodiscard]] std::uint32_t current_numa_node(const NumaTopology& topo);

}  // namespace nbclos::sim
