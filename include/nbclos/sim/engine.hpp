/// \file engine.hpp
/// \brief Cycle-driven packet simulator over a Network.
///
/// Model (BookSim-style store-and-forward at packet granularity):
///   * every channel moves one flit per cycle, so a packet of S flits
///     occupies a channel for S cycles per hop;
///   * each channel has an output queue at its source vertex holding
///     packets waiting to transmit (capacity-limited at switches,
///     unbounded at terminal sources, which model the NIC's send queue);
///   * routing is decided when a packet arrives at a vertex, by a
///     RoutingOracle that may only inspect local queue occupancy —
///     distributed control, as the paper requires;
///   * when a packet finishes a hop but the chosen next queue is full it
///     stalls on the channel (credit-style backpressure).
/// Per cycle: arrivals -> transmission starts -> injection.  All
/// iteration orders are fixed, so runs are bit-reproducible from seeds.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "nbclos/fault/degraded_view.hpp"
#include "nbclos/sim/oracle.hpp"
#include "nbclos/sim/traffic.hpp"
#include "nbclos/topology/network.hpp"
#include "nbclos/util/stats.hpp"

namespace nbclos::sim {

struct SimConfig {
  double injection_rate = 0.1;   ///< offered load, flits/cycle/terminal
  std::uint32_t packet_size = 1; ///< flits per packet
  std::uint32_t queue_capacity = 8;  ///< packets per switch output queue
  std::uint64_t warmup_cycles = 2000;
  std::uint64_t measure_cycles = 8000;
  std::uint64_t seed = 42;
};

struct SimResult {
  double offered_load = 0.0;          ///< config injection rate
  double accepted_throughput = 0.0;   ///< delivered flits/terminal/cycle
  double mean_latency = 0.0;          ///< cycles, measured packets only
  double p99_latency = 0.0;
  std::uint64_t injected_packets = 0;
  std::uint64_t delivered_packets = 0;
  /// Packets lost to failed channels/switches over the whole run (zero on
  /// a pristine fabric): dropped at injection because the leaf uplink was
  /// dead, purged from queues when their channel died, or discarded when
  /// the oracle found no live route (fault::kNoRoute).
  std::uint64_t dropped_packets = 0;
  double mean_switch_queue_depth = 0.0;  ///< time-average over switch queues
  /// Fairness: per-SOURCE-terminal accepted throughput extremes over the
  /// measurement window (flits/cycle).  A big min/max gap means some
  /// flows starve — typical for static routings on funnel patterns.
  double min_flow_throughput = 0.0;
  double max_flow_throughput = 0.0;
  /// accepted < 95% of offered — the network is saturated at this load.
  [[nodiscard]] bool saturated() const {
    return accepted_throughput < 0.95 * offered_load;
  }
};

class PacketSim {
 public:
  /// All references must outlive the simulator.
  ///
  /// \param degraded optional liveness mask (shared with a fault-aware
  ///        oracle).  When set, dead channels neither transmit nor accept
  ///        packets, and injection onto a dead leaf uplink is dropped.
  /// \param fault_events scheduled liveness transitions, applied to
  ///        `degraded` at the start of their cycle (cycle 0 = first warmup
  ///        cycle); packets queued or in flight on a channel that dies are
  ///        dropped.  Requires `degraded`.
  PacketSim(const Network& net, RoutingOracle& oracle,
            const TrafficPattern& traffic, SimConfig config,
            fault::DegradedView* degraded = nullptr,
            std::vector<fault::FaultEvent> fault_events = {});

  /// Run warmup + measurement; returns aggregate results.
  [[nodiscard]] SimResult run();

 private:
  struct ChannelState {
    std::deque<Packet> queue;      ///< waiting at the source vertex
    bool in_flight_valid = false;
    Packet in_flight;
    std::uint64_t arrival_cycle = 0;
  };

  void step_arrivals();
  void step_transmissions();
  void step_injection();
  void deliver(const Packet& packet);
  /// Apply fault events due at now_; purge packets on channels that died.
  void apply_due_faults();
  [[nodiscard]] bool channel_usable(std::uint32_t channel) const {
    return degraded_ == nullptr || degraded_->channel_alive(channel);
  }

  const Network* net_;
  RoutingOracle* oracle_;
  const TrafficPattern* traffic_;
  SimConfig config_;
  fault::DegradedView* degraded_ = nullptr;
  std::vector<fault::FaultEvent> fault_events_;  ///< sorted by cycle
  std::size_t next_fault_ = 0;
  std::uint64_t dropped_packets_ = 0;

  std::vector<ChannelState> channels_;
  std::vector<std::uint32_t> queue_depth_;  ///< mirrors queue sizes (SimView)
  // Per-queue round-robin arbitration state (see step_arrivals).
  std::vector<std::vector<std::uint32_t>> arrival_candidates_;
  std::vector<std::uint32_t> arrival_targets_;
  std::vector<std::uint32_t> rr_last_winner_;
  std::vector<std::uint32_t> terminal_vertices_;
  std::vector<bool> is_terminal_source_queue_;  ///< per channel

  Xoshiro256 rng_{42};
  std::uint64_t now_ = 0;
  std::uint64_t next_packet_id_ = 0;
  std::vector<std::uint64_t> flow_sequence_;  ///< per source terminal

  bool measuring_ = false;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_measured_flits_ = 0;
  std::vector<std::uint64_t> delivered_per_source_;  ///< measured flits
  std::uint64_t delivered_packets_ = 0;
  RunningStats latency_;
  std::vector<double> latencies_;  ///< for p99
  RunningStats queue_depth_samples_;
};

/// Convenience: sweep injection rates and return one SimResult per rate.
[[nodiscard]] std::vector<SimResult> load_sweep(
    const Network& net, RoutingOracle& oracle, const TrafficPattern& traffic,
    const SimConfig& base, const std::vector<double>& rates);

/// Binary-search the saturation throughput: the highest offered load the
/// network still accepts (accepted >= 95% of offered).  Returns the last
/// sustainable load found within `iterations` bisection steps over
/// [0, 1].  The oracle's internal randomness advances across probes, so
/// pass a freshly-seeded oracle for reproducible results.
[[nodiscard]] double find_saturation_load(const Network& net,
                                          RoutingOracle& oracle,
                                          const TrafficPattern& traffic,
                                          const SimConfig& base,
                                          std::uint32_t iterations = 6);

}  // namespace nbclos::sim
