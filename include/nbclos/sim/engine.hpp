/// \file engine.hpp
/// \brief Cycle-driven packet simulator over a Network.
///
/// Model (BookSim-style store-and-forward at packet granularity):
///   * every channel moves one flit per cycle, so a packet of S flits
///     occupies a channel for S cycles per hop;
///   * each channel has an output queue at its source vertex holding
///     packets waiting to transmit (capacity-limited at switches,
///     unbounded at terminal sources, which model the NIC's send queue);
///   * routing is decided when a packet arrives at a vertex, by a
///     RoutingOracle that may only inspect local queue occupancy —
///     distributed control, as the paper requires;
///   * when a packet finishes a hop but the chosen next queue is full it
///     stalls on the channel (credit-style backpressure).
/// Per cycle: arrivals -> transmission starts -> injection.  All
/// iteration orders are fixed, so runs are bit-reproducible from seeds.
///
/// Hot-path implementation (see DESIGN.md §"simulator performance
/// model"): per-cycle cost scales with the number of packets in the
/// system, not the fabric size.  Channels that hold traffic are tracked
/// in two dense active lists (in-flight and sendable), queues live in a
/// flat ring-buffer pool instead of per-channel deques, the mean queue
/// depth is a maintained running sum, and latency quantiles come from a
/// streaming histogram — no end-of-run sort.  Active lists are re-sorted
/// by channel id before every sweep, so the visit order (and therefore
/// every oracle/RNG consultation) is identical to a full ascending scan
/// and results stay bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nbclos/fault/degraded_view.hpp"
#include "nbclos/obs/flight_recorder.hpp"
#include "nbclos/obs/trace.hpp"
#include "nbclos/sim/oracle.hpp"
#include "nbclos/sim/traffic.hpp"
#include "nbclos/topology/network.hpp"
#include "nbclos/util/stats.hpp"
#include "nbclos/util/thread_pool.hpp"

namespace nbclos::sim {

struct SimConfig {
  double injection_rate = 0.1;   ///< offered load, flits/cycle/terminal
  std::uint32_t packet_size = 1; ///< flits per packet
  std::uint32_t queue_capacity = 8;  ///< packets per switch output queue
  std::uint64_t warmup_cycles = 2000;
  std::uint64_t measure_cycles = 8000;
  std::uint64_t seed = 42;
  /// Draw injection randomness from the counter-based discipline
  /// (injection_rng.hpp) instead of the engine's sequential Xoshiro
  /// stream: every (cycle, terminal) draw becomes a pure function of the
  /// seed, which is what lets ShardedSim reproduce PacketSim
  /// bit-identically at any shard count.  Off by default — the legacy
  /// stream is part of the recorded golden results.
  bool counter_injection = false;
  /// Pin each shard worker of a sharded engine to one CPU (node-major
  /// order from sim::NumaTopology) so first-touch arena allocation lands
  /// every shard's pages on its worker's NUMA node.  No effect on the
  /// serial engines; pinning failures are recorded, never fatal.
  bool pin_shards = false;
  /// Arm the flight recorder (obs::FlightRecorder): sample aggregate
  /// engine telemetry every record_cadence cycles into fixed-budget ring
  /// buffers (per shard in the sharded engine, merged bit-identically at
  /// any shard count).  Recording never feeds back into simulation
  /// state, so results are identical with it off, on, or compiled out.
  bool record_timeseries = false;
  /// Cycles between flight-recorder samples (before downsampling).
  std::uint64_t record_cadence = 64;
  /// Per-series per-shard ring budget in samples.
  std::uint32_t record_ring_capacity = 512;

  /// Queue capacity at which no switch queue can fill on the topologies
  /// and loads this library sweeps: in the nonblocking regime queues stay
  /// a handful of packets deep, so 1024 behaves as infinite while keeping
  /// the flat queue pool around ~10 MB on ftree(4+16, 8).
  static constexpr std::uint32_t kEffectivelyInfiniteQueueCapacity = 1024;

  /// The documented ideal-switch reference configuration: single-flit
  /// packets and effectively-infinite queues, i.e. the regime the paper's
  /// Theorems 1-3 assume.  flow::FlowConfig::ideal_reference mirrors this
  /// factory, and the cross-engine golden tests require FlowSim to
  /// reproduce PacketSim bit-identically under the pair.
  [[nodiscard]] static SimConfig ideal_reference(double injection_rate,
                                                 std::uint64_t seed) {
    SimConfig config;
    config.injection_rate = injection_rate;
    config.packet_size = 1;
    config.queue_capacity = kEffectivelyInfiniteQueueCapacity;
    config.seed = seed;
    return config;
  }

  /// True when this configuration is in the ideal-switch regime the
  /// golden equivalence tests rely on.
  [[nodiscard]] bool ideal_switch_regime() const noexcept {
    return packet_size == 1 &&
           queue_capacity >= kEffectivelyInfiniteQueueCapacity;
  }
};

struct SimResult {
  double offered_load = 0.0;          ///< config injection rate
  double accepted_throughput = 0.0;   ///< delivered flits/terminal/cycle
  double mean_latency = 0.0;          ///< cycles, measured packets only
  /// Latency quantiles from the streaming histogram; each is exact to
  /// within `latency_bucket_width` cycles (see QuantileHistogram).
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  double p999_latency = 0.0;
  double latency_bucket_width = 1.0;  ///< quantile resolution, cycles
  std::uint64_t injected_packets = 0;
  std::uint64_t delivered_packets = 0;
  /// Packets lost to failed channels/switches over the whole run (zero on
  /// a pristine fabric): dropped at injection because the leaf uplink was
  /// dead, purged from queues when their channel died, or discarded when
  /// the oracle found no live route (fault::kNoRoute).
  std::uint64_t dropped_packets = 0;
  double mean_switch_queue_depth = 0.0;  ///< time-average over switch queues
  /// Fairness: per-SOURCE-terminal accepted throughput extremes over the
  /// measurement window (flits/cycle).  A big min/max gap means some
  /// flows starve — typical for static routings on funnel patterns.
  double min_flow_throughput = 0.0;
  double max_flow_throughput = 0.0;
  /// accepted < 95% of offered — the network is saturated at this load.
  [[nodiscard]] bool saturated() const {
    return accepted_throughput < 0.95 * offered_load;
  }
};

/// Per-channel link utilization over one simulation run: the fraction of
/// cycles each channel spent transmitting flits.  This is the telemetry
/// resource-centric analyses need (see PAPERS.md) and what the paper's
/// Lemma 1 artifacts compute internally but never exposed before.
struct LinkUtilization {
  std::vector<double> busy_fraction;  ///< per channel, [0, 1]
  double mean = 0.0;                  ///< over all channels
  double max = 0.0;
  std::uint32_t max_channel = 0;      ///< argmax channel id
};

class PacketSim {
 public:
  /// All references must outlive the simulator.
  ///
  /// \param degraded optional liveness mask (shared with a fault-aware
  ///        oracle).  When set, dead channels neither transmit nor accept
  ///        packets, and injection onto a dead leaf uplink is dropped.
  /// \param fault_events scheduled liveness transitions, applied to
  ///        `degraded` at the start of their cycle (cycle 0 = first warmup
  ///        cycle); packets queued or in flight on a channel that dies are
  ///        dropped.  Requires `degraded`.
  PacketSim(const Network& net, RoutingOracle& oracle,
            const TrafficPattern& traffic, SimConfig config,
            fault::DegradedView* degraded = nullptr,
            std::vector<fault::FaultEvent> fault_events = {});

  /// Run warmup + measurement; returns aggregate results.
  [[nodiscard]] SimResult run();

  /// Flits transmitted per channel over the whole run (busy cycles, since
  /// a channel moves one flit per cycle).  Valid after run().
  [[nodiscard]] const std::vector<std::uint64_t>& link_busy_flits() const {
    return link_busy_flits_;
  }

  /// Per-link utilization report over the whole run.  Valid after run().
  /// Recorder-backed: the per-link sums and the `sim.link.busy_flits`
  /// flight-recorder series are fed by the same accumulator, and the
  /// `sim.link.busy_flit_cycles` registry counter is flushed on the
  /// sampling cadence, so a mid-run snapshot reports exact totals.
  [[nodiscard]] LinkUtilization link_utilization() const;

  /// The per-epoch time-series recorder (inactive unless
  /// SimConfig::record_timeseries).  Series are stable after run().
  [[nodiscard]] const obs::FlightRecorder& recorder() const {
    return recorder_;
  }

 private:
  /// The packet occupying a channel, if any (one per channel: a channel
  /// carries one packet at a time; `arrival_cycle` is when its last flit
  /// lands at the channel's destination vertex).
  struct InFlight {
    Packet packet;
    std::uint64_t arrival_cycle = 0;
    bool valid = false;
  };

  void step_arrivals();
  void step_transmissions();
  void step_injection();
  void step_injection_counter();
  void deliver(const Packet& packet);
  /// Apply fault events due at now_; purge packets on channels that died.
  void apply_due_faults();
  [[nodiscard]] bool channel_usable(std::uint32_t channel) const {
    return degraded_ == nullptr || degraded_->channel_alive(channel);
  }

  // --- flat queue pool (FIFO ring per channel) --------------------------
  // Switch output queues are capacity-bounded slices of one contiguous
  // pool; terminal NIC send queues are unbounded power-of-two rings in a
  // per-terminal growable arena.  `queue_depth_` mirrors the size of
  // switch queues only (the oracle-visible SimView; terminal queues read
  // as 0, as before).
  void queue_push(std::uint32_t channel, const Packet& packet);
  [[nodiscard]] Packet queue_pop(std::uint32_t channel);
  void queue_clear(std::uint32_t channel);

  const Network* net_;
  RoutingOracle* oracle_;
  const TrafficPattern* traffic_;
  SimConfig config_;
  fault::DegradedView* degraded_ = nullptr;
  std::vector<fault::FaultEvent> fault_events_;  ///< sorted by cycle
  std::size_t next_fault_ = 0;
  std::uint64_t dropped_packets_ = 0;

  std::vector<InFlight> flight_;            ///< per channel
  std::vector<std::uint32_t> q_head_;       ///< per channel ring head
  std::vector<std::uint32_t> q_size_;       ///< per channel ring occupancy
  /// Switch channel: element offset into switch_pool_ (index * slice,
  /// where the slice is queue_capacity rounded up to a power of two so
  /// ring wrap-around is a mask, not a division); terminal channel: index
  /// into term_rings_.
  std::vector<std::uint32_t> pool_base_;
  std::uint32_t switch_slice_mask_ = 0;  ///< slice size - 1
  std::vector<Packet> switch_pool_;         ///< all switch queues, contiguous
  std::vector<std::vector<Packet>> term_rings_;  ///< growable terminal rings
  std::vector<std::uint32_t> queue_depth_;  ///< switch queue sizes (SimView)

  // Active-channel tracking: `flying_` holds exactly the channels with a
  // valid in-flight packet (plus, transiently, channels purged by a fault
  // since the last sweep); `sendable_` holds exactly the channels with a
  // non-empty queue.  Both are sorted by id before each sweep so the
  // visit order matches a full ascending channel scan.
  std::vector<std::uint32_t> flying_;
  std::vector<std::uint32_t> sendable_;
  std::vector<std::uint8_t> in_flying_;     ///< membership flags
  std::vector<std::uint8_t> in_sendable_;

  // Per-channel precomputed topology facts (avoids graph lookups per hop).
  std::vector<std::uint32_t> channel_dst_;
  std::vector<std::uint8_t> dst_is_terminal_;
  std::vector<std::uint8_t> is_terminal_source_queue_;

  // Per-queue round-robin arbitration state (see step_arrivals).
  std::vector<std::vector<std::uint32_t>> arrival_candidates_;
  std::vector<std::uint32_t> arrival_targets_;
  std::vector<std::uint32_t> rr_last_winner_;
  std::vector<std::uint32_t> terminal_vertices_;

  Xoshiro256 rng_;
  std::uint64_t now_ = 0;
  std::uint64_t next_packet_id_ = 0;
  double packet_rate_ = 0.0;  ///< injection_rate / packet_size, hoisted
  SimView view_;              ///< stable oracle view, hoisted out of steps
  std::vector<std::uint64_t> flow_sequence_;  ///< per source terminal

  bool measuring_ = false;
  std::uint64_t injected_ = 0;
  std::uint64_t delivered_measured_flits_ = 0;
  std::vector<std::uint64_t> delivered_per_source_;  ///< measured flits
  std::uint64_t delivered_packets_ = 0;
  RunningStats latency_;
  /// Exact integer latency accumulators: under counter_injection the
  /// reported mean is latency_sum_/latency_count_ (order-independent, so
  /// it matches ShardedSim's shard-merged mean bit-for-bit) instead of
  /// the Welford stream above.
  std::uint64_t latency_sum_ = 0;
  std::uint64_t latency_count_ = 0;
  QuantileHistogram latency_hist_;  ///< streaming p50/p99/p999
  std::uint64_t switch_depth_sum_ = 0;      ///< running sum over switch queues
  std::uint64_t switch_channel_count_ = 0;
  RunningStats queue_depth_samples_;

  // --- observability (none of it feeds back into simulation state, so
  // --- results are bit-identical with obs compiled out or disabled) ----
  /// Aggregate engine telemetry into obs::metrics() + sampled per-phase
  /// timings; called once at the end of run() when obs is enabled.
  void flush_obs(double wall_seconds);
  /// Flush busy flit-cycles accumulated since the last flush into the
  /// `sim.link.busy_flit_cycles` counter.  Called on the 64-cycle obs
  /// cadence *and* at end of run, so a concurrent registry snapshot
  /// (metrics-serve, --metrics) sees exact mid-run totals instead of 0
  /// until the run ends.
  void flush_busy_flits();
  /// Register the flight-recorder series (constructor) and append one
  /// sample of every series at cycle `now_` into shard slot 0.
  void arm_recorder();
  void sample_recorder();
  std::vector<std::uint64_t> link_busy_flits_;  ///< per channel, whole run
  std::uint64_t busy_flit_total_ = 0;    ///< running sum of link_busy_flits_
  std::uint64_t busy_flits_flushed_ = 0; ///< counter-flush watermark
  obs::Counter* busy_counter_ = nullptr; ///< resolved once, hot-path handle
  obs::FlightRecorder recorder_;
  obs::FlightRecorder::SeriesId rec_queue_depth_ = 0;
  obs::FlightRecorder::SeriesId rec_active_flying_ = 0;
  obs::FlightRecorder::SeriesId rec_active_sendable_ = 0;
  obs::FlightRecorder::SeriesId rec_busy_flits_ = 0;
  obs::FlightRecorder::SeriesId rec_injected_ = 0;
  obs::FlightRecorder::SeriesId rec_delivered_ = 0;
  std::uint64_t oracle_calls_ = 0;
  std::uint64_t active_flying_sum_ = 0;    ///< per-cycle |flying_| summed
  std::uint64_t active_sendable_sum_ = 0;  ///< per-cycle |sendable_| summed
  /// Sampled per-phase wall time (arrivals / transmissions / injection),
  /// measured every 64th cycle so the clock reads stay off the hot path.
  std::uint64_t phase_ns_[3] = {0, 0, 0};
  std::uint64_t phase_samples_ = 0;
};

// --- sweep drivers ----------------------------------------------------

/// Builds a worker-private oracle for one simulation run of a parallel
/// sweep.  Stateful oracles cannot be shared across threads, so each run
/// constructs its own: `run_seed` is a decorrelated per-run seed (derived
/// from the sweep's base seed and the run index, identical at any thread
/// count) and `degraded` is the run-private liveness view (nullptr when
/// the sweep is pristine) for fault-aware oracles to capture.
using OracleFactory = std::function<std::unique_ptr<RoutingOracle>(
    std::uint64_t run_seed, fault::DegradedView* degraded)>;

/// Convenience: sweep injection rates and return one SimResult per rate.
///
/// Serial legacy form: one shared oracle, whose internal randomness
/// advances across runs.  When `degraded` is given, its entry state is
/// snapshotted and restored before every run (and on return), so each
/// rate sees the same initial fault mask even when `fault_events` mutate
/// it mid-run.
[[nodiscard]] std::vector<SimResult> load_sweep(
    const Network& net, RoutingOracle& oracle, const TrafficPattern& traffic,
    const SimConfig& base, const std::vector<double>& rates,
    fault::DegradedView* degraded = nullptr,
    const std::vector<fault::FaultEvent>& fault_events = {});

/// Parallel form: one private oracle and (when faulted) one private copy
/// of `*degraded` per run, evaluated over `pool` (nullptr = serial).
/// Per-run seeds and the merge order are fixed by the rate index, so the
/// results are field-for-field identical at any thread count, including
/// the serial path.  Each run keeps `base.seed` for the traffic/injection
/// stream (matching the legacy form); only the oracle seed varies.
[[nodiscard]] std::vector<SimResult> load_sweep(
    const Network& net, const OracleFactory& factory,
    const TrafficPattern& traffic, const SimConfig& base,
    const std::vector<double>& rates, ThreadPool* pool,
    const fault::DegradedView* degraded = nullptr,
    const std::vector<fault::FaultEvent>& fault_events = {});

/// Binary-search the saturation throughput: the highest offered load the
/// network still accepts (accepted >= 95% of offered).  Returns the last
/// sustainable load found within `iterations` bisection steps over
/// [0, 1].  The oracle's internal randomness advances across probes, so
/// pass a freshly-seeded oracle for reproducible results.  `degraded` +
/// `fault_events` pass through to every probe as in load_sweep.
[[nodiscard]] double find_saturation_load(
    const Network& net, RoutingOracle& oracle, const TrafficPattern& traffic,
    const SimConfig& base, std::uint32_t iterations = 6,
    fault::DegradedView* degraded = nullptr,
    const std::vector<fault::FaultEvent>& fault_events = {});

/// Parallel form: the bracketing phase probes a coarse load grid
/// concurrently over `pool` (nullptr = serial), then bisects the
/// bracketing interval serially.  Deterministic at any thread count.
[[nodiscard]] double find_saturation_load(
    const Network& net, const OracleFactory& factory,
    const TrafficPattern& traffic, const SimConfig& base,
    std::uint32_t iterations, ThreadPool* pool,
    const fault::DegradedView* degraded = nullptr,
    const std::vector<fault::FaultEvent>& fault_events = {});

}  // namespace nbclos::sim
