/// \file table_one.hpp
/// \brief Reproduction of the paper's Table I: sizes of the nonblocking
///        ftree(n+n^2, n+n^2) versus the rearrangeable FT(m, 2), for
///        practical switch radixes (20, 30, 42 ports).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nbclos/core/designer.hpp"

namespace nbclos {

/// One row of Table I.  `paper_*` fields hold the values printed in the
/// paper when the radix is one of the published rows; our computed values
/// sit alongside so mismatches (two apparent typos in the published
/// table) are visible rather than silently "reproduced".
struct TableOneRow {
  std::uint32_t switch_radix = 0;

  // Nonblocking ftree(n+n^2, n+n^2) (ours / paper's print).
  std::uint64_t nb_switches = 0;
  std::uint64_t nb_ports = 0;
  std::optional<std::uint64_t> paper_nb_switches;
  std::optional<std::uint64_t> paper_nb_ports;

  // Rearrangeable FT(radix, 2) comparison (ours / paper's print).
  std::uint64_t ft_switches = 0;
  std::uint64_t ft_ports = 0;
  std::optional<std::uint64_t> paper_ft_switches;
  std::optional<std::uint64_t> paper_ft_ports;
};

/// Compute a Table I row for an arbitrary even radix >= 6.
[[nodiscard]] TableOneRow table_one_row(std::uint32_t radix);

/// The paper's published rows (20-, 30-, 42-port switches), with the
/// paper's printed numbers attached for comparison.
[[nodiscard]] std::vector<TableOneRow> table_one_published();

}  // namespace nbclos
