/// \file designer.hpp
/// \brief Design-space exploration: "given switches of radix R, what
///        nonblocking fabrics can I build, and what do they cost?"
///        (the engineering question Table I and §IV's discussion answer).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "nbclos/topology/fat_tree.hpp"

namespace nbclos {

/// Cost/size summary of one two-level nonblocking design
/// ftree(n + n^2, r) built from same-radix switches (r = n + n^2).
struct TwoLevelDesign {
  std::uint32_t n = 0;             ///< leaf ports per bottom switch
  std::uint32_t switch_radix = 0;  ///< n + n^2 (both levels, same radix)
  FtreeParams params;              ///< the ftree(n+n^2, n+n^2) instance
  std::uint64_t ports = 0;         ///< n^3 + n^2
  std::uint64_t switches = 0;      ///< 2n^2 + n
  std::uint64_t links = 0;         ///< bidirectional links, incl. leaf links
};

/// The design for a given n (radix = n + n^2).  \pre n >= 2.
[[nodiscard]] TwoLevelDesign two_level_design(std::uint32_t n);

/// Largest design whose switches fit the given radix: the biggest n with
/// n + n^2 <= radix.  nullopt when radix < 6 (n would be < 2).
[[nodiscard]] std::optional<TwoLevelDesign> design_for_radix(
    std::uint32_t radix);

/// Multi-level recursive design (§IV discussion): level L+1 replaces
/// each top-level switch with a level-L nonblocking network, following
/// the paper's guidance (Theorem 1) to grow the *top*, never the bottom.
/// Recurrences, with P(2) = n^3+n^2 and S(2) = 2n^2+n:
///   P(L+1) = n * P(L)          (ports)
///   S(L+1) = P(L) + n^2 * S(L) (bottom switches + n^2 replaced tops)
/// Note: for L = 3 this yields 2n^4 + 2n^3 + n^2 switches; the paper's
/// prose prints 2n^4 + 3n^3 + n^2 — see EXPERIMENTS.md for the
/// discrepancy discussion (our benches report both).
struct RecursiveDesign {
  std::uint32_t n = 0;
  std::uint32_t levels = 0;
  std::uint32_t switch_radix = 0;  ///< n + n^2 everywhere
  std::uint64_t ports = 0;
  std::uint64_t switches = 0;
};

/// \pre n >= 2, levels >= 2; throws on overflow.
[[nodiscard]] RecursiveDesign recursive_design(std::uint32_t n,
                                               std::uint32_t levels);

/// All two-level designs with radix at most `max_radix`, ascending n.
[[nodiscard]] std::vector<TwoLevelDesign> enumerate_designs(
    std::uint32_t max_radix);

}  // namespace nbclos
