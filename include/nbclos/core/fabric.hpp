/// \file fabric.hpp
/// \brief NonblockingFabric — the library's end-to-end facade.
///
/// Bundles the topology (ftree(n+n^2, r)), the paper's optimal
/// single-path nonblocking routing (Theorem 3), certification (the
/// Lemma 1 link audit, which is an if-and-only-if proof for the
/// instance), empirical verification, and conversion to a simulator
/// Network.  This is the object a downstream user instantiates to get a
/// "crossbar-equivalent" fabric built from small switches.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "nbclos/analysis/verifier.hpp"
#include "nbclos/routing/yuan_nonblocking.hpp"
#include "nbclos/topology/fat_tree.hpp"
#include "nbclos/topology/network.hpp"

namespace nbclos {

class NonblockingFabric {
 public:
  /// Build ftree(n + n^2, r).  By default r = n + n^2 (uniform switch
  /// radix, as in Table I); any r >= 2 is allowed.  \pre n >= 2.
  explicit NonblockingFabric(std::uint32_t n,
                             std::optional<std::uint32_t> r = std::nullopt);

  [[nodiscard]] const FoldedClos& topology() const noexcept { return ftree_; }
  [[nodiscard]] const SinglePathRouting& routing() const noexcept {
    return routing_;
  }
  [[nodiscard]] std::uint32_t port_count() const noexcept {
    return ftree_.leaf_count();
  }

  /// Route one SD pair (fixed path, Theorem 3 scheme).
  [[nodiscard]] FtreePath route(SDPair sd) const { return routing_.route(sd); }

  /// Route a permutation; guaranteed contention-free.
  [[nodiscard]] std::vector<FtreePath> route_pattern(
      const Permutation& pattern) const {
    return routing_.route_all(pattern);
  }

  /// Certify nonblocking-ness via the Lemma 1 audit over all SD pairs —
  /// a machine-checked proof for this instance (not sampling).
  [[nodiscard]] bool certify() const;

  /// Statistical spot-check over random permutations.
  [[nodiscard]] VerifyResult verify_random(std::uint64_t trials,
                                           std::uint64_t seed) const;

  /// Simulator-ready network graph (channel ids == LinkIds).
  [[nodiscard]] Network to_network() const { return build_network(ftree_); }

 private:
  FoldedClos ftree_;
  YuanNonblockingRouting routing_;
};

}  // namespace nbclos
