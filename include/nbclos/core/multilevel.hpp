/// \file multilevel.hpp
/// \brief The recursive multi-level nonblocking folded-Clos construction
///        of the paper's §IV discussion, built as a real network graph.
///
/// The paper: "to obtain a 3-level nonblocking network, a 2-level
/// nonblocking network can be used to replace each of the top level
/// switches" (growing the top, per Theorem 1), and the result supports
/// all permutations with no contention by induction.  We implement the
/// construction for arbitrary depth:
///
///   Block(1)  = a single (n^2+n)-port switch;
///   Block(k)  = P(k-1) bottom switches of radix n+n^2 (n ports down,
///               one uplink to each of n^2 sub-blocks) over n^2 copies of
///               Block(k-1);  P(k) = n * P(k-1), so P(k) = n^(k+1) + n^k.
///
/// The L-level fabric hangs one leaf off every Block(L) port.  Routing
/// applies the Theorem 3 (i, j) rule at every level: a connection
/// entering bottom switch q with local index i toward local index j uses
/// sub-block i*n + j.  Every channel then carries one source (uplinks) or
/// one destination (downlinks), so the generalized Lemma 1 audit — which
/// this class exposes as certify() — proves the fabric nonblocking.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nbclos/analysis/network_audit.hpp"
#include "nbclos/core/designer.hpp"
#include "nbclos/topology/network.hpp"

namespace nbclos {

class MultiLevelFabric {
 public:
  /// \pre n >= 2, levels >= 2; total ports capped at 2^20.
  MultiLevelFabric(std::uint32_t n, std::uint32_t levels);

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t levels() const noexcept { return levels_; }
  [[nodiscard]] const Network& network() const noexcept { return net_; }
  [[nodiscard]] std::uint32_t port_count() const noexcept { return ports_; }
  [[nodiscard]] std::uint64_t switch_count() const noexcept {
    return switch_count_;
  }
  /// The closed-form cost model this construction must match.
  [[nodiscard]] RecursiveDesign design() const {
    return recursive_design(n_, levels_);
  }

  /// Channel path for an SD pair over leaf indices.  Fixed per SD pair
  /// (single-path deterministic, the recursive Theorem 3 rule).
  [[nodiscard]] ChannelPath route(SDPair sd) const;

  /// Generalized Lemma 1 audit over all P(P-1) SD pairs: a proof that
  /// this instance is nonblocking.
  [[nodiscard]] bool certify() const;

  /// Statistical cross-check on random permutations.
  [[nodiscard]] bool verify_random(std::uint64_t trials,
                                   std::uint64_t seed) const;

 private:
  struct Block {
    std::uint32_t level = 1;
    std::uint32_t ports = 0;
    std::uint32_t switch_vertex = 0;              ///< level 1 only
    std::vector<std::uint32_t> bottom;            ///< level >= 2
    std::vector<std::unique_ptr<Block>> subs;     ///< n^2 of them
    std::vector<std::vector<std::uint32_t>> up;   ///< [t][q] channel
    std::vector<std::vector<std::uint32_t>> down; ///< [t][q] channel

    /// The vertex an external port wires to.
    [[nodiscard]] std::uint32_t attach(std::uint32_t port,
                                       std::uint32_t n) const;
    /// Append the block-internal channels of the in->out route.
    void route_internal(std::uint32_t in_port, std::uint32_t out_port,
                        std::uint32_t n, ChannelPath& out) const;
  };

  std::unique_ptr<Block> build_block(std::uint32_t level);

  std::uint32_t n_;
  std::uint32_t levels_;
  std::uint32_t ports_ = 0;
  std::uint64_t switch_count_ = 0;
  Network net_;
  std::unique_ptr<Block> root_;
  std::vector<std::uint32_t> leaf_up_;    ///< channel leaf -> attach
  std::vector<std::uint32_t> leaf_down_;  ///< channel attach -> leaf
};

}  // namespace nbclos
