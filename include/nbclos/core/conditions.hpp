/// \file conditions.hpp
/// \brief The paper's nonblocking conditions as executable predicates and
///        bounds (Theorems 1, 2, 5).
#pragma once

#include <cstdint>

#include "nbclos/topology/fat_tree.hpp"

namespace nbclos {

/// Is this the "large top switch" regime (r >= 2n+1) where nonblocking
/// construction is cost-effective (Theorem 1's complement)?
[[nodiscard]] constexpr bool large_top_regime(std::uint32_t n,
                                              std::uint32_t r) noexcept {
  return r >= 2 * n + 1;
}

/// Theorem 1: when r <= 2n+1, a nonblocking ftree(n+m, r) under any
/// single-path deterministic routing supports at most 2(n+m) ports.
[[nodiscard]] constexpr std::uint64_t port_upper_bound_small_r(
    std::uint32_t n, std::uint32_t m) noexcept {
  return 2ULL * (n + m);
}

/// Lower bound on top switches for a nonblocking ftree with single-path
/// deterministic routing: n^2 when r >= 2n+1 (Theorem 2); otherwise the
/// Lemma 2 counting bound ceil(r(r-1)n^2 / 2nr) = ceil((r-1)n / 2).
[[nodiscard]] constexpr std::uint64_t min_top_switches_deterministic(
    std::uint32_t n, std::uint32_t r) noexcept {
  if (large_top_regime(n, r)) return std::uint64_t{n} * n;
  return (std::uint64_t{r - 1} * n + 1) / 2;
}

/// Theorem 2/3 combined: is ftree(n+m, r) nonblocking-constructible with
/// single-path deterministic routing?  (Tight: m >= n^2 suffices via the
/// Theorem 3 routing and is necessary when r >= 2n+1.)
[[nodiscard]] constexpr bool deterministic_nonblocking_feasible(
    const FtreeParams& params) noexcept {
  return std::uint64_t{params.m} >= std::uint64_t{params.n} * params.n;
}

/// Theorem 5's asymptotic exponent for local adaptive routing: the
/// number of top switches needed is O(n^(2 - 1/(2(c+1)))).
[[nodiscard]] constexpr double adaptive_exponent(std::uint32_t c) noexcept {
  return 2.0 - 1.0 / (2.0 * (static_cast<double>(c) + 1.0));
}

/// The simple (non-asymptotic) adaptive bound derived in §V: at most
/// n/(c+2) configurations of (c+1)n switches — fewer than n^2 switches.
[[nodiscard]] constexpr std::uint64_t adaptive_simple_bound(
    std::uint32_t n, std::uint32_t c) noexcept {
  // ceil(n / (c+2)) configurations, (c+1)*n switches each.
  const std::uint64_t configs = (std::uint64_t{n} + c + 1) / (c + 2);
  return configs * (c + 1) * n;
}

}  // namespace nbclos
