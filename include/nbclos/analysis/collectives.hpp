/// \file collectives.hpp
/// \brief Collective-communication schedules as permutation phases.
///
/// The flagship application of a nonblocking fabric: all-to-all
/// personalized exchange decomposes into N-1 cyclic-shift permutations,
/// and on a Theorem 3 fabric *every phase runs at full bisection
/// bandwidth with zero contention* — the fabric behaves like the
/// crossbar the paper's introduction promises.  On a blocking fabric the
/// same schedule serializes on hot links.
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/analysis/permutations.hpp"

namespace nbclos {

/// The N-1 shift phases of an all-to-all exchange over `leaf_count`
/// endpoints: phase k is the permutation dst = src + k+1 (mod N).
/// Together the phases deliver every ordered pair exactly once.
[[nodiscard]] std::vector<Permutation> all_to_all_phases(
    std::uint32_t leaf_count);

/// Phases of a neighbor (ring) halo exchange: the +1 and -1 shifts.
[[nodiscard]] std::vector<Permutation> ring_exchange_phases(
    std::uint32_t leaf_count);

}  // namespace nbclos
