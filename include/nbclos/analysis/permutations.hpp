/// \file permutations.hpp
/// \brief Permutation communication patterns (paper Definition 1) and a
///        library of generators used across tests and experiments.
///
/// A permutation is a set of SD pairs in which every leaf appears at most
/// once as a source and at most once as a destination.  Generators cover
/// the patterns HPC codes actually produce (shifts, transposes,
/// bit-reversal, butterfly exchanges), uniform random sampling, and
/// adversarial stressors that concentrate destinations.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "nbclos/topology/ids.hpp"
#include "nbclos/util/prng.hpp"

namespace nbclos {

/// A communication pattern; `validate_permutation` checks Definition 1.
using Permutation = std::vector<SDPair>;

/// Throws precondition_error unless the pattern is a permutation over
/// `leaf_count` leaves (sources distinct, destinations distinct, no
/// self-loops — a leaf sending to itself never touches the network).
void validate_permutation(const Permutation& pattern,
                          std::uint32_t leaf_count);

/// Uniformly random full permutation: every leaf is a source exactly
/// once; fixed points (src == dst) are dropped, so size may be slightly
/// below leaf_count.
[[nodiscard]] Permutation random_permutation(std::uint32_t leaf_count,
                                             Xoshiro256& rng);

/// Random partial permutation using `pairs` distinct sources and
/// destinations.  \pre pairs <= leaf_count.
[[nodiscard]] Permutation random_partial_permutation(std::uint32_t leaf_count,
                                                     std::uint32_t pairs,
                                                     Xoshiro256& rng);

/// Cyclic shift: dst = (src + offset) mod leaf_count.
/// \pre 0 < offset < leaf_count.
[[nodiscard]] Permutation shift_permutation(std::uint32_t leaf_count,
                                            std::uint32_t offset);

/// Reversal: dst = leaf_count - 1 - src (self-loop dropped when odd size).
[[nodiscard]] Permutation reverse_permutation(std::uint32_t leaf_count);

/// Bit-reversal of the leaf index.  \pre leaf_count is a power of two.
[[nodiscard]] Permutation bit_reversal_permutation(std::uint32_t leaf_count);

/// Butterfly stage k: dst = src XOR (1 << k).  \pre leaf_count is a power
/// of two, (1 << k) < leaf_count.
[[nodiscard]] Permutation butterfly_permutation(std::uint32_t leaf_count,
                                                std::uint32_t stage);

/// Tornado over bottom switches in ftree(n+m, r): leaf (v, k) sends to
/// leaf ((v + r/2) mod r, k) — every pair crosses the network.
[[nodiscard]] Permutation tornado_permutation(std::uint32_t n, std::uint32_t r);

/// All n leaves of each switch v send to the n leaves of switch
/// (v+1) mod r with *matching local index complemented* — a pattern that
/// funnels whole switches onto whole switches, stressing same-destination
/// -switch routing (the regime Lemma 3 is about).
[[nodiscard]] Permutation neighbor_funnel_permutation(std::uint32_t n,
                                                      std::uint32_t r);

/// Convert a full target vector (leaf s sends to target[s]) into a
/// Permutation, dropping fixed points.  The `out` variant reuses the
/// caller's buffer — the adversarial and exhaustive searches call this
/// once per evaluated permutation, so it must not allocate.
void permutation_from_targets(const std::vector<std::uint32_t>& target,
                              Permutation& out);
[[nodiscard]] Permutation permutation_from_targets(
    const std::vector<std::uint32_t>& target);

/// k! as uint64.  \pre k <= 20 (21! overflows).
[[nodiscard]] std::uint64_t factorial(std::uint32_t k);

/// The target vector of the `rank`-th permutation of {0..leaf_count-1}
/// in lexicographic order, via the factorial number system.
/// \pre leaf_count <= 20 and rank < leaf_count!.
[[nodiscard]] std::vector<std::uint32_t> unrank_targets(
    std::uint32_t leaf_count, std::uint64_t rank);

/// Inverse of unrank_targets: the lexicographic rank of a target vector.
[[nodiscard]] std::uint64_t rank_of_targets(
    const std::vector<std::uint32_t>& target);

/// Enumerate every full permutation of `leaf_count` leaves (dropping
/// fixed points from each) and invoke the callback.  Returns the number
/// of permutations visited.  Only sensible for leaf_count <= ~8.
std::uint64_t for_each_permutation(
    std::uint32_t leaf_count, const std::function<void(const Permutation&)>& fn);

/// Enumerate permutations with lexicographic rank in [begin_rank,
/// end_rank) in rank order; the callback returns false to stop early.
/// Returns the number visited (including the one that stopped the walk).
/// The Permutation passed to the callback lives in a reused buffer —
/// copy it if it must outlive the call.  This is the sharding primitive
/// for the parallel exhaustive verifier: each worker owns one contiguous
/// rank range.  \pre leaf_count <= 20, begin <= end <= leaf_count!.
std::uint64_t for_each_permutation_in_range(
    std::uint32_t leaf_count, std::uint64_t begin_rank, std::uint64_t end_rank,
    const std::function<bool(const Permutation&)>& fn);

}  // namespace nbclos
