/// \file verifier.hpp
/// \brief Empirical nonblocking verification (Definition 2).
///
/// A network + routing is nonblocking when *no* permutation causes link
/// contention.  The verifier attacks that universally-quantified claim
/// three ways:
///   * exhaustive enumeration of all full permutations (tiny networks —
///     this is a proof for the instance);
///   * uniform random sampling (statistical evidence at scale);
///   * adversarial hill-climbing that mutates a permutation by swapping
///     destinations to maximize colliding pairs (finds counterexamples
///     random sampling misses, e.g. for D-mod-K style routings).
///
/// The router under test is abstracted as a function from a permutation
/// to its paths, so deterministic, adaptive, and centralized schemes all
/// fit one interface.  Single-path deterministic routings additionally
/// get *delta-evaluated* overloads: their hill-climb steps re-route only
/// the <= 4 SD pairs a swap touches (see analysis/delta.hpp) instead of
/// the whole pattern, which is what makes large adversarial budgets and
/// the parallel drivers in analysis/parallel.hpp affordable.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/topology/fat_tree.hpp"

namespace nbclos::routing {
class RouteCache;
}

namespace nbclos {

class SinglePathRouting;

/// Route a whole pattern at once (adaptive routers need the pattern).
using PatternRouter =
    std::function<std::vector<FtreePath>(const Permutation&)>;

/// Wrap a SinglePathRouting as a PatternRouter.
[[nodiscard]] PatternRouter as_pattern_router(const SinglePathRouting& routing);

struct VerifyResult {
  bool nonblocking = false;  ///< no counterexample found within the budget
  std::uint64_t permutations_checked = 0;
  std::optional<Permutation> counterexample;  ///< a blocked permutation
  std::uint64_t counterexample_collisions = 0;
};

/// Exhaustively check every full permutation in lexicographic rank order,
/// stopping at the first (lowest-rank) counterexample.  \pre leaf_count
/// <= 10.  A `nonblocking == true` result is a proof for this instance;
/// `permutations_checked` is the rank of the counterexample + 1 when one
/// is found, else leaf_count!.  The parallel driver
/// (verify_exhaustive_parallel) returns bit-identical results.
[[nodiscard]] VerifyResult verify_exhaustive(const FoldedClos& ftree,
                                             const PatternRouter& router);

/// Check `trials` uniformly random full permutations.
[[nodiscard]] VerifyResult verify_random(const FoldedClos& ftree,
                                         const PatternRouter& router,
                                         std::uint64_t trials,
                                         Xoshiro256& rng);

/// Adversarial search: hill-climb from random starts, swapping pairs of
/// destinations; keeps a mutation when it does not decrease the number
/// of colliding path pairs.  Restarts are independent — each gets its
/// own seed — so they can be run in any order or in parallel without
/// changing the merged result.
struct AdversarialOptions {
  std::uint32_t restarts = 8;
  std::uint32_t steps_per_restart = 2000;
};

/// Outcome of one hill-climb restart — the building block both the
/// serial and parallel adversarial drivers shard over.
struct RestartResult {
  std::uint64_t collisions = 0;   ///< best colliding-pair count reached
  Permutation pattern;            ///< the pattern achieving it
  std::uint64_t evaluations = 0;  ///< permutations scored (incl. the start)
};

/// One restart with full re-evaluation per step (any PatternRouter).
/// `stop_on_positive` ends the climb as soon as collisions > 0 (the
/// verify use); otherwise the full step budget maximizes collisions.
[[nodiscard]] RestartResult adversarial_restart(const FoldedClos& ftree,
                                                const PatternRouter& router,
                                                std::uint32_t steps,
                                                std::uint64_t seed,
                                                bool stop_on_positive);

/// One delta-evaluated restart (single-path deterministic routings only:
/// paths must not depend on the rest of the pattern).
[[nodiscard]] RestartResult adversarial_restart(
    const FoldedClos& ftree, const SinglePathRouting& routing,
    std::uint32_t steps, std::uint64_t seed, bool stop_on_positive);

/// One delta-evaluated restart replaying a precomputed RouteCache
/// (routing/route_cache.hpp) instead of routing per step.  Bit-identical
/// to the SinglePathRouting overload when the cache was materialized
/// from that routing; the cache is immutable, so many restarts (and
/// threads) share one.
[[nodiscard]] RestartResult adversarial_restart(
    const FoldedClos& ftree, const routing::RouteCache& cache,
    std::uint32_t steps, std::uint64_t seed, bool stop_on_positive);

[[nodiscard]] VerifyResult verify_adversarial(const FoldedClos& ftree,
                                              const PatternRouter& router,
                                              const AdversarialOptions& options,
                                              Xoshiro256& rng);

/// Delta-evaluated overload: O(path) per hill-climb step via a
/// persistent LinkLoadMap instead of re-routing all leafs.
[[nodiscard]] VerifyResult verify_adversarial(const FoldedClos& ftree,
                                              const SinglePathRouting& routing,
                                              const AdversarialOptions& options,
                                              Xoshiro256& rng);

/// Worst permutation found by a full hill-climb that MAXIMIZES colliding
/// path pairs (unlike verify_adversarial it never stops early), measuring
/// how badly a blocking routing can be made to perform.
struct WorstCaseResult {
  Permutation permutation;        ///< the worst pattern found
  std::uint64_t collisions = 0;   ///< its colliding path pairs
  std::uint64_t evaluations = 0;  ///< permutations scored
};

[[nodiscard]] WorstCaseResult worst_case_search(
    const FoldedClos& ftree, const PatternRouter& router,
    const AdversarialOptions& options, Xoshiro256& rng);

/// Delta-evaluated overload (see verify_adversarial above).
[[nodiscard]] WorstCaseResult worst_case_search(
    const FoldedClos& ftree, const SinglePathRouting& routing,
    const AdversarialOptions& options, Xoshiro256& rng);

}  // namespace nbclos
