/// \file verifier.hpp
/// \brief Empirical nonblocking verification (Definition 2).
///
/// A network + routing is nonblocking when *no* permutation causes link
/// contention.  The verifier attacks that universally-quantified claim
/// three ways:
///   * exhaustive enumeration of all full permutations (tiny networks —
///     this is a proof for the instance);
///   * uniform random sampling (statistical evidence at scale);
///   * adversarial hill-climbing that mutates a permutation by swapping
///     destinations to maximize colliding pairs (finds counterexamples
///     random sampling misses, e.g. for D-mod-K style routings).
///
/// The router under test is abstracted as a function from a permutation
/// to its paths, so deterministic, adaptive, and centralized schemes all
/// fit one interface.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "nbclos/analysis/permutations.hpp"
#include "nbclos/topology/fat_tree.hpp"

namespace nbclos {

class SinglePathRouting;

/// Route a whole pattern at once (adaptive routers need the pattern).
using PatternRouter =
    std::function<std::vector<FtreePath>(const Permutation&)>;

/// Wrap a SinglePathRouting as a PatternRouter.
[[nodiscard]] PatternRouter as_pattern_router(const SinglePathRouting& routing);

struct VerifyResult {
  bool nonblocking = false;  ///< no counterexample found within the budget
  std::uint64_t permutations_checked = 0;
  std::optional<Permutation> counterexample;  ///< a blocked permutation
  std::uint64_t counterexample_collisions = 0;
};

/// Exhaustively check every full permutation.  \pre leaf_count <= 10.
/// A `nonblocking == true` result is a proof for this instance.
[[nodiscard]] VerifyResult verify_exhaustive(const FoldedClos& ftree,
                                             const PatternRouter& router);

/// Check `trials` uniformly random full permutations.
[[nodiscard]] VerifyResult verify_random(const FoldedClos& ftree,
                                         const PatternRouter& router,
                                         std::uint64_t trials,
                                         Xoshiro256& rng);

/// Adversarial search: hill-climb from random starts, swapping pairs of
/// destinations; keeps a mutation when it does not decrease the number
/// of colliding path pairs.  Returns the worst permutation found.
struct AdversarialOptions {
  std::uint32_t restarts = 8;
  std::uint32_t steps_per_restart = 2000;
};

[[nodiscard]] VerifyResult verify_adversarial(const FoldedClos& ftree,
                                              const PatternRouter& router,
                                              const AdversarialOptions& options,
                                              Xoshiro256& rng);

/// Worst permutation found by a full hill-climb that MAXIMIZES colliding
/// path pairs (unlike verify_adversarial it never stops early), measuring
/// how badly a blocking routing can be made to perform.
struct WorstCaseResult {
  Permutation permutation;        ///< the worst pattern found
  std::uint64_t collisions = 0;   ///< its colliding path pairs
  std::uint64_t evaluations = 0;  ///< permutations scored
};

[[nodiscard]] WorstCaseResult worst_case_search(
    const FoldedClos& ftree, const PatternRouter& router,
    const AdversarialOptions& options, Xoshiro256& rng);

}  // namespace nbclos
