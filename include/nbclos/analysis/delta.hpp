/// \file delta.hpp
/// \brief Delta-evaluated hill-climb state for the adversarial verifier.
///
/// The adversarial searches mutate a full target vector (leaf s sends to
/// target[s]) by swapping two entries.  For a *single-path deterministic*
/// routing each SD pair's path is fixed independently of the rest of the
/// pattern, so a swap of targets i and j changes at most four SD pairs:
/// (i, old ti), (j, old tj) disappear and (i, tj), (j, ti) appear (fixed
/// points drop out).  SwapDeltaState keeps a persistent LinkLoadMap and
/// applies exactly those path removals/additions, making one hill-climb
/// step O(path length) instead of O(leafs * path length) — with the
/// colliding-pair count maintained as a running sum.
///
/// Invariant (checked by property tests): after any sequence of
/// apply_swap calls, collisions() equals a from-scratch evaluation of the
/// current pattern.  This only holds for pattern-independent routers;
/// adaptive or centralized schemes must use full re-evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "nbclos/analysis/contention.hpp"
#include "nbclos/analysis/permutations.hpp"
#include "nbclos/routing/route_cache.hpp"
#include "nbclos/routing/single_path.hpp"
#include "nbclos/topology/fat_tree.hpp"

namespace nbclos {

class SwapDeltaState {
 public:
  /// `routing` must outlive the state and route over `ftree`.  Every
  /// path is computed on demand through route_into.
  SwapDeltaState(const FoldedClos& ftree, const SinglePathRouting& routing)
      : ftree_(&ftree), routing_(&routing), map_(ftree) {}

  /// Cache-backed mode: replay precomputed flat link runs instead of
  /// calling route_into — the per-swap cost drops to four span loads
  /// plus counter updates.  `cache` must outlive the state and must have
  /// been materialized from a routing over `ftree`; searches share one
  /// immutable cache across restarts (and across threads).
  SwapDeltaState(const FoldedClos& ftree, const routing::RouteCache& cache)
      : ftree_(&ftree), cache_(&cache), map_(ftree) {
    NBCLOS_REQUIRE(cache.leaf_count() == ftree.leaf_count() &&
                       cache.link_count() == ftree.link_count(),
                   "route cache does not match the topology");
  }

  ~SwapDeltaState() {
    // Bulk-flush the local lookup count (obs) — the hot loop never
    // touches a shared counter.
    routing::RouteCache::note_lookups(lookups_);
  }
  SwapDeltaState(const SwapDeltaState&) = delete;
  SwapDeltaState& operator=(const SwapDeltaState&) = delete;

  /// Replace the whole target vector and rebuild the load map (O(leafs)).
  void reset(const std::vector<std::uint32_t>& target) {
    NBCLOS_REQUIRE(target.size() == ftree_->leaf_count(),
                   "target vector must cover every leaf");
    map_.clear();
    target_ = target;
    if (cache_ == nullptr) path_.resize(target_.size());
    for (std::uint32_t s = 0; s < target_.size(); ++s) add_leaf(s);
  }

  /// Swap targets i and j, delta-updating the load map.  Applying the
  /// same swap again restores the previous state exactly, so callers
  /// revert a rejected move by re-swapping.  \pre i != j, both in range
  /// (checked in Debug builds only — this runs once per hill-climb step).
  void apply_swap(std::uint32_t i, std::uint32_t j) {
    NBCLOS_DEBUG_CHECK(i != j && i < target_.size() && j < target_.size(),
                       "invalid swap indices");
    remove_leaf(i);
    remove_leaf(j);
    std::swap(target_[i], target_[j]);
    add_leaf(i);
    add_leaf(j);
  }

  /// Colliding path pairs of the current pattern — O(1), a running sum.
  [[nodiscard]] std::uint64_t collisions() const noexcept {
    return map_.colliding_pairs();
  }

  [[nodiscard]] const std::vector<std::uint32_t>& targets() const noexcept {
    return target_;
  }

  /// Materialize the current pattern (allocates; not on the hot path).
  [[nodiscard]] Permutation pattern() const {
    return permutation_from_targets(target_);
  }

 private:
  /// Route leaf s's current pair and load its links.  In route mode the
  /// path is stashed per leaf (the path added for (s, target[s]) is the
  /// path to remove later — sound because paths are pattern-independent);
  /// in cache mode both add and remove just replay the immutable run.
  void add_leaf(std::uint32_t s) {
    if (target_[s] == s) return;
    if (cache_ != nullptr) {
      ++lookups_;
      map_.add_run(cache_->links(s, target_[s]));
      return;
    }
    routing_->route_into({LeafId{s}, LeafId{target_[s]}}, path_[s]);
    map_.add_path(path_[s]);
  }

  void remove_leaf(std::uint32_t s) {
    if (target_[s] == s) return;
    if (cache_ != nullptr) {
      ++lookups_;
      map_.remove_run(cache_->links(s, target_[s]));
      return;
    }
    map_.remove_path(path_[s]);  // cached by the matching add_leaf
  }

  const FoldedClos* ftree_;
  const SinglePathRouting* routing_ = nullptr;  ///< route mode
  const routing::RouteCache* cache_ = nullptr;  ///< cache mode
  std::vector<std::uint32_t> target_;
  std::vector<FtreePath> path_;  ///< per-leaf current path (route mode only)
  LinkLoadMap map_;
  std::uint64_t lookups_ = 0;  ///< local count, flushed to obs on destroy
};

}  // namespace nbclos
