/// \file parallel.hpp
/// \brief Thread-parallel experiment drivers.
///
/// Monte-Carlo verification is embarrassingly parallel, but two things
/// must be engineered for: (1) stateful routers (multipath, adaptive)
/// cannot be shared across threads, so workers build their own via a
/// factory; (2) results must not depend on the pool's thread count, so
/// trials are split into a *fixed* number of chunks with seeds derived
/// from the master seed, and partials are merged in chunk order.
#pragma once

#include <cstdint>
#include <functional>

#include "nbclos/analysis/blocking.hpp"
#include "nbclos/analysis/verifier.hpp"
#include "nbclos/util/thread_pool.hpp"

namespace nbclos {

/// Build a worker-private PatternRouter from a chunk seed.
using PatternRouterFactory =
    std::function<PatternRouter(std::uint64_t chunk_seed)>;

/// Parallel estimate_blocking: `trials` random permutations split over
/// `chunks` deterministic chunks evaluated on `pool`.  The estimate is
/// identical for any pool size (chunk seeds and merge order are fixed).
[[nodiscard]] BlockingEstimate estimate_blocking_parallel(
    const FoldedClos& ftree, const PatternRouterFactory& make_router,
    std::uint64_t trials, std::uint64_t seed, ThreadPool& pool,
    std::uint32_t chunks = 16);

/// Parallel randomized nonblocking verification: returns nonblocking ==
/// true iff no chunk found a counterexample; otherwise one
/// counterexample (from the lowest-index failing chunk, so the result is
/// deterministic).
[[nodiscard]] VerifyResult verify_random_parallel(
    const FoldedClos& ftree, const PatternRouterFactory& make_router,
    std::uint64_t trials, std::uint64_t seed, ThreadPool& pool,
    std::uint32_t chunks = 16);

}  // namespace nbclos
